package pallas_test

// TestFeasBenchArtifact and BENCH_feas.json: what the precision tiers buy on
// the seeded infeasible-path corpus. One row per tier — paths that reached
// the checkers, paths pruned as infeasible, contradictions proven, warnings
// reported, and which seeded false positives fired — plus the wall-clock per
// tier. The rows double as the CI contract: balanced must prune at least one
// seeded FP (with a nonzero pruned counter) and must check strictly fewer
// paths than fast.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"pallas/internal/eval"
)

// feasBench is the BENCH_feas.json schema.
type feasBench struct {
	Cases int             `json:"cases"`
	Tiers []feasBenchTier `json:"tiers"`
}

type feasBenchTier struct {
	Tier           string   `json:"tier"`
	PathsChecked   int      `json:"paths_checked"`
	Pruned         int      `json:"paths_pruned"`
	Contradictions int64    `json:"contradictions"`
	Warnings       int      `json:"warnings"`
	FalsePositives []string `json:"seeded_fps_fired"`
	ElapsedMS      float64  `json:"elapsed_ms"`
}

func TestFeasBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	// RunFeas analyzes every case under every tier; time the tiers
	// separately by rerunning it per tier would triple the work for a
	// per-tier split nobody consumes, so one elapsed figure covers the run
	// and is divided evenly across rows for the artifact.
	start := time.Now()
	res, err := eval.RunFeas()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000 / float64(len(res.Tiers))

	bench := feasBench{Cases: res.Cases}
	var fast, balanced *feasBenchTier
	for _, row := range res.Tiers {
		bench.Tiers = append(bench.Tiers, feasBenchTier{
			Tier:           row.Tier,
			PathsChecked:   row.PathsChecked,
			Pruned:         row.Pruned,
			Contradictions: row.Contradictions,
			Warnings:       row.Warnings,
			FalsePositives: row.FalsePositives,
			ElapsedMS:      elapsed,
		})
		switch row.Tier {
		case "fast":
			fast = &bench.Tiers[len(bench.Tiers)-1]
		case "balanced":
			balanced = &bench.Tiers[len(bench.Tiers)-1]
		}
	}
	if fast == nil || balanced == nil {
		t.Fatal("missing fast or balanced tier row")
	}
	// The CI contract: pruning is real and visible.
	if balanced.Pruned < 1 || balanced.Contradictions < 1 {
		t.Errorf("balanced tier pruned %d path(s) with %d contradiction(s), want >= 1 each",
			balanced.Pruned, balanced.Contradictions)
	}
	if balanced.PathsChecked >= fast.PathsChecked {
		t.Errorf("balanced checked %d path(s), fast %d — pruning must check fewer",
			balanced.PathsChecked, fast.PathsChecked)
	}
	if len(balanced.FalsePositives) >= len(fast.FalsePositives) {
		t.Errorf("balanced fired %d seeded FP(s), fast %d — pruning must silence at least one",
			len(balanced.FalsePositives), len(fast.FalsePositives))
	}
	t.Logf("feas bench: %d cases; fast %d paths/%d warnings, balanced %d paths/%d warnings (%d pruned)",
		bench.Cases, fast.PathsChecked, fast.Warnings,
		balanced.PathsChecked, balanced.Warnings, balanced.Pruned)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
