module pallas

go 1.22
