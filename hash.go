package pallas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"pallas/internal/feas"
)

// ContentHash is the canonical Pallas content hash: the hex SHA-256 of the
// given parts, each length-framed (8-byte little-endian length, then the
// bytes) so part boundaries cannot be confused. It is the single hashing
// primitive behind every persisted key in the system:
//
//   - checkpoint-journal resume keys: ContentHash(name, source, spec)
//     (the historical Unit.Hash format — journals written by earlier
//     versions keep resuming);
//   - result-cache keys: ContentHash(name, source, spec, fingerprint) where
//     fingerprint is the analyzer configuration rendered by
//     Config.fingerprint.
//
// The format is pinned by TestContentHashFormatPinned; changing it silently
// invalidates every persisted journal and cache.
func ContentHash(parts ...string) string {
	h := sha256.New()
	for _, s := range parts {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey returns the content-addressed result-cache key for analyzing u
// under this analyzer's configuration. Two analyzers produce the same key
// iff they would produce the same report: the key covers the unit's name,
// source and spec plus every configuration field that can change analysis
// output (checker selection, defines, in-memory includes, budgets, limits).
//
// On-disk include directories contribute only their names, not their file
// contents — editing a header served from IncludeDirs does not change the
// key. Server deployments use Config.Includes (fully covered); CLI users
// who edit shared headers should clear the cache directory.
func (a *Analyzer) CacheKey(u Unit) string {
	return ContentHash(u.Name, u.Source, u.Spec, a.cfg.fingerprint())
}

// fingerprint renders every analysis-relevant configuration field as a
// deterministic string for cache keying. Fields that cannot change a report
// (worker counts — including AnalysisWorkers, whose output is byte-identical
// at any setting — and sleep hooks) are deliberately absent, so a key
// computed by a serial CLI run hits an entry stored by a parallel server run
// and vice versa.
func (c Config) fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v1|paths=%d|visits=%d|inline=%d|deadline=%s|macros=%d|steps=%d|keepgoing=%t",
		c.MaxPaths, c.MaxBlockVisits, c.InlineDepth, c.Deadline,
		c.MaxMacroExpansions, c.MaxSteps, c.KeepGoing)
	sb.WriteString("|checkers=")
	sb.WriteString(strings.Join(c.Checkers, ","))
	sb.WriteString("|defines=")
	for _, k := range mapKeys(c.Defines) {
		fmt.Fprintf(&sb, "%s=%s;", k, c.Defines[k])
	}
	sb.WriteString("|dirs=")
	sb.WriteString(strings.Join(c.IncludeDirs, ","))
	// In-memory includes are content: hash each file body so a header edit
	// changes the key. Hashing (not inlining) keeps fingerprints short.
	sb.WriteString("|includes=")
	names := make([]string, 0, len(c.Includes))
	for k := range c.Includes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%s;", k, ContentHash(c.Includes[k]))
	}
	sb.WriteString(precisionSuffix(c.Precision))
	return sb.String()
}

// precisionSuffix renders the feasibility tier's fingerprint contribution.
// The fast tier (and the zero value) contributes nothing, so keys computed
// before the feasibility layer existed stay valid and caches stay warm;
// balanced/strict append a suffix so tiers never share cache or memo
// entries. An unparseable tier is keyed verbatim — the analysis itself will
// reject it before producing anything to cache.
func precisionSuffix(precision string) string {
	tier, err := feas.ParseTier(precision)
	if err != nil {
		return "|precision=" + precision
	}
	if tier == feas.Fast {
		return ""
	}
	return "|precision=" + tier.String()
}
