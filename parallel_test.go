package pallas_test

// Tests for the parallel intra-unit pipeline: byte-identical output at any
// AnalysisWorkers setting, shared cache keys, per-function fault isolation,
// and race-freedom of a shared analyzer under concurrent parallel analyses.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pallas"
	"pallas/internal/corpus"
	"pallas/internal/failpoint"
)

// snapshot renders everything a determinism comparison cares about: the
// report JSON (warnings, order, degraded flag), the warning messages, and the
// path database JSON.
func snapshot(t *testing.T, res *pallas.Result) (report, warnings, paths string) {
	t.Helper()
	var rb bytes.Buffer
	if err := res.Report.WriteJSON(&rb); err != nil {
		t.Fatal(err)
	}
	var ws strings.Builder
	for _, w := range res.Report.Warnings {
		fmt.Fprintf(&ws, "%s\n", w.String())
	}
	pb, err := json.Marshal(res.Paths)
	if err != nil {
		t.Fatal(err)
	}
	return rb.String(), ws.String(), string(pb)
}

// TestAnalysisWorkersDeterminism asserts the tentpole guarantee: the same
// unit analyzed with 1, 4, and 16 intra-unit workers produces byte-identical
// report JSON, identical warning order, an identical path database, and the
// same cache key — so serial and parallel runs share cache entries.
func TestAnalysisWorkersDeterminism(t *testing.T) {
	src, spec := corpus.BigFile()
	unit := pallas.Unit{Name: "mm/page_alloc.c", Source: src, Spec: spec}

	base := pallas.New(pallas.Config{})
	baseRes, err := base.AnalyzeSource(unit.Name, unit.Source, unit.Spec)
	if err != nil {
		t.Fatal(err)
	}
	wantReport, wantWarnings, wantPaths := snapshot(t, baseRes)
	if len(baseRes.Report.Warnings) == 0 {
		t.Fatal("baseline produced no warnings; determinism check would be vacuous")
	}
	wantKey := base.CacheKey(unit)

	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			a := pallas.New(pallas.Config{AnalysisWorkers: workers})
			res, err := a.AnalyzeSource(unit.Name, unit.Source, unit.Spec)
			if err != nil {
				t.Fatal(err)
			}
			gotReport, gotWarnings, gotPaths := snapshot(t, res)
			if gotReport != wantReport {
				t.Errorf("report JSON differs from serial baseline:\n--- want\n%s\n--- got\n%s",
					wantReport, gotReport)
			}
			if gotWarnings != wantWarnings {
				t.Errorf("warning order differs:\n--- want\n%s\n--- got\n%s", wantWarnings, gotWarnings)
			}
			if gotPaths != wantPaths {
				t.Error("path database JSON differs from serial baseline")
			}
			if key := a.CacheKey(unit); key != wantKey {
				t.Errorf("cache key %s differs from serial baseline %s; parallel and serial runs would not share cache entries", key, wantKey)
			}
		})
	}
}

// TestAnalysisWorkersPanicIsolation asserts the fault-isolation boundary of
// the parallel pipeline: a panic while extracting one function (injected via
// the extract-func failpoint) degrades only that function — every other
// function keeps its paths and the analysis still completes under KeepGoing.
func TestAnalysisWorkersPanicIsolation(t *testing.T) {
	src, spec := corpus.BigFile()

	clean, err := pallas.New(pallas.Config{AnalysisWorkers: 4}).
		AnalyzeSource("mm/page_alloc.c", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	fns := clean.Paths.Funcs()
	if len(fns) < 2 {
		t.Fatalf("unit has %d analyzed functions; need at least 2", len(fns))
	}
	victim := fns[0]

	if err := failpoint.Arm("extract-func=panic/" + victim); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	res, err := pallas.New(pallas.Config{AnalysisWorkers: 4, KeepGoing: true}).
		AnalyzeSource("mm/page_alloc.c", src, spec)
	if err != nil {
		t.Fatalf("panic in one function failed the whole unit: %v", err)
	}
	if !res.Degraded() {
		t.Error("report not marked degraded after a crashed extraction")
	}
	if res.Paths.Get(victim) != nil {
		t.Errorf("crashed function %s still has a path entry", victim)
	}
	for _, fn := range fns[1:] {
		if res.Paths.Get(fn) == nil {
			t.Errorf("healthy function %s lost its paths to %s's crash", fn, victim)
		}
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.String(), victim) && strings.Contains(d.String(), "panic") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic names the crashed function %s: %v", victim, res.Diagnostics)
	}

	// Strict mode: the same panic surfaces as an error, not a process crash.
	if err := failpoint.Arm("extract-func=panic/" + victim); err != nil {
		t.Fatal(err)
	}
	if _, err := pallas.New(pallas.Config{AnalysisWorkers: 4}).
		AnalyzeSource("mm/page_alloc.c", src, spec); err == nil {
		t.Error("strict mode swallowed an extraction panic")
	}
}

// TestAnalyzerConcurrentParallelAnalyses runs one shared analyzer with
// intra-unit parallelism enabled from many goroutines at once (under -race
// in CI): nested fan-out must stay race-free and every result identical.
func TestAnalyzerConcurrentParallelAnalyses(t *testing.T) {
	src, spec := corpus.BigFile()
	a := pallas.New(pallas.Config{AnalysisWorkers: 4})

	baseline, err := a.AnalyzeSource("mm/page_alloc.c", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := snapshot(t, baseline)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := a.AnalyzeSource("mm/page_alloc.c", src, spec)
			if err != nil {
				errs <- err
				return
			}
			var rb bytes.Buffer
			if err := res.Report.WriteJSON(&rb); err != nil {
				errs <- err
				return
			}
			if rb.String() != want {
				errs <- fmt.Errorf("concurrent parallel analysis diverged from baseline")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
