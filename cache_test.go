package pallas

import (
	"bytes"
	"fmt"
	"testing"
)

// cacheCorpus builds n units each carrying a seeded immutable-overwrite
// warning, so cached replays have non-trivial reports to preserve.
func cacheCorpus(n int) []Unit {
	units := make([]Unit, 0, n)
	for i := 1; i <= n; i++ {
		units = append(units, Unit{
			Name: fmt.Sprintf("c%d.c", i),
			Source: fmt.Sprintf(`
int fast_%[1]d(int mode_%[1]d)
{
	if (mode_%[1]d == 0) {
		mode_%[1]d = %[1]d;
		return 1;
	}
	return 0;
}
`, i),
			Spec: fmt.Sprintf("fastpath fast_%d\nimmutable mode_%d\n", i, i),
		})
	}
	return units
}

func renderReports(t *testing.T, results []UnitResult) string {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("unit %s failed: %v", r.Unit, r.Err)
		}
		if err := r.Result.Report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestAnalyzeBatchResultCache drives the cold→warm contract end to end: a
// second identical batch over the same cache directory analyzes nothing and
// reproduces every report byte-identically.
func TestAnalyzeBatchResultCache(t *testing.T) {
	dir := t.TempDir()
	units := cacheCorpus(4)
	a := New(Config{})

	cold, coldStats, err := a.AnalyzeBatch(units, BatchOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheMisses != 4 || coldStats.CacheHits != 0 || coldStats.Analyzed != 4 {
		t.Fatalf("cold stats = %+v", coldStats)
	}
	for _, r := range cold {
		if r.Cached {
			t.Fatalf("cold unit %s marked cached", r.Unit)
		}
		if len(r.Result.Report.Warnings) == 0 {
			t.Fatalf("unit %s lost its seeded warning", r.Unit)
		}
	}

	// Warm run: a fresh analyzer (same config) over the same directory.
	warm, warmStats, err := New(Config{}).AnalyzeBatch(units, BatchOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits != 4 || warmStats.CacheMisses != 0 || warmStats.Analyzed != 0 {
		t.Fatalf("warm stats = %+v", warmStats)
	}
	for _, r := range warm {
		if !r.Cached || r.Attempts != 0 {
			t.Fatalf("warm unit %s not replayed from cache: %+v", r.Unit, r)
		}
	}
	if got, want := renderReports(t, warm), renderReports(t, cold); got != want {
		t.Fatalf("cached reports drifted from originals\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// A different analyzer configuration must not see the old entries.
	other, otherStats, err := New(Config{Checkers: []string{"trigger-condition"}}).
		AnalyzeBatch(units, BatchOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if otherStats.CacheHits != 0 || otherStats.Analyzed != 4 {
		t.Fatalf("config change did not miss the cache: %+v", otherStats)
	}
	for _, r := range other {
		if len(r.Result.Report.Warnings) != 0 {
			t.Fatalf("trigger-condition-only run still reports %d warnings", len(r.Result.Report.Warnings))
		}
	}

	// Edited source must miss too.
	edited := cacheCorpus(4)
	edited[0].Source += "\n/* edited */\n"
	_, editStats, err := New(Config{}).AnalyzeBatch(edited, BatchOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if editStats.CacheHits != 3 || editStats.CacheMisses != 1 || editStats.Analyzed != 1 {
		t.Fatalf("edit stats = %+v, want 3 hits / 1 miss", editStats)
	}
}

// TestAnalyzeBatchCacheWithJournal verifies the two durability layers
// compose: cache replays are journaled, so a journal-only resume still
// skips them.
func TestAnalyzeBatchCacheWithJournal(t *testing.T) {
	dir := t.TempDir()
	units := cacheCorpus(2)
	a := New(Config{})
	if _, _, err := a.AnalyzeBatch(units, BatchOptions{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}

	jpath := dir + "/j.jsonl"
	_, warmStats, err := a.AnalyzeBatch(units, BatchOptions{CacheDir: dir, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits != 2 {
		t.Fatalf("warm stats = %+v", warmStats)
	}

	// Resume from the journal alone (no cache): everything skips.
	res, resumeStats, err := a.AnalyzeBatch(units, BatchOptions{JournalPath: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumeStats.Skipped != 2 || resumeStats.Analyzed != 0 {
		t.Fatalf("resume stats = %+v", resumeStats)
	}
	for _, r := range res {
		if !r.Skipped || len(r.Result.Report.Warnings) == 0 {
			t.Fatalf("resumed unit %s: %+v", r.Unit, r)
		}
	}
}

// TestAnalyzeBatchGroupCommitJournal runs a batch against a group-committed
// journal and verifies the checkpoint contents match the per-record-fsync
// policy exactly.
func TestAnalyzeBatchGroupCommitJournal(t *testing.T) {
	dir := t.TempDir()
	units := cacheCorpus(6)
	a := New(Config{})
	_, stats, err := a.AnalyzeBatch(units, BatchOptions{
		JournalPath:        dir + "/gc.jsonl",
		JournalGroupCommit: true,
		Workers:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	// The journal is complete and resumable.
	res, resumeStats, err := a.AnalyzeBatch(units, BatchOptions{
		JournalPath: dir + "/gc.jsonl", JournalGroupCommit: true, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumeStats.Skipped != 6 {
		t.Fatalf("resume stats = %+v", resumeStats)
	}
	for _, r := range res {
		if !r.Skipped {
			t.Fatalf("unit %s re-analyzed despite group-committed journal", r.Unit)
		}
	}
}
