package pallas_test

// Resilience acceptance tests: the adversarial batch contract (hostile units
// degrade with per-unit diagnostics, healthy neighbours keep warning, nothing
// panics or hangs) and deadline-bounded degradation on path explosions.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pallas"
	"pallas/internal/corpus"
	"pallas/internal/guard"
)

// TestAnalyzeManyAdversarial runs the ≥10-unit hostile mini-corpus through
// the batch entry point and asserts the robustness contract unit by unit.
func TestAnalyzeManyAdversarial(t *testing.T) {
	units := corpus.Adversarial()
	includes := map[string]string{}
	batch := make([]pallas.Unit, len(units))
	malformed := 0
	for i, u := range units {
		batch[i] = pallas.Unit{Name: u.Name, Source: u.Source, Spec: u.Spec}
		for k, v := range u.Includes {
			includes[k] = v
		}
		if !u.Healthy {
			malformed++
		}
	}
	if malformed < 10 {
		t.Fatalf("mini-corpus must hold >=10 malformed units, have %d", malformed)
	}

	a := pallas.New(pallas.Config{KeepGoing: true, Deadline: 30 * time.Second, Includes: includes})
	done := make(chan []pallas.UnitResult, 1)
	go func() { done <- a.AnalyzeMany(batch, 4) }()
	var results []pallas.UnitResult
	select {
	case results = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("batch hung on adversarial input")
	}

	if len(results) != len(units) {
		t.Fatalf("got %d results for %d units", len(results), len(units))
	}
	for i, u := range units {
		r := results[i]
		if r.Unit != u.Name {
			t.Errorf("result %d out of order: got %q want %q", i, r.Unit, u.Name)
		}
		var pe *guard.PanicError
		if errors.As(r.Err, &pe) {
			t.Errorf("%s: panic escaped stage guards:\n%s", u.Name, pe.Stack)
		}
		if u.Healthy {
			if r.Err != nil {
				t.Errorf("%s: healthy unit failed next to hostile ones: %v", u.Name, r.Err)
				continue
			}
			if len(r.Result.Report.Warnings) == 0 {
				t.Errorf("%s: healthy unit's seeded bug not reported", u.Name)
			}
			if r.Result.Degraded() {
				t.Errorf("%s: healthy unit wrongly degraded: %v", u.Name, r.Diagnostics)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: KeepGoing must degrade, not fail: %v", u.Name, r.Err)
			continue
		}
		if u.WantDiagnostic {
			if len(r.Diagnostics) == 0 {
				t.Errorf("%s: malformed unit produced no diagnostics", u.Name)
			}
			if !r.Result.Degraded() {
				t.Errorf("%s: diagnostics without Report.Degraded", u.Name)
			}
		}
	}
}

// pathExplosionSource builds a function whose path count is exponential in
// the number of sequential branches: n independent if-statements give 2^n
// paths, far beyond what any deadline allows to finish.
func pathExplosionSource(n int) string {
	var sb strings.Builder
	sb.WriteString("// @pallas: fastpath f\n// @pallas: immutable m0\nint f(")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("int m")
		sb.WriteByte(byte('0' + i%10))
	}
	sb.WriteString(") {\n\tint acc = 0;\n")
	for i := 0; i < n; i++ {
		sb.WriteString("\tif (m")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(") acc++;\n")
	}
	sb.WriteString("\treturn acc;\n}\n")
	return sb.String()
}

// TestDeadlineDegradation is the acceptance test for budget-aware analysis:
// a pathological path explosion under a short Config.Deadline must return a
// degraded partial result within 2x the deadline — not run to completion,
// not fail.
func TestDeadlineDegradation(t *testing.T) {
	const deadline = 500 * time.Millisecond
	a := pallas.New(pallas.Config{
		Deadline: deadline,
		// Lift the default path cap so the walk itself is what explodes;
		// only the deadline can stop it.
		MaxPaths: 1 << 30,
	})
	start := time.Now()
	res, err := a.AnalyzeSource("explode.c", pathExplosionSource(40), "")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("returned after %v; want within 2x the %v deadline", elapsed, deadline)
	}
	if !res.Degraded() {
		t.Error("deadline expiry must set Report.Degraded")
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Err, guard.ErrDeadline.Error()) {
			found = true
		}
		if !d.Partial {
			t.Errorf("budget diagnostic must be partial: %+v", d)
		}
	}
	if !found {
		t.Errorf("no deadline diagnostic recorded: %v", res.Diagnostics)
	}
	// The partial result still carries whatever was extracted before expiry.
	if res.Paths == nil {
		t.Error("partial result lost its path database")
	}
}

// TestMacroBudgetDegradation asserts the macro-expansion budget follows the
// same degrade-don't-fail contract as the deadline.
func TestMacroBudgetDegradation(t *testing.T) {
	a := pallas.New(pallas.Config{MaxMacroExpansions: 1000})
	res, err := a.AnalyzeSource("bomb.c",
		"#define A A A A A A A A A\n// @pallas: fastpath f\nint f(int mode) { return A; }\n", "")
	if err != nil {
		t.Fatalf("macro budget must degrade, not fail: %v", err)
	}
	if !res.Degraded() || len(res.Diagnostics) == 0 {
		t.Errorf("degradation not recorded: degraded=%v diags=%v", res.Degraded(), res.Diagnostics)
	}
}

// TestKeepGoingOffIsStillStrict pins the historical contract: without
// KeepGoing, malformed input is a hard error, not a degraded result.
func TestKeepGoingOffIsStillStrict(t *testing.T) {
	a := pallas.New(pallas.Config{})
	if _, err := a.AnalyzeSource("bad.c", "int f(int m) { if (m == ) } ]\n", ""); err == nil {
		t.Error("parse errors must stay fatal when KeepGoing is off")
	}
}
