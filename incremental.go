package pallas

// Incremental analysis: the glue between the pipeline (analyze) and the
// function-level memo engine (internal/incr). With Config.Incremental set,
// each analysis fingerprints its unit over a dependency DAG, replays a
// whole-unit verdict when nothing changed, seeds extraction with memoized
// per-function path records for unchanged functions, and memoizes whatever a
// clean run freshly produced. Output is byte-identical to a cold run at any
// AnalysisWorkers count; degraded runs (diagnostics, budget truncation) are
// never replayed or stored because their content is timing-dependent.

import (
	"encoding/json"
	"fmt"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/incr"
	"pallas/internal/pathdb"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
)

// IncrementalOptions configures the function-level memo store.
type IncrementalOptions struct {
	// Dir, when non-empty, persists the memo across processes at this
	// directory (atomic writes; a crash mid-save never leaves a torn entry).
	// Empty keeps the memo in memory only, scoped to the Analyzer.
	Dir string
	// MaxBytes bounds the store — the in-memory LRU tier and the persistent
	// directory alike. <= 0 means incr.DefaultMaxBytes.
	MaxBytes int64
	// Shared, when non-nil, rides the memo on the cluster's shared cache
	// tier (internal/rcache/peer): local tiers first, fleet replicas
	// second, so one edit re-checked on any worker warms them all.
	Shared incr.SharedTier
}

// extractFingerprint renders only the configuration fields that determine
// the content of a non-truncated extraction result. Budget fields (Deadline,
// MaxSteps) are absent: they can only truncate, and truncated results are
// never memoized. Preprocessor inputs (Defines, Includes) are absent too:
// function memo keys hash the *parsed* unit, which already reflects every
// macro expansion and include merge. The precision tier IS present (for
// non-fast tiers): pruning changes which paths a function's record holds,
// so tiers must never share memo entries.
func (c Config) extractFingerprint() string {
	return fmt.Sprintf("x1|paths=%d|visits=%d|inline=%d", c.MaxPaths, c.MaxBlockVisits, c.InlineDepth) +
		precisionSuffix(c.Precision)
}

// incrStore returns the memo store, opening it on first use; nil when
// incremental analysis is off or the store failed to open (the analysis then
// runs cold — EnsureIncremental surfaces the error to callers that care).
func (a *Analyzer) incrStore() *incr.Store {
	st, _ := a.incrOpen()
	return st
}

func (a *Analyzer) incrOpen() (*incr.Store, error) {
	if a.cfg.Incremental == nil {
		return nil, nil
	}
	a.incrOnce.Do(func() {
		a.incrMemo, a.incrErr = incr.Open(incr.Options{
			Dir:      a.cfg.Incremental.Dir,
			MaxBytes: a.cfg.Incremental.MaxBytes,
			Shared:   a.cfg.Incremental.Shared,
		})
	})
	return a.incrMemo, a.incrErr
}

// EnsureIncremental eagerly opens the memo store so configuration problems
// (an unwritable -incr-dir) surface as errors instead of silent cold runs.
// It returns nil when incremental analysis is not configured.
func (a *Analyzer) EnsureIncremental() error {
	_, err := a.incrOpen()
	return err
}

// IncrStats snapshots memo activity. ok is false when incremental analysis
// is off or the store failed to open.
func (a *Analyzer) IncrStats() (incr.Stats, bool) {
	st := a.incrStore()
	if st == nil {
		return incr.Stats{}, false
	}
	return st.Stats(), true
}

// memoRun carries one analysis's incremental state: the unit's dependency
// graph, the memo key and fingerprint computed per analyzed function, and
// the seed of memo hits handed to extraction.
type memoRun struct {
	st     *incr.Store
	g      *incr.Graph
	unit   string
	cfgXFP string // extraction-config fingerprint (function keys)
	cfgUFP string // full analysis-config fingerprint (unit keys)
	keys   map[string]string
	fps    map[string]string
	seeded map[string]*paths.FuncPaths
	// unitKey is set by replayUnit; store reuses it for the verdict write.
	unitKey string
}

func (a *Analyzer) newMemoRun(st *incr.Store, tu *cast.TranslationUnit) *memoRun {
	xfp := a.cfg.extractFingerprint()
	return &memoRun{
		st:     st,
		g:      incr.BuildGraph(tu),
		unit:   tu.File,
		cfgXFP: xfp,
		cfgUFP: xfp + "|checkers=" + strings.Join(a.cfg.Checkers, ","),
		keys:   map[string]string{},
		fps:    map[string]string{},
		seeded: map[string]*paths.FuncPaths{},
	}
}

// replayUnit returns a complete Result when the whole-unit verdict memo
// holds an entry for the unit's current fingerprint — the fast path for
// no-op and formatting-only re-checks. The replayed report and path
// database are the stored bytes of a previous clean run whose inputs were,
// by construction of the key, identical to this one's.
func (m *memoRun) replayUnit(tu *cast.TranslationUnit, sp *spec.Spec, merged string) *Result {
	fp := m.g.UnitFingerprint()
	m.unitKey = incr.UnitKey(m.cfgUFP, m.unit, sp.String(), fp)
	rec := m.st.GetUnit(m.unitKey, m.unit, fp)
	if rec == nil {
		return nil
	}
	rep := &report.Report{}
	if json.Unmarshal(rec.Report, rep) != nil {
		return nil
	}
	db := &pathdb.DB{}
	if json.Unmarshal(rec.PathDB, db) != nil {
		return nil
	}
	if db.Entries == nil {
		db.Entries = map[string]*pathdb.Entry{}
	}
	return &Result{Report: rep, Spec: sp, Paths: db, Merged: merged, tu: tu}
}

// seed looks up every analyzed function's memo entry and returns the hits
// for paths.Config.Seed. Misses remember their key so store can memoize the
// fresh extraction afterwards.
func (m *memoRun) seed(sp *spec.Spec) map[string]*paths.FuncPaths {
	for _, fn := range sp.AnalyzedFuncs() {
		if !m.g.Defined(fn) {
			continue
		}
		fp := m.g.Transitive(fn)
		key := incr.FuncKey(m.cfgXFP, m.g.Ambient(), fp)
		m.keys[fn], m.fps[fn] = key, fp
		if p := m.st.GetFunc(key, m.unit, fn, fp); p != nil {
			m.seeded[fn] = p
		}
	}
	return m.seeded
}

// store memoizes a clean run: every freshly extracted function (the memo
// refuses truncated results itself) and the whole-unit verdict. Callers
// gate on a clean, non-degraded result; memo write failures are absorbed
// inside the store so they can never perturb analysis output.
func (m *memoRun) store(fps map[string]*paths.FuncPaths, rep *report.Report, db *pathdb.DB) {
	for fn, fp := range fps {
		if m.seeded[fn] != nil || m.keys[fn] == "" {
			continue
		}
		m.st.PutFunc(m.keys[fn], m.unit, fn, m.fps[fn], fp)
	}
	if m.unitKey == "" {
		return
	}
	repB, err := json.Marshal(rep)
	if err != nil {
		return
	}
	dbB, err := json.Marshal(db)
	if err != nil {
		return
	}
	m.st.PutUnit(m.unitKey, &incr.UnitRecord{
		Unit:        m.unit,
		Fingerprint: m.g.UnitFingerprint(),
		Report:      repB,
		PathDB:      dbB,
	})
}
