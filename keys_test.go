package pallas

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMapKeysSorted pins mapKeys' sorted contract: fingerprint rendering and
// every error message built from map keys must not depend on Go's randomized
// map iteration order.
func TestMapKeysSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := map[string]string{}
		for i := 0; i < 1+rng.Intn(20); i++ {
			m[string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26)))] = "v"
		}
		got := mapKeys(m)
		if len(got) != len(m) {
			t.Fatalf("trial %d: %d keys for a %d-entry map", trial, len(got), len(m))
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("trial %d: mapKeys returned unsorted keys %v", trial, got)
		}
		for _, k := range got {
			if _, ok := m[k]; !ok {
				t.Fatalf("trial %d: key %q not in map", trial, k)
			}
		}
	}
}
