package pallas

// Durability acceptance tests at the API level: transient failures retry
// with backoff and succeed on a later attempt, persistent panics land in
// quarantine without wedging the batch, and journaled runs resume by content
// hash. The end-to-end SIGKILL crash test lives in cmd/pallas.

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/journal"
)

const durableSrc = `
// @pallas: fastpath get_fast
// @pallas: immutable mode_flags
int get_fast(int mode_flags)
{
	if (mode_flags == 0) {
		mode_flags = 1;
		return 1;
	}
	return 0;
}
`

func durableUnits() []Unit {
	return []Unit{
		{Name: "u1.c", Source: durableSrc, Spec: ""},
		{Name: "u2.c", Source: strings.ReplaceAll(durableSrc, "get_fast", "other_fast"), Spec: ""},
	}
}

// TestRetryTransientSucceeds injects two transient pre-parse failures into
// one unit and asserts the retry policy recovers it: success on attempt 3
// (≥ 2), two backoff sleeps within the exponential-with-jitter envelope.
func TestRetryTransientSucceeds(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	if err := failpoint.Arm("pre-parse=error@2/u1.c"); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	a := New(Config{})
	out, stats, err := a.AnalyzeBatch(durableUnits(), BatchOptions{
		Workers: 1, Retries: 3, RetryBackoff: 10 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := out[0]
	if r.Err != nil {
		t.Fatalf("unit not recovered: %v", r.Err)
	}
	if r.Attempts < 2 {
		t.Fatalf("recovered on attempt %d, want ≥ 2", r.Attempts)
	}
	if r.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two injected failures)", r.Attempts)
	}
	if len(r.Result.Report.Warnings) == 0 {
		t.Fatal("recovered unit lost its warnings")
	}
	if len(slept) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", slept)
	}
	// Full-jitter envelope: attempt n sleeps uniformly in (0, base·2ⁿ⁻¹]
	// (backoff.Delay — the whole window is drawn, not just ±50% around the
	// midpoint, so simultaneously retrying units decorrelate).
	base := 10 * time.Millisecond
	if slept[0] <= 0 || slept[0] > base {
		t.Errorf("first backoff %v outside (0, %v]", slept[0], base)
	}
	if slept[1] <= 0 || slept[1] > 2*base {
		t.Errorf("second backoff %v outside (0, %v]", slept[1], 2*base)
	}
	if stats.Retried != 2 || stats.Recovered != 1 || stats.Analyzed != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if out[1].Attempts != 1 {
		t.Errorf("healthy neighbour was retried: %d attempts", out[1].Attempts)
	}
}

// TestQuarantinePersistentPanic keeps one unit panicking on every attempt
// and asserts it is quarantined while the rest of the batch completes.
func TestQuarantinePersistentPanic(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	if err := failpoint.Arm("pre-parse=panic/poison"); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	units := append(durableUnits(), Unit{Name: "poison.c", Source: durableSrc})
	a := New(Config{})
	out, stats, err := a.AnalyzeBatch(units, BatchOptions{
		Workers: 2, Retries: 2, JournalPath: jpath,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out[:2] {
		if r.Err != nil || len(r.Result.Report.Warnings) == 0 {
			t.Fatalf("healthy unit %s damaged by poisoned neighbour: %v", r.Unit, r.Err)
		}
	}
	p := out[2]
	if !p.Quarantined {
		t.Fatalf("poisoned unit not quarantined: %+v", p)
	}
	var pe *guard.PanicError
	if !errors.As(p.Err, &pe) {
		t.Fatalf("quarantine error is not the recovered panic: %v", p.Err)
	}
	if p.Attempts != 3 {
		t.Fatalf("poisoned unit attempts = %d, want 3 (1 + 2 retries)", p.Attempts)
	}
	if stats.Quarantined != 1 || stats.Retried != 2 {
		t.Errorf("stats = %+v", stats)
	}

	jr, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	rec, ok := jr.Lookup("poison.c")
	if !ok || rec.Status != journal.StatusQuarantined {
		t.Fatalf("journal record for poisoned unit: %+v (ok=%v)", rec, ok)
	}
	// Quarantine is terminal: a resumed run must skip the poisoned unit even
	// while the panic persists.
	jr.Close()
	out2, stats2, err := a.AnalyzeBatch(units, BatchOptions{
		Workers: 1, Retries: 2, JournalPath: jpath, Resume: true,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out2[2].Skipped || !out2[2].Quarantined {
		t.Fatalf("resumed run re-ran the quarantined unit: %+v", out2[2])
	}
	if stats2.Skipped != 3 || stats2.Analyzed != 0 {
		t.Errorf("resume stats = %+v", stats2)
	}
}

// TestResumeSkipsTerminalAndReplaysReport journals a run, resumes it, and
// asserts the replayed reports match the originals without re-analysis.
func TestResumeSkipsTerminalAndReplaysReport(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	a := New(Config{})
	units := durableUnits()
	first, _, err := a.AnalyzeBatch(units, BatchOptions{JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	second, stats, err := a.AnalyzeBatch(units, BatchOptions{JournalPath: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 0 || stats.Skipped != len(units) {
		t.Fatalf("resume stats = %+v", stats)
	}
	for i := range units {
		f, s := first[i], second[i]
		if !s.Skipped || s.Attempts != 0 {
			t.Fatalf("%s: not skipped (%+v)", s.Unit, s)
		}
		if s.Result == nil || len(s.Result.Report.Warnings) != len(f.Result.Report.Warnings) {
			t.Fatalf("%s: replayed report drifted", s.Unit)
		}
		for j, w := range f.Result.Report.Warnings {
			if s.Result.Report.Warnings[j] != w {
				t.Fatalf("%s: warning %d drifted: %+v vs %+v", s.Unit, j, s.Result.Report.Warnings[j], w)
			}
		}
	}
	// No new records were appended for skipped units.
	jr, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if jr.Len() != len(units) {
		t.Fatalf("journal grew on resume: %d records", jr.Len())
	}
	for _, rec := range jr.Records() {
		if rec.Attempt != 1 {
			t.Fatalf("attempt count drifted: %+v", rec)
		}
	}
}

// TestResumeHashMismatchForcesReanalysis edits a unit's source between runs
// and asserts the stale journal entry is ignored for it.
func TestResumeHashMismatchForcesReanalysis(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	a := New(Config{})
	units := durableUnits()
	if _, _, err := a.AnalyzeBatch(units, BatchOptions{JournalPath: jpath}); err != nil {
		t.Fatal(err)
	}
	edited := append([]Unit{}, units...)
	edited[0].Source += "\nint unrelated(void) { return 7; }\n"
	out, stats, err := a.AnalyzeBatch(edited, BatchOptions{JournalPath: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Skipped || out[0].Attempts != 1 {
		t.Fatalf("edited unit was skipped: %+v", out[0])
	}
	if !out[1].Skipped {
		t.Fatalf("untouched unit was re-analyzed: %+v", out[1])
	}
	if stats.Analyzed != 1 || stats.Skipped != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// The fresh record wins on the next resume.
	jr, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	rec, ok := jr.Lookup("u1.c")
	if !ok || rec.Hash != edited[0].Hash() {
		t.Fatalf("journal kept the stale hash: %+v", rec)
	}
}

// TestDeterministicFailureNotRetried asserts malformed input is failed
// immediately (no retries) and replayed as a failure on resume.
func TestDeterministicFailureNotRetried(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	a := New(Config{})
	units := []Unit{{Name: "broken.c", Source: "int broken( {"}}
	out, stats, err := a.AnalyzeBatch(units, BatchOptions{
		Retries: 3, JournalPath: jpath,
		Sleep: func(time.Duration) { t.Error("deterministic failure slept for a retry") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err == nil || out[0].Attempts != 1 || out[0].Quarantined {
		t.Fatalf("deterministic failure mishandled: %+v", out[0])
	}
	if stats.Failed != 1 || stats.Retried != 0 {
		t.Errorf("stats = %+v", stats)
	}
	out2, stats2, err := a.AnalyzeBatch(units, BatchOptions{JournalPath: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out2[0].Skipped || out2[0].Err == nil {
		t.Fatalf("failed unit not replayed on resume: %+v", out2[0])
	}
	if stats2.Analyzed != 0 {
		t.Errorf("resume stats = %+v", stats2)
	}
}

// TestResumeRequiresJournal asserts the option dependency is enforced.
func TestResumeRequiresJournal(t *testing.T) {
	a := New(Config{})
	if _, _, err := a.AnalyzeBatch(durableUnits(), BatchOptions{Resume: true}); err == nil {
		t.Fatal("Resume without JournalPath accepted")
	}
}

// TestDiagnosticError asserts guard.Diagnostic renders one readable line via
// both the error and Stringer interfaces.
func TestDiagnosticError(t *testing.T) {
	d := guard.Diag(guard.StageParse, "x.c", errors.New("boom"), true)
	var err error = d
	want := "x.c: degraded[parse]: boom"
	if err.Error() != want || d.String() != want {
		t.Fatalf("Error()=%q String()=%q want %q", err.Error(), d.String(), want)
	}
}

// TestBatchSelfPacing runs a batch through the adaptive pacer (MinWorkers
// set): with injected per-unit latency every unit must still complete
// correctly and in order — the pacer may narrow parallelism, never drop or
// reorder work.
func TestBatchSelfPacing(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	if err := failpoint.Arm("pre-parse=sleep:5ms"); err != nil {
		t.Fatal(err)
	}
	units := make([]Unit, 12)
	for i := range units {
		name := "p" + string(rune('a'+i)) + ".c"
		units[i] = Unit{
			Name:   name,
			Source: strings.ReplaceAll(durableSrc, "get_fast", "fast_"+string(rune('a'+i))),
		}
	}
	a := New(Config{})
	out, stats, err := a.AnalyzeBatch(units, BatchOptions{Workers: 4, MinWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != len(units) {
		t.Fatalf("analyzed = %d, want %d", stats.Analyzed, len(units))
	}
	for i, r := range out {
		if r.Unit != units[i].Name {
			t.Fatalf("result %d out of order: %q", i, r.Unit)
		}
		if r.Err != nil {
			t.Fatalf("unit %s failed under pacing: %v", r.Unit, r.Err)
		}
		if len(r.Result.Report.Warnings) == 0 {
			t.Fatalf("unit %s lost its seeded warning", r.Unit)
		}
	}
}
