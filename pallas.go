// Package pallas is a semantic-aware static checking toolkit for finding
// deep bugs in fast paths, reproducing the system described in
//
//	Huang, Allen-Bond, Zhang. "PALLAS: Semantic-Aware Checking for Finding
//	Deep Bugs in Fast Path". ASPLOS 2017.
//
// A fast path is the optimized common-case branch of a workflow. Pallas
// checks five error-prone aspects of a fast path — path state, trigger
// condition, path output, fault handling, and assistant data structures —
// against simple user-provided semantic information (which variables are
// immutable, which variables form the trigger condition, what the defined
// return values are, ...).
//
// Typical use:
//
//	a := pallas.New(pallas.Config{})
//	res, err := a.AnalyzeSource("page_alloc.c", src, `
//	    fastpath get_page_from_freelist
//	    immutable gfp_mask nodemask migratetype
//	`)
//	for _, w := range res.Report.Warnings { fmt.Println(w) }
//
// The analyzer merges the source and its includes into one translation unit
// (as the paper does), parses it with the built-in C front-end, extracts
// bounded symbolic execution paths, and filters them through the five
// checkers.
package pallas

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pallas/internal/cast"
	"pallas/internal/cfg"
	"pallas/internal/checkers"
	"pallas/internal/cparse"
	"pallas/internal/cpp"
	"pallas/internal/difftool"
	"pallas/internal/failpoint"
	"pallas/internal/feas"
	"pallas/internal/guard"
	"pallas/internal/incr"
	"pallas/internal/infer"
	"pallas/internal/pathdb"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
)

// Re-exported result types. The aliases make the internal types part of the
// public API without duplicating them.
type (
	// Warning is one rule violation.
	Warning = report.Warning
	// Report is a set of warnings for one analysis target.
	Report = report.Report
	// Aspect is one of the five fast-path aspects.
	Aspect = report.Aspect
	// Spec is the parsed semantic annotation set.
	Spec = spec.Spec
	// ExecPath is one extracted execution path.
	ExecPath = paths.ExecPath
	// FuncPaths is the extraction result for one function.
	FuncPaths = paths.FuncPaths
	// PathDB is a persistent store of extracted paths.
	PathDB = pathdb.DB
	// Diff is a fast-vs-slow path comparison.
	Diff = difftool.Diff
	// Suggestion is one inferred spec directive.
	Suggestion = infer.Suggestion
	// Diagnostic records one non-fatal problem (crash, budget exhaustion,
	// malformed input) that degraded an analysis.
	Diagnostic = guard.Diagnostic
)

// IsBudget reports whether err is a resource-budget violation (deadline,
// step, or macro-expansion limit) as opposed to a malformed-input error.
// Budget violations always yield a degraded partial result rather than a
// failure.
func IsBudget(err error) bool { return guard.IsBudget(err) }

// The five aspects, re-exported in paper order.
const (
	PathState        = report.PathState
	TriggerCondition = report.TriggerCondition
	PathOutput       = report.PathOutput
	FaultHandling    = report.FaultHandling
	DataStructure    = report.DataStructure
)

// Config configures an Analyzer.
type Config struct {
	// IncludeDirs are searched for #include "..." files.
	IncludeDirs []string
	// Includes optionally serves include files from memory; when set it takes
	// precedence over IncludeDirs.
	Includes map[string]string
	// Defines are predefined object-like macros (CONFIG_ options etc.).
	Defines map[string]string
	// MaxPaths caps extracted paths per function (default 512).
	MaxPaths int
	// MaxBlockVisits bounds loop traversals per path (default 2).
	MaxBlockVisits int
	// InlineDepth bounds callee summarization (default 2).
	InlineDepth int
	// Checkers selects a subset of the five checkers by name ("path-state",
	// "trigger-condition", "path-output", "fault-handling", "data-struct");
	// empty means all.
	Checkers []string
	// Deadline bounds the wall-clock time of one analysis unit. When it
	// expires the unit returns whatever it has (partial paths, the warnings
	// already found) with Report.Degraded set. Zero means no deadline.
	Deadline time.Duration
	// MaxMacroExpansions bounds preprocessor macro replacements per unit,
	// stopping self-referential expansion bombs. Zero applies the
	// preprocessor default (cpp.DefaultMaxExpansions).
	MaxMacroExpansions int64
	// MaxSteps bounds path-extraction block visits per unit; like Deadline,
	// exhaustion degrades instead of failing. Zero means unlimited.
	MaxSteps int64
	// KeepGoing turns malformed-input failures (unparseable functions, bad
	// spec directives, missing includes) into per-stage Diagnostics on a
	// degraded Result instead of errors. Budget exhaustion degrades
	// regardless of this flag.
	KeepGoing bool
	// AnalysisWorkers bounds intra-unit parallelism: per-function path
	// extraction and the five checkers fan out across this many goroutines
	// within one AnalyzeSource call. <= 1 analyzes serially (the default).
	// The output is deterministic regardless of the setting — reports,
	// warning order, diagnostics, saved path databases, and cache keys are
	// byte-identical between 1 and N workers — so the field is deliberately
	// absent from cache-key fingerprints.
	//
	// AnalysisWorkers composes multiplicatively with outer concurrency:
	// AnalyzeBatch runs up to BatchOptions.Workers units at once and `pallas
	// serve` admits up to its -workers requests, each of which may fan out
	// AnalysisWorkers goroutines, so total CPU demand is bounded by
	// outer × AnalysisWorkers. Keep the product near GOMAXPROCS.
	AnalysisWorkers int
	// Precision selects the path-feasibility tier (internal/feas): "fast"
	// (or empty — the default) analyzes exactly as before the feasibility
	// layer existed, byte-identically; "balanced" prunes path continuations
	// whose accumulated branch conditions are interval- or disequality-
	// contradictory before any checker runs; "strict" adds cross-condition
	// equality unification under a per-function step budget. Unlike
	// AnalysisWorkers, the tier CAN change analysis output (pruned paths
	// disappear from path databases and pruned-path counts appear in
	// reports), so non-fast tiers are part of the cache-key fingerprint —
	// tiers never share cache or memo entries — while "fast" keeps the
	// historical fingerprint so existing caches stay warm.
	Precision string
	// Incremental, when non-nil, enables the function-level memo engine
	// (internal/incr): every analyzed function is fingerprinted — its
	// canonical post-preprocess rendering plus the fingerprints of all
	// transitively called functions, over the unit's dependency DAG — and
	// functions whose fingerprint is unchanged replay their memoized path
	// records instead of being re-extracted; a unit where nothing changed
	// replays its whole verdict. Reports, warning order, diagnostics and
	// path databases stay byte-identical to a cold run at any
	// AnalysisWorkers count. Like AnalysisWorkers, the field is absent from
	// cache-key fingerprints: it changes how fast a result is produced,
	// never what is produced.
	Incremental *IncrementalOptions
}

// CheckerNames lists the five checker names in paper order.
func CheckerNames() []string {
	var out []string
	for _, c := range checkers.All() {
		out = append(out, c.Name())
	}
	return out
}

// Analyzer runs the Pallas pipeline.
type Analyzer struct {
	cfg Config

	// Function-level memo store (Config.Incremental), opened lazily so a
	// misconfigured directory degrades to cold analysis unless the caller
	// checks EnsureIncremental.
	incrOnce sync.Once
	incrMemo *incr.Store
	incrErr  error

	// Feasibility tallies across this analyzer's lifetime (see FeasStats).
	feasPruned atomic.Int64
	feasContra atomic.Int64
}

// FeasStats is the cumulative feasibility activity of one analyzer.
type FeasStats = paths.FeasStats

// FeasStats reports how much work the feasibility layer avoided across
// every analysis this analyzer ran: pruned counts discarded path
// continuations (including those replayed from memoized verdicts),
// contradictions counts contradiction events seen during fresh extraction.
// Both are always zero at precision "fast".
func (a *Analyzer) FeasStats() FeasStats {
	return FeasStats{Pruned: a.feasPruned.Load(), Contradictions: a.feasContra.Load()}
}

// New returns an analyzer with the given configuration.
func New(cfg Config) *Analyzer {
	if cfg.MaxPaths <= 0 {
		cfg.MaxPaths = 512
	}
	if cfg.MaxBlockVisits <= 0 {
		cfg.MaxBlockVisits = 2
	}
	if cfg.InlineDepth == 0 {
		cfg.InlineDepth = 2
	}
	return &Analyzer{cfg: cfg}
}

// Result is a completed analysis.
type Result struct {
	// Report holds the warnings, sorted deterministically.
	Report *Report
	// Spec is the effective semantic specification (file + annotations).
	Spec *Spec
	// Paths contains the extracted execution paths for every analyzed
	// function.
	Paths *PathDB
	// Merged is the preprocessed translation-unit text.
	Merged string
	// Diagnostics records every non-fatal problem hit while producing this
	// result: budget exhaustion, crashed stages, and (with KeepGoing)
	// malformed input. Non-empty Diagnostics imply Report.Degraded.
	Diagnostics []Diagnostic

	tu *cast.TranslationUnit
}

// TU exposes the parsed translation unit for advanced consumers (the diff
// tool and the experiment harness).
func (r *Result) TU() *cast.TranslationUnit { return r.tu }

// Degraded reports whether the analysis completed only partially; absence of
// a warning in a degraded result is not evidence of absence of a bug.
func (r *Result) Degraded() bool { return r.Report != nil && r.Report.Degraded }

func (a *Analyzer) source() cpp.Source {
	if a.cfg.Includes != nil {
		return cpp.MapSource(a.cfg.Includes)
	}
	if len(a.cfg.IncludeDirs) > 0 {
		return cpp.FileSource{Dirs: a.cfg.IncludeDirs}
	}
	return nil
}

// AnalyzeFile analyzes one C file on disk with an optional spec document.
func (a *Analyzer) AnalyzeFile(path, specText string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := a.cfg
	if cfg.Includes == nil && len(cfg.IncludeDirs) == 0 {
		cfg.IncludeDirs = []string{filepath.Dir(path)}
	}
	sub := New(cfg)
	return sub.AnalyzeSource(filepath.Base(path), string(b), specText)
}

// AnalyzeSource analyzes in-memory source text with an optional spec
// document. Inline `// @pallas:` annotations in the source are merged with
// specText (specText directives come first).
//
// Each stage of the pipeline runs under the unit's budget and a panic guard.
// Budget exhaustion — and, with Config.KeepGoing, malformed input — degrades
// the result (Diagnostics recorded, Report.Degraded set, remaining healthy
// work still done) instead of failing it.
func (a *Analyzer) AnalyzeSource(name, src, specText string) (*Result, error) {
	// Crash-test hook: inert unless a failpoint is armed (tests, chaos runs).
	if err := failpoint.Hit(failpoint.PreParse, name); err != nil {
		return nil, err
	}
	budget := guard.NewBudget(nil, guard.Limits{
		Deadline:           a.cfg.Deadline,
		MaxSteps:           a.cfg.MaxSteps,
		MaxMacroExpansions: a.cfg.MaxMacroExpansions,
	})
	var diags []Diagnostic
	// tolerate decides a stage error's fate: budget violations always
	// degrade; input errors degrade under KeepGoing, or when an earlier
	// stage already degraded the unit (then the error is a consequence of
	// that, not genuinely malformed input); everything else is fatal and
	// keeps its historical wrapping.
	tolerate := func(stage guard.Stage, err error) bool {
		if guard.IsBudget(err) || a.cfg.KeepGoing || len(diags) > 0 {
			diags = append(diags, guard.Diag(stage, name, err, true))
			return true
		}
		return false
	}

	var merged string
	err := guard.Protect(guard.StagePreprocess, name, func() error {
		pp := cpp.New(a.source())
		pp.Budget = budget
		if a.cfg.MaxMacroExpansions > 0 {
			pp.MaxExpansions = a.cfg.MaxMacroExpansions
		}
		for _, k := range mapKeys(a.cfg.Defines) {
			pp.Define(k, a.cfg.Defines[k])
		}
		var merr error
		merged, merr = pp.MergeText(name, src)
		return merr
	})
	if err != nil && !tolerate(guard.StagePreprocess, err) {
		return nil, fmt.Errorf("pallas: preprocess %s: %w", name, err)
	}

	var tu *cast.TranslationUnit
	err = guard.Protect(guard.StageParse, name, func() error {
		var perr error
		tu, perr = cparse.Parse(name, merged)
		return perr
	})
	if err != nil && !tolerate(guard.StageParse, err) {
		return nil, fmt.Errorf("pallas: parse %s: %w", name, err)
	}
	if tu == nil {
		// The parser crashed before producing even a partial unit; keep the
		// diagnostics and check nothing.
		tu = &cast.TranslationUnit{File: name}
	}

	sp, err := spec.Parse(specText)
	if err != nil {
		if !tolerate(guard.StageSpec, err) {
			return nil, fmt.Errorf("pallas: spec: %w", err)
		}
		sp, _ = spec.Parse("")
	}
	anno, err := spec.FromAnnotations(tu)
	if err != nil && !tolerate(guard.StageSpec, err) {
		return nil, fmt.Errorf("pallas: annotations: %w", err)
	}
	if anno != nil {
		sp.Merge(anno)
	}
	return a.analyze(tu, sp, merged, budget, diags)
}

func (a *Analyzer) analyze(tu *cast.TranslationUnit, sp *spec.Spec, merged string,
	budget *guard.Budget, diags []Diagnostic) (*Result, error) {
	if err := failpoint.Hit(failpoint.PreExtract, tu.File); err != nil {
		return nil, err
	}
	// Validate the checker selection before any (potentially expensive)
	// path extraction happens.
	var selected []checkers.Checker
	for _, n := range a.cfg.Checkers {
		c := checkers.ByName(n)
		if c == nil {
			return nil, fmt.Errorf("pallas: unknown checker %q (have %v)", n, CheckerNames())
		}
		selected = append(selected, c)
	}
	tier, terr := feas.ParseTier(a.cfg.Precision)
	if terr != nil {
		return nil, fmt.Errorf("pallas: %w", terr)
	}
	// Incremental memo: fingerprint the unit over its dependency DAG, replay
	// the whole verdict when nothing changed, otherwise seed extraction with
	// the per-function hits. Pipelines that already degraded run cold —
	// their diagnostics and truncation are timing-dependent, so only clean
	// state is replayed (and, below, stored).
	var memo *memoRun
	if st := a.incrStore(); st != nil {
		memo = a.newMemoRun(st, tu)
		if len(diags) == 0 && budget.Err() == nil {
			if res := memo.replayUnit(tu, sp, merged); res != nil {
				// Replayed verdicts carry the pruned tally of the clean run
				// they memoized; keep the analyzer-level counters moving.
				a.feasPruned.Add(int64(res.Report.PathsPruned))
				return res, nil
			}
		}
	}
	pcfg := paths.Config{
		MaxPaths:       a.cfg.MaxPaths,
		MaxBlockVisits: a.cfg.MaxBlockVisits,
		InlineDepth:    a.cfg.InlineDepth,
		Budget:         budget,
		Workers:        a.cfg.AnalysisWorkers,
		Precision:      tier,
	}
	if pcfg.InlineDepth < 0 {
		pcfg.InlineDepth = 0
	}
	if memo != nil {
		pcfg.Seed = memo.seed(sp)
	}
	// Once any stage has degraded, the unit may be partial (functions the
	// spec names can be missing), so extraction must tolerate gaps too.
	var ctx *checkers.Context
	var err error
	if a.cfg.KeepGoing || len(diags) > 0 {
		ctx, err = checkers.NewContextTolerant(tu, sp, pcfg)
		if err != nil { // only an exhausted budget stops the tolerant path
			diags = append(diags, guard.Diag(guard.StageExtract, tu.File, err, true))
		}
	} else {
		ctx, err = checkers.NewContext(tu, sp, pcfg)
		if err != nil {
			return nil, fmt.Errorf("pallas: %w", err)
		}
	}
	rep := checkers.Run(ctx, selected...)
	fstats := ctx.Extractor.FeasStats()
	a.feasPruned.Add(int64(rep.PathsPruned))
	a.feasContra.Add(fstats.Contradictions)
	diags = append(diags, ctx.Diagnostics...)
	if err := budget.Err(); err != nil && !hasDiagFor(diags, err) {
		diags = append(diags, guard.Diag(guard.StageExtract, tu.File, err, true))
	}
	if len(diags) > 0 {
		rep.Degraded = true
	}

	db := pathdb.New(tu.File)
	// Insert in sorted function order, not map order: pathdb consumers see
	// insertion order through DB.Put, and a saved database must be stable
	// run-to-run and across worker counts.
	fnNames := make([]string, 0, len(ctx.FuncPaths))
	for fn := range ctx.FuncPaths {
		fnNames = append(fnNames, fn)
	}
	sort.Strings(fnNames)
	for _, fn := range fnNames {
		db.Put(ctx.FuncPaths[fn])
	}
	for _, d := range diags {
		db.AddDiagnostic(d)
	}
	if memo != nil && len(diags) == 0 && !rep.Degraded {
		memo.store(ctx.FuncPaths, rep, db)
	}
	return &Result{Report: rep, Spec: sp, Paths: db, Merged: merged, Diagnostics: diags, tu: tu}, nil
}

// ComparePaths runs the study's code-comparison tool on a fast/slow function
// pair within an analyzed result.
func (r *Result) ComparePaths(fast, slow string) (*Diff, error) {
	ff := r.tu.Func(fast)
	sf := r.tu.Func(slow)
	if ff == nil || sf == nil {
		return nil, fmt.Errorf("pallas: compare: function not found (fast=%v slow=%v)", ff != nil, sf != nil)
	}
	return difftool.Compare(r.tu, ff, sf), nil
}

// RenderWorkflow draws the named function's control flow as an ASCII
// workflow in the style of the paper's Figure 1.
func (r *Result) RenderWorkflow(fn string) (string, error) {
	f := r.tu.Func(fn)
	if f == nil {
		return "", fmt.Errorf("pallas: no function %q", fn)
	}
	g, err := cfg.Build(f)
	if err != nil {
		return "", err
	}
	return cfg.RenderWorkflow(g), nil
}

// InferSpec proposes spec directives for a fast/slow pair in an analyzed
// result by treating the slow path as the reference implementation — the
// automated semantic-extraction step the paper leaves as future work.
// Suggestions are ranked by confidence and must be reviewed by a developer.
func (r *Result) InferSpec(fast, slow string) ([]Suggestion, error) {
	return infer.Infer(r.tu, fast, slow, infer.DefaultOptions())
}

// ExtractPaths extracts paths for one function of an analyzed result even if
// the spec did not name it (useful for browsing, Table 5 demos, ...).
func (a *Analyzer) ExtractPaths(name, src, fn string) (*FuncPaths, error) {
	pp := cpp.New(a.source())
	merged, err := pp.MergeText(name, src)
	if err != nil {
		return nil, err
	}
	tu, err := cparse.Parse(name, merged)
	if err != nil {
		return nil, err
	}
	ex := paths.NewExtractor(tu, paths.Config{
		MaxPaths:       a.cfg.MaxPaths,
		MaxBlockVisits: a.cfg.MaxBlockVisits,
		InlineDepth:    a.cfg.InlineDepth,
	})
	return ex.Extract(fn)
}

// hasDiagFor reports whether some diagnostic already mentions err, so the
// final budget sweep does not re-record a violation a stage already reported.
func hasDiagFor(diags []Diagnostic, err error) bool {
	for _, d := range diags {
		if strings.Contains(d.Err, err.Error()) {
			return true
		}
	}
	return false
}

// mapKeys returns m's keys in sorted order. Every consumer (preprocessor
// defines, cache-key fingerprints, error text) relies on the sorting for
// run-to-run stability; TestMapKeysSorted pins the contract.
func mapKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
