package pallas_test

import (
	"fmt"
	"log"

	"pallas"
)

// ExampleAnalyzer_AnalyzeSource checks a fast path that clobbers an immutable
// variable — the paper's canonical deep bug.
func ExampleAnalyzer_AnalyzeSource() {
	src := `
struct page { unsigned long private; };
struct page *get_page_fast(unsigned long gfp_mask, int order, struct page *pool)
{
	if (order == 0) {
		gfp_mask = gfp_mask & 7;
		pool->private = gfp_mask;
		return pool;
	}
	return 0;
}
`
	a := pallas.New(pallas.Config{})
	res, err := a.AnalyzeSource("page.c", src, "fastpath get_page_fast\nimmutable gfp_mask\n")
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Report.Warnings {
		fmt.Printf("rule %s (%s): subject %s at line %d\n", w.Rule, w.Finding, w.Subject, w.Line)
	}
	// Output:
	// rule 1.2 (state-overwrite): subject gfp_mask at line 6
}

// ExampleResult_ComparePaths runs the study's fast-vs-slow diff tool.
func ExampleResult_ComparePaths() {
	src := `
int rcv_fast(int len) { return 0; }
int rcv_slow(int len) {
	if (len < 0)
		return -1;
	return 0;
}
`
	a := pallas.New(pallas.Config{})
	res, err := a.AnalyzeSource("rcv.c", src, "pair rcv_fast rcv_slow\n")
	if err != nil {
		log.Fatal(err)
	}
	d, err := res.ComparePaths("rcv_fast", "rcv_slow")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conditions only in the slow path: %d\n", len(d.CondsSlowOnly))
	fmt.Printf("returns differ: %v\n", d.ReturnsDiffer)
	// Output:
	// conditions only in the slow path: 1
	// returns differ: true
}

// ExampleAnalyzer_ExtractPaths prints Table-5-style execution paths.
func ExampleAnalyzer_ExtractPaths() {
	a := pallas.New(pallas.Config{})
	fp, err := a.ExtractPaths("t.c", `
int f(int order) {
	if (order == 0)
		return 1;
	return 0;
}`, "f")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range fp.Paths {
		fmt.Printf("path %d: cond %q taken %s, returns %s\n",
			p.Index, p.Conds[0].Expr, p.Conds[0].Outcome, p.Out.Sym)
	}
	// Output:
	// path 0: cond "order == 0" taken true, returns (I#1)
	// path 1: cond "order == 0" taken false, returns (I#0)
}
