// Command pallas is the command-line front door to the Pallas toolkit.
//
// Usage:
//
//	pallas check    [-spec file] [-checker name] [-json] file.c
//	pallas paths    -func name [-db out.json] file.c
//	pallas workflow -func name file.c
//	pallas diff     -fast f -slow g [-suggest] file.c
//	pallas corpus   [-system SYS] [-show id]
//
// check runs the five semantic checkers over a C file (spec directives may
// come from -spec and/or inline `// @pallas:` annotations). paths prints the
// Table-5-style symbolic execution paths of one function. workflow renders
// the Figure-1-style ASCII workflow. diff compares a fast path against its
// slow path (the study's code-comparison tool). corpus browses the built-in
// synthetic evaluation corpus.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pallas"
	"pallas/internal/cfg"
	"pallas/internal/corpus"
	"pallas/internal/cparse"
	"pallas/internal/difftool"
	"pallas/internal/failpoint"
	"pallas/internal/feas"
	"pallas/internal/infer"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Deterministic fault injection for crash testing (PALLAS_FAILPOINTS);
	// inert and zero-cost when the variable is unset.
	if err := failpoint.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "pallas:", err)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "paths":
		err = cmdPaths(os.Args[2:])
	case "workflow":
		err = cmdWorkflow(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "infer":
		err = cmdInfer(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "pallas: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pallas:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pallas — semantic-aware checking for fast-path bugs (ASPLOS'17)

commands:
  check    [-spec file] [-checker name] [-json] [-html out]
           [-precision fast|balanced|strict]
           [-timeout d] [-keep-going] [-workers n] [-analysis-workers n]
           [-journal file] [-resume] [-retries n] [-group-commit]
           [-cache-dir dir] [-cache-bytes n]
           [-incr-dir dir] [-incr-bytes n] [-cache-stats]
           file.c...                                          run the checkers
           (exit: 0 clean, 1 warnings, 2 degraded, 3 fatal;
            -journal checkpoints per-file outcomes, -resume skips files the
            journal already settled, -retries retries transient failures,
            -cache-dir replays unchanged files from the result cache,
            -incr-dir replays unchanged *functions* from the per-function
            memo — only edited functions and their transitive callers are
            re-analyzed — and -cache-stats prints hit/miss/reuse counts;
            -precision selects the feasibility tier: fast explores every
            structural path, balanced prunes interval-contradictory paths,
            strict adds budgeted cross-condition equality reasoning)
  serve    [-addr host:port] [-cache-dir dir] [-cache-bytes n]
           [-incr-dir dir] [-incr-bytes n]
           [-cache-peers host:port] [-cache-replicas n] [-cache-stats]
           [-workers n] [-analysis-workers n] [-timeout d] run the HTTP service
           (POST /v1/analyze, GET /v1/report/{key}, /healthz, /metrics;
            SIGTERM drains in-flight requests and exits 0; -cache-peers
            joins a shared cache tier — misses are served by peer replicas,
            verified end to end, degrading to local on any peer fault)
  cluster  [check flags] [-cluster-workers n] [-worker addr]
           [-journal file] [-resume] [-pathdb out.json]
           [-cache-peers] [-cache-replicas n] [-cache-stats]
           [-status-addr host:port] file.c...      distribute check across
           worker processes with crash recovery; stdout and -pathdb output
           are byte-identical to a single-process check at any worker
           count and under any crash schedule; -cache-peers makes worker
           caches one replicated tier under a coordinator-pushed peer map
  worker   [-addr host:port] [serve flags]        run one cluster worker
           (prints "pallas: worker listening on ADDR" to stderr when bound)
  paths    -func name [-db out.json] file.c              print symbolic paths
  workflow -func name [-dot] file.c                      render the workflow
  diff     -fast f -slow g [-suggest] file.c             compare fast vs slow
  infer    -fast f -slow g file.c                        propose spec directives
  corpus   [-system SYS] [-show id] [-export dir]        browse/export the corpus
`)
}

// cmdCheck analyzes the given files on a bounded worker pool and exits with
// the worst per-file outcome: 0 clean, 1 warnings found, 2 analysis degraded
// (deadline hit, malformed input under -keep-going, crashed stage), 3 fatal.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	specPath := fs.String("spec", "", "spec file with semantic directives")
	checker := fs.String("checker", "", "run only the named checker")
	asJSON := fs.Bool("json", false, "emit JSON")
	htmlOut := fs.String("html", "", "additionally write an HTML report to this file")
	precision := fs.String("precision", "", "feasibility tier: fast (default; every structural path), balanced (prune interval-contradictory paths), strict (balanced plus budgeted cross-condition equality reasoning)")
	timeout := fs.Duration("timeout", 0, "per-file analysis deadline; expiry degrades, not fails (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "keep analyzing past malformed input, reporting per-file diagnostics")
	workers := fs.Int("workers", 0, "parallel workers for multiple files (0 = GOMAXPROCS)")
	analysisWorkers := fs.Int("analysis-workers", 0, "goroutines per file for per-function extraction and checkers (<=1 = serial; output is identical at any setting)")
	minWorkers := fs.Int("min-workers", 0, "self-pace: shrink parallelism toward this floor when per-file latency inflates (0 = fixed width)")
	journalPath := fs.String("journal", "", "checkpoint per-file outcomes to this append-only journal (JSONL)")
	resume := fs.Bool("resume", false, "skip files whose content hash already has a terminal journal entry (requires -journal)")
	retries := fs.Int("retries", 0, "retry transient per-file failures up to n times with exponential backoff")
	groupCommit := fs.Bool("group-commit", false, "batch journal fsyncs across workers (higher throughput, same durability)")
	cacheDir := fs.String("cache-dir", "", "replay unchanged files from this persistent result cache (shared with serve)")
	cacheBytes := fs.Int64("cache-bytes", 0, "memory result-cache budget in bytes (0 = default)")
	incrDir := fs.String("incr-dir", "", "function-level incremental memo directory: unchanged functions replay memoized paths instead of re-extracting (output stays byte-identical)")
	incrBytes := fs.Int64("incr-bytes", 0, "incremental memo budget in bytes, memory and disk (0 = default 64MiB; needs -incr-dir or enables a memory-only memo)")
	cacheStats := fs.Bool("cache-stats", false, "print unit-cache and function-memo hit/miss/reuse counts to stderr at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("check: want at least one C file")
	}
	if _, err := feas.ParseTier(*precision); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	specText := ""
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		specText = string(b)
	}
	cfg := pallas.Config{Deadline: *timeout, KeepGoing: *keepGoing, AnalysisWorkers: *analysisWorkers, Precision: *precision}
	if *checker != "" {
		cfg.Checkers = []string{*checker}
	}
	if *incrDir != "" || *incrBytes > 0 {
		cfg.Incremental = &pallas.IncrementalOptions{Dir: *incrDir, MaxBytes: *incrBytes}
	}

	units := make([]pallas.Unit, 0, fs.NArg())
	readErrs := map[string]error{}
	for _, path := range fs.Args() {
		// Every input's directory serves includes, replacing the per-file
		// default of AnalyzeFile.
		if dir := filepath.Dir(path); !contains(cfg.IncludeDirs, dir) {
			cfg.IncludeDirs = append(cfg.IncludeDirs, dir)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			if !*keepGoing {
				return err
			}
			readErrs[path] = err
			continue
		}
		units = append(units, pallas.Unit{Name: filepath.Base(path), Source: string(b), Spec: specText})
	}
	analyzer := pallas.New(cfg)
	results, stats, err := analyzer.AnalyzeBatch(units, pallas.BatchOptions{
		Workers:            *workers,
		MinWorkers:         *minWorkers,
		Retries:            *retries,
		JournalPath:        *journalPath,
		Resume:             *resume,
		JournalGroupCommit: *groupCommit,
		CacheDir:           *cacheDir,
		CacheBytes:         *cacheBytes,
	})
	if err != nil {
		return err
	}

	exit := 0
	raise := func(code int) {
		if code > exit {
			exit = code
		}
	}
	for path, err := range readErrs {
		fmt.Fprintf(os.Stderr, "pallas: %s: %v\n", path, err)
		raise(3)
	}
	pexit, err := printUnitResults(results, printOptions{
		asJSON:  *asJSON,
		htmlOut: *htmlOut,
		multi:   fs.NArg() > 1,
	})
	if err != nil {
		return err
	}
	raise(pexit)
	if *journalPath != "" {
		fmt.Fprintf(os.Stderr,
			"pallas: journal %s: %d analyzed, %d resumed, %d retried, %d quarantined\n",
			*journalPath, stats.Analyzed, stats.Skipped, stats.Retried, stats.Quarantined)
		if stats.JournalTornTail {
			fmt.Fprintln(os.Stderr, "pallas: journal: recovered from a torn tail (crashed mid-checkpoint)")
		}
		if stats.JournalQuarantined > 0 {
			fmt.Fprintf(os.Stderr, "pallas: journal: quarantined %d corrupt record(s) to %s.quarantine\n",
				stats.JournalQuarantined, *journalPath)
		}
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "pallas: cache %s: %d hit(s), %d miss(es)\n",
			*cacheDir, stats.CacheHits, stats.CacheMisses)
	}
	if *cacheStats {
		printCacheStats(os.Stderr, analyzer, stats, *precision)
	}
	if exit != 0 {
		os.Exit(exit)
	}
	return nil
}

// printCacheStats renders the -cache-stats summary: the unit-level result
// cache (batch path), the function-level incremental memo, and the
// feasibility layer, one line each, so warm-run wins and pruning activity
// are visible without scraping /metrics.
func printCacheStats(w io.Writer, a *pallas.Analyzer, stats pallas.BatchStats, precision string) {
	fmt.Fprintf(w, "pallas: unit cache: %d hit(s), %d miss(es), %d analyzed\n",
		stats.CacheHits, stats.CacheMisses, stats.Analyzed)
	is, ok := a.IncrStats()
	if !ok {
		fmt.Fprintln(w, "pallas: func memo: off (enable with -incr-dir)")
	} else {
		total := is.FuncHits + is.FuncMisses + is.UnitHits + is.UnitMisses
		reuse := int64(0)
		if total > 0 {
			reuse = (is.FuncHits + is.UnitHits) * 100 / total
		}
		fmt.Fprintf(w, "pallas: func memo: %d hit(s), %d miss(es), %d invalidation(s); unit verdicts: %d hit(s), %d miss(es); reuse %d%%\n",
			is.FuncHits, is.FuncMisses, is.FuncInvalidations, is.UnitHits, is.UnitMisses, reuse)
	}
	if tier, err := feas.ParseTier(precision); err == nil && tier != feas.Fast {
		fst := a.FeasStats()
		fmt.Fprintf(w, "pallas: feas (%s): %d path(s) pruned, %d contradiction(s)\n",
			tier, fst.Pruned, fst.Contradictions)
	} else {
		fmt.Fprintln(w, "pallas: feas: off (fast tier; enable with -precision balanced|strict)")
	}
}

// printOptions configures printUnitResults.
type printOptions struct {
	asJSON  bool
	htmlOut string
	multi   bool // several inputs: HTML file names get a per-unit suffix
}

// printUnitResults renders batch results the way `check` always has —
// reports to stdout, diagnostics and resume notices to stderr — and returns
// the worst exit code (0 clean, 1 warnings, 2 degraded, 3 fatal). `cluster`
// shares it so distributed runs produce byte-identical stdout.
func printUnitResults(results []pallas.UnitResult, opts printOptions) (int, error) {
	exit := 0
	raise := func(code int) {
		if code > exit {
			exit = code
		}
	}
	for _, r := range results {
		if r.Skipped {
			// Keep stdout identical to an uninterrupted run; the resume
			// notice goes to stderr only.
			fmt.Fprintf(os.Stderr, "pallas: %s: resumed from journal\n", r.Unit)
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "pallas: %s: %v\n", r.Unit, r.Err)
			for _, d := range r.Diagnostics {
				fmt.Fprintln(os.Stderr, "pallas: "+d.String())
			}
			if r.Quarantined {
				fmt.Fprintf(os.Stderr, "pallas: %s: quarantined after %d attempt(s)\n", r.Unit, max(r.Attempts, 1))
			}
			raise(3)
			continue
		}
		res := r.Result
		if len(res.Report.Warnings) > 0 && !opts.asJSON {
			raise(1)
		}
		if res.Degraded() {
			raise(2)
			for _, d := range res.Diagnostics {
				fmt.Fprintln(os.Stderr, "pallas: "+d.String())
			}
		}
		if opts.htmlOut != "" {
			// With several inputs, suffix the HTML file per input.
			out := opts.htmlOut
			if opts.multi {
				out = strings.TrimSuffix(out, ".html") + "-" + sanitize(r.Unit) + ".html"
			}
			if err := writeHTMLReport(res, out); err != nil {
				return exit, err
			}
		}
		if opts.asJSON {
			if err := res.Report.WriteJSON(os.Stdout); err != nil {
				return exit, err
			}
			continue
		}
		if err := res.Report.WriteText(os.Stdout); err != nil {
			return exit, err
		}
		fmt.Println()
		fmt.Print(res.Report.Summary())
	}
	return exit, nil
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func writeHTMLReport(res *pallas.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Report.WriteHTML(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitize maps a file name into a safe HTML-suffix fragment.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func cmdPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	fn := fs.String("func", "", "function to extract")
	dbOut := fs.String("db", "", "write the path database to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *fn == "" {
		return fmt.Errorf("paths: want -func name and one C file")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	a := pallas.New(pallas.Config{})
	fp, err := a.ExtractPaths(fs.Arg(0), string(b), *fn)
	if err != nil {
		return err
	}
	fmt.Printf("%d path(s) of %s", len(fp.Paths), fp.Signature)
	if fp.Truncated {
		fmt.Print(" (truncated)")
	}
	fmt.Println()
	for _, p := range fp.Paths {
		fmt.Print(p)
	}
	if *dbOut != "" {
		res, err := a.AnalyzeSource(fs.Arg(0), string(b), "fastpath "+*fn+"\n")
		if err != nil {
			return err
		}
		if err := res.Paths.Save(*dbOut); err != nil {
			return err
		}
		fmt.Printf("path database written to %s\n", *dbOut)
	}
	return nil
}

func cmdWorkflow(args []string) error {
	fs := flag.NewFlagSet("workflow", flag.ExitOnError)
	fn := fs.String("func", "", "function to render")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of ASCII")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *fn == "" {
		return fmt.Errorf("workflow: want -func name and one C file")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tu, err := cparse.Parse(fs.Arg(0), string(b))
	if err != nil {
		return err
	}
	f := tu.Func(*fn)
	if f == nil {
		return fmt.Errorf("workflow: no function %q", *fn)
	}
	g, err := cfg.Build(f)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(g.Dot())
	} else {
		fmt.Print(cfg.RenderWorkflow(g))
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fast := fs.String("fast", "", "fast-path function")
	slow := fs.String("slow", "", "slow-path function")
	suggest := fs.Bool("suggest", false, "suggest spec directives from the diff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *fast == "" || *slow == "" {
		return fmt.Errorf("diff: want -fast f -slow g and one C file")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tu, err := cparse.Parse(fs.Arg(0), string(b))
	if err != nil {
		return err
	}
	ff, sf := tu.Func(*fast), tu.Func(*slow)
	if ff == nil || sf == nil {
		return fmt.Errorf("diff: function not found (fast=%v slow=%v)", ff != nil, sf != nil)
	}
	d := difftool.Compare(tu, ff, sf)
	fmt.Print(d.String())
	if *suggest {
		fmt.Println("suggested spec directives:")
		for _, s := range d.SuggestSpec() {
			fmt.Println("  " + s)
		}
	}
	return nil
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	fast := fs.String("fast", "", "fast-path function")
	slow := fs.String("slow", "", "slow-path function")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *fast == "" || *slow == "" {
		return fmt.Errorf("infer: want -fast f -slow g and one C file")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tu, err := cparse.Parse(fs.Arg(0), string(b))
	if err != nil {
		return err
	}
	sugg, err := infer.Infer(tu, *fast, *slow, infer.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("# %d suggested directive(s); review before use\n", len(sugg))
	for _, s := range sugg {
		fmt.Printf("%-50s # %.0f%% — %s\n", s.Directive, s.Confidence*100, s.Reason)
	}
	return nil
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	system := fs.String("system", "", "filter by system (MM FS NET DEV WB SDN MOB)")
	show := fs.String("show", "", "print one case (source + spec) by id")
	export := fs.String("export", "", "write every case as <dir>/<id>.c + .pls")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := corpus.Generate()
	if *export != "" {
		n, err := exportCorpus(reg, *export, *system)
		if err != nil {
			return err
		}
		fmt.Printf("exported %d case(s) to %s\n", n, *export)
		return nil
	}
	if *show != "" {
		c := reg.Get(*show)
		if c == nil {
			return fmt.Errorf("corpus: no case %q", *show)
		}
		fmt.Printf("case %s  [%s, %s, %s]\n", c.ID, c.System, c.Kind, c.Finding)
		fmt.Printf("file: %s\noperation: %s\nconsequence: %s\n", c.File, c.Operation, c.Consequence)
		fmt.Println("--- spec ---")
		fmt.Print(c.Spec)
		fmt.Println("--- source ---")
		fmt.Print(c.Source)
		return nil
	}
	for _, c := range reg.Cases {
		if *system != "" && !strings.EqualFold(string(c.System), *system) {
			continue
		}
		fmt.Printf("%-36s %-4s %-5s %s\n", c.ID, c.System, c.Kind, c.Finding)
	}
	return nil
}

// exportCorpus writes each case's source and spec under dir, one pair of
// files per case (slashes in IDs become directories).
func exportCorpus(reg *corpus.Registry, dir, system string) (int, error) {
	n := 0
	for _, c := range reg.Cases {
		if system != "" && !strings.EqualFold(string(c.System), system) {
			continue
		}
		base := filepath.Join(dir, filepath.FromSlash(c.ID))
		if err := os.MkdirAll(filepath.Dir(base), 0o755); err != nil {
			return n, err
		}
		if err := os.WriteFile(base+".c", []byte(c.Source), 0o644); err != nil {
			return n, err
		}
		if err := os.WriteFile(base+".pls", []byte(c.Spec), 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
