package main

// End-to-end proof of serving mode over the real binary: a `pallas serve`
// process answers a cold POST by analyzing (slowed by an armed sleep
// failpoint), answers the identical second POST byte-identically from cache
// at a fraction of the latency, exports exactly one miss and one hit on
// /metrics, and exits 0 on SIGTERM after finishing its in-flight request.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the server under
// test (small race window, harmless in CI).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServe launches the built binary's serve command and waits for
// /healthz to answer.
func startServe(t *testing.T, env []string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	bin := buildPallas(t)
	addr := freePort(t)
	cmd := exec.Command(bin, append([]string{"serve", "-addr", addr}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd, url, &stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type analyzeReply struct {
	Key       string          `json:"key"`
	Cache     string          `json:"cache"`
	Warnings  int             `json:"warnings"`
	Report    json.RawMessage `json:"report"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

func post(t *testing.T, url, name string) (int, analyzeReply) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{
		"name": name,
		"source": `
int fast_path(int mode)
{
	if (mode == 0) {
		mode = 1;
		return 1;
	}
	return 0;
}
`,
		"spec": "fastpath fast_path\nimmutable mode\n",
	})
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out analyzeReply
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad reply %s: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

// TestServeE2EColdWarmMetricsAndDrain is the issue's acceptance run.
func TestServeE2EColdWarmMetricsAndDrain(t *testing.T) {
	// The sleep failpoint makes real analysis cost ~200ms, so the cache-hit
	// speedup assertion is deterministic rather than a timing lottery.
	cmd, url, stderr := startServe(t,
		[]string{"PALLAS_FAILPOINTS=pre-parse=sleep:200ms"},
		"-cache-dir", t.TempDir())

	code, cold := post(t, url, "e2e.c")
	if code != http.StatusOK || cold.Cache != "miss" || cold.Warnings == 0 {
		t.Fatalf("cold: code=%d reply=%+v", code, cold)
	}
	code, warm := post(t, url, "e2e.c")
	if code != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("warm: code=%d cache=%q", code, warm.Cache)
	}
	if !bytes.Equal(cold.Report, warm.Report) {
		t.Fatalf("cache hit not byte-identical\n--- cold ---\n%s\n--- warm ---\n%s",
			cold.Report, warm.Report)
	}
	if warm.ElapsedMS*10 > cold.ElapsedMS {
		t.Fatalf("cache hit not >=10x faster: cold %.2fms, warm %.2fms",
			cold.ElapsedMS, warm.ElapsedMS)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pallas_cache_misses_total 1\n",
		"pallas_cache_hits_total 1\n",
		"pallas_units_analyzed_total 1\n",
		"pallas_requests_total 2\n",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q\n%s", want, mb)
		}
	}

	// Park a distinct unit in flight (200ms of injected analysis), SIGTERM
	// mid-request, and require: the in-flight request completes, and the
	// process exits 0.
	inflight := make(chan int, 1)
	go func() {
		c, _ := post(t, url, "drain.c")
		inflight <- c
	}()
	time.Sleep(60 * time.Millisecond) // inside the 200ms analysis window
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code=%d", code)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("missing drain notice in stderr:\n%s", stderr.String())
	}
}

// TestServeCheckSharedCache proves the CLI and the server share one
// persistent cache: `pallas check -cache-dir` warms it, then a server over
// the same directory (started with the CLI-equivalent analyzer config via
// -include-dir) answers the equivalent POST as a hit without analyzing.
func TestServeCheckSharedCache(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	cacheDir := dir + "/cache"
	src := dir + "/shared.c"
	spec := dir + "/shared.pls"
	source := `
int fast_path(int mode)
{
	if (mode == 0) {
		mode = 1;
		return 1;
	}
	return 0;
}
`
	specText := "fastpath fast_path\nimmutable mode\n"
	if err := os.WriteFile(src, []byte(source), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}

	check := func() string {
		cmd := exec.Command(bin, "check", "-spec", spec, "-cache-dir", cacheDir, src)
		var errBuf bytes.Buffer
		cmd.Stderr = &errBuf
		err := cmd.Run()
		var ee *exec.ExitError
		// Exit 1 is expected: the unit carries a seeded warning.
		if err != nil && (!isExitError(err, &ee) || ee.ExitCode() != 1) {
			t.Fatalf("check: %v\n%s", err, errBuf.String())
		}
		return errBuf.String()
	}
	if got := check(); !strings.Contains(got, "0 hit(s), 1 miss(es)") {
		t.Fatalf("cold check stderr: %s", got)
	}
	if got := check(); !strings.Contains(got, "1 hit(s), 0 miss(es)") {
		t.Fatalf("warm check stderr: %s", got)
	}

	// `check` folds each input's directory into the analyzer config, so the
	// server must mirror it with -include-dir for the cache keys to align.
	_, url, _ := startServe(t, nil, "-cache-dir", cacheDir, "-include-dir", dir)
	body, _ := json.Marshal(map[string]string{
		"name": "shared.c", "source": source, "spec": specText,
	})
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out analyzeReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Cache != "hit" {
		t.Fatalf("server over check's cache dir answered %q, want hit", out.Cache)
	}
	if out.Warnings == 0 {
		t.Fatal("shared entry lost its seeded warning")
	}
}

func isExitError(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}
