package main

// End-to-end crash-resume proof: a real `pallas check -journal` process is
// SIGKILLed mid-run by an armed mid-save failpoint, then re-run with
// -resume. The resumed run must skip the units the journal already settled
// (verified by attempt counts) and produce byte-identical stdout to an
// uninterrupted run.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/journal"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// buildPallas compiles the pallas binary once per test run.
func buildPallas(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pallas-bin")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "pallas")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// writeCrashCorpus writes a small multi-unit corpus where every unit carries
// a seeded immutable-overwrite bug, so reports are non-trivial.
func writeCrashCorpus(t *testing.T, dir string, n int) []string {
	t.Helper()
	var files []string
	for i := 1; i <= n; i++ {
		src := fmt.Sprintf(`
// @pallas: fastpath fast_%[1]d
// @pallas: immutable mode_%[1]d
int fast_%[1]d(int mode_%[1]d)
{
	if (mode_%[1]d == 0) {
		mode_%[1]d = %[1]d;
		return 1;
	}
	return 0;
}
`, i)
		path := filepath.Join(dir, fmt.Sprintf("c%d.c", i))
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	return files
}

// runCheck runs the built binary's check command and returns stdout, stderr
// and the process exit code (-1 when killed by a signal).
func runCheck(t *testing.T, bin string, env []string, args ...string) (string, string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, append([]string{"check"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			t.Fatalf("run %v: %v", args, err)
		}
	}
	if ctx.Err() != nil {
		t.Fatalf("run %v timed out\nstderr:\n%s", args, stderr.String())
	}
	return stdout.String(), stderr.String(), code
}

func TestCrashResumeEndToEnd(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 4)
	jpath := filepath.Join(dir, "checkpoint.jsonl")

	// Reference: an uninterrupted run (journal flags only touch stderr).
	wantOut, _, code := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if code != 1 { // every unit carries a seeded warning
		t.Fatalf("uninterrupted run exit = %d, want 1\n%s", code, wantOut)
	}
	if strings.Count(wantOut, "warning[rule") < 4 {
		t.Fatalf("corpus lost its seeded warnings:\n%s", wantOut)
	}

	// Crash run: SIGKILL the process while it checkpoints c3.c. Units c1 and
	// c2 are already journaled; c3's record is torn mid-write; c4 never ran.
	_, crashErr, code := runCheck(t, bin,
		[]string{failpoint.EnvVar + "=mid-save=kill/c3.c"},
		append([]string{"-workers", "1", "-journal", jpath}, files...)...)
	if code != -1 {
		t.Fatalf("crash run exit = %d, want -1 (SIGKILL)\nstderr:\n%s", code, crashErr)
	}
	recs := readJournal(t, jpath)
	if len(recs) != 2 || recs[0].Unit != "c1.c" || recs[1].Unit != "c2.c" {
		t.Fatalf("journal after crash: %+v", recs)
	}

	// Resume: the journal's torn tail is truncated, settled units are
	// skipped, the rest are analyzed — and stdout matches the reference.
	gotOut, resumeErr, code := runCheck(t, bin, nil,
		append([]string{"-workers", "1", "-journal", jpath, "-resume"}, files...)...)
	if code != 1 {
		t.Fatalf("resume run exit = %d, want 1\nstderr:\n%s", code, resumeErr)
	}
	if gotOut != wantOut {
		t.Fatalf("resumed report differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", wantOut, gotOut)
	}
	for _, want := range []string{
		"c1.c: resumed from journal",
		"c2.c: resumed from journal",
		"recovered from a torn tail",
		"2 analyzed, 2 resumed",
	} {
		if !strings.Contains(resumeErr, want) {
			t.Errorf("resume stderr missing %q:\n%s", want, resumeErr)
		}
	}

	// Attempt counts prove the skips: exactly one record per unit, all
	// attempt 1 — nothing was analyzed twice across the crash.
	recs = readJournal(t, jpath)
	seen := map[string]int{}
	for _, r := range recs {
		seen[r.Unit]++
		if r.Attempt != 1 {
			t.Errorf("unit %s attempt = %d, want 1", r.Unit, r.Attempt)
		}
		if r.Status != journal.StatusOK {
			t.Errorf("unit %s status = %s, want ok", r.Unit, r.Status)
		}
	}
	for i := 1; i <= 4; i++ {
		if unit := fmt.Sprintf("c%d.c", i); seen[unit] != 1 {
			t.Errorf("unit %s has %d journal records, want 1", unit, seen[unit])
		}
	}

	// Idempotence: resuming a completed run analyzes nothing.
	gotOut2, resumeErr2, code := runCheck(t, bin, nil,
		append([]string{"-workers", "1", "-journal", jpath, "-resume"}, files...)...)
	if code != 1 || gotOut2 != wantOut {
		t.Fatalf("second resume drifted (exit %d)", code)
	}
	if !strings.Contains(resumeErr2, "0 analyzed, 4 resumed") {
		t.Errorf("second resume stderr:\n%s", resumeErr2)
	}
}

// TestCheckRetriesTransientFailureEndToEnd drives -retries through the real
// binary: two injected pre-parse faults, success on the third attempt.
func TestCheckRetriesTransientFailureEndToEnd(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 1)
	jpath := filepath.Join(dir, "j.jsonl")

	out, stderr, code := runCheck(t, bin,
		[]string{failpoint.EnvVar + "=pre-parse=error@2/c1.c"},
		"-retries", "3", "-journal", jpath, files[0])
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (warnings found)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "warning[rule") {
		t.Fatalf("recovered run lost its warnings:\n%s", out)
	}
	recs := readJournal(t, jpath)
	if len(recs) != 3 {
		t.Fatalf("journal records = %d, want 3 (2 retry + 1 ok): %+v", len(recs), recs)
	}
	last := recs[len(recs)-1]
	if last.Status != journal.StatusOK || last.Attempt != 3 {
		t.Fatalf("final record: %+v", last)
	}
	for _, r := range recs[:2] {
		if r.Status != journal.StatusRetry {
			t.Fatalf("expected retry record, got %+v", r)
		}
	}
}

// TestCheckQuarantineEndToEnd drives a persistently panicking unit through
// the real binary: the unit is quarantined, the healthy unit still reports,
// and the exit code is fatal.
func TestCheckQuarantineEndToEnd(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 2)
	jpath := filepath.Join(dir, "j.jsonl")

	out, stderr, code := runCheck(t, bin,
		[]string{failpoint.EnvVar + "=pre-parse=panic/c2.c"},
		append([]string{"-workers", "1", "-retries", "2", "-journal", jpath}, files...)...)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (fatal unit)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "warning[rule") {
		t.Fatalf("healthy unit lost its report:\n%s", out)
	}
	if !strings.Contains(stderr, "quarantined after 3 attempt(s)") {
		t.Errorf("stderr missing quarantine notice:\n%s", stderr)
	}
	rec := lookupJournal(t, jpath, "c2.c")
	if rec.Status != journal.StatusQuarantined || rec.Attempt != 3 {
		t.Fatalf("journal record for poisoned unit: %+v", rec)
	}
}

func readJournal(t *testing.T, path string) []journal.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := journal.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func lookupJournal(t *testing.T, path, unit string) journal.Record {
	t.Helper()
	var out journal.Record
	found := false
	for _, r := range readJournal(t, path) {
		if r.Unit == unit {
			out, found = r, true
		}
	}
	if !found {
		t.Fatalf("no journal record for %s", unit)
	}
	return out
}
