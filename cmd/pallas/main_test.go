package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleC = `
// @pallas: fastpath get_fast
// @pallas: immutable mode_flags
struct obj { int state; };
int helper(struct obj *o);
int get_fast(struct obj *o, int mode_flags)
{
	if (o->state == 0) {
		mode_flags = 0;
		return 1;
	}
	return 0;
}
int get_slow(struct obj *o, int mode_flags)
{
	if (mode_flags)
		return -1;
	return 0;
}
`

func writeSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.c")
	if err := os.WriteFile(path, []byte(sampleC), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestCmdPaths(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, func() error {
		return cmdPaths([]string{"-func", "get_fast", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"path(s) of get_fast", "cond", "state"} {
		if !strings.Contains(out, want) {
			t.Errorf("paths output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdPathsDBOutput(t *testing.T) {
	path := writeSample(t)
	dbPath := filepath.Join(t.TempDir(), "db.json")
	_, err := capture(t, func() error {
		return cmdPaths([]string{"-func", "get_fast", "-db", dbPath, path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dbPath); err != nil {
		t.Fatalf("db not written: %v", err)
	}
}

func TestCmdWorkflow(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, func() error {
		return cmdWorkflow([]string{"-func", "get_fast", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "workflow get_fast") || !strings.Contains(out, "Sin") {
		t.Errorf("workflow output:\n%s", out)
	}
	dot, err := capture(t, func() error {
		return cmdWorkflow([]string{"-func", "get_fast", "-dot", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot, "digraph") {
		t.Errorf("dot output:\n%s", dot)
	}
}

func TestCmdDiff(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, func() error {
		return cmdDiff([]string{"-fast", "get_fast", "-slow", "get_slow", "-suggest", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "diff get_fast (fast) vs get_slow (slow)") {
		t.Errorf("diff output:\n%s", out)
	}
	if !strings.Contains(out, "suggested spec directives:") {
		t.Errorf("suggestions missing:\n%s", out)
	}
}

func TestCmdInfer(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, func() error {
		return cmdInfer([]string{"-fast", "get_fast", "-slow", "get_slow", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "immutable mode_flags") {
		t.Errorf("infer output:\n%s", out)
	}
}

func TestCmdCorpus(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdCorpus([]string{"-system", "MM"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mm/") {
		t.Errorf("corpus listing:\n%s", out)
	}
	show, err := capture(t, func() error {
		return cmdCorpus([]string{"-show", "mm/state-overwrite/b0"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(show, "--- source ---") || !strings.Contains(show, "--- spec ---") {
		t.Errorf("corpus show:\n%s", show)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdPaths([]string{"nofunc.c"}); err == nil {
		t.Error("paths without -func should fail")
	}
	if err := cmdDiff([]string{"x.c"}); err == nil {
		t.Error("diff without functions should fail")
	}
	if err := cmdWorkflow([]string{"-func", "f", "/nonexistent/file.c"}); err == nil {
		t.Error("missing file should fail")
	}
	if err := cmdCorpus([]string{"-show", "no/such/case"}); err == nil {
		t.Error("unknown corpus id should fail")
	}
}

func TestCmdCorpusExport(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return cmdCorpus([]string{"-export", dir, "-system", "SDN"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exported") {
		t.Errorf("output: %s", out)
	}
	// Exported pairs must analyze cleanly via check on one known bug case.
	src := filepath.Join(dir, "sdn", "cond-order", "b0.c")
	spec := filepath.Join(dir, "sdn", "cond-order", "b0.pls")
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("exported file missing: %v", err)
	}
	if _, err := os.Stat(spec); err != nil {
		t.Fatalf("exported spec missing: %v", err)
	}
}

func TestCmdCheckCleanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clean.c")
	src := `
// @pallas: fastpath ok_fast
// @pallas: immutable mode
int ok_fast(int mode) {
	if (mode == 0)
		return 1;
	return 0;
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdCheck([]string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 warning(s)") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestCmdCheckHTMLOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clean.c")
	if err := os.WriteFile(path, []byte("int f(void) { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	htmlPath := filepath.Join(dir, "report.html")
	if _, err := capture(t, func() error {
		return cmdCheck([]string{"-html", htmlPath, path})
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatalf("html not written: %v", err)
	}
	if !strings.Contains(string(b), "<title>Pallas report") {
		t.Errorf("html content:\n%s", b)
	}
}

func TestCmdCheckMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"a.c", "b.c"} {
		if err := os.WriteFile(filepath.Join(dir, n),
			[]byte("int f_"+strings.TrimSuffix(n, ".c")+"(void) { return 0; }\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := capture(t, func() error {
		return cmdCheck([]string{filepath.Join(dir, "a.c"), filepath.Join(dir, "b.c")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "0 warning(s)") != 2 {
		t.Errorf("multi-file output:\n%s", out)
	}
}
