package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pallas"
	"pallas/internal/feas"
	"pallas/internal/server"
)

// cmdServe runs the long-lived analysis service: an HTTP/JSON API over the
// same engine as `check`, fronted by the content-addressed result cache and
// a Prometheus /metrics endpoint. SIGTERM/SIGINT starts a graceful drain —
// /healthz flips to 503, new analyze requests are refused, in-flight ones
// finish — and the process exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7777", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 0, "memory result-cache budget in bytes (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (shared with `check -cache-dir`)")
	incrDir := fs.String("incr-dir", "", "persistent function-level memo directory (shared with `check -incr-dir`); re-analyzes only edited functions and their transitive callers")
	incrBytes := fs.Int64("incr-bytes", 0, "function memo byte budget, memory and disk (0 = default)")
	workers := fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS); ceiling of the adaptive limit")
	analysisWorkers := fs.Int("analysis-workers", 0, "goroutines per analysis for per-function extraction and checkers (<=1 = serial; total concurrency is -workers times this)")
	minWorkers := fs.Int("min-workers", 0, "adaptive concurrency floor under sustained latency inflation (0 = 1; equal to -workers disables adaptation)")
	maxQueue := fs.Int("max-queue", 0, "admission queue bound; beyond it requests are shed with 503 (0 = 256, negative = no queueing)")
	rate := fs.Float64("rate", 0, "per-client request rate limit in req/s, keyed by X-Pallas-Client or remote host (0 = unlimited)")
	rateBurst := fs.Float64("rate-burst", 0, "per-client burst size (0 = the rate)")
	globalRate := fs.Float64("global-rate", 0, "server-wide request rate limit in req/s (0 = unlimited)")
	globalBurst := fs.Float64("global-burst", 0, "server-wide burst size (0 = the rate)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive cache disk faults before tripping to memory-only mode (0 = 5, negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long a tripped cache tier stays memory-only before probing recovery (0 = 5s)")
	timeout := fs.Duration("timeout", 0, "per-request deadline covering admission wait and analysis; expiry sheds queued requests and degrades running ones (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "degrade instead of failing on malformed input (matches `check -keep-going`)")
	precision := fs.String("precision", "", "feasibility tier: fast (default), balanced, strict (matches `check -precision`; tiers never share cache entries)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	cacheReplicas := fs.Int("cache-replicas", 0, "shared-cache-tier replication factor (0 = 2)")
	cacheStats := fs.Bool("cache-stats", false, "print unit-cache, function-memo and peer-tier summaries to stderr at exit")
	var cachePeers []string
	fs.Func("cache-peers", "peer cache endpoint host:port forming a static shared cache tier (repeatable; include or omit this server's own -addr, it is excluded from its own remote ops either way)",
		func(addr string) error {
			cachePeers = append(cachePeers, addr)
			return nil
		})
	var includeDirs []string
	fs.Func("include-dir", "serve #include files from this directory (repeatable; match `check` inputs' directories to share cache entries)",
		func(dir string) error {
			includeDirs = append(includeDirs, dir)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if _, err := feas.ParseTier(*precision); err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	acfg := pallas.Config{
		Deadline:        *timeout,
		KeepGoing:       *keepGoing,
		IncludeDirs:     includeDirs,
		AnalysisWorkers: *analysisWorkers,
		Precision:       *precision,
	}
	if *incrDir != "" || *incrBytes > 0 {
		acfg.Incremental = &pallas.IncrementalOptions{Dir: *incrDir, MaxBytes: *incrBytes}
	}
	srv, err := server.New(server.Config{
		Analyzer:         acfg,
		Workers:          *workers,
		MinWorkers:       *minWorkers,
		MaxQueue:         *maxQueue,
		RatePerClient:    *rate,
		RateBurst:        *rateBurst,
		GlobalRate:       *globalRate,
		GlobalBurst:      *globalBurst,
		CacheBytes:       *cacheBytes,
		CacheDir:         *cacheDir,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		CachePeers:       cachePeers,
		CacheReplicas:    *cacheReplicas,
		CacheSelf:        *addr,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Drain on SIGTERM/SIGINT: stop advertising readiness, refuse new
	// analyses, let http.Server.Shutdown hold the listener open for
	// in-flight requests, then exit 0.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "pallas: serve: %v received, draining (in-flight: %d)\n",
			sig, srv.InFlight())
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "pallas: serving on http://%s (cache dir %q)\n", *addr, *cacheDir)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	st := srv.Cache().Stats()
	fmt.Fprintf(os.Stderr, "pallas: serve: drained cleanly (%d analyses, %d cache hits)\n",
		st.Computes, st.Hits)
	if *cacheStats {
		printServerCacheStats(os.Stderr, srv)
	}
	srv.Close()
	return nil
}

// printServerCacheStats renders the serve/worker -cache-stats exit dump: the
// unit result cache, the function memo, the feasibility layer, and the
// shared peer tier, one line each — the same numbers /healthz?verbose=1
// reports, without scraping.
func printServerCacheStats(w io.Writer, srv *server.Server) {
	cs := srv.Cache().Stats()
	fmt.Fprintf(w, "pallas: unit cache: %d hit(s) (%d mem, %d disk), %d miss(es), %d compute(s), %d disk-full prune(s)\n",
		cs.Hits, cs.MemHits, cs.DiskHits, cs.Misses, cs.Computes, cs.DiskFullPrunes)
	if is, ok := srv.IncrStats(); ok {
		fmt.Fprintf(w, "pallas: func memo: %d hit(s), %d miss(es), %d invalidation(s); unit verdicts: %d hit(s), %d miss(es)\n",
			is.FuncHits, is.FuncMisses, is.FuncInvalidations, is.UnitHits, is.UnitMisses)
	} else {
		fmt.Fprintln(w, "pallas: func memo: off (enable with -incr-dir)")
	}
	if tier := srv.FeasTier(); tier != feas.Fast {
		fst := srv.FeasStats()
		fmt.Fprintf(w, "pallas: feas (%s): %d path(s) pruned, %d contradiction(s)\n",
			tier, fst.Pruned, fst.Contradictions)
	} else {
		fmt.Fprintln(w, "pallas: feas: off (fast tier; enable with -precision balanced|strict)")
	}
	ps := srv.PeerTier().Stats()
	if ps.Peers == 0 && ps.Epoch == 0 {
		fmt.Fprintln(w, "pallas: peer cache: off (enable with -cache-peers or cluster mode)")
		return
	}
	fmt.Fprintf(w, "pallas: peer cache: epoch %d, %d peer(s): %d hit(s), %d miss(es), %d rot refusal(s), %d read repair(s), %d timeout(s)\n",
		ps.Epoch, ps.Peers, ps.Hits, ps.Misses, ps.RotRefusals, ps.Repairs, ps.Timeouts)
	fmt.Fprintf(w, "pallas: peer cache: %d put(s) (%d bytes replicated); handoff %d queued, %d drained, %d dropped, %d pending; %d breaker trip(s), %d stale-epoch refusal(s)\n",
		ps.Puts, ps.PutBytes, ps.HandoffQueued, ps.HandoffDrained, ps.HandoffDropped, ps.HandoffPending, ps.BreakerTrips, ps.StaleRefusals)
}
