package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pallas"
	"pallas/internal/server"
)

// cmdServe runs the long-lived analysis service: an HTTP/JSON API over the
// same engine as `check`, fronted by the content-addressed result cache and
// a Prometheus /metrics endpoint. SIGTERM/SIGINT starts a graceful drain —
// /healthz flips to 503, new analyze requests are refused, in-flight ones
// finish — and the process exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7777", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 0, "memory result-cache budget in bytes (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (shared with `check -cache-dir`)")
	incrDir := fs.String("incr-dir", "", "persistent function-level memo directory (shared with `check -incr-dir`); re-analyzes only edited functions and their transitive callers")
	incrBytes := fs.Int64("incr-bytes", 0, "function memo byte budget, memory and disk (0 = default)")
	workers := fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS); ceiling of the adaptive limit")
	analysisWorkers := fs.Int("analysis-workers", 0, "goroutines per analysis for per-function extraction and checkers (<=1 = serial; total concurrency is -workers times this)")
	minWorkers := fs.Int("min-workers", 0, "adaptive concurrency floor under sustained latency inflation (0 = 1; equal to -workers disables adaptation)")
	maxQueue := fs.Int("max-queue", 0, "admission queue bound; beyond it requests are shed with 503 (0 = 256, negative = no queueing)")
	rate := fs.Float64("rate", 0, "per-client request rate limit in req/s, keyed by X-Pallas-Client or remote host (0 = unlimited)")
	rateBurst := fs.Float64("rate-burst", 0, "per-client burst size (0 = the rate)")
	globalRate := fs.Float64("global-rate", 0, "server-wide request rate limit in req/s (0 = unlimited)")
	globalBurst := fs.Float64("global-burst", 0, "server-wide burst size (0 = the rate)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive cache disk faults before tripping to memory-only mode (0 = 5, negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long a tripped cache tier stays memory-only before probing recovery (0 = 5s)")
	timeout := fs.Duration("timeout", 0, "per-request deadline covering admission wait and analysis; expiry sheds queued requests and degrades running ones (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "degrade instead of failing on malformed input (matches `check -keep-going`)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	var includeDirs []string
	fs.Func("include-dir", "serve #include files from this directory (repeatable; match `check` inputs' directories to share cache entries)",
		func(dir string) error {
			includeDirs = append(includeDirs, dir)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	acfg := pallas.Config{
		Deadline:        *timeout,
		KeepGoing:       *keepGoing,
		IncludeDirs:     includeDirs,
		AnalysisWorkers: *analysisWorkers,
	}
	if *incrDir != "" || *incrBytes > 0 {
		acfg.Incremental = &pallas.IncrementalOptions{Dir: *incrDir, MaxBytes: *incrBytes}
	}
	srv, err := server.New(server.Config{
		Analyzer:         acfg,
		Workers:          *workers,
		MinWorkers:       *minWorkers,
		MaxQueue:         *maxQueue,
		RatePerClient:    *rate,
		RateBurst:        *rateBurst,
		GlobalRate:       *globalRate,
		GlobalBurst:      *globalBurst,
		CacheBytes:       *cacheBytes,
		CacheDir:         *cacheDir,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Drain on SIGTERM/SIGINT: stop advertising readiness, refuse new
	// analyses, let http.Server.Shutdown hold the listener open for
	// in-flight requests, then exit 0.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "pallas: serve: %v received, draining (in-flight: %d)\n",
			sig, srv.InFlight())
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "pallas: serving on http://%s (cache dir %q)\n", *addr, *cacheDir)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	st := srv.Cache().Stats()
	fmt.Fprintf(os.Stderr, "pallas: serve: drained cleanly (%d analyses, %d cache hits)\n",
		st.Computes, st.Hits)
	return nil
}
