package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pallas"
	"pallas/internal/server"
)

// cmdServe runs the long-lived analysis service: an HTTP/JSON API over the
// same engine as `check`, fronted by the content-addressed result cache and
// a Prometheus /metrics endpoint. SIGTERM/SIGINT starts a graceful drain —
// /healthz flips to 503, new analyze requests are refused, in-flight ones
// finish — and the process exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7777", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 0, "memory result-cache budget in bytes (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (shared with `check -cache-dir`)")
	workers := fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-request analysis deadline; expiry degrades, not fails (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "degrade instead of failing on malformed input (matches `check -keep-going`)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	var includeDirs []string
	fs.Func("include-dir", "serve #include files from this directory (repeatable; match `check` inputs' directories to share cache entries)",
		func(dir string) error {
			includeDirs = append(includeDirs, dir)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	srv, err := server.New(server.Config{
		Analyzer: pallas.Config{
			Deadline:    *timeout,
			KeepGoing:   *keepGoing,
			IncludeDirs: includeDirs,
		},
		Workers:    *workers,
		CacheBytes: *cacheBytes,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Drain on SIGTERM/SIGINT: stop advertising readiness, refuse new
	// analyses, let http.Server.Shutdown hold the listener open for
	// in-flight requests, then exit 0.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "pallas: serve: %v received, draining (in-flight: %d)\n",
			sig, srv.InFlight())
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "pallas: serving on http://%s (cache dir %q)\n", *addr, *cacheDir)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	st := srv.Cache().Stats()
	fmt.Fprintf(os.Stderr, "pallas: serve: drained cleanly (%d analyses, %d cache hits)\n",
		st.Computes, st.Hits)
	return nil
}
