package main

// Gray-failure acceptance against the real binary: one worker process is
// alive by every probe but 10x slower than its peers (an injected stall on
// every analysis — the classic gray failure no liveness check catches).
// The run must stay byte-identical to a healthy fleet, and with hedging on
// the completion-latency tail must stay in the healthy fleet's range
// instead of inheriting the straggler's. The same runs feed BENCH_gray.json
// (p50/p99 with the gray worker, hedging on vs off) when PALLAS_BENCH_OUT
// is set.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pallas/internal/cluster"
	"pallas/internal/failpoint"
)

// startExternalWorker launches one `pallas worker` process with the given
// extra env, waits for its announced listen address, and returns it. The
// process is killed at test cleanup.
func startExternalWorker(t *testing.T, bin string, env []string) string {
	t.Helper()
	cmd := exec.Command(bin, "worker", "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), cluster.ListenPrefix); ok {
				addrCh <- strings.TrimSpace(rest)
				break
			}
		}
		// Keep draining so the worker never blocks on a full stderr pipe.
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(30 * time.Second):
		t.Fatal("worker never announced its listen address")
		return ""
	}
}

// runClusterExternal runs `pallas cluster` against already-running workers
// and returns stdout, the parsed run stats, and the exit code.
func runClusterExternal(t *testing.T, bin string, addrs []string, files []string,
	extraArgs ...string) (string, cluster.Stats, int) {
	t.Helper()
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	args := []string{"cluster", "-heartbeat", "100ms", "-retry-backoff", "20ms"}
	for _, a := range addrs {
		args = append(args, "-worker", a)
	}
	args = append(args, extraArgs...)
	args = append(args, files...)
	stdout, stderr, code := runPallas(t, bin, []string{"PALLAS_STATS_OUT=" + statsPath}, args...)
	b, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats out missing: %v\nstderr:\n%s", err, stderr)
	}
	var stats cluster.Stats
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatal(err)
	}
	return stdout, stats, code
}

// grayBench is the BENCH_gray.json schema: completion-latency quantiles for
// the same corpus on a healthy 3-worker fleet, and on a fleet where one
// worker is 10x slow — with hedging on and off.
type grayBench struct {
	Units       int     `json:"units"`
	StallMS     int     `json:"gray_stall_ms"`
	HedgeAfter  string  `json:"hedge_after"`
	HostCPUs    int     `json:"host_cpus"`
	HealthyP50  float64 `json:"healthy_p50_ms"`
	HealthyP99  float64 `json:"healthy_p99_ms"`
	HedgedP50   float64 `json:"gray_hedged_p50_ms"`
	HedgedP99   float64 `json:"gray_hedged_p99_ms"`
	UnhedgedP50 float64 `json:"gray_unhedged_p50_ms"`
	UnhedgedP99 float64 `json:"gray_unhedged_p99_ms"`
	Hedges      int     `json:"hedges"`
	HedgeWins   int     `json:"hedge_wins"`
	Identical   bool    `json:"identical_output"`
}

// TestClusterGrayWorkerHedgeBench is the gray-failure acceptance run: three
// fleets over one corpus — all healthy; one worker stalled 300ms per unit
// with hedging on; the same stall with hedging off. Output must be
// byte-identical to `check` in every configuration, hedging must actually
// fire and win against the straggler, and the hedged latency tail must stay
// within 2x of the healthy fleet's (the unhedged tail shows what was
// avoided: it carries the full stall). Fresh worker processes per run so no
// result cache hides the stall.
func TestClusterGrayWorkerHedgeBench(t *testing.T) {
	benchOut := os.Getenv("PALLAS_BENCH_OUT")
	bin := buildPallas(t)
	dir := t.TempDir()
	const nUnits = 18
	const stall = 300 * time.Millisecond
	files := writeCrashCorpus(t, dir, nUnits)

	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}
	slowEnv := []string{failpoint.EnvVar + "=pre-extract=sleep:" + stall.String()}
	freshFleet := func(grayWorker bool) []string {
		addrs := []string{startExternalWorker(t, bin, nil), startExternalWorker(t, bin, nil)}
		env := []string(nil)
		if grayWorker {
			env = slowEnv
		}
		return append(addrs, startExternalWorker(t, bin, env))
	}
	check := func(mode, out string, code int) {
		t.Helper()
		if code != wantCode {
			t.Fatalf("[%s] exit = %d, want %d", mode, code, wantCode)
		}
		if out != wantOut {
			t.Fatalf("[%s] stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", mode, wantOut, out)
		}
	}

	outH, healthy, code := runClusterExternal(t, bin, freshFleet(false), files, "-hedge-after", "100ms")
	check("healthy", outH, code)
	outG, hedged, code := runClusterExternal(t, bin, freshFleet(true), files, "-hedge-after", "100ms")
	check("gray-hedged", outG, code)
	outU, unhedged, code := runClusterExternal(t, bin, freshFleet(true), files, "-hedge-after", "0")
	check("gray-unhedged", outU, code)

	if hedged.Hedges == 0 || hedged.HedgeWins == 0 {
		t.Fatalf("hedging never fired against the gray worker: %d hedges, %d wins (stats %+v)",
			hedged.Hedges, hedged.HedgeWins, hedged)
	}
	if unhedged.Hedges != 0 {
		t.Fatalf("-hedge-after 0 still hedged %d time(s)", unhedged.Hedges)
	}
	// The acceptance bound: a winning hedge records the rescuing worker's
	// service time, so the gray fleet's tail must stay within 2x of the
	// healthy fleet's. The small absolute floor keeps scheduler noise on
	// sub-10ms baseline quantiles from failing the ratio.
	allowed := 2 * healthy.LatencyP99MS
	if allowed < 60 {
		allowed = 60
	}
	if hedged.LatencyP99MS > allowed {
		t.Errorf("hedged p99 %.1fms exceeds 2x healthy p99 %.1fms",
			hedged.LatencyP99MS, healthy.LatencyP99MS)
	}
	if unhedged.LatencyP99MS <= hedged.LatencyP99MS {
		t.Errorf("unhedged p99 %.1fms not worse than hedged %.1fms — the gray stall never reached the tail?",
			unhedged.LatencyP99MS, hedged.LatencyP99MS)
	}
	t.Logf("gray bench: healthy p50/p99 %.1f/%.1fms; hedged %.1f/%.1fms (%d hedges, %d wins); unhedged %.1f/%.1fms",
		healthy.LatencyP50MS, healthy.LatencyP99MS, hedged.LatencyP50MS, hedged.LatencyP99MS,
		hedged.Hedges, hedged.HedgeWins, unhedged.LatencyP50MS, unhedged.LatencyP99MS)

	if benchOut == "" {
		return
	}
	bench := grayBench{
		Units: nUnits, StallMS: int(stall.Milliseconds()), HedgeAfter: "100ms",
		HostCPUs:   runtime.NumCPU(),
		HealthyP50: healthy.LatencyP50MS, HealthyP99: healthy.LatencyP99MS,
		HedgedP50: hedged.LatencyP50MS, HedgedP99: hedged.LatencyP99MS,
		UnhedgedP50: unhedged.LatencyP50MS, UnhedgedP99: unhedged.LatencyP99MS,
		Hedges: hedged.Hedges, HedgeWins: hedged.HedgeWins, Identical: true,
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gray bench written to %s\n", benchOut)
}
