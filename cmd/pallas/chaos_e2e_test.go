package main

// Chaos acceptance run for the overload layer, against the real binary with
// failpoints armed from the environment: a `pallas serve` process whose every
// analysis costs an injected 60ms and whose persistent cache disk faults on
// its first three stores must
//
//   - serve every request whose analysis succeeded, disk faults or not,
//     while the cache breaker trips to memory-only mode and later recovers;
//   - under a 16x burst of offered load, keep admitted-request latency within
//     2x the unloaded baseline by shedding the excess with 503 + Retry-After;
//   - drain on SIGTERM within -drain-timeout, completing in-flight work.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// chaosHealth mirrors the verbose healthz fields the chaos run asserts on.
type chaosHealth struct {
	Status          string `json:"status"`
	CacheTier       string `json:"cache_tier"`
	CacheDiskFaults int64  `json:"cache_disk_faults"`
	BreakerTrips    int64  `json:"cache_breaker_trips"`
	EffectiveLimit  int    `json:"effective_limit"`
	Shed            struct {
		QueueFull int64 `json:"queue_full"`
	} `json:"shed"`
}

func chaosHealthz(t *testing.T, url string) chaosHealth {
	t.Helper()
	resp, err := http.Get(url + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h chaosHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// chaosPost posts one distinct unit and returns status, latency, Retry-After
// header, and decoded error body (for non-200s).
func chaosPost(t *testing.T, url, name string) (int, time.Duration, string, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{
		"name": name,
		"source": strings.ReplaceAll(`
int fast_path(int mode)
{
	if (mode == 0) {
		mode = 1;
		return 1;
	}
	return 0;
}
`, "fast_path", "f_"+strings.TrimSuffix(name, ".c")),
		"spec": strings.ReplaceAll("fastpath fast_path\nimmutable mode\n",
			"fast_path", "f_"+strings.TrimSuffix(name, ".c")),
	})
	start := time.Now()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var errBody map[string]any
	if resp.StatusCode != http.StatusOK {
		if err := json.Unmarshal(raw, &errBody); err != nil {
			t.Fatalf("%s: non-200 body is not JSON: %s", name, raw)
		}
	}
	return resp.StatusCode, elapsed, resp.Header.Get("Retry-After"), errBody
}

// TestServeChaosOverloadAndBreaker is the issue's chaos acceptance run.
func TestServeChaosOverloadAndBreaker(t *testing.T) {
	const workers = 4
	cmd, url, stderr := startServe(t,
		// Every analysis sleeps 60ms; the first three cache stores fault.
		[]string{"PALLAS_FAILPOINTS=pre-parse=sleep:60ms;cache-store=error@3"},
		"-cache-dir", t.TempDir(),
		"-workers", fmt.Sprint(workers),
		"-min-workers", "1",
		"-max-queue", "-1", // strict-latency config: shed instead of queueing
		"-breaker-threshold", "3",
		"-breaker-cooldown", "300ms",
		"-drain-timeout", "10s")

	// Phase 1 — unloaded baseline, and the breaker trip: three sequential
	// analyses succeed (200) even though each one's cache store faults; the
	// third fault trips the persistent tier open.
	var baseline time.Duration
	for i := 0; i < 3; i++ {
		code, elapsed, _, _ := chaosPost(t, url, fmt.Sprintf("base%d.c", i))
		if code != http.StatusOK {
			t.Fatalf("baseline request %d with faulting disk: status %d, want 200", i, code)
		}
		if elapsed > baseline {
			baseline = elapsed
		}
	}
	h := chaosHealthz(t, url)
	if h.CacheTier != "open" || h.CacheDiskFaults != 3 || h.BreakerTrips != 1 {
		t.Fatalf("after 3 store faults: health = %+v, want open tier, 3 faults, 1 trip", h)
	}

	// Phase 2 — breaker recovery: the fault budget (@3) is spent and the
	// cooldown has passed, so the next store is the half-open probe and
	// succeeds, closing the breaker.
	time.Sleep(350 * time.Millisecond)
	if code, _, _, _ := chaosPost(t, url, "probe.c"); code != http.StatusOK {
		t.Fatalf("probe request: status %d", code)
	}
	if h = chaosHealthz(t, url); h.CacheTier != "closed" {
		t.Fatalf("after recovery probe: cache tier = %q, want closed", h.CacheTier)
	}

	// Phase 3 — 16x offered load: 64 simultaneous distinct units against 4
	// workers. Admission control must shed the excess immediately (503 with a
	// usable Retry-After) so the admitted requests' latency stays within 2x
	// the unloaded baseline.
	const offered = 16 * workers
	type outcome struct {
		code       int
		elapsed    time.Duration
		retryAfter string
		body       map[string]any
	}
	outcomes := make([]outcome, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, elapsed, ra, body := chaosPost(t, url, fmt.Sprintf("load%d.c", i))
			outcomes[i] = outcome{code, elapsed, ra, body}
		}(i)
	}
	wg.Wait()

	var admittedLat []time.Duration
	shed := 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			admittedLat = append(admittedLat, o.elapsed)
		case http.StatusServiceUnavailable:
			shed++
			if o.retryAfter == "" {
				t.Fatalf("request %d shed without Retry-After", i)
			}
			if ms, ok := o.body["retry_after_ms"].(float64); !ok || ms <= 0 {
				t.Fatalf("request %d shed body lacks retry_after_ms: %v", i, o.body)
			}
		default:
			t.Fatalf("request %d: unexpected status %d (%v)", i, o.code, o.body)
		}
	}
	if len(admittedLat) < workers {
		t.Fatalf("admitted %d requests, want >= %d", len(admittedLat), workers)
	}
	if shed == 0 {
		t.Fatal("16x load shed nothing — admission control is not engaging")
	}
	sort.Slice(admittedLat, func(i, j int) bool { return admittedLat[i] < admittedLat[j] })
	p99 := admittedLat[(len(admittedLat)*99+99)/100-1]
	if p99 > 2*baseline {
		t.Fatalf("p99 admitted latency %v exceeds 2x unloaded baseline %v (admitted %d, shed %d)",
			p99, baseline, len(admittedLat), shed)
	}
	if h = chaosHealthz(t, url); h.Shed.QueueFull == 0 {
		t.Fatalf("shed accounting missing from healthz: %+v", h)
	}

	// Phase 4 — SIGTERM drain under the same chaos config: an in-flight
	// analysis completes, the process exits 0 well inside -drain-timeout.
	inflight := make(chan int, 1)
	go func() {
		code, _, _, _ := chaosPost(t, url, "drain.c")
		inflight <- code
	}()
	time.Sleep(20 * time.Millisecond) // inside drain.c's 60ms analysis window
	drainStart := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", code)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exited non-zero: %v\nstderr:\n%s", err, stderr.String())
	}
	if drained := time.Since(drainStart); drained > 10*time.Second {
		t.Fatalf("drain took %v, over -drain-timeout", drained)
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("missing drain notice:\n%s", stderr.String())
	}
}
