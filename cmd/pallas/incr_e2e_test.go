package main

// End-to-end crash safety of the function-level memo store: a real
// `pallas check -incr-dir` process is SIGKILLed at a memo save, and the next
// run over the same store must load it cleanly — prior entries replay, the
// interrupted unit re-analyzes, and stdout stays byte-identical to an
// uninterrupted run. Also covers the -cache-stats flag end to end.

import (
	"path/filepath"
	"strings"
	"testing"

	"pallas/internal/failpoint"
)

func TestIncrCrashMidSaveEndToEnd(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 3)
	incrDir := filepath.Join(dir, "memo")

	// Reference: an uninterrupted run without the memo.
	wantOut, _, code := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if code != 1 { // every unit carries a seeded warning
		t.Fatalf("reference run exit = %d, want 1\n%s", code, wantOut)
	}

	// Populate the store with c1.c's entries only.
	out, _, code := runCheck(t, bin, nil, "-workers", "1", "-incr-dir", incrDir, files[0])
	if code != 1 {
		t.Fatalf("populate run exit = %d, want 1\n%s", code, out)
	}

	// Crash run over all three units: c1.c replays its verdict, then the
	// first persistent memo write for c2.c SIGKILLs the process mid-save.
	_, crashErr, code := runCheck(t, bin,
		[]string{failpoint.EnvVar + "=cache-store=kill"},
		append([]string{"-workers", "1", "-incr-dir", incrDir}, files...)...)
	if code != -1 {
		t.Fatalf("crash run exit = %d, want -1 (SIGKILL)\nstderr:\n%s", code, crashErr)
	}

	// Recovery: the store must load with c1.c's entries intact and nothing
	// torn — c1.c replays, c2.c and c3.c analyze, stdout matches reference.
	gotOut, stderr, code := runCheck(t, bin, nil,
		append([]string{"-workers", "1", "-incr-dir", incrDir, "-cache-stats"}, files...)...)
	if code != 1 {
		t.Fatalf("recovery run exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if gotOut != wantOut {
		t.Fatalf("recovery report differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", wantOut, gotOut)
	}
	if !strings.Contains(stderr, "unit verdicts: 1 hit(s), 2 miss(es)") {
		t.Errorf("recovery -cache-stats should show c1.c's surviving verdict:\n%s", stderr)
	}

	// Fully warm re-run: every verdict replays, reuse is total.
	gotOut2, stderr2, code := runCheck(t, bin, nil,
		append([]string{"-workers", "1", "-incr-dir", incrDir, "-cache-stats"}, files...)...)
	if code != 1 || gotOut2 != wantOut {
		t.Fatalf("warm run drifted (exit %d)\nstderr:\n%s", code, stderr2)
	}
	for _, want := range []string{"unit verdicts: 3 hit(s), 0 miss(es)", "reuse 100%"} {
		if !strings.Contains(stderr2, want) {
			t.Errorf("warm -cache-stats missing %q:\n%s", want, stderr2)
		}
	}
}

// TestIncrCacheStatsWithoutStore: -cache-stats alone still prints the unit
// cache line and points at -incr-dir for the memo.
func TestIncrCacheStatsWithoutStore(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 1)

	_, stderr, code := runCheck(t, bin, nil, "-cache-stats", files[0])
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{"unit cache:", "func memo: off"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}
