package main

// Chaos acceptance for cluster mode, against the real binary: stdout and the
// merged path database must be byte-identical to a single-process `check` at
// any worker count and under any crash schedule. Three schedules are driven:
// every worker SIGKILLed by an armed failpoint on its first unit (and
// restarted by the supervisor), the coordinator itself SIGKILLed mid-run and
// resumed from its journal, and the plain 1-vs-3-worker comparison. The
// bench artifact test times the same corpus at 1/2/4 worker processes and
// writes BENCH_cluster.json when PALLAS_BENCH_OUT is set.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"pallas/internal/failpoint"
)

// runPallas runs the built binary with the given subcommand and returns
// stdout, stderr and the exit code (-1 when killed by a signal).
func runPallas(t *testing.T, bin string, env []string, args ...string) (string, string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			t.Fatalf("run %v: %v", args, err)
		}
	}
	if ctx.Err() != nil {
		t.Fatalf("run %v timed out\nstderr:\n%s", args, stderr.String())
	}
	return stdout.String(), stderr.String(), code
}

// TestClusterWorkerCrashByteIdentical is the worker-side chaos proof: with
// every spawned worker armed to SIGKILL itself on its first unit (restarts
// clear the failpoint), a 3-worker cluster run must still produce stdout and
// a merged path database byte-identical to both a single-process `check`
// and a 1-worker cluster run.
func TestClusterWorkerCrashByteIdentical(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 14)
	db1 := filepath.Join(dir, "db1.json")
	db3 := filepath.Join(dir, "db3.json")

	// Reference: single-process check (every unit carries a seeded warning).
	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}

	// 1-worker cluster, no faults: the merge baseline.
	out1, err1, code := runPallas(t, bin, nil,
		append([]string{"cluster", "-cluster-workers", "1", "-pathdb", db1}, files...)...)
	if code != wantCode {
		t.Fatalf("1-worker cluster exit = %d, want %d\nstderr:\n%s", code, wantCode, err1)
	}
	if out1 != wantOut {
		t.Fatalf("1-worker cluster stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", wantOut, out1)
	}

	// 3-worker cluster where each worker is SIGKILLed on its first unit.
	out3, err3, code := runPallas(t, bin,
		[]string{failpoint.EnvVar + "=pre-parse=kill@1"},
		append([]string{"cluster", "-cluster-workers", "3",
			"-heartbeat", "100ms", "-retry-backoff", "20ms", "-pathdb", db3}, files...)...)
	if code != wantCode {
		t.Fatalf("chaos cluster exit = %d, want %d\nstderr:\n%s", code, wantCode, err3)
	}
	if out3 != wantOut {
		t.Fatalf("chaos cluster stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", wantOut, out3)
	}
	if !strings.Contains(err3, "restarting") {
		t.Errorf("chaos run stderr shows no worker restart — failpoint never fired?\n%s", err3)
	}

	b1, err := os.ReadFile(db1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := os.ReadFile(db3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("merged path database differs between 1 worker and 3 crashing workers\n--- 1 ---\n%s\n--- 3 ---\n%s", b1, b3)
	}
}

// TestClusterCoordinatorKillResume is the coordinator-side chaos proof: the
// cluster process (and its whole process group, workers included) is
// SIGKILLed once the journal holds some terminal records, then re-run with
// -resume. The resumed run must replay the settled units instead of
// re-analyzing them, produce byte-identical stdout, and leave exactly one
// terminal journal record per unit — nothing lost, nothing recorded twice.
func TestClusterCoordinatorKillResume(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	files := writeCrashCorpus(t, dir, 16)
	jpath := filepath.Join(dir, "cluster.jsonl")

	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}

	// Slow every worker analysis down so the kill lands mid-run, and put the
	// cluster in its own process group so SIGKILL takes the workers too (the
	// supervisor gets no chance to clean up — that is the point).
	cmd := exec.Command(bin, append([]string{"cluster",
		"-cluster-workers", "2", "-journal", jpath}, files...)...)
	cmd.Env = append(os.Environ(), failpoint.EnvVar+"=pre-extract=sleep:400ms")
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until at least two units have terminal records, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
			cmd.Wait()
			t.Fatal("cluster run produced no terminal journal records in time")
		}
		b, _ := os.ReadFile(jpath)
		if bytes.Count(b, []byte(`"status":"ok"`)) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	cmd.Wait()

	// Resume without the stall: settled units replay, the rest analyze.
	gotOut, gotErr, code := runPallas(t, bin, nil,
		append([]string{"cluster", "-cluster-workers", "2",
			"-journal", jpath, "-resume"}, files...)...)
	if code != wantCode {
		t.Fatalf("resumed cluster exit = %d, want %d\nstderr:\n%s", code, wantCode, gotErr)
	}
	if gotOut != wantOut {
		t.Fatalf("resumed cluster stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", wantOut, gotOut)
	}
	if !strings.Contains(gotErr, "resumed from journal") {
		t.Errorf("resume stderr shows no replayed unit — kill landed after the run finished?\n%s", gotErr)
	}

	// Exactly-once across the crash: one terminal record per unit, total.
	terminal := map[string]int{}
	for _, r := range readJournal(t, jpath) {
		if r.Status.Terminal() {
			terminal[r.Unit]++
		}
	}
	for i := 1; i <= len(files); i++ {
		unit := fmt.Sprintf("c%d.c", i)
		if terminal[unit] != 1 {
			t.Errorf("unit %s has %d terminal journal records, want exactly 1", unit, terminal[unit])
		}
	}
}

// clusterBench is the BENCH_cluster.json schema: wall time and units/sec for
// the same corpus at 1, 2 and 4 worker processes, with a fixed injected
// stall per unit so the workload is uniform across hosts.
type clusterBench struct {
	Units    int `json:"units"`
	StallMS  int `json:"stall_ms"`
	Inflight int `json:"inflight"`
	HostCPUs int `json:"host_cpus"`
	Runs     []struct {
		WorkerProcs int     `json:"worker_procs"`
		Seconds     float64 `json:"seconds"`
		UnitsPerSec float64 `json:"units_per_sec"`
	} `json:"runs"`
	Speedup4v1 float64 `json:"speedup_4_vs_1"`
	Identical  bool    `json:"identical_output"`
}

// TestClusterBenchArtifact times a 24-unit corpus at 1/2/4 worker processes
// (each unit carrying a 100ms injected stall, so throughput scales with
// process count rather than host speed), re-asserts byte-identical stdout
// across all counts, and writes BENCH_cluster.json when PALLAS_BENCH_OUT is
// set. Ratios are recorded, not asserted: spawn overhead dominates on slow
// runners.
func TestClusterBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	bin := buildPallas(t)
	dir := t.TempDir()
	const nUnits = 24
	files := writeCrashCorpus(t, dir, nUnits)
	env := []string{failpoint.EnvVar + "=pre-extract=sleep:100ms"}

	bench := clusterBench{Units: nUnits, StallMS: 100, Inflight: 2, HostCPUs: runtime.NumCPU()}
	var firstOut string
	var wall [3]time.Duration
	for i, procs := range []int{1, 2, 4} {
		start := time.Now()
		stdout, stderr, code := runPallas(t, bin, env,
			append([]string{"cluster",
				"-cluster-workers", fmt.Sprint(procs),
				"-workers", "2", "-inflight", "2"}, files...)...)
		wall[i] = time.Since(start)
		if code != 1 {
			t.Fatalf("%d-worker bench run exit = %d, want 1\nstderr:\n%s", procs, code, stderr)
		}
		if i == 0 {
			firstOut = stdout
		} else if stdout != firstOut {
			t.Errorf("%d-worker stdout differs from 1-worker stdout", procs)
		}
		bench.Runs = append(bench.Runs, struct {
			WorkerProcs int     `json:"worker_procs"`
			Seconds     float64 `json:"seconds"`
			UnitsPerSec float64 `json:"units_per_sec"`
		}{procs, wall[i].Seconds(), float64(nUnits) / wall[i].Seconds()})
	}
	bench.Speedup4v1 = float64(wall[0].Nanoseconds()) / float64(wall[2].Nanoseconds())
	bench.Identical = true
	t.Logf("cluster bench: %d units, stall %dms: 1p %.2fs, 2p %.2fs, 4p %.2fs (4v1 %.2fx)",
		nUnits, bench.StallMS, wall[0].Seconds(), wall[1].Seconds(), wall[2].Seconds(), bench.Speedup4v1)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
