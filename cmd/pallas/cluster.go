package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pallas"
	"pallas/internal/cluster"
	"pallas/internal/feas"
	"pallas/internal/journal"
	"pallas/internal/metrics"
	"pallas/internal/server"
)

// cmdWorker runs one cluster worker: the serve engine bound to an explicit
// listener (usually an ephemeral port) that announces its address on stderr
// as "pallas: worker listening on ADDR" so the supervisor can find it. The
// cluster dispatch endpoint (/v1/cluster/unit) shares the worker's result
// cache, admission control and gate with plain serve traffic.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks an ephemeral port, announced on stderr)")
	cacheBytes := fs.Int64("cache-bytes", 0, "memory result-cache budget in bytes (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (shared across the cluster)")
	incrDir := fs.String("incr-dir", "", "persistent function-level memo directory (shared with `check -incr-dir`)")
	incrBytes := fs.Int64("incr-bytes", 0, "function memo byte budget, memory and disk (0 = default)")
	workers := fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
	analysisWorkers := fs.Int("analysis-workers", 0, "goroutines per analysis (<=1 = serial; output is identical at any setting)")
	minWorkers := fs.Int("min-workers", 0, "adaptive concurrency floor (0 = 1)")
	maxQueue := fs.Int("max-queue", 0, "admission queue bound (0 = 256, negative = no queueing)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "degrade instead of failing on malformed input")
	checker := fs.String("checker", "", "run only the named checker")
	precision := fs.String("precision", "", "feasibility tier: fast (default), balanced, strict (matches `check -precision`)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	cacheReplicas := fs.Int("cache-replicas", 0, "shared-cache-tier replication factor (0 = 2)")
	cacheStats := fs.Bool("cache-stats", false, "print unit-cache, function-memo and peer-tier summaries to stderr at exit")
	var cachePeers []string
	fs.Func("cache-peers", "peer cache endpoint host:port forming a static shared cache tier (repeatable; in cluster mode the coordinator pushes the map instead)",
		func(addr string) error {
			cachePeers = append(cachePeers, addr)
			return nil
		})
	var includeDirs []string
	fs.Func("include-dir", "serve #include files from this directory (repeatable)",
		func(dir string) error {
			includeDirs = append(includeDirs, dir)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("worker: unexpected arguments %v", fs.Args())
	}
	if _, err := feas.ParseTier(*precision); err != nil {
		return fmt.Errorf("worker: %w", err)
	}

	acfg := pallas.Config{
		Deadline:        *timeout,
		KeepGoing:       *keepGoing,
		IncludeDirs:     includeDirs,
		AnalysisWorkers: *analysisWorkers,
		Precision:       *precision,
	}
	if *checker != "" {
		acfg.Checkers = []string{*checker}
	}
	if *incrDir != "" || *incrBytes > 0 {
		acfg.Incremental = &pallas.IncrementalOptions{Dir: *incrDir, MaxBytes: *incrBytes}
	}
	srv, err := server.New(server.Config{
		Analyzer:      acfg,
		Workers:       *workers,
		MinWorkers:    *minWorkers,
		MaxQueue:      *maxQueue,
		CacheBytes:    *cacheBytes,
		CacheDir:      *cacheDir,
		CachePeers:    cachePeers,
		CacheReplicas: *cacheReplicas,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	srv.SetAdvertiseAddr(bound)
	hs := &http.Server{Handler: srv.Handler()}

	// Drain on SIGTERM/SIGINT, as serve does; SIGKILL (the chaos harness)
	// of course skips all of this — that is the point of the crash tests.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		<-sigs
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- hs.Shutdown(ctx)
	}()

	// The supervisor parses this exact line for the ephemeral port.
	fmt.Fprintln(os.Stderr, cluster.ListenPrefix+bound)
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("worker: drain incomplete: %w", err)
	}
	st := srv.Cache().Stats()
	fmt.Fprintf(os.Stderr, "pallas: worker: drained cleanly (%d analyses, %d cache hits)\n",
		st.Computes, st.Hits)
	if *cacheStats {
		printServerCacheStats(os.Stderr, srv)
	}
	srv.Close()
	return nil
}

// cmdCluster distributes `check` across worker processes: units are sharded
// by content hash, dispatched with work stealing, requeued when workers die,
// and merged in input order so stdout and -pathdb output are byte-identical
// to a single-process `check` at any worker count and under any crash
// schedule. -journal makes the coordinator itself crash-recoverable: a
// killed coordinator rerun with -resume replays finished units from the
// journal instead of re-analyzing them.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	specPath := fs.String("spec", "", "spec file with semantic directives")
	checker := fs.String("checker", "", "run only the named checker")
	asJSON := fs.Bool("json", false, "emit JSON")
	htmlOut := fs.String("html", "", "additionally write an HTML report to this file")
	precision := fs.String("precision", "", "feasibility tier on workers: fast (default), balanced, strict (matches `check -precision`)")
	timeout := fs.Duration("timeout", 0, "per-file analysis deadline on workers (0 = none)")
	keepGoing := fs.Bool("keep-going", false, "keep analyzing past malformed input, reporting per-file diagnostics")
	workers := fs.Int("workers", 0, "concurrent analyses inside each worker process (0 = GOMAXPROCS)")
	analysisWorkers := fs.Int("analysis-workers", 0, "goroutines per file inside each worker (<=1 = serial; output is identical at any setting)")
	journalPath := fs.String("journal", "", "checkpoint assignments and completions to this append-only journal (JSONL)")
	resume := fs.Bool("resume", false, "skip files whose content hash already has a terminal journal entry (requires -journal)")
	retries := fs.Int("retries", 0, "re-dispatches per unit after transient failures before quarantine (0 = 2)")
	groupCommit := fs.Bool("group-commit", false, "batch journal fsyncs (higher throughput, same durability)")
	cacheDir := fs.String("cache-dir", "", "persistent result cache shared by all workers")
	cacheBytes := fs.Int64("cache-bytes", 0, "per-worker memory result-cache budget in bytes (0 = default)")
	incrDir := fs.String("incr-dir", "", "persistent function-level memo shared by all workers (re-analyzes only edited functions and their transitive callers)")
	incrBytes := fs.Int64("incr-bytes", 0, "per-worker function memo byte budget (0 = default)")
	clusterCachePeers := fs.Bool("cache-peers", false, "enable the shared peer cache tier: workers replicate cache entries to each other under a coordinator-pushed, epoch-fenced peer map")
	clusterCacheReplicas := fs.Int("cache-replicas", 0, "shared-cache-tier replication factor (0 = 2)")
	clusterCacheStats := fs.Bool("cache-stats", false, "spawned workers print unit-cache, function-memo and peer-tier summaries on drain")
	clusterWorkers := fs.Int("cluster-workers", 3, "worker processes to spawn (ignored when -worker addresses are given)")
	inflight := fs.Int("inflight", 0, "units dispatched concurrently per worker (0 = 2)")
	heartbeat := fs.Duration("heartbeat", 0, "worker liveness probe interval (0 = 500ms)")
	heartbeatMisses := fs.Int("heartbeat-misses", 0, "consecutive missed probes before a worker is evicted (0 = 3)")
	requestTimeout := fs.Duration("request-timeout", 0, "end-to-end bound on one unit dispatch; a hung worker holds a unit at most this long (0 = 2m)")
	retryBackoff := fs.Duration("retry-backoff", 0, "base delay before a requeued unit is re-dispatched, doubled per attempt with jitter (0 = 100ms)")
	hedgeAfter := fs.Duration("hedge-after", time.Second, "floor of the hedge threshold: a unit in flight past max(this, p95x3) is speculatively re-dispatched to the next healthy worker (<=0 disables hedging)")
	hedgeMax := fs.Int("hedge-max", 4, "maximum concurrently outstanding hedge dispatches (the speculative-work budget)")
	workerRestarts := fs.Int("worker-restarts", 2, "restarts per spawned worker after a crash (negative = never restart)")
	workerBinary := fs.String("worker-binary", "", "executable to spawn workers from (default: this binary)")
	statusAddr := fs.String("status-addr", "", "serve coordinator /healthz (?verbose=1 adds the per-worker table) and /metrics on this address")
	pathdb := fs.String("pathdb", "", "write the merged per-unit path database to this JSON file")
	var externalWorkers []string
	fs.Func("worker", "dispatch to this already-running worker address instead of spawning processes (repeatable)",
		func(addr string) error {
			externalWorkers = append(externalWorkers, addr)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("cluster: want at least one C file")
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("cluster: -resume requires -journal")
	}
	if _, err := feas.ParseTier(*precision); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}

	specText := ""
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		specText = string(b)
	}

	// Load units exactly as `check` does, collecting include directories so
	// spawned workers resolve the same headers.
	var includeDirs []string
	units := make([]pallas.Unit, 0, fs.NArg())
	readErrs := map[string]error{}
	for _, path := range fs.Args() {
		if dir := filepath.Dir(path); !contains(includeDirs, dir) {
			includeDirs = append(includeDirs, dir)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			if !*keepGoing {
				return err
			}
			readErrs[path] = err
			continue
		}
		units = append(units, pallas.Unit{Name: filepath.Base(path), Source: string(b), Spec: specText})
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "pallas: "+format+"\n", a...)
	}
	copts := cluster.Options{
		HeartbeatInterval: *heartbeat,
		HeartbeatMisses:   *heartbeatMisses,
		RequestTimeout:    *requestTimeout,
		Inflight:          *inflight,
		Retries:           *retries,
		RetryBackoff:      *retryBackoff,
		HedgeAfter:        *hedgeAfter,
		HedgeMax:          *hedgeMax,
		JournalPath:       *journalPath,
		Resume:            *resume,
		GroupCommit:       *groupCommit,
		CachePeers:        *clusterCachePeers,
		CacheReplicas:     *clusterCacheReplicas,
		Logf:              logf,
	}
	if *hedgeAfter <= 0 {
		copts.HedgeAfter = -1 // flag convention: <=0 disables; Options convention: negative disables
	}
	coord, err := cluster.NewCoordinator(copts)
	if err != nil {
		return err
	}

	if *statusAddr != "" {
		sln, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			return err
		}
		defer sln.Close()
		go http.Serve(sln, cluster.StatusHandler(coord, metrics.Default))
		logf("cluster: status on http://%s", sln.Addr())
	}

	if len(externalWorkers) > 0 {
		for _, addr := range externalWorkers {
			coord.AddWorker(addr)
		}
	} else {
		bin := *workerBinary
		if bin == "" {
			bin, err = os.Executable()
			if err != nil {
				return fmt.Errorf("cluster: cannot locate worker binary: %w", err)
			}
		}
		wargs := []string{"worker", "-addr", "127.0.0.1:0"}
		if *cacheDir != "" {
			wargs = append(wargs, "-cache-dir", *cacheDir)
		}
		if *cacheBytes != 0 {
			wargs = append(wargs, "-cache-bytes", strconv.FormatInt(*cacheBytes, 10))
		}
		if *incrDir != "" {
			wargs = append(wargs, "-incr-dir", *incrDir)
		}
		if *incrBytes != 0 {
			wargs = append(wargs, "-incr-bytes", strconv.FormatInt(*incrBytes, 10))
		}
		if *workers != 0 {
			wargs = append(wargs, "-workers", strconv.Itoa(*workers))
		}
		if *analysisWorkers != 0 {
			wargs = append(wargs, "-analysis-workers", strconv.Itoa(*analysisWorkers))
		}
		if *timeout != 0 {
			wargs = append(wargs, "-timeout", timeout.String())
		}
		if *keepGoing {
			wargs = append(wargs, "-keep-going")
		}
		if *checker != "" {
			wargs = append(wargs, "-checker", *checker)
		}
		if *precision != "" {
			wargs = append(wargs, "-precision", *precision)
		}
		if *clusterCacheReplicas != 0 {
			wargs = append(wargs, "-cache-replicas", strconv.Itoa(*clusterCacheReplicas))
		}
		if *clusterCacheStats {
			wargs = append(wargs, "-cache-stats")
		}
		for _, dir := range includeDirs {
			wargs = append(wargs, "-include-dir", dir)
		}
		sup := cluster.NewSupervisor(cluster.SupervisorOptions{
			Binary: bin,
			Args:   wargs,
			Env:    os.Environ(),
			// Restarted workers must not re-inherit injected faults: a
			// crash-armed worker would otherwise crash-loop through its
			// restart budget without ever finishing a unit.
			RestartEnv:  envWithout(os.Environ(), "PALLAS_FAILPOINTS"),
			MaxRestarts: *workerRestarts,
			OnUp:        coord.AddWorker,
			OnDown:      coord.RemoveWorker,
			OnExhausted: func(slot int, err error) {
				logf("cluster: worker slot %d exhausted its restart budget (%v); it will not return", slot, err)
			},
			Stderr: os.Stderr,
			Logf:   logf,
		})
		sup.Start(*clusterWorkers)
		defer sup.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	outcomes, stats, err := coord.Run(ctx, units)
	if err != nil {
		return err
	}

	exit := 0
	raise := func(code int) {
		if code > exit {
			exit = code
		}
	}
	for path, err := range readErrs {
		fmt.Fprintf(os.Stderr, "pallas: %s: %v\n", path, err)
		raise(3)
	}
	results := make([]pallas.UnitResult, len(outcomes))
	for i, o := range outcomes {
		results[i] = unitResultFromOutcome(o)
	}
	pexit, err := printUnitResults(results, printOptions{
		asJSON:  *asJSON,
		htmlOut: *htmlOut,
		multi:   fs.NArg() > 1,
	})
	if err != nil {
		return err
	}
	raise(pexit)

	if *pathdb != "" {
		b, err := cluster.WriteMergedPaths(outcomes)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*pathdb, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pallas: cluster: merged path database written to %s\n", *pathdb)
	}

	fmt.Fprintf(os.Stderr,
		"pallas: cluster: %d unit(s): %d completed, %d resumed, %d failed, %d quarantined; %d requeue(s), %d eviction(s), %d duplicate(s) suppressed, %d cache hit(s)\n",
		stats.Units, stats.Completed, stats.Skipped, stats.Failed, stats.Quarantined,
		stats.Requeues, stats.Evictions, stats.DupCompletions, stats.CacheHits)
	if stats.Hedges+stats.StaleCompletions+stats.IntegrityFailures+stats.Probations > 0 {
		fmt.Fprintf(os.Stderr,
			"pallas: cluster: gray-failure defenses: %d hedge(s) (%d won), %d stale completion(s) fenced, %d integrity failure(s), %d probation(s)\n",
			stats.Hedges, stats.HedgeWins, stats.StaleCompletions, stats.IntegrityFailures, stats.Probations)
	}
	// PALLAS_STATS_OUT dumps the full run stats (counters and latency
	// quantiles) as JSON for benchmarks and e2e assertions — a machine
	// channel, so the human stderr lines above stay free to evolve.
	if statsOut := os.Getenv("PALLAS_STATS_OUT"); statsOut != "" {
		if b, jerr := json.MarshalIndent(stats, "", "  "); jerr == nil {
			if werr := os.WriteFile(statsOut, append(b, '\n'), 0o644); werr != nil {
				logf("cluster: stats out: %v", werr)
			}
		}
	}
	if *journalPath != "" {
		if stats.JournalTornTail {
			fmt.Fprintln(os.Stderr, "pallas: journal: recovered from a torn tail (crashed mid-checkpoint)")
		}
		if stats.JournalQuarantined > 0 {
			fmt.Fprintf(os.Stderr, "pallas: journal: quarantined %d corrupt record(s) to %s.quarantine\n",
				stats.JournalQuarantined, *journalPath)
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
	return nil
}

// unitResultFromOutcome rebuilds the UnitResult `check` would have produced
// for this unit, so printUnitResults renders identical bytes. Mirrors
// batch.go's replayRecord reconstruction from journal records.
func unitResultFromOutcome(o cluster.Outcome) pallas.UnitResult {
	out := pallas.UnitResult{
		Unit:        o.Unit,
		Diagnostics: o.Diagnostics,
		Attempts:    o.Attempts,
		Skipped:     o.Skipped,
		Quarantined: o.Status == journal.StatusQuarantined,
		Cached:      o.CacheHit,
	}
	if len(o.Report) > 0 {
		var rep pallas.Report
		if json.Unmarshal(o.Report, &rep) == nil {
			out.Result = &pallas.Result{Report: &rep, Diagnostics: o.Diagnostics}
		}
	}
	if o.Err != "" {
		out.Err = errors.New(o.Err)
	}
	return out
}

// envWithout returns env minus any KEY=... entries for key.
func envWithout(env []string, key string) []string {
	out := make([]string, 0, len(env))
	prefix := key + "="
	for _, kv := range env {
		if !strings.HasPrefix(kv, prefix) {
			out = append(out, kv)
		}
	}
	return out
}
