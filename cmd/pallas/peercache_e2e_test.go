package main

// End-to-end acceptance for the shared cluster cache tier, against the real
// binary: a mesh of worker processes forms one logical cache, and under
// every peer-wire fault mode — severed fetches, severed replication, full
// partition, served corruption, duplicated and dripped frames — a cluster
// run's stdout and merged path database stay byte-identical to a
// single-process `check`. The tier accelerates or it gets out of the way;
// it never changes a byte. Plus the hinted-handoff proof: a peer SIGKILLed
// through a round of writes receives them after restarting, without any
// coordinator involvement.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pallas/internal/rcache/peer"
)

// cacheWorker is one `pallas worker` process on a fixed port, meshed with
// its fleet through static -cache-peers flags.
type cacheWorker struct {
	addr   string
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

func (w *cacheWorker) stop() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
		w.cmd.Wait()
	}
}

// startCacheWorker launches a worker on addr with the full mesh in its
// static peer map and waits for /healthz.
func startCacheWorker(t *testing.T, bin, addr string, mesh []string, env []string) *cacheWorker {
	t.Helper()
	args := []string{"worker", "-addr", addr}
	for _, m := range mesh {
		args = append(args, "-cache-peers", m)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &cacheWorker{addr: addr, cmd: cmd, stderr: &stderr}
	t.Cleanup(w.stop)
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return w
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never became healthy; stderr:\n%s", addr, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// startWorkerMesh reserves n ports, starts n workers all meshed together,
// and returns them in port order.
func startWorkerMesh(t *testing.T, bin string, n int, env []string) []*cacheWorker {
	t.Helper()
	mesh := make([]string, n)
	for i := range mesh {
		mesh[i] = freePort(t)
	}
	ws := make([]*cacheWorker, n)
	for i, addr := range mesh {
		ws[i] = startCacheWorker(t, bin, addr, mesh, env)
	}
	return ws
}

// peerStatsOf reads a worker's shared-tier counters from /healthz?verbose=1.
func peerStatsOf(t *testing.T, addr string) peer.Stats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb struct {
		PeerCache *peer.Stats `json:"peer_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.PeerCache == nil {
		t.Fatalf("worker %s reports no peer tier", addr)
	}
	return *hb.PeerCache
}

// clusterRunStats runs `cluster -worker addr` over files and returns stdout,
// the merged pathdb bytes, and the coordinator's machine-readable stats.
func clusterRunStats(t *testing.T, bin, workerAddr string, files []string) (string, []byte, struct{ CacheHits int64 }) {
	t.Helper()
	dir := t.TempDir()
	db := filepath.Join(dir, "paths.json")
	statsPath := filepath.Join(dir, "stats.json")
	out, errOut, code := runPallas(t, bin, []string{"PALLAS_STATS_OUT=" + statsPath},
		append([]string{"cluster", "-worker", workerAddr, "-pathdb", db}, files...)...)
	if code != 1 { // every corpus unit carries a seeded warning
		t.Fatalf("cluster run via %s exit = %d, want 1\nstderr:\n%s", workerAddr, code, errOut)
	}
	dbBytes, err := os.ReadFile(db)
	if err != nil {
		t.Fatal(err)
	}
	var st struct{ CacheHits int64 }
	sb, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	return out, dbBytes, st
}

// TestClusterCachePeerChaosModes: for every peer-wire fault mode, analyze a
// corpus through worker A (the cold run, populating A's cache and — when the
// wire allows — replicating into B), then re-check through worker B (the
// warm run, which can only be warm via the tier). Both runs must be
// byte-identical to a single-process `check`, whatever the fault.
func TestClusterCachePeerChaosModes(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	const nUnits = 8
	files := writeCrashCorpus(t, dir, nUnits)

	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}

	cases := []struct {
		mode string
		spec string // PALLAS_FAILPOINTS armed in both workers, "" for none
		// check runs after the warm run with the cold worker (a), warm
		// worker (b), and the warm run's coordinator cache-hit count.
		check func(t *testing.T, a, b peer.Stats, warmHits int64)
	}{
		{mode: "control", spec: "", check: func(t *testing.T, a, b peer.Stats, warmHits int64) {
			if a.Puts == 0 || a.PutBytes == 0 {
				t.Errorf("cold run replicated nothing: %+v", a)
			}
			if warmHits == 0 {
				t.Error("warm run on the replica hit nothing — replication never landed")
			}
		}},
		// Fetch wire severed, replication intact: the warm worker was warmed
		// by the cold run's replication, so a full get-side partition still
		// re-checks at local-cache speed.
		{mode: "fetch-severed", spec: "peer-get=drop", check: func(t *testing.T, a, b peer.Stats, warmHits int64) {
			if warmHits == 0 {
				t.Error("get-partitioned warm run should still hit its replicated local entries")
			}
		}},
		// Replication severed: the warm worker's local cache is cold, so its
		// hits can only come over the peer-get wire.
		{mode: "replication-severed", spec: "peer-put=drop", check: func(t *testing.T, a, b peer.Stats, warmHits int64) {
			if b.Hits == 0 {
				t.Errorf("warm worker shows no peer hits — the re-check never used the tier: %+v", b)
			}
			if a.HandoffQueued == 0 {
				t.Errorf("severed replication must queue hints: %+v", a)
			}
		}},
		// Full partition: no replication, no fetches. The warm run simply
		// re-analyzes — slower, never wrong, never hung.
		{mode: "partition", spec: "peer-get=drop;peer-put=drop"},
		// The answering worker serves rotted entries beneath a valid frame
		// CRC; only the requester's content-sum check can catch it.
		{mode: "serve-corrupt", spec: "peer-serve=corrupt;peer-put=drop", check: func(t *testing.T, a, b peer.Stats, warmHits int64) {
			if b.RotRefusals == 0 {
				t.Errorf("served corruption was never refused: %+v", b)
			}
			if b.Hits != 0 {
				t.Errorf("a corrupted entry counted as a hit: %+v", b)
			}
		}},
		// The requester's own frames are corrupted in flight: the peer
		// answers 400, the requester degrades.
		{mode: "get-corrupt", spec: "peer-get=corrupt"},
		// Duplicate and slow-dripped response frames.
		{mode: "serve-dup", spec: "peer-serve=dup;peer-put=drop"},
		{mode: "serve-drip", spec: "peer-serve=drip:1ms;peer-put=drop"},
	}

	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			var env []string
			if tc.spec != "" {
				env = []string{"PALLAS_FAILPOINTS=" + tc.spec}
			}
			ws := startWorkerMesh(t, bin, 2, env)
			a, b := ws[0], ws[1]

			coldOut, coldDB, _ := clusterRunStats(t, bin, a.addr, files)
			if coldOut != wantOut {
				t.Fatalf("[%s] cold stdout differs from check\n--- want ---\n%s\n--- got ---\n%s",
					tc.mode, wantOut, coldOut)
			}
			warmOut, warmDB, warmStats := clusterRunStats(t, bin, b.addr, files)
			if warmOut != wantOut {
				t.Fatalf("[%s] warm stdout differs from check\n--- want ---\n%s\n--- got ---\n%s",
					tc.mode, wantOut, warmOut)
			}
			if !bytes.Equal(coldDB, warmDB) {
				t.Fatalf("[%s] merged path database differs between cold and warm runs", tc.mode)
			}
			if tc.check != nil {
				tc.check(t, peerStatsOf(t, a.addr), peerStatsOf(t, b.addr), warmStats.CacheHits)
			}
			a.stop()
			b.stop()
		})
	}
}

// TestClusterCachePeerHandoffAcrossSIGKILL: worker B is SIGKILLed before a
// run, so every replicated write owed to it queues as a hint on A. B then
// restarts on the same port, A's drain loop (behind its per-peer breaker
// cooldown) delivers the queue, and a re-check through B is warm — entries
// that traveled only through hinted handoff.
func TestClusterCachePeerHandoffAcrossSIGKILL(t *testing.T) {
	bin := buildPallas(t)
	dir := t.TempDir()
	const nUnits = 6
	files := writeCrashCorpus(t, dir, nUnits)

	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}

	ws := startWorkerMesh(t, bin, 2, nil)
	a, b := ws[0], ws[1]
	b.stop() // SIGKILL: no drain, no goodbye

	coldOut, _, _ := clusterRunStats(t, bin, a.addr, files)
	if coldOut != wantOut {
		t.Fatalf("cold stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", wantOut, coldOut)
	}
	if st := peerStatsOf(t, a.addr); st.HandoffQueued == 0 {
		t.Fatalf("writes owed to the dead peer never queued: %+v", st)
	}

	// The peer returns on the same address; A's drain loop must deliver once
	// its breaker cooldown lets a probe through.
	b2 := startCacheWorker(t, bin, b.addr, []string{a.addr, b.addr}, nil)
	deadline := time.Now().Add(45 * time.Second)
	for {
		if st := peerStatsOf(t, a.addr); st.HandoffDrained > 0 && st.HandoffPending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hints never drained to the restarted peer: %+v", peerStatsOf(t, a.addr))
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The re-check through the restarted peer is warm purely via handoff.
	warmOut, _, warmStats := clusterRunStats(t, bin, b2.addr, files)
	if warmOut != wantOut {
		t.Fatalf("warm stdout differs from check\n--- want ---\n%s\n--- got ---\n%s", wantOut, warmOut)
	}
	if warmStats.CacheHits == 0 {
		t.Error("re-check on the handoff-restored peer hit nothing")
	}
}

// sharedCacheBench is the BENCH_sharedcache.json schema: for each fleet
// size, a cold run on one half of a 2n-worker mesh and a warm re-check on
// the other half — every warm answer travels through the tier (replication
// or peer fetch), so the speedup is the tier's, not the local cache's.
type sharedCacheBench struct {
	Units     int              `json:"units"`
	StallMS   int              `json:"stall_ms"`
	HostCPUs  int              `json:"host_cpus"`
	Runs      []sharedCacheRun `json:"runs"`
	Identical bool             `json:"identical_output"`
}

type sharedCacheRun struct {
	Workers         int     `json:"workers"`
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	PeerHits        int64   `json:"peer_hits"`
	ReplicatedPuts  int64   `json:"replicated_puts"`
	ReplicatedBytes int64   `json:"replicated_bytes"`
}

// TestSharedCacheBenchArtifact times a stalled corpus cold (fresh fleet
// half) versus warm-via-peer (the other half of the same mesh) at 1, 2 and
// 4 workers, and writes BENCH_sharedcache.json when PALLAS_BENCH_OUT_SHARED
// is set. The injected 100ms stall puts a hard floor under every real
// analysis, so a warm run being materially faster can only mean the tier
// served the entries.
func TestSharedCacheBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT_SHARED")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	bin := buildPallas(t)
	dir := t.TempDir()
	const nUnits = 12
	files := writeCrashCorpus(t, dir, nUnits)
	env := []string{"PALLAS_FAILPOINTS=pre-parse=sleep:100ms"}

	wantOut, _, wantCode := runCheck(t, bin, nil, append([]string{"-workers", "1"}, files...)...)
	if wantCode != 1 {
		t.Fatalf("reference check exit = %d, want 1", wantCode)
	}

	bench := sharedCacheBench{Units: nUnits, StallMS: 100, HostCPUs: runtime.NumCPU(), Identical: true}
	for _, n := range []int{1, 2, 4} {
		ws := startWorkerMesh(t, bin, 2*n, env)
		coldAddrs, warmAddrs := ws[:n], ws[n:]

		runHalf := func(half []*cacheWorker) (string, time.Duration) {
			args := []string{"cluster"}
			for _, w := range half {
				args = append(args, "-worker", w.addr)
			}
			start := time.Now()
			stdout, stderr, code := runPallas(t, bin, nil, append(args, files...)...)
			if code != 1 {
				t.Fatalf("%d-worker run exit = %d, want 1\nstderr:\n%s", len(half), code, stderr)
			}
			return stdout, time.Since(start)
		}

		coldOut, coldWall := runHalf(coldAddrs)
		warmOut, warmWall := runHalf(warmAddrs)
		if coldOut != wantOut || warmOut != wantOut {
			bench.Identical = false
			t.Errorf("%d-worker output diverged from check", n)
		}

		run := sharedCacheRun{
			Workers:     n,
			ColdSeconds: coldWall.Seconds(),
			WarmSeconds: warmWall.Seconds(),
			WarmSpeedup: float64(coldWall.Nanoseconds()) / float64(warmWall.Nanoseconds()),
		}
		for _, w := range warmAddrs {
			st := peerStatsOf(t, w.addr)
			run.PeerHits += st.Hits
		}
		for _, w := range ws {
			st := peerStatsOf(t, w.addr)
			run.ReplicatedPuts += st.Puts
			run.ReplicatedBytes += st.PutBytes
		}
		bench.Runs = append(bench.Runs, run)
		t.Logf("shared cache bench, %d worker(s): cold %.2fs, warm-via-peer %.2fs (%.2fx), %d peer hit(s), %d put(s) / %d bytes replicated",
			n, run.ColdSeconds, run.WarmSeconds, run.WarmSpeedup, run.PeerHits, run.ReplicatedPuts, run.ReplicatedBytes)
		if run.ReplicatedPuts == 0 {
			t.Errorf("%d-worker mesh replicated nothing — the tier never engaged", n)
		}
		if n == 4 && warmWall >= coldWall {
			t.Errorf("4-worker warm-via-peer re-check (%.2fs) not faster than cold (%.2fs) despite the %dms injected stall floor",
				warmWall.Seconds(), coldWall.Seconds(), bench.StallMS)
		}
		for _, w := range ws {
			w.stop()
		}
	}

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "shared cache bench written to %s\n", out)
}
