package main

import (
	"strings"
	"testing"
)

func TestRenderTableAll(t *testing.T) {
	wants := map[int]string{
		1: "155/224",
		2: "Num. of fast paths",
		3: "distribution of fast-path bugs",
		4: "consequences of fast-path bugs",
		5: "Signature",
		6: "Open vSwitch",
		7: "mpt3sas_base.c",
		8: "61/62",
	}
	for n, want := range wants {
		out, err := renderTable(n)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("table %d missing %q:\n%s", n, want, out)
		}
	}
	if _, err := renderTable(9); err == nil {
		t.Error("table 9 should error")
	}
}
