// Command pallas-eval regenerates every table and figure of the paper's
// evaluation from the built-in corpus, study dataset and injection plan.
//
// Usage:
//
//	pallas-eval                 run everything
//	pallas-eval -table N        reproduce Table N (1-8)
//	pallas-eval -figure N       reproduce Figure N (1-9)
//	pallas-eval -fp             reproduce the §5.3 false-positive analysis
//	pallas-eval -feas           feasibility-pruning experiment across
//	                            precision tiers (fast/balanced/strict)
//	pallas-eval -adversarial [-journal f [-resume]]
//	                            robustness sweep; with -journal the sweep
//	                            checkpoints outcomes and -resume skips
//	                            units a previous (possibly killed) run
//	                            already settled
package main

import (
	"flag"
	"fmt"
	"os"

	"pallas/internal/eval"
	"pallas/internal/failpoint"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (1-8)")
	figure := flag.Int("figure", 0, "reproduce one figure (1-9)")
	fp := flag.Bool("fp", false, "reproduce the false-positive analysis (§5.3)")
	timing := flag.Bool("timing", false, "measure per-fast-path analysis cost (§5)")
	ablation := flag.Bool("ablation", false, "per-checker contribution to Table 1")
	bigfile := flag.Bool("bigfile", false, "analyze the three subsystem-scale units")
	findings := flag.Bool("findings", false, "print the §3 finding/rule boxes")
	feasFlag := flag.Bool("feas", false, "feasibility-pruning experiment: precision tiers over the seeded infeasible-path corpus")
	adversarial := flag.Bool("adversarial", false, "robustness sweep over the hostile mini-corpus")
	journalPath := flag.String("journal", "", "checkpoint adversarial-sweep outcomes to this journal so a killed run resumes (with -adversarial)")
	resume := flag.Bool("resume", false, "skip units the journal already settled (requires -journal)")
	flag.Parse()
	if err := failpoint.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "pallas-eval:", err)
		os.Exit(1)
	}

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pallas-eval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	switch {
	case *table != 0:
		run(fmt.Sprintf("table %d", *table), func() (string, error) { return renderTable(*table) })
	case *figure != 0:
		run(fmt.Sprintf("figure %d", *figure), func() (string, error) { return eval.RunFigure(*figure) })
	case *fp:
		run("fp", func() (string, error) {
			r, err := eval.RunFP()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	case *timing:
		run("timing", func() (string, error) {
			r, err := eval.RunTiming()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	case *ablation:
		run("ablation", func() (string, error) {
			r, err := eval.RunAblation()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	case *feasFlag:
		run("feas", func() (string, error) {
			r, err := eval.RunFeas()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	case *bigfile:
		run("bigfile", eval.RunBigFiles)
	case *findings:
		fmt.Println(eval.RenderFindings())
	case *adversarial:
		run("adversarial", func() (string, error) {
			r, err := eval.RunAdversarialDurable(0, *journalPath, *resume)
			if err != nil {
				return "", err
			}
			if !r.Passed() {
				return r.Render(), fmt.Errorf("robustness contract violated")
			}
			return r.Render(), nil
		})
	default:
		for n := 1; n <= 8; n++ {
			run(fmt.Sprintf("table %d", n), func() (string, error) { return renderTable(n) })
		}
		for n := 1; n <= 9; n++ {
			run(fmt.Sprintf("figure %d", n), func() (string, error) { return eval.RunFigure(n) })
		}
		run("fp", func() (string, error) {
			r, err := eval.RunFP()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
}

func renderTable(n int) (string, error) {
	switch n {
	case 1:
		r, err := eval.RunTable1()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case 2:
		return eval.RenderTable2(), nil
	case 3:
		return eval.RenderTable3(), nil
	case 4:
		return eval.RenderTable4(), nil
	case 5:
		return eval.RunTable5()
	case 6:
		return eval.RenderTable6(), nil
	case 7:
		r, err := eval.RunTable7()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case 8:
		r, err := eval.RunTable8()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
	return "", fmt.Errorf("no table %d (have 1-8)", n)
}
