package pallas

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pallas/internal/corpus"
)

func TestRenderWorkflowPublicAPI(t *testing.T) {
	a := New(Config{})
	res, err := a.AnalyzeSource("w.c", `
int fast(int order) {
	if (order == 0)
		return 1;
	return 0;
}`, "fastpath fast\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.RenderWorkflow("fast")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workflow fast", "Sin", "Sout", "yes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("workflow missing %q:\n%s", want, out)
		}
	}
	if _, err := res.RenderWorkflow("missing"); err == nil {
		t.Error("unknown function should error")
	}
}

func TestInferSpecPublicAPI(t *testing.T) {
	a := New(Config{})
	res, err := a.AnalyzeSource("i.c", `
int fast(int a, int mode_flags) { return a; }
int slow(int a, int mode_flags) {
	if (mode_flags)
		return -1;
	return a;
}`, "pair fast slow\n")
	if err != nil {
		t.Fatal(err)
	}
	sugg, err := res.InferSpec("fast", "slow")
	if err != nil {
		t.Fatal(err)
	}
	var haveImmutable bool
	for _, s := range sugg {
		if s.Directive == "immutable mode_flags" {
			haveImmutable = true
		}
	}
	if !haveImmutable {
		t.Errorf("suggestions = %+v", sugg)
	}
}

// TestAnalyzerConcurrentUse runs many analyses through one Analyzer from
// concurrent goroutines; the Analyzer must be stateless and race-free.
func TestAnalyzerConcurrentUse(t *testing.T) {
	a := New(Config{})
	srcs := []struct {
		src, spec string
		warnings  int
	}{
		{`int f(int x, int m) { m = 0; return x; }`, "fastpath f\nimmutable m\n", 1},
		{`int g(int x, int m) { if (m) return 1; return x; }`, "fastpath g\nimmutable m\n", 0},
		{`int h(int p) { return p; }`, "fastpath h\ncond p\n", 1},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		for _, s := range srcs {
			wg.Add(1)
			s := s
			go func() {
				defer wg.Done()
				res, err := a.AnalyzeSource("c.c", s.src, s.spec)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Report.Warnings) != s.warnings {
					errs <- &mismatchError{got: len(res.Report.Warnings), want: s.warnings}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ got, want int }

func (e *mismatchError) Error() string {
	return "warning count mismatch"
}

// TestAnalyzeFileEndToEnd exercises the disk-based pipeline: corpus cases
// written out as .c + .pls pairs and re-analyzed through AnalyzeFile must
// reproduce their registry verdicts.
func TestAnalyzeFileEndToEnd(t *testing.T) {
	reg := corpus.Generate()
	dir := t.TempDir()
	a := New(Config{})
	n := 0
	for _, c := range reg.BySystem(corpus.SDN) {
		if n >= 8 {
			break
		}
		n++
		src := filepath.Join(dir, fmt.Sprintf("case%d.c", n))
		spec := filepath.Join(dir, fmt.Sprintf("case%d.pls", n))
		if err := os.WriteFile(src, []byte(c.Source), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(spec, []byte(c.Spec), 0o644); err != nil {
			t.Fatal(err)
		}
		specText, err := os.ReadFile(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.AnalyzeFile(src, string(specText))
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if len(res.Report.Warnings) != 1 || res.Report.Warnings[0].Finding != c.Finding {
			t.Errorf("%s: warnings = %+v", c.ID, res.Report.Warnings)
		}
	}
	if n == 0 {
		t.Fatal("no SDN cases")
	}
}
