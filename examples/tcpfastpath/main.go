// Tcpfastpath reproduces the paper's TCP examples: the header-prediction
// receive workflow of Figure 1(c), the double-free output mismatch of
// Figure 7, and the incomplete RPS trigger condition of Figure 5.
//
//	go run ./examples/tcpfastpath
package main

import (
	"fmt"
	"log"
	"os"

	"pallas"
)

// Figure 7: the fast path returns 1 where the slow path returns 0; the
// caller frees the skb twice.
const tcpRcv = `
struct sk_buff { int len; int flags; };
struct sock { unsigned long pred_flags; };

int tcp_rcv_established_fast(struct sock *sk, struct sk_buff *skb)
{
	if (skb->flags & sk->pred_flags)
		return 1; /* BUG: callers expect 0 on success */
	return 0;
}

int tcp_rcv_established_slow(struct sock *sk, struct sk_buff *skb)
{
	if (skb->len < 0)
		return -1;
	return 0;
}
`

// Figure 5: the RPS fast path must also verify that no flow table is
// configured; checking only map->len disables packet steering.
const rps = `
struct rps_map { int len; int cpus[32]; };
struct netdev_rx_queue { struct rps_map *rps_map; void *rps_flow_table; };

int cpu_online(int cpu);

int get_rps_cpu_fast(struct netdev_rx_queue *rxqueue, struct rps_map *map, void *rps_flow_table)
{
	int cpu = -1;
	if (map->len == 1) {
		int tcpu = map->cpus[0];
		if (cpu_online(tcpu))
			cpu = tcpu;
	}
	return cpu;
}
`

// The fixed RPS path for comparison.
const rpsFixed = `
struct rps_map { int len; int cpus[32]; };
struct netdev_rx_queue { struct rps_map *rps_map; void *rps_flow_table; };

int cpu_online(int cpu);

int get_rps_cpu_fast(struct netdev_rx_queue *rxqueue, struct rps_map *map, void *rps_flow_table)
{
	int cpu = -1;
	if (map->len == 1 && !rps_flow_table) {
		int tcpu = map->cpus[0];
		if (cpu_online(tcpu))
			cpu = tcpu;
	}
	return cpu;
}
`

func main() {
	analyzer := pallas.New(pallas.Config{})

	fmt.Println("== Figure 7: fast/slow output mismatch in tcp_rcv_established ==")
	res, err := analyzer.AnalyzeSource("tcp_input.c", tcpRcv,
		"pair tcp_rcv_established_fast tcp_rcv_established_slow\n")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Figure 5: incomplete RPS trigger condition ==")
	spec := "fastpath get_rps_cpu_fast\ncond len rps_flow_table\n"
	res2, err := analyzer.AnalyzeSource("dev.c", rps, spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := res2.Report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== after applying the kernel's fix (commit 8587523640): clean ==")
	res3, err := analyzer.AnalyzeSource("dev.c", rpsFixed, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warnings: %d (expected 0)\n", len(res3.Report.Warnings))
}
