// Quickstart: analyze a small fast path with the Pallas public API.
//
// The fast path below clobbers the immutable allocation mask — the classic
// deep bug from the paper's page-allocation example. The semantic information
// Pallas needs is one inline annotation: which variable is immutable.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"pallas"
)

const src = `
// @pallas: fastpath get_page_fast
// @pallas: immutable gfp_mask
struct page { unsigned long private; };

struct page *get_page_fast(unsigned long gfp_mask, int order, struct page *pool)
{
	if (order == 0) {
		/* deep bug: the immutable allocation mask is overwritten, so the
		 * NEXT allocation runs with corrupted behaviour flags. */
		gfp_mask = gfp_mask & 7;
		pool->private = gfp_mask;
		return pool;
	}
	return 0;
}
`

func main() {
	analyzer := pallas.New(pallas.Config{})
	res, err := analyzer.AnalyzeSource("quickstart.c", src, "")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== warnings ==")
	if err := res.Report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== extracted execution paths ==")
	fp := res.Paths.FuncPaths("get_page_fast")
	for _, p := range fp.Paths {
		fmt.Print(p)
	}

	fmt.Println("\n== summary ==")
	fmt.Print(res.Report.Summary())
}
