// Specinfer demonstrates the inference extension (the paper's stated future
// work, §4): given a fast/slow pair with NO annotations, Pallas proposes the
// semantic directives automatically by treating the slow path as the
// reference implementation, then checks the fast path against the accepted
// suggestions — closing the loop from raw code to detected bug.
//
//	go run ./examples/specinfer
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"pallas"
)

// A buggy UDP-send-style pair: the fast path skips the lock, drops the
// validation result, and clobbers the shared mode flags.
const src = `
struct sock { int state; int err_soft; };
struct msg { int len; };

int validate_msg(struct sock *sk, struct msg *m);

int udp_send_fast(struct sock *sk, struct msg *m, unsigned long corking_flags)
{
	validate_msg(sk, m);             /* result dropped */
	corking_flags = 0;               /* immutable clobbered */
	sk->state = 1;
	return 0;
}

int udp_send_slow(struct sock *sk, struct msg *m, unsigned long corking_flags)
{
	int err = validate_msg(sk, m);
	if (err)
		return -1;
	if (corking_flags != 0)
		return -1;
	if (sk->err_soft)
		return -1;
	sk->state = 1;
	return 0;
}
`

func main() {
	analyzer := pallas.New(pallas.Config{})

	// Step 1: analyze with only the pair declared, so the TU is parsed.
	res, err := analyzer.AnalyzeSource("udp.c", src, "pair udp_send_fast udp_send_slow\n")
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: infer semantic directives from the slow path.
	sugg, err := res.InferSpec("udp_send_fast", "udp_send_slow")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== inferred directives ==")
	var accepted []string
	for _, s := range sugg {
		fmt.Printf("%-44s # %.0f%% — %s\n", s.Directive, s.Confidence*100, s.Reason)
		// Accept everything at ≥60% confidence for the demo.
		if s.Confidence >= 0.6 {
			accepted = append(accepted, s.Directive)
		}
	}

	// Step 3: re-check with the accepted spec.
	fmt.Println("\n== checking against the accepted spec ==")
	res2, err := analyzer.AnalyzeSource("udp.c", src, strings.Join(accepted, "\n"))
	if err != nil {
		log.Fatal(err)
	}
	if err := res2.Report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res2.Report.Summary())
}
