// Pagealloc walks the paper's central example end to end: the Linux page
// allocation workflow of Figure 1(a), the migratetype-overwrite bug of
// Figure 3, and the symbolic path extraction of Table 5.
//
// It demonstrates three parts of the public API: workflow-level analysis of
// a fast/slow pair, the fast-vs-slow diff tool the authors used in their
// study, and raw path extraction.
//
//	go run ./examples/pagealloc
package main

import (
	"fmt"
	"log"
	"os"

	"pallas"
)

// The clean Figure-1(a) pair: a per-cpu fast path and a locked slow path.
const workflow = `
struct page { unsigned long flags; unsigned long private; };
struct per_cpu_lists { struct page *head; int count; };
struct zone {
	int id;
	int lock;
	struct per_cpu_lists pcp;
	struct page *fallback_lists;
	unsigned long nr_free;
};

static struct page *pcp_pop(struct zone *zone)
{
	struct page *page = zone->pcp.head;
	if (page)
		zone->pcp.count = zone->pcp.count - 1;
	return page;
}

struct page *get_page_from_freelist(unsigned long gfp_mask, unsigned int order,
				    struct zone *preferred_zone, unsigned long nodemask)
{
	struct page *page = 0;
	if (order == 0 && (nodemask & (1UL << preferred_zone->id)))
		page = pcp_pop(preferred_zone);
	return page;
}

struct page *alloc_pages_slowpath(unsigned long gfp_mask, unsigned int order,
				  struct zone *preferred_zone, unsigned long nodemask)
{
	struct page *page = 0;
	int i;
	preferred_zone->lock = 1;
	for (i = order; i < 11; i++) {
		if (preferred_zone->nr_free >= (1UL << i)) {
			page = preferred_zone->fallback_lists;
			preferred_zone->nr_free = preferred_zone->nr_free - (1UL << i);
			break;
		}
	}
	preferred_zone->lock = 0;
	return page;
}
`

const workflowSpec = `
pair get_page_from_freelist alloc_pages_slowpath
immutable gfp_mask nodemask
correlated preferred_zone nodemask
cond order
`

// The Figure-3 bug: freeing a page clobbers the migratetype the fast path
// cached in page->private.
const buggyFree = `
struct page { unsigned long private; int mlocked; };

int free_pages_fast(struct page *page, int migratetype)
{
	if (page->mlocked)
		return -1;
	page->private = migratetype;
	migratetype = 0; /* BUG: immutable input clobbered */
	page->private = migratetype;
	return 0;
}
`

func main() {
	analyzer := pallas.New(pallas.Config{})

	fmt.Println("== 1. the clean Figure-1(a) workflow passes all five checkers ==")
	res, err := analyzer.AnalyzeSource("page_alloc.c", workflow, workflowSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warnings: %d (expected 0)\n\n", len(res.Report.Warnings))

	fmt.Println("== 2. the study's diff tool compares fast vs slow path ==")
	d, err := res.ComparePaths("get_page_from_freelist", "alloc_pages_slowpath")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d.String())
	fmt.Println("suggested directives:")
	for _, s := range d.SuggestSpec() {
		fmt.Println("  " + s)
	}
	fmt.Println()

	fmt.Println("== 3. the Figure-3 migratetype bug is caught by the path-state checker ==")
	res2, err := analyzer.AnalyzeSource("free.c", buggyFree,
		"fastpath free_pages_fast\nimmutable migratetype\n")
	if err != nil {
		log.Fatal(err)
	}
	if err := res2.Report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("== 4. Table-5-style symbolic paths of the fast path ==")
	fp, err := analyzer.ExtractPaths("page_alloc.c", workflow, "get_page_from_freelist")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range fp.Paths {
		fmt.Print(p)
	}
}
