// Ubifs reproduces the paper's file-system examples: the UBIFS budget-skip
// write of Figure 1(b), the missing-fault-handler pattern of Figure 8, and
// the stale inode-cache bug of Figure 9 — the three failure modes that cost
// file systems data.
//
//	go run ./examples/ubifs
package main

import (
	"fmt"
	"log"
	"os"

	"pallas"
)

// Figure 1(b): the fast write path skips budgeting when flash has space.
// This version drops the error of acquire_space_directly — rule 3.3.
const ubifsWrite = `
enum page_state { PG_UPTODATE = 0, PG_DIRTY = 1 };
struct ubifs_info { long free_space; long budget; };
struct ubifs_page { int state; int len; };

int acquire_space_directly(struct ubifs_info *c, int len);

int ubifs_write_fast(struct ubifs_info *c, struct ubifs_page *page)
{
	if (c->free_space < page->len)
		return -1;
	acquire_space_directly(c, page->len); /* BUG: failure ignored */
	page->state = PG_DIRTY;
	return 0;
}
`

// Figure 8: the SCSI-style teardown never handles the failed-command state.
const scsiFree = `
struct se_cmd { int state_active; int refcount; };

void transport_wait_for_tasks(struct se_cmd *cmd);

void transport_generic_free_cmd(struct se_cmd *cmd, int wait_for_tasks)
{
	if (wait_for_tasks)
		transport_wait_for_tasks(cmd);
	cmd->refcount = cmd->refcount - 1;
}
`

// Figure 9: unlinking an inode without evicting the icache entry leaves a
// bogus file handle visible to NFS daemons.
const nfsUnlink = `
struct inode { int i_state; unsigned long i_ino; };
struct icache { struct inode *entries[64]; int count; };

int nfs_unlink_fast(struct inode *inode, struct icache *cache)
{
	inode->i_state = 0;
	return 0;
}
`

func main() {
	analyzer := pallas.New(pallas.Config{})

	show := func(title, file, src, spec string) {
		fmt.Println("== " + title + " ==")
		res, err := analyzer.AnalyzeSource(file, src, spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Report.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	show("Figure 1(b): unchecked space acquisition in the UBIFS fast write",
		"ubifs.c", ubifsWrite,
		"fastpath ubifs_write_fast\ncheck_return acquire_space_directly\n")

	show("Figure 8: missing fault handler in the SCSI teardown",
		"target.c", scsiFree,
		"fastpath transport_generic_free_cmd\nfault state_active handler=target_remove_from_state_list\n")

	show("Figure 9: stale inode cache after unlink",
		"nfs.c", nfsUnlink,
		"fastpath nfs_unlink_fast\ncache cache of inode\n")
}
