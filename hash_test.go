package pallas

import (
	"strings"
	"testing"
)

// TestContentHashFormatPinned pins the on-disk hash format. Persisted
// journals and result caches key on these values: if this test breaks, every
// existing journal stops resuming and every cache goes cold. Do not update
// the golden values without a migration story.
func TestContentHashFormatPinned(t *testing.T) {
	got := ContentHash("a.c", "int x;", "fastpath f\n")
	const want = "a11154a5031d583495531b3d78d98ae2a183b17e526790a02bead8b863518bc5"
	if got != want {
		// Recompute by hand to give the next engineer the real value to audit.
		t.Fatalf("ContentHash(a.c, int x;, fastpath f\\n) = %s, want %s", got, want)
	}
}

// TestUnitHashMatchesContentHash pins the journal resume key to the
// canonical hash: Unit.Hash must remain ContentHash(name, source, spec) so
// journals written before the cache subsystem existed keep resuming.
func TestUnitHashMatchesContentHash(t *testing.T) {
	u := Unit{Name: "a.c", Source: "int x;", Spec: "fastpath f\n"}
	if u.Hash() != ContentHash(u.Name, u.Source, u.Spec) {
		t.Fatalf("Unit.Hash diverged from ContentHash: %s != %s",
			u.Hash(), ContentHash(u.Name, u.Source, u.Spec))
	}
}

// TestContentHashFraming verifies the length-framing: moving a byte across a
// part boundary must change the hash (no concatenation ambiguity).
func TestContentHashFraming(t *testing.T) {
	if ContentHash("ab", "c") == ContentHash("a", "bc") {
		t.Fatal("part boundaries are not framed")
	}
	if ContentHash("a", "") == ContentHash("", "a") {
		t.Fatal("empty parts are not framed")
	}
	if ContentHash("a") == ContentHash("a", "") {
		t.Fatal("part count is not significant")
	}
}

// TestCacheKeyCoversConfig verifies that every report-affecting Config field
// changes the cache key, and that report-neutral reorderings do not.
func TestCacheKeyCoversConfig(t *testing.T) {
	u := Unit{Name: "a.c", Source: "int f(void) { return 0; }", Spec: "fastpath f\n"}
	base := New(Config{}).CacheKey(u)

	variants := map[string]Config{
		"checkers":  {Checkers: []string{"path-state"}},
		"defines":   {Defines: map[string]string{"CONFIG_X": "1"}},
		"includes":  {Includes: map[string]string{"x.h": "int y;"}},
		"deadline":  {Deadline: 1},
		"paths":     {MaxPaths: 7},
		"visits":    {MaxBlockVisits: 9},
		"inline":    {InlineDepth: 1},
		"macros":    {MaxMacroExpansions: 11},
		"steps":     {MaxSteps: 13},
		"keep":      {KeepGoing: true},
		"precision": {Precision: "balanced"},
	}
	for name, cfg := range variants {
		if got := New(cfg).CacheKey(u); got == base {
			t.Errorf("config field %q does not change the cache key", name)
		}
	}

	// Include-file content (not just the name) is covered.
	k1 := New(Config{Includes: map[string]string{"x.h": "int y;"}}).CacheKey(u)
	k2 := New(Config{Includes: map[string]string{"x.h": "int z;"}}).CacheKey(u)
	if k1 == k2 {
		t.Error("include content does not change the cache key")
	}

	// Map iteration order must not leak into the key.
	a := New(Config{Defines: map[string]string{"A": "1", "B": "2", "C": "3"}})
	for i := 0; i < 16; i++ {
		b := New(Config{Defines: map[string]string{"C": "3", "B": "2", "A": "1"}})
		if a.CacheKey(u) != b.CacheKey(u) {
			t.Fatal("cache key depends on map iteration order")
		}
	}

	// Unit content is covered too.
	if New(Config{}).CacheKey(Unit{Name: "a.c", Source: "int g;", Spec: u.Spec}) == base {
		t.Error("source does not change the cache key")
	}
	if New(Config{}).CacheKey(Unit{Name: "a.c", Source: u.Source, Spec: "fastpath g\n"}) == base {
		t.Error("spec does not change the cache key")
	}
}

// TestPrecisionFingerprintTiering pins the tier/cache-key contract: the
// fast tier (spelled "" or "fast") keeps the pre-feasibility fingerprint so
// existing caches and memo stores stay warm, while balanced and strict key
// distinctly — tiers never share entries.
func TestPrecisionFingerprintTiering(t *testing.T) {
	u := Unit{Name: "a.c", Source: "int f(void) { return 0; }", Spec: "fastpath f\n"}
	base := New(Config{}).CacheKey(u)
	if got := New(Config{Precision: "fast"}).CacheKey(u); got != base {
		t.Error("explicit fast must share the historical cache key")
	}
	bal := New(Config{Precision: "balanced"}).CacheKey(u)
	strict := New(Config{Precision: "strict"}).CacheKey(u)
	if bal == base || strict == base || bal == strict {
		t.Errorf("tiers must key distinctly: base=%s balanced=%s strict=%s", base, bal, strict)
	}
	// Same contract for the extraction fingerprint behind incr memo keys.
	xBase := Config{}.extractFingerprint()
	if got := (Config{Precision: "fast"}).extractFingerprint(); got != xBase {
		t.Error("fast must keep the historical extract fingerprint")
	}
	xBal := (Config{Precision: "balanced"}).extractFingerprint()
	xStrict := (Config{Precision: "strict"}).extractFingerprint()
	if xBal == xBase || xStrict == xBase || xBal == xStrict {
		t.Errorf("extract fingerprints must tier: %q %q %q", xBase, xBal, xStrict)
	}
	if xBase != "x1|paths=0|visits=0|inline=0" {
		t.Errorf("fast extract fingerprint changed: %q", xBase)
	}
}

// TestCacheKeyIsHex sanity-checks the key shape callers embed in URLs and
// file names.
func TestCacheKeyIsHex(t *testing.T) {
	key := New(Config{}).CacheKey(Unit{Name: "a.c"})
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		t.Fatalf("cache key %q is not 64 lowercase hex chars", key)
	}
}
