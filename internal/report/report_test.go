package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFindingAspectMapping(t *testing.T) {
	want := map[string]Aspect{
		FindStateOverwrite: PathState, FindStateUninit: PathState,
		FindStateCorrelated: PathState,
		FindCondMissing:     TriggerCondition, FindCondIncomplete: TriggerCondition,
		FindCondOrder:   TriggerCondition,
		FindOutMismatch: PathOutput, FindOutUnexpected: PathOutput,
		FindOutUnchecked: PathOutput,
		FindFaultMissing: FaultHandling,
		FindDSLayout:     DataStructure, FindDSStale: DataStructure,
	}
	for f, a := range want {
		if got := FindingAspect(f); got != a {
			t.Errorf("FindingAspect(%s) = %v, want %v", f, got, a)
		}
	}
}

func TestAllFindingsCoverTable1(t *testing.T) {
	all := AllFindings()
	if len(all) != 12 {
		t.Fatalf("want 12 findings, got %d", len(all))
	}
	perAspect := map[Aspect]int{}
	for _, f := range all {
		perAspect[FindingAspect(f)]++
		if FindingTitle(f) == f {
			t.Errorf("finding %s has no title", f)
		}
	}
	wantCounts := map[Aspect]int{
		PathState: 3, TriggerCondition: 3, PathOutput: 3,
		FaultHandling: 1, DataStructure: 2,
	}
	for a, n := range wantCounts {
		if perAspect[a] != n {
			t.Errorf("aspect %v has %d findings, want %d", a, perAspect[a], n)
		}
	}
}

func TestAspectStrings(t *testing.T) {
	if len(Aspects()) != 5 {
		t.Fatal("want 5 aspects")
	}
	for _, a := range Aspects() {
		if strings.HasPrefix(a.String(), "Aspect(") {
			t.Errorf("aspect %d missing name", a)
		}
	}
}

func TestWarningString(t *testing.T) {
	w := Warning{Rule: "1.2", Finding: FindStateOverwrite, Func: "f",
		File: "mm/page_alloc.c", Line: 28, Subject: "gfp_mask",
		Message: "immutable overwritten"}
	s := w.String()
	for _, part := range []string{"mm/page_alloc.c:28", "rule 1.2", "state-overwrite", "gfp_mask"} {
		if !strings.Contains(s, part) {
			t.Errorf("warning string missing %q: %s", part, s)
		}
	}
	// Absence warnings (line 0) fall back to the file.
	w2 := Warning{Rule: "4.1", Finding: FindFaultMissing, Func: "g", File: "x.c"}
	if !strings.HasPrefix(w2.String(), "x.c:") {
		t.Errorf("fallback loc: %s", w2.String())
	}
}

func TestReportSortDeterministic(t *testing.T) {
	r := &Report{Target: "t.c"}
	r.Add(
		Warning{Finding: FindDSStale, Func: "b", Line: 2},
		Warning{Finding: FindCondMissing, Func: "a", Line: 9},
		Warning{Finding: FindCondMissing, Func: "a", Line: 3},
	)
	r.Sort()
	if r.Warnings[0].Finding != FindCondMissing || r.Warnings[0].Line != 3 {
		t.Errorf("sorted = %+v", r.Warnings)
	}
	if r.Warnings[2].Finding != FindDSStale {
		t.Errorf("sorted = %+v", r.Warnings)
	}
}

func TestCounts(t *testing.T) {
	r := &Report{}
	r.Add(
		Warning{Finding: FindStateOverwrite},
		Warning{Finding: FindStateUninit},
		Warning{Finding: FindFaultMissing},
	)
	byF := r.CountByFinding()
	if byF[FindStateOverwrite] != 1 || byF[FindFaultMissing] != 1 {
		t.Errorf("by finding = %v", byF)
	}
	byA := r.CountByAspect()
	if byA[PathState] != 2 || byA[FaultHandling] != 1 {
		t.Errorf("by aspect = %v", byA)
	}
}

func TestRenderers(t *testing.T) {
	r := &Report{Target: "t.c"}
	r.Add(Warning{Rule: "5.2", Finding: FindDSStale, Func: "f", File: "t.c", Line: 4, Subject: "icache"})
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "1 warning(s) in t.c") {
		t.Errorf("text: %s", txt.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	if len(back.Warnings) != 1 || back.Warnings[0].Rule != "5.2" {
		t.Errorf("round trip = %+v", back)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "Assistant Data Structures") || !strings.Contains(sum, "Total") {
		t.Errorf("summary: %s", sum)
	}
}

func TestWriteHTML(t *testing.T) {
	r := &Report{Target: "mm/page_alloc.c"}
	r.Add(
		Warning{Rule: "1.2", Finding: FindStateOverwrite, Func: "alloc", File: "mm/page_alloc.c",
			Line: 28, Subject: "gfp_mask", Message: "immutable <overwritten>", LikelyConsequence: "Incorrect results"},
		Warning{Rule: "4.1", Finding: FindFaultMissing, Func: "free", File: "mm/page_alloc.c",
			Subject: "state", Message: "handler missing"},
	)
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<title>Pallas report — mm/page_alloc.c</title>",
		"Path State (1)", "Fault Handling (1)",
		"mm/page_alloc.c:28", "gfp_mask", "Incorrect results",
		"immutable &lt;overwritten&gt;", // HTML escaping
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// Empty report renders the all-clear banner.
	var empty bytes.Buffer
	if err := (&Report{Target: "x.c"}).WriteHTML(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "No warnings") {
		t.Error("empty report missing banner")
	}
}
