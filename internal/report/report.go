// Package report defines the warnings Pallas emits and utilities for
// rendering and summarizing them. A warning identifies the violated rule,
// the fast-path aspect it belongs to (the five categories of Table 1), and
// the finding key used by the evaluation harness to aggregate Table-1 rows.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Aspect is one of the five error-prone aspects of a fast path.
type Aspect int

// The five aspects (Section 3 of the paper).
const (
	PathState Aspect = iota
	TriggerCondition
	PathOutput
	FaultHandling
	DataStructure
)

// String names the aspect as in the paper.
func (a Aspect) String() string {
	switch a {
	case PathState:
		return "Path State"
	case TriggerCondition:
		return "Trigger Condition"
	case PathOutput:
		return "Path Output"
	case FaultHandling:
		return "Fault Handling"
	case DataStructure:
		return "Assistant Data Structures"
	}
	return fmt.Sprintf("Aspect(%d)", int(a))
}

// Aspects lists all aspects in paper order.
func Aspects() []Aspect {
	return []Aspect{PathState, TriggerCondition, PathOutput, FaultHandling, DataStructure}
}

// Finding keys aggregate warnings into the 12 rows of Table 1.
const (
	FindStateOverwrite  = "state-overwrite"  // immutable states are overwritten
	FindStateUninit     = "state-uninit"     // immutable states are not initialized
	FindStateCorrelated = "state-correlated" // one state does not refer to its correlated state
	FindCondMissing     = "cond-missing"     // condition checking for path switch is missing
	FindCondIncomplete  = "cond-incomplete"  // implementation of trigger condition is incomplete
	FindCondOrder       = "cond-order"       // order of condition checking is incorrect
	FindOutMismatch     = "out-mismatch"     // fast/slow returns should be the same
	FindOutUnexpected   = "out-unexpected"   // returns should be one of the defined values
	FindOutUnchecked    = "out-unchecked"    // returned value should be checked
	FindFaultMissing    = "fault-missing"    // the fault handler is missing
	FindDSLayout        = "ds-layout"        // unused elements in hot data structure
	FindDSStale         = "ds-stale"         // cache not updated with its path state
)

// FindingAspect maps a finding key to its aspect.
func FindingAspect(finding string) Aspect {
	switch finding {
	case FindStateOverwrite, FindStateUninit, FindStateCorrelated:
		return PathState
	case FindCondMissing, FindCondIncomplete, FindCondOrder:
		return TriggerCondition
	case FindOutMismatch, FindOutUnexpected, FindOutUnchecked:
		return PathOutput
	case FindFaultMissing:
		return FaultHandling
	case FindDSLayout, FindDSStale:
		return DataStructure
	}
	return PathState
}

// FindingTitle gives the Table-1 row description of a finding key.
func FindingTitle(finding string) string {
	switch finding {
	case FindStateOverwrite:
		return "immutable states are overwritten"
	case FindStateUninit:
		return "immutable states are not initialized"
	case FindStateCorrelated:
		return "one state does not refer to its correlated state"
	case FindCondMissing:
		return "the condition checking for path switch is missing"
	case FindCondIncomplete:
		return "the implementation of trigger condition is incomplete"
	case FindCondOrder:
		return "the order of condition checking is incorrect"
	case FindOutMismatch:
		return "the return values of slow and fast path should be the same"
	case FindOutUnexpected:
		return "the returned values should be one of the defined values"
	case FindOutUnchecked:
		return "the returned value should be checked"
	case FindFaultMissing:
		return "the fault handler is missing"
	case FindDSLayout:
		return "not all elements in a data structure are used in fast path"
	case FindDSStale:
		return "an update on a data structure should be followed by an update on its cached version"
	}
	return finding
}

// AllFindings lists the 12 finding keys in Table-1 order.
func AllFindings() []string {
	return []string{
		FindStateOverwrite, FindStateUninit, FindStateCorrelated,
		FindCondMissing, FindCondIncomplete, FindCondOrder,
		FindOutMismatch, FindOutUnexpected, FindOutUnchecked,
		FindFaultMissing,
		FindDSLayout, FindDSStale,
	}
}

// Warning is one rule violation reported by a checker.
type Warning struct {
	// Rule is the paper rule id ("1.2", "4.1", ...).
	Rule string `json:"rule"`
	// Finding is one of the Find* keys.
	Finding string `json:"finding"`
	// Func is the analyzed function.
	Func string `json:"func"`
	// File and Line locate the defect (line 0 when the defect is an absence).
	File string `json:"file"`
	Line int    `json:"line"`
	// Subject is the variable/field/function the warning concerns.
	Subject string `json:"subject"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
	// PathIndex is the execution path exhibiting the issue (-1 when whole-
	// function).
	PathIndex int `json:"path_index"`
	// LikelyConsequence is the historically most frequent failure class for
	// this warning's aspect (from the Table-4 study data); informational.
	LikelyConsequence string `json:"likely_consequence,omitempty"`
}

// Aspect returns the aspect the warning belongs to.
func (w Warning) Aspect() Aspect { return FindingAspect(w.Finding) }

// String renders the warning in compiler style.
func (w Warning) String() string {
	loc := w.File
	if w.Line > 0 {
		loc = fmt.Sprintf("%s:%d", w.File, w.Line)
	}
	if loc == "" {
		loc = w.Func
	}
	return fmt.Sprintf("%s: warning[rule %s, %s]: %s (func %s, subject %s)",
		loc, w.Rule, w.Finding, w.Message, w.Func, w.Subject)
}

// Report is the result of one analysis run.
type Report struct {
	Target   string    `json:"target"` // file or corpus case analyzed
	Warnings []Warning `json:"warnings"`
	// Degraded reports that the analysis completed partially: a stage hit its
	// budget, crashed, or the input was malformed, so absence of a warning is
	// not evidence of absence of a bug.
	Degraded bool `json:"degraded,omitempty"`
	// PathsPruned counts the path continuations the feasibility layer
	// discarded as contradictory across every analyzed function (precision
	// balanced/strict; always 0 — and omitted — under fast, so fast-tier
	// report bytes are unchanged from builds without the layer).
	PathsPruned int `json:"paths_pruned,omitempty"`
}

// Add appends warnings.
func (r *Report) Add(ws ...Warning) { r.Warnings = append(r.Warnings, ws...) }

// Sort orders warnings deterministically (finding, func, line, subject).
func (r *Report) Sort() {
	sort.SliceStable(r.Warnings, func(i, j int) bool {
		a, b := r.Warnings[i], r.Warnings[j]
		if a.Finding != b.Finding {
			return a.Finding < b.Finding
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Subject < b.Subject
	})
}

// CountByFinding tallies warnings per finding key.
func (r *Report) CountByFinding() map[string]int {
	out := map[string]int{}
	for _, w := range r.Warnings {
		out[w.Finding]++
	}
	return out
}

// CountByAspect tallies warnings per aspect.
func (r *Report) CountByAspect() map[Aspect]int {
	out := map[Aspect]int{}
	for _, w := range r.Warnings {
		out[w.Aspect()]++
	}
	return out
}

// WriteText renders the report as plain text.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "pallas: %d warning(s) in %s\n", len(r.Warnings), r.Target); err != nil {
		return err
	}
	for _, warn := range r.Warnings {
		if _, err := fmt.Fprintln(w, "  "+warn.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a per-aspect count table.
func (r *Report) Summary() string {
	var sb strings.Builder
	counts := r.CountByAspect()
	fmt.Fprintf(&sb, "%-28s %s\n", "Aspect", "Warnings")
	for _, a := range Aspects() {
		fmt.Fprintf(&sb, "%-28s %d\n", a.String(), counts[a])
	}
	fmt.Fprintf(&sb, "%-28s %d\n", "Total", len(r.Warnings))
	return sb.String()
}
