package report

import (
	"html/template"
	"io"
)

// htmlTemplate renders a report as a standalone HTML page, grouped by aspect.
var htmlTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Pallas report — {{.Target}}</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
 h1 { font-size: 1.4rem; }
 h2 { font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
 table { border-collapse: collapse; width: 100%; }
 th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #eee; vertical-align: top; }
 th { background: #f6f6f6; }
 .rule { font-family: ui-monospace, monospace; white-space: nowrap; }
 .loc { font-family: ui-monospace, monospace; color: #555; white-space: nowrap; }
 .consequence { color: #8a4b00; }
 .empty { color: #2a7a2a; font-weight: 600; }
 .summary td { font-weight: 600; }
</style>
</head>
<body>
<h1>Pallas report — {{.Target}}</h1>
{{if not .Warnings}}<p class="empty">No warnings: every checked rule holds.</p>{{end}}
{{range .Groups}}
<h2>{{.Aspect}} ({{len .Warnings}})</h2>
<table>
<tr><th>Rule</th><th>Location</th><th>Function</th><th>Subject</th><th>Message</th><th>Likely consequence</th></tr>
{{range .Warnings}}
<tr>
 <td class="rule">{{.Rule}} {{.Finding}}</td>
 <td class="loc">{{.File}}{{if .Line}}:{{.Line}}{{end}}</td>
 <td>{{.Func}}</td>
 <td>{{.Subject}}</td>
 <td>{{.Message}}</td>
 <td class="consequence">{{.LikelyConsequence}}</td>
</tr>
{{end}}
</table>
{{end}}
<h2>Summary</h2>
<table>
{{range .Counts}}<tr><td>{{.Name}}</td><td>{{.N}}</td></tr>{{end}}
<tr class="summary"><td>Total</td><td>{{len .Warnings}}</td></tr>
</table>
</body>
</html>
`))

type htmlGroup struct {
	Aspect   string
	Warnings []Warning
}

type htmlCount struct {
	Name string
	N    int
}

// WriteHTML renders the report as a standalone HTML page.
func (r *Report) WriteHTML(w io.Writer) error {
	byAspect := map[Aspect][]Warning{}
	for _, warn := range r.Warnings {
		byAspect[warn.Aspect()] = append(byAspect[warn.Aspect()], warn)
	}
	var groups []htmlGroup
	var counts []htmlCount
	for _, a := range Aspects() {
		counts = append(counts, htmlCount{Name: a.String(), N: len(byAspect[a])})
		if len(byAspect[a]) == 0 {
			continue
		}
		groups = append(groups, htmlGroup{Aspect: a.String(), Warnings: byAspect[a]})
	}
	data := struct {
		Target   string
		Warnings []Warning
		Groups   []htmlGroup
		Counts   []htmlCount
	}{r.Target, r.Warnings, groups, counts}
	return htmlTemplate.Execute(w, data)
}
