package difftool

import (
	"strings"
	"testing"

	"pallas/internal/cparse"
)

const pairSrc = `
struct sk_buff { int len; int flags; };
struct sock { unsigned long pred_flags; int state; };

int rcv_fast(struct sock *sk, struct sk_buff *skb)
{
	if (skb->flags & sk->pred_flags)
		return 0;
	return 1;
}

int validate_segment(struct sock *sk, struct sk_buff *skb);

int rcv_slow(struct sock *sk, struct sk_buff *skb)
{
	int err = validate_segment(sk, skb);
	if (err)
		return -1;
	if (skb->len < 0)
		return -1;
	sk->state = 1;
	return 0;
}
`

func compare(t *testing.T) *Diff {
	t.Helper()
	tu, err := cparse.Parse("t.c", pairSrc)
	if err != nil {
		t.Fatal(err)
	}
	return Compare(tu, tu.Func("rcv_fast"), tu.Func("rcv_slow"))
}

func TestProfiles(t *testing.T) {
	d := compare(t)
	if d.Fast.Func != "rcv_fast" || d.Slow.Func != "rcv_slow" {
		t.Fatalf("profiles = %+v / %+v", d.Fast, d.Slow)
	}
	if len(d.Fast.Conditions) != 1 || len(d.Slow.Conditions) != 2 {
		t.Errorf("conditions = %v / %v", d.Fast.Conditions, d.Slow.Conditions)
	}
	if len(d.Slow.Calls) != 1 || d.Slow.Calls[0] != "validate_segment" {
		t.Errorf("slow calls = %v", d.Slow.Calls)
	}
}

func TestDiffSets(t *testing.T) {
	d := compare(t)
	if len(d.CallsSlowOnly) != 1 || d.CallsSlowOnly[0] != "validate_segment" {
		t.Errorf("calls slow-only = %v", d.CallsSlowOnly)
	}
	foundErr := false
	for _, v := range d.VarsSlowOnly {
		if v == "err" {
			foundErr = true
		}
	}
	if !foundErr {
		t.Errorf("vars slow-only = %v", d.VarsSlowOnly)
	}
	// fast returns {0,1}, slow {-1,0} → differ.
	if !d.ReturnsDiffer {
		t.Error("returns should differ")
	}
}

func TestSuggestSpec(t *testing.T) {
	d := compare(t)
	suggestions := d.SuggestSpec()
	joined := strings.Join(suggestions, "\n")
	if !strings.Contains(joined, "match_output rcv_fast rcv_slow") {
		t.Errorf("suggestions = %v", suggestions)
	}
	if !strings.Contains(joined, "validate_segment") {
		t.Errorf("suggestions = %v", suggestions)
	}
}

func TestStringRender(t *testing.T) {
	d := compare(t)
	out := d.String()
	for _, want := range []string{"rcv_fast (fast) vs rcv_slow (slow)", "slow only", "returns:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIdenticalFunctionsEmptyDiff(t *testing.T) {
	src := `
int a(int x) { if (x) return 1; return 0; }
int b(int x) { if (x) return 1; return 0; }
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(tu, tu.Func("a"), tu.Func("b"))
	if len(d.VarsFastOnly)+len(d.VarsSlowOnly)+len(d.CallsFastOnly)+len(d.CallsSlowOnly) != 0 {
		t.Errorf("identical functions diff: %+v", d)
	}
	if d.ReturnsDiffer {
		t.Error("identical returns flagged")
	}
	if len(d.SuggestSpec()) != 0 {
		t.Errorf("suggestions for identical: %v", d.SuggestSpec())
	}
}
