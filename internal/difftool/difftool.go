// Package difftool compares a fast path against its slow path. The paper's
// study methodology (§3.1) "built a tool with the Clang front-end to compare
// the code difference between a fast path and slow path on the same
// functionality to narrow down our focus on specific data structures,
// variables, and functions"; Compare is that tool: it reports the variables,
// fields, conditions, calls and return constants present in one path but not
// the other.
package difftool

import (
	"fmt"
	"sort"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/paths"
)

// Profile summarizes the semantically relevant surface of one function.
type Profile struct {
	Func       string
	Vars       []string // identifiers referenced
	Fields     []string // member paths referenced
	Conditions []string // branch condition texts
	Calls      []string // callees
	Returns    []string // return expression texts
	ReturnInts []int64  // concrete return constants
}

// BuildProfile computes the profile of fn within tu.
func BuildProfile(tu *cast.TranslationUnit, fn *cast.FuncDecl) *Profile {
	p := &Profile{Func: fn.Name}
	p.Vars = cast.Idents(fn.Body)
	p.Calls = cast.Calls(fn.Body)
	fieldSet := map[string]bool{}
	cast.Walk(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.MemberExpr:
			s := cast.ExprString(x)
			if !fieldSet[s] {
				fieldSet[s] = true
				p.Fields = append(p.Fields, s)
			}
		case *cast.IfStmt:
			p.Conditions = append(p.Conditions, cast.ExprString(x.Cond))
		case *cast.WhileStmt:
			p.Conditions = append(p.Conditions, cast.ExprString(x.Cond))
		case *cast.DoWhileStmt:
			p.Conditions = append(p.Conditions, cast.ExprString(x.Cond))
		case *cast.SwitchStmt:
			p.Conditions = append(p.Conditions, cast.ExprString(x.Tag))
		case *cast.ReturnStmt:
			if x.X != nil {
				p.Returns = append(p.Returns, cast.ExprString(x.X))
			}
		}
		return true
	})
	p.ReturnInts = paths.ReturnConstants(tu, fn)
	sort.Strings(p.Vars)
	sort.Strings(p.Fields)
	sort.Strings(p.Calls)
	return p
}

// Diff is the comparison between a fast path and its slow path.
type Diff struct {
	Fast, Slow *Profile
	// *Only hold what appears in exactly one of the two paths.
	VarsFastOnly, VarsSlowOnly     []string
	FieldsFastOnly, FieldsSlowOnly []string
	CallsFastOnly, CallsSlowOnly   []string
	CondsFastOnly, CondsSlowOnly   []string
	// ReturnsDiffer reports disagreement of concrete return sets (a rule-3.2
	// candidate before any spec is written).
	ReturnsDiffer bool
}

// Compare diffs the fast and slow functions.
func Compare(tu *cast.TranslationUnit, fast, slow *cast.FuncDecl) *Diff {
	fp := BuildProfile(tu, fast)
	sp := BuildProfile(tu, slow)
	d := &Diff{Fast: fp, Slow: sp}
	d.VarsFastOnly, d.VarsSlowOnly = diffSets(fp.Vars, sp.Vars)
	d.FieldsFastOnly, d.FieldsSlowOnly = diffSets(fp.Fields, sp.Fields)
	d.CallsFastOnly, d.CallsSlowOnly = diffSets(fp.Calls, sp.Calls)
	d.CondsFastOnly, d.CondsSlowOnly = diffSets(fp.Conditions, sp.Conditions)
	d.ReturnsDiffer = !sameInts(fp.ReturnInts, sp.ReturnInts)
	return d
}

func diffSets(a, b []string) (aOnly, bOnly []string) {
	inA := map[string]bool{}
	inB := map[string]bool{}
	for _, s := range a {
		inA[s] = true
	}
	for _, s := range b {
		inB[s] = true
	}
	for _, s := range a {
		if !inB[s] {
			aOnly = append(aOnly, s)
		}
	}
	for _, s := range b {
		if !inA[s] {
			bOnly = append(bOnly, s)
		}
	}
	sort.Strings(aOnly)
	sort.Strings(bOnly)
	return dedupSorted(aOnly), dedupSorted(bOnly)
}

func dedupSorted(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

func sameInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SuggestSpec proposes spec directives from the diff: condition variables the
// slow path checks but the fast path does not, an output-match obligation
// when returns differ, and a check_return hint for calls only the slow path
// verifies. It is the study tool's "narrow down the focus" step automated.
func (d *Diff) SuggestSpec() []string {
	var out []string
	for _, c := range d.CondsSlowOnly {
		for _, v := range identsInText(c) {
			out = append(out, "cond "+v)
		}
	}
	if d.ReturnsDiffer {
		out = append(out, fmt.Sprintf("match_output %s %s", d.Fast.Func, d.Slow.Func))
	}
	for _, call := range d.CallsSlowOnly {
		out = append(out, "# slow path additionally calls "+call)
	}
	sort.Strings(out)
	return dedupSorted(out)
}

func identsInText(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			j := i
			for j < len(s) && (s[j] == '_' || (s[j] >= 'a' && s[j] <= 'z') ||
				(s[j] >= 'A' && s[j] <= 'Z') || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			out = append(out, s[i:j])
			i = j
			continue
		}
		i++
	}
	return out
}

// String renders the diff as a readable report.
func (d *Diff) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %s (fast) vs %s (slow)\n", d.Fast.Func, d.Slow.Func)
	section := func(name string, fastOnly, slowOnly []string) {
		if len(fastOnly) == 0 && len(slowOnly) == 0 {
			return
		}
		fmt.Fprintf(&sb, "  %s:\n", name)
		for _, s := range fastOnly {
			fmt.Fprintf(&sb, "    + fast only: %s\n", s)
		}
		for _, s := range slowOnly {
			fmt.Fprintf(&sb, "    - slow only: %s\n", s)
		}
	}
	section("variables", d.VarsFastOnly, d.VarsSlowOnly)
	section("fields", d.FieldsFastOnly, d.FieldsSlowOnly)
	section("calls", d.CallsFastOnly, d.CallsSlowOnly)
	section("conditions", d.CondsFastOnly, d.CondsSlowOnly)
	if d.ReturnsDiffer {
		fmt.Fprintf(&sb, "  returns: fast %v vs slow %v\n", d.Fast.ReturnInts, d.Slow.ReturnInts)
	}
	return sb.String()
}
