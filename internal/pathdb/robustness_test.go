package pathdb

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pallas/internal/guard"
)

// TestReadCorruptInputs asserts every flavour of broken persisted database —
// truncated, type-confused, binary garbage — comes back as a wrapped
// "pathdb:" error and never a panic.
func TestReadCorruptInputs(t *testing.T) {
	full := func() string {
		db := buildDB(t)
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := map[string]string{
		"empty":             "",
		"truncated-half":    full[:len(full)/2],
		"truncated-1-byte":  full[:len(full)-2],
		"wrong-root-type":   `[1, 2, 3]`,
		"entries-not-map":   `{"target":"t.c","entries":[]}`,
		"entry-not-object":  `{"target":"t.c","entries":{"f":42}}`,
		"paths-not-array":   `{"target":"t.c","entries":{"f":{"func":"f","paths":{}}}}`,
		"binary-garbage":    "\x00\x01\x02\xff\xfe",
		"html-error-page":   "<html><body>504</body></html>",
		"diagnostics-wrong": `{"target":"t.c","entries":{},"diagnostics":"oops"}`,
	}
	for name, in := range cases {
		db, err := Read(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: corrupt input accepted: %+v", name, db)
			continue
		}
		if !strings.HasPrefix(err.Error(), "pathdb: ") {
			t.Errorf("%s: error not wrapped: %v", name, err)
		}
	}
}

// TestRoundTripPreservesDiagnostics asserts the degradation record of the
// run that built a database survives persistence, field by field.
func TestRoundTripPreservesDiagnostics(t *testing.T) {
	db := buildDB(t)
	want := []guard.Diagnostic{
		guard.Diag(guard.StageExtract, "fast", errors.New("deadline exceeded"), true),
		guard.Diag(guard.StageCheck, "path-state", errors.New("checker crashed"), true),
		guard.Diag(guard.StageParse, "t.c", errors.New("bad token"), false),
	}
	for _, d := range want {
		db.AddDiagnostic(d)
	}

	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Diagnostics) != len(want) {
		t.Fatalf("diagnostics lost: got %d want %d", len(back.Diagnostics), len(want))
	}
	for i, d := range back.Diagnostics {
		if d != want[i] {
			t.Errorf("diagnostic %d drifted: got %+v want %+v", i, d, want[i])
		}
	}
	// A database built without degradation must not grow a diagnostics key.
	var clean bytes.Buffer
	if err := buildDB(t).Write(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "diagnostics") {
		t.Error("clean database serialized an empty diagnostics field")
	}
}
