package pathdb

import (
	"strings"
	"testing"
)

func TestSelectByVarAndCall(t *testing.T) {
	db := buildDB(t)
	// fast(): paths testing a.
	hits := db.Select(Query{TestsVar: "a"})
	if len(hits) == 0 {
		t.Fatal("no paths test a")
	}
	for _, h := range hits {
		if !h.Path.TestsVar("a") {
			t.Errorf("hit does not test a: %v", h.Path)
		}
	}
	// Paths of slow that write r.
	hits = db.Select(Query{Func: "slow", WritesTo: "r"})
	if len(hits) == 0 {
		t.Fatal("no slow paths write r")
	}
	for _, h := range hits {
		if h.Func != "slow" {
			t.Errorf("func filter leaked: %s", h.Func)
		}
	}
	// No path calls anything in this source.
	if hits := db.Select(Query{Calls: "nothing"}); len(hits) != 0 {
		t.Errorf("phantom calls: %v", hits)
	}
}

func TestSelectByReturnAndDepth(t *testing.T) {
	db := buildDB(t)
	hits := db.Select(Query{Func: "fast", ReturnsExpr: "1"})
	if len(hits) != 1 {
		t.Fatalf("want one fast path returning 1, got %d", len(hits))
	}
	deep := db.Select(Query{MinConds: 1})
	for _, h := range deep {
		if len(h.Path.Conds) < 1 {
			t.Error("MinConds filter leaked")
		}
	}
	if len(db.Select(Query{MinConds: 99})) != 0 {
		t.Error("impossible depth matched")
	}
}

func TestSelectOrderingDeterministic(t *testing.T) {
	db := buildDB(t)
	a := db.Select(Query{})
	b := db.Select(Query{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].Func != b[i].Func || a[i].Path.Index != b[i].Path.Index {
			t.Fatal("nondeterministic order")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Func > a[i].Func {
			t.Fatal("not sorted by function")
		}
	}
}

func TestComputeStats(t *testing.T) {
	db := buildDB(t)
	st := db.ComputeStats()
	if st.Funcs != 2 || st.Paths != db.NumPaths() {
		t.Errorf("stats = %+v", st)
	}
	if st.Conds == 0 || st.States == 0 {
		t.Errorf("empty tallies: %+v", st)
	}
	out := st.String()
	if !strings.Contains(out, "fast:") || !strings.Contains(out, "total:") {
		t.Errorf("render:\n%s", out)
	}
}
