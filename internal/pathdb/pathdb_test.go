package pathdb

import (
	"bytes"
	"path/filepath"
	"testing"

	"pallas/internal/cparse"
	"pallas/internal/paths"
)

const src = `
int fast(int a) {
	if (a > 0)
		return 1;
	return 0;
}
int slow(int a) {
	int r = 0;
	while (r < a)
		r++;
	return r;
}
`

func buildDB(t *testing.T, names ...string) *DB {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	db, err := Build(ex, "t.c", names...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildAll(t *testing.T) {
	db := buildDB(t)
	if got := db.Funcs(); len(got) != 2 || got[0] != "fast" || got[1] != "slow" {
		t.Fatalf("funcs = %v", got)
	}
	if db.NumPaths() < 3 {
		t.Errorf("paths = %d", db.NumPaths())
	}
	if db.Get("fast") == nil || db.Get("zzz") != nil {
		t.Error("Get wrong")
	}
	if db.BuiltAt == "" {
		t.Error("BuiltAt not stamped")
	}
}

func TestBuildNamed(t *testing.T) {
	db := buildDB(t, "fast")
	if len(db.Funcs()) != 1 {
		t.Fatalf("funcs = %v", db.Funcs())
	}
	fp := db.FuncPaths("fast")
	if fp == nil || len(fp.Paths) != 2 {
		t.Fatalf("fast paths = %+v", fp)
	}
	if db.FuncPaths("slow") != nil {
		t.Error("slow should be absent")
	}
}

func TestBuildUnknownFunc(t *testing.T) {
	tu, _ := cparse.Parse("t.c", src)
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	if _, err := Build(ex, "t.c", "missing"); err == nil {
		t.Fatal("expected error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := buildDB(t)
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Target != "t.c" || back.NumPaths() != db.NumPaths() {
		t.Fatalf("round trip: %+v", back)
	}
	// Deep-check one path survives with its records.
	a := db.Get("fast").Paths[0]
	b := back.Get("fast").Paths[0]
	if a.Signature != b.Signature || len(a.Conds) != len(b.Conds) || a.Out.Expr != b.Out.Expr {
		t.Errorf("path drift:\n%v\nvs\n%v", a, b)
	}
}

func TestSaveLoad(t *testing.T) {
	db := buildDB(t)
	path := filepath.Join(t.TempDir(), "paths.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Funcs()) != 2 {
		t.Fatalf("loaded funcs = %v", back.Funcs())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected load error")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	db, err := Read(bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Entries == nil {
		t.Fatal("entries map not initialized")
	}
}

func TestPutReplaces(t *testing.T) {
	db := New("x")
	db.Put(&paths.FuncPaths{Fn: "f", Signature: "f()"})
	db.Put(&paths.FuncPaths{Fn: "f", Signature: "f(a)"})
	if db.Get("f").Signature != "f(a)" {
		t.Error("Put did not replace")
	}
}
