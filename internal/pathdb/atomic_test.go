package pathdb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
)

// TestSaveAtomicOnMidSaveCrash asserts the satellite fix for the old bare
// os.Create save: a crash (here: an injected mid-save abort) between
// serializing the new database and publishing it must leave the previous
// database intact on disk, byte for byte.
func TestSaveAtomicOnMidSaveCrash(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")

	old := buildDB(t)
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Arm("mid-save=error"); err != nil {
		t.Fatal(err)
	}
	bigger := buildDB(t)
	bigger.AddDiagnostic(guard.Diag(guard.StageExtract, "f", errors.New("x"), true))
	if err := bigger.Save(path); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("mid-save failpoint not hit: %v", err)
	}
	failpoint.Disarm()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("aborted save modified the existing database")
	}
	if db, err := Load(path); err != nil || len(db.Entries) != len(old.Entries) {
		t.Fatalf("existing database unreadable after aborted save: %v", err)
	}
}

// TestSavePreSaveAbortLeavesNoFile asserts an abort before any write leaves
// no target file behind for a fresh path.
func TestSavePreSaveAbortLeavesNoFile(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := failpoint.Arm("pre-save=error"); err != nil {
		t.Fatal(err)
	}
	if err := buildDB(t).Save(path); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("pre-save failpoint not hit: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted first save created the target: %v", err)
	}
}

// TestSaveLeavesNoTempDroppings asserts a successful save cleans up its temp
// file.
func TestSaveLeavesNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	if err := buildDB(t).Save(filepath.Join(dir, "db.json")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "db.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory after save: %v", names)
	}
}

// TestSalvageKeepsValidEntries corrupts one entry of a persisted database
// and asserts Salvage returns the others plus a StageStore diagnostic.
func TestSalvageKeepsValidEntries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")
	db := buildDB(t)
	if len(db.Entries) == 0 {
		t.Fatal("buildDB produced no entries")
	}
	var victim string
	for name := range db.Entries {
		victim = name
		break
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Type-confuse the victim entry's value: "<victim>": 42
	broken := strings.Replace(string(b), `"`+victim+`": {`, `"`+victim+`": 42, "zzz_ignore": {`, 1)
	if broken == string(b) {
		t.Fatalf("failed to corrupt entry %q in %s", victim, b)
	}
	if err := os.WriteFile(path, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("strict Load accepted the corrupted database")
	}
	got, err := Salvage(path)
	if err != nil {
		t.Fatalf("salvage failed: %v", err)
	}
	if got.Get(victim) != nil {
		t.Fatal("corrupt entry survived salvage")
	}
	// The victim's old body survives under the "zzz_ignore" key, so the
	// count stays at len(db.Entries): victim dropped, zzz_ignore kept.
	if len(got.Entries) != len(db.Entries) {
		t.Fatalf("salvage kept %d entries, want %d", len(got.Entries), len(db.Entries))
	}
	found := false
	for _, d := range got.Diagnostics {
		if d.Stage == guard.StageStore && strings.Contains(d.Err, "corrupt entry") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no StageStore diagnostic for the dropped entry: %+v", got.Diagnostics)
	}
}

// TestSalvageQuarantinesUnrecoverable asserts a database that is not JSON at
// all is moved aside so reruns do not trip over it forever.
func TestSalvageQuarantinesUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")
	if err := os.WriteFile(path, []byte("\x00\x01 not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Salvage(path); err == nil {
		t.Fatal("garbage database salvaged successfully?")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("garbage database still in place")
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine copy missing: %v", err)
	}
}
