// Package pathdb stores extracted execution paths. The paper's toolchain
// generates all execution paths once ("this is a one-time cost"), stores them
// in a database, and lets the checkers symbolically explore them; DB is that
// store, with JSON persistence so a corpus-wide extraction can be reused
// across checker runs.
package pathdb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/paths"
)

// Entry is the stored extraction result for one function.
type Entry struct {
	Func      string            `json:"func"`
	Signature string            `json:"signature"`
	Truncated bool              `json:"truncated,omitempty"`
	Paths     []*paths.ExecPath `json:"paths"`
}

// DB is a path database.
type DB struct {
	// Target names the analyzed translation unit.
	Target string `json:"target"`
	// BuiltAt records when the extraction ran (RFC3339).
	BuiltAt string `json:"built_at,omitempty"`
	// Entries maps function name → extraction result.
	Entries map[string]*Entry `json:"entries"`
	// Diagnostics preserves the degradation record of the run that built the
	// database, so consumers of a persisted DB know which entries may be
	// partial.
	Diagnostics []guard.Diagnostic `json:"diagnostics,omitempty"`
}

// New returns an empty database for the named target.
func New(target string) *DB {
	return &DB{Target: target, Entries: map[string]*Entry{}}
}

// Build extracts paths for the named functions (or, when names is empty, for
// every function in the extractor's translation unit) and stores them.
func Build(ex *paths.Extractor, target string, names ...string) (*DB, error) {
	db := New(target)
	db.BuiltAt = time.Now().UTC().Format(time.RFC3339)
	if len(names) == 0 {
		all, err := ex.ExtractAll()
		if err != nil {
			return nil, err
		}
		for _, fp := range all {
			db.put(fp)
		}
		return db, nil
	}
	for _, n := range names {
		fp, err := ex.Extract(n)
		if err != nil {
			return nil, err
		}
		db.put(fp)
	}
	return db, nil
}

func (db *DB) put(fp *paths.FuncPaths) {
	db.Entries[fp.Fn] = &Entry{
		Func: fp.Fn, Signature: fp.Signature, Truncated: fp.Truncated, Paths: fp.Paths,
	}
}

// Put stores an extraction result, replacing any previous entry.
func (db *DB) Put(fp *paths.FuncPaths) { db.put(fp) }

// AddDiagnostic appends a degradation record to the database.
func (db *DB) AddDiagnostic(d guard.Diagnostic) { db.Diagnostics = append(db.Diagnostics, d) }

// Get returns the entry for a function, or nil.
func (db *DB) Get(fn string) *Entry { return db.Entries[fn] }

// FuncPaths reconstructs a paths.FuncPaths view of an entry, or nil.
func (db *DB) FuncPaths(fn string) *paths.FuncPaths {
	e := db.Entries[fn]
	if e == nil {
		return nil
	}
	return &paths.FuncPaths{Fn: e.Func, Signature: e.Signature, Truncated: e.Truncated, Paths: e.Paths}
}

// Funcs lists the stored function names, sorted.
func (db *DB) Funcs() []string {
	out := make([]string, 0, len(db.Entries))
	for k := range db.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumPaths counts all stored paths.
func (db *DB) NumPaths() int {
	n := 0
	for _, e := range db.Entries {
		n += len(e.Paths)
	}
	return n
}

// Write serializes the database as JSON.
func (db *DB) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(db)
}

// Read deserializes a database.
func Read(r io.Reader) (*DB, error) {
	var db DB
	if err := json.NewDecoder(r).Decode(&db); err != nil {
		return nil, fmt.Errorf("pathdb: %w", err)
	}
	if db.Entries == nil {
		db.Entries = map[string]*Entry{}
	}
	return &db, nil
}

// Save writes the database to a file atomically: the JSON is written to a
// temp file in the same directory, fsynced, then renamed over the target. A
// crash at any point leaves either the old database or the new one — never a
// truncated hybrid. The PreSave/MidSave failpoints bracket the vulnerable
// window for crash testing.
func (db *DB) Save(path string) error {
	if err := failpoint.Hit(failpoint.PreSave, path); err != nil {
		return err
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if err := db.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The temp file is durable but the target still points at the old data:
	// this is where a mid-save crash used to truncate the DB.
	if err := failpoint.Hit(failpoint.MidSave, path); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a database from a file.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Salvage reads a database from a file, tolerating per-entry corruption:
// entries (and diagnostics) that fail to decode are dropped, and each drop
// is recorded as a StageStore diagnostic on the returned database, so a
// damaged store yields its intact paths instead of nothing. The error is
// non-nil only when the file is unreadable or not a JSON object at all —
// then the corrupt file is renamed to <path>.quarantine so the next run
// starts clean instead of tripping over it again.
func Salvage(path string) (*DB, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw struct {
		Target      string                     `json:"target"`
		BuiltAt     string                     `json:"built_at"`
		Entries     map[string]json.RawMessage `json:"entries"`
		Diagnostics json.RawMessage            `json:"diagnostics"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		if qerr := os.Rename(path, path+".quarantine"); qerr != nil {
			return nil, fmt.Errorf("pathdb: salvage %s: %v (quarantine failed: %v)", path, err, qerr)
		}
		return nil, fmt.Errorf("pathdb: salvage %s: unrecoverable (%v); moved to %s.quarantine", path, err, path)
	}
	db := New(raw.Target)
	db.BuiltAt = raw.BuiltAt
	for _, name := range sortedKeys(raw.Entries) {
		var e Entry
		if err := json.Unmarshal(raw.Entries[name], &e); err != nil {
			db.AddDiagnostic(guard.Diag(guard.StageStore, name,
				fmt.Errorf("dropped corrupt entry: %v", err), true))
			continue
		}
		db.Entries[name] = &e
	}
	if len(raw.Diagnostics) > 0 {
		var diags []guard.Diagnostic
		if err := json.Unmarshal(raw.Diagnostics, &diags); err != nil {
			db.AddDiagnostic(guard.Diag(guard.StageStore, raw.Target,
				fmt.Errorf("dropped corrupt diagnostics: %v", err), true))
		} else {
			db.Diagnostics = append(diags, db.Diagnostics...)
		}
	}
	return db, nil
}

func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
