// Package pathdb stores extracted execution paths. The paper's toolchain
// generates all execution paths once ("this is a one-time cost"), stores them
// in a database, and lets the checkers symbolically explore them; DB is that
// store, with JSON persistence so a corpus-wide extraction can be reused
// across checker runs.
package pathdb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pallas/internal/guard"
	"pallas/internal/paths"
)

// Entry is the stored extraction result for one function.
type Entry struct {
	Func      string            `json:"func"`
	Signature string            `json:"signature"`
	Truncated bool              `json:"truncated,omitempty"`
	Paths     []*paths.ExecPath `json:"paths"`
}

// DB is a path database.
type DB struct {
	// Target names the analyzed translation unit.
	Target string `json:"target"`
	// BuiltAt records when the extraction ran (RFC3339).
	BuiltAt string `json:"built_at,omitempty"`
	// Entries maps function name → extraction result.
	Entries map[string]*Entry `json:"entries"`
	// Diagnostics preserves the degradation record of the run that built the
	// database, so consumers of a persisted DB know which entries may be
	// partial.
	Diagnostics []guard.Diagnostic `json:"diagnostics,omitempty"`
}

// New returns an empty database for the named target.
func New(target string) *DB {
	return &DB{Target: target, Entries: map[string]*Entry{}}
}

// Build extracts paths for the named functions (or, when names is empty, for
// every function in the extractor's translation unit) and stores them.
func Build(ex *paths.Extractor, target string, names ...string) (*DB, error) {
	db := New(target)
	db.BuiltAt = time.Now().UTC().Format(time.RFC3339)
	if len(names) == 0 {
		all, err := ex.ExtractAll()
		if err != nil {
			return nil, err
		}
		for _, fp := range all {
			db.put(fp)
		}
		return db, nil
	}
	for _, n := range names {
		fp, err := ex.Extract(n)
		if err != nil {
			return nil, err
		}
		db.put(fp)
	}
	return db, nil
}

func (db *DB) put(fp *paths.FuncPaths) {
	db.Entries[fp.Fn] = &Entry{
		Func: fp.Fn, Signature: fp.Signature, Truncated: fp.Truncated, Paths: fp.Paths,
	}
}

// Put stores an extraction result, replacing any previous entry.
func (db *DB) Put(fp *paths.FuncPaths) { db.put(fp) }

// AddDiagnostic appends a degradation record to the database.
func (db *DB) AddDiagnostic(d guard.Diagnostic) { db.Diagnostics = append(db.Diagnostics, d) }

// Get returns the entry for a function, or nil.
func (db *DB) Get(fn string) *Entry { return db.Entries[fn] }

// FuncPaths reconstructs a paths.FuncPaths view of an entry, or nil.
func (db *DB) FuncPaths(fn string) *paths.FuncPaths {
	e := db.Entries[fn]
	if e == nil {
		return nil
	}
	return &paths.FuncPaths{Fn: e.Func, Signature: e.Signature, Truncated: e.Truncated, Paths: e.Paths}
}

// Funcs lists the stored function names, sorted.
func (db *DB) Funcs() []string {
	out := make([]string, 0, len(db.Entries))
	for k := range db.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumPaths counts all stored paths.
func (db *DB) NumPaths() int {
	n := 0
	for _, e := range db.Entries {
		n += len(e.Paths)
	}
	return n
}

// Write serializes the database as JSON.
func (db *DB) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(db)
}

// Read deserializes a database.
func Read(r io.Reader) (*DB, error) {
	var db DB
	if err := json.NewDecoder(r).Decode(&db); err != nil {
		return nil, fmt.Errorf("pathdb: %w", err)
	}
	if db.Entries == nil {
		db.Entries = map[string]*Entry{}
	}
	return &db, nil
}

// Save writes the database to a file.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a database from a file.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
