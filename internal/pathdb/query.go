package pathdb

import (
	"fmt"
	"sort"
	"strings"

	"pallas/internal/paths"
)

// Query filters stored paths. Zero-valued fields match everything; set
// fields are conjunctive.
type Query struct {
	// Func restricts to one function ("" = all).
	Func string
	// TestsVar keeps paths whose conditions reference the variable.
	TestsVar string
	// WritesTo keeps paths that update the variable or one of its fields.
	WritesTo string
	// Calls keeps paths invoking the named function.
	Calls string
	// ReturnsExpr keeps paths whose output expression equals this text.
	ReturnsExpr string
	// MinConds keeps paths with at least this many branch decisions.
	MinConds int
}

// Hit is one query match.
type Hit struct {
	Func string
	Path *paths.ExecPath
}

// Select returns the paths matching q, ordered by (function, path index).
func (db *DB) Select(q Query) []Hit {
	var out []Hit
	fns := db.Funcs()
	for _, fn := range fns {
		if q.Func != "" && q.Func != fn {
			continue
		}
		for _, p := range db.Entries[fn].Paths {
			if matches(p, q) {
				out = append(out, Hit{Func: fn, Path: p})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Path.Index < out[j].Path.Index
	})
	return out
}

func matches(p *paths.ExecPath, q Query) bool {
	if q.TestsVar != "" && !p.TestsVar(q.TestsVar) {
		return false
	}
	if q.WritesTo != "" {
		if _, ok := p.WritesTo(q.WritesTo); !ok {
			return false
		}
	}
	if q.Calls != "" {
		if _, ok := p.CallNamed(q.Calls); !ok {
			return false
		}
	}
	if q.ReturnsExpr != "" {
		if p.Out == nil || p.Out.Void || p.Out.Expr != q.ReturnsExpr {
			return false
		}
	}
	if q.MinConds > 0 && len(p.Conds) < q.MinConds {
		return false
	}
	return true
}

// Stats summarizes a database: per-function path counts and the global
// condition/state/call volume.
type Stats struct {
	Funcs        int
	Paths        int
	Conds        int
	States       int
	Calls        int
	MaxPathDepth int // longest condition chain on any path
	PerFunc      map[string]int
}

// ComputeStats tallies the database.
func (db *DB) ComputeStats() Stats {
	st := Stats{PerFunc: map[string]int{}}
	for fn, e := range db.Entries {
		st.Funcs++
		st.PerFunc[fn] = len(e.Paths)
		st.Paths += len(e.Paths)
		for _, p := range e.Paths {
			st.Conds += len(p.Conds)
			st.States += len(p.States)
			st.Calls += len(p.Calls)
			if len(p.Conds) > st.MaxPathDepth {
				st.MaxPathDepth = len(p.Conds)
			}
		}
	}
	return st
}

// String renders the stats in one line per function plus totals.
func (s Stats) String() string {
	var sb strings.Builder
	fns := make([]string, 0, len(s.PerFunc))
	for fn := range s.PerFunc {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		fmt.Fprintf(&sb, "%s: %d path(s)\n", fn, s.PerFunc[fn])
	}
	fmt.Fprintf(&sb, "total: %d paths, %d conditions, %d state updates, %d calls\n",
		s.Paths, s.Conds, s.States, s.Calls)
	return sb.String()
}
