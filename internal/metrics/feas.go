package metrics

// Feasibility-layer metric names. The path extractor (internal/paths)
// registers these in metrics.Default when the balanced or strict precision
// tier discards an infeasible path continuation, so one /metrics scrape of
// a serve, worker, or batch process shows how much work the feasibility
// layer (internal/feas) avoided. Declared here, next to the registry, like
// the incremental and cluster sets.
const (
	// MetricFeasPathsPruned counts path continuations discarded because the
	// branch conditions accumulated along them were mutually contradictory.
	// It is a lower bound on the paths avoided: one discarded edge can hide
	// a whole subtree of enumerations.
	MetricFeasPathsPruned = "pallas_feas_paths_pruned_total"
	// MetricFeasContradictions counts contradictory condition accumulations
	// the feasibility layer detected during path walks.
	MetricFeasContradictions = "pallas_feas_contradictions_total"
)

// Help strings, shared by the writer (internal/paths) and every reader so
// the idempotent registration always agrees.
const (
	HelpFeasPathsPruned    = "Path continuations discarded as infeasible by the feasibility layer."
	HelpFeasContradictions = "Contradictory branch-condition accumulations detected during path walks."
)
