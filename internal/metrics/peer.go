package metrics

// Shared cache tier metric names. The peer tier (internal/rcache/peer)
// registers these in its registry (metrics.Default on workers and serve, so
// one scrape shows how much the cluster-wide cache saved versus what it
// cost); declared here, next to the registry, like the cluster and incr
// sets.
const (
	// MetricPeerHits counts cache lookups answered by a remote peer after
	// content-sum verification (the local tiers missed; the fleet's warm
	// state saved a re-analysis).
	MetricPeerHits = "pallas_peer_hits_total"
	// MetricPeerMisses counts lookups that fell through the whole tier —
	// local miss plus every reachable replica missing, timing out, or
	// refusing — and degraded to a local compute.
	MetricPeerMisses = "pallas_peer_misses_total"
	// MetricPeerRotRefusals counts remote entries refused because their
	// content checksum did not match their bytes (rot in a peer's tier or on
	// the wire beneath the frame CRC); refused entries are treated as misses
	// and trigger read-repair from the good replica when one exists.
	MetricPeerRotRefusals = "pallas_peer_rot_refusals_total"
	// MetricPeerRepairs counts read-repair writes: a verified entry pushed
	// to a replica that missed or served rot, restoring the replication
	// factor.
	MetricPeerRepairs = "pallas_peer_read_repairs_total"
	// MetricPeerPuts counts replicated writes attempted to owner peers
	// (excluding handoff drains and read repairs).
	MetricPeerPuts = "pallas_peer_puts_total"
	// MetricPeerPutBytes counts payload bytes shipped in replicated writes —
	// the replication overhead the README capacity note is about.
	MetricPeerPutBytes = "pallas_peer_put_bytes_total"
	// MetricPeerTimeouts counts peer ops (get or put) abandoned at the
	// per-op deadline; the op degrades to local, never blocks the analysis.
	MetricPeerTimeouts = "pallas_peer_timeouts_total"
	// MetricPeerBreakerTrips counts per-peer circuit-breaker trips (a peer
	// crossed its consecutive-failure threshold and its ops are skipped
	// until the cooldown probe succeeds).
	MetricPeerBreakerTrips = "pallas_peer_breaker_trips_total"
	// MetricPeerHandoffQueued counts writes owed to an unreachable peer that
	// were queued locally as hints.
	MetricPeerHandoffQueued = "pallas_peer_handoff_queued_total"
	// MetricPeerHandoffDrained counts hints delivered to their peer after it
	// returned.
	MetricPeerHandoffDrained = "pallas_peer_handoff_drained_total"
	// MetricPeerHandoffDropped counts hints dropped because the byte-bounded
	// handoff queue overflowed (oldest-first) or the tier closed before the
	// peer returned; the entry still lives in the writer's local tiers, so a
	// drop costs a future remote miss, never data.
	MetricPeerHandoffDropped = "pallas_peer_handoff_dropped_total"
	// MetricPeerStaleEpochRefusals counts peer ops refused because the
	// sender's ring epoch was older than the receiver's — a zombie peer
	// routing on a stale map, fenced at the receiving edge.
	MetricPeerStaleEpochRefusals = "pallas_peer_stale_epoch_refusals_total"
	// MetricPeerEpoch gauges the tier's current ring epoch, for spotting a
	// worker whose peer map stopped advancing.
	MetricPeerEpoch = "pallas_peer_epoch"
)
