// Package metrics is a small, stdlib-only metrics registry shared by the
// analysis server and batch mode. It exposes exactly the three instrument
// kinds the system needs — monotonic counters, gauges, and fixed-bucket
// histograms — and renders them in the Prometheus text exposition format, so
// `pallas serve`'s /metrics endpoint can be scraped by standard tooling
// without pulling in a client library.
//
// All instruments are safe for concurrent use and cheap enough for hot
// paths: a counter increment is one atomic add.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, cache bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of float64 observations
// (request latency in seconds, by convention).
type Histogram struct {
	uppers []float64      // bucket upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // one per upper bound
	count  atomic.Int64   // total observations
	sum    atomic.Uint64  // math.Float64bits accumulator, CAS-updated
}

// DefBuckets is the default latency bucket set, in seconds. It spans 100µs
// (a pure cache hit) to 30s (a budget-bounded cold analysis).
var DefBuckets = []float64{
	.0001, .0005, .001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// kind tags a registered instrument for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

type instrument struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. Registration is idempotent: asking for
// an existing name returns the existing instrument, so independent layers
// (server handlers, batch mode) can share one metric by agreeing on a name.
type Registry struct {
	mu    sync.Mutex
	by    map[string]*instrument
	order []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: map[string]*instrument{}}
}

// Default is the process-wide registry. Batch mode records into it when no
// registry is injected; `pallas serve` exposes it at /metrics.
var Default = NewRegistry()

func (r *Registry) lookup(name, help string, k kind) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.by[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered with a different kind", name))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		in.c = &Counter{}
	case kindGauge:
		in.g = &Gauge{}
	case kindHistogram:
		in.h = &Histogram{}
	}
	r.by[name] = in
	r.order = append(r.order, name)
	return in
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (nil means DefBuckets). Buckets are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	in := r.lookup(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.h.uppers == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		ups := append([]float64(nil), buckets...)
		sort.Float64s(ups)
		in.h.uppers = ups
		in.h.counts = make([]atomic.Int64, len(ups))
	}
	return in.h
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.order))
	for _, name := range r.order {
		ins = append(ins, r.by[name])
	}
	r.mu.Unlock()

	for _, in := range ins {
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				in.name, in.help, in.name, in.name, in.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				in.name, in.help, in.name, in.name, in.g.Value())
		case kindHistogram:
			err = writeHistogram(w, in)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, in *instrument) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		in.name, in.help, in.name); err != nil {
		return err
	}
	// Buckets are cumulative: each le bucket counts observations at or below
	// its bound, ending with the +Inf bucket equal to _count.
	cum := int64(0)
	for i, ub := range in.h.uppers {
		cum += in.h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			in.name, formatFloat(ub), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", in.name, in.h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n",
		in.name, in.h.Sum(), in.name, in.h.Count()); err != nil {
		return err
	}
	return nil
}

// formatFloat renders a bucket bound the way Prometheus expects (no
// exponent for the usual latency bounds).
func formatFloat(f float64) string {
	return fmt.Sprintf("%v", f)
}
