package metrics

// Cluster metric names. The coordinator (internal/cluster) registers these
// in its registry (metrics.Default for the CLI, so one scrape of the
// coordinator's -status-addr covers the whole run); they are declared here,
// next to the registry, so the full cluster instrument set is discoverable
// in one place and name collisions with server/batch metrics are avoided by
// inspection.
const (
	// MetricClusterWorkersLive gauges workers currently live (registered,
	// heartbeating, not evicted).
	MetricClusterWorkersLive = "pallas_cluster_workers_live"
	// MetricClusterRequeues counts units re-dispatched after a worker
	// failure, eviction, or transient analysis error.
	MetricClusterRequeues = "pallas_cluster_requeues_total"
	// MetricClusterHeartbeatMisses counts missed worker heartbeats (one per
	// probe that failed or timed out; HeartbeatMisses consecutive misses
	// evict the worker).
	MetricClusterHeartbeatMisses = "pallas_cluster_heartbeat_misses_total"
	// MetricClusterEvictions counts workers evicted for missed heartbeats
	// or fatal transport failure.
	MetricClusterEvictions = "pallas_cluster_evictions_total"
	// MetricClusterDupCompletions counts completions suppressed because the
	// unit's content hash was already recorded (a requeued unit finishing
	// twice).
	MetricClusterDupCompletions = "pallas_cluster_duplicate_completions_total"
	// MetricClusterUnitsDone counts units whose terminal outcome was
	// recorded (completed, failed, or quarantined — not skipped-on-resume).
	MetricClusterUnitsDone = "pallas_cluster_units_done_total"
	// MetricClusterBackpressure counts dispatches refused by a worker's
	// overload layer (HTTP 503 + Retry-After) and requeued without spending
	// an attempt.
	MetricClusterBackpressure = "pallas_cluster_backpressure_total"
	// MetricClusterWorkerRestarts counts crashed spawned workers restarted
	// by the supervisor.
	MetricClusterWorkerRestarts = "pallas_cluster_worker_restarts_total"
)
