package metrics

// Cluster metric names. The coordinator (internal/cluster) registers these
// in its registry (metrics.Default for the CLI, so one scrape of the
// coordinator's -status-addr covers the whole run); they are declared here,
// next to the registry, so the full cluster instrument set is discoverable
// in one place and name collisions with server/batch metrics are avoided by
// inspection.
const (
	// MetricClusterWorkersLive gauges workers currently live (registered,
	// heartbeating, not evicted).
	MetricClusterWorkersLive = "pallas_cluster_workers_live"
	// MetricClusterRequeues counts units re-dispatched after a worker
	// failure, eviction, or transient analysis error.
	MetricClusterRequeues = "pallas_cluster_requeues_total"
	// MetricClusterHeartbeatMisses counts missed worker heartbeats (one per
	// probe that failed or timed out; HeartbeatMisses consecutive misses
	// evict the worker).
	MetricClusterHeartbeatMisses = "pallas_cluster_heartbeat_misses_total"
	// MetricClusterEvictions counts workers evicted for missed heartbeats
	// or fatal transport failure.
	MetricClusterEvictions = "pallas_cluster_evictions_total"
	// MetricClusterDupCompletions counts completions suppressed because the
	// unit's content hash was already recorded (a requeued unit finishing
	// twice).
	MetricClusterDupCompletions = "pallas_cluster_duplicate_completions_total"
	// MetricClusterUnitsDone counts units whose terminal outcome was
	// recorded (completed, failed, or quarantined — not skipped-on-resume).
	MetricClusterUnitsDone = "pallas_cluster_units_done_total"
	// MetricClusterBackpressure counts dispatches refused by a worker's
	// overload layer (HTTP 503 + Retry-After) and requeued without spending
	// an attempt.
	MetricClusterBackpressure = "pallas_cluster_backpressure_total"
	// MetricClusterWorkerRestarts counts crashed spawned workers restarted
	// by the supervisor.
	MetricClusterWorkerRestarts = "pallas_cluster_worker_restarts_total"
	// MetricClusterHedges counts speculative re-dispatches launched because
	// a unit's in-flight time crossed the hedge threshold (p95 × factor,
	// floor-clamped).
	MetricClusterHedges = "pallas_cluster_hedges_total"
	// MetricClusterHedgeWins counts hedged units whose winning completion
	// came from the hedge rather than the original dispatch — the metric
	// that justifies (or indicts) the hedging budget.
	MetricClusterHedgeWins = "pallas_cluster_hedge_wins_total"
	// MetricClusterStaleCompletions counts completions rejected because
	// their lease epoch was no longer valid (zombie worker, cancelled
	// hedge) — fencing at work.
	MetricClusterStaleCompletions = "pallas_cluster_stale_completions_total"
	// MetricClusterIntegrityFailures counts completions whose end-to-end
	// content checksum did not match their bytes; the unit is requeued
	// (attempt refunded) and the worker evicted after IntegrityLimit
	// offenses.
	MetricClusterIntegrityFailures = "pallas_cluster_integrity_failures_total"
	// MetricClusterWorkerHealthMin gauges the lowest health score among live
	// workers, scaled ×1000 (the registry is integer-valued): 1000 is a
	// fully healthy fleet, low values flag a gray-failing straggler that
	// liveness alone would miss.
	MetricClusterWorkerHealthMin = "pallas_cluster_worker_health_min_x1000"
	// MetricClusterProbations counts health-score demotions to probation
	// (dispatch-biased-away, no stealing, single in-flight probe).
	MetricClusterProbations = "pallas_cluster_worker_probations_total"
	// MetricClusterWorkersProbation gauges workers currently on probation.
	MetricClusterWorkersProbation = "pallas_cluster_workers_probation"
)
