package metrics

// Incremental-analysis metric names. The memo store (internal/incr)
// registers these in metrics.Default, so one /metrics scrape of a serve,
// worker, or batch process shows how much re-analysis the function-level
// memo avoided. Declared here, next to the registry, like the cluster set.
const (
	// MetricIncrFuncHits counts per-function memo lookups answered from the
	// store (the function's paths were replayed, not re-extracted).
	MetricIncrFuncHits = "pallas_incr_func_hits_total"
	// MetricIncrFuncMisses counts per-function memo lookups that found
	// nothing usable (the function was extracted from scratch).
	MetricIncrFuncMisses = "pallas_incr_func_misses_total"
	// MetricIncrFuncInvalidations counts function lookups whose transitive
	// fingerprint differed from the previous lookup of the same (unit,
	// function) slot — i.e. memo entries invalidated by an edit to the
	// function or one of its transitive callees.
	MetricIncrFuncInvalidations = "pallas_incr_func_invalidations_total"
	// MetricIncrUnitHits counts whole-unit verdict replays (nothing in the
	// unit changed: report and path database served from the memo).
	MetricIncrUnitHits = "pallas_incr_unit_hits_total"
	// MetricIncrUnitMisses counts whole-unit verdict lookups that missed.
	MetricIncrUnitMisses = "pallas_incr_unit_misses_total"
	// MetricIncrReuseRatio gauges the memo's reuse ratio ×1000: hits /
	// (hits + misses) over all function and unit lookups since the store
	// opened. 1000 means every lookup was served from the memo.
	MetricIncrReuseRatio = "pallas_incr_reuse_ratio_x1000"
)
