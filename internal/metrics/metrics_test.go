package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pallas_requests_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("pallas_requests_total", "requests"); again != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("pallas_in_flight", "in flight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pallas_request_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pallas_request_seconds histogram",
		`pallas_request_seconds_bucket{le="0.1"} 1`,
		`pallas_request_seconds_bucket{le="1"} 3`,
		`pallas_request_seconds_bucket{le="10"} 4`,
		`pallas_request_seconds_bucket{le="+Inf"} 5`,
		"pallas_request_seconds_sum 56.05",
		"pallas_request_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "the a counter").Add(7)
	r.Gauge("b", "the b gauge").Set(-2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total the a counter",
		"# TYPE a_total counter",
		"a_total 7",
		"# TYPE b gauge",
		"b -2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is stable: a before b.
	if strings.Index(out, "a_total 7") > strings.Index(out, "b -2") {
		t.Errorf("exposition order not registration order:\n%s", out)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
