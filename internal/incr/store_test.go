package incr

// Store contract: byte-bounded in both tiers, atomic persistent writes (a
// torn or garbage entry is a miss, never an error), truncated extractions
// refused, invalidations detected by fingerprint change. The end-to-end
// SIGKILL-mid-save crash test lives in cmd/pallas.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pallas/internal/metrics"
	"pallas/internal/paths"
)

func openStore(t *testing.T, o Options) *Store {
	t.Helper()
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func funcPaths(fn string, n int) *paths.FuncPaths {
	fp := &paths.FuncPaths{Fn: fn, Signature: fn + "(a)"}
	for i := 0; i < n; i++ {
		fp.Paths = append(fp.Paths, &paths.ExecPath{
			Fn: fn, Signature: fn + "(a)", Index: i, Blocks: []int{0, i + 1},
			Out: &paths.Output{Expr: "a", Sym: "a", Line: 3 + i},
		})
	}
	return fp
}

func TestStoreFuncRoundTrip(t *testing.T) {
	s := openStore(t, Options{Dir: t.TempDir()})
	want := funcPaths("fast", 2)
	s.PutFunc("key-aaa1", "u.c", "fast", "fp1", want)

	got := s.GetFunc("key-aaa1", "u.c", "fast", "fp1")
	if got == nil {
		t.Fatal("stored entry missed")
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", gb, wb)
	}
	if s.GetFunc("key-other", "u.c", "fast", "fp1") != nil {
		t.Fatal("unknown key hit")
	}
	st := s.Stats()
	if st.FuncHits != 1 || st.FuncMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestStoreRefusesTruncated: budget-truncated extractions are
// timing-dependent, so the store must refuse them on write and on read.
func TestStoreRefusesTruncated(t *testing.T) {
	s := openStore(t, Options{})
	fp := funcPaths("fast", 1)
	fp.Truncated = true
	s.PutFunc("key-aaa1", "u.c", "fast", "fp1", fp)
	if s.GetFunc("key-aaa1", "u.c", "fast", "fp1") != nil {
		t.Fatal("truncated extraction was memoized")
	}
	s.PutFunc("key-aaa2", "u.c", "fast", "fp1", nil)
	if s.GetFunc("key-aaa2", "u.c", "fast", "fp1") != nil {
		t.Fatal("nil extraction was memoized")
	}
}

// TestStoreInvalidationAccounting: a lookup under a new fingerprint for a
// slot seen before counts as an invalidation — the DAG carried an edit to
// this function.
func TestStoreInvalidationAccounting(t *testing.T) {
	s := openStore(t, Options{})
	s.PutFunc("key-aaa1", "u.c", "fast", "fp1", funcPaths("fast", 1))
	s.GetFunc("key-aaa1", "u.c", "fast", "fp1") // hit, first sight of the slot
	s.GetFunc("key-aaa2", "u.c", "fast", "fp2") // miss, fingerprint changed
	s.GetFunc("key-aaa2", "u.c", "fast", "fp2") // miss, fingerprint stable
	s.GetFunc("key-aaa9", "u.c", "slow", "fp1") // other slot, first sight

	st := s.Stats()
	if st.FuncInvalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (stats %+v)", st.FuncInvalidations, st)
	}
	if st.FuncHits != 1 || st.FuncMisses != 3 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses", st)
	}
}

func TestStoreUnitRoundTrip(t *testing.T) {
	s := openStore(t, Options{Dir: t.TempDir()})
	rec := &UnitRecord{
		Unit:        "u.c",
		Fingerprint: "ufp1",
		Report:      json.RawMessage(`{"unit":"u.c"}`),
		PathDB:      json.RawMessage(`{"target":"u.c"}`),
	}
	key := UnitKey("cfg", "u.c", "spec", "ufp1")
	s.PutUnit(key, rec)

	got := s.GetUnit(key, "u.c", "ufp1")
	if got == nil {
		t.Fatal("stored verdict missed")
	}
	if string(got.Report) != `{"unit":"u.c"}` || string(got.PathDB) != `{"target":"u.c"}` {
		t.Fatalf("verdict bytes drifted: %+v", got)
	}
	if s.GetUnit(key, "u.c", "ufp2") != nil {
		t.Fatal("stale fingerprint hit")
	}
	st := s.Stats()
	if st.UnitHits != 1 || st.UnitMisses != 1 {
		t.Fatalf("stats = %+v, want 1 unit hit / 1 unit miss", st)
	}
}

// TestStorePersistsAcrossOpens: a second Open over the same directory serves
// the first one's entries — the cross-process warm-start path.
func TestStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, Options{Dir: dir})
	s1.PutFunc("key-aaa1", "u.c", "fast", "fp1", funcPaths("fast", 2))

	s2 := openStore(t, Options{Dir: dir})
	if s2.GetFunc("key-aaa1", "u.c", "fast", "fp1") == nil {
		t.Fatal("persisted entry missed after reopen")
	}
}

// TestStoreTornEntriesAreMisses: garbage, truncated JSON, and wrong-version
// records in the persistent tier must read as misses. The store stays fully
// usable — fresh writes land and read back.
func TestStoreTornEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, Options{Dir: dir})
	s1.PutFunc("key-aaa1", "u.c", "fast", "fp1", funcPaths("fast", 1))

	// Corrupt every persisted entry three ways: binary garbage, a torn JSON
	// prefix, and a wrong record version.
	var ents []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			ents = append(ents, path)
		}
		return nil
	})
	if len(ents) == 0 {
		t.Fatal("no persisted entries to corrupt")
	}
	for i, p := range ents {
		switch i % 3 {
		case 0:
			os.WriteFile(p, []byte("\x00\xffnot json"), 0o644)
		case 1:
			b, _ := os.ReadFile(p)
			os.WriteFile(p, b[:len(b)/2], 0o644)
		case 2:
			os.WriteFile(p, []byte(`{"key":"key-aaa1","unit":"u","report":"eyJ2ZXJzaW9uIjo5OX0="}`), 0o644)
		}
	}

	s2 := openStore(t, Options{Dir: dir})
	if s2.GetFunc("key-aaa1", "u.c", "fast", "fp1") != nil {
		t.Fatal("corrupted entry replayed")
	}
	s2.PutFunc("key-aaa2", "u.c", "slow", "fp2", funcPaths("slow", 1))
	if s2.GetFunc("key-aaa2", "u.c", "slow", "fp2") == nil {
		t.Fatal("store unusable after encountering torn entries")
	}
}

// TestStorePruneBoundsDisk: the persistent tier converges to MaxBytes by
// removing the oldest entries; pruned entries become misses, newest entries
// survive.
func TestStorePruneBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 8 << 10
	s := openStore(t, Options{Dir: dir, MaxBytes: maxBytes})
	for i := 0; i < 64; i++ {
		s.PutFunc(fmt.Sprintf("key-%03d", i), "u.c", fmt.Sprintf("f%d", i), "fp", funcPaths(fmt.Sprintf("f%d", i), 4))
	}
	s.prune()

	var total int64
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			if info, ierr := d.Info(); ierr == nil {
				total += info.Size()
			}
		}
		return nil
	})
	if total > maxBytes {
		t.Fatalf("persistent tier holds %d bytes, budget %d", total, maxBytes)
	}
	if s.Stats().Pruned == 0 {
		t.Fatal("nothing pruned despite exceeding the budget")
	}

	// A fresh store over the pruned directory still serves what survived.
	s2 := openStore(t, Options{Dir: dir, MaxBytes: maxBytes})
	hits := 0
	for i := 0; i < 64; i++ {
		if s2.GetFunc(fmt.Sprintf("key-%03d", i), "u.c", fmt.Sprintf("f%d", i), "fp") != nil {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Fatalf("survivors = %d, want some but not all under an 8KiB budget", hits)
	}
}

// TestStoreOpenPrunesOversizedDir: Open itself trims a directory left over
// from a run with a larger budget.
func TestStoreOpenPrunesOversizedDir(t *testing.T) {
	dir := t.TempDir()
	big := openStore(t, Options{Dir: dir, MaxBytes: 1 << 20})
	for i := 0; i < 64; i++ {
		big.PutFunc(fmt.Sprintf("key-%03d", i), "u.c", fmt.Sprintf("f%d", i), "fp", funcPaths(fmt.Sprintf("f%d", i), 4))
	}

	small := openStore(t, Options{Dir: dir, MaxBytes: 4 << 10})
	if small.Stats().Pruned == 0 {
		t.Fatal("Open left an oversized directory untrimmed")
	}
}

// TestStoreMetricsRegistered: the pallas_incr_* instruments land in the
// registry and move with activity.
func TestStoreMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openStore(t, Options{Registry: reg})
	s.PutFunc("key-aaa1", "u.c", "fast", "fp1", funcPaths("fast", 1))
	s.GetFunc("key-aaa1", "u.c", "fast", "fp1")
	s.GetFunc("key-aaa2", "u.c", "fast", "fp2")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		metrics.MetricIncrFuncHits + " 1",
		metrics.MetricIncrFuncMisses + " 1",
		metrics.MetricIncrFuncInvalidations + " 1",
		metrics.MetricIncrReuseRatio + " 500",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
