package incr

// FuzzFingerprint hammers the fingerprint pipeline with arbitrary token
// streams: anything cparse accepts must fingerprint without panicking, two
// fingerprinting passes over the same source must agree exactly (the memo
// contract is meaningless otherwise), and a trailing comment must never
// change any fingerprint.

import (
	"testing"

	"pallas/internal/cparse"
)

func FuzzFingerprint(f *testing.F) {
	f.Add("int f(int a) { return a; }")
	f.Add(graphSrc)
	f.Add("int g; int f(void) { if (g) { return g; } return 0; }")
	f.Add("int a(int x) { return b(x); } int b(int x) { return a(x); }")
	f.Add("struct s { int n; }; int f(struct s *p) { return p->n; }")
	f.Add("int f(int a) { switch (a) { case 1: return 2; default: break; } return 0; }")
	f.Add("int f(int a) { for (;;) { a++; if (a > 3) break; } return a; }")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		tu, err := cparse.Parse("fuzz.c", src)
		if err != nil {
			t.Skip()
		}
		g1, g2 := BuildGraph(tu), BuildGraph(tu)
		if g1.Ambient() != g2.Ambient() || g1.UnitFingerprint() != g2.UnitFingerprint() {
			t.Fatal("unit fingerprints differ across passes over one parse")
		}
		for _, fn := range g1.Funcs() {
			for _, fp := range []string{g1.Local(fn), g1.Transitive(fn)} {
				if len(fp) != 64 {
					t.Fatalf("fingerprint of %s is %q, want 64 hex chars", fn, fp)
				}
			}
			if g1.Local(fn) != g2.Local(fn) || g1.Transitive(fn) != g2.Transitive(fn) {
				t.Fatalf("fingerprints of %s differ across passes over one parse", fn)
			}
		}

		// Same source re-parsed: identical fingerprints (purity over text).
		tu2, err := cparse.Parse("fuzz.c", src)
		if err != nil {
			t.Fatalf("re-parse of accepted source failed: %v", err)
		}
		g3 := BuildGraph(tu2)
		if g3.UnitFingerprint() != g1.UnitFingerprint() {
			t.Fatal("unit fingerprint differs across re-parses of one source")
		}

		// A trailing comment is invisible to the AST and shifts no lines, so
		// every fingerprint must survive it. Skip sources the comment would
		// change structurally (an unterminated block comment or a trailing
		// line-comment start would swallow it).
		tu3, err := cparse.Parse("fuzz.c", src+" // trailing note")
		if err != nil {
			return
		}
		g4 := BuildGraph(tu3)
		if g4.UnitFingerprint() != g1.UnitFingerprint() {
			t.Fatal("trailing comment changed the unit fingerprint")
		}
	})
}
