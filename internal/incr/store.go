package incr

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pallas/internal/metrics"
	"pallas/internal/paths"
	"pallas/internal/rcache"
)

// RecordVersion is the memo record format version. Records with any other
// version are treated as misses (never as corruption), so the format can
// evolve without a migration. The layout of FuncRecord and UnitRecord is
// pinned by TestIncrRecordFormatPinned.
const RecordVersion = 1

// DefaultMaxBytes bounds the memo store when Options.MaxBytes is unset.
const DefaultMaxBytes = 64 << 20

// FuncRecord is the persisted form of one memoized function extraction.
type FuncRecord struct {
	// Version is RecordVersion at write time.
	Version int `json:"version"`
	// Fn is the function name.
	Fn string `json:"fn"`
	// Fingerprint is the transitive fingerprint the record was stored under;
	// lookups re-verify it even though the key already covers it.
	Fingerprint string `json:"fingerprint"`
	// Paths is the extraction result. Never truncated: budget-truncated
	// extractions are timing-dependent and are not memoized.
	Paths *paths.FuncPaths `json:"paths"`
}

// UnitRecord is the persisted form of one memoized whole-unit verdict: the
// exact report and path-database bytes a clean (non-degraded) analysis of
// the unit produced.
type UnitRecord struct {
	// Version is RecordVersion at write time.
	Version int `json:"version"`
	// Unit is the unit name the verdict belongs to.
	Unit string `json:"unit"`
	// Fingerprint is the unit fingerprint the record was stored under.
	Fingerprint string `json:"fingerprint"`
	// Report is the marshaled report.Report.
	Report json.RawMessage `json:"report"`
	// PathDB is the marshaled pathdb.DB.
	PathDB json.RawMessage `json:"pathdb"`
}

// SharedTier is the cluster-wide cache tier the memo can ride on (the peer
// tier, internal/rcache/peer — named abstractly here to avoid an import
// cycle through the analyzer). Register attaches the memo's own rcache as
// the local backing store of the named space; Get and Put then consult the
// local tiers first and the fleet's replicas second, so a function memoized
// on any worker warms every worker. The tier's contract matches the memo's:
// remote failures degrade to local, never error an analysis.
type SharedTier interface {
	Register(space string, local *rcache.Cache)
	Get(space, key string) (*rcache.Entry, bool)
	Put(space string, e *rcache.Entry) error
}

// sharedSpace is the key space the memo occupies on the shared tier
// (peer.SpaceIncr; keys are fingerprint hashes, disjoint from unit-cache
// content hashes by construction).
const sharedSpace = "incr"

// Options configures Open.
type Options struct {
	// Dir, when non-empty, persists the memo across processes at this
	// directory (created if missing). Writes are atomic (temp + fsync +
	// rename, via rcache), so a crash mid-save never leaves a torn entry.
	Dir string
	// MaxBytes bounds the store: it caps the in-memory tier's LRU (rcache)
	// and the persistent tier's total size (oldest entries pruned once the
	// directory outgrows it). <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// Registry receives the pallas_incr_* instruments; nil means
	// metrics.Default.
	Registry *metrics.Registry
	// Shared, when non-nil, routes memo reads and writes through the
	// cluster's shared cache tier: the store's own tiers stay the local
	// layer (registered as the tier's "incr" space), with remote replicas
	// behind them. Function-memo keys exclude the unit name, so one edit
	// re-checked on any worker warms the whole fleet.
	Shared SharedTier
}

// Stats is a point-in-time snapshot of memo activity.
type Stats struct {
	// FuncHits / FuncMisses count per-function lookups by outcome.
	FuncHits   int64
	FuncMisses int64
	// FuncInvalidations counts lookups whose fingerprint differed from the
	// previous lookup of the same (unit, function) slot — memo entries
	// invalidated by an edit reaching the function through the DAG.
	FuncInvalidations int64
	// UnitHits / UnitMisses count whole-unit verdict lookups by outcome.
	UnitHits   int64
	UnitMisses int64
	// Pruned counts persistent-tier files removed to hold MaxBytes.
	Pruned int64
}

// Store is the function-level memo store. All methods are safe for
// concurrent use; the underlying tiers are an rcache (byte-bounded memory
// LRU + atomic persistent writes, circuit breaker on disk faults) plus a
// size-triggered prune that bounds the persistent directory.
type Store struct {
	cache    *rcache.Cache
	shared   SharedTier // nil: local tiers only
	dir      string
	maxBytes int64

	funcHits          atomic.Int64
	funcMisses        atomic.Int64
	funcInvalidations atomic.Int64
	unitHits          atomic.Int64
	unitMisses        atomic.Int64
	pruned            atomic.Int64

	mu                sync.Mutex
	lastFP            map[string]string // unit\x00fn → last lookup fingerprint
	writtenSincePrune int64
	pruning           bool

	mFuncHits, mFuncMisses, mFuncInval *metrics.Counter
	mUnitHits, mUnitMisses             *metrics.Counter
	mRatio                             *metrics.Gauge
}

// Open opens (or creates) a memo store.
func Open(o Options) (*Store, error) {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	c, err := rcache.Open(rcache.Options{Dir: o.Dir, MaxBytes: o.MaxBytes})
	if err != nil {
		return nil, err
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.Default
	}
	s := &Store{
		cache:    c,
		shared:   o.Shared,
		dir:      o.Dir,
		maxBytes: o.MaxBytes,
		lastFP:   map[string]string{},

		mFuncHits:   reg.Counter(metrics.MetricIncrFuncHits, "function memo lookups replayed from the store"),
		mFuncMisses: reg.Counter(metrics.MetricIncrFuncMisses, "function memo lookups that required extraction"),
		mFuncInval:  reg.Counter(metrics.MetricIncrFuncInvalidations, "function memo entries invalidated by a fingerprint change"),
		mUnitHits:   reg.Counter(metrics.MetricIncrUnitHits, "whole-unit verdict replays"),
		mUnitMisses: reg.Counter(metrics.MetricIncrUnitMisses, "whole-unit verdict lookups that missed"),
		mRatio:      reg.Gauge(metrics.MetricIncrReuseRatio, "memo reuse ratio x1000 (hits / lookups)"),
	}
	if s.shared != nil {
		s.shared.Register(sharedSpace, c)
	}
	// A pre-existing directory may already exceed the bound (a previous run
	// with a larger budget); trim it before serving.
	s.prune()
	return s, nil
}

// get reads one memo entry: local tiers first, then — when the store rides
// the shared tier — the key's remote replicas.
func (s *Store) get(key string) (*rcache.Entry, bool) {
	if s.shared != nil {
		return s.shared.Get(sharedSpace, key)
	}
	return s.cache.Get(key)
}

// put writes one memo entry locally and, when the store rides the shared
// tier, replicates it to the key's owners. Failures are absorbed either
// way — a memo store must never fail an analysis.
func (s *Store) put(e *rcache.Entry) {
	if s.shared != nil {
		_ = s.shared.Put(sharedSpace, e)
		return
	}
	_ = s.cache.Put(e)
}

// GetFunc returns the memoized extraction stored under key, or nil on a
// miss. unit and fn identify the lookup slot for invalidation accounting;
// fingerprint is re-verified against the record.
func (s *Store) GetFunc(key, unit, fn, fingerprint string) *paths.FuncPaths {
	rec := s.loadFunc(key, fn, fingerprint)
	s.trackFunc(unit, fn, fingerprint, rec != nil)
	if rec == nil {
		return nil
	}
	return rec.Paths
}

func (s *Store) loadFunc(key, fn, fingerprint string) *FuncRecord {
	e, ok := s.get(key)
	if !ok {
		return nil
	}
	var rec FuncRecord
	if json.Unmarshal(e.Report, &rec) != nil {
		return nil
	}
	if rec.Version != RecordVersion || rec.Fn != fn || rec.Fingerprint != fingerprint {
		return nil
	}
	if rec.Paths == nil || rec.Paths.Truncated {
		return nil
	}
	return &rec
}

// PutFunc memoizes one extraction result. Truncated results are refused:
// truncation depends on the run's budget and deadline, so replaying one
// would not be byte-identical to a cold (untruncated) run. Store failures
// are absorbed — a memo store must never fail an analysis — and surface
// only through the rcache disk-fault counters and breaker.
func (s *Store) PutFunc(key, unit, fn, fingerprint string, fp *paths.FuncPaths) {
	if fp == nil || fp.Truncated {
		return
	}
	b, err := json.Marshal(FuncRecord{Version: RecordVersion, Fn: fn, Fingerprint: fingerprint, Paths: fp})
	if err != nil {
		return
	}
	s.put(&rcache.Entry{
		Key:    key,
		Unit:   "incr-func:" + unit + "/" + fn,
		Report: b,
		Sum:    rcache.ContentSum(b, nil),
	})
	s.noteWrite(int64(len(b)))
}

// GetUnit returns the memoized whole-unit verdict stored under key, or nil.
func (s *Store) GetUnit(key, unit, fingerprint string) *UnitRecord {
	rec := s.loadUnit(key, unit, fingerprint)
	if rec != nil {
		s.unitHits.Add(1)
		s.mUnitHits.Inc()
	} else {
		s.unitMisses.Add(1)
		s.mUnitMisses.Inc()
	}
	s.updateRatio()
	return rec
}

func (s *Store) loadUnit(key, unit, fingerprint string) *UnitRecord {
	e, ok := s.get(key)
	if !ok {
		return nil
	}
	var rec UnitRecord
	if json.Unmarshal(e.Report, &rec) != nil {
		return nil
	}
	if rec.Version != RecordVersion || rec.Unit != unit || rec.Fingerprint != fingerprint {
		return nil
	}
	if len(rec.Report) == 0 || len(rec.PathDB) == 0 {
		return nil
	}
	return &rec
}

// PutUnit memoizes a whole-unit verdict. Like PutFunc, failures are absorbed.
func (s *Store) PutUnit(key string, rec *UnitRecord) {
	if rec == nil || len(rec.Report) == 0 || len(rec.PathDB) == 0 {
		return
	}
	rec.Version = RecordVersion
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.put(&rcache.Entry{
		Key:    key,
		Unit:   "incr-unit:" + rec.Unit,
		Report: b,
		Sum:    rcache.ContentSum(b, nil),
	})
	s.noteWrite(int64(len(b)))
}

// Stats returns a snapshot of memo activity since Open.
func (s *Store) Stats() Stats {
	return Stats{
		FuncHits:          s.funcHits.Load(),
		FuncMisses:        s.funcMisses.Load(),
		FuncInvalidations: s.funcInvalidations.Load(),
		UnitHits:          s.unitHits.Load(),
		UnitMisses:        s.unitMisses.Load(),
		Pruned:            s.pruned.Load(),
	}
}

// CacheStats exposes the underlying tier activity (memory LRU, disk,
// breaker) for diagnostics.
func (s *Store) CacheStats() rcache.Stats { return s.cache.Stats() }

// trackFunc records a function lookup outcome and detects invalidations: a
// lookup whose fingerprint differs from the previous lookup of the same
// (unit, function) slot means an edit reached the function through the DAG.
func (s *Store) trackFunc(unit, fn, fingerprint string, hit bool) {
	slot := unit + "\x00" + fn
	s.mu.Lock()
	prev, seen := s.lastFP[slot]
	s.lastFP[slot] = fingerprint
	s.mu.Unlock()
	if seen && prev != fingerprint {
		s.funcInvalidations.Add(1)
		s.mFuncInval.Inc()
	}
	if hit {
		s.funcHits.Add(1)
		s.mFuncHits.Inc()
	} else {
		s.funcMisses.Add(1)
		s.mFuncMisses.Inc()
	}
	s.updateRatio()
}

func (s *Store) updateRatio() {
	hits := s.funcHits.Load() + s.unitHits.Load()
	total := hits + s.funcMisses.Load() + s.unitMisses.Load()
	if total > 0 {
		s.mRatio.Set(hits * 1000 / total)
	}
}

// noteWrite schedules a persistent-tier prune once enough new bytes landed
// since the last one. The trigger is approximate by design: the bound is a
// budget, not a hard limit, and scanning the directory on every put would
// dominate small writes.
func (s *Store) noteWrite(n int64) {
	if s.dir == "" {
		return
	}
	s.mu.Lock()
	s.writtenSincePrune += n
	due := s.writtenSincePrune > s.maxBytes/4 && !s.pruning
	if due {
		s.pruning = true
		s.writtenSincePrune = 0
	}
	s.mu.Unlock()
	if due {
		s.prune()
		s.mu.Lock()
		s.pruning = false
		s.mu.Unlock()
	}
}

// prune bounds the persistent tier: when the directory's entry files exceed
// MaxBytes, the oldest (by modification time) are removed until it fits.
// Removing an entry at any moment is safe — entries are content-addressed
// and written atomically, so a pruned entry is simply a future miss.
func (s *Store) prune() {
	if s.dir == "" {
		return
	}
	type file struct {
		path string
		size int64
		mod  time.Time
	}
	var files []file
	var total int64
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		files = append(files, file{path: path, size: info.Size(), mod: info.ModTime()})
		total += info.Size()
		return nil
	})
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.pruned.Add(1)
		}
	}
}
