// Package incr implements the incremental analysis engine: function-level
// memoization over a dependency DAG. Each function of a translation unit is
// fingerprinted from its canonical post-preprocess rendering (whitespace- and
// comment-insensitive) plus the line positions of its nodes (extracted path
// records and warnings carry absolute line numbers, so a layout-shifting edit
// must conservatively invalidate). A function's transitive fingerprint folds
// in the local fingerprints of every function it can reach through calls, so
// editing a callee invalidates all of its transitive callers. Memoized path
// records and whole-unit verdicts live in a byte-bounded, persistently-tiered
// store built on internal/rcache.
package incr

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"

	"pallas/internal/cast"
)

// Fingerprint and key framing versions. Bumping any of these invalidates
// every persisted memo entry of that kind (old entries become misses, never
// corruption); TestIncrFingerprintFramingPinned pins the composed values.
const (
	frameLocal   = "incr-local-v1"
	frameTrans   = "incr-trans-v1"
	frameAmbient = "incr-ambient-v1"
	frameUnit    = "incr-unit-v1"
	frameFuncKey = "pallas-incr-func-v1"
	frameUnitKey = "pallas-incr-unit-v1"
)

// Hash is the incr content hash: the hex SHA-256 of the parts, each
// length-framed (8-byte little-endian length, then the bytes) so part
// boundaries cannot be confused — the same framing as pallas.ContentHash.
// The format is pinned by TestIncrHashFormatPinned; changing it silently
// invalidates every persisted memo store.
func Hash(parts ...string) string {
	h := sha256.New()
	for _, s := range parts {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LocalFingerprint hashes one function definition: its name, its canonical
// source rendering (cast.DeclString — comments never reach the AST and
// within-line whitespace does not change the rendering), and the line number
// of every node in the function. The line stream makes layout-shifting edits
// invalidate even when the rendering is unchanged, because memoized path
// records embed absolute line numbers and replay must stay byte-identical to
// a cold run.
func LocalFingerprint(fn *cast.FuncDecl) string {
	return Hash(frameLocal, fn.Name, cast.DeclString(fn), lineStream(fn))
}

// lineStream renders the line number of every node under n, in walk order.
func lineStream(n cast.Node) string {
	var sb strings.Builder
	cast.Walk(n, func(c cast.Node) bool {
		sb.WriteString(strconv.Itoa(c.Pos().Line))
		sb.WriteByte(',')
		return true
	})
	return sb.String()
}

// FuncKey is the memo-store key for one function's extraction result. It
// covers the extraction configuration (cfgFP, see Config.extractFingerprint
// in the root package), the unit's ambient fingerprint (globals, enums,
// records, prototypes — everything extraction can consult outside function
// bodies), and the function's transitive fingerprint. The unit name and spec
// are deliberately absent: extraction is spec-independent, so identical code
// in two units shares one memo entry.
func FuncKey(cfgFP, ambient, trans string) string {
	return Hash(frameFuncKey, cfgFP, ambient, trans)
}

// UnitKey is the memo-store key for a whole-unit verdict (report + path
// database). It covers everything that determines a clean run's output
// bytes: the analysis configuration, the unit name (reports echo it), the
// canonical spec text, and the unit fingerprint (ambient state plus every
// defined function's local fingerprint).
func UnitKey(cfgFP, unit, specText, unitFP string) string {
	return Hash(frameUnitKey, cfgFP, unit, specText, unitFP)
}
