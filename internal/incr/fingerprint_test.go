package incr

// Fingerprint semantics: which edits keep memo entries alive and which
// invalidate them. The contract under test — formatting-only edits on the
// same lines are stable; editing a callee invalidates every transitive
// caller through the DAG; layout-shifting edits invalidate (replayed path
// records carry absolute line numbers); golden tests pin the hash framing
// and fingerprint values so accidental format changes are caught as test
// failures, not as silently cold memo stores.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"pallas/internal/cparse"
)

// graphSrc is the fixed golden unit: a three-level call chain plus an
// unrelated sibling and ambient declarations.
const graphSrc = `struct req { int len; };
int limit = 8;
int leaf(int a) { return a + 1; }
int mid(int a) { return leaf(a) + 2; }
int top(int a) { return mid(a) + leaf(a); }
int sib(int a) { return a * 2; }
`

func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	tu, err := cparse.Parse("g.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildGraph(tu)
}

// TestIncrHashFormatPinned pins the Hash framing: hex SHA-256 over 8-byte
// little-endian length-framed parts — the same framing as the root package's
// ContentHash. The manual recomputation proves the framing; the literal pins
// the format across refactors (changing it silently invalidates every
// persisted memo store, so it must be a deliberate, versioned act).
func TestIncrHashFormatPinned(t *testing.T) {
	got := Hash("pallas", "incr")
	h := sha256.New()
	for _, s := range []string{"pallas", "incr"} {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	if want := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Fatalf("Hash framing drifted: got %s, want %s", got, want)
	}
	const pinned = "e5bb32b3c4825c7ac6947e123e5622f53c505acec2ce1f25f15caaa3d3fd9d51"
	if got != pinned {
		t.Fatalf("Hash(\"pallas\", \"incr\") = %s, pinned %s", got, pinned)
	}
	// Framing distinguishes part boundaries: "ab"+"c" != "a"+"bc".
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("length framing lost: part boundaries are ambiguous")
	}
}

// TestIncrFingerprintFramingPinned pins the composed fingerprint values for
// the golden unit. Any change to the frame constants, DeclString rendering,
// walk order, or the line stream shows up here first.
func TestIncrFingerprintFramingPinned(t *testing.T) {
	g := mustGraph(t, graphSrc)
	for _, tc := range []struct {
		name, got, want string
	}{
		{"local(leaf)", g.Local("leaf"), "97f639be4197f8ee597b78aa52722a42c0cea3b56d19602fc6f43390c197fd3a"},
		{"trans(top)", g.Transitive("top"), "65a28b45e6fe491925438c501816396fb314d61a41c79cd4e4df1dbca5519add"},
		{"ambient", g.Ambient(), "2cf43b9921eaba87e85555d42d78b5c2eba2bdd89fb68a2c4ddce0c1f1dd22c8"},
		{"unit", g.UnitFingerprint(), "0ced37b4e4d8ef10070632b32893f087a92865aa7b790c32d030299bcb1b8303"},
	} {
		if tc.got != tc.want {
			t.Errorf("%s = %s, pinned %s", tc.name, tc.got, tc.want)
		}
	}
}

func TestGraphEdges(t *testing.T) {
	g := mustGraph(t, graphSrc)
	if got := g.Funcs(); len(got) != 4 {
		t.Fatalf("Funcs() = %v, want 4 functions", got)
	}
	for fn, want := range map[string][]string{
		"leaf": {},
		"mid":  {"leaf"},
		"top":  {"leaf", "mid"},
		"sib":  {},
	} {
		got := g.Callees(fn)
		if len(got) != len(want) {
			t.Errorf("Callees(%s) = %v, want %v", fn, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Callees(%s) = %v, want %v", fn, got, want)
			}
		}
	}
	if g.Defined("undefined_fn") {
		t.Error("Defined(undefined_fn) = true")
	}
}

// TestFingerprintDeterministic proves the whole fingerprint surface is a
// pure function of the source: two parses of the same text agree everywhere.
func TestFingerprintDeterministic(t *testing.T) {
	a, b := mustGraph(t, graphSrc), mustGraph(t, graphSrc)
	if a.Ambient() != b.Ambient() || a.UnitFingerprint() != b.UnitFingerprint() {
		t.Fatal("unit-level fingerprints differ across identical parses")
	}
	for _, fn := range a.Funcs() {
		if a.Local(fn) != b.Local(fn) || a.Transitive(fn) != b.Transitive(fn) {
			t.Fatalf("fingerprints for %s differ across identical parses", fn)
		}
	}
}

// TestFingerprintFormattingStable: comments never reach the AST and
// within-line whitespace does not change the canonical rendering, so
// same-line formatting edits keep every fingerprint — local, transitive,
// ambient, unit — stable. This is what makes `touch`-style and
// comment-only edits full memo hits.
func TestFingerprintFormattingStable(t *testing.T) {
	base := mustGraph(t, graphSrc)
	formatted := `struct req { int len; };
int limit = 8;
int leaf(int a) { return a + 1; } /* hot */
int mid(int a) {   return   leaf(a) + 2; }  // fast path
int top(int a) { return mid(a) + leaf(a); }
int sib(int a) { return a * 2; }
`
	got := mustGraph(t, formatted)
	if base.UnitFingerprint() != got.UnitFingerprint() {
		t.Error("unit fingerprint changed on a formatting-only edit")
	}
	if base.Ambient() != got.Ambient() {
		t.Error("ambient fingerprint changed on a formatting-only edit")
	}
	for _, fn := range base.Funcs() {
		if base.Local(fn) != got.Local(fn) {
			t.Errorf("local fingerprint of %s changed on a formatting-only edit", fn)
		}
		if base.Transitive(fn) != got.Transitive(fn) {
			t.Errorf("transitive fingerprint of %s changed on a formatting-only edit", fn)
		}
	}
}

// TestFingerprintCalleeEditInvalidatesTransitiveCallers: editing leaf must
// change the transitive fingerprints of leaf, mid (direct caller) and top
// (transitive caller through mid AND direct caller), while sib — which calls
// nothing — keeps both fingerprints. Locals of the callers stay stable: the
// invalidation travels exclusively through the DAG.
func TestFingerprintCalleeEditInvalidatesTransitiveCallers(t *testing.T) {
	base := mustGraph(t, graphSrc)
	edited := mustGraph(t, `struct req { int len; };
int limit = 8;
int leaf(int a) { return a + 7; }
int mid(int a) { return leaf(a) + 2; }
int top(int a) { return mid(a) + leaf(a); }
int sib(int a) { return a * 2; }
`)
	if base.Local("leaf") == edited.Local("leaf") {
		t.Error("leaf local fingerprint survived a body edit")
	}
	for _, fn := range []string{"mid", "top"} {
		if base.Local(fn) != edited.Local(fn) {
			t.Errorf("%s local fingerprint changed without an edit to %s", fn, fn)
		}
		if base.Transitive(fn) == edited.Transitive(fn) {
			t.Errorf("%s transitive fingerprint survived a callee edit", fn)
		}
	}
	if base.Local("sib") != edited.Local("sib") || base.Transitive("sib") != edited.Transitive("sib") {
		t.Error("sib fingerprints changed; it does not call leaf")
	}
	if base.UnitFingerprint() == edited.UnitFingerprint() {
		t.Error("unit fingerprint survived a function edit")
	}
}

// TestFingerprintLineShiftInvalidates: inserting a line between mid and top
// moves top and sib to new lines. Their renderings are unchanged, but
// replayed path records embed absolute line numbers, so their local
// fingerprints must change; leaf and mid, above the insertion, keep theirs.
func TestFingerprintLineShiftInvalidates(t *testing.T) {
	base := mustGraph(t, graphSrc)
	shifted := mustGraph(t, `struct req { int len; };
int limit = 8;
int leaf(int a) { return a + 1; }
int mid(int a) { return leaf(a) + 2; }

int top(int a) { return mid(a) + leaf(a); }
int sib(int a) { return a * 2; }
`)
	for _, fn := range []string{"leaf", "mid"} {
		if base.Local(fn) != shifted.Local(fn) {
			t.Errorf("%s local fingerprint changed; it did not move", fn)
		}
	}
	for _, fn := range []string{"top", "sib"} {
		if base.Local(fn) == shifted.Local(fn) {
			t.Errorf("%s local fingerprint survived a line shift; replayed records would carry stale line numbers", fn)
		}
	}
}

// TestFingerprintAmbientEditInvalidatesKeys: a new global changes the
// ambient fingerprint (and so every FuncKey and the unit fingerprint) while
// function locals are untouched.
func TestFingerprintAmbientEditInvalidatesKeys(t *testing.T) {
	base := mustGraph(t, graphSrc)
	edited := mustGraph(t, "int extra_global;\n"+graphSrc)
	if base.Ambient() == edited.Ambient() {
		t.Error("ambient fingerprint survived a new global")
	}
	if base.UnitFingerprint() == edited.UnitFingerprint() {
		t.Error("unit fingerprint survived a new global")
	}
	if FuncKey("cfg", base.Ambient(), base.Transitive("sib")) ==
		FuncKey("cfg", edited.Ambient(), edited.Transitive("sib")) {
		t.Error("FuncKey survived an ambient change")
	}
}

// TestKeySeparation: keys must differ across configs, units and specs.
func TestKeySeparation(t *testing.T) {
	g := mustGraph(t, graphSrc)
	tr, am := g.Transitive("top"), g.Ambient()
	if FuncKey("cfgA", am, tr) == FuncKey("cfgB", am, tr) {
		t.Error("FuncKey ignores the extraction config")
	}
	ufp := g.UnitFingerprint()
	if UnitKey("cfg", "a.c", "spec", ufp) == UnitKey("cfg", "b.c", "spec", ufp) {
		t.Error("UnitKey ignores the unit name")
	}
	if UnitKey("cfg", "a.c", "spec1", ufp) == UnitKey("cfg", "a.c", "spec2", ufp) {
		t.Error("UnitKey ignores the spec text")
	}
}
