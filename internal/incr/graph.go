package incr

import (
	"sort"
	"strconv"

	"pallas/internal/cast"
)

// Graph is the per-unit dependency DAG the memo engine fingerprints over:
// one node per defined function, one edge per direct call to another defined
// function. Fingerprints are memoized per instance. A Graph is built once
// per analysis on a single goroutine and is not safe for concurrent use.
type Graph struct {
	tu      *cast.TranslationUnit
	local   map[string]string   // function → local fingerprint
	callees map[string][]string // function → sorted defined callees
	trans   map[string]string   // function → transitive fingerprint (lazy)
	ambient string              // lazy
	unitFP  string              // lazy
}

// BuildGraph fingerprints every defined function of tu and records its call
// edges. Only calls through a plain identifier to a function defined in the
// unit become edges: those are the calls extraction summarizes, and an
// undefined callee has no body to fingerprint (when it later gains one, the
// new edge changes the caller's transitive fingerprint by itself).
func BuildGraph(tu *cast.TranslationUnit) *Graph {
	g := &Graph{
		tu:      tu,
		local:   map[string]string{},
		callees: map[string][]string{},
		trans:   map[string]string{},
	}
	for _, d := range tu.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g.local[fd.Name] = LocalFingerprint(fd)
		g.callees[fd.Name] = calleeNames(tu, fd)
	}
	return g
}

// calleeNames collects the distinct defined functions fd calls directly.
func calleeNames(tu *cast.TranslationUnit, fd *cast.FuncDecl) []string {
	set := map[string]bool{}
	cast.Walk(fd.Body, func(n cast.Node) bool {
		call, ok := n.(*cast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*cast.IdentExpr); ok && id.Name != fd.Name && tu.Func(id.Name) != nil {
			set[id.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Defined reports whether fn is a defined function of the unit.
func (g *Graph) Defined(fn string) bool { _, ok := g.local[fn]; return ok }

// Funcs lists the defined functions, sorted.
func (g *Graph) Funcs() []string {
	out := make([]string, 0, len(g.local))
	for n := range g.local {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Local returns fn's local fingerprint ("" when fn is not defined).
func (g *Graph) Local(fn string) string { return g.local[fn] }

// Callees returns fn's direct defined callees, sorted.
func (g *Graph) Callees(fn string) []string { return g.callees[fn] }

// Transitive returns fn's transitive fingerprint: a hash of its own local
// fingerprint plus the sorted (name, local fingerprint) pairs of every
// function reachable from it through call edges. The reachable-set closure
// handles recursion and mutual cycles uniformly, and guarantees that editing
// any transitive callee changes every transitive caller's fingerprint.
func (g *Graph) Transitive(fn string) string {
	if v, ok := g.trans[fn]; ok {
		return v
	}
	seen := map[string]bool{}
	stack := []string{fn}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.callees[n]...)
	}
	delete(seen, fn)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, 3+2*len(names))
	parts = append(parts, frameTrans, fn, g.local[fn])
	for _, n := range names {
		parts = append(parts, n, g.local[n])
	}
	v := Hash(parts...)
	g.trans[fn] = v
	return v
}

// Ambient fingerprints everything extraction and checking can consult
// outside function bodies: every non-definition top-level declaration
// (globals, enums, records, typedefs, prototypes) in declaration order, each
// with its line number (checkers may report lines of ambient declarations).
func (g *Graph) Ambient() string {
	if g.ambient != "" {
		return g.ambient
	}
	parts := []string{frameAmbient}
	for _, d := range g.tu.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			continue
		}
		parts = append(parts, cast.DeclString(d), strconv.Itoa(d.Pos().Line))
	}
	g.ambient = Hash(parts...)
	return g.ambient
}

// UnitFingerprint hashes the whole unit's semantic state: the ambient
// fingerprint plus every defined function's (name, local fingerprint) pair
// in sorted order. Checkers read the translation unit beyond the analyzed
// functions (callee bodies, return constants of slow paths), so whole-unit
// verdict replay must be keyed on all of it, not just the analyzed set.
func (g *Graph) UnitFingerprint() string {
	if g.unitFP != "" {
		return g.unitFP
	}
	names := g.Funcs()
	parts := make([]string, 0, 2+2*len(names))
	parts = append(parts, frameUnit, g.Ambient())
	for _, n := range names {
		parts = append(parts, n, g.local[n])
	}
	g.unitFP = Hash(parts...)
	return g.unitFP
}
