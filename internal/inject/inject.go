// Package inject implements the completeness experiment of §5.2 / Table 8:
// it synthesizes known fast-path bugs into clean code and measures how many
// Pallas re-detects. Twelve bug kinds cover the twelve Table-1 findings; one
// synthesized "unexpected output" bug is deliberately undetectable because
// the wrong value only exists at run time — reproducing the single miss the
// paper reports (61/62).
package inject

import (
	"fmt"

	"pallas/internal/corpus"
	"pallas/internal/report"
)

// Injection is one synthesized known bug.
type Injection struct {
	// ID identifies the injection ("overwrite/0", "unexpected/5-miss").
	ID string
	// Cause is the Table-8 row label.
	Cause string
	// Finding is the expected warning key.
	Finding string
	// Source is the buggy translation unit.
	Source string
	// Spec is the annotation set.
	Spec string
	// Detectable is false for the one semantic-exception case: the buggy
	// return value is inside the defined set, so no static rule can flag it
	// without runtime data.
	Detectable bool
}

// Table8Row aggregates the experiment per bug cause.
type Table8Row struct {
	Source   string // aspect ("Path State", ...)
	Cause    string
	Total    int
	Expected int // expected detections (Total, minus designed misses)
}

// Plan returns the Table-8 injection counts in paper order.
func Plan() []Table8Row {
	return []Table8Row{
		{"Path State", "Overwriting immutable variables", 4, 4},
		{"Path State", "Correlated variables", 6, 6},
		{"Path State", "Uninitialized immutable variables", 2, 2},
		{"Trigger Condition", "Missing condition checking", 8, 8},
		{"Trigger Condition", "Incomplete implementation", 8, 8},
		{"Trigger Condition", "Incorrect order of checking", 2, 2},
		{"Path Output", "Unexpected output", 6, 5},
		{"Path Output", "Mismatching output", 8, 8},
		{"Path Output", "Missing output checking", 2, 2},
		{"Fault Handling", "Missing fault handler", 8, 8},
		{"Assistant Data Structure", "Suboptimal organization", 6, 6},
		{"Assistant Data Structure", "Stale value", 2, 2},
	}
}

// causeFinding maps a Table-8 cause to its finding key.
func causeFinding(cause string) string {
	switch cause {
	case "Overwriting immutable variables":
		return report.FindStateOverwrite
	case "Correlated variables":
		return report.FindStateCorrelated
	case "Uninitialized immutable variables":
		return report.FindStateUninit
	case "Missing condition checking":
		return report.FindCondMissing
	case "Incomplete implementation":
		return report.FindCondIncomplete
	case "Incorrect order of checking":
		return report.FindCondOrder
	case "Unexpected output":
		return report.FindOutUnexpected
	case "Mismatching output":
		return report.FindOutMismatch
	case "Missing output checking":
		return report.FindOutUnchecked
	case "Missing fault handler":
		return report.FindFaultMissing
	case "Suboptimal organization":
		return report.FindDSLayout
	case "Stale value":
		return report.FindDSStale
	}
	panic("inject: unknown cause " + cause)
}

// Generate synthesizes the 62 known bugs of the completeness experiment into
// clean corpus code. The injections are deterministic.
func Generate() []*Injection {
	var out []*Injection
	systems := corpus.Systems()
	seq := 1000 // distinct namespace from the Table-1 corpus
	for _, row := range Plan() {
		finding := causeFinding(row.Cause)
		misses := row.Total - row.Expected
		for i := 0; i < row.Total; i++ {
			sys := systems[i%len(systems)]
			inj := synthesize(finding, row.Cause, sys, seq, i, misses > 0 && i == row.Total-1)
			out = append(out, inj)
			seq++
		}
	}
	return out
}

// synthesize builds one injected bug. For detectable injections the corpus
// bug template is the injection (bug seeded into the template's clean shape);
// the designed miss gets a bespoke runtime-only bug.
func synthesize(finding, cause string, sys corpus.System, seq, idx int, designedMiss bool) *Injection {
	if designedMiss {
		return missCase(cause, seq, idx)
	}
	tmpl := corpus.Templates[finding]
	n := corpus.NamesFor(sys, seq)
	src, sp := tmpl.Buggy(n)
	return &Injection{
		ID:         fmt.Sprintf("%s/%d", finding, idx),
		Cause:      cause,
		Finding:    finding,
		Source:     src,
		Spec:       sp,
		Detectable: true,
	}
}

// missCase is the paper's one undetectable synthesized bug: the fast path
// returns a page state that is *defined* (inside the allowed return set) but
// semantically wrong — it should be PG_DIRTY, not PG_CLEAN. Deciding that
// requires the runtime value of the page, which static analysis lacks.
func missCase(cause string, seq, idx int) *Injection {
	fn := fmt.Sprintf("fs_page_state_%d", seq)
	src := fmt.Sprintf(`
enum page_state { PG_CLEAN = 0, PG_DIRTY = 1 };
struct page { int len; int written; };
static int %[1]s(struct page *page)
{
	if (page->written) {
		/* BUG (undetectable statically): the write is incomplete, so the
		 * state must be PG_DIRTY; PG_CLEAN is still a defined value, so
		 * rule 3.1 cannot distinguish them without runtime data. */
		return PG_CLEAN;
	}
	return PG_CLEAN;
}
`, fn)
	sp := fmt.Sprintf("fastpath %[1]s\nreturns %[1]s {PG_CLEAN, PG_DIRTY}\n", fn)
	return &Injection{
		ID:         fmt.Sprintf("%s/%d-miss", causeFinding(cause), idx),
		Cause:      cause,
		Finding:    causeFinding(cause),
		Source:     src,
		Spec:       sp,
		Detectable: false,
	}
}
