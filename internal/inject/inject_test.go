package inject

import (
	"testing"

	"pallas/internal/checkers"
	"pallas/internal/cparse"
	"pallas/internal/paths"
	"pallas/internal/spec"
)

func detect(t *testing.T, inj *Injection) bool {
	t.Helper()
	tu, err := cparse.Parse(inj.ID+".c", inj.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", inj.ID, err)
	}
	sp, err := spec.Parse(inj.Spec)
	if err != nil {
		t.Fatalf("%s: spec: %v", inj.ID, err)
	}
	ctx, err := checkers.NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: context: %v", inj.ID, err)
	}
	r := checkers.Run(ctx)
	for _, w := range r.Warnings {
		if w.Finding == inj.Finding {
			return true
		}
	}
	return false
}

// TestCompletenessMatchesTable8 runs the full completeness experiment: 62
// synthesized known bugs, 61 detected, the one semantic-exception case
// missed.
func TestCompletenessMatchesTable8(t *testing.T) {
	injs := Generate()
	if len(injs) != 62 {
		t.Fatalf("want 62 injections, got %d", len(injs))
	}
	detected := 0
	var missed []*Injection
	for _, inj := range injs {
		if detect(t, inj) {
			detected++
			if !inj.Detectable {
				t.Errorf("%s: designed miss was unexpectedly detected", inj.ID)
			}
		} else {
			missed = append(missed, inj)
			if inj.Detectable {
				t.Errorf("%s: detectable injection was missed", inj.ID)
			}
		}
	}
	if detected != 61 {
		t.Errorf("detected %d/62, want 61/62", detected)
	}
	if len(missed) != 1 || missed[0].Detectable {
		t.Errorf("missed = %+v, want exactly the designed miss", missed)
	}
}

// TestPlanTotals cross-checks the plan against the published row totals.
func TestPlanTotals(t *testing.T) {
	total, expected := 0, 0
	for _, row := range Plan() {
		if row.Expected > row.Total {
			t.Errorf("row %q: expected %d > total %d", row.Cause, row.Expected, row.Total)
		}
		total += row.Total
		expected += row.Expected
	}
	if total != 62 {
		t.Errorf("total = %d, want 62", total)
	}
	if expected != 61 {
		t.Errorf("expected detections = %d, want 61", expected)
	}
}

// TestPerRowDetection verifies each Table-8 row individually (D/T).
func TestPerRowDetection(t *testing.T) {
	injs := Generate()
	byCause := map[string][]*Injection{}
	for _, inj := range injs {
		byCause[inj.Cause] = append(byCause[inj.Cause], inj)
	}
	for _, row := range Plan() {
		got := byCause[row.Cause]
		if len(got) != row.Total {
			t.Errorf("row %q: %d injections, want %d", row.Cause, len(got), row.Total)
			continue
		}
		d := 0
		for _, inj := range got {
			if detect(t, inj) {
				d++
			}
		}
		if d != row.Expected {
			t.Errorf("row %q: detected %d/%d, want %d", row.Cause, d, row.Total, row.Expected)
		}
	}
}
