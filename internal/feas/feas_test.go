package feas

import (
	"math"
	"testing"

	"pallas/internal/guard"
	"pallas/internal/sym"
)

func cmpv(op string, l, r *sym.Value) *sym.Value {
	// Build without sym.NewExpr folding so tests control the exact shape.
	return &sym.Value{Kind: sym.Expr, Op: op, Args: []*sym.Value{l, r}}
}

func x() *sym.Value        { return sym.NewSym("x") }
func y() *sym.Value        { return sym.NewSym("y") }
func k(n int64) *sym.Value { return sym.NewInt(n) }

func TestParseTier(t *testing.T) {
	cases := []struct {
		in   string
		want Tier
		err  bool
	}{
		{"", Fast, false},
		{"fast", Fast, false},
		{"balanced", Balanced, false},
		{"strict", Strict, false},
		{"turbo", Fast, true},
		{"FAST", Fast, true},
	}
	for _, c := range cases {
		got, err := ParseTier(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, tier := range []Tier{Fast, Balanced, Strict} {
		back, err := ParseTier(tier.String())
		if err != nil || back != tier {
			t.Errorf("round trip %v: got %v, %v", tier, back, err)
		}
	}
}

func TestFastTierIsNil(t *testing.T) {
	s := New(Fast, nil)
	if s != nil {
		t.Fatalf("New(Fast) = %v, want nil", s)
	}
	// Every method must be a safe no-op on nil.
	s.Assert(cmpv(">", x(), k(3)), true)
	if s.Contradiction() || s.Clone() != nil || s.Contradictions() != 0 {
		t.Fatal("nil state must stay inert")
	}
}

func TestIntervalContradictions(t *testing.T) {
	cases := []struct {
		name   string
		assert func(s *State)
		want   bool
	}{
		{"gt3-lt2", func(s *State) {
			s.Assert(cmpv(">", x(), k(3)), true)
			s.Assert(cmpv("<", x(), k(2)), true)
		}, true},
		{"gt3-lt5", func(s *State) {
			s.Assert(cmpv(">", x(), k(3)), true)
			s.Assert(cmpv("<", x(), k(5)), true)
		}, false},
		{"ge-le-cross", func(s *State) {
			s.Assert(cmpv(">=", x(), k(10)), true)
			s.Assert(cmpv("<=", x(), k(9)), true)
		}, true},
		{"eq-then-neq", func(s *State) {
			s.Assert(cmpv("==", x(), k(7)), true)
			s.Assert(cmpv("!=", x(), k(7)), true)
		}, true},
		{"neq-then-eq", func(s *State) {
			s.Assert(cmpv("!=", x(), k(7)), true)
			s.Assert(cmpv("==", x(), k(7)), true)
		}, true},
		{"eq-outside-interval", func(s *State) {
			s.Assert(cmpv(">", x(), k(0)), true)
			s.Assert(cmpv("==", x(), k(-4)), true)
		}, true},
		{"point-interval-then-excluded", func(s *State) {
			s.Assert(cmpv(">=", x(), k(5)), true)
			s.Assert(cmpv("!=", x(), k(5)), true)
			s.Assert(cmpv("<=", x(), k(5)), true)
		}, true},
		{"false-edge-negates", func(s *State) {
			// !(x <= 2) and then x == 1.
			s.Assert(cmpv("<=", x(), k(2)), false)
			s.Assert(cmpv("==", x(), k(1)), true)
		}, true},
		{"distinct-terms-independent", func(s *State) {
			s.Assert(cmpv(">", x(), k(3)), true)
			s.Assert(cmpv("<", y(), k(2)), true)
		}, false},
		{"min-int-lt", func(s *State) {
			s.Assert(cmpv("<", x(), k(math.MinInt64)), true)
		}, true},
		{"max-int-gt", func(s *State) {
			s.Assert(cmpv(">", x(), k(math.MaxInt64)), true)
		}, true},
	}
	for _, tier := range []Tier{Balanced, Strict} {
		for _, c := range cases {
			s := New(tier, nil)
			c.assert(s)
			if s.Contradiction() != c.want {
				t.Errorf("%v/%s: contradiction = %v, want %v", tier, c.name, s.Contradiction(), c.want)
			}
		}
	}
}

func TestConstantOnLeftMirrors(t *testing.T) {
	// `3 < x` then `2 > x` is the mirrored form of the gt3-lt2 case.
	s := New(Balanced, nil)
	s.Assert(cmpv("<", k(3), x()), true)
	s.Assert(cmpv(">", k(2), x()), true)
	if !s.Contradiction() {
		t.Fatal("mirrored constant-on-left comparisons must contradict")
	}
	s = New(Balanced, nil)
	s.Assert(cmpv("==", k(7), x()), true)
	s.Assert(cmpv("!=", k(7), x()), true)
	if !s.Contradiction() {
		t.Fatal("constant-on-left equality must behave like constant-on-right")
	}
}

func TestBooleanDistribution(t *testing.T) {
	and := func(l, r *sym.Value) *sym.Value { return cmpv("&&", l, r) }
	or := func(l, r *sym.Value) *sym.Value { return cmpv("||", l, r) }
	not := func(v *sym.Value) *sym.Value {
		return &sym.Value{Kind: sym.Expr, Op: "!", Args: []*sym.Value{v}}
	}

	// (x > 3 && y > 0) taken, then x < 2.
	s := New(Balanced, nil)
	s.Assert(and(cmpv(">", x(), k(3)), cmpv(">", y(), k(0))), true)
	s.Assert(cmpv("<", x(), k(2)), true)
	if !s.Contradiction() {
		t.Fatal("&& must distribute on the true edge")
	}

	// (x > 3 || y > 0) not taken refutes both, then y == 1.
	s = New(Balanced, nil)
	s.Assert(or(cmpv(">", x(), k(3)), cmpv(">", y(), k(0))), false)
	s.Assert(cmpv("==", y(), k(1)), true)
	if !s.Contradiction() {
		t.Fatal("|| must distribute on the false edge")
	}

	// !(a && b) false edge means a && b holds.
	s = New(Balanced, nil)
	s.Assert(not(and(cmpv(">", x(), k(3)), cmpv(">", y(), k(0)))), false)
	s.Assert(cmpv("<=", x(), k(3)), true)
	if !s.Contradiction() {
		t.Fatal("!(a && b) false must imply both conjuncts")
	}

	// The false edge of a conjunction learns nothing about either operand.
	s = New(Balanced, nil)
	s.Assert(and(cmpv(">", x(), k(3)), cmpv(">", y(), k(0))), false)
	s.Assert(cmpv("==", x(), k(10)), true)
	if s.Contradiction() {
		t.Fatal("a refuted conjunction must not constrain its operands")
	}
}

func TestTruthiness(t *testing.T) {
	// Taken truthiness excludes zero.
	s := New(Balanced, nil)
	s.Assert(x(), true)
	s.Assert(cmpv("==", x(), k(0)), true)
	if !s.Contradiction() {
		t.Fatal("if (x) taken then x == 0 must contradict")
	}
	// Refuted truthiness pins zero.
	s = New(Balanced, nil)
	s.Assert(x(), false)
	s.Assert(cmpv("==", x(), k(3)), true)
	if !s.Contradiction() {
		t.Fatal("if (x) not taken then x == 3 must contradict")
	}
	// Concrete conditions decide immediately.
	s = New(Balanced, nil)
	s.Assert(k(0), true)
	if !s.Contradiction() {
		t.Fatal("asserting a concrete zero as taken must contradict")
	}
}

func TestUnstableTermsAreNeverConstrained(t *testing.T) {
	call := &sym.Value{Kind: sym.Expr, Op: "f", Args: nil} // E#f(): call result
	temp := sym.NewTemp(1)
	deref := &sym.Value{Kind: sym.Expr, Op: "*", Args: []*sym.Value{sym.NewSym("p")}}
	for _, v := range []*sym.Value{call, temp, deref} {
		s := New(Strict, nil)
		s.Assert(cmpv(">", v, k(3)), true)
		s.Assert(cmpv("<", v, k(2)), true)
		if s.Contradiction() {
			t.Errorf("unstable term %s must not accumulate constraints", v)
		}
	}
	// A pure compound over stable leaves is constrained.
	sum := &sym.Value{Kind: sym.Expr, Op: "+", Args: []*sym.Value{x(), k(1)}}
	s := New(Balanced, nil)
	s.Assert(cmpv(">", sum, k(3)), true)
	s.Assert(cmpv("<", sum, k(2)), true)
	if !s.Contradiction() {
		t.Error("pure compound terms should be constrained")
	}
}

func TestStrictEqualityUnification(t *testing.T) {
	// a == b, a > 5, b < 3: only Strict sees the cross-term conflict.
	build := func(tier Tier) *State {
		s := New(tier, nil)
		s.Assert(cmpv("==", x(), y()), true)
		s.Assert(cmpv(">", x(), k(5)), true)
		s.Assert(cmpv("<", y(), k(3)), true)
		return s
	}
	if build(Balanced).Contradiction() {
		t.Fatal("balanced must not unify cross-term equalities")
	}
	if !build(Strict).Contradiction() {
		t.Fatal("strict must propagate constraints across a == b")
	}

	// a == b then a != b.
	s := New(Strict, nil)
	s.Assert(cmpv("==", x(), y()), true)
	s.Assert(cmpv("!=", x(), y()), true)
	if !s.Contradiction() {
		t.Fatal("a == b then a != b must contradict under strict")
	}

	// x < x is self-refuting under strict.
	s = New(Strict, nil)
	s.Assert(cmpv("<", x(), x()), true)
	if !s.Contradiction() {
		t.Fatal("x < x must contradict under strict")
	}

	// Unification is order-independent: constraints first, equality second.
	s = New(Strict, nil)
	s.Assert(cmpv(">", x(), k(5)), true)
	s.Assert(cmpv("<", y(), k(3)), true)
	s.Assert(cmpv("==", x(), y()), true)
	if !s.Contradiction() {
		t.Fatal("late unification must still intersect accumulated intervals")
	}
}

func TestCloneIsolation(t *testing.T) {
	root := New(Balanced, nil)
	root.Assert(cmpv(">", x(), k(3)), true)
	a := root.Clone()
	b := root.Clone()
	a.Assert(cmpv("<", x(), k(2)), true)
	if !a.Contradiction() {
		t.Fatal("clone a should contradict")
	}
	if b.Contradiction() || root.Contradiction() {
		t.Fatal("contradiction in one clone must not leak to siblings")
	}
	b.Assert(cmpv("<", x(), k(10)), true)
	if b.Contradiction() {
		t.Fatal("clone b is feasible")
	}
	// The contradiction tally is shared across the family.
	if root.Contradictions() != 1 {
		t.Fatalf("family tally = %d, want 1", root.Contradictions())
	}
}

func TestStrictBudgetFreezesLearning(t *testing.T) {
	// A 2-step budget exhausts after two assertions; later contradictory
	// facts are silently ignored — less pruning, never a wrong prune.
	budget := guard.NewBudget(nil, guard.Limits{MaxSteps: 2})
	s := New(Strict, budget)
	s.Assert(cmpv(">", x(), k(3)), true)
	s.Assert(cmpv(">", y(), k(0)), true)
	s.Assert(cmpv("<", x(), k(2)), true) // would contradict, but frozen
	s.Assert(cmpv("<", x(), k(2)), true)
	if s.Contradiction() {
		t.Fatal("a frozen state must stop learning instead of contradicting")
	}
}
