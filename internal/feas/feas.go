// Package feas is a lightweight path-feasibility layer over the symbolic
// domain of internal/sym. It accumulates, per execution path, an interval
// domain (lo/hi over int64 with ±∞ open ends) and a disequality set for
// every stable term a branch condition constrains, and reports when the
// accumulated conditions become mutually contradictory — at which point the
// path extractor can discard the continuation before any checker sees it.
//
// The layer mirrors the paper's observation (§5.3) that infeasible paths
// dominate the false-positive taxonomy: conditions like `x > 3` followed by
// `x < 2` on the same path can never execute together, so warnings found on
// such paths are noise.
//
// Three precision tiers share the implementation:
//
//	Fast      — the layer is disabled entirely (callers hold a nil *State);
//	            analysis behaves byte-identically to a build without it.
//	Balanced  — interval and disequality propagation against integer
//	            constants, plus &&/||/! distribution.
//	Strict    — adds cross-condition equality unification (term classes
//	            merged by `a == b` facts) under a per-function step budget
//	            from internal/guard; when the budget is exhausted the state
//	            freezes and simply stops learning, which prunes less but is
//	            never unsound.
//
// Soundness rests on term stability: facts are only recorded for terms
// built from concrete integers, free symbols and pure operators (see
// sym.Value.Stable). Temporaries and call results render identically across
// occurrences that may hold different values, so they are never constrained.
package feas

import (
	"fmt"
	"math"

	"pallas/internal/guard"
	"pallas/internal/sym"
)

// Tier selects how much feasibility work the extractor performs.
type Tier int

// The precision tiers, cheapest first.
const (
	// Fast disables the feasibility layer: today's behavior, byte-identical.
	Fast Tier = iota
	// Balanced prunes on interval/disequality contradictions vs constants.
	Balanced
	// Strict adds cross-condition equality unification under a step budget.
	Strict
)

// String renders the tier as its flag spelling.
func (t Tier) String() string {
	switch t {
	case Fast:
		return "fast"
	case Balanced:
		return "balanced"
	case Strict:
		return "strict"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// ParseTier parses a -precision flag value. The empty string means Fast, so
// zero-valued configurations keep the historical behavior.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "fast":
		return Fast, nil
	case "balanced":
		return Balanced, nil
	case "strict":
		return Strict, nil
	}
	return Fast, fmt.Errorf("feas: unknown precision tier %q (want fast, balanced or strict)", s)
}

// DefaultStrictSteps is the per-function step budget of the strict tier:
// one step per condition node the layer inspects. Exhaustion freezes the
// state (no further learning) rather than failing the function, so the
// bound only ever reduces pruning. The value is a constant, not wall-clock,
// so strict-tier output is deterministic at any worker count.
const DefaultStrictSteps = 1 << 14

// Interval is a closed integer interval with independently-open ends.
// The zero value is (-∞, +∞).
type Interval struct {
	Lo, Hi       int64
	HasLo, HasHi bool
}

// Empty reports whether no integer satisfies the interval.
func (iv Interval) Empty() bool { return iv.HasLo && iv.HasHi && iv.Lo > iv.Hi }

// Contains reports whether n satisfies the interval.
func (iv Interval) Contains(n int64) bool {
	if iv.HasLo && n < iv.Lo {
		return false
	}
	if iv.HasHi && n > iv.Hi {
		return false
	}
	return true
}

// String renders the interval with ∞ for open ends.
func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.HasLo {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.HasHi {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + ", " + hi + "]"
}

func intersect(a, b Interval) Interval {
	out := a
	if b.HasLo && (!out.HasLo || b.Lo > out.Lo) {
		out.Lo, out.HasLo = b.Lo, true
	}
	if b.HasHi && (!out.HasHi || b.Hi < out.Hi) {
		out.Hi, out.HasHi = b.Hi, true
	}
	return out
}

// State is the feasibility state of one path prefix. It is not safe for
// concurrent use; the extractor clones it per branch edge, exactly like the
// symbolic environment. A nil *State is the Fast tier: every method is a
// no-op and Contradiction reports false.
type State struct {
	tier Tier
	// iv and ne are keyed by class representative (the term rendering
	// itself outside Strict, where find is the identity).
	iv map[string]Interval
	ne map[string]map[int64]bool
	// eq holds the Strict tier's union-find parent pointers over term
	// renderings; absent keys are their own class.
	eq map[string]string
	// budget bounds Strict-tier work; shared across clones deliberately, so
	// the whole function's feasibility work — not each path's — is bounded.
	budget *guard.Budget
	// contraN counts contradiction events, shared across clones of one
	// function's root state.
	contraN *int64
	contra  bool
	frozen  bool
}

// New returns the root feasibility state for one function walk, or nil for
// the Fast tier. For Strict, budget bounds the total feasibility work of
// the function; nil applies DefaultStrictSteps.
func New(tier Tier, budget *guard.Budget) *State {
	if tier == Fast {
		return nil
	}
	s := &State{
		tier:    tier,
		iv:      map[string]Interval{},
		ne:      map[string]map[int64]bool{},
		contraN: new(int64),
	}
	if tier == Strict {
		s.eq = map[string]string{}
		if budget == nil {
			budget = guard.NewBudget(nil, guard.Limits{MaxSteps: DefaultStrictSteps})
		}
		s.budget = budget
	}
	return s
}

// Clone returns an independently-mutable copy sharing the function-level
// budget and contradiction tally.
func (s *State) Clone() *State {
	if s == nil {
		return nil
	}
	c := &State{tier: s.tier, budget: s.budget, contraN: s.contraN, contra: s.contra, frozen: s.frozen}
	c.iv = make(map[string]Interval, len(s.iv))
	for k, v := range s.iv {
		c.iv[k] = v
	}
	c.ne = make(map[string]map[int64]bool, len(s.ne))
	for k, set := range s.ne {
		cp := make(map[int64]bool, len(set))
		for n := range set {
			cp[n] = true
		}
		c.ne[k] = cp
	}
	if s.eq != nil {
		c.eq = make(map[string]string, len(s.eq))
		for k, v := range s.eq {
			c.eq[k] = v
		}
	}
	return c
}

// Contradiction reports whether the accumulated conditions are mutually
// unsatisfiable — the path prefix can never execute.
func (s *State) Contradiction() bool { return s != nil && s.contra }

// Contradictions returns the number of contradiction events recorded across
// this state and every clone sharing its root.
func (s *State) Contradictions() int64 {
	if s == nil || s.contraN == nil {
		return 0
	}
	return *s.contraN
}

func (s *State) contradict() {
	if !s.contra {
		s.contra = true
		if s.contraN != nil {
			*s.contraN++
		}
	}
}

// step charges one unit of strict-tier work; it reports true when the state
// just froze (budget exhausted). Balanced states carry no budget and never
// freeze.
func (s *State) step() bool {
	if s.budget == nil {
		return false
	}
	if s.budget.Step() != nil {
		s.frozen = true
		return true
	}
	return false
}

// Assert records that condition v evaluated to truth on this path and
// propagates: negation flips, conjunctions distribute on the true edge,
// disjunctions on the false edge, comparisons against integer constants
// narrow the term's interval or disequality set, and (Strict only)
// equalities between two stable terms unify their constraint classes.
// A contradiction with previously recorded facts sets Contradiction.
func (s *State) Assert(v *sym.Value, truth bool) {
	if s == nil || s.contra || s.frozen {
		return
	}
	if s.step() {
		return
	}
	if v == nil {
		return
	}
	switch v.Kind {
	case sym.Int:
		if (v.N != 0) != truth {
			s.contradict()
		}
	case sym.Sym:
		s.assertTruthy(v, truth)
	case sym.Expr:
		switch {
		case v.Op == "!" && len(v.Args) == 1:
			s.Assert(v.Args[0], !truth)
		case v.Op == "&&" && len(v.Args) == 2:
			// A false conjunction is a disjunction of refutations; nothing
			// sound can be learned about either operand alone.
			if truth {
				s.Assert(v.Args[0], true)
				s.Assert(v.Args[1], true)
			}
		case v.Op == "||" && len(v.Args) == 2:
			if !truth {
				s.Assert(v.Args[0], false)
				s.Assert(v.Args[1], false)
			}
		case isCmp(v.Op) && len(v.Args) == 2:
			op := v.Op
			if !truth {
				op = negate(op)
			}
			s.assertCmp(op, v.Args[0], v.Args[1])
		default:
			s.assertTruthy(v, truth)
		}
	}
	// Temp and Str carry no constrainable integer value.
}

// assertTruthy records `term != 0` (taken) or `term == 0` (not taken).
func (s *State) assertTruthy(v *sym.Value, truth bool) {
	if !v.Stable() {
		return
	}
	op := "=="
	if truth {
		op = "!="
	}
	s.assertConst(v.String(), op, 0)
}

// assertCmp handles a binary comparison with the already-negated operator.
func (s *State) assertCmp(op string, l, r *sym.Value) {
	ln, lConst := l.ConcreteInt()
	rn, rConst := r.ConcreteInt()
	switch {
	case lConst && rConst:
		// Normally folded away by sym.NewExpr; decide directly if reached.
		if !cmpInts(op, ln, rn) {
			s.contradict()
		}
	case rConst:
		if l.Stable() {
			s.assertConst(l.String(), op, rn)
		}
	case lConst:
		if r.Stable() {
			s.assertConst(r.String(), mirror(op), ln)
		}
	default:
		if s.tier != Strict || !l.Stable() || !r.Stable() {
			return
		}
		lk, rk := l.String(), r.String()
		switch op {
		case "==":
			s.unify(lk, rk)
		case "!=", "<", ">":
			// Strict comparisons and disequality refute themselves over one
			// class: x < x (or a != b with a == b recorded) cannot hold.
			if s.find(lk) == s.find(rk) {
				s.contradict()
			}
		}
	}
}

// assertConst narrows the constraints of one stable term against an
// integer constant: `term op K`.
func (s *State) assertConst(term, op string, k int64) {
	rep := s.find(term)
	iv := s.iv[rep]
	switch op {
	case "==":
		if s.ne[rep][k] {
			s.contradict()
			return
		}
		iv = intersect(iv, Interval{Lo: k, Hi: k, HasLo: true, HasHi: true})
	case "!=":
		if iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && iv.Lo == k {
			s.contradict()
			return
		}
		if s.ne[rep] == nil {
			s.ne[rep] = map[int64]bool{}
		}
		s.ne[rep][k] = true
		return
	case "<":
		if k == math.MinInt64 {
			s.contradict()
			return
		}
		iv = intersect(iv, Interval{Hi: k - 1, HasHi: true})
	case "<=":
		iv = intersect(iv, Interval{Hi: k, HasHi: true})
	case ">":
		if k == math.MaxInt64 {
			s.contradict()
			return
		}
		iv = intersect(iv, Interval{Lo: k + 1, HasLo: true})
	case ">=":
		iv = intersect(iv, Interval{Lo: k, HasLo: true})
	default:
		return
	}
	if iv.Empty() {
		s.contradict()
		return
	}
	if iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && s.ne[rep][iv.Lo] {
		s.contradict()
		return
	}
	s.iv[rep] = iv
}

// find returns the constraint-class representative of a term. Outside the
// Strict tier every term is its own class.
func (s *State) find(term string) string {
	if s.eq == nil {
		return term
	}
	root := term
	for {
		p, ok := s.eq[root]
		if !ok {
			break
		}
		root = p
	}
	// Path compression keeps repeated lookups cheap; it never changes which
	// representative is found, so determinism is unaffected.
	for term != root {
		next, ok := s.eq[term]
		if !ok {
			break
		}
		s.eq[term] = root
		term = next
	}
	return root
}

// unify merges the constraint classes of two terms (Strict tier): their
// intervals intersect and their disequality sets union. The
// lexicographically smaller representative wins, keeping merges
// deterministic regardless of assertion order.
func (s *State) unify(a, b string) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	s.eq[rb] = ra
	iv := intersect(s.iv[ra], s.iv[rb])
	delete(s.iv, rb)
	if neb := s.ne[rb]; neb != nil {
		if s.ne[ra] == nil {
			s.ne[ra] = map[int64]bool{}
		}
		for n := range neb {
			s.ne[ra][n] = true
		}
		delete(s.ne, rb)
	}
	if iv.Empty() {
		s.contradict()
		return
	}
	if iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && s.ne[ra][iv.Lo] {
		s.contradict()
		return
	}
	s.iv[ra] = iv
}

func isCmp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// negate returns the comparison holding when `l op r` is false.
func negate(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// mirror returns the comparison with swapped operands: `K op x` ⇔
// `x mirror(op) K`.
func mirror(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // == and != are symmetric
}

func cmpInts(op string, l, r int64) bool {
	switch op {
	case "==":
		return l == r
	case "!=":
		return l != r
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	}
	return true
}
