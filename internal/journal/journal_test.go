package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
)

func rec(unit, hash string, status Status, attempt int) Record {
	return Record{Unit: unit, Hash: hash, Status: status, Attempt: attempt, Warnings: 1,
		Report: json.RawMessage(`{"target":"` + unit + `","warnings":[]}`)}
}

// writeRecords opens a fresh journal at path and appends recs.
func writeRecords(t *testing.T, path string, recs ...Record) {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	want := Record{
		Unit: "a.c", Hash: "h1", Status: StatusDegraded, Attempt: 2,
		Degraded: true, Warnings: 3,
		Report:      json.RawMessage(`{"target":"a.c","warnings":[],"degraded":true}`),
		Diagnostics: []guard.Diagnostic{guard.Diag(guard.StageParse, "a.c", errors.New("bad token"), true)},
	}
	writeRecords(t, path, want)

	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Recovery().TornTail || j.Recovery().Quarantined != 0 || j.Recovery().Records != 1 {
		t.Fatalf("recovery report on a clean journal: %+v", j.Recovery())
	}
	got, ok := j.Lookup("a.c")
	if !ok {
		t.Fatal("record lost")
	}
	if got.Unit != want.Unit || got.Hash != want.Hash || got.Status != want.Status ||
		got.Attempt != want.Attempt || !got.Degraded || got.Warnings != 3 {
		t.Fatalf("record drifted: %+v", got)
	}
	if string(got.Report) != string(want.Report) {
		t.Fatalf("report drifted: %s", got.Report)
	}
	if len(got.Diagnostics) != 1 || got.Diagnostics[0].Stage != guard.StageParse {
		t.Fatalf("diagnostics drifted: %+v", got.Diagnostics)
	}
}

func TestEmptyJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatalf("empty journal rejected: %v", err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Fatalf("records from empty file: %d", j.Len())
	}
	if err := j.Append(rec("a.c", "h", StatusOK, 1)); err != nil {
		t.Fatalf("append after empty open: %v", err)
	}
}

func TestMissingJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "j.jsonl")
	if _, err := Open(path); err == nil {
		t.Fatal("unreachable path accepted") // parent dir missing
	}
	path = filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatalf("fresh journal: %v", err)
	}
	j.Close()
}

func TestTornFinalRecordTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, rec("a.c", "h1", StatusOK, 1), rec("b.c", "h2", StatusOK, 1))
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a third record torn halfway, no newline.
	torn, err := encode(rec("c.c", "h3", StatusOK, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte{}, intact...), torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := Open(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer j.Close()
	if !j.Recovery().TornTail {
		t.Fatal("torn tail not reported")
	}
	if j.Len() != 2 {
		t.Fatalf("want 2 recovered records, got %d", j.Len())
	}
	if _, ok := j.Lookup("c.c"); ok {
		t.Fatal("torn record resurrected")
	}
	// The tail must be physically gone so the next append starts clean.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(intact) {
		t.Fatalf("file not truncated to the intact prefix:\n%q\nvs\n%q", b, intact)
	}
	if err := j.Append(rec("c.c", "h3", StatusOK, 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, err := readPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after re-append want 3 records, got %d", len(recs))
	}
}

func TestCorruptTailWithNewlineTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, rec("a.c", "h1", StatusOK, 1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"unit\":\"x\"}\n"); err != nil { // bad CRC
		t.Fatal(err)
	}
	f.Close()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Recovery().TornTail || j.Len() != 1 {
		t.Fatalf("recovery: %+v len %d", j.Recovery(), j.Len())
	}
}

func TestInteriorCorruptionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, rec("a.c", "h1", StatusOK, 1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage line that is not a record\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	writeOneMore(t, path, rec("b.c", "h2", StatusOK, 1))

	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Recovery().Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", j.Recovery().Quarantined, j.Recovery())
	}
	if j.Len() != 2 {
		t.Fatalf("valid records lost: %d", j.Len())
	}
	q, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if !strings.Contains(string(q), "garbage line") {
		t.Fatalf("quarantine content: %q", q)
	}
	// The rewritten journal must be fully valid: re-open reports no damage.
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if r := j2.Recovery(); r.TornTail || r.Quarantined != 0 || r.Records != 2 {
		t.Fatalf("journal not healed by rewrite: %+v", r)
	}
}

// writeOneMore appends one record via a throwaway Journal (bypassing recovery
// side effects is not possible — so it re-opens, which must tolerate the
// state left by the test).
func writeOneMore(t *testing.T, path string, r Record) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	line, err := encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestDuplicateEntriesLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path,
		rec("a.c", "h1", StatusRetry, 1),
		rec("b.c", "hb", StatusOK, 1),
		rec("a.c", "h1", StatusOK, 2),
	)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got, ok := j.Lookup("a.c")
	if !ok || got.Status != StatusOK || got.Attempt != 2 {
		t.Fatalf("last-wins violated: %+v (ok=%v)", got, ok)
	}
	if j.Len() != 3 {
		t.Fatalf("duplicates collapsed on disk: %d", j.Len())
	}
	snap := j.Snapshot()
	if len(snap) != 2 || snap["a.c"].Attempt != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestStatusTerminal(t *testing.T) {
	for s, want := range map[Status]bool{
		StatusOK: true, StatusDegraded: true, StatusFailed: true,
		StatusQuarantined: true, StatusRetry: false, StatusAssigned: false,
		Status(""): false,
	} {
		if s.Terminal() != want {
			t.Errorf("Terminal(%q) = %v, want %v", s, !want, want)
		}
	}
}

// TestAssignedRecordRoundTrip pins the cluster fields: an assignment record
// is non-terminal and survives reopen with its worker; a later completion
// with report + paths wins and is terminal.
func TestAssignedRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Unit: "a.c", Hash: "h1", Status: StatusAssigned,
		Attempt: 1, Worker: "127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Unit: "a.c", Hash: "h1", Status: StatusOK, Attempt: 1,
		Worker: "127.0.0.1:9001", Report: []byte(`{"w":1}`), Paths: []byte(`{"p":2}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec, ok := j2.Lookup("a.c")
	if !ok || !rec.Status.Terminal() || rec.Worker != "127.0.0.1:9001" {
		t.Fatalf("latest record: %+v, ok=%v", rec, ok)
	}
	if string(rec.Report) != `{"w":1}` || string(rec.Paths) != `{"p":2}` {
		t.Fatalf("report/paths not preserved: %q %q", rec.Report, rec.Paths)
	}
	recs := j2.Records()
	if len(recs) != 2 || recs[0].Status != StatusAssigned || recs[0].Status.Terminal() {
		t.Fatalf("records: %+v", recs)
	}
}

func TestMidSaveFailpointTearsRecord(t *testing.T) {
	t.Cleanup(failpoint.Disarm)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, rec("a.c", "h1", StatusOK, 1))

	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("mid-save=error/b.c"); err != nil {
		t.Fatal(err)
	}
	err = j.Append(rec("b.c", "h2", StatusOK, 1))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("mid-save failpoint not triggered: %v", err)
	}
	j.Close()
	failpoint.Disarm()

	// The aborted append left half a record on disk; recovery must drop it.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Recovery().TornTail {
		t.Fatal("torn tail from mid-save abort not detected")
	}
	if _, ok := j2.Lookup("b.c"); ok {
		t.Fatal("torn record visible after recovery")
	}
	if _, ok := j2.Lookup("a.c"); !ok {
		t.Fatal("intact record lost during recovery")
	}
}

func TestReadAllSkipsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeRecords(t, path, rec("a.c", "h1", StatusOK, 1), rec("b.c", "h2", StatusFailed, 3))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not a record\n")
	f.Close()
	recs, err := readPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Unit != "b.c" || recs[1].Attempt != 3 {
		t.Fatalf("ReadAll: %+v", recs)
	}
}

func readPath(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// --- group commit ---

// TestGroupCommitConcurrentAppendsDurable drives many concurrent appenders
// through a group-committed journal and verifies nothing acknowledged is
// lost: after Close and reopen, every record is recovered intact.
func TestGroupCommitConcurrentAppendsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.jsonl")
	j, err := OpenOptions(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			errs <- j.Append(rec(fmt.Sprintf("u%02d.c", i), "h", StatusOK, 1))
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != n {
		t.Fatalf("in-memory records = %d, want %d", j.Len(), n)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().Records != n || re.Recovery().TornTail || re.Recovery().Quarantined != 0 {
		t.Fatalf("recovery after group-commit run: %+v", re.Recovery())
	}
}

// TestGroupCommitFlushInterval exercises the accumulate-then-sync path.
func TestGroupCommitFlushInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.jsonl")
	j, err := OpenOptions(path, Options{GroupCommit: true, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(fmt.Sprintf("u%d.c", i), "h", StatusOK, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().Records != 5 {
		t.Fatalf("records = %d, want 5", re.Recovery().Records)
	}
}

// TestGroupCommitTornTailRecovery is the crash test for the group-commit
// path: a mid-save failpoint error abandons a half-written record (exactly
// what a crash between write and group fsync leaves behind), and reopening
// — with group commit on again — must truncate the torn tail while keeping
// every durable record.
func TestGroupCommitTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.jsonl")
	j, err := OpenOptions(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("a.c", "h", StatusOK, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("b.c", "h", StatusOK, 1)); err != nil {
		t.Fatal(err)
	}
	// Tear the third record mid-write.
	if err := failpoint.Arm("mid-save=error/c.c"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	if err := j.Append(rec("c.c", "h", StatusOK, 1)); err == nil {
		t.Fatal("torn append reported success")
	}
	failpoint.Disarm()
	j.Close()

	re, err := OpenOptions(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovery().TornTail {
		t.Fatalf("torn tail not detected: %+v", re.Recovery())
	}
	if re.Recovery().Records != 2 || re.Recovery().Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 2 intact records", re.Recovery())
	}
	if _, ok := re.Lookup("c.c"); ok {
		t.Fatal("torn record resurrected")
	}
	// The recovered journal still appends and commits.
	if err := re.Append(rec("d.c", "h", StatusOK, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Lookup("d.c"); !ok {
		t.Fatal("append after recovery lost")
	}
}

// TestAppendAfterCloseFails pins the closed-journal contract for both
// commit policies.
func TestAppendAfterCloseFails(t *testing.T) {
	for name, opts := range map[string]Options{
		"default":      {},
		"group-commit": {GroupCommit: true},
	} {
		path := filepath.Join(t.TempDir(), name+".jsonl")
		j, err := OpenOptions(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec("a.c", "h", StatusOK, 1)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec("b.c", "h", StatusOK, 1)); err == nil {
			t.Fatalf("%s: append after close succeeded", name)
		}
	}
}
