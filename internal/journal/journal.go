// Package journal is the checkpoint log that makes corpus-scale analysis
// resumable. The paper treats path extraction as "a one-time cost" persisted
// for reuse; that only holds across crashes and kills if per-unit outcomes
// are durable. A Journal is an append-only JSONL file with one CRC-framed
// record per completed unit attempt: re-opening it after a crash recovers
// every intact record, truncates a torn tail (the half-written record of the
// unit that was in flight when the process died), and quarantines corrupted
// interior lines instead of refusing the whole file.
//
// On-disk format, one record per line:
//
//	crc32c-hex8 SP json-payload LF
//
// The CRC is the Castagnoli CRC-32 of the payload bytes. A line that is
// missing its newline, whose CRC does not match, or whose payload does not
// decode is invalid. Recovery rules:
//
//   - invalid final line → torn tail: truncated away, journal stays usable;
//   - invalid interior line → corruption: the line is appended to
//     <path>.quarantine and the journal is atomically rewritten with only
//     the valid records;
//   - duplicate records for one unit → last wins.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
)

// Status is the outcome class of one unit attempt. The terminal statuses —
// everything but StatusRetry — end a unit's journey through the batch; a
// resumed run skips units whose latest record is terminal and whose content
// hash still matches.
type Status string

const (
	// StatusOK marks a clean, complete analysis.
	StatusOK Status = "ok"
	// StatusDegraded marks a completed but partial analysis (budget hit,
	// tolerated malformed input); the stored report is still authoritative.
	StatusDegraded Status = "degraded"
	// StatusFailed marks a deterministic failure (malformed input without
	// KeepGoing); retrying without changing the input would fail again.
	StatusFailed Status = "failed"
	// StatusQuarantined marks a unit whose transient failures (panics,
	// injected faults, budget blowouts) persisted through every retry; the
	// batch completed without it and resume will not re-run it.
	StatusQuarantined Status = "quarantined"
	// StatusRetry marks a non-terminal failed attempt that will be retried;
	// recorded so a crash between attempts preserves the attempt count.
	StatusRetry Status = "retry"
	// StatusAssigned marks a unit handed to a cluster worker whose outcome
	// is not yet known. Non-terminal: a coordinator that crashes between
	// assignment and completion re-dispatches the unit on resume, which is
	// exactly the at-least-once side of the cluster's exactly-once story
	// (duplicate completions are suppressed by content hash on record).
	StatusAssigned Status = "assigned"
)

// Terminal reports whether s ends a unit's processing.
func (s Status) Terminal() bool {
	return s != StatusRetry && s != StatusAssigned && s != ""
}

// Record is one journal entry: the durable outcome of one attempt at one
// unit.
type Record struct {
	// Unit is the unit name (file name in CLI runs).
	Unit string `json:"unit"`
	// Hash is the content hash of the unit (source + spec); resume only
	// honours a record whose hash still matches the unit's current content.
	Hash string `json:"hash"`
	// Status classifies the outcome.
	Status Status `json:"status"`
	// Attempt is the 1-based attempt number that produced this record.
	Attempt int `json:"attempt"`
	// Err is the failure rendered as text, for failed/quarantined/retry.
	Err string `json:"error,omitempty"`
	// Degraded mirrors Report.Degraded for quick scanning.
	Degraded bool `json:"degraded,omitempty"`
	// Warnings counts the warnings in Report.
	Warnings int `json:"warnings"`
	// Report is the full report JSON of a terminal ok/degraded outcome, so a
	// resumed run can replay the unit's report without re-analysis.
	Report json.RawMessage `json:"report,omitempty"`
	// Paths is the unit's marshaled path database, recorded by cluster runs
	// so a resumed coordinator replays pathdb bytes as well as report bytes.
	Paths json.RawMessage `json:"paths,omitempty"`
	// Diagnostics preserves the unit's degradation record for replay.
	Diagnostics []guard.Diagnostic `json:"diagnostics,omitempty"`
	// Worker names the cluster worker the record concerns: the assignee of
	// a StatusAssigned record, the completer of a terminal one. Empty in
	// single-process runs.
	Worker string `json:"worker,omitempty"`
	// Epoch is the fenced lease epoch of a cluster assignment or completion:
	// the coordinator stamps each dispatch with a monotonically increasing
	// epoch and rejects completions bearing one it no longer recognizes, so
	// an evicted-then-revived worker's late result can never displace the
	// re-dispatched one. Zero in single-process runs and pre-fencing
	// journals.
	Epoch int64 `json:"epoch,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encode frames a record as a CRC-prefixed line (without the newline).
func encode(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s: %w", rec.Unit, err)
	}
	line := make([]byte, 0, 9+len(payload))
	line = append(line, fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable))...)
	line = append(line, ' ')
	line = append(line, payload...)
	return line, nil
}

// decode parses one framed line into a record; ok is false for any framing,
// CRC, or JSON violation.
func decode(line []byte) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Unit == "" {
		return Record{}, false
	}
	return rec, true
}

// Options configures how a Journal commits records.
type Options struct {
	// GroupCommit batches fsyncs across concurrent appends instead of
	// syncing once per record. Append still returns only after its record
	// is durable — the guarantee is unchanged — but while one fsync is in
	// flight, further appends write and wait, and the next fsync covers
	// them all. Under a concurrent batch or server load this collapses N
	// fsyncs into a few; a serial appender pays at most one extra fsync of
	// latency. Default off: one fsync per record, exactly as before.
	GroupCommit bool
	// FlushInterval, with GroupCommit, delays each fsync by this much to
	// accumulate a larger group (bounding every append's added latency by
	// the interval). Zero syncs as soon as the previous fsync completes,
	// which already coalesces whatever arrived in the meantime.
	FlushInterval time.Duration
}

// Journal is an open checkpoint log. Append is safe for concurrent use by
// the batch worker pool.
type Journal struct {
	path string
	opts Options

	mu      sync.Mutex
	f       *os.File
	entries []Record
	byUnit  map[string]int // unit → index of latest record in entries

	// Group-commit state (GroupCommit only). writeSeq counts records
	// written to the file; syncSeq counts records covered by a completed
	// fsync. Appenders wait on cond until syncSeq reaches their record.
	cond        *sync.Cond
	writeSeq    int64
	syncSeq     int64
	syncErr     error
	closed      bool
	flusherDone chan struct{}

	recovered RecoveryReport
}

// RecoveryReport describes what Open had to repair.
type RecoveryReport struct {
	// Records is the number of valid records recovered.
	Records int
	// TornTail is true when an incomplete final record was truncated away —
	// the signature of a crash mid-append.
	TornTail bool
	// Quarantined counts corrupted interior lines moved to <path>.quarantine.
	Quarantined int
}

// Open opens (creating if needed) the journal at path, recovering any
// existing records per the package rules, and leaves the file positioned for
// appends. Commit policy is the default (one fsync per record); use
// OpenOptions for group commit.
func Open(path string) (*Journal, error) {
	return OpenOptions(path, Options{})
}

// OpenOptions is Open with an explicit commit policy.
func OpenOptions(path string, opts Options) (*Journal, error) {
	j := &Journal{path: path, opts: opts, byUnit: map[string]int{}}
	if err := j.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	if opts.GroupCommit {
		j.cond = sync.NewCond(&j.mu)
		j.flusherDone = make(chan struct{})
		go j.flusher()
	}
	return j, nil
}

// flusher is the group-commit sync loop: whenever records are written but
// not yet durable, it (optionally waits FlushInterval to accumulate a
// group, then) fsyncs once and wakes every appender the sync covered.
func (j *Journal) flusher() {
	defer close(j.flusherDone)
	j.mu.Lock()
	for {
		for !j.closed && j.writeSeq == j.syncSeq {
			j.cond.Wait()
		}
		if j.writeSeq == j.syncSeq {
			// Closed and fully drained.
			j.mu.Unlock()
			return
		}
		f := j.f
		if f == nil {
			// Closed underneath pending writes: their durability can no
			// longer be promised, so poison the waiters instead of lying.
			j.syncSeq = j.writeSeq
			if j.syncErr == nil {
				j.syncErr = errClosed
			}
			j.cond.Broadcast()
			continue
		}
		j.mu.Unlock()
		if j.opts.FlushInterval > 0 {
			time.Sleep(j.opts.FlushInterval)
		}
		j.mu.Lock()
		target := j.writeSeq
		j.mu.Unlock()
		err := f.Sync()
		j.mu.Lock()
		j.syncSeq = target
		if err != nil && j.syncErr == nil {
			j.syncErr = err
		}
		j.cond.Broadcast()
	}
}

// recover scans the file, classifying each line, then repairs the file:
// torn tails are truncated in place; interior corruption forces an atomic
// rewrite with the bad lines quarantined.
func (j *Journal) recover() error {
	b, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: recover %s: %w", j.path, err)
	}
	var valid [][]byte // raw valid lines, for rewrite
	var bad [][]byte   // corrupted interior lines, for quarantine
	tornTail := false
	off := 0
	for off < len(b) {
		nl := -1
		for i := off; i < len(b); i++ {
			if b[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// No newline: a record torn by a crash mid-write.
			tornTail = true
			break
		}
		line := b[off:nl]
		if rec, ok := decode(line); ok {
			j.append(rec)
			valid = append(valid, line)
		} else if nl == len(b)-1 {
			// Invalid but final: still a torn tail (e.g. killed after the
			// newline of a partially flushed buffer), truncate.
			tornTail = true
		} else {
			bad = append(bad, line)
		}
		off = nl + 1
	}
	j.recovered = RecoveryReport{Records: len(j.entries), TornTail: tornTail, Quarantined: len(bad)}
	if len(bad) > 0 {
		if err := j.quarantine(bad); err != nil {
			return err
		}
		return j.rewrite(valid)
	}
	if tornTail {
		// Drop the torn bytes; everything before them is intact.
		keep := 0
		for _, line := range valid {
			keep += len(line) + 1
		}
		if err := os.Truncate(j.path, int64(keep)); err != nil {
			return fmt.Errorf("journal: truncate torn tail of %s: %w", j.path, err)
		}
	}
	return nil
}

// quarantine appends the corrupted lines to <path>.quarantine so no byte of
// a damaged journal is silently discarded.
func (j *Journal) quarantine(bad [][]byte) error {
	qf, err := os.OpenFile(j.path+".quarantine", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: quarantine: %w", err)
	}
	for _, line := range bad {
		if _, err := qf.Write(append(line, '\n')); err != nil {
			qf.Close()
			return fmt.Errorf("journal: quarantine: %w", err)
		}
	}
	return qf.Close()
}

// rewrite atomically replaces the journal with only the valid lines.
func (j *Journal) rewrite(valid [][]byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, line := range valid {
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: rewrite: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	return nil
}

// append records rec in memory with last-wins semantics.
func (j *Journal) append(rec Record) {
	j.entries = append(j.entries, rec)
	j.byUnit[rec.Unit] = len(j.entries) - 1
}

// Recovery returns what Open repaired.
func (j *Journal) Recovery() RecoveryReport { return j.recovered }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// errClosed reports an append against a closed journal.
var errClosed = errors.New("journal: closed")

// Append durably appends one record: CRC-framed write plus fsync, so a
// record returned from Append survives an immediate SIGKILL. With
// Options.GroupCommit the fsync may be shared with concurrent appends, but
// the guarantee is the same — Append does not return success before the
// record is on stable storage. The PreSave and MidSave failpoints hook the
// write; an armed MidSave splits it so a kill tears the record exactly as a
// real mid-write crash would.
func (j *Journal) Append(rec Record) error {
	if err := failpoint.Hit(failpoint.PreSave, rec.Unit); err != nil {
		return err
	}
	line, err := encode(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errClosed
	}
	if failpoint.Active(failpoint.MidSave, rec.Unit) {
		// Torn-write injection: flush half the record, then trigger (kill,
		// error, ...). Recovery must throw this partial line away.
		half := len(line) / 2
		if _, err := j.f.Write(line[:half]); err != nil {
			return fmt.Errorf("journal: append: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: append: %w", err)
		}
		if err := failpoint.Hit(failpoint.MidSave, rec.Unit); err != nil {
			return err
		}
		line = line[half:]
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.GroupCommit {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: append: %w", err)
		}
		j.append(rec)
		return nil
	}
	// Group commit: wait until a flusher fsync covers this record. The
	// record is written; the flusher owns making it durable.
	j.writeSeq++
	seq := j.writeSeq
	j.cond.Broadcast()
	for j.syncSeq < seq && j.syncErr == nil && j.f != nil {
		j.cond.Wait()
	}
	if j.syncErr != nil {
		return fmt.Errorf("journal: append: %w", j.syncErr)
	}
	if j.f == nil && j.syncSeq < seq {
		return errClosed
	}
	j.append(rec)
	return nil
}

// Flush forces any group-committed records written so far onto stable
// storage. A no-op without GroupCommit (every record is already synced).
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || !j.opts.GroupCommit {
		return nil
	}
	target := j.writeSeq
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if target > j.syncSeq {
		j.syncSeq = target
		j.cond.Broadcast()
	}
	return nil
}

// Lookup returns the latest record for unit (last-wins over duplicates).
func (j *Journal) Lookup(unit string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.byUnit[unit]
	if !ok {
		return Record{}, false
	}
	return j.entries[i], true
}

// Snapshot returns the latest record per unit.
func (j *Journal) Snapshot() map[string]Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]Record, len(j.byUnit))
	for unit, i := range j.byUnit {
		out[unit] = j.entries[i]
	}
	return out
}

// Records returns every record in append order, duplicates included; tests
// and tooling use it to audit attempt counts.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.entries))
	copy(out, j.entries)
	return out
}

// Len returns the number of records, duplicates included.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Close closes the underlying file. With GroupCommit it first drains the
// flusher, so every Append that returned success is durable before Close
// returns.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return nil
	}
	if j.opts.GroupCommit {
		j.closed = true
		j.cond.Broadcast()
		j.mu.Unlock()
		<-j.flusherDone
		j.mu.Lock()
		if j.f == nil {
			j.mu.Unlock()
			return nil
		}
	}
	err := j.f.Close()
	j.f = nil
	if j.cond != nil {
		j.cond.Broadcast()
	}
	j.mu.Unlock()
	return err
}

// ReadAll reads a journal's records without opening it for append (and
// without repairing the file): invalid lines are skipped. Tooling that only
// inspects a journal uses this.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if rec, ok := decode(sc.Bytes()); ok {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("journal: read: %w", err)
	}
	return out, nil
}
