package checkers

import (
	"fmt"

	"pallas/internal/paths"
	"pallas/internal/report"
)

// FaultHandlingChecker enforces rule 4.1: every specified fault state must
// appear in a flow-control statement of the fast path (as evidence that the
// fault is handled), and, when a handler function is named, the handler must
// be invoked somewhere in the fast path.
type FaultHandlingChecker struct{}

// Name implements Checker.
func (FaultHandlingChecker) Name() string { return "fault-handling" }

// Check implements Checker.
func (FaultHandlingChecker) Check(ctx *Context) []report.Warning {
	var out []report.Warning
	for _, fp := range ctx.fastPathFuncs() {
		for _, f := range ctx.Spec.Faults {
			if f.AppliesTo(fp.Fn) {
				out = append(out, checkFault(ctx, fp, f.State, f.Handler)...)
			}
		}
	}
	return out
}

func checkFault(ctx *Context, fp *paths.FuncPaths, state, handler string) []report.Warning {
	fn := ctx.funcDecl(fp.Fn)
	if fn == nil {
		return nil
	}
	tested := false
	for _, p := range fp.Paths {
		if p.TestsVar(state) {
			tested = true
			break
		}
		// Error-code constants appear inside condition expressions rather
		// than the variable lists; accept a textual mention in any condition.
		for _, c := range p.Conds {
			if containsWord(c.Expr, state) {
				tested = true
				break
			}
		}
		if tested {
			break
		}
	}
	var out []report.Warning
	if !tested {
		out = append(out, report.Warning{
			Rule: "4.1", Finding: report.FindFaultMissing,
			Func: fp.Fn, File: ctx.File, Line: fn.P.Line, Subject: state,
			PathIndex: -1,
			Message: fmt.Sprintf("fault state %q is never checked in %s: the fault handler is missing",
				state, fp.Fn),
		})
	}
	if handler != "" {
		called := false
		for _, p := range fp.Paths {
			if _, ok := p.CallNamed(handler); ok {
				called = true
				break
			}
		}
		if !called {
			out = append(out, report.Warning{
				Rule: "4.1", Finding: report.FindFaultMissing,
				Func: fp.Fn, File: ctx.File, Line: fn.P.Line, Subject: handler,
				PathIndex: -1,
				Message: fmt.Sprintf("fault handler %s() for state %q is never invoked in %s",
					handler, state, fp.Fn),
			})
		}
	}
	return out
}
