// Package checkers implements the five Pallas checkers: path state, trigger
// condition, path output, fault handling, and assistant data structure. Each
// checker filters extracted execution paths against the rules of Section 3
// and reports violations as warnings.
package checkers

import (
	"fmt"
	"strings"
	"sync"

	"pallas/internal/cast"
	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
	"pallas/internal/study"
)

// Context carries everything a checker needs for one analysis target.
type Context struct {
	// TU is the merged, parsed translation unit.
	TU *cast.TranslationUnit
	// Spec is the user-provided semantic information.
	Spec *spec.Spec
	// Extractor provides path extraction (shared CFG/summary caches).
	Extractor *paths.Extractor
	// FuncPaths maps function name → extracted paths for every analyzed
	// function (fast paths first).
	FuncPaths map[string]*paths.FuncPaths
	// File is the reported file name.
	File string
	// Budget, when non-nil, bounds the work Run performs; checkers are skipped
	// once it is exhausted and the report is marked degraded.
	Budget *guard.Budget
	// Workers bounds intra-unit parallelism for Run (mirroring the
	// extraction fan-out of paths.Config.Workers): how many checkers execute
	// concurrently over this context. <= 1 runs them serially. The merged
	// report is byte-identical either way.
	Workers int
	// Diagnostics accumulates non-fatal problems (unknown spec functions,
	// truncated extractions, crashed checkers) encountered while building and
	// running the context.
	Diagnostics []guard.Diagnostic
}

// Checker is one of the five Pallas tools.
type Checker interface {
	// Name identifies the checker ("path-state", ...).
	Name() string
	// Check analyzes ctx and returns warnings.
	Check(ctx *Context) []report.Warning
}

// All returns the five checkers in paper order.
func All() []Checker {
	return []Checker{
		PathStateChecker{},
		TriggerConditionChecker{},
		PathOutputChecker{},
		FaultHandlingChecker{},
		DataStructChecker{},
	}
}

// ByName returns the named checker, or nil.
func ByName(name string) Checker {
	for _, c := range All() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// NewContext extracts paths for every function the spec names and returns a
// ready-to-check context. With cfg.Workers > 1 the per-function extractions
// fan out across a bounded worker pool; the context (and the first error,
// when any function fails) is identical to a serial run. A panic during
// extraction surfaces as a *guard.PanicError-wrapped error rather than
// crashing the caller, in serial and parallel runs alike.
func NewContext(tu *cast.TranslationUnit, sp *spec.Spec, cfg paths.Config) (*Context, error) {
	ctx, errs, _ := extractContext(tu, sp, cfg)
	// Report the first failure in spec order — the same one a serial run
	// stops at — no matter which worker finished first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ctx, nil
}

// NewContextTolerant is NewContext for degraded pipelines: spec functions the
// (possibly partially parsed) unit lacks, extraction failures, and extraction
// panics become Diagnostics instead of hard errors, and the surviving
// functions are still checked. The only returned error is an exhausted budget.
// Fault isolation is per function: with cfg.Workers > 1 a crashing
// extraction degrades only its own function's slot.
func NewContextTolerant(tu *cast.TranslationUnit, sp *spec.Spec, cfg paths.Config) (*Context, error) {
	ctx, errs, fns := extractContext(tu, sp, cfg)
	// Diagnostics are appended in spec order (slot order), not completion
	// order, so degraded reports are stable run-to-run.
	for i, err := range errs {
		if err != nil {
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageExtract, fns[i], err, true))
		}
	}
	return ctx, ctx.Budget.Err()
}

// extractContext builds a context by extracting every spec-named function,
// serially or fanned out over cfg.Workers goroutines. Results and errors are
// positional (errs[i] belongs to fns[i]); the FuncPaths map and the content
// of every entry depend only on the unit and the spec, never on scheduling.
// Functions missing from the unit produce a per-slot error; the strict
// caller turns the first one into a hard failure, the tolerant caller turns
// each into a diagnostic.
func extractContext(tu *cast.TranslationUnit, sp *spec.Spec, cfg paths.Config) (*Context, []error, []string) {
	ex := paths.NewExtractor(tu, cfg)
	ctx := &Context{TU: tu, Spec: sp, Extractor: ex, FuncPaths: map[string]*paths.FuncPaths{},
		File: tu.File, Budget: cfg.Budget, Workers: cfg.Workers}
	fns := sp.AnalyzedFuncs()
	results := make([]*paths.FuncPaths, len(fns))
	errs := guard.PoolNamed(guard.StageExtract, len(fns), cfg.Workers,
		func(i int) string { return fns[i] },
		func(i int) error {
			fn := fns[i]
			// A unit whose budget is already spent stops scheduling work; the
			// functions extracted before exhaustion keep their slots (which
			// ones those are is inherently timing-dependent, exactly as in a
			// serial run hitting the deadline mid-loop).
			if err := cfg.Budget.Err(); err != nil {
				return nil
			}
			if tu.Func(fn) == nil {
				return fmt.Errorf("checkers: spec names unknown function %q", fn)
			}
			if fp := cfg.Seed[fn]; fp != nil {
				// Memoized replay (paths.Config.Seed): the incremental engine
				// established by fingerprint that extraction would reproduce
				// exactly these paths, so the walk — and its failpoint, which
				// counts real extractions — is skipped.
				results[i] = fp
				return nil
			}
			if err := failpoint.Hit(failpoint.ExtractFunc, fn); err != nil {
				return err
			}
			fp, err := ex.Extract(fn)
			if err != nil {
				return err
			}
			results[i] = fp
			return nil
		})
	for i, fp := range results {
		if fp != nil {
			ctx.FuncPaths[fns[i]] = fp
		}
	}
	return ctx, errs, fns
}

// Run executes the given checkers (all five when list is empty) and returns a
// sorted report. Each warning is annotated with the historically most likely
// failure class for its aspect (from the characterization study).
//
// With ctx.Workers > 1 the checkers run concurrently over the shared
// (read-only) context; each checker's findings land in its own slot and are
// merged in checker-list order before the final stable sort, so the report —
// warnings, their order, and the serialized bytes — is identical to a serial
// run. A crashed checker loses only its own findings; a checker that starts
// after the budget is exhausted is skipped and recorded, exactly as in the
// serial pipeline.
func Run(ctx *Context, list ...Checker) *report.Report {
	if len(list) == 0 {
		list = All()
	}
	r := &report.Report{Target: ctx.File}
	results := make([][]report.Warning, len(list))
	errs := guard.PoolNamed(guard.StageCheck, len(list), ctx.Workers,
		func(i int) string { return list[i].Name() },
		func(i int) error {
			if err := ctx.Budget.Err(); err != nil {
				return fmt.Errorf("skipped: %w", err)
			}
			results[i] = list[i].Check(ctx)
			return nil
		})
	for i, err := range errs {
		if err != nil {
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageCheck, list[i].Name(), err, true))
			r.Degraded = true
			continue
		}
		r.Add(results[i]...)
	}
	if len(ctx.Diagnostics) > 0 {
		r.Degraded = true
	}
	// Pruned-path accounting: surface how many continuations the
	// feasibility layer discarded before any checker ran. Seeded (memo-
	// replayed) functions carry their tally in the record, so the report is
	// byte-identical between cold and incremental runs.
	for _, fp := range ctx.FuncPaths {
		r.PathsPruned += fp.Pruned
	}
	for i := range r.Warnings {
		r.Warnings[i].LikelyConsequence = likelyConsequence(r.Warnings[i].Aspect())
	}
	r.Sort()
	return r
}

// likelyByAspect computes the top Table-4 failure class per aspect exactly
// once, process-wide. sync.OnceValue publishes the completed map with a
// happens-before edge, so concurrent Run calls (serve handles requests in
// parallel, and one request may run its checkers in parallel) read it
// race-free; no caller can observe the map mid-population.
var likelyByAspect = sync.OnceValue(func() map[report.Aspect]string {
	m := map[report.Aspect]string{}
	ds := study.Dataset()
	for _, asp := range report.Aspects() {
		ranked := study.LikelyConsequences(ds, asp)
		if len(ranked) > 0 {
			m[asp] = ranked[0].Consequence
		}
	}
	return m
})

// likelyConsequence returns the top Table-4 failure class for an aspect.
func likelyConsequence(a report.Aspect) string { return likelyByAspect()[a] }

// fastPathFuncs yields the fast-path functions with extracted paths.
func (ctx *Context) fastPathFuncs() []*paths.FuncPaths {
	var out []*paths.FuncPaths
	for _, name := range ctx.Spec.FastFuncs() {
		if fp, ok := ctx.FuncPaths[name]; ok {
			out = append(out, fp)
		}
	}
	return out
}

// funcDecl looks up the AST node for a function.
func (ctx *Context) funcDecl(name string) *cast.FuncDecl { return ctx.TU.Func(name) }

// pathReferences reports whether the path mentions the variable anywhere:
// in a condition, a state update (target, root, or symbolic value), a call
// argument, or the output.
func pathReferences(p *paths.ExecPath, name string) bool {
	if p.TestsVar(name) {
		return true
	}
	for _, s := range p.States {
		if s.Root == name || s.Target == name ||
			strings.Contains(s.Value, "#"+name+")") || strings.Contains(s.Target, name+"->") {
			return true
		}
	}
	for _, c := range p.Calls {
		for _, a := range c.Args {
			if a == name || strings.Contains(a, name+"->") || strings.Contains(a, name+".") ||
				strings.Contains(a, "&"+name) || containsWord(a, name) {
				return true
			}
		}
	}
	if p.Out != nil && !p.Out.Void {
		if containsWord(p.Out.Expr, name) || strings.Contains(p.Out.Sym, "#"+name+")") {
			return true
		}
	}
	return false
}

// containsWord reports whether s contains name as a whole identifier word.
func containsWord(s, name string) bool {
	idx := 0
	for {
		i := strings.Index(s[idx:], name)
		if i < 0 {
			return false
		}
		i += idx
		beforeOK := i == 0 || !isIdentChar(s[i-1])
		j := i + len(name)
		afterOK := j >= len(s) || !isIdentChar(s[j])
		if beforeOK && afterOK {
			return true
		}
		idx = i + len(name)
		if idx >= len(s) {
			return false
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
