// Package checkers implements the five Pallas checkers: path state, trigger
// condition, path output, fault handling, and assistant data structure. Each
// checker filters extracted execution paths against the rules of Section 3
// and reports violations as warnings.
package checkers

import (
	"fmt"
	"strings"
	"sync"

	"pallas/internal/cast"
	"pallas/internal/guard"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
	"pallas/internal/study"
)

// Context carries everything a checker needs for one analysis target.
type Context struct {
	// TU is the merged, parsed translation unit.
	TU *cast.TranslationUnit
	// Spec is the user-provided semantic information.
	Spec *spec.Spec
	// Extractor provides path extraction (shared CFG/summary caches).
	Extractor *paths.Extractor
	// FuncPaths maps function name → extracted paths for every analyzed
	// function (fast paths first).
	FuncPaths map[string]*paths.FuncPaths
	// File is the reported file name.
	File string
	// Budget, when non-nil, bounds the work Run performs; checkers are skipped
	// once it is exhausted and the report is marked degraded.
	Budget *guard.Budget
	// Diagnostics accumulates non-fatal problems (unknown spec functions,
	// truncated extractions, crashed checkers) encountered while building and
	// running the context.
	Diagnostics []guard.Diagnostic
}

// Checker is one of the five Pallas tools.
type Checker interface {
	// Name identifies the checker ("path-state", ...).
	Name() string
	// Check analyzes ctx and returns warnings.
	Check(ctx *Context) []report.Warning
}

// All returns the five checkers in paper order.
func All() []Checker {
	return []Checker{
		PathStateChecker{},
		TriggerConditionChecker{},
		PathOutputChecker{},
		FaultHandlingChecker{},
		DataStructChecker{},
	}
}

// ByName returns the named checker, or nil.
func ByName(name string) Checker {
	for _, c := range All() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// NewContext extracts paths for every function the spec names and returns a
// ready-to-check context.
func NewContext(tu *cast.TranslationUnit, sp *spec.Spec, cfg paths.Config) (*Context, error) {
	ex := paths.NewExtractor(tu, cfg)
	ctx := &Context{TU: tu, Spec: sp, Extractor: ex, FuncPaths: map[string]*paths.FuncPaths{},
		File: tu.File, Budget: cfg.Budget}
	for _, fn := range sp.AnalyzedFuncs() {
		if tu.Func(fn) == nil {
			return nil, fmt.Errorf("checkers: spec names unknown function %q", fn)
		}
		fp, err := ex.Extract(fn)
		if err != nil {
			return nil, err
		}
		ctx.FuncPaths[fn] = fp
	}
	return ctx, nil
}

// NewContextTolerant is NewContext for degraded pipelines: spec functions the
// (possibly partially parsed) unit lacks, extraction failures, and extraction
// panics become Diagnostics instead of hard errors, and the surviving
// functions are still checked. The only returned error is an exhausted budget.
func NewContextTolerant(tu *cast.TranslationUnit, sp *spec.Spec, cfg paths.Config) (*Context, error) {
	ex := paths.NewExtractor(tu, cfg)
	ctx := &Context{TU: tu, Spec: sp, Extractor: ex, FuncPaths: map[string]*paths.FuncPaths{},
		File: tu.File, Budget: cfg.Budget}
	for _, fn := range sp.AnalyzedFuncs() {
		if err := cfg.Budget.Err(); err != nil {
			return ctx, err
		}
		if tu.Func(fn) == nil {
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageExtract, fn,
				fmt.Errorf("spec names function %q not present in unit", fn), true))
			continue
		}
		var fp *paths.FuncPaths
		err := guard.Protect(guard.StageExtract, fn, func() error {
			var eerr error
			fp, eerr = ex.Extract(fn)
			return eerr
		})
		if err != nil {
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageExtract, fn, err, true))
			continue
		}
		ctx.FuncPaths[fn] = fp
	}
	return ctx, nil
}

// Run executes the given checkers (all five when list is empty) and returns a
// sorted report. Each warning is annotated with the historically most likely
// failure class for its aspect (from the characterization study).
func Run(ctx *Context, list ...Checker) *report.Report {
	if len(list) == 0 {
		list = All()
	}
	r := &report.Report{Target: ctx.File}
	for _, c := range list {
		if err := ctx.Budget.Err(); err != nil {
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageCheck, c.Name(),
				fmt.Errorf("skipped: %w", err), true))
			r.Degraded = true
			continue
		}
		var ws []report.Warning
		if err := guard.Protect(guard.StageCheck, c.Name(), func() error {
			ws = c.Check(ctx)
			return nil
		}); err != nil {
			// A crashed checker loses only its own findings; the report keeps
			// everything the other checkers produced.
			ctx.Diagnostics = append(ctx.Diagnostics, guard.Diag(guard.StageCheck, c.Name(), err, true))
			r.Degraded = true
			continue
		}
		r.Add(ws...)
	}
	if len(ctx.Diagnostics) > 0 {
		r.Degraded = true
	}
	for i := range r.Warnings {
		r.Warnings[i].LikelyConsequence = likelyConsequence(r.Warnings[i].Aspect())
	}
	r.Sort()
	return r
}

var (
	likelyOnce sync.Once
	likelyMap  map[report.Aspect]string
)

// likelyConsequence returns the top Table-4 failure class for an aspect.
func likelyConsequence(a report.Aspect) string {
	likelyOnce.Do(func() {
		likelyMap = map[report.Aspect]string{}
		ds := study.Dataset()
		for _, asp := range report.Aspects() {
			ranked := study.LikelyConsequences(ds, asp)
			if len(ranked) > 0 {
				likelyMap[asp] = ranked[0].Consequence
			}
		}
	})
	return likelyMap[a]
}

// fastPathFuncs yields the fast-path functions with extracted paths.
func (ctx *Context) fastPathFuncs() []*paths.FuncPaths {
	var out []*paths.FuncPaths
	for _, name := range ctx.Spec.FastFuncs() {
		if fp, ok := ctx.FuncPaths[name]; ok {
			out = append(out, fp)
		}
	}
	return out
}

// funcDecl looks up the AST node for a function.
func (ctx *Context) funcDecl(name string) *cast.FuncDecl { return ctx.TU.Func(name) }

// pathReferences reports whether the path mentions the variable anywhere:
// in a condition, a state update (target, root, or symbolic value), a call
// argument, or the output.
func pathReferences(p *paths.ExecPath, name string) bool {
	if p.TestsVar(name) {
		return true
	}
	for _, s := range p.States {
		if s.Root == name || s.Target == name ||
			strings.Contains(s.Value, "#"+name+")") || strings.Contains(s.Target, name+"->") {
			return true
		}
	}
	for _, c := range p.Calls {
		for _, a := range c.Args {
			if a == name || strings.Contains(a, name+"->") || strings.Contains(a, name+".") ||
				strings.Contains(a, "&"+name) || containsWord(a, name) {
				return true
			}
		}
	}
	if p.Out != nil && !p.Out.Void {
		if containsWord(p.Out.Expr, name) || strings.Contains(p.Out.Sym, "#"+name+")") {
			return true
		}
	}
	return false
}

// containsWord reports whether s contains name as a whole identifier word.
func containsWord(s, name string) bool {
	idx := 0
	for {
		i := strings.Index(s[idx:], name)
		if i < 0 {
			return false
		}
		i += idx
		beforeOK := i == 0 || !isIdentChar(s[i-1])
		j := i + len(name)
		afterOK := j >= len(s) || !isIdentChar(s[j])
		if beforeOK && afterOK {
			return true
		}
		idx = i + len(name)
		if idx >= len(s) {
			return false
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
