package checkers

import (
	"testing"

	"pallas/internal/cparse"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
)

// analyze parses src, builds the spec from specText, and runs all checkers.
func analyze(t *testing.T, src, specText string) *report.Report {
	t.Helper()
	tu, err := cparse.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := spec.Parse(specText)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	ctx, err := NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	return Run(ctx)
}

func countFinding(r *report.Report, finding string) int {
	n := 0
	for _, w := range r.Warnings {
		if w.Finding == finding {
			n++
		}
	}
	return n
}

// --- Rule 1.2: immutable overwritten -------------------------------------

const immutableOverwriteSrc = `
struct page { unsigned long private; };
struct page *get_page(gfp_t gfp_mask, int order) {
	struct page *page = 0;
	if (order == 0) {
		gfp_mask = gfp_mask & 3;
		return page;
	}
	return page;
}`

func TestImmutableOverwriteDetected(t *testing.T) {
	r := analyze(t, immutableOverwriteSrc, `
fastpath get_page
immutable gfp_mask
`)
	if countFinding(r, report.FindStateOverwrite) != 1 {
		t.Fatalf("want 1 overwrite warning, got report:\n%+v", r.Warnings)
	}
	w := r.Warnings[0]
	if w.Rule != "1.2" || w.Subject != "gfp_mask" || w.Line != 6 {
		t.Errorf("warning = %+v", w)
	}
}

func TestImmutableCleanNoWarning(t *testing.T) {
	r := analyze(t, `
struct page { unsigned long private; };
struct page *get_page(gfp_t gfp_mask, int order) {
	struct page *page = 0;
	if ((gfp_mask & 3) && order == 0)
		return page;
	return page;
}`, `
fastpath get_page
immutable gfp_mask
`)
	if len(r.Warnings) != 0 {
		t.Fatalf("clean code produced warnings: %+v", r.Warnings)
	}
}

func TestImmutableOverwriteInCallee(t *testing.T) {
	r := analyze(t, `
struct ctl { int mask; };
void clobber(struct ctl *c) { c->mask = 0; }
int fast(struct ctl *ctl) {
	clobber(ctl);
	return ctl->mask;
}`, `
fastpath fast
immutable ctl
`)
	if countFinding(r, report.FindStateOverwrite) == 0 {
		t.Fatalf("callee write through pointer not flagged: %+v", r.Warnings)
	}
}

// --- Rule 1.1: uninitialized immutable ------------------------------------

func TestUninitializedImmutableDetected(t *testing.T) {
	r := analyze(t, `
int fast(int a) {
	int flags;
	if (flags & 1)
		return a;
	return 0;
}`, `
fastpath fast
immutable flags
`)
	if countFinding(r, report.FindStateUninit) != 1 {
		t.Fatalf("want 1 uninit warning: %+v", r.Warnings)
	}
}

func TestInitializedImmutableClean(t *testing.T) {
	r := analyze(t, `
int fast(int a) {
	int flags = 1;
	if (flags & 1)
		return a;
	return 0;
}`, `
fastpath fast
immutable flags
`)
	if countFinding(r, report.FindStateUninit) != 0 {
		t.Fatalf("initialized local flagged: %+v", r.Warnings)
	}
}

func TestUninitializedGlobalImmutable(t *testing.T) {
	r := analyze(t, `
int page_flags;
int fast(int a) {
	if (page_flags & 1)
		return a;
	return 0;
}`, `
fastpath fast
immutable page_flags
`)
	if countFinding(r, report.FindStateUninit) != 1 {
		t.Fatalf("uninitialized global not flagged: %+v", r.Warnings)
	}
}

// --- Rule 1.3: correlated variables ---------------------------------------

func TestCorrelationViolationDetected(t *testing.T) {
	// preferred_zone must be chosen with reference to nodemask.
	r := analyze(t, `
struct zone { int node; };
struct zone *pick(struct zone *preferred_zone, unsigned long nodemask) {
	return preferred_zone;
}`, `
fastpath pick
correlated preferred_zone nodemask
`)
	if countFinding(r, report.FindStateCorrelated) != 1 {
		t.Fatalf("missing correlation not flagged: %+v", r.Warnings)
	}
}

func TestCorrelationPresentClean(t *testing.T) {
	r := analyze(t, `
struct zone { int node; };
struct zone *pick(struct zone *preferred_zone, unsigned long nodemask) {
	if (nodemask & (1 << preferred_zone->node))
		return preferred_zone;
	return 0;
}`, `
fastpath pick
correlated preferred_zone nodemask
`)
	if countFinding(r, report.FindStateCorrelated) != 0 {
		t.Fatalf("correlated access flagged: %+v", r.Warnings)
	}
}

// --- Rules 2.1 / 2.2: trigger condition -----------------------------------

func TestMissingConditionDetected(t *testing.T) {
	r := analyze(t, `
int rcv(int pred_flags, int len) {
	return len;
}`, `
fastpath rcv
cond pred_flags
`)
	if countFinding(r, report.FindCondMissing) != 1 {
		t.Fatalf("missing cond not flagged: %+v", r.Warnings)
	}
}

func TestIncompleteConditionDetected(t *testing.T) {
	// rps_map length checked but rps_flow_table not: the paper's Figure 5.
	r := analyze(t, `
struct rxq { int len; void *flow_table; };
int get_cpu(struct rxq *rxq, int map_len, int flow_table) {
	if (map_len == 1)
		return 1;
	return 0;
}`, `
fastpath get_cpu
cond map_len flow_table
`)
	if countFinding(r, report.FindCondIncomplete) != 1 {
		t.Fatalf("incomplete cond not flagged: %+v", r.Warnings)
	}
	if countFinding(r, report.FindCondMissing) != 0 {
		t.Fatalf("should be incomplete, not missing: %+v", r.Warnings)
	}
}

func TestCompleteConditionClean(t *testing.T) {
	r := analyze(t, `
int get_cpu(int map_len, int flow_table) {
	if (map_len == 1 && !flow_table)
		return 1;
	return 0;
}`, `
fastpath get_cpu
cond map_len flow_table
`)
	if len(r.Warnings) != 0 {
		t.Fatalf("complete condition flagged: %+v", r.Warnings)
	}
}

// --- Rule 2.3: condition order ---------------------------------------------

func TestConditionOrderViolation(t *testing.T) {
	// OOM checked before Remote: Figure 6's performance bug.
	r := analyze(t, `
int alloc(int oom, int remote) {
	if (oom)
		return 1;
	if (remote)
		return 2;
	return 0;
}`, `
fastpath alloc
order remote oom
`)
	if countFinding(r, report.FindCondOrder) != 1 {
		t.Fatalf("order violation not flagged: %+v", r.Warnings)
	}
}

func TestConditionOrderCorrect(t *testing.T) {
	r := analyze(t, `
int alloc(int oom, int remote) {
	if (remote)
		return 2;
	if (oom)
		return 1;
	return 0;
}`, `
fastpath alloc
order remote oom
`)
	if countFinding(r, report.FindCondOrder) != 0 {
		t.Fatalf("correct order flagged: %+v", r.Warnings)
	}
}

// --- Rule 3.1: defined returns ----------------------------------------------

func TestUnexpectedOutputDetected(t *testing.T) {
	r := analyze(t, `
int rcv(int pred) {
	if (pred)
		return 0;
	return 2;
}`, `
fastpath rcv
returns rcv {0, 1}
`)
	if countFinding(r, report.FindOutUnexpected) != 1 {
		t.Fatalf("unexpected output not flagged: %+v", r.Warnings)
	}
}

func TestDefinedOutputsClean(t *testing.T) {
	r := analyze(t, `
enum codes { EIO = 5 };
int rcv(int pred) {
	if (pred)
		return -EIO;
	return 0;
}`, `
fastpath rcv
returns rcv {0, -EIO}
`)
	if countFinding(r, report.FindOutUnexpected) != 0 {
		t.Fatalf("defined outputs flagged: %+v", r.Warnings)
	}
}

// --- Rule 3.2: fast/slow output match ---------------------------------------

func TestOutputMismatchDetected(t *testing.T) {
	// tcp_rcv fast path returns 1 where slow path returns 0: Figure 7.
	r := analyze(t, `
int rcv_fast(int x) {
	if (x) return 1;
	return 0;
}
int rcv_slow(int x) {
	return 0;
}`, `
pair rcv_fast rcv_slow
match_output rcv_fast rcv_slow
`)
	if countFinding(r, report.FindOutMismatch) != 1 {
		t.Fatalf("output mismatch not flagged: %+v", r.Warnings)
	}
}

func TestOutputMatchClean(t *testing.T) {
	r := analyze(t, `
int rcv_fast(int x) {
	if (x) return -1;
	return 0;
}
int rcv_slow(int x) {
	if (x > 2) return -1;
	return 0;
}`, `
pair rcv_fast rcv_slow
`)
	if countFinding(r, report.FindOutMismatch) != 0 {
		t.Fatalf("matching outputs flagged: %+v", r.Warnings)
	}
}

// --- Rule 3.3: return must be checked -----------------------------------------

func TestUncheckedReturnDetected(t *testing.T) {
	// btrfs_wait_ordered_range result ignored: data-loss bug from §3.4.
	r := analyze(t, `
int btrfs_wait_ordered_range(int start, int len);
int prepare_page(int start, int len) {
	btrfs_wait_ordered_range(start, len);
	return 0;
}`, `
fastpath prepare_page
check_return btrfs_wait_ordered_range
`)
	if countFinding(r, report.FindOutUnchecked) != 1 {
		t.Fatalf("unchecked return not flagged: %+v", r.Warnings)
	}
}

func TestCheckedReturnClean(t *testing.T) {
	r := analyze(t, `
int btrfs_wait_ordered_range(int start, int len);
int prepare_page(int start, int len) {
	int ret = btrfs_wait_ordered_range(start, len);
	if (ret < 0)
		return ret;
	return 0;
}`, `
fastpath prepare_page
check_return btrfs_wait_ordered_range
`)
	if countFinding(r, report.FindOutUnchecked) != 0 {
		t.Fatalf("checked return flagged: %+v", r.Warnings)
	}
}

func TestReturnPropagatedClean(t *testing.T) {
	// Returning the callee result directly propagates it to the caller.
	r := analyze(t, `
int helper(int a);
int fast(int a) {
	return helper(a);
}`, `
fastpath fast
check_return helper
`)
	if countFinding(r, report.FindOutUnchecked) != 0 {
		t.Fatalf("propagated return flagged: %+v", r.Warnings)
	}
}

// --- Rule 4.1: fault handling ---------------------------------------------------

func TestMissingFaultHandlerDetected(t *testing.T) {
	// SCSI driver ignoring failed cmd state: Figure 8.
	r := analyze(t, `
struct cmd { int state_active; };
void free_cmd(struct cmd *cmd, int wait) {
	if (wait)
		return;
}`, `
fastpath free_cmd
fault state_active handler=remove_from_state_list
`)
	if countFinding(r, report.FindFaultMissing) != 2 {
		t.Fatalf("want 2 fault warnings (state untested + handler missing): %+v", r.Warnings)
	}
}

func TestFaultHandledClean(t *testing.T) {
	r := analyze(t, `
struct cmd { int state_active; };
void remove_from_state_list(struct cmd *cmd);
void free_cmd(struct cmd *cmd, int wait) {
	if (cmd->state_active)
		remove_from_state_list(cmd);
}`, `
fastpath free_cmd
fault state_active handler=remove_from_state_list
`)
	if countFinding(r, report.FindFaultMissing) != 0 {
		t.Fatalf("handled fault flagged: %+v", r.Warnings)
	}
}

// --- Rule 5.1: hot structure layout ------------------------------------------------

func TestUnusedHotFieldDetected(t *testing.T) {
	// i_cindex never used by the fast path (removed in the kernel fix).
	r := analyze(t, `
struct inode {
	unsigned long i_ino;
	int i_cindex;
};
unsigned long lookup(struct inode *in) {
	return in->i_ino;
}`, `
fastpath lookup
hotstruct inode
`)
	if countFinding(r, report.FindDSLayout) != 1 {
		t.Fatalf("unused field not flagged: %+v", r.Warnings)
	}
	if r.Warnings[0].Subject != "inode.i_cindex" {
		t.Errorf("subject = %q", r.Warnings[0].Subject)
	}
}

func TestAllFieldsUsedClean(t *testing.T) {
	r := analyze(t, `
struct inode {
	unsigned long i_ino;
	int i_count;
};
unsigned long lookup(struct inode *in) {
	return in->i_ino + in->i_count;
}`, `
fastpath lookup
hotstruct inode
`)
	if countFinding(r, report.FindDSLayout) != 0 {
		t.Fatalf("fully-used struct flagged: %+v", r.Warnings)
	}
}

// --- Rule 5.2: stale cache ------------------------------------------------------------

func TestStaleCacheDetected(t *testing.T) {
	// NFS inode delete without icache removal: Figure 9.
	r := analyze(t, `
struct inode { int state; };
int unlink(struct inode *inode, int icache) {
	inode->state = 0;
	return 0;
}`, `
fastpath unlink
cache icache of inode
`)
	if countFinding(r, report.FindDSStale) != 1 {
		t.Fatalf("stale cache not flagged: %+v", r.Warnings)
	}
}

func TestCacheUpdatedClean(t *testing.T) {
	r := analyze(t, `
struct inode { int state; };
void icache_remove(int icache, struct inode *inode);
int unlink(struct inode *inode, int icache) {
	inode->state = 0;
	icache_remove(icache, inode);
	return 0;
}`, `
fastpath unlink
cache icache of inode
`)
	if countFinding(r, report.FindDSStale) != 0 {
		t.Fatalf("updated cache flagged: %+v", r.Warnings)
	}
}

// --- framework ---------------------------------------------------------------

func TestUnknownSpecFunctionError(t *testing.T) {
	tu, err := cparse.Parse("t.c", "int f(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse("fastpath missing_fn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewContext(tu, sp, paths.DefaultConfig()); err == nil {
		t.Fatal("expected error for unknown function")
	}
}

func TestByName(t *testing.T) {
	for _, c := range All() {
		if ByName(c.Name()) == nil {
			t.Errorf("ByName(%q) = nil", c.Name())
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestRunSubset(t *testing.T) {
	r := analyze(t, immutableOverwriteSrc, "fastpath get_page\nimmutable gfp_mask\n")
	if len(r.Warnings) == 0 {
		t.Fatal("expected warnings")
	}
	// Running only the trigger checker must produce none for this spec.
	tu, _ := cparse.Parse("test.c", immutableOverwriteSrc)
	sp, _ := spec.Parse("fastpath get_page\nimmutable gfp_mask\n")
	ctx, err := NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2 := Run(ctx, TriggerConditionChecker{})
	if len(r2.Warnings) != 0 {
		t.Fatalf("trigger checker produced: %+v", r2.Warnings)
	}
}
