package checkers

import (
	"fmt"

	"pallas/internal/cast"
	"pallas/internal/paths"
	"pallas/internal/report"
)

// TriggerConditionChecker enforces the trigger-condition rules:
//
//	Rule 2.1: every specified condition variable must appear in a flow-control
//	          statement of the fast path (a missing check means requests that
//	          belong on the slow path are served by the fast path).
//	Rule 2.2: all specified condition variables must satisfy 2.1 together; a
//	          partial implementation is an incomplete trigger condition.
//	Rule 2.3: for a specified order (X before Y), every path checking both
//	          must check X first.
type TriggerConditionChecker struct{}

// Name implements Checker.
func (TriggerConditionChecker) Name() string { return "trigger-condition" }

// Check implements Checker.
func (TriggerConditionChecker) Check(ctx *Context) []report.Warning {
	var out []report.Warning
	for _, fp := range ctx.fastPathFuncs() {
		out = append(out, checkCondVars(ctx, fp)...)
		for _, ord := range ctx.Spec.Orders {
			out = append(out, checkCondOrder(ctx, fp, ord.First, ord.Second)...)
		}
	}
	return out
}

// condVarTested reports whether the variable appears in any branch condition
// of the function (on any path, including conditions hoisted from summarized
// callees).
func condVarTested(fp *paths.FuncPaths, v string) bool {
	for _, p := range fp.Paths {
		if p.TestsVar(v) {
			return true
		}
	}
	return false
}

func checkCondVars(ctx *Context, fp *paths.FuncPaths) []report.Warning {
	var vars []string
	for _, v := range ctx.Spec.CondVars {
		if v.AppliesTo(fp.Fn) {
			vars = append(vars, v.Name)
		}
	}
	if len(vars) == 0 {
		return nil
	}
	fn := ctx.funcDecl(fp.Fn)
	var missing, present []string
	for _, v := range vars {
		if condVarTested(fp, v) {
			present = append(present, v)
		} else {
			missing = append(missing, v)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var out []report.Warning
	if len(present) == 0 {
		// Rule 2.1: the trigger condition as a whole is absent.
		line := 0
		if fn != nil {
			line = fn.P.Line
		}
		for _, v := range missing {
			out = append(out, report.Warning{
				Rule: "2.1", Finding: report.FindCondMissing,
				Func: fp.Fn, File: ctx.File, Line: line, Subject: v,
				PathIndex: -1,
				Message:   fmt.Sprintf("trigger-condition variable %q is never checked in %s: the path switch is missing", v, fp.Fn),
			})
		}
		return out
	}
	// Rule 2.2: some variables checked, others not — incomplete condition.
	for _, v := range missing {
		line := 0
		if fn != nil {
			line = firstCondLine(fn)
		}
		out = append(out, report.Warning{
			Rule: "2.2", Finding: report.FindCondIncomplete,
			Func: fp.Fn, File: ctx.File, Line: line, Subject: v,
			PathIndex: -1,
			Message: fmt.Sprintf("trigger condition of %s is incomplete: %q is not checked (checked: %v)",
				fp.Fn, v, present),
		})
	}
	return out
}

// firstCondLine finds the first branch condition line in the function body.
func firstCondLine(fn *cast.FuncDecl) int {
	line := 0
	cast.Walk(fn.Body, func(n cast.Node) bool {
		if line > 0 {
			return false
		}
		if ifs, ok := n.(*cast.IfStmt); ok {
			line = ifs.P.Line
			return false
		}
		return true
	})
	if line == 0 {
		line = fn.P.Line
	}
	return line
}

// checkCondOrder applies rule 2.3 on every extracted path.
func checkCondOrder(ctx *Context, fp *paths.FuncPaths, first, second string) []report.Warning {
	for _, p := range fp.Paths {
		fi, si := -1, -1
		for i, c := range p.Conds {
			if fi < 0 && condMentions(c, first) {
				fi = i
			}
			if si < 0 && condMentions(c, second) {
				si = i
			}
		}
		if fi >= 0 && si >= 0 && si < fi {
			return []report.Warning{{
				Rule: "2.3", Finding: report.FindCondOrder,
				Func: fp.Fn, File: ctx.File, Line: p.Conds[si].Line,
				Subject:   first + "<" + second,
				PathIndex: p.Index,
				Message: fmt.Sprintf("condition order violated on path %d: %q is checked before %q (expected %q first)",
					p.Index, second, first, first),
			}}
		}
	}
	return nil
}

func condMentions(c paths.Condition, v string) bool {
	for _, name := range c.Vars {
		if name == v {
			return true
		}
	}
	for _, f := range c.Fields {
		if f == v || containsWord(f, v) {
			return true
		}
	}
	// Function-name conditions ("oom_allowed()") count as checking v when the
	// call name matches.
	return containsWord(c.Expr, v)
}
