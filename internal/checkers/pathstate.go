package checkers

import (
	"fmt"

	"pallas/internal/cast"
	"pallas/internal/paths"
	"pallas/internal/report"
)

// PathStateChecker enforces the path-state rules:
//
//	Rule 1.1: every specified immutable variable X must be initialized.
//	Rule 1.2: X must never be overwritten.
//	Rule 1.3: for specified correlated variables X and Y, a path referencing
//	          X must also reference Y.
type PathStateChecker struct{}

// Name implements Checker.
func (PathStateChecker) Name() string { return "path-state" }

// Check implements Checker.
func (PathStateChecker) Check(ctx *Context) []report.Warning {
	var out []report.Warning
	for _, fp := range ctx.fastPathFuncs() {
		for _, imm := range ctx.Spec.Immutables {
			if imm.AppliesTo(fp.Fn) {
				out = append(out, checkImmutable(ctx, fp, imm.Name)...)
			}
		}
		for _, corr := range ctx.Spec.Correlated {
			out = append(out, checkCorrelated(ctx, fp, corr.A, corr.B)...)
		}
	}
	return out
}

// checkImmutable applies rules 1.1 and 1.2 for one immutable variable in one
// fast-path function.
func checkImmutable(ctx *Context, fp *paths.FuncPaths, imm string) []report.Warning {
	var out []report.Warning
	fn := ctx.funcDecl(fp.Fn)
	if fn == nil {
		return nil
	}
	relevant := cast.UsesIdent(fn.Body, imm) || paramNamed(fn, imm)
	if !relevant {
		// The immutable does not appear in this function at all; the global
		// may still be declared uninitialized (rule 1.1 at file scope).
		out = append(out, checkGlobalInit(ctx, fp, imm)...)
		return out
	}

	// Rule 1.1 — uninitialized: a local declaration of X without initializer
	// whose value is consumed (condition/output/call) before any write.
	seenUninitDecl := map[int]bool{}
	// Rule 1.2 — overwritten: any non-decl write to X (or through X.field).
	seenWrite := map[int]bool{}

	for _, p := range fp.Paths {
		declLine := -1
		initialized := paramNamed(fn, imm) // parameters arrive initialized
		for _, s := range p.States {
			if s.Target != imm && s.Root != imm {
				continue
			}
			switch s.Kind {
			case paths.Decl:
				declLine = s.Line
				initialized = s.Value != "(S#"+imm+")"
			default:
				if s.Target == imm || s.Root == imm {
					if !seenWrite[s.Line] {
						seenWrite[s.Line] = true
						kind := "assignment"
						if s.Kind == paths.CallEffect {
							kind = "write in callee " + s.Callee
						}
						out = append(out, report.Warning{
							Rule: "1.2", Finding: report.FindStateOverwrite,
							Func: fp.Fn, File: ctx.File, Line: s.Line, Subject: imm,
							PathIndex: p.Index,
							Message: fmt.Sprintf("immutable variable %q is overwritten by %s (new value %s)",
								imm, kind, s.Value),
						})
					}
					initialized = true
				}
			}
		}
		if declLine > 0 && !initialized && consumedOnPath(p, imm) && !seenUninitDecl[declLine] {
			seenUninitDecl[declLine] = true
			out = append(out, report.Warning{
				Rule: "1.1", Finding: report.FindStateUninit,
				Func: fp.Fn, File: ctx.File, Line: declLine, Subject: imm,
				PathIndex: p.Index,
				Message:   fmt.Sprintf("immutable variable %q is declared without initialization and used on this path", imm),
			})
		}
	}
	out = append(out, checkGlobalInit(ctx, fp, imm)...)
	return out
}

// checkGlobalInit flags a global immutable declared without an initializer
// (rule 1.1 at file scope). Reported once per (function, variable).
func checkGlobalInit(ctx *Context, fp *paths.FuncPaths, imm string) []report.Warning {
	for _, g := range ctx.TU.Globals() {
		if g.Name == imm && g.Init == nil && !g.Extern {
			fn := ctx.funcDecl(fp.Fn)
			if fn != nil && cast.UsesIdent(fn.Body, imm) {
				return []report.Warning{{
					Rule: "1.1", Finding: report.FindStateUninit,
					Func: fp.Fn, File: ctx.File, Line: g.P.Line, Subject: imm,
					PathIndex: -1,
					Message:   fmt.Sprintf("immutable global %q has no initializer but is used by fast path %s", imm, fp.Fn),
				}}
			}
		}
	}
	return nil
}

// consumedOnPath reports whether the variable's value is read on the path
// (condition, call argument, output).
func consumedOnPath(p *paths.ExecPath, name string) bool {
	if p.TestsVar(name) {
		return true
	}
	for _, c := range p.Calls {
		for _, a := range c.Args {
			if containsWord(a, name) {
				return true
			}
		}
	}
	if p.Out != nil && !p.Out.Void && containsWord(p.Out.Expr, name) {
		return true
	}
	return false
}

func paramNamed(fn *cast.FuncDecl, name string) bool {
	for _, p := range fn.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// checkCorrelated applies rule 1.3: on every path that references A, B must
// also be referenced (the correlation edge must exist in the path).
func checkCorrelated(ctx *Context, fp *paths.FuncPaths, a, b string) []report.Warning {
	fn := ctx.funcDecl(fp.Fn)
	if fn == nil || !cast.UsesIdent(fn.Body, a) {
		return nil
	}
	for _, p := range fp.Paths {
		if pathReferences(p, a) && !pathReferences(p, b) {
			line := 0
			if u, ok := p.WritesTo(a); ok {
				line = u.Line
			}
			return []report.Warning{{
				Rule: "1.3", Finding: report.FindStateCorrelated,
				Func: fp.Fn, File: ctx.File, Line: line, Subject: a + "~" + b,
				PathIndex: p.Index,
				Message: fmt.Sprintf("correlated variables: path %d uses %q without referring to its correlated state %q",
					p.Index, a, b),
			}}
		}
	}
	return nil
}
