package checkers

import (
	"fmt"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/paths"
	"pallas/internal/report"
)

// DataStructChecker enforces the assistant-data-structure rules:
//
//	Rule 5.1: every field of a declared hot struct must be used by the fast
//	          path; unused fields enlarge the cache footprint of the hot
//	          structure (a performance bug).
//	Rule 5.2: for a declared cache pair, every path updating the path state
//	          must subsequently update the cached version.
type DataStructChecker struct{}

// Name implements Checker.
func (DataStructChecker) Name() string { return "data-struct" }

// Check implements Checker.
func (DataStructChecker) Check(ctx *Context) []report.Warning {
	var out []report.Warning
	for _, tag := range ctx.Spec.HotStructs {
		out = append(out, checkHotStruct(ctx, tag)...)
	}
	for _, cp := range ctx.Spec.Caches {
		for _, fp := range ctx.fastPathFuncs() {
			out = append(out, checkCachePair(ctx, fp, cp.Cache, cp.State)...)
		}
	}
	return out
}

// checkHotStruct applies rule 5.1: each field must appear somewhere in the
// fast path — in a declared fast-path function or a function it (transitively)
// calls within the translation unit.
func checkHotStruct(ctx *Context, tag string) []report.Warning {
	rec := ctx.TU.Record(tag)
	if rec == nil {
		return nil
	}
	fastFns := ctx.Spec.FastFuncs()
	if len(fastFns) == 0 {
		return nil
	}
	closure := calleeClosure(ctx, fastFns)
	var out []report.Warning
	for _, f := range rec.Fields {
		used := false
		for _, name := range closure {
			fn := ctx.funcDecl(name)
			if fn != nil && fn.Body != nil && cast.UsesField(fn.Body, f.Name) {
				used = true
				break
			}
		}
		if !used {
			out = append(out, report.Warning{
				Rule: "5.1", Finding: report.FindDSLayout,
				Func: strings.Join(fastFns, ","), File: ctx.File, Line: f.P.Line,
				Subject:   tag + "." + f.Name,
				PathIndex: -1,
				Message: fmt.Sprintf("field %s.%s (%d bytes) is never used in the fast path: separate it to shrink the hot structure",
					tag, f.Name, f.Type.SizeOf()),
			})
		}
	}
	return out
}

// calleeClosure returns roots plus every function transitively called from
// them that is defined in the translation unit, in deterministic order.
func calleeClosure(ctx *Context, roots []string) []string {
	seen := map[string]bool{}
	var out []string
	var work []string
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		name := work[0]
		work = work[1:]
		fn := ctx.funcDecl(name)
		if fn == nil || fn.Body == nil {
			continue
		}
		for _, callee := range cast.Calls(fn.Body) {
			if !seen[callee] && ctx.funcDecl(callee) != nil {
				seen[callee] = true
				out = append(out, callee)
				work = append(work, callee)
			}
		}
	}
	return out
}

// checkCachePair applies rule 5.2 path-by-path.
func checkCachePair(ctx *Context, fp *paths.FuncPaths, cache, state string) []report.Warning {
	for _, p := range fp.Paths {
		stateIdx, stateLine := -1, 0
		for i, s := range p.States {
			if s.Kind == paths.Decl {
				continue
			}
			if updateTargets(s, state) {
				stateIdx, stateLine = i, s.Line
			}
		}
		if stateIdx < 0 {
			continue
		}
		// Look for a later cache update: a state write targeting the cache or
		// a call whose arguments mention it (e.g. cache_insert(icache, ...)).
		updated := false
		for i := stateIdx + 1; i < len(p.States); i++ {
			if updateTargets(p.States[i], cache) {
				updated = true
				break
			}
		}
		if !updated {
			for _, c := range p.Calls {
				if c.Line < stateLine {
					continue
				}
				if containsWord(c.Name, cache) {
					updated = true
					break
				}
				for _, a := range c.Args {
					if containsWord(a, cache) {
						updated = true
						break
					}
				}
				if updated {
					break
				}
			}
		}
		if !updated {
			return []report.Warning{{
				Rule: "5.2", Finding: report.FindDSStale,
				Func: fp.Fn, File: ctx.File, Line: stateLine,
				Subject:   cache + "<-" + state,
				PathIndex: p.Index,
				Message: fmt.Sprintf("path %d updates state %q without updating its cached version %q: stale entries may be served",
					p.Index, state, cache),
			}}
		}
	}
	return nil
}

// updateTargets reports whether the state update writes the named variable or
// one of its fields.
func updateTargets(s paths.StateUpdate, name string) bool {
	return s.Target == name || s.Root == name ||
		strings.HasPrefix(s.Target, name+"->") || strings.HasPrefix(s.Target, name+".") ||
		containsWord(s.Target, name)
}
