package checkers

import (
	"testing"

	"pallas/internal/report"
)

// Edge cases beyond the canonical rule tests in checkers_test.go.

func TestImmutableIncrementDetected(t *testing.T) {
	r := analyze(t, `
int fast(int quota) {
	quota++;
	return quota;
}`, "fastpath fast\nimmutable quota\n")
	if countFinding(r, report.FindStateOverwrite) != 1 {
		t.Fatalf("++ on immutable not flagged: %+v", r.Warnings)
	}
}

func TestImmutableCompoundAssignDetected(t *testing.T) {
	r := analyze(t, `
int fast(unsigned long mask) {
	mask |= 4;
	return (int)mask;
}`, "fastpath fast\nimmutable mask\n")
	if countFinding(r, report.FindStateOverwrite) != 1 {
		t.Fatalf("|= on immutable not flagged: %+v", r.Warnings)
	}
}

func TestImmutableFieldWriteDetected(t *testing.T) {
	// Writing a field through an immutable object counts: the object's
	// state is part of the path state.
	r := analyze(t, `
struct ctl { int mode; };
int fast(struct ctl *ctl) {
	ctl->mode = 0;
	return 0;
}`, "fastpath fast\nimmutable ctl\n")
	if countFinding(r, report.FindStateOverwrite) != 1 {
		t.Fatalf("field write through immutable not flagged: %+v", r.Warnings)
	}
}

func TestCondTestedInsideSwitch(t *testing.T) {
	r := analyze(t, `
int fast(int mode) {
	switch (mode) {
	case 0:
		return 1;
	default:
		return 0;
	}
}`, "fastpath fast\ncond mode\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("switch tag should satisfy the condition rule: %+v", r.Warnings)
	}
}

func TestCondTestedViaMemberPath(t *testing.T) {
	r := analyze(t, `
struct dev { int ready; };
int fast(struct dev *dev) {
	if (dev->ready)
		return 1;
	return 0;
}`, "fastpath fast\ncond ready\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("member-path condition should satisfy the rule: %+v", r.Warnings)
	}
}

func TestCondOrderInsideNestedBranches(t *testing.T) {
	r := analyze(t, `
int fast(int first, int second) {
	if (second) {
		if (first)
			return 1;
		return 2;
	}
	return 0;
}`, "fastpath fast\norder first second\n")
	if countFinding(r, report.FindCondOrder) != 1 {
		t.Fatalf("nested order violation not flagged: %+v", r.Warnings)
	}
}

func TestOrderSilentWhenOnlyOneTested(t *testing.T) {
	r := analyze(t, `
int fast(int first) {
	if (first)
		return 1;
	return 0;
}`, "fastpath fast\norder first second\n")
	if countFinding(r, report.FindCondOrder) != 0 {
		t.Fatalf("order rule fired with one side untested: %+v", r.Warnings)
	}
}

func TestReturnsWithHexAndEnumMix(t *testing.T) {
	r := analyze(t, `
enum st { READY = 0x10 };
int fast(int a) {
	if (a) return READY;
	return 0x20;
}`, "fastpath fast\nreturns fast {READY, 0x20}\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("hex/enum returns should be accepted: %+v", r.Warnings)
	}
}

func TestOutputMatchSymbolicBothSidesSilent(t *testing.T) {
	r := analyze(t, `
struct page { int id; };
struct page *fast(struct page *p) { return p; }
struct page *slow(struct page *p) { return p; }
`, "pair fast slow\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("purely symbolic outputs should not mismatch: %+v", r.Warnings)
	}
}

func TestCheckReturnViaIfDirectly(t *testing.T) {
	r := analyze(t, `
int io(int a);
int fast(int a) {
	if (io(a) < 0)
		return -1;
	return 0;
}`, "fastpath fast\ncheck_return io\n")
	if countFinding(r, report.FindOutUnchecked) != 0 {
		t.Fatalf("call tested directly in if should count as checked: %+v", r.Warnings)
	}
}

func TestCheckReturnLiftedCalleeExempt(t *testing.T) {
	// fast calls mid, mid calls io without checking. The unchecked call is
	// mid's defect at mid's call site; analyzing fast must not duplicate it.
	r := analyze(t, `
int io(int a);
int mid(int a) {
	io(a);
	return 0;
}
int fast(int a) {
	int r = mid(a);
	if (r)
		return r;
	return 0;
}`, "fastpath fast\ncheck_return io\n")
	if countFinding(r, report.FindOutUnchecked) != 0 {
		t.Fatalf("lifted callee call double-reported: %+v", r.Warnings)
	}
}

func TestFaultStateViaEnumConstant(t *testing.T) {
	r := analyze(t, `
enum errs { EAGAIN_SOFT = 11 };
int fast(int err) {
	if (err == EAGAIN_SOFT)
		return -1;
	return 0;
}`, "fastpath fast\nfault EAGAIN_SOFT\n")
	if countFinding(r, report.FindFaultMissing) != 0 {
		t.Fatalf("enum fault constant in condition not recognized: %+v", r.Warnings)
	}
}

func TestHotStructUsedViaCalleeClosure(t *testing.T) {
	r := analyze(t, `
struct area { unsigned long nr_free; struct area *next; };
static unsigned long scan(struct area *a) { return a->nr_free; }
static struct area *step(struct area *a) { return a->next; }
unsigned long fast(struct area *a) {
	return scan(a) + (step(a) != 0);
}`, "fastpath fast\nhotstruct area\n")
	if countFinding(r, report.FindDSLayout) != 0 {
		t.Fatalf("fields used in callees flagged: %+v", r.Warnings)
	}
}

func TestCacheUpdatedByLaterWrite(t *testing.T) {
	r := analyze(t, `
struct inode { int state; };
int fast(struct inode *inode, int icache) {
	inode->state = 0;
	icache = icache - 1;
	return 0;
}`, "fastpath fast\ncache icache of inode\n")
	if countFinding(r, report.FindDSStale) != 0 {
		t.Fatalf("direct cache write after state update flagged: %+v", r.Warnings)
	}
}

func TestCacheUpdateBeforeStateIsStale(t *testing.T) {
	// The cache refresh happens BEFORE the state update — still stale.
	r := analyze(t, `
struct inode { int state; };
void icache_touch(int icache);
int fast(struct inode *inode, int icache) {
	inode->state = 1;
	inode->state = 0;
	return 0;
}`, "fastpath fast\ncache icache of inode\n")
	if countFinding(r, report.FindDSStale) != 1 {
		t.Fatalf("missing trailing cache update not flagged: %+v", r.Warnings)
	}
}

func TestMultipleFastPathsAllChecked(t *testing.T) {
	r := analyze(t, `
int fast_a(int m) { m = 1; return m; }
int fast_b(int m) { m = 2; return m; }
`, "fastpath fast_a fast_b\nimmutable m\n")
	if countFinding(r, report.FindStateOverwrite) != 2 {
		t.Fatalf("both fast paths should warn: %+v", r.Warnings)
	}
}

func TestSpecWithoutFastPathsIsQuiet(t *testing.T) {
	r := analyze(t, `int f(int m) { m = 0; return m; }`, "immutable m\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("no fast paths declared, nothing to check: %+v", r.Warnings)
	}
}

func TestWarningsCarryLikelyConsequence(t *testing.T) {
	r := analyze(t, immutableOverwriteSrc, "fastpath get_page\nimmutable gfp_mask\n")
	if len(r.Warnings) == 0 {
		t.Fatal("expected warnings")
	}
	// Path-state bugs most often caused incorrect results in the study.
	if got := r.Warnings[0].LikelyConsequence; got != "Incorrect results" {
		t.Errorf("likely consequence = %q", got)
	}
}

func TestScopedImmutableOnlyChecksNamedFunc(t *testing.T) {
	src := `
int alloc(int m) { m = 1; return m; }
int free_path(int m) { m = 2; return m; }
`
	// Unscoped: both functions warn.
	r := analyze(t, src, "fastpath alloc free_path\nimmutable m\n")
	if countFinding(r, report.FindStateOverwrite) != 2 {
		t.Fatalf("unscoped: %+v", r.Warnings)
	}
	// Scoped to alloc: only alloc warns.
	r = analyze(t, src, "fastpath alloc free_path\nimmutable alloc:m\n")
	if countFinding(r, report.FindStateOverwrite) != 1 {
		t.Fatalf("scoped: %+v", r.Warnings)
	}
	if r.Warnings[0].Func != "alloc" {
		t.Errorf("warned in %s", r.Warnings[0].Func)
	}
}

func TestScopedCondAndFault(t *testing.T) {
	src := `
int alloc(int order) { if (order) return 1; return 0; }
int free_path(int x) { return x; }
`
	// cond scoped to alloc: free_path exempt, no warnings at all.
	r := analyze(t, src, "fastpath alloc free_path\ncond alloc:order\n")
	if len(r.Warnings) != 0 {
		t.Fatalf("scoped cond leaked: %+v", r.Warnings)
	}
	// fault scoped to free_path: only free_path warns.
	r = analyze(t, src, "fastpath alloc free_path\nfault free_path:err_state\n")
	if countFinding(r, report.FindFaultMissing) != 1 || r.Warnings[0].Func != "free_path" {
		t.Fatalf("scoped fault: %+v", r.Warnings)
	}
}
