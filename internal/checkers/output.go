package checkers

import (
	"fmt"
	"strconv"
	"strings"

	"pallas/internal/paths"
	"pallas/internal/report"
)

// PathOutputChecker enforces the path-output rules:
//
//	Rule 3.1: every return of a function with a declared return set must be
//	          one of the defined values.
//	Rule 3.2: for declared fast/slow pairs, the sets of concrete return
//	          values must match.
//	Rule 3.3: calls to functions listed in check_return must have their
//	          results checked on every path.
type PathOutputChecker struct{}

// Name implements Checker.
func (PathOutputChecker) Name() string { return "path-output" }

// Check implements Checker.
func (PathOutputChecker) Check(ctx *Context) []report.Warning {
	var out []report.Warning
	for _, rs := range ctx.Spec.Returns {
		out = append(out, checkReturnSet(ctx, rs.Func, rs.Values)...)
	}
	var pairs []struct{ Fast, Slow string }
	for _, p := range ctx.Spec.MatchOutput {
		pairs = append(pairs, struct{ Fast, Slow string }{p.Fast, p.Slow})
	}
	for _, p := range ctx.Spec.Pairs {
		// Declared pairs are cross-checked too when both have paths.
		pairs = append(pairs, struct{ Fast, Slow string }{p.Fast, p.Slow})
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		key := p.Fast + "/" + p.Slow
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, checkOutputMatch(ctx, p.Fast, p.Slow)...)
	}
	for _, callee := range ctx.Spec.CheckReturn {
		out = append(out, checkReturnChecked(ctx, callee)...)
	}
	return out
}

// resolveValue turns a spec value ("0", "-EIO", "FROZEN") into an integer
// when possible.
func resolveValue(ctx *Context, v string) (int64, bool) {
	v = strings.TrimSpace(v)
	neg := false
	if strings.HasPrefix(v, "-") {
		neg = true
		v = v[1:]
	}
	var n int64
	var ok bool
	if x, err := strconv.ParseInt(v, 0, 64); err == nil {
		n, ok = x, true
	} else if x, found := ctx.TU.EnumValue(v); found {
		n, ok = x, true
	}
	if !ok {
		return 0, false
	}
	if neg {
		n = -n
	}
	return n, true
}

// checkReturnSet applies rule 3.1.
func checkReturnSet(ctx *Context, fnName string, allowed []string) []report.Warning {
	fp, ok := ctx.FuncPaths[fnName]
	if !ok {
		return nil
	}
	allowedInts := map[int64]bool{}
	allowedExprs := map[string]bool{}
	for _, v := range allowed {
		if n, ok := resolveValue(ctx, v); ok {
			allowedInts[n] = true
		}
		allowedExprs[strings.TrimSpace(v)] = true
	}
	var out []report.Warning
	seenLine := map[int]bool{}
	for _, p := range fp.Paths {
		if p.Out == nil || p.Out.Void {
			continue
		}
		// Concrete outputs are checked against the resolved set; symbolic
		// outputs are accepted when the return expression matches a declared
		// value textually (e.g. "page"), otherwise they are unverifiable and
		// accepted (static analysis has no runtime data — Section 5.2's one
		// missed bug is exactly this case).
		if n, ok := parseSymInt(p.Out.Sym); ok {
			if !allowedInts[n] && !seenLine[p.Out.Line] {
				seenLine[p.Out.Line] = true
				out = append(out, report.Warning{
					Rule: "3.1", Finding: report.FindOutUnexpected,
					Func: fnName, File: ctx.File, Line: p.Out.Line,
					Subject:   p.Out.Expr,
					PathIndex: p.Index,
					Message: fmt.Sprintf("return value %d (from %q) is not in the defined return set %v",
						n, p.Out.Expr, allowed),
				})
			}
			continue
		}
		// Symbolic outputs are unverifiable without runtime data and are
		// accepted — §5.2's one missed bug is exactly this case (a page state
		// whose wrong value only exists at run time).
	}
	return out
}

// parseSymInt extracts n from "(I#n)".
func parseSymInt(s string) (int64, bool) {
	if !strings.HasPrefix(s, "(I#") || !strings.HasSuffix(s, ")") {
		return 0, false
	}
	body := s[3 : len(s)-1]
	n, err := strconv.ParseInt(body, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func isSimpleIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// checkOutputMatch applies rule 3.2: the concrete return constants of the
// fast path must equal those of the slow path.
func checkOutputMatch(ctx *Context, fast, slow string) []report.Warning {
	ffn, sfn := ctx.funcDecl(fast), ctx.funcDecl(slow)
	if ffn == nil || sfn == nil || ffn.Body == nil || sfn.Body == nil {
		return nil
	}
	fvals := paths.ReturnConstants(ctx.TU, ffn)
	svals := paths.ReturnConstants(ctx.TU, sfn)
	if len(fvals) == 0 && len(svals) == 0 {
		return nil // purely symbolic outputs on both sides
	}
	extraF := diffInts(fvals, svals)
	extraS := diffInts(svals, fvals)
	if len(extraF) == 0 && len(extraS) == 0 {
		return nil
	}
	var parts []string
	if len(extraF) > 0 {
		parts = append(parts, fmt.Sprintf("fast path returns %v that the slow path never returns", extraF))
	}
	if len(extraS) > 0 {
		parts = append(parts, fmt.Sprintf("slow path returns %v that the fast path never returns", extraS))
	}
	return []report.Warning{{
		Rule: "3.2", Finding: report.FindOutMismatch,
		Func: fast, File: ctx.File, Line: ffn.P.Line,
		Subject:   fast + "/" + slow,
		PathIndex: -1,
		Message:   fmt.Sprintf("fast/slow output mismatch: %s", strings.Join(parts, "; ")),
	}}
}

func diffInts(a, b []int64) []int64 {
	inB := map[int64]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []int64
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}

// checkReturnChecked applies rule 3.3 inside every analyzed function.
func checkReturnChecked(ctx *Context, callee string) []report.Warning {
	var out []report.Warning
	seen := map[string]bool{}
	for _, name := range ctx.Spec.AnalyzedFuncs() {
		fp, ok := ctx.FuncPaths[name]
		if !ok {
			continue
		}
		for _, p := range fp.Paths {
			for _, c := range p.Calls {
				if c.Name != callee || c.ResultChecked {
					continue
				}
				// Calls lifted from a summarized callee are that callee's
				// responsibility; rule 3.3 applies to direct call sites.
				if c.FromCallee != "" {
					continue
				}
				// Result returned directly counts as checked by the caller's
				// caller; flag only genuinely dropped/unpropagated results.
				if p.Out != nil && !p.Out.Void && strings.Contains(p.Out.Expr, callee+"(") {
					continue
				}
				if c.AssignedTo != "" && p.Out != nil && !p.Out.Void && containsWord(p.Out.Expr, c.AssignedTo) {
					continue
				}
				key := fmt.Sprintf("%s:%d", name, c.Line)
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, report.Warning{
					Rule: "3.3", Finding: report.FindOutUnchecked,
					Func: name, File: ctx.File, Line: c.Line, Subject: callee,
					PathIndex: p.Index,
					Message:   fmt.Sprintf("return value of %s() is not checked on path %d of %s", callee, p.Index, name),
				})
			}
		}
	}
	return out
}
