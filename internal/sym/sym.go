// Package sym implements the symbolic value domain used by the path
// extractor. Table 5 of the paper shows the notation it reproduces:
//
//	S#name   symbolic expression (an input or otherwise unknown value)
//	I#n      concrete integer
//	V#n      temporary introduced for a call result
//	E#f(...) symbol representing the result of an expression / call
//
// Values are immutable; environments map variable names to values.
package sym

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates symbolic values.
type Kind int

// Value kinds.
const (
	// Int is a concrete integer (I#).
	Int Kind = iota
	// Sym is a free symbol, typically a function input (S#).
	Sym
	// Temp is a fresh temporary introduced for an opaque result (V#).
	Temp
	// Expr is the symbolic result of applying an operator or call (E#).
	Expr
	// Str is a string constant.
	Str
)

// Value is one symbolic value.
type Value struct {
	Kind Kind
	// Int payload.
	N int64
	// Sym/Temp payload: name ("gfp_mask") or temp id ("1").
	Name string
	// Expr payload: operator or callee name plus operands.
	Op   string
	Args []*Value
}

// NewInt returns a concrete integer value.
func NewInt(n int64) *Value { return &Value{Kind: Int, N: n} }

// NewSym returns a free symbol named after an input variable.
func NewSym(name string) *Value { return &Value{Kind: Sym, Name: name} }

// NewTemp returns the numbered temporary V#n.
func NewTemp(n int) *Value { return &Value{Kind: Temp, Name: fmt.Sprintf("%d", n)} }

// NewStr returns a string constant value.
func NewStr(s string) *Value { return &Value{Kind: Str, Name: s} }

// NewExpr returns the symbolic application op(args...). Constant folding for
// binary integer operators is applied when possible.
func NewExpr(op string, args ...*Value) *Value {
	if v, ok := fold(op, args); ok {
		return v
	}
	return &Value{Kind: Expr, Op: op, Args: args}
}

func fold(op string, args []*Value) (*Value, bool) {
	if len(args) == 2 && args[0] != nil && args[1] != nil &&
		args[0].Kind == Int && args[1].Kind == Int {
		l, r := args[0].N, args[1].N
		switch op {
		case "+":
			return NewInt(l + r), true
		case "-":
			return NewInt(l - r), true
		case "*":
			return NewInt(l * r), true
		case "/":
			if r != 0 {
				return NewInt(l / r), true
			}
		case "%":
			if r != 0 {
				return NewInt(l % r), true
			}
		case "<<":
			if r >= 0 && r < 64 {
				return NewInt(l << uint(r)), true
			}
		case ">>":
			if r >= 0 && r < 64 {
				return NewInt(l >> uint(r)), true
			}
		case "&":
			return NewInt(l & r), true
		case "|":
			return NewInt(l | r), true
		case "^":
			return NewInt(l ^ r), true
		case "==":
			return boolInt(l == r), true
		case "!=":
			return boolInt(l != r), true
		case "<":
			return boolInt(l < r), true
		case "<=":
			return boolInt(l <= r), true
		case ">":
			return boolInt(l > r), true
		case ">=":
			return boolInt(l >= r), true
		case "&&":
			return boolInt(l != 0 && r != 0), true
		case "||":
			return boolInt(l != 0 || r != 0), true
		}
	}
	if len(args) == 1 && args[0] != nil && args[0].Kind == Int {
		switch op {
		case "-":
			return NewInt(-args[0].N), true
		case "~":
			return NewInt(^args[0].N), true
		case "!":
			return boolInt(args[0].N == 0), true
		}
	}
	return nil, false
}

func boolInt(b bool) *Value {
	if b {
		return NewInt(1)
	}
	return NewInt(0)
}

// String renders the value in Table-5 notation.
func (v *Value) String() string {
	if v == nil {
		return "S#unknown"
	}
	switch v.Kind {
	case Int:
		return fmt.Sprintf("(I#%d)", v.N)
	case Sym:
		return fmt.Sprintf("(S#%s)", v.Name)
	case Temp:
		return fmt.Sprintf("(V#%s)", v.Name)
	case Str:
		return fmt.Sprintf("(I#%q)", v.Name)
	case Expr:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = a.String()
		}
		if isInfix(v.Op) && len(parts) == 2 {
			return "(" + parts[0] + " " + v.Op + " " + parts[1] + ")"
		}
		if isInfix(v.Op) && len(parts) == 1 {
			return "(" + v.Op + parts[0] + ")"
		}
		return fmt.Sprintf("(E#%s(%s))", v.Op, strings.Join(parts, ", "))
	}
	return "?"
}

func isInfix(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||", "!", "~",
		".", "->", "[]":
		return true
	}
	return false
}

// Pure reports whether op at the given arity is one of the pure operators
// of the symbolic domain: an application whose value is determined by its
// rendered operands. Call results, memory reads (deref, member access,
// indexing) and address-taking are not pure — two occurrences that render
// identically may hold different values at different program points.
func Pure(op string, arity int) bool {
	switch arity {
	case 1:
		switch op {
		case "+", "-", "~", "!":
			return true
		}
	case 2:
		switch op {
		case "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
			"==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return true
		}
	case 3:
		return op == "?:"
	}
	return false
}

// Stable reports whether v denotes a value that is fixed along one
// execution path: a term built only from concrete integers, free symbols
// (which are bound once and never mutate — reassignment rebinds the
// environment to a new term instead), and pure operators. Temporaries (V#),
// strings, call results and memory reads are not stable: constraint layers
// must never accumulate facts about them, because two occurrences with the
// same rendering may denote different runtime values.
func (v *Value) Stable() bool {
	if v == nil {
		return false
	}
	switch v.Kind {
	case Int, Sym:
		return true
	case Expr:
		if !Pure(v.Op, len(v.Args)) {
			return false
		}
		for _, a := range v.Args {
			if !a.Stable() {
				return false
			}
		}
		return true
	}
	return false
}

// Equal reports structural equality.
func Equal(a, b *Value) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.N != b.N || a.Name != b.Name || a.Op != b.Op ||
		len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !Equal(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// ConcreteInt reports the value's integer if it is concrete.
func (v *Value) ConcreteInt() (int64, bool) {
	if v != nil && v.Kind == Int {
		return v.N, true
	}
	return 0, false
}

// Symbols collects the free symbol names appearing in v, sorted.
func (v *Value) Symbols() []string {
	set := map[string]bool{}
	var rec func(*Value)
	rec = func(x *Value) {
		if x == nil {
			return
		}
		if x.Kind == Sym {
			set[x.Name] = true
		}
		for _, a := range x.Args {
			rec(a)
		}
	}
	rec(v)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Env is a symbolic environment: variable (or field path) → value, plus the
// disequalities learned from refuted branches (x != K).
type Env struct {
	m  map[string]*Value
	ne map[string]map[int64]bool
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{m: map[string]*Value{}} }

// Clone returns a copy that can be mutated independently.
func (e *Env) Clone() *Env {
	c := NewEnv()
	for k, v := range e.m {
		c.m[k] = v
	}
	if e.ne != nil {
		c.ne = make(map[string]map[int64]bool, len(e.ne))
		for k, set := range e.ne {
			cp := make(map[int64]bool, len(set))
			for v := range set {
				cp[v] = true
			}
			c.ne[k] = cp
		}
	}
	return c
}

// Get returns the binding for name, or nil.
func (e *Env) Get(name string) *Value { return e.m[name] }

// Set binds name to v; any disequalities for name are superseded.
func (e *Env) Set(name string, v *Value) {
	e.m[name] = v
	if e.ne != nil {
		delete(e.ne, name)
	}
}

// Delete removes a binding.
func (e *Env) Delete(name string) {
	delete(e.m, name)
	if e.ne != nil {
		delete(e.ne, name)
	}
}

// Exclude records that name is known not to equal val (learned from the
// refuted edge of an equality branch).
func (e *Env) Exclude(name string, val int64) {
	if e.ne == nil {
		e.ne = map[string]map[int64]bool{}
	}
	if e.ne[name] == nil {
		e.ne[name] = map[int64]bool{}
	}
	e.ne[name][val] = true
}

// Excluded reports whether name is known to differ from val.
func (e *Env) Excluded(name string, val int64) bool {
	return e.ne != nil && e.ne[name] != nil && e.ne[name][val]
}

// Names returns the bound names, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.m))
	for k := range e.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of bindings.
func (e *Env) Len() int { return len(e.m) }
