package sym

import (
	"testing"
	"testing/quick"
)

func TestConstantFolding(t *testing.T) {
	cases := []struct {
		op   string
		l, r int64
		want int64
	}{
		{"+", 2, 3, 5}, {"-", 2, 3, -1}, {"*", 4, 3, 12}, {"/", 7, 2, 3},
		{"%", 7, 2, 1}, {"<<", 1, 10, 1024}, {">>", 1024, 4, 64},
		{"&", 0xff, 0x0f, 0x0f}, {"|", 1, 2, 3}, {"^", 3, 1, 2},
		{"==", 2, 2, 1}, {"!=", 2, 2, 0}, {"<", 1, 2, 1}, {"<=", 2, 2, 1},
		{">", 1, 2, 0}, {">=", 2, 2, 1}, {"&&", 1, 0, 0}, {"||", 1, 0, 1},
	}
	for _, c := range cases {
		v := NewExpr(c.op, NewInt(c.l), NewInt(c.r))
		n, ok := v.ConcreteInt()
		if !ok || n != c.want {
			t.Errorf("%d %s %d = %v, want %d", c.l, c.op, c.r, v, c.want)
		}
	}
}

func TestUnaryFolding(t *testing.T) {
	if n, _ := NewExpr("-", NewInt(5)).ConcreteInt(); n != -5 {
		t.Errorf("-5 = %d", n)
	}
	if n, _ := NewExpr("~", NewInt(0)).ConcreteInt(); n != -1 {
		t.Errorf("~0 = %d", n)
	}
	if n, _ := NewExpr("!", NewInt(0)).ConcreteInt(); n != 1 {
		t.Errorf("!0 = %d", n)
	}
}

func TestDivModByZeroStaysSymbolic(t *testing.T) {
	for _, op := range []string{"/", "%"} {
		v := NewExpr(op, NewInt(5), NewInt(0))
		if _, ok := v.ConcreteInt(); ok {
			t.Errorf("%s by zero folded", op)
		}
	}
}

func TestSymbolicStaysSymbolic(t *testing.T) {
	v := NewExpr("+", NewSym("a"), NewInt(1))
	if _, ok := v.ConcreteInt(); ok {
		t.Error("symbolic expr reported concrete")
	}
	if v.String() != "((S#a) + (I#1))" {
		t.Errorf("render = %s", v.String())
	}
}

func TestTable5Notation(t *testing.T) {
	if s := NewInt(42).String(); s != "(I#42)" {
		t.Errorf("int = %s", s)
	}
	if s := NewSym("gfp_mask").String(); s != "(S#gfp_mask)" {
		t.Errorf("sym = %s", s)
	}
	if s := NewTemp(1).String(); s != "(V#1)" {
		t.Errorf("temp = %s", s)
	}
	call := NewExpr("memalloc_noio_flags", NewSym("gfp_mask"))
	if s := call.String(); s != "(E#memalloc_noio_flags((S#gfp_mask)))" {
		t.Errorf("call = %s", s)
	}
}

func TestSymbols(t *testing.T) {
	v := NewExpr("+", NewExpr("*", NewSym("b"), NewSym("a")), NewSym("a"))
	got := v.Symbols()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("symbols = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := NewExpr("+", NewSym("x"), NewInt(1))
	b := NewExpr("+", NewSym("x"), NewInt(1))
	c := NewExpr("+", NewSym("y"), NewInt(1))
	if !Equal(a, b) {
		t.Error("identical exprs not equal")
	}
	if Equal(a, c) {
		t.Error("different exprs equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("nil handling wrong")
	}
}

func TestEnvCloneIsolation(t *testing.T) {
	e := NewEnv()
	e.Set("x", NewInt(1))
	c := e.Clone()
	c.Set("x", NewInt(2))
	c.Set("y", NewInt(3))
	if n, _ := e.Get("x").ConcreteInt(); n != 1 {
		t.Error("clone mutated parent")
	}
	if e.Get("y") != nil {
		t.Error("clone leaked into parent")
	}
	if e.Len() != 1 || c.Len() != 2 {
		t.Errorf("lens = %d, %d", e.Len(), c.Len())
	}
	c.Delete("y")
	if c.Get("y") != nil {
		t.Error("delete failed")
	}
}

func TestEnvNamesSorted(t *testing.T) {
	e := NewEnv()
	e.Set("b", NewInt(1))
	e.Set("a", NewInt(2))
	names := e.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

// Property: folding binary integer ops always agrees with direct evaluation.
func TestFoldMatchesGoSemantics(t *testing.T) {
	f := func(l, r int32) bool {
		a, b := int64(l), int64(r)
		checks := []struct {
			op   string
			want int64
			skip bool
		}{
			{"+", a + b, false},
			{"-", a - b, false},
			{"*", a * b, false},
			{"&", a & b, false},
			{"|", a | b, false},
			{"^", a ^ b, false},
			{"/", safeDiv(a, b), b == 0},
		}
		for _, c := range checks {
			if c.skip {
				continue
			}
			v := NewExpr(c.op, NewInt(a), NewInt(b))
			n, ok := v.ConcreteInt()
			if !ok || n != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Property: Equal is reflexive over randomly built expression trees.
func TestEqualReflexive(t *testing.T) {
	f := func(ops []uint8, leaf int64) bool {
		v := NewSym("seed")
		names := []string{"+", "-", "*", "&", "call"}
		for _, o := range ops {
			v = &Value{Kind: Expr, Op: names[int(o)%len(names)], Args: []*Value{v, NewInt(leaf)}}
		}
		return Equal(v, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: String never returns empty and nests parens in balance.
func TestStringBalancedParens(t *testing.T) {
	f := func(ops []uint8) bool {
		v := NewSym("x")
		for _, o := range ops {
			if o%2 == 0 {
				v = NewExpr("+", v, NewSym("y"))
			} else {
				v = NewExpr("f", v)
			}
		}
		s := v.String()
		depth := 0
		for _, r := range s {
			switch r {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth < 0 {
				return false
			}
		}
		return depth == 0 && len(s) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvExclusions(t *testing.T) {
	e := NewEnv()
	e.Exclude("order", 0)
	if !e.Excluded("order", 0) || e.Excluded("order", 1) || e.Excluded("other", 0) {
		t.Fatal("exclusion bookkeeping wrong")
	}
	// Clones carry exclusions independently.
	c := e.Clone()
	c.Exclude("order", 5)
	if e.Excluded("order", 5) {
		t.Fatal("clone leaked exclusion into parent")
	}
	if !c.Excluded("order", 0) {
		t.Fatal("clone lost parent exclusion")
	}
	// A concrete rebinding supersedes exclusions.
	e.Set("order", NewInt(3))
	if e.Excluded("order", 0) {
		t.Fatal("Set must clear exclusions")
	}
	e.Exclude("order", 7)
	e.Delete("order")
	if e.Excluded("order", 7) {
		t.Fatal("Delete must clear exclusions")
	}
}
