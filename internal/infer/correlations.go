package infer

import (
	"fmt"
	"sort"

	"pallas/internal/cast"
)

// InferCorrelations mines correlated-variable pairs from access patterns
// across the translation unit, following the MUVI approach the paper cites
// for validating rule-1.3 specs: two variables are correlated when they are
// accessed together in most functions that access either.
//
// For every function, the set of accessed identifiers (parameters and
// globals only — locals are function-private and cannot correlate across
// functions) is collected; a pair (A, B) is reported when
//
//	support    = |functions accessing both|        ≥ opts.MinCorrelationSupport
//	confidence = support / |functions accessing A| ≥ opts.MinCorrelationConfidence
//
// and symmetrically for B.
func InferCorrelations(tu *cast.TranslationUnit, opts Options) []Suggestion {
	globals := map[string]bool{}
	for _, g := range tu.Globals() {
		globals[g.Name] = true
	}

	// Per-function accessed shared-variable sets.
	var accessSets []map[string]bool
	for _, fn := range tu.Funcs() {
		params := map[string]bool{}
		for _, p := range fn.Params {
			params[p.Name] = true
		}
		set := map[string]bool{}
		for _, v := range cast.Idents(fn.Body) {
			if params[v] || globals[v] {
				set[v] = true
			}
		}
		if len(set) > 0 {
			accessSets = append(accessSets, set)
		}
	}

	occurrence := map[string]int{}
	coOccurrence := map[[2]string]int{}
	for _, set := range accessSets {
		vars := make([]string, 0, len(set))
		for v := range set {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for i, a := range vars {
			occurrence[a]++
			for _, b := range vars[i+1:] {
				coOccurrence[[2]string{a, b}]++
			}
		}
	}

	var pairs [][2]string
	for pair := range coOccurrence {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})

	var out []Suggestion
	for _, pair := range pairs {
		support := coOccurrence[pair]
		if support < opts.MinCorrelationSupport {
			continue
		}
		confA := float64(support) / float64(occurrence[pair[0]])
		confB := float64(support) / float64(occurrence[pair[1]])
		conf := confA
		if confB < conf {
			conf = confB
		}
		if conf < opts.MinCorrelationConfidence {
			continue
		}
		out = append(out, Suggestion{
			Directive: fmt.Sprintf("correlated %s %s", pair[0], pair[1]),
			Reason: fmt.Sprintf("accessed together in %d function(s), confidence %.0f%% (MUVI-style mining)",
				support, conf*100),
			Confidence: 0.4 + 0.5*conf*float64(min(support, 5))/5,
		})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
