package infer

import (
	"strings"
	"testing"

	"pallas/internal/cparse"
)

const pairSrc = `
struct page { unsigned long private; int state_active; };

int validate(struct page *page, unsigned long nodemask);

struct page *alloc_fast(struct page *page, unsigned long gfp_mask, unsigned long nodemask)
{
	validate(page, nodemask);
	page->private = gfp_mask;
	return page;
}

struct page *alloc_slow(struct page *page, unsigned long gfp_mask, unsigned long nodemask)
{
	int err = validate(page, nodemask);
	if (err)
		return 0;
	if (nodemask == 0)
		return 0;
	if (page->state_active)
		return 0;
	page->private = gfp_mask & 7;
	return page;
}
`

func suggestionsFor(t *testing.T) map[string]Suggestion {
	t.Helper()
	tu, err := cparse.Parse("t.c", pairSrc)
	if err != nil {
		t.Fatal(err)
	}
	sugg, err := Infer(tu, "alloc_fast", "alloc_slow", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Suggestion{}
	for _, s := range sugg {
		out[s.Directive] = s
		if s.Confidence <= 0 || s.Confidence > 1 {
			t.Errorf("confidence out of range: %+v", s)
		}
		if s.Reason == "" {
			t.Errorf("missing reason: %+v", s)
		}
	}
	return out
}

func TestInferImmutables(t *testing.T) {
	got := suggestionsFor(t)
	s, ok := got["immutable gfp_mask"]
	if !ok {
		t.Fatalf("gfp_mask not proposed; got %v", keys(got))
	}
	if s.Confidence < 0.8 {
		t.Errorf("mode-named scalar should be high confidence: %+v", s)
	}
	if _, ok := got["immutable page"]; ok {
		t.Error("page is written by the slow path; must not be immutable")
	}
}

func TestInferCondVars(t *testing.T) {
	got := suggestionsFor(t)
	if _, ok := got["cond nodemask"]; !ok {
		t.Errorf("nodemask condition not proposed; got %v", keys(got))
	}
	if _, ok := got["cond err"]; ok {
		t.Error("slow-only local err must not be proposed")
	}
}

func TestInferCheckReturn(t *testing.T) {
	got := suggestionsFor(t)
	if _, ok := got["check_return validate"]; !ok {
		t.Errorf("check_return validate not proposed; got %v", keys(got))
	}
}

func TestInferFaults(t *testing.T) {
	got := suggestionsFor(t)
	if _, ok := got["fault state_active"]; !ok {
		t.Errorf("fault state_active not proposed; got %v", keys(got))
	}
}

func TestInferPairAlwaysFirst(t *testing.T) {
	tu, err := cparse.Parse("t.c", pairSrc)
	if err != nil {
		t.Fatal(err)
	}
	sugg, err := Infer(tu, "alloc_fast", "alloc_slow", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 || sugg[0].Directive != "pair alloc_fast alloc_slow" {
		t.Errorf("pair not first: %+v", sugg)
	}
}

func TestInferUnknownFunc(t *testing.T) {
	tu, _ := cparse.Parse("t.c", pairSrc)
	if _, err := Infer(tu, "alloc_fast", "missing", DefaultOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestInferReturnsSet(t *testing.T) {
	src := `
int fast(int a) { if (a) return 2; return 0; }
int slow(int a) { if (a < 0) return -1; return 0; }
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	sugg, err := Infer(tu, "fast", "slow", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var haveReturns, haveMatch bool
	for _, s := range sugg {
		if s.Directive == "returns fast {-1, 0}" {
			haveReturns = true
		}
		if strings.HasPrefix(s.Directive, "match_output fast slow") {
			haveMatch = true
		}
	}
	if !haveReturns {
		t.Errorf("returns set not proposed: %+v", sugg)
	}
	if !haveMatch {
		t.Errorf("match_output not proposed despite disagreeing constants: %+v", sugg)
	}
}

func TestCorrelationMining(t *testing.T) {
	// preferred_zone and nodemask co-occur in three functions; alone in none.
	src := `
unsigned long nodemask;
struct zone { int id; };
int pick_a(struct zone *preferred_zone) { return nodemask & (1 << preferred_zone->id); }
int pick_b(struct zone *preferred_zone) { return nodemask | preferred_zone->id; }
int pick_c(struct zone *preferred_zone) { return (int)(nodemask >> preferred_zone->id); }
int unrelated(int x) { return x; }
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	sugg := InferCorrelations(tu, DefaultOptions())
	found := false
	for _, s := range sugg {
		if s.Directive == "correlated nodemask preferred_zone" {
			found = true
		}
		if strings.Contains(s.Directive, "unrelated") || strings.Contains(s.Directive, " x") {
			t.Errorf("spurious correlation: %+v", s)
		}
	}
	if !found {
		t.Errorf("expected nodemask~preferred_zone, got %+v", sugg)
	}
}

func TestCorrelationThresholds(t *testing.T) {
	// Only one co-occurrence: below default support of 2.
	src := `
unsigned long a_mask;
unsigned long b_mask;
int once(int unused) { return (int)(a_mask & b_mask); }
int other_a(int unused) { return (int)a_mask; }
int other_b(int unused) { return (int)b_mask; }
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if sugg := InferCorrelations(tu, DefaultOptions()); len(sugg) != 0 {
		t.Errorf("below-threshold pair proposed: %+v", sugg)
	}
	loose := Options{MinCorrelationSupport: 1, MinCorrelationConfidence: 0.3}
	if sugg := InferCorrelations(tu, loose); len(sugg) == 0 {
		t.Error("loose thresholds should propose the pair")
	}
}

func keys(m map[string]Suggestion) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
