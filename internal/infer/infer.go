// Package infer implements the automated extraction of semantic information
// that the paper leaves as future work ("We wish to leave the automated
// approach for extracting semantic information as the future work", §4).
//
// Given a fast path and its slow path, Infer proposes spec directives by
// treating the slow path as the reference implementation:
//
//   - parameters the slow path never writes are immutable candidates,
//   - variables the slow path tests but the fast path does not are
//     trigger-condition candidates,
//   - the slow path's concrete return constants become the defined return
//     set and a match_output obligation,
//   - callees whose result the slow path checks become check_return
//     obligations,
//   - state-looking fields tested only on the slow path become fault states,
//   - MUVI-style co-access mining (the paper cites Lu et al. [25] for this)
//     proposes correlated-variable pairs from access patterns across the
//     whole translation unit.
//
// Suggestions are ranked by confidence; a developer reviews them and keeps
// the ones that encode real semantics.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/difftool"
	"pallas/internal/paths"
)

// Suggestion is one proposed spec directive.
type Suggestion struct {
	// Directive is ready to paste into a spec ("immutable gfp_mask").
	Directive string
	// Reason explains the evidence.
	Reason string
	// Confidence in (0, 1]; higher is stronger evidence.
	Confidence float64
}

// Options tunes the inference heuristics.
type Options struct {
	// MinCorrelationSupport is the number of functions a variable pair must
	// co-occur in before a correlation is proposed (MUVI's support).
	MinCorrelationSupport int
	// MinCorrelationConfidence is co-occurrence over occurrence (MUVI's
	// confidence).
	MinCorrelationConfidence float64
}

// DefaultOptions mirrors MUVI's published thresholds scaled to corpus-size
// translation units.
func DefaultOptions() Options {
	return Options{MinCorrelationSupport: 2, MinCorrelationConfidence: 0.8}
}

// Infer proposes spec directives for the fast/slow pair within tu.
func Infer(tu *cast.TranslationUnit, fast, slow string, opts Options) ([]Suggestion, error) {
	ff := tu.Func(fast)
	sf := tu.Func(slow)
	if ff == nil || sf == nil {
		return nil, fmt.Errorf("infer: function not found (fast=%v slow=%v)", ff != nil, sf != nil)
	}
	if opts.MinCorrelationSupport <= 0 {
		opts = DefaultOptions()
	}
	var out []Suggestion
	out = append(out, Suggestion{
		Directive:  fmt.Sprintf("pair %s %s", fast, slow),
		Reason:     "declared fast/slow pair",
		Confidence: 1,
	})
	out = append(out, inferImmutables(sf, ff)...)
	out = append(out, inferCondVars(tu, ff, sf)...)
	out = append(out, inferReturns(tu, fast, ff, sf)...)
	out = append(out, inferCheckReturn(ff, sf)...)
	out = append(out, inferFaults(ff, sf)...)
	out = append(out, InferCorrelations(tu, opts)...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Directive < out[j].Directive
	})
	return dedupSuggestions(out), nil
}

func dedupSuggestions(in []Suggestion) []Suggestion {
	seen := map[string]bool{}
	var out []Suggestion
	for _, s := range in {
		if !seen[s.Directive] {
			seen[s.Directive] = true
			out = append(out, s)
		}
	}
	return out
}

// writtenVars collects the root identifiers a function assigns to.
func writtenVars(fn *cast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	cast.Walk(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.AssignExpr:
			if r := cast.RootIdent(x.L); r != "" {
				out[r] = true
			}
		case *cast.UnaryExpr:
			if x.Op.String() == "++" || x.Op.String() == "--" {
				if r := cast.RootIdent(x.X); r != "" {
					out[r] = true
				}
			}
		case *cast.PostfixExpr:
			if r := cast.RootIdent(x.X); r != "" {
				out[r] = true
			}
		}
		return true
	})
	return out
}

// inferImmutables proposes parameters shared by both paths that the slow
// path treats as read-only.
func inferImmutables(slow, fast *cast.FuncDecl) []Suggestion {
	slowWrites := writtenVars(slow)
	slowParams := map[string]bool{}
	for _, p := range slow.Params {
		slowParams[p.Name] = true
	}
	var out []Suggestion
	for _, p := range fast.Params {
		if p.Name == "" || !slowParams[p.Name] || slowWrites[p.Name] {
			continue
		}
		// Pointer parameters are usually the mutated object, not a mode
		// flag; scalars named like flags/masks/types are the strongest
		// immutable candidates.
		conf := 0.5
		if !p.Type.IsPointer() {
			conf = 0.7
		}
		if looksLikeModeName(p.Name) {
			conf = 0.9
		}
		out = append(out, Suggestion{
			Directive:  "immutable " + p.Name,
			Reason:     fmt.Sprintf("parameter %q is never written by the slow path", p.Name),
			Confidence: conf,
		})
	}
	return out
}

func looksLikeModeName(name string) bool {
	for _, hint := range []string{"flag", "mask", "type", "mode", "policy", "order"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// inferCondVars proposes variables the slow path branches on but the fast
// path never consults.
func inferCondVars(tu *cast.TranslationUnit, fast, slow *cast.FuncDecl) []Suggestion {
	d := difftool.Compare(tu, fast, slow)
	fastIdents := map[string]bool{}
	for _, v := range d.Fast.Vars {
		fastIdents[v] = true
	}
	seen := map[string]bool{}
	var out []Suggestion
	for _, cond := range d.CondsSlowOnly {
		for _, v := range identWords(cond) {
			if seen[v] || !fastIdents[v] {
				// Only propose variables both paths can see; slow-only
				// locals are not trigger conditions for the fast path.
				continue
			}
			seen[v] = true
			out = append(out, Suggestion{
				Directive:  "cond " + v,
				Reason:     fmt.Sprintf("slow path branches on %q (%s); fast path never does", v, cond),
				Confidence: 0.6,
			})
		}
	}
	return out
}

// inferReturns proposes the slow path's concrete return constants as the
// defined return set, plus the output-match obligation when they disagree.
func inferReturns(tu *cast.TranslationUnit, fastName string, fast, slow *cast.FuncDecl) []Suggestion {
	svals := paths.ReturnConstants(tu, slow)
	fvals := paths.ReturnConstants(tu, fast)
	var out []Suggestion
	if len(svals) > 0 {
		vals := make([]string, len(svals))
		for i, v := range svals {
			vals[i] = fmt.Sprintf("%d", v)
		}
		out = append(out, Suggestion{
			Directive:  fmt.Sprintf("returns %s {%s}", fastName, strings.Join(vals, ", ")),
			Reason:     "the slow path's concrete return constants define the expected set",
			Confidence: 0.7,
		})
	}
	if !sameInt64s(svals, fvals) && len(svals) > 0 && len(fvals) > 0 {
		out = append(out, Suggestion{
			Directive:  fmt.Sprintf("match_output %s %s", fast.Name, slow.Name),
			Reason:     fmt.Sprintf("concrete returns already disagree (fast %v vs slow %v)", fvals, svals),
			Confidence: 0.8,
		})
	}
	return out
}

func sameInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkedCallees collects callees whose result flows into a branch condition
// (r = f(...); if (r ...)) or is tested directly (if (f(...))).
func checkedCallees(fn *cast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	// Direct: call inside a condition.
	grabCond := func(cond cast.Expr) {
		cast.Walk(cond, func(n cast.Node) bool {
			if c, ok := n.(*cast.CallExpr); ok {
				if id, ok := c.Fun.(*cast.IdentExpr); ok {
					out[id.Name] = true
				}
			}
			return true
		})
	}
	assignedTo := map[string]string{} // var -> callee
	cast.Walk(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.IfStmt:
			grabCond(x.Cond)
			for _, v := range cast.Idents(x.Cond) {
				if callee, ok := assignedTo[v]; ok {
					out[callee] = true
				}
			}
		case *cast.WhileStmt:
			grabCond(x.Cond)
		case *cast.DeclStmt:
			if c, ok := x.Init.(*cast.CallExpr); ok {
				if id, ok := c.Fun.(*cast.IdentExpr); ok {
					assignedTo[x.Name] = id.Name
				}
			}
		case *cast.AssignExpr:
			if c, ok := x.R.(*cast.CallExpr); ok {
				if id, ok := c.Fun.(*cast.IdentExpr); ok {
					if r := cast.RootIdent(x.L); r != "" {
						assignedTo[r] = id.Name
					}
				}
			}
		}
		return true
	})
	return out
}

// inferCheckReturn proposes check_return for callees the slow path verifies
// and the fast path also invokes.
func inferCheckReturn(fast, slow *cast.FuncDecl) []Suggestion {
	slowChecked := checkedCallees(slow)
	fastCalls := map[string]bool{}
	for _, c := range cast.Calls(fast.Body) {
		fastCalls[c] = true
	}
	var names []string
	for callee := range slowChecked {
		if fastCalls[callee] {
			names = append(names, callee)
		}
	}
	sort.Strings(names)
	var out []Suggestion
	for _, n := range names {
		out = append(out, Suggestion{
			Directive:  "check_return " + n,
			Reason:     fmt.Sprintf("the slow path checks the result of %s(); the fast path calls it too", n),
			Confidence: 0.8,
		})
	}
	return out
}

// inferFaults proposes fault states: error/state-looking fields the slow
// path tests in flow control.
func inferFaults(fast, slow *cast.FuncDecl) []Suggestion {
	var out []Suggestion
	seen := map[string]bool{}
	grab := func(cond cast.Expr) {
		cast.Walk(cond, func(n cast.Node) bool {
			if m, ok := n.(*cast.MemberExpr); ok && looksLikeFaultName(m.Field) && !seen[m.Field] {
				seen[m.Field] = true
				out = append(out, Suggestion{
					Directive:  "fault " + m.Field,
					Reason:     fmt.Sprintf("slow path tests fault-looking state %q in flow control", cast.ExprString(m)),
					Confidence: 0.6,
				})
			}
			return true
		})
	}
	cast.Walk(slow.Body, func(n cast.Node) bool {
		if ifs, ok := n.(*cast.IfStmt); ok {
			grab(ifs.Cond)
		}
		return true
	})
	return out
}

func looksLikeFaultName(name string) bool {
	for _, hint := range []string{"err", "fail", "fault", "state", "active", "dirty"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

func identWords(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			j := i
			for j < len(s) && (s[j] == '_' || (s[j] >= 'a' && s[j] <= 'z') ||
				(s[j] >= 'A' && s[j] <= 'Z') || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			out = append(out, s[i:j])
			i = j
			continue
		}
		i++
	}
	return out
}
