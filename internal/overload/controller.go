package overload

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Shed reasons. Every Acquire failure is one of these (or a context error),
// so callers can map reasons to status codes and metrics.
var (
	// ErrQueueFull: the admission queue is at capacity; the request is shed
	// immediately rather than queued.
	ErrQueueFull = errors.New("overload: admission queue full")
	// ErrDeadline: the request's deadline passed while queued, or the
	// estimated queue wait already exceeds it at arrival.
	ErrDeadline = errors.New("overload: deadline cannot be met")
	// ErrDraining: the controller is draining; queued and new requests are
	// rejected immediately so shutdown never waits on unadmitted work.
	ErrDraining = errors.New("overload: draining")
)

// waiter is one queued request.
type waiter struct {
	ready       chan error // buffered; nil = admitted, else the shed reason
	deadline    time.Time
	hasDeadline bool
}

// ShedStats counts shed requests by reason.
type ShedStats struct {
	QueueFull int64 `json:"queue_full"`
	Deadline  int64 `json:"deadline"`
	Draining  int64 `json:"draining"`
	Canceled  int64 `json:"canceled"`
}

// Total sums all shed reasons.
func (s ShedStats) Total() int64 {
	return s.QueueFull + s.Deadline + s.Draining + s.Canceled
}

// Controller is the bounded, deadline-aware admission queue in front of the
// analysis gate. At most Limiter.Limit() requests are admitted concurrently;
// up to maxQueue more wait FIFO. A request is shed — never silently parked —
// when the queue is full, when its deadline has passed or provably cannot be
// met, or when the controller is draining. Expired waiters are reaped at
// dispatch time so a dead request never consumes a freed slot.
type Controller struct {
	limiter  *Limiter
	maxQueue int
	now      func() time.Time

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	draining bool
	admitted int64
	shed     ShedStats
}

// NewController returns a controller admitting through limiter with at most
// maxQueue waiting requests (maxQueue < 0 means unbounded, 0 means no
// queueing — shed as soon as the limit is reached).
func NewController(limiter *Limiter, maxQueue int) *Controller {
	return &Controller{limiter: limiter, maxQueue: maxQueue, now: time.Now}
}

// Acquire blocks until the request is admitted or shed. deadline is the
// point after which admission is worthless (zero = no deadline); ctx
// cancellation (e.g. the client hanging up) abandons the wait. On nil
// return the caller holds a slot and must call Release exactly once.
func (c *Controller) Acquire(ctx context.Context, deadline time.Time) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.draining {
		c.shed.Draining++
		c.mu.Unlock()
		return ErrDraining
	}
	now := c.now()
	hasDeadline := !deadline.IsZero()
	if hasDeadline && !now.Before(deadline) {
		c.shed.Deadline++
		c.mu.Unlock()
		return ErrDeadline
	}
	if c.inflight < c.limiter.Limit() && len(c.queue) == 0 {
		c.inflight++
		c.admitted++
		c.mu.Unlock()
		return nil
	}
	if c.maxQueue >= 0 && len(c.queue) >= c.maxQueue {
		c.shed.QueueFull++
		c.mu.Unlock()
		return ErrQueueFull
	}
	// Shed-on-arrival: if the estimated wait at this queue position already
	// overruns the deadline, failing now (with an honest Retry-After) beats
	// holding the slot until the deadline does it for us.
	if hasDeadline && now.Add(c.estimateLocked(len(c.queue))).After(deadline) {
		c.shed.Deadline++
		c.mu.Unlock()
		return ErrDeadline
	}
	w := &waiter{ready: make(chan error, 1), deadline: deadline, hasDeadline: hasDeadline}
	c.queue = append(c.queue, w)
	c.mu.Unlock()

	var timer *time.Timer
	var expired <-chan time.Time
	if hasDeadline {
		timer = time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case err := <-w.ready:
		return err
	case <-expired:
		return c.abandon(w, ErrDeadline)
	case <-ctx.Done():
		return c.abandon(w, ctx.Err())
	}
}

// abandon removes a waiter whose deadline or context fired. If dispatch or
// drain already settled the waiter concurrently, that verdict is honoured:
// an admission is immediately released (the caller is gone), a shed reason
// replaces ours.
func (c *Controller) abandon(w *waiter, reason error) error {
	c.mu.Lock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			if errors.Is(reason, ErrDeadline) {
				c.shed.Deadline++
			} else {
				c.shed.Canceled++
			}
			c.mu.Unlock()
			return reason
		}
	}
	c.mu.Unlock()
	if err := <-w.ready; err != nil {
		return err
	}
	// Admitted after the caller gave up: hand the slot straight back.
	c.mu.Lock()
	c.inflight--
	c.dispatchLocked()
	c.mu.Unlock()
	return reason
}

// Release returns a slot. latency is the request's service time (admission
// to completion); it feeds the adaptive limiter, which may shrink or grow
// the effective limit before the next waiter is dispatched.
func (c *Controller) Release(latency time.Duration) {
	c.limiter.Observe(latency)
	c.mu.Lock()
	c.inflight--
	c.dispatchLocked()
	c.mu.Unlock()
}

// dispatchLocked admits queued waiters while slots are free, reaping
// expired waiters instead of dispatching them. c.mu must be held.
func (c *Controller) dispatchLocked() {
	limit := c.limiter.Limit()
	now := c.now()
	for len(c.queue) > 0 && c.inflight < limit {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.hasDeadline && now.After(w.deadline) {
			c.shed.Deadline++
			w.ready <- ErrDeadline
			continue
		}
		c.inflight++
		c.admitted++
		w.ready <- nil
	}
}

// Drain rejects every queued waiter with ErrDraining and refuses all
// further Acquires, so graceful shutdown waits only for already-admitted
// work. Idempotent.
func (c *Controller) Drain() {
	c.mu.Lock()
	c.draining = true
	for _, w := range c.queue {
		c.shed.Draining++
		w.ready <- ErrDraining
	}
	c.queue = nil
	c.mu.Unlock()
}

// estimateLocked predicts the queue wait for a request entering at the
// given queue position: requests drain at limit per recent-latency.
// c.mu must be held.
func (c *Controller) estimateLocked(position int) time.Duration {
	recent := c.limiter.RecentLatency()
	if recent == 0 {
		return 0 // no samples yet: admit optimistically
	}
	limit := c.limiter.Limit()
	if limit < 1 {
		limit = 1
	}
	waves := float64(position)/float64(limit) + 1
	return time.Duration(waves * recent * float64(time.Second))
}

// RetryAfter estimates how long a shed caller should wait before retrying:
// the time for the current queue to drain plus one service time. Minimum
// one recent latency (or 1s before any sample) so the hint is never zero.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.estimateLocked(len(c.queue))
	if d == 0 {
		d = time.Second
	}
	return d
}

// QueueDepth returns how many requests are waiting for admission.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// InFlight returns how many requests currently hold a slot.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// EffectiveLimit returns the limiter's current effective concurrency.
func (c *Controller) EffectiveLimit() int { return c.limiter.Limit() }

// Admitted returns how many requests have been admitted in total.
func (c *Controller) Admitted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted
}

// Shed returns the shed counts by reason.
func (c *Controller) Shed() ShedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shed
}

// Draining reports whether Drain was called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}
