// Package overload is the admission-control layer in front of the Pallas
// analysis engine. The serving path (`pallas serve`) and self-paced batch
// runs share four primitives:
//
//   - Limiter: an AIMD adaptive-concurrency controller that tracks observed
//     latency against a moving baseline and shrinks or grows the effective
//     concurrency limit between a configured floor and ceiling;
//   - Controller: a bounded, deadline-aware admission queue in front of the
//     worker gate — requests beyond the effective limit wait FIFO, are shed
//     when the queue is full or their deadline cannot be met, and expired
//     waiters are reaped before dispatch;
//   - RateLimiter: per-client token buckets plus a global bucket, so one
//     chatty client cannot monopolize the queue;
//   - Breaker: a three-state circuit breaker (closed / open / half-open)
//     used to trip the persistent cache tier to memory-only mode on disk
//     faults instead of failing requests.
//
// The design goal is the ROADMAP's: under a burst of slow, adversarial
// analyses the server sheds a bounded fraction of load with honest
// Retry-After hints and keeps admitted-request latency near the unloaded
// baseline, instead of queueing unboundedly and blowing every deadline.
package overload

import (
	"sync"
	"time"
)

// Limiter defaults.
const (
	// DefaultWindow is how many latency observations are accumulated before
	// each limit adjustment decision.
	DefaultWindow = 8
	// DefaultTolerance is how far recent latency may rise above the baseline
	// (as a ratio) before the limit is multiplicatively decreased.
	DefaultTolerance = 2.0
	// decreaseFactor is the multiplicative-decrease applied when recent
	// latency exceeds tolerance × baseline.
	decreaseFactor = 0.75
	// baselineDecay lets the latency floor slowly forget, so a permanently
	// slower workload re-anchors the baseline instead of pinning the limit
	// at the floor forever. Applied per observation.
	baselineDecay = 1.001
	// recentAlpha is the EWMA weight of the newest sample in the fast
	// (recent) latency estimate.
	recentAlpha = 0.3
)

// Limiter is an AIMD (additive-increase / multiplicative-decrease) adaptive
// concurrency limiter. Feed it one Observe per completed request; read the
// current effective limit with Limit. All methods are safe for concurrent
// use.
//
// The baseline is a decayed minimum of observed latency — an estimate of
// what one request costs on an unloaded system. While recent latency stays
// within Tolerance × baseline the limit creeps up by one per window toward
// the ceiling; when it exceeds the tolerance the limit is cut
// multiplicatively toward the floor. The limit starts at the ceiling, so an
// unloaded system behaves exactly like a fixed-width pool.
type Limiter struct {
	min, max  int
	window    int
	tolerance float64

	mu       sync.Mutex
	limit    float64
	baseline float64 // decayed-minimum latency, seconds; 0 until first sample
	recent   float64 // fast EWMA of latency, seconds
	samples  int     // observations since the last adjustment
}

// NewLimiter returns a limiter adapting between min and max concurrent
// units. min is clamped to [1, max]; max must be >= 1. The effective limit
// starts at max.
func NewLimiter(min, max int) *Limiter {
	if max < 1 {
		max = 1
	}
	if min < 1 {
		min = 1
	}
	if min > max {
		min = max
	}
	return &Limiter{
		min:       min,
		max:       max,
		window:    DefaultWindow,
		tolerance: DefaultTolerance,
		limit:     float64(max),
	}
}

// Observe records one completed request's service latency and, once per
// window, adjusts the effective limit.
func (l *Limiter) Observe(latency time.Duration) {
	sec := latency.Seconds()
	if sec < 0 {
		sec = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.baseline == 0 || sec < l.baseline {
		l.baseline = sec
	} else {
		l.baseline *= baselineDecay
	}
	if l.recent == 0 {
		l.recent = sec
	} else {
		l.recent = l.recent*(1-recentAlpha) + sec*recentAlpha
	}
	l.samples++
	if l.samples < l.window {
		return
	}
	l.samples = 0
	if l.baseline > 0 && l.recent > l.baseline*l.tolerance {
		l.limit *= decreaseFactor
		if l.limit < float64(l.min) {
			l.limit = float64(l.min)
		}
	} else if l.limit < float64(l.max) {
		l.limit++
		if l.limit > float64(l.max) {
			l.limit = float64(l.max)
		}
	}
}

// Limit returns the current effective concurrency limit, in [min, max].
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int(l.limit)
	if n < l.min {
		n = l.min
	}
	return n
}

// Max returns the limiter's ceiling (the configured worker count).
func (l *Limiter) Max() int { return l.max }

// Min returns the limiter's floor.
func (l *Limiter) Min() int { return l.min }

// RecentLatency returns the fast latency estimate in seconds (0 before the
// first observation). The admission controller uses it for Retry-After
// estimates.
func (l *Limiter) RecentLatency() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recent
}
