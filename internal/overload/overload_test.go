package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Limiter ---

func TestLimiterStartsAtMaxAndHoldsUnderFlatLatency(t *testing.T) {
	l := NewLimiter(2, 8)
	if l.Limit() != 8 {
		t.Fatalf("initial limit = %d, want 8", l.Limit())
	}
	for i := 0; i < 10*DefaultWindow; i++ {
		l.Observe(10 * time.Millisecond)
	}
	if l.Limit() != 8 {
		t.Fatalf("flat-latency limit = %d, want 8 (no reason to shrink)", l.Limit())
	}
}

func TestLimiterShrinksUnderInflatedLatencyAndRespectsFloor(t *testing.T) {
	l := NewLimiter(2, 8)
	// Anchor the baseline at 10ms.
	for i := 0; i < DefaultWindow; i++ {
		l.Observe(10 * time.Millisecond)
	}
	// Then blow past tolerance × baseline for many windows.
	for i := 0; i < 50*DefaultWindow; i++ {
		l.Observe(200 * time.Millisecond)
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("inflated-latency limit = %d, want floor 2", got)
	}
}

func TestLimiterGrowsBackAfterRecovery(t *testing.T) {
	l := NewLimiter(1, 6)
	for i := 0; i < DefaultWindow; i++ {
		l.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 50*DefaultWindow; i++ {
		l.Observe(500 * time.Millisecond)
	}
	if l.Limit() != 1 {
		t.Fatalf("limit = %d, want 1 before recovery", l.Limit())
	}
	// Latency returns to baseline: additive increase climbs back to max.
	for i := 0; i < 20*DefaultWindow; i++ {
		l.Observe(10 * time.Millisecond)
	}
	if l.Limit() != 6 {
		t.Fatalf("recovered limit = %d, want 6", l.Limit())
	}
}

func TestLimiterClampsConstructorArgs(t *testing.T) {
	l := NewLimiter(0, 0)
	if l.Min() != 1 || l.Max() != 1 || l.Limit() != 1 {
		t.Fatalf("min/max/limit = %d/%d/%d, want 1/1/1", l.Min(), l.Max(), l.Limit())
	}
	if l := NewLimiter(9, 4); l.Min() != 4 {
		t.Fatalf("min clamped to %d, want 4 (<= max)", l.Min())
	}
}

// --- Breaker ---

// testClock is an injectable manual clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1700000000, 0)} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clk := newTestClock()
	b := NewBreaker(3, time.Second)
	b.now = clk.now

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("breaker must stay closed below threshold")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown must refuse")
	}

	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("post-cooldown breaker must admit one probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller during probe must be refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit")
	}
	b.Success()
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newTestClock()
	b := NewBreaker(1, time.Second)
	b.now = clk.now
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %v trips = %d, want open/2", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker must refuse within the new cooldown")
	}
}

// TestBreakerInconclusiveProbeReleasesSlot pins the neutral-outcome path: a
// probe that proves nothing (e.g. a cache lookup hitting ENOENT) must hand
// the probe slot back instead of wedging the breaker half-open forever.
func TestBreakerInconclusiveProbeReleasesSlot(t *testing.T) {
	clk := newTestClock()
	b := NewBreaker(1, time.Second)
	b.now = clk.now
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Inconclusive()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after inconclusive probe = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("next caller after an inconclusive probe must get the probe slot")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures must not trip")
	}
}

// --- RateLimiter ---

func TestRateLimiterPerClientBurstAndRefill(t *testing.T) {
	clk := newTestClock()
	r := NewRateLimiter(2, 2, 0, 0)
	r.now = clk.now

	for i := 0; i < 2; i++ {
		if ok, _ := r.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := r.Allow("a")
	if ok {
		t.Fatal("post-burst request must be refused")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s]", wait)
	}
	// A different client is unaffected.
	if ok, _ := r.Allow("b"); !ok {
		t.Fatal("second client must have its own bucket")
	}
	// Refill restores a token.
	clk.advance(time.Second)
	if ok, _ := r.Allow("a"); !ok {
		t.Fatal("refilled bucket must admit")
	}
	if r.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", r.Denied())
	}
}

func TestRateLimiterGlobalBucket(t *testing.T) {
	clk := newTestClock()
	r := NewRateLimiter(0, 0, 1, 1)
	r.now = clk.now
	if ok, _ := r.Allow("a"); !ok {
		t.Fatal("first request within global burst refused")
	}
	if ok, _ := r.Allow("b"); ok {
		t.Fatal("global bucket must apply across clients")
	}
}

func TestRateLimiterDenialRefundsGlobalToken(t *testing.T) {
	clk := newTestClock()
	r := NewRateLimiter(1, 1, 10, 10)
	r.now = clk.now
	r.Allow("a")
	if ok, _ := r.Allow("a"); ok {
		t.Fatal("client bucket must refuse")
	}
	// The refused request must not have consumed global capacity: nine more
	// distinct clients (10 global burst - 1 spent) all fit.
	for i := 0; i < 9; i++ {
		if ok, _ := r.Allow(string(rune('b' + i))); !ok {
			t.Fatalf("client %d refused: per-client denial leaked a global token", i)
		}
	}
}

func TestRateLimiterZeroValueAdmitsEverything(t *testing.T) {
	var r *RateLimiter
	if ok, _ := r.Allow("x"); !ok {
		t.Fatal("nil limiter must admit")
	}
	r2 := NewRateLimiter(0, 0, 0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := r2.Allow("x"); !ok {
			t.Fatal("unlimited limiter must admit")
		}
	}
}

func TestRateLimiterEvictsIdleClients(t *testing.T) {
	clk := newTestClock()
	r := NewRateLimiter(100, 1, 0, 0)
	r.now = clk.now
	for i := 0; i < maxClientBuckets; i++ {
		r.Allow(string(rune(i)))
	}
	// Everyone idles long enough to refill, so the next new client triggers
	// a sweep that clears them.
	clk.advance(time.Minute)
	r.Allow("fresh")
	r.mu.Lock()
	n := len(r.clients)
	r.mu.Unlock()
	if n > 2 {
		t.Fatalf("bucket map holds %d entries after sweep, want <= 2", n)
	}
}

// --- Controller ---

func TestControllerAdmitsUpToLimitThenQueues(t *testing.T) {
	c := NewController(NewLimiter(2, 2), 8)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- c.Acquire(context.Background(), time.Time{}) }()
	waitFor(t, func() bool { return c.QueueDepth() == 1 })
	select {
	case err := <-admitted:
		t.Fatalf("third acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	c.Release(time.Millisecond)
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	if c.InFlight() != 2 || c.QueueDepth() != 0 {
		t.Fatalf("inflight/queue = %d/%d, want 2/0", c.InFlight(), c.QueueDepth())
	}
}

func TestControllerShedsWhenQueueFull(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 1)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	go c.Acquire(context.Background(), time.Time{}) // fills the queue
	waitFor(t, func() bool { return c.QueueDepth() == 1 })
	err := c.Acquire(nil, time.Time{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if c.Shed().QueueFull != 1 {
		t.Fatalf("shed stats = %+v", c.Shed())
	}
}

func TestControllerShedsExpiredDeadlineOnArrival(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 4)
	err := c.Acquire(nil, time.Now().Add(-time.Second))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestControllerShedsUnmeetableDeadlineWhileQueued(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 4)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := c.Acquire(context.Background(), time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline shed took %v, want ~30ms", elapsed)
	}
	if c.Shed().Deadline != 1 {
		t.Fatalf("shed stats = %+v", c.Shed())
	}
	c.Release(time.Millisecond)
	if c.InFlight() != 0 {
		t.Fatalf("inflight = %d after release, want 0", c.InFlight())
	}
}

func TestControllerReapsExpiredWaitersBeforeDispatch(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 4)
	c.now = time.Now
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Two waiters: the first with a deadline that will be long past when the
	// slot frees, the second without. Stop the first waiter's own timer from
	// firing by giving it... we can't; instead both run concurrently and we
	// assert the live one gets the slot and the dead one is shed.
	dead := make(chan error, 1)
	live := make(chan error, 1)
	go func() { dead <- c.Acquire(context.Background(), time.Now().Add(10*time.Millisecond)) }()
	waitFor(t, func() bool { return c.QueueDepth() == 1 })
	go func() { live <- c.Acquire(context.Background(), time.Time{}) }()
	waitFor(t, func() bool { return c.QueueDepth() == 2 })
	time.Sleep(30 * time.Millisecond) // let the first waiter expire
	c.Release(time.Millisecond)
	if err := <-dead; !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired waiter got %v, want ErrDeadline", err)
	}
	if err := <-live; err != nil {
		t.Fatalf("live waiter got %v, want admission", err)
	}
}

func TestControllerDrainRejectsQueuedImmediately(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 8)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { queued <- c.Acquire(context.Background(), time.Time{}) }()
	}
	waitFor(t, func() bool { return c.QueueDepth() == 3 })
	start := time.Now()
	c.Drain()
	for i := 0; i < 3; i++ {
		if err := <-queued; !errors.Is(err, ErrDraining) {
			t.Fatalf("queued waiter got %v, want ErrDraining", err)
		}
	}
	if time.Since(start) > time.Second {
		t.Fatal("drain held queued waiters instead of rejecting them")
	}
	if err := c.Acquire(nil, time.Time{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire = %v, want ErrDraining", err)
	}
	if got := c.Shed().Draining; got != 4 {
		t.Fatalf("draining sheds = %d, want 4", got)
	}
	// The admitted request still completes normally.
	c.Release(time.Millisecond)
	if c.InFlight() != 0 {
		t.Fatalf("inflight = %d", c.InFlight())
	}
}

func TestControllerContextCancelRemovesWaiter(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 8)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Acquire(ctx, time.Time{}) }()
	waitFor(t, func() bool { return c.QueueDepth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.QueueDepth() != 0 {
		t.Fatal("canceled waiter left in queue")
	}
	// The freed queue position is usable and the slot was never leaked.
	c.Release(time.Millisecond)
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c.Release(time.Millisecond)
}

func TestControllerRetryAfterIsPositive(t *testing.T) {
	c := NewController(NewLimiter(1, 1), 8)
	if c.RetryAfter() <= 0 {
		t.Fatal("retry-after must be positive before any sample")
	}
	if err := c.Acquire(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c.Release(50 * time.Millisecond)
	if ra := c.RetryAfter(); ra <= 0 {
		t.Fatalf("retry-after = %v, want > 0", ra)
	}
}

// TestControllerHammer races many acquirers against releases, cancels,
// deadline expiries and a late drain; under -race it proves the accounting
// invariants: inflight never exceeds the ceiling or goes negative, and
// every admission is eventually released.
func TestControllerHammer(t *testing.T) {
	const workers, goroutines = 4, 64
	c := NewController(NewLimiter(2, workers), 16)
	var peak, neg atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var deadline time.Time
				if g%3 == 0 {
					deadline = time.Now().Add(time.Duration(i%5) * time.Millisecond)
				}
				ctx, cancel := context.WithCancel(context.Background())
				if g%5 == 0 && i%7 == 0 {
					cancel() // pre-canceled acquire
				}
				err := c.Acquire(ctx, deadline)
				cancel()
				if err != nil {
					continue
				}
				n := int64(c.InFlight())
				if n > peak.Load() {
					peak.Store(n)
				}
				if n < 0 {
					neg.Store(1)
				}
				c.Release(time.Duration(i%3) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if neg.Load() != 0 {
		t.Fatal("inflight went negative")
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak inflight = %d, want <= %d", p, workers)
	}
	if c.InFlight() != 0 || c.QueueDepth() != 0 {
		t.Fatalf("leaked state: inflight=%d queue=%d", c.InFlight(), c.QueueDepth())
	}
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
