package overload

import (
	"math"
	"sync"
	"time"
)

// maxClientBuckets bounds the per-client bucket map so an attacker rotating
// client identities cannot balloon the heap; when exceeded, buckets that
// have fully refilled (i.e. idle clients) are evicted.
const maxClientBuckets = 4096

// bucket is one token bucket with lazy refill.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills for the elapsed time and, if at least one token is present,
// consumes it. On refusal it returns how long until a token will be
// available.
func (b *bucket) take(now time.Time, rate, burst float64) (bool, time.Duration) {
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(burst, b.tokens+elapsed*rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rate
	return false, time.Duration(need * float64(time.Second))
}

// RateLimiter enforces per-client and global token buckets. A zero rate
// disables the corresponding bucket, so RateLimiter{} admits everything.
// All methods are safe for concurrent use.
type RateLimiter struct {
	perSec      float64 // per-client refill rate; 0 = unlimited
	burst       float64
	globalSec   float64 // server-wide refill rate; 0 = unlimited
	globalBurst float64
	now         func() time.Time // injectable clock for tests

	mu      sync.Mutex
	global  bucket
	clients map[string]*bucket
	denied  int64
}

// NewRateLimiter returns a limiter with the given per-client and global
// rates (requests per second). A burst <= 0 defaults to the corresponding
// rate (rounded up, minimum 1); a rate <= 0 disables that bucket.
func NewRateLimiter(perSec, burst, globalSec, globalBurst float64) *RateLimiter {
	if perSec > 0 && burst <= 0 {
		burst = math.Max(1, math.Ceil(perSec))
	}
	if globalSec > 0 && globalBurst <= 0 {
		globalBurst = math.Max(1, math.Ceil(globalSec))
	}
	r := &RateLimiter{
		perSec: perSec, burst: burst,
		globalSec: globalSec, globalBurst: globalBurst,
		now:     time.Now,
		clients: map[string]*bucket{},
	}
	r.global = bucket{tokens: globalBurst, last: r.now()}
	return r
}

// Allow charges one request to the named client. It returns false with a
// retry-after hint when either the client's bucket or the global bucket is
// out of tokens. A denial consumes nothing, so the hint stays honest under
// repeated polling.
func (r *RateLimiter) Allow(client string) (bool, time.Duration) {
	if r == nil || (r.perSec <= 0 && r.globalSec <= 0) {
		return true, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.globalSec > 0 {
		if ok, wait := r.global.take(now, r.globalSec, r.globalBurst); !ok {
			r.denied++
			return false, wait
		}
	}
	if r.perSec > 0 {
		b, ok := r.clients[client]
		if !ok {
			r.evictIdleLocked(now)
			b = &bucket{tokens: r.burst, last: now}
			r.clients[client] = b
		}
		if ok, wait := b.take(now, r.perSec, r.burst); !ok {
			// Refund the global token: the request was never admitted.
			if r.globalSec > 0 {
				r.global.tokens = math.Min(r.globalBurst, r.global.tokens+1)
			}
			r.denied++
			return false, wait
		}
	}
	return true, 0
}

// Denied returns how many requests the limiter has refused.
func (r *RateLimiter) Denied() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.denied
}

// evictIdleLocked drops buckets that have fully refilled (their owner has
// been idle at least burst/rate seconds) once the map outgrows the bound.
func (r *RateLimiter) evictIdleLocked(now time.Time) {
	if len(r.clients) < maxClientBuckets {
		return
	}
	for k, b := range r.clients {
		if b.tokens+now.Sub(b.last).Seconds()*r.perSec >= r.burst {
			delete(r.clients, k)
		}
	}
}
