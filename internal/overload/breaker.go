package overload

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the protected resource is trusted; calls flow through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the resource is tripped; calls are skipped until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is in
	// flight to decide between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for health endpoints and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Breaker is a three-state circuit breaker: Threshold consecutive failures
// trip it open, Allow answers false (skip the resource) until Cooldown
// elapses, then exactly one caller is admitted as a half-open probe — its
// success closes the breaker, its failure re-opens it for another cooldown.
// All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
}

// NewBreaker returns a closed breaker; threshold <= 0 means
// DefaultBreakerThreshold, cooldown <= 0 means DefaultBreakerCooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the protected call should be attempted. While open
// it returns false; after the cooldown the first caller gets true (the
// half-open probe) and concurrent callers keep getting false until the
// probe's Success or Failure settles the state. Every Allow(true) must be
// followed by exactly one Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful protected call: it resets the failure count
// and closes a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.state = BreakerClosed
	}
	b.probing = false
}

// Failure records a failed protected call: a half-open probe failure or the
// threshold-th consecutive closed-state failure trips the breaker open and
// restarts the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
	b.probing = false
}

// Inconclusive releases a probe slot without a verdict: the protected call
// neither succeeded nor failed — e.g. a cache lookup that found nothing to
// read, which proves neither health nor fault. A half-open breaker stays
// half-open and the next Allow grants a fresh probe; failure streaks are
// untouched. Without this outlet a neutral probe would wedge the breaker
// half-open forever.
func (b *Breaker) Inconclusive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State returns the breaker's current position (an open breaker past its
// cooldown still reads open until the next Allow flips it to half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
