// Package cparse implements a recursive-descent parser for the Pallas C
// subset. It accepts the kernel-style C that the corpus and the paper's
// examples are written in: struct/union/enum definitions, typedefs, globals,
// function definitions with full statement and expression grammars, pointers,
// casts, and `// @pallas:` annotation comments.
//
// The parser is tolerant about constructs it does not model deeply (e.g. GNU
// attributes are skipped by the preprocessor); everything it does accept is
// represented faithfully in the cast AST.
package cparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/ctok"
)

// Parser parses one token stream into a TranslationUnit.
type Parser struct {
	toks []ctok.Token
	pos  int
	file string
	errs []error

	// typedefNames lets the parser disambiguate "name ident" declarations.
	typedefNames map[string]bool

	annotations []cast.Annotation
	enumCounter int64
}

// knownTypedefs seeds typedef names that kernel-style code uses without
// declaring in the merged unit.
var knownTypedefs = []string{
	"u8", "u16", "u32", "u64", "s8", "s16", "s32", "s64",
	"uint8_t", "uint16_t", "uint32_t", "uint64_t",
	"int8_t", "int16_t", "int32_t", "int64_t",
	"size_t", "ssize_t", "loff_t", "off_t", "pid_t", "gfp_t",
	"bool", "atomic_t", "spinlock_t", "dma_addr_t", "sector_t",
	"nodemask_t", "wait_queue_head_t",
}

// Parse parses src (already preprocessed) from the named file.
func Parse(file, src string) (*cast.TranslationUnit, error) {
	lx := ctok.NewLexer(file, src)
	lx.KeepComments = true
	var toks []ctok.Token
	var annotations []cast.Annotation
	for {
		t := lx.Next()
		if t.Kind == ctok.EOF {
			break
		}
		if t.Kind == ctok.LineComment || t.Kind == ctok.BlockComment {
			if a, ok := parseAnnotation(t); ok {
				annotations = append(annotations, a)
			}
			continue
		}
		toks = append(toks, t)
	}
	p := &Parser{toks: toks, file: file, typedefNames: map[string]bool{}, annotations: annotations}
	for _, n := range knownTypedefs {
		p.typedefNames[n] = true
	}
	tu := &cast.TranslationUnit{File: file, Annotations: annotations}
	for !p.atEnd() {
		start := p.pos
		errsBefore := len(p.errs)
		d := p.parseTopLevel()
		if d != nil {
			tu.Decls = append(tu.Decls, d)
		}
		if p.pos == start {
			// No progress: the declaration is unparseable here. Report once
			// and resynchronize at the next top-level boundary so the rest
			// of the unit still parses (and gets checked).
			p.errorf(p.cur().Pos, "unexpected token %s", p.cur())
			p.syncTopLevel()
		} else if len(p.errs) > errsBefore {
			// The declaration parsed with diagnostics; if it stopped mid-
			// construct (e.g. a truncated function), realign before the next
			// one so one broken definition cannot cascade.
			p.syncAfterError()
		}
	}
	var err error
	if all := append(lx.Errors(), p.errs...); len(all) > 0 {
		if len(all) > maxParseErrors {
			all = append(all[:maxParseErrors:maxParseErrors],
				fmt.Errorf("%s: too many errors, further diagnostics suppressed", file))
		}
		msgs := make([]string, 0, len(all))
		for _, e := range all {
			msgs = append(msgs, e.Error())
		}
		err = errors.New(strings.Join(msgs, "\n"))
	}
	return tu, err
}

// maxParseErrors caps the diagnostics one unit may accumulate; adversarial
// inputs otherwise produce one error per token and quadratic join costs.
const maxParseErrors = 64

// syncTopLevel skips tokens until a top-level declaration boundary: past a
// ';' or a closing '}' at bracket depth zero. Guaranteed to make progress.
func (p *Parser) syncTopLevel() {
	depth := 0
	for !p.atEnd() {
		switch p.next().Kind {
		case ctok.Semi:
			if depth == 0 {
				return
			}
		case ctok.LBrace:
			depth++
		case ctok.RBrace:
			if depth <= 1 {
				return
			}
			depth--
		}
	}
}

// syncAfterError realigns after a partially parsed declaration: if the
// current token cannot begin a top-level declaration, skip to the next
// boundary. Keeps a truncated function from swallowing its successors.
func (p *Parser) syncAfterError() {
	if p.atEnd() || p.atTopLevelStart() {
		return
	}
	p.syncTopLevel()
}

// atTopLevelStart reports whether the current token plausibly begins a new
// top-level declaration (used only for recovery, so approximate is fine).
func (p *Parser) atTopLevelStart() bool {
	switch p.cur().Kind {
	case ctok.KwTypedef, ctok.KwStruct, ctok.KwUnion, ctok.KwEnum,
		ctok.KwStatic, ctok.KwExtern, ctok.KwInline, ctok.Semi:
		return true
	}
	return p.typeStarts()
}

// atFunctionBoundary reports whether the current token looks like the start
// of a new top-level definition: column 1 and a declaration-start token.
// Recovery-only heuristic — it keeps a brace-mismatched function body from
// swallowing the definitions that follow it.
func (p *Parser) atFunctionBoundary() bool {
	t := p.cur()
	return t.Pos.Col == 1 && t.Kind != ctok.Semi && p.atTopLevelStart()
}

// parseAnnotation extracts an @pallas annotation from a comment token.
func parseAnnotation(t ctok.Token) (cast.Annotation, bool) {
	body := strings.TrimSpace(t.Text)
	const marker = "@pallas:"
	i := strings.Index(body, marker)
	if i < 0 {
		return cast.Annotation{}, false
	}
	return cast.Annotation{Text: strings.TrimSpace(body[i+len(marker):]), P: t.Pos}, true
}

func (p *Parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() ctok.Token {
	if p.atEnd() {
		last := ctok.Pos{File: p.file}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return ctok.Token{Kind: ctok.EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) at(k ctok.Kind) bool { return p.cur().Kind == k }

func (p *Parser) peekKind(n int) ctok.Kind {
	if p.pos+n >= len(p.toks) {
		return ctok.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() ctok.Token {
	t := p.cur()
	if !p.atEnd() {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k ctok.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k ctok.Kind) ctok.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return ctok.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(pos ctok.Pos, format string, args ...any) {
	if len(p.errs) > maxParseErrors {
		return // capped; Parse appends a suppression notice
	}
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

func (p *Parser) parseTopLevel() cast.Decl {
	switch p.cur().Kind {
	case ctok.Semi:
		p.next()
		return nil
	case ctok.KwTypedef:
		return p.parseTypedef()
	case ctok.KwStruct, ctok.KwUnion:
		// struct definition or a declaration using a struct type
		if p.isRecordDefinition() {
			return p.parseRecordDecl()
		}
	case ctok.KwEnum:
		if p.isEnumDefinition() {
			return p.parseEnumDecl()
		}
	}
	return p.parseDeclOrFunc()
}

// isRecordDefinition looks ahead for "struct tag? { ... } ;" at top level.
func (p *Parser) isRecordDefinition() bool {
	i := p.pos + 1 // after struct/union
	if p.peekKind(1) == ctok.Ident {
		i++
	}
	if i < len(p.toks) && p.toks[i].Kind == ctok.LBrace {
		// It is a definition; it is a pure type definition if after the
		// matching brace comes ';'. If a declarator follows, we still parse
		// the record first and the declaration separately is unsupported —
		// corpus code always separates them.
		return true
	}
	return false
}

func (p *Parser) isEnumDefinition() bool {
	i := p.pos + 1
	if p.peekKind(1) == ctok.Ident {
		i++
	}
	return i < len(p.toks) && p.toks[i].Kind == ctok.LBrace
}

func (p *Parser) parseTypedef() cast.Decl {
	start := p.expect(ctok.KwTypedef).Pos
	// typedef struct {...} name; or typedef struct tag name; or typedef base name;
	if p.at(ctok.KwStruct) || p.at(ctok.KwUnion) {
		union := p.cur().Kind == ctok.KwUnion
		p.next()
		tag := ""
		if p.at(ctok.Ident) {
			tag = p.next().Text
		}
		if p.at(ctok.LBrace) {
			fields := p.parseFieldList()
			name := p.expect(ctok.Ident).Text
			p.expect(ctok.Semi)
			p.typedefNames[name] = true
			if tag == "" {
				tag = name
			}
			// Emit the record and the typedef aliasing it.
			rec := &cast.RecordDecl{Union: union, Name: tag, Fields: fields, P: start}
			_ = rec
			// Return a wrapper: since Parse returns one Decl per call, store
			// the record via a synthetic two-decl trick: we return the record
			// here and register the typedef name only (the alias has the same
			// meaning for the checkers).
			return rec
		}
		name := p.expect(ctok.Ident).Text
		stars := 0
		for p.accept(ctok.Star) {
			stars++
		}
		if stars > 0 {
			// typedef struct tag *name;
			// name recorded; declaration shape uncommon in corpus
		}
		p.expect(ctok.Semi)
		p.typedefNames[name] = true
		kw := "struct "
		if union {
			kw = "union "
		}
		return &cast.TypedefDecl{Name: name, Type: cast.Type{Name: kw + tag, Stars: stars}, P: start}
	}
	ty := p.parseType()
	name := p.expect(ctok.Ident).Text
	p.expect(ctok.Semi)
	p.typedefNames[name] = true
	return &cast.TypedefDecl{Name: name, Type: ty, P: start}
}

func (p *Parser) parseRecordDecl() cast.Decl {
	union := p.cur().Kind == ctok.KwUnion
	start := p.next().Pos // struct / union
	name := ""
	if p.at(ctok.Ident) {
		name = p.next().Text
	}
	fields := p.parseFieldList()
	p.expect(ctok.Semi)
	return &cast.RecordDecl{Union: union, Name: name, Fields: fields, P: start}
}

func (p *Parser) parseFieldList() []cast.Field {
	p.expect(ctok.LBrace)
	var fields []cast.Field
	for !p.at(ctok.RBrace) && !p.atEnd() {
		iterStart := p.pos
		if p.accept(ctok.Semi) {
			continue
		}
		ty := p.parseType()
		// Function-pointer member: ret (*name)(params);
		if p.at(ctok.LParen) && p.peekKind(1) == ctok.Star {
			p.next() // (
			p.next() // *
			nameTok := p.expect(ctok.Ident)
			p.expect(ctok.RParen)
			p.parseParams() // parameter list of the pointed-to type
			p.expect(ctok.Semi)
			fields = append(fields, cast.Field{
				Type: cast.Type{Name: "fnptr " + ty.String(), Stars: 1},
				Name: nameTok.Text, P: nameTok.Pos,
			})
			continue
		}
		for {
			fty := ty
			for p.accept(ctok.Star) {
				fty.Stars++
			}
			nameTok := p.expect(ctok.Ident)
			for p.accept(ctok.LBracket) {
				if p.at(ctok.IntLit) {
					n, _ := strconv.Atoi(p.next().Text)
					fty.ArrayLens = append(fty.ArrayLens, n)
				} else if id := p.cur(); id.Kind == ctok.Ident {
					p.next()
					fty.ArrayLens = append(fty.ArrayLens, -1)
				} else {
					fty.ArrayLens = append(fty.ArrayLens, -1)
				}
				p.expect(ctok.RBracket)
			}
			bits := 0
			if p.accept(ctok.Colon) {
				bt := p.expect(ctok.IntLit)
				bits, _ = strconv.Atoi(bt.Text)
			}
			fields = append(fields, cast.Field{Type: fty, Name: nameTok.Text, Bits: bits, P: nameTok.Pos})
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.Semi)
		// Progress guard: on malformed members (e.g. a stray '(' where the
		// diagnosed expect calls consumed nothing) skip one token so the
		// list cannot loop forever.
		if p.pos == iterStart {
			p.pos++
		}
	}
	p.expect(ctok.RBrace)
	return fields
}

func (p *Parser) parseEnumDecl() cast.Decl {
	start := p.expect(ctok.KwEnum).Pos
	name := ""
	if p.at(ctok.Ident) {
		name = p.next().Text
	}
	p.expect(ctok.LBrace)
	var members []cast.EnumMember
	next := int64(0)
	for !p.at(ctok.RBrace) && !p.atEnd() {
		mt := p.expect(ctok.Ident)
		val := next
		if p.accept(ctok.Assign) {
			e := p.parseConditional()
			if v, ok := EvalConstExpr(e, members); ok {
				val = v
			}
		}
		members = append(members, cast.EnumMember{Name: mt.Text, Value: val, P: mt.Pos})
		next = val + 1
		if !p.accept(ctok.Comma) {
			break
		}
	}
	p.expect(ctok.RBrace)
	p.expect(ctok.Semi)
	return &cast.EnumDecl{Name: name, Members: members, P: start}
}

// EvalConstExpr evaluates a constant integer expression using previously seen
// enum members for name resolution. Used for enum values and array sizes.
func EvalConstExpr(e cast.Expr, members []cast.EnumMember) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntExpr:
		return x.Value, true
	case *cast.IdentExpr:
		for _, m := range members {
			if m.Name == x.Name {
				return m.Value, true
			}
		}
		return 0, false
	case *cast.UnaryExpr:
		v, ok := EvalConstExpr(x.X, members)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case ctok.Minus:
			return -v, true
		case ctok.Plus:
			return v, true
		case ctok.Tilde:
			return ^v, true
		case ctok.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *cast.BinaryExpr:
		l, ok1 := EvalConstExpr(x.L, members)
		r, ok2 := EvalConstExpr(x.R, members)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case ctok.Plus:
			return l + r, true
		case ctok.Minus:
			return l - r, true
		case ctok.Star:
			return l * r, true
		case ctok.Slash:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case ctok.Percent:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case ctok.Shl:
			return l << uint(r), true
		case ctok.Shr:
			return l >> uint(r), true
		case ctok.Amp:
			return l & r, true
		case ctok.Pipe:
			return l | r, true
		case ctok.Caret:
			return l ^ r, true
		}
		return 0, false
	case *cast.CastExpr:
		return EvalConstExpr(x.X, members)
	}
	return 0, false
}

// parseDeclOrFunc parses a global variable or a function definition/prototype.
func (p *Parser) parseDeclOrFunc() cast.Decl {
	start := p.cur().Pos
	var static, ext, inline bool
	for {
		switch p.cur().Kind {
		case ctok.KwStatic:
			static = true
			p.next()
			continue
		case ctok.KwExtern:
			ext = true
			p.next()
			continue
		case ctok.KwInline:
			inline = true
			p.next()
			continue
		case ctok.KwRegister, ctok.KwAuto, ctok.KwVolatile:
			p.next()
			continue
		}
		break
	}
	ty := p.parseType()
	for p.accept(ctok.Star) {
		ty.Stars++
	}
	nameTok := p.expect(ctok.Ident)

	if p.at(ctok.LParen) {
		params, varargs := p.parseParams()
		if p.at(ctok.LBrace) {
			body := p.parseCompound()
			return &cast.FuncDecl{Ret: ty, Name: nameTok.Text, Params: params,
				Varargs: varargs, Body: body, Static: static, Inline: inline, P: start}
		}
		p.expect(ctok.Semi)
		return &cast.FuncDecl{Ret: ty, Name: nameTok.Text, Params: params,
			Varargs: varargs, Static: static, Inline: inline, P: start}
	}

	// Global variable (possibly with array dims and initializer).
	for p.accept(ctok.LBracket) {
		if p.at(ctok.IntLit) {
			n, _ := strconv.Atoi(p.next().Text)
			ty.ArrayLens = append(ty.ArrayLens, n)
		} else {
			ty.ArrayLens = append(ty.ArrayLens, -1)
		}
		p.expect(ctok.RBracket)
	}
	var init cast.Expr
	if p.accept(ctok.Assign) {
		init = p.parseInitializer()
	}
	p.expect(ctok.Semi)
	return &cast.VarDecl{Type: ty, Name: nameTok.Text, Init: init, Static: static, Extern: ext, P: start}
}

func (p *Parser) parseParams() ([]cast.Param, bool) {
	p.expect(ctok.LParen)
	var params []cast.Param
	varargs := false
	if p.accept(ctok.RParen) {
		return params, false
	}
	// (void)
	if p.at(ctok.KwVoid) && p.peekKind(1) == ctok.RParen {
		p.next()
		p.next()
		return params, false
	}
	for {
		if p.accept(ctok.Ellipsis) {
			varargs = true
			break
		}
		ty := p.parseType()
		for p.accept(ctok.Star) {
			ty.Stars++
		}
		name := ""
		pos := p.cur().Pos
		if p.at(ctok.Ident) {
			name = p.next().Text
		}
		for p.accept(ctok.LBracket) {
			if p.at(ctok.IntLit) {
				n, _ := strconv.Atoi(p.next().Text)
				ty.ArrayLens = append(ty.ArrayLens, n)
			} else {
				ty.ArrayLens = append(ty.ArrayLens, -1)
			}
			p.expect(ctok.RBracket)
		}
		params = append(params, cast.Param{Type: ty, Name: name, P: pos})
		if !p.accept(ctok.Comma) {
			break
		}
	}
	p.expect(ctok.RParen)
	return params, varargs
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// typeStarts reports whether the current token can start a type.
func (p *Parser) typeStarts() bool {
	switch p.cur().Kind {
	case ctok.KwVoid, ctok.KwChar, ctok.KwShort, ctok.KwInt, ctok.KwLong,
		ctok.KwFloat, ctok.KwDouble, ctok.KwSigned, ctok.KwUnsigned,
		ctok.KwStruct, ctok.KwUnion, ctok.KwEnum, ctok.KwConst, ctok.KwVolatile:
		return true
	case ctok.Ident:
		return p.typedefNames[p.cur().Text]
	}
	return false
}

// parseType parses a type specifier (without trailing stars, which callers
// consume so that "int *a, b" style declarations stay correct per declarator).
func (p *Parser) parseType() cast.Type {
	var ty cast.Type
	var words []string
	for {
		switch p.cur().Kind {
		case ctok.KwConst:
			ty.Const = true
			p.next()
			continue
		case ctok.KwVolatile:
			p.next()
			continue
		case ctok.KwStruct, ctok.KwUnion:
			kw := p.next().Text
			tag := p.expect(ctok.Ident).Text
			words = append(words, kw+" "+tag)
			ty.Name = strings.Join(words, " ")
			return ty
		case ctok.KwEnum:
			p.next()
			tag := p.expect(ctok.Ident).Text
			words = append(words, "enum "+tag)
			ty.Name = strings.Join(words, " ")
			return ty
		case ctok.KwVoid, ctok.KwChar, ctok.KwShort, ctok.KwInt, ctok.KwLong,
			ctok.KwFloat, ctok.KwDouble, ctok.KwSigned, ctok.KwUnsigned:
			words = append(words, p.next().Text)
			continue
		case ctok.Ident:
			if len(words) == 0 && p.typedefNames[p.cur().Text] {
				words = append(words, p.next().Text)
			}
		}
		break
	}
	if len(words) == 0 {
		p.errorf(p.cur().Pos, "expected type, found %s", p.cur())
		words = []string{"int"}
	}
	ty.Name = strings.Join(words, " ")
	return ty
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseCompound() *cast.CompoundStmt {
	start := p.expect(ctok.LBrace).Pos
	cs := &cast.CompoundStmt{P: start}
	for !p.at(ctok.RBrace) && !p.atEnd() {
		if len(p.errs) > 0 && p.atFunctionBoundary() {
			// A column-1 declaration start inside a still-open block almost
			// always means the '}' above was lost to an earlier error. Close
			// the block here so the next definition parses at top level
			// instead of being swallowed as statements.
			p.errorf(p.cur().Pos, "missing '}' before top-level declaration")
			return cs
		}
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			cs.Stmts = append(cs.Stmts, s)
		}
		if p.pos == before {
			// Unparseable statement: report once and resynchronize at the
			// next ';' (consumed) or the enclosing '}' (left for the loop),
			// so one broken statement cannot take the whole block with it.
			p.errorf(p.cur().Pos, "cannot parse statement at %s", p.cur())
			p.syncStmt()
		}
	}
	p.expect(ctok.RBrace)
	return cs
}

// syncStmt skips to the next statement boundary inside a compound: past the
// next ';' at nesting depth zero, or up to (not past) the '}' that closes
// the enclosing block. Guaranteed to make progress.
func (p *Parser) syncStmt() {
	depth := 0
	for !p.atEnd() {
		if depth == 0 && p.atFunctionBoundary() {
			return // let parseCompound end the brace-mismatched block
		}
		switch p.cur().Kind {
		case ctok.Semi:
			p.next()
			if depth == 0 {
				return
			}
			continue
		case ctok.LBrace:
			depth++
		case ctok.RBrace:
			if depth == 0 {
				return // leave for the enclosing compound to consume
			}
			depth--
		}
		p.next()
	}
}

func (p *Parser) parseStmt() cast.Stmt {
	t := p.cur()
	switch t.Kind {
	case ctok.LBrace:
		return p.parseCompound()
	case ctok.Semi:
		p.next()
		return &cast.EmptyStmt{P: t.Pos}
	case ctok.KwIf:
		return p.parseIf()
	case ctok.KwWhile:
		return p.parseWhile()
	case ctok.KwDo:
		return p.parseDoWhile()
	case ctok.KwFor:
		return p.parseFor()
	case ctok.KwSwitch:
		return p.parseSwitch()
	case ctok.KwReturn:
		p.next()
		var x cast.Expr
		if !p.at(ctok.Semi) {
			x = p.parseExpr()
		}
		p.expect(ctok.Semi)
		return &cast.ReturnStmt{X: x, P: t.Pos}
	case ctok.KwBreak:
		p.next()
		p.expect(ctok.Semi)
		return &cast.BreakStmt{P: t.Pos}
	case ctok.KwContinue:
		p.next()
		p.expect(ctok.Semi)
		return &cast.ContinueStmt{P: t.Pos}
	case ctok.KwGoto:
		p.next()
		lbl := p.expect(ctok.Ident)
		p.expect(ctok.Semi)
		return &cast.GotoStmt{Label: lbl.Text, P: t.Pos}
	case ctok.Ident:
		// Label?
		if p.peekKind(1) == ctok.Colon {
			name := p.next().Text
			p.next() // colon
			if p.at(ctok.RBrace) || p.at(ctok.KwCase) || p.at(ctok.KwDefault) {
				return &cast.LabelStmt{Name: name, P: t.Pos}
			}
			inner := p.parseStmt()
			return &cast.LabelStmt{Name: name, Stmt: inner, P: t.Pos}
		}
	case ctok.KwStatic, ctok.KwConst, ctok.KwVolatile, ctok.KwRegister:
		return p.parseLocalDecl()
	}
	if p.typeStarts() && p.declLookahead() {
		return p.parseLocalDecl()
	}
	// Expression statement.
	x := p.parseExpr()
	p.expect(ctok.Semi)
	return &cast.ExprStmt{X: x, P: t.Pos}
}

// declLookahead disambiguates "T x" declarations from expressions that begin
// with a typedef name (e.g. a call "size(x)" where size is not a typedef).
func (p *Parser) declLookahead() bool {
	if p.cur().Kind != ctok.Ident {
		return true // real type keyword
	}
	// typedef-name followed by ident or '*' ident → declaration
	i := p.pos + 1
	stars := 0
	for i < len(p.toks) && p.toks[i].Kind == ctok.Star {
		stars++
		i++
	}
	if i < len(p.toks) && p.toks[i].Kind == ctok.Ident {
		return true
	}
	return false
}

func (p *Parser) parseLocalDecl() cast.Stmt {
	start := p.cur().Pos
	for p.at(ctok.KwStatic) || p.at(ctok.KwRegister) || p.at(ctok.KwVolatile) {
		p.next()
	}
	ty := p.parseType()
	// First declarator.
	first := ty
	for p.accept(ctok.Star) {
		first.Stars++
	}
	nameTok := p.expect(ctok.Ident)
	for p.accept(ctok.LBracket) {
		if p.at(ctok.IntLit) {
			n, _ := strconv.Atoi(p.next().Text)
			first.ArrayLens = append(first.ArrayLens, n)
		} else {
			first.ArrayLens = append(first.ArrayLens, -1)
		}
		p.expect(ctok.RBracket)
	}
	var init cast.Expr
	if p.accept(ctok.Assign) {
		init = p.parseInitializer()
	}
	decl := &cast.DeclStmt{Type: first, Name: nameTok.Text, Init: init, P: start}
	if !p.at(ctok.Comma) {
		p.expect(ctok.Semi)
		return decl
	}
	// Multiple declarators become a synthetic compound statement that the CFG
	// flattens; each keeps its own type/pointer depth.
	group := &cast.CompoundStmt{P: start, Stmts: []cast.Stmt{decl}}
	for p.accept(ctok.Comma) {
		dty := ty
		for p.accept(ctok.Star) {
			dty.Stars++
		}
		nt := p.expect(ctok.Ident)
		for p.accept(ctok.LBracket) {
			if p.at(ctok.IntLit) {
				n, _ := strconv.Atoi(p.next().Text)
				dty.ArrayLens = append(dty.ArrayLens, n)
			} else {
				dty.ArrayLens = append(dty.ArrayLens, -1)
			}
			p.expect(ctok.RBracket)
		}
		var di cast.Expr
		if p.accept(ctok.Assign) {
			di = p.parseInitializer()
		}
		group.Stmts = append(group.Stmts, &cast.DeclStmt{Type: dty, Name: nt.Text, Init: di, P: nt.Pos})
	}
	p.expect(ctok.Semi)
	return group
}

func (p *Parser) parseInitializer() cast.Expr {
	if p.at(ctok.LBrace) {
		start := p.next().Pos
		il := &cast.InitListExpr{P: start}
		for !p.at(ctok.RBrace) && !p.atEnd() {
			// Skip designators: .field = / [i] =
			if p.accept(ctok.Dot) {
				p.expect(ctok.Ident)
				p.expect(ctok.Assign)
			}
			il.Elems = append(il.Elems, p.parseInitializer())
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.RBrace)
		return il
	}
	return p.parseAssignExpr()
}

func (p *Parser) parseIf() cast.Stmt {
	start := p.expect(ctok.KwIf).Pos
	p.expect(ctok.LParen)
	cond := p.parseExpr()
	p.expect(ctok.RParen)
	then := p.parseStmt()
	var els cast.Stmt
	if p.accept(ctok.KwElse) {
		els = p.parseStmt()
	}
	return &cast.IfStmt{Cond: cond, Then: then, Else: els, P: start}
}

func (p *Parser) parseWhile() cast.Stmt {
	start := p.expect(ctok.KwWhile).Pos
	p.expect(ctok.LParen)
	cond := p.parseExpr()
	p.expect(ctok.RParen)
	body := p.parseStmt()
	return &cast.WhileStmt{Cond: cond, Body: body, P: start}
}

func (p *Parser) parseDoWhile() cast.Stmt {
	start := p.expect(ctok.KwDo).Pos
	body := p.parseStmt()
	p.expect(ctok.KwWhile)
	p.expect(ctok.LParen)
	cond := p.parseExpr()
	p.expect(ctok.RParen)
	p.expect(ctok.Semi)
	return &cast.DoWhileStmt{Body: body, Cond: cond, P: start}
}

func (p *Parser) parseFor() cast.Stmt {
	start := p.expect(ctok.KwFor).Pos
	p.expect(ctok.LParen)
	var init cast.Stmt
	if !p.at(ctok.Semi) {
		if p.typeStarts() && p.declLookahead() {
			init = p.parseLocalDecl() // consumes ';'
		} else {
			x := p.parseExpr()
			init = &cast.ExprStmt{X: x, P: x.Pos()}
			p.expect(ctok.Semi)
		}
	} else {
		p.expect(ctok.Semi)
	}
	var cond cast.Expr
	if !p.at(ctok.Semi) {
		cond = p.parseExpr()
	}
	p.expect(ctok.Semi)
	var post cast.Expr
	if !p.at(ctok.RParen) {
		post = p.parseExpr()
	}
	p.expect(ctok.RParen)
	body := p.parseStmt()
	return &cast.ForStmt{Init: init, Cond: cond, Post: post, Body: body, P: start}
}

func (p *Parser) parseSwitch() cast.Stmt {
	start := p.expect(ctok.KwSwitch).Pos
	p.expect(ctok.LParen)
	tag := p.parseExpr()
	p.expect(ctok.RParen)
	p.expect(ctok.LBrace)
	sw := &cast.SwitchStmt{Tag: tag, P: start}
	var cur *cast.CaseClause
	for !p.at(ctok.RBrace) && !p.atEnd() {
		switch p.cur().Kind {
		case ctok.KwCase:
			pos := p.next().Pos
			v := p.parseConditional()
			p.expect(ctok.Colon)
			if cur != nil && len(cur.Body) == 0 {
				// fallthrough label stacking: case A: case B: body
				cur.Values = append(cur.Values, v)
				continue
			}
			cur = &cast.CaseClause{Values: []cast.Expr{v}, P: pos}
			sw.Cases = append(sw.Cases, cur)
		case ctok.KwDefault:
			pos := p.next().Pos
			p.expect(ctok.Colon)
			cur = &cast.CaseClause{Values: nil, P: pos}
			sw.Cases = append(sw.Cases, cur)
		default:
			s := p.parseStmt()
			if cur == nil {
				p.errorf(s.Pos(), "statement before first case in switch")
				cur = &cast.CaseClause{P: s.Pos()}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Body = append(cur.Body, s)
		}
	}
	p.expect(ctok.RBrace)
	return sw
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() cast.Expr {
	e := p.parseAssignExpr()
	for p.at(ctok.Comma) {
		pos := p.next().Pos
		r := p.parseAssignExpr()
		e = &cast.CommaExpr{L: e, R: r, P: pos}
	}
	return e
}

func (p *Parser) parseAssignExpr() cast.Expr {
	l := p.parseConditional()
	if p.cur().Kind.IsAssign() {
		op := p.next()
		r := p.parseAssignExpr()
		return &cast.AssignExpr{Op: op.Kind, L: l, R: r, P: op.Pos}
	}
	return l
}

func (p *Parser) parseConditional() cast.Expr {
	cond := p.parseBinary(0)
	if p.at(ctok.Question) {
		pos := p.next().Pos
		then := p.parseExpr()
		p.expect(ctok.Colon)
		els := p.parseConditional()
		return &cast.CondExpr{Cond: cond, Then: then, Else: els, P: pos}
	}
	return cond
}

// binary operator precedence, higher binds tighter.
func binPrec(k ctok.Kind) int {
	switch k {
	case ctok.OrOr:
		return 1
	case ctok.AndAnd:
		return 2
	case ctok.Pipe:
		return 3
	case ctok.Caret:
		return 4
	case ctok.Amp:
		return 5
	case ctok.EqEq, ctok.NotEq:
		return 6
	case ctok.Lt, ctok.Gt, ctok.Le, ctok.Ge:
		return 7
	case ctok.Shl, ctok.Shr:
		return 8
	case ctok.Plus, ctok.Minus:
		return 9
	case ctok.Star, ctok.Slash, ctok.Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinary(minPrec int) cast.Expr {
	l := p.parseUnary()
	for {
		prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return l
		}
		op := p.next()
		r := p.parseBinary(prec + 1)
		l = &cast.BinaryExpr{Op: op.Kind, L: l, R: r, P: op.Pos}
	}
}

func (p *Parser) parseUnary() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctok.Not, ctok.Tilde, ctok.Minus, ctok.Plus, ctok.Star, ctok.Amp:
		p.next()
		x := p.parseUnary()
		return &cast.UnaryExpr{Op: t.Kind, X: x, P: t.Pos}
	case ctok.Inc, ctok.Dec:
		p.next()
		x := p.parseUnary()
		return &cast.UnaryExpr{Op: t.Kind, X: x, P: t.Pos}
	case ctok.KwSizeof:
		p.next()
		if p.at(ctok.LParen) && p.isTypeInParens() {
			p.expect(ctok.LParen)
			ty := p.parseType()
			for p.accept(ctok.Star) {
				ty.Stars++
			}
			p.expect(ctok.RParen)
			return &cast.SizeofTypeExpr{Type: ty, P: t.Pos}
		}
		x := p.parseUnary()
		return &cast.UnaryExpr{Op: ctok.KwSizeof, X: x, P: t.Pos}
	case ctok.LParen:
		if p.isTypeInParens() {
			p.next()
			ty := p.parseType()
			for p.accept(ctok.Star) {
				ty.Stars++
			}
			p.expect(ctok.RParen)
			x := p.parseUnary()
			return &cast.CastExpr{Type: ty, X: x, P: t.Pos}
		}
	}
	return p.parsePostfix()
}

// isTypeInParens checks whether '(' begins a cast / sizeof(type).
func (p *Parser) isTypeInParens() bool {
	if !p.at(ctok.LParen) {
		return false
	}
	k := p.peekKind(1)
	switch k {
	case ctok.KwVoid, ctok.KwChar, ctok.KwShort, ctok.KwInt, ctok.KwLong,
		ctok.KwFloat, ctok.KwDouble, ctok.KwSigned, ctok.KwUnsigned,
		ctok.KwStruct, ctok.KwUnion, ctok.KwEnum, ctok.KwConst:
		return true
	case ctok.Ident:
		if p.pos+1 < len(p.toks) && p.typedefNames[p.toks[p.pos+1].Text] {
			// "(name)" is a cast only if followed by * or ) then an operand;
			// approximate: treat "(typedef_name" as cast when next is * or ).
			k2 := p.peekKind(2)
			return k2 == ctok.Star || k2 == ctok.RParen
		}
	}
	return false
}

func (p *Parser) parsePostfix() cast.Expr {
	e := p.parsePrimary()
	for {
		t := p.cur()
		switch t.Kind {
		case ctok.LParen:
			p.next()
			call := &cast.CallExpr{Fun: e, P: t.Pos}
			for !p.at(ctok.RParen) && !p.atEnd() {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(ctok.Comma) {
					break
				}
			}
			p.expect(ctok.RParen)
			e = call
		case ctok.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(ctok.RBracket)
			e = &cast.IndexExpr{X: e, Index: idx, P: t.Pos}
		case ctok.Dot:
			p.next()
			f := p.expect(ctok.Ident)
			e = &cast.MemberExpr{X: e, Field: f.Text, P: t.Pos}
		case ctok.Arrow:
			p.next()
			f := p.expect(ctok.Ident)
			e = &cast.MemberExpr{X: e, Field: f.Text, Arrow: true, P: t.Pos}
		case ctok.Inc, ctok.Dec:
			p.next()
			e = &cast.PostfixExpr{Op: t.Kind, X: e, P: t.Pos}
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctok.Ident:
		p.next()
		return &cast.IdentExpr{Name: t.Text, P: t.Pos}
	case ctok.IntLit:
		p.next()
		return &cast.IntExpr{Text: t.Text, Value: parseIntText(t.Text), P: t.Pos}
	case ctok.FloatLit:
		p.next()
		return &cast.FloatExpr{Text: t.Text, P: t.Pos}
	case ctok.StringLit:
		p.next()
		// Adjacent string literal concatenation.
		val := t.Text
		for p.at(ctok.StringLit) {
			val += p.next().Text
		}
		return &cast.StrExpr{Value: val, P: t.Pos}
	case ctok.CharLit:
		p.next()
		return &cast.CharExpr{Value: t.Text, P: t.Pos}
	case ctok.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(ctok.RParen)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &cast.IntExpr{Text: "0", Value: 0, P: t.Pos}
}

func parseIntText(text string) int64 {
	s := strings.TrimRight(text, "uUlL")
	var v int64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		var u uint64
		u, err = strconv.ParseUint(s[2:], 16, 64)
		v = int64(u)
	} else if len(s) > 1 && s[0] == '0' {
		v, err = strconv.ParseInt(s[1:], 8, 64)
	} else {
		v, err = strconv.ParseInt(s, 10, 64)
	}
	if err != nil {
		return 0
	}
	return v
}
