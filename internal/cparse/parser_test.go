package cparse

import (
	"strings"
	"testing"
	"time"

	"pallas/internal/cast"
)

const pageAllocSrc = `
// @pallas: immutable gfp_mask nodemask migratetype
struct page {
	unsigned long flags;
	unsigned long private;
	int refcount;
};

struct zone {
	int id;
	struct page *free_list;
	unsigned long nr_free;
};

enum migrate_mode {
	MIGRATE_UNMOVABLE = 0,
	MIGRATE_MOVABLE,
	MIGRATE_RECLAIMABLE,
	MIGRATE_TYPES
};

static int zone_local(struct zone *local, struct zone *z)
{
	return local->id == z->id;
}

struct page *get_page_from_freelist(gfp_t gfp_mask, unsigned int order,
				    struct zone *preferred_zone)
{
	struct page *page = 0;
	int i;
	if (order == 0) {
		page = preferred_zone->free_list;
		if (page) {
			preferred_zone->nr_free -= 1;
			page->private = MIGRATE_UNMOVABLE;
		}
		return page;
	}
	for (i = order; i < 11; i++) {
		if (preferred_zone->nr_free >= (1UL << i)) {
			page = preferred_zone->free_list;
			break;
		}
	}
	return page;
}
`

func TestParsePageAlloc(t *testing.T) {
	tu, err := Parse("page_alloc.c", pageAllocSrc)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if got := len(tu.Funcs()); got != 2 {
		t.Fatalf("want 2 functions, got %d", got)
	}
	f := tu.Func("get_page_from_freelist")
	if f == nil {
		t.Fatal("get_page_from_freelist not found")
	}
	if len(f.Params) != 3 {
		t.Fatalf("want 3 params, got %d", len(f.Params))
	}
	if f.Params[0].Name != "gfp_mask" || f.Params[0].Type.Name != "gfp_t" {
		t.Errorf("param0 = %s %s", f.Params[0].Type, f.Params[0].Name)
	}
	if f.Ret.Name != "struct page" || f.Ret.Stars != 1 {
		t.Errorf("return type = %v", f.Ret)
	}
	rec := tu.Record("page")
	if rec == nil || len(rec.Fields) != 3 {
		t.Fatalf("struct page wrong: %+v", rec)
	}
	if v, ok := tu.EnumValue("MIGRATE_RECLAIMABLE"); !ok || v != 2 {
		t.Errorf("MIGRATE_RECLAIMABLE = %d ok=%v", v, ok)
	}
	if len(tu.Annotations) != 1 || !strings.Contains(tu.Annotations[0].Text, "immutable gfp_mask") {
		t.Errorf("annotations = %+v", tu.Annotations)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
int f(int a, int b)
{
	int x = 0, y = 1;
	switch (a) {
	case 0:
	case 1:
		x = a + b;
		break;
	default:
		x = a * b;
	}
	do {
		y += 1;
	} while (y < 10);
	while (x > 0)
		x--;
	if (a > b && b != 0)
		goto out;
	for (int i = 0; i < b; i++)
		x += i;
	return x ? x : y;
out:
	return -1;
}
`
	tu, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	f := tu.Func("f")
	if f == nil {
		t.Fatal("f not found")
	}
	// Render and reparse to verify printer round-trips structurally.
	text := cast.DeclString(f)
	tu2, err := Parse("t2.c", text)
	if err != nil {
		t.Fatalf("reparse error: %v\nsource:\n%s", err, text)
	}
	if tu2.Func("f") == nil {
		t.Fatal("round-tripped f missing")
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
int g(struct sk_buff *skb, int *tbl)
{
	int v = (skb->len & 0xff) | (tbl[2] << 4);
	int w = sizeof(struct sk_buff) + sizeof(v);
	char *p = (char *)skb;
	unsigned long m = ~0UL;
	v += w == 3 ? -1 : +1;
	v = v, w = w;
	p[v] = 'x';
	(*tbl)++;
	--v;
	return !(v != w) && (m || 0);
}
struct sk_buff { int len; };
`
	tu, err := Parse("e.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if tu.Func("g") == nil {
		t.Fatal("g missing")
	}
}

func TestParseTypedefAndUnion(t *testing.T) {
	src := `
typedef unsigned long long phys_addr_t;
typedef struct request_queue rq_t;
union blk_flags {
	unsigned int raw;
	unsigned short half;
};
phys_addr_t base_of(union blk_flags *f)
{
	return (phys_addr_t)f->raw;
}
`
	tu, err := Parse("u.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if tu.Func("base_of") == nil {
		t.Fatal("base_of missing")
	}
	found := false
	for _, d := range tu.Decls {
		if r, ok := d.(*cast.RecordDecl); ok && r.Union && r.Name == "blk_flags" {
			found = true
		}
	}
	if !found {
		t.Fatal("union blk_flags missing")
	}
}

func TestParseErrorsReported(t *testing.T) {
	_, err := Parse("bad.c", "int f( { return; }")
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEvalConstExpr(t *testing.T) {
	src := `
enum sizes {
	KB = 1 << 10,
	FOUR_KB = KB * 4,
	NEG = -3,
	MASK = 0xff & 0x0f,
};
`
	tu, err := Parse("c.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	want := map[string]int64{"KB": 1024, "FOUR_KB": 4096, "NEG": -3, "MASK": 0x0f}
	for name, w := range want {
		if v, ok := tu.EnumValue(name); !ok || v != w {
			t.Errorf("%s = %d (ok=%v), want %d", name, v, ok, w)
		}
	}
}

func TestParserErrorRecovery(t *testing.T) {
	// Each malformed input must produce an error but never hang or panic,
	// and the parser should still surface whatever it understood.
	cases := []string{
		"int f( { return; }",
		"struct broken { int ; };",
		"enum { A = , B };",
		"int g(void) { if return; }",
		"int h(void) { switch (x) { int y; } }",
		"int i(void) { return 1 }",
		"@@@ garbage @@@",
		"typedef ;",
		"int j(void) { a-> ; }",
	}
	for _, src := range cases {
		tu, err := Parse("bad.c", src)
		if err == nil {
			t.Errorf("%q: expected an error", src)
		}
		if tu == nil {
			t.Errorf("%q: translation unit must still be returned", src)
		}
	}
}

func TestParseFunctionPointerField(t *testing.T) {
	tu, err := Parse("ops.c", `
struct file_operations {
	int refcount;
	int (*open)(struct inode *inode, int flags);
	long (*read)(char *buf, long len);
};
struct inode { int i_no; };
int use_ops(struct file_operations *ops)
{
	return ops->refcount;
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rec := tu.Record("file_operations")
	if rec == nil || len(rec.Fields) != 3 {
		t.Fatalf("fields = %+v", rec)
	}
	if rec.Fields[1].Name != "open" || rec.Fields[1].Type.Stars != 1 {
		t.Errorf("fnptr field = %+v", rec.Fields[1])
	}
}

func TestParseStringConcatenation(t *testing.T) {
	tu, err := Parse("s.c", `
char *msg(void) { return "hello " "world"; }
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tu.Func("msg") == nil {
		t.Fatal("msg missing")
	}
}

func TestParseDesignatedInitializer(t *testing.T) {
	tu, err := Parse("d.c", `
struct cfg { int a; int b; };
int setup(void) {
	struct cfg c = { .a = 1, .b = 2 };
	return c.a;
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tu.Func("setup") == nil {
		t.Fatal("setup missing")
	}
}

func TestFieldListProgressGuard(t *testing.T) {
	// Regression (found by FuzzParse): a stray '(' inside an unterminated
	// field list used to loop forever because neither parseType nor the
	// declarator expect() calls consumed it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		Parse("hang.c", "struct s { unsigned longs long e; int t;; struct page *f(gfp_t m);")
	}()
	select {
	case <-done:
	case <-timeAfter(t):
		t.Fatal("parser hung on malformed field list")
	}
}

// timeAfter gives the hang regression a generous wall-clock bound.
func timeAfter(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(5 * time.Second)
}
