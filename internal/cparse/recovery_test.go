package cparse

import (
	"strings"
	"testing"
)

// TestRecoveryBrokenFunctionDoesNotSinkTU is the core error-recovery
// contract: one malformed function yields diagnostics while its siblings
// still parse and are available for checking.
func TestRecoveryBrokenFunctionDoesNotSinkTU(t *testing.T) {
	src := `
int before(int a) { return a + 1; }
int broken(int a) { if (a == ) ] { return; }
int after(int a) { return a - 1; }
`
	tu, err := Parse("rec.c", src)
	if err == nil {
		t.Fatal("broken function must produce diagnostics")
	}
	if tu.Func("before") == nil {
		t.Error("function before the defect lost")
	}
	if tu.Func("after") == nil {
		t.Error("function after the defect lost; recovery failed")
	}
}

// TestRecoveryStatementResync asserts a garbled statement is skipped to the
// next ';' and the remaining statements of the block survive.
func TestRecoveryStatementResync(t *testing.T) {
	src := `
int f(int a) {
	int x = 1;
	@ @ @ junk;
	x = a + x;
	return x;
}
`
	tu, err := Parse("rec.c", src)
	if err == nil {
		t.Fatal("junk statement must produce a diagnostic")
	}
	fn := tu.Func("f")
	if fn == nil {
		t.Fatal("function lost")
	}
	// The statements around the junk must both be present: decl, assignment,
	// return survive (junk collapses into at most one error statement).
	if got := len(fn.Body.Stmts); got < 3 {
		t.Errorf("surrounding statements lost, got %d stmts", got)
	}
}

// TestRecoveryTruncatedFunctionAtEOF asserts a function cut off mid-body
// (the classic truncated-input shape) terminates with diagnostics and still
// yields the earlier declarations.
func TestRecoveryTruncatedFunctionAtEOF(t *testing.T) {
	src := `
int whole(void) { return 0; }
int cut(int a) { if (a) {
`
	tu, err := Parse("rec.c", src)
	if err == nil {
		t.Fatal("truncated function must produce diagnostics")
	}
	if tu.Func("whole") == nil {
		t.Error("intact function lost")
	}
}

// TestRecoveryErrorCap asserts adversarial inputs cannot accumulate
// unbounded diagnostics (one per token) with quadratic join costs.
func TestRecoveryErrorCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("@ ")
	}
	tu, err := Parse("cap.c", sb.String())
	if tu == nil {
		t.Fatal("Parse must always return a translation unit")
	}
	if err == nil {
		t.Fatal("garbage must error")
	}
	if n := strings.Count(err.Error(), "\n"); n > maxParseErrors+1 {
		t.Errorf("error cap not enforced: %d diagnostics", n)
	}
	if !strings.Contains(err.Error(), "further diagnostics suppressed") {
		t.Error("suppression notice missing")
	}
}

// TestRecoveryKeepsCleanUnitsPristine asserts the resync machinery is inert
// on well-formed input (no spurious errors, no dropped declarations).
func TestRecoveryKeepsCleanUnitsPristine(t *testing.T) {
	src := `
struct s { int a; };
typedef unsigned long ulen_t;
static int g;
int f(struct s *p, ulen_t n) {
	if (p->a) { g = (int)n; return 1; }
	return 0;
}
`
	tu, err := Parse("clean.c", src)
	if err != nil {
		t.Fatalf("clean unit must not error: %v", err)
	}
	if len(tu.Decls) != 4 {
		t.Errorf("want 4 decls, got %d", len(tu.Decls))
	}
}
