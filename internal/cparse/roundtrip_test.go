package cparse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pallas/internal/cast"
)

// genProgram builds a random but valid C-subset translation unit from a
// seeded source. The generator exercises declarations, the full statement
// grammar and nested expressions.
type genProgram struct {
	r  *rand.Rand
	sb strings.Builder
	// vars in scope for expression generation.
	vars []string
}

func (g *genProgram) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

func (g *genProgram) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100))
		case 1:
			return g.pick(g.vars)
		default:
			return g.pick(g.vars) + "->" + g.pick([]string{"len", "flags", "state"})
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return "(" + g.expr(depth-1) + " " + g.pick([]string{"+", "-", "*", "&", "|", "^", "<<", ">>"}) + " " + g.expr(depth-1) + ")"
	case 1:
		return "(" + g.expr(depth-1) + " " + g.pick([]string{"==", "!=", "<", ">", "<=", ">="}) + " " + g.expr(depth-1) + ")"
	case 2:
		return "(" + g.expr(depth-1) + " " + g.pick([]string{"&&", "||"}) + " " + g.expr(depth-1) + ")"
	case 3:
		return g.pick([]string{"!", "~", "-"}) + "(" + g.expr(depth-1) + ")"
	case 4:
		return "helper(" + g.expr(depth-1) + ", " + g.expr(depth-1) + ")"
	default:
		return "(" + g.expr(depth-1) + " ? " + g.expr(depth-1) + " : " + g.expr(depth-1) + ")"
	}
}

func (g *genProgram) stmt(depth, indent int) {
	pad := strings.Repeat("\t", indent)
	if depth <= 0 {
		fmt.Fprintf(&g.sb, "%sx = %s;\n", pad, g.expr(1))
		return
	}
	switch g.r.Intn(8) {
	case 0:
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", pad, g.expr(2))
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%s} else {\n", pad)
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 1:
		fmt.Fprintf(&g.sb, "%swhile (%s) {\n", pad, g.expr(2))
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%sbreak;\n", pad+"\t")
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 2:
		fmt.Fprintf(&g.sb, "%sfor (i = 0; i < %d; i++) {\n", pad, g.r.Intn(10)+1)
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 3:
		fmt.Fprintf(&g.sb, "%sswitch (%s) {\n", pad, g.expr(1))
		fmt.Fprintf(&g.sb, "%scase 1:\n", pad)
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%sbreak;\n", pad+"\t")
		fmt.Fprintf(&g.sb, "%sdefault:\n", pad)
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%s}\n", pad)
	case 4:
		fmt.Fprintf(&g.sb, "%sdo {\n", pad)
		g.stmt(depth-1, indent+1)
		fmt.Fprintf(&g.sb, "%s} while (%s);\n", pad, g.expr(1))
	case 5:
		fmt.Fprintf(&g.sb, "%sreturn %s;\n", pad, g.expr(2))
	case 6:
		fmt.Fprintf(&g.sb, "%s%s->state = %s;\n", pad, g.pick(g.vars), g.expr(2))
	default:
		fmt.Fprintf(&g.sb, "%sx = %s;\n", pad, g.expr(2))
	}
}

func generate(seed int64) string {
	g := &genProgram{r: rand.New(rand.NewSource(seed)), vars: []string{"a", "b", "obj"}}
	g.sb.WriteString("struct thing { int len; int flags; int state; };\n")
	g.sb.WriteString("int helper(int p, int q);\n")
	nFuncs := 1 + g.r.Intn(3)
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&g.sb, "int fn%d(int a, int b, struct thing *obj)\n{\n\tint x = 0;\n\tint i = 0;\n", f)
		nStmts := 1 + g.r.Intn(4)
		for s := 0; s < nStmts; s++ {
			g.stmt(2, 1)
		}
		g.sb.WriteString("\treturn x;\n}\n")
	}
	return g.sb.String()
}

// TestRandomProgramsParse checks the parser accepts every generated program
// without diagnostics.
func TestRandomProgramsParse(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := generate(seed)
		if _, err := Parse(fmt.Sprintf("gen%d.c", seed), src); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
}

// TestPrintParseFixpoint checks print∘parse is a fixpoint: rendering a parsed
// program and reparsing it yields an identical rendering.
func TestPrintParseFixpoint(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := generate(seed)
		tu1, err := Parse("a.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		text1 := renderTU(tu1)
		tu2, err := Parse("b.c", text1)
		if err != nil {
			t.Fatalf("seed %d reparse: %v\nrendered:\n%s", seed, err, text1)
		}
		text2 := renderTU(tu2)
		if text1 != text2 {
			t.Fatalf("seed %d: print∘parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s",
				seed, text1, text2)
		}
	}
}

func renderTU(tu *cast.TranslationUnit) string {
	var sb strings.Builder
	for _, d := range tu.Decls {
		sb.WriteString(cast.DeclString(d))
	}
	return sb.String()
}

// TestRandomProgramsSurviveCFGAndPaths feeds generated programs through the
// whole front half of the pipeline (panics or errors fail the test).
func TestRandomProgramsSurviveCFGAndPaths(t *testing.T) {
	// Implemented in the paths package tests via importing would create a
	// cycle; here we only assert structural invariants of the AST.
	for seed := int64(0); seed < 50; seed++ {
		src := generate(seed)
		tu, err := Parse("g.c", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range tu.Funcs() {
			ids := cast.Idents(fn.Body)
			for _, id := range ids {
				if id == "" {
					t.Fatalf("seed %d: empty identifier in %s", seed, fn.Name)
				}
			}
		}
	}
}
