package cparse

import (
	"testing"

	"pallas/internal/cfg"
	"pallas/internal/paths"
)

// FuzzParse drives the whole front half of the pipeline with arbitrary
// input: lexing, parsing, CFG construction and bounded path extraction must
// never panic or hang, whatever the bytes. Run with `go test -fuzz=FuzzParse`
// for open-ended exploration; the seed corpus runs in normal test mode.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int f(void) { return 0; }",
		pageAllocSrc,
		"struct s { int a : 3; };\nint g(struct s *p) { return p->a; }",
		"int h(int n) { while (n) { n--; if (n == 3) break; } return n; }",
		"int i(int a) { switch (a) { case 1: return 1; default: return 0; } }",
		"#define X 1\nint j(void) { return X; }", // '#' survives outside cpp → parse error path
		"int k(void) { goto l; l: return 0; }",
		"typedef unsigned long ulong_t;\nulong_t m(ulong_t v) { return v << 1; }",
		"int f( { return; }",
		"\"unterminated",
		"int n(void) { return (1 ? 2 : 3) + sizeof(int); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tu, err := Parse("fuzz.c", src)
		if tu == nil {
			t.Fatal("Parse must always return a translation unit")
		}
		if err != nil {
			return // malformed input: error reported, nothing more to check
		}
		ex := paths.NewExtractor(tu, paths.Config{MaxPaths: 32, MaxBlockVisits: 2, InlineDepth: 1})
		for _, fn := range tu.Funcs() {
			if _, err := cfg.Build(fn); err != nil {
				continue // unresolved gotos etc. are legitimate errors
			}
			if _, err := ex.Extract(fn.Name); err != nil {
				t.Fatalf("extract %s: %v", fn.Name, err)
			}
		}
	})
}
