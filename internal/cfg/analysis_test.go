package cfg

import (
	"strings"
	"testing"

	"pallas/internal/cast"
)

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := buildFor(t, `
int f(int a) {
	if (a) return 1;
	return 0;
}`, "f")
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatal("RPO must start at entry")
	}
	// Every block visited exactly once.
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b.ID] {
			t.Fatalf("block %d repeated", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestDominators(t *testing.T) {
	g := buildFor(t, `
int f(int a) {
	int r = 0;
	if (a > 0)
		r = 1;
	else
		r = 2;
	return r;
}`, "f")
	idom := g.Dominators()
	if idom[g.Entry] != g.Entry {
		t.Fatal("entry must self-dominate")
	}
	// The entry dominates every reachable block.
	for _, b := range g.ReversePostorder() {
		if !g.Dominates(g.Entry, b) {
			t.Errorf("entry should dominate B%d", b.ID)
		}
	}
	// The then-branch does not dominate the join.
	var thenBlock, join *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			text := strings.TrimSpace(strings.ReplaceAll(cast.StmtString(s), "\n", ""))
			if text == "r = 1;" {
				thenBlock = b
			}
			if strings.HasPrefix(text, "return") {
				join = b
			}
		}
	}
	if thenBlock == nil || join == nil {
		t.Fatal("blocks not found")
	}
	if g.Dominates(thenBlock, join) {
		t.Error("then-branch must not dominate the join")
	}
}

func TestBackEdgesAndNaturalLoop(t *testing.T) {
	g := buildFor(t, `
int f(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++)
		s += i;
	return s;
}`, "f")
	backs := g.BackEdges()
	if len(backs) != 1 {
		t.Fatalf("want 1 back edge, got %d", len(backs))
	}
	loop := g.NaturalLoop(backs[0][0], backs[0][1])
	if len(loop) < 2 {
		t.Fatalf("loop too small: %d blocks", len(loop))
	}
	// The loop must contain the head and the tail.
	has := func(target *Block) bool {
		for _, b := range loop {
			if b == target {
				return true
			}
		}
		return false
	}
	if !has(backs[0][0]) || !has(backs[0][1]) {
		t.Error("loop must contain both ends of its back edge")
	}
}

func TestNoBackEdgesInStraightLine(t *testing.T) {
	g := buildFor(t, `int f(int a) { if (a) return 1; return 0; }`, "f")
	if n := len(g.BackEdges()); n != 0 {
		t.Fatalf("acyclic CFG reports %d back edges", n)
	}
}

func TestCyclomaticComplexity(t *testing.T) {
	straight := buildFor(t, `int f(void) { return 0; }`, "f")
	if c := straight.CyclomaticComplexity(); c != 1 {
		t.Errorf("straight-line complexity = %d, want 1", c)
	}
	branchy := buildFor(t, `
int f(int a, int b) {
	if (a) return 1;
	if (b) return 2;
	return 0;
}`, "f")
	if c := branchy.CyclomaticComplexity(); c != 3 {
		t.Errorf("two-branch complexity = %d, want 3", c)
	}
}

func TestRenderWorkflowShapes(t *testing.T) {
	g := buildFor(t, `
int f(int order) {
	if (order == 0)
		return 1;
	return 0;
}`, "f")
	out := RenderWorkflow(g)
	for _, want := range []string{"workflow f", "Sin", "Sout", "order == 0", "yes:", "no:"} {
		if !strings.Contains(out, want) {
			t.Errorf("workflow missing %q:\n%s", want, out)
		}
	}
	loopy := buildFor(t, `
int g(int n) {
	while (n > 0)
		n--;
	return n;
}`, "g")
	if out := RenderWorkflow(loopy); !strings.Contains(out, "loop back") {
		t.Errorf("loop annotation missing:\n%s", out)
	}
}

func TestRenderKeyElements(t *testing.T) {
	g := buildFor(t, `
int f(int pred, int err) {
	if (pred)
		return 0;
	if (err)
		return -1;
	return 1;
}`, "f")
	out := RenderKeyElements(g, []string{"pred"}, []string{"err"})
	for _, want := range []string{"Sin", "Ct", "Cfau", "Serr: return -1", "Sout: return 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("key elements missing %q:\n%s", want, out)
		}
	}
}
