package cfg

import "sort"

// ReversePostorder returns the blocks of g in reverse postorder from the
// entry — the canonical iteration order for forward dataflow analyses.
func (g *Graph) ReversePostorder() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var visit func(*Block)
	visit = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			visit(e.To)
		}
		post = append(post, b)
	}
	visit(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator map using the Cooper-Harvey-
// Kennedy iterative algorithm. The entry block maps to itself; unreachable
// blocks are absent.
func (g *Graph) Dominators() map[*Block]*Block {
	rpo := g.ReversePostorder()
	index := map[*Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	idom := map[*Block]*Block{g.Entry: g.Entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b (reflexively).
func (g *Graph) Dominates(a, b *Block) bool {
	idom := g.Dominators()
	for {
		if a == b {
			return true
		}
		parent, ok := idom[b]
		if !ok || parent == b {
			return false
		}
		b = parent
	}
}

// BackEdges returns the (tail, head) pairs where head dominates tail — the
// natural-loop back edges. Results are ordered by (tail.ID, head.ID).
func (g *Graph) BackEdges() [][2]*Block {
	idom := g.Dominators()
	dominates := func(a, b *Block) bool {
		for {
			if a == b {
				return true
			}
			parent, ok := idom[b]
			if !ok || parent == b {
				return false
			}
			b = parent
		}
	}
	var out [][2]*Block
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if dominates(e.To, b) {
				out = append(out, [2]*Block{b, e.To})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0].ID != out[j][0].ID {
			return out[i][0].ID < out[j][0].ID
		}
		return out[i][1].ID < out[j][1].ID
	})
	return out
}

// NaturalLoop returns the blocks of the natural loop of back edge
// (tail, head): head plus every block that reaches tail without passing
// through head.
func (g *Graph) NaturalLoop(tail, head *Block) []*Block {
	inLoop := map[*Block]bool{head: true}
	var stack []*Block
	if !inLoop[tail] {
		inLoop[tail] = true
		stack = append(stack, tail)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !inLoop[p] {
				inLoop[p] = true
				stack = append(stack, p)
			}
		}
	}
	var out []*Block
	for _, b := range g.Blocks {
		if inLoop[b] {
			out = append(out, b)
		}
	}
	return out
}

// CyclomaticComplexity returns E - N + 2 for the function's CFG, a standard
// measure of path-richness (fast paths are typically much simpler than their
// slow paths).
func (g *Graph) CyclomaticComplexity() int {
	return g.NumEdges() - len(g.Blocks) + 2
}
