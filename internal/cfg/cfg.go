// Package cfg builds control-flow graphs for parsed C functions. The path
// extractor (internal/paths) enumerates execution paths over these graphs;
// the checkers reason about conditions and state updates attached to edges
// and blocks.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"pallas/internal/cast"
	"pallas/internal/ctok"
)

// EdgeKind classifies a CFG edge.
type EdgeKind int

// Edge kinds.
const (
	Always  EdgeKind = iota // unconditional fallthrough / jump
	True                    // branch taken when the block condition is true
	False                   // branch taken when the block condition is false
	Case                    // switch case match
	Default                 // switch default
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case Always:
		return "always"
	case True:
		return "true"
	case False:
		return "false"
	case Case:
		return "case"
	case Default:
		return "default"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is one control transfer.
type Edge struct {
	To    *Block
	Kind  EdgeKind
	Label string // case value text for Case edges
}

// Block is one basic block. A block carries a straight-line statement list
// and, if it branches, the branch condition.
type Block struct {
	ID    int
	Stmts []cast.Stmt // DeclStmt / ExprStmt / ReturnStmt only
	// Cond is the branch condition when the block ends in a conditional or
	// switch; nil otherwise.
	Cond cast.Expr
	// Switch marks Cond as a switch tag rather than a boolean condition.
	Switch bool
	Succs  []Edge
	Preds  []*Block

	// Return holds the function's return expression when this block ends in
	// an explicit return statement (the ReturnStmt also appears in Stmts).
	Return *cast.ReturnStmt
}

// HasTerminatorCond reports whether the block ends with a branch condition.
func (b *Block) HasTerminatorCond() bool { return b.Cond != nil }

// Graph is the CFG of one function. A built graph is immutable: nothing in
// this package or its consumers mutates it after Build returns, so one graph
// may be read by any number of goroutines concurrently (the paths extractor
// caches graphs and shares them across its worker pool).
type Graph struct {
	Fn     *cast.FuncDecl
	Entry  *Block
	Exit   *Block // synthetic; all returns and falling-off-end lead here
	Blocks []*Block
}

// builder state.
type builder struct {
	g      *Graph
	nextID int
	labels map[string]*Block
	gotos  []pendingGoto
	// break/continue targets (innermost last)
	breaks    []*Block
	continues []*Block
}

type pendingGoto struct {
	from  *Block
	label string
	pos   ctok.Pos
}

// Build constructs the CFG for fn. fn must have a body. Build is a pure
// function of the (immutable) declaration — no package-level state — so
// concurrent Build calls, even for the same function, are safe and yield
// structurally identical graphs; callers may race duplicate builds and keep
// either result.
func Build(fn *cast.FuncDecl) (*Graph, error) {
	if fn.Body == nil {
		return nil, fmt.Errorf("cfg: function %s has no body", fn.Name)
	}
	b := &builder{g: &Graph{Fn: fn}, labels: map[string]*Block{}}
	b.g.Exit = b.newBlock() // allocate exit first so it is stable
	entry := b.newBlock()
	b.g.Entry = entry
	last := b.stmts(entry, fn.Body.Stmts)
	if last != nil {
		b.link(last, b.g.Exit, Always, "")
	}
	// Resolve gotos.
	var unresolved []string
	for _, pg := range b.gotos {
		target, ok := b.labels[pg.label]
		if !ok {
			unresolved = append(unresolved, fmt.Sprintf("%s: goto %s has no label", pg.pos, pg.label))
			continue
		}
		b.link(pg.from, target, Always, "")
	}
	b.prune()
	if len(unresolved) > 0 {
		return b.g, fmt.Errorf("cfg: %s", strings.Join(unresolved, "; "))
	}
	return b.g, nil
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: b.nextID}
	b.nextID++
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block, kind EdgeKind, label string) {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind, Label: label})
	to.Preds = append(to.Preds, from)
}

// stmts lowers a statement list starting in cur; returns the block where
// control continues, or nil if control cannot fall through (return/goto...).
func (b *builder) stmts(cur *Block, list []cast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/goto: still lower labels inside
			// it (they may be goto targets), starting a fresh block.
			if !containsLabel(s) {
				continue
			}
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func containsLabel(s cast.Stmt) bool {
	found := false
	cast.Walk(s, func(n cast.Node) bool {
		if _, ok := n.(*cast.LabelStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func (b *builder) stmt(cur *Block, s cast.Stmt) *Block {
	switch x := s.(type) {
	case *cast.DeclStmt, *cast.ExprStmt:
		cur.Stmts = append(cur.Stmts, s)
		return cur
	case *cast.EmptyStmt:
		return cur
	case *cast.CompoundStmt:
		return b.stmts(cur, x.Stmts)
	case *cast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, x)
		cur.Return = x
		b.link(cur, b.g.Exit, Always, "")
		return nil
	case *cast.IfStmt:
		cur.Cond = x.Cond
		thenB := b.newBlock()
		b.link(cur, thenB, True, "")
		thenEnd := b.stmt(thenB, x.Then)
		var elseEnd *Block
		join := b.newBlock()
		if x.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB, False, "")
			elseEnd = b.stmt(elseB, x.Else)
		} else {
			b.link(cur, join, False, "")
		}
		if thenEnd != nil {
			b.link(thenEnd, join, Always, "")
		}
		if elseEnd != nil {
			b.link(elseEnd, join, Always, "")
		}
		return join
	case *cast.WhileStmt:
		head := b.newBlock()
		b.link(cur, head, Always, "")
		head.Cond = x.Cond
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body, True, "")
		b.link(head, after, False, "")
		b.pushLoop(after, head)
		bodyEnd := b.stmt(body, x.Body)
		b.popLoop()
		if bodyEnd != nil {
			b.link(bodyEnd, head, Always, "")
		}
		return after
	case *cast.DoWhileStmt:
		body := b.newBlock()
		b.link(cur, body, Always, "")
		cond := b.newBlock()
		after := b.newBlock()
		b.pushLoop(after, cond)
		bodyEnd := b.stmt(body, x.Body)
		b.popLoop()
		if bodyEnd != nil {
			b.link(bodyEnd, cond, Always, "")
		}
		cond.Cond = x.Cond
		b.link(cond, body, True, "")
		b.link(cond, after, False, "")
		return after
	case *cast.ForStmt:
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		head := b.newBlock()
		b.link(cur, head, Always, "")
		body := b.newBlock()
		after := b.newBlock()
		if x.Cond != nil {
			head.Cond = x.Cond
			b.link(head, body, True, "")
			b.link(head, after, False, "")
		} else {
			b.link(head, body, Always, "")
		}
		post := b.newBlock()
		b.pushLoop(after, post)
		bodyEnd := b.stmt(body, x.Body)
		b.popLoop()
		if bodyEnd != nil {
			b.link(bodyEnd, post, Always, "")
		}
		if x.Post != nil {
			post.Stmts = append(post.Stmts, &cast.ExprStmt{X: x.Post, P: x.Post.Pos()})
		}
		b.link(post, head, Always, "")
		return after
	case *cast.SwitchStmt:
		cur.Cond = x.Tag
		cur.Switch = true
		after := b.newBlock()
		b.pushLoop(after, nil) // break targets after; continue passes through
		// Lower case bodies with fallthrough between consecutive clauses.
		caseBlocks := make([]*Block, len(x.Cases))
		for i := range x.Cases {
			caseBlocks[i] = b.newBlock()
		}
		hasDefault := false
		for i, c := range x.Cases {
			if c.Values == nil {
				hasDefault = true
				b.link(cur, caseBlocks[i], Default, "")
			} else {
				for _, v := range c.Values {
					b.link(cur, caseBlocks[i], Case, cast.ExprString(v))
				}
			}
			end := b.stmts(caseBlocks[i], c.Body)
			if end != nil {
				if i+1 < len(x.Cases) {
					b.link(end, caseBlocks[i+1], Always, "")
				} else {
					b.link(end, after, Always, "")
				}
			}
		}
		if !hasDefault {
			b.link(cur, after, Default, "")
		}
		b.popLoop()
		return after
	case *cast.BreakStmt:
		if t := b.breakTarget(); t != nil {
			b.link(cur, t, Always, "")
		} else {
			b.link(cur, b.g.Exit, Always, "")
		}
		return nil
	case *cast.ContinueStmt:
		if t := b.continueTarget(); t != nil {
			b.link(cur, t, Always, "")
		} else {
			b.link(cur, b.g.Exit, Always, "")
		}
		return nil
	case *cast.GotoStmt:
		b.gotos = append(b.gotos, pendingGoto{from: cur, label: x.Label, pos: x.P})
		return nil
	case *cast.LabelStmt:
		lb := b.newBlock()
		b.labels[x.Name] = lb
		if cur != nil {
			b.link(cur, lb, Always, "")
		}
		if x.Stmt != nil {
			return b.stmt(lb, x.Stmt)
		}
		return lb
	default:
		// Unknown statement kinds are treated as opaque straight-line code.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) breakTarget() *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i] != nil {
			return b.breaks[i]
		}
	}
	return nil
}

func (b *builder) continueTarget() *Block {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if b.continues[i] != nil {
			return b.continues[i]
		}
	}
	return nil
}

// prune removes unreachable empty blocks and renumbers.
func (b *builder) prune() {
	reach := b.g.reachableSet()
	var kept []*Block
	for _, blk := range b.g.Blocks {
		if reach[blk] || blk == b.g.Exit {
			kept = append(kept, blk)
		}
	}
	// Rebuild pred lists from kept blocks only.
	for _, blk := range kept {
		blk.Preds = nil
	}
	for _, blk := range kept {
		var succs []Edge
		for _, e := range blk.Succs {
			if reach[e.To] || e.To == b.g.Exit {
				succs = append(succs, e)
				e.To.Preds = append(e.To.Preds, blk)
			}
		}
		blk.Succs = succs
	}
	for i, blk := range kept {
		blk.ID = i
	}
	b.g.Blocks = kept
}

func (g *Graph) reachableSet() map[*Block]bool {
	reach := map[*Block]bool{}
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk == nil || reach[blk] {
			return
		}
		reach[blk] = true
		for _, e := range blk.Succs {
			visit(e.To)
		}
	}
	visit(g.Entry)
	return reach
}

// NumEdges counts the edges in the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, blk := range g.Blocks {
		n += len(blk.Succs)
	}
	return n
}

// Conditions returns every branch condition expression in block order.
func (g *Graph) Conditions() []cast.Expr {
	var out []cast.Expr
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			out = append(out, blk.Cond)
		}
	}
	return out
}

// Returns lists the return statements in the function in block order.
func (g *Graph) Returns() []*cast.ReturnStmt {
	var out []*cast.ReturnStmt
	for _, blk := range g.Blocks {
		if blk.Return != nil {
			out = append(out, blk.Return)
		}
	}
	return out
}

// String renders the CFG in a compact text form for tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s: %d blocks, %d edges\n", g.Fn.Name, len(g.Blocks), g.NumEdges())
	blocks := append([]*Block(nil), g.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	for _, blk := range blocks {
		tag := ""
		if blk == g.Entry {
			tag = " (entry)"
		}
		if blk == g.Exit {
			tag += " (exit)"
		}
		fmt.Fprintf(&sb, "B%d%s:\n", blk.ID, tag)
		for _, s := range blk.Stmts {
			sb.WriteString("  " + strings.TrimRight(cast.StmtString(s), "\n") + "\n")
		}
		if blk.Cond != nil {
			kw := "if"
			if blk.Switch {
				kw = "switch"
			}
			fmt.Fprintf(&sb, "  %s %s\n", kw, cast.ExprString(blk.Cond))
		}
		for _, e := range blk.Succs {
			lbl := e.Kind.String()
			if e.Label != "" {
				lbl += " " + e.Label
			}
			fmt.Fprintf(&sb, "  -> B%d [%s]\n", e.To.ID, lbl)
		}
	}
	return sb.String()
}

// Dot renders the graph in Graphviz dot syntax.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Fn.Name)
	for _, blk := range g.Blocks {
		label := fmt.Sprintf("B%d", blk.ID)
		if blk.Cond != nil {
			label += "\\n" + escapeDot(cast.ExprString(blk.Cond)) + "?"
		}
		if blk == g.Entry {
			label += "\\n(entry)"
		}
		if blk == g.Exit {
			label += "\\n(exit)"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", blk.ID, label)
		for _, e := range blk.Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%s\"];\n", blk.ID, e.To.ID, e.Kind)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
