package cfg

import (
	"fmt"
	"strings"

	"pallas/internal/cast"
)

// RenderWorkflow draws the function's control flow as an indented ASCII
// workflow in the style of the paper's Figure 1: branch conditions become
// decision points with yes/no arms, straight-line blocks become steps, and
// returns become terminal states. The rendering is a readable approximation,
// not a full graph layout; back edges are annotated rather than drawn.
func RenderWorkflow(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workflow %s\n", g.Fn.Name)
	sb.WriteString("Sin\n")
	r := &renderer{g: g, sb: &sb, onPath: map[*Block]bool{}, done: map[*Block]bool{}}
	r.block(g.Entry, 1)
	sb.WriteString("Sout\n")
	return sb.String()
}

type renderer struct {
	g      *Graph
	sb     *strings.Builder
	onPath map[*Block]bool
	done   map[*Block]bool
}

func (r *renderer) indent(depth int) {
	for i := 0; i < depth; i++ {
		r.sb.WriteString("  ")
	}
}

func (r *renderer) block(b *Block, depth int) {
	if b == nil || b == r.g.Exit {
		return
	}
	if r.onPath[b] {
		r.indent(depth)
		fmt.Fprintf(r.sb, "(loop back to S%d)\n", b.ID)
		return
	}
	if r.done[b] {
		r.indent(depth)
		fmt.Fprintf(r.sb, "(join S%d)\n", b.ID)
		return
	}
	r.onPath[b] = true
	defer func() { r.onPath[b] = false; r.done[b] = true }()

	for _, s := range b.Stmts {
		r.indent(depth)
		line := strings.TrimRight(cast.StmtString(s), "\n")
		// Multi-line statements are summarized by their first line.
		if i := strings.IndexByte(line, '\n'); i >= 0 {
			line = line[:i] + " ..."
		}
		fmt.Fprintf(r.sb, "S%d: %s\n", b.ID, strings.TrimSpace(line))
	}
	if b.Return != nil {
		return // terminal; return already printed as a statement
	}
	if b.Cond == nil {
		for _, e := range b.Succs {
			r.block(e.To, depth)
		}
		return
	}
	r.indent(depth)
	kw := "?"
	if b.Switch {
		kw = "switch"
	}
	fmt.Fprintf(r.sb, "S%d %s %s\n", b.ID, kw, cast.ExprString(b.Cond))
	for _, e := range b.Succs {
		r.indent(depth)
		label := map[EdgeKind]string{True: "yes:", False: "no:", Default: "default:"}[e.Kind]
		if e.Kind == Case {
			label = "case " + e.Label + ":"
		}
		if e.Kind == Always {
			label = "then:"
		}
		fmt.Fprintf(r.sb, "%s\n", label)
		r.block(e.To, depth+1)
	}
}

// RenderKeyElements prints the Figure-2 key-element model of a fast path,
// instantiated with the function's actual conditions and outputs: Sin, the
// trigger conditions (Ct), the fault conditions (Cfau), and the outputs
// (Sout/Serr).
func RenderKeyElements(g *Graph, triggerVars, faultStates []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "key elements of fast path %s (Figure 2 model)\n", g.Fn.Name)
	fmt.Fprintf(&sb, "  Sin : %s\n", signatureOf(g.Fn))
	for _, c := range g.Conditions() {
		kind := "Ct  "
		text := cast.ExprString(c)
		for _, f := range faultStates {
			if strings.Contains(text, f) {
				kind = "Cfau"
			}
		}
		fmt.Fprintf(&sb, "  %s: %s\n", kind, text)
	}
	if len(triggerVars) > 0 {
		fmt.Fprintf(&sb, "  trigger variables: %s\n", strings.Join(triggerVars, ", "))
	}
	if len(faultStates) > 0 {
		fmt.Fprintf(&sb, "  fault states: %s\n", strings.Join(faultStates, ", "))
	}
	for _, ret := range g.Returns() {
		if ret.X == nil {
			fmt.Fprintf(&sb, "  Sout: void\n")
			continue
		}
		text := cast.ExprString(ret.X)
		kind := "Sout"
		if strings.HasPrefix(text, "-") {
			kind = "Serr"
		}
		fmt.Fprintf(&sb, "  %s: return %s\n", kind, text)
	}
	return sb.String()
}

func signatureOf(fn *cast.FuncDecl) string {
	parts := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		parts[i] = p.Type.String() + " " + p.Name
	}
	return fn.Name + "(" + strings.Join(parts, ", ") + ")"
}
