package cfg

import (
	"testing"

	"pallas/internal/cparse"
)

func buildFor(t *testing.T, src, fn string) *Graph {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := tu.Func(fn)
	if f == nil {
		t.Fatalf("function %s missing", fn)
	}
	g, err := Build(f)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g
}

func TestIfElse(t *testing.T) {
	g := buildFor(t, `
int f(int a) {
	int r = 0;
	if (a > 0)
		r = 1;
	else
		r = 2;
	return r;
}`, "f")
	conds := g.Conditions()
	if len(conds) != 1 {
		t.Fatalf("want 1 condition, got %d", len(conds))
	}
	rets := g.Returns()
	if len(rets) != 1 {
		t.Fatalf("want 1 return, got %d", len(rets))
	}
	// Entry must reach exit.
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("entry does not reach exit")
	}
}

func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var rec func(*Block) bool
	rec = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if rec(e.To) {
				return true
			}
		}
		return false
	}
	return rec(from)
}

func TestLoopsHaveBackEdges(t *testing.T) {
	g := buildFor(t, `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++)
		s += i;
	while (s > 100)
		s /= 2;
	do { s++; } while (s < 10);
	return s;
}`, "sum")
	if len(g.Conditions()) != 3 {
		t.Fatalf("want 3 loop conditions, got %d", len(g.Conditions()))
	}
	// A back edge exists: some successor has an ID <= its source in RPO; we
	// just check the graph is cyclic by counting edges >= blocks.
	if g.NumEdges() < len(g.Blocks) {
		t.Fatalf("expected cyclic graph: %d edges, %d blocks", g.NumEdges(), len(g.Blocks))
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	g := buildFor(t, `
int cls(int x) {
	int r;
	switch (x) {
	case 0:
	case 1:
		r = 10;
		break;
	case 2:
		r = 20;
	default:
		r = 30;
	}
	return r;
}`, "cls")
	var sw *Block
	for _, b := range g.Blocks {
		if b.Switch {
			sw = b
		}
	}
	if sw == nil {
		t.Fatal("no switch block")
	}
	// case 0, case 1, case 2, default = 4 outgoing edges.
	if len(sw.Succs) != 4 {
		t.Fatalf("switch should have 4 successors, got %d", len(sw.Succs))
	}
	caseEdges := 0
	defEdges := 0
	for _, e := range sw.Succs {
		switch e.Kind {
		case Case:
			caseEdges++
		case Default:
			defEdges++
		}
	}
	if caseEdges != 3 || defEdges != 1 {
		t.Fatalf("case=%d default=%d", caseEdges, defEdges)
	}
}

func TestGotoResolution(t *testing.T) {
	g := buildFor(t, `
int f(int a) {
	if (a < 0)
		goto fail;
	return a;
fail:
	return -1;
}`, "f")
	if len(g.Returns()) != 2 {
		t.Fatalf("want 2 returns, got %d", len(g.Returns()))
	}
}

func TestGotoUnresolvedIsError(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
int f(int a) {
	goto nowhere;
	return a;
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Build(tu.Func("f")); err == nil {
		t.Fatal("expected unresolved-goto error")
	}
}

func TestBreakContinueInLoop(t *testing.T) {
	g := buildFor(t, `
int scan(int *a, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (a[i] == 0)
			continue;
		if (a[i] < 0)
			break;
	}
	return i;
}`, "scan")
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("entry must reach exit")
	}
	if len(g.Conditions()) != 3 {
		t.Fatalf("want 3 conditions, got %d", len(g.Conditions()))
	}
}

func TestUnreachableAfterReturnPruned(t *testing.T) {
	g := buildFor(t, `
int f(void) {
	return 1;
	return 2;
}`, "f")
	if n := len(g.Returns()); n != 1 {
		t.Fatalf("unreachable return should be pruned, got %d returns", n)
	}
}

func TestDotAndStringRender(t *testing.T) {
	g := buildFor(t, `int f(int a){ if (a) return 1; return 0; }`, "f")
	if s := g.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
	dot := g.Dot()
	if len(dot) == 0 || dot[0] != 'd' {
		t.Fatalf("bad dot output: %q", dot)
	}
}

func TestNoBodyError(t *testing.T) {
	tu, err := cparse.Parse("t.c", `int proto(int a);`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(tu.Funcs()) != 0 {
		t.Fatal("prototype should not count as definition")
	}
}
