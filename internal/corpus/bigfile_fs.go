package corpus

// BigFileFS returns the third subsystem-scale unit: a synthetic
// fs/ubifs/file.c with the budgeted-write machinery of Figure 1(b) — space
// accounting, the budget-skip fast path, write-back, commit, and page-state
// management. Three defects are seeded: the fast path drops the result of
// the direct space acquisition (rule 3.3 — the data-loss pattern of §3.4),
// it never consults the ENOSPC fault state (rule 4.1), and it reports
// failure as -1 where the slow path and every caller use -ENOSPC (rule 3.2).
func BigFileFS() (source, spec string) {
	return bigFileFSSource, bigFileFSSpec
}

const bigFileFSSpec = `
pair ubifs_write_begin_fast ubifs_write_begin_slow
cond ubifs_write_begin_fast:free_space
check_return acquire_space_directly ubifs_budget_space
fault ubifs_write_begin_fast:enospc
returns ubifs_write_begin_slow {0, -28}
`

const bigFileFSSource = `
enum { ENOSPC = 28 };
enum page_state { PG_CLEAN = 0, PG_DIRTY = 1, PG_WRITEBACK = 2 };

struct ubifs_budget_req {
	int new_page;
	int dirtied_page;
	long idx_growth;
	long data_growth;
};

struct ubifs_info {
	long free_space;
	long budget_reserve;
	long dirty_pages;
	int enospc;
	int commit_running;
};

struct ubifs_page {
	int state;
	int len;
	unsigned long index;
};

static long ubifs_calc_growth(struct ubifs_budget_req *req)
{
	long growth = req->idx_growth + req->data_growth;
	if (req->new_page)
		growth += 4096;
	if (req->dirtied_page)
		growth += 512;
	return growth;
}

static int ubifs_run_commit(struct ubifs_info *c)
{
	if (c->commit_running)
		return -1;
	c->commit_running = 1;
	c->free_space += c->budget_reserve;
	c->budget_reserve = 0;
	c->commit_running = 0;
	return 0;
}

static long ubifs_writeback(struct ubifs_info *c, long needed)
{
	long reclaimed = 0;
	while (reclaimed < needed) {
		if (c->dirty_pages == 0)
			break;
		c->dirty_pages--;
		reclaimed += 4096;
	}
	c->free_space += reclaimed;
	return reclaimed;
}

int ubifs_budget_space(struct ubifs_info *c, struct ubifs_budget_req *req)
{
	long growth = ubifs_calc_growth(req);
	if (c->free_space >= growth) {
		c->free_space -= growth;
		c->budget_reserve += growth;
		return 0;
	}
	ubifs_writeback(c, growth - c->free_space);
	if (c->free_space >= growth) {
		c->free_space -= growth;
		c->budget_reserve += growth;
		return 0;
	}
	if (ubifs_run_commit(c) == 0 && c->free_space >= growth) {
		c->free_space -= growth;
		c->budget_reserve += growth;
		return 0;
	}
	c->enospc = 1;
	return -ENOSPC;
}

static int acquire_space_directly(struct ubifs_info *c, int len)
{
	if (c->free_space < len)
		return -ENOSPC;
	c->free_space -= len;
	return 0;
}

/* Fast path: plenty of space — skip the budget procedure entirely.
 * BUG (seeded, rule 3.3): the result of the direct acquisition is dropped;
 * a concurrent writer can consume the space between the check and the
 * acquisition, and the lost error surfaces later as data loss.
 * BUG (seeded, rule 4.1): the ENOSPC fault state is never consulted. */
int ubifs_write_begin_fast(struct ubifs_info *c, struct ubifs_page *page)
{
	if (c->free_space < page->len * 4)
		return -1; /* not comfortably free: slow path */
	acquire_space_directly(c, page->len);
	page->state = PG_DIRTY;
	return 0;
}

/* Slow path: budget first; the budget procedure may write back or commit. */
int ubifs_write_begin_slow(struct ubifs_info *c, struct ubifs_page *page)
{
	struct ubifs_budget_req req;
	int err;
	req.new_page = 1;
	req.dirtied_page = 0;
	req.idx_growth = 0;
	req.data_growth = page->len;
	err = ubifs_budget_space(c, &req);
	if (err) {
		if (c->enospc)
			return -ENOSPC;
		return -ENOSPC;
	}
	page->state = PG_DIRTY;
	return 0;
}

int ubifs_release_budget(struct ubifs_info *c, long amount)
{
	if (amount > c->budget_reserve)
		amount = c->budget_reserve;
	c->budget_reserve -= amount;
	c->free_space += amount;
	return 0;
}
`
