package corpus

import (
	"testing"

	"pallas/internal/checkers"
	"pallas/internal/cparse"
	"pallas/internal/paths"
	"pallas/internal/report"
	"pallas/internal/spec"
)

func runCase(t *testing.T, c *Case, source string) *report.Report {
	t.Helper()
	tu, err := cparse.Parse(c.File, source)
	if err != nil {
		t.Fatalf("%s: parse: %v\nsource:\n%s", c.ID, err, source)
	}
	sp, err := spec.Parse(c.Spec)
	if err != nil {
		t.Fatalf("%s: spec: %v", c.ID, err)
	}
	ctx, err := checkers.NewContext(tu, sp, paths.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: context: %v", c.ID, err)
	}
	return checkers.Run(ctx)
}

// TestEveryCaseProducesExpectedWarnings is the linchpin of the Table-1
// reproduction: each seeded bug and each false-positive trap yields exactly
// one warning of the declared finding; nothing else fires.
func TestEveryCaseProducesExpectedWarnings(t *testing.T) {
	reg := Generate()
	if len(reg.Cases) == 0 {
		t.Fatal("empty corpus")
	}
	for _, c := range reg.Cases {
		r := runCase(t, c, c.Source)
		if len(r.Warnings) != 1 {
			t.Errorf("%s (%s): want exactly 1 warning, got %d: %+v",
				c.ID, c.Kind, len(r.Warnings), r.Warnings)
			continue
		}
		if got := r.Warnings[0].Finding; got != c.Finding {
			t.Errorf("%s: finding = %s, want %s", c.ID, got, c.Finding)
		}
	}
}

// TestCleanVariantsAreClean verifies the fixed versions are warning-free —
// the substrate the completeness experiment injects into.
func TestCleanVariantsAreClean(t *testing.T) {
	for _, c := range CleanCases() {
		r := runCase(t, c, c.Source)
		if len(r.Warnings) != 0 {
			t.Errorf("%s: clean source produced %d warning(s): %+v",
				c.ID, len(r.Warnings), r.Warnings)
		}
	}
}

// TestTable1CellCounts verifies the corpus seeds exactly the published cell
// counts: 155 bugs, 224 warnings overall.
func TestTable1CellCounts(t *testing.T) {
	reg := Generate()
	totalB, totalW := 0, 0
	for _, row := range Table1() {
		rowB := 0
		for sysIdx, sys := range Systems() {
			got := reg.CellCount(row.Finding, sys, Bug)
			if got != row.Bugs[sysIdx] {
				t.Errorf("cell (%s, %s): %d bugs, want %d", row.Finding, sys, got, row.Bugs[sysIdx])
			}
			rowB += got
		}
		traps := len(reg.ByFinding(row.Finding)) - rowB
		if rowB+traps != row.Warnings {
			t.Errorf("row %s: B+traps = %d, want W = %d", row.Finding, rowB+traps, row.Warnings)
		}
		totalB += rowB
		totalW += rowB + traps
	}
	if totalB != 155 {
		t.Errorf("total bugs = %d, want 155", totalB)
	}
	if totalW != 224 {
		t.Errorf("total warnings = %d, want 224", totalW)
	}
}

func TestTable7CasesPresent(t *testing.T) {
	reg := Generate()
	rows := reg.Table7Cases()
	if len(rows) != 34 {
		t.Fatalf("want 34 Table-7 cases, got %d", len(rows))
	}
	for _, c := range rows {
		if c.Kind != Bug {
			t.Errorf("%s: Table-7 case must be a bug", c.ID)
		}
		if c.File == "" || c.Operation == "" || c.Consequence == "" {
			t.Errorf("%s: missing Table-7 metadata: %+v", c.ID, c)
		}
	}
}

func TestRegistryLookups(t *testing.T) {
	reg := Generate()
	ids := reg.SortIDs()
	if len(ids) != len(reg.Cases) {
		t.Fatalf("id count mismatch")
	}
	if reg.Get(ids[0]) == nil {
		t.Fatal("Get by id failed")
	}
	for _, sys := range Systems() {
		if len(reg.BySystem(sys)) == 0 {
			t.Errorf("no cases for system %s", sys)
		}
	}
	if len(reg.Bugs())+len(reg.Traps()) != len(reg.Cases) {
		t.Error("bugs + traps != all cases")
	}
}

func TestLatentMeanNearPaper(t *testing.T) {
	reg := Generate()
	sum, n := 0.0, 0
	for _, c := range reg.Bugs() {
		if c.LatentYears > 0 {
			sum += c.LatentYears
			n++
		}
	}
	if n == 0 {
		t.Fatal("no latent data")
	}
	mean := sum / float64(n)
	if mean < 2.6 || mean > 3.6 {
		t.Errorf("mean latent period = %.2f years, want ≈3.1", mean)
	}
}

func TestInventory(t *testing.T) {
	inv := Inventory()
	if len(inv) != len(Systems()) {
		t.Fatalf("inventory size %d", len(inv))
	}
	for i, info := range inv {
		if info.System != Systems()[i] {
			t.Errorf("inventory[%d] = %s, want %s", i, info.System, Systems()[i])
		}
	}
}
