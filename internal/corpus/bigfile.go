package corpus

// BigFile returns a subsystem-scale merged translation unit: a synthetic
// mm/page_alloc.c with the supporting structures and a dozen interacting
// functions (watermark checks, per-cpu list management, zone iteration,
// compaction and reclaim fallbacks, statistics). It stresses the front-end
// (nesting, loops, switches, gotos, macros handled upstream) far beyond the
// template cases and carries two seeded defects the full spec catches:
// the gfp_mask overwrite on the slow-path handoff and the stale per-cpu
// cache after zone invalidation.
func BigFile() (source, spec string) {
	return bigFileSource, bigFileSpec
}

// bigFileSpec covers both the allocation and free fast paths in one spec;
// the "func:" scoping keeps the trigger-condition and fault obligations from
// cross-multiplying onto the free path.
const bigFileSpec = `
pair get_page_from_freelist __alloc_pages_slowpath
fastpath __alloc_pages_nodemask free_unref_page
immutable gfp_mask migratetype
correlated preferred_zone nodemask
cond __alloc_pages_nodemask:order __alloc_pages_nodemask:nodemask
cond get_page_from_freelist:order get_page_from_freelist:nodemask
order watermark_ok compact_ok
check_return zone_reclaim
fault __alloc_pages_nodemask:oom_failed
hotstruct free_area
cache pcp_cache of zone
`

const bigFileSource = `
enum zone_type { ZONE_DMA = 0, ZONE_NORMAL = 1, ZONE_MOVABLE = 2, MAX_NR_ZONES = 3 };
enum migrate_mode { MIGRATE_UNMOVABLE = 0, MIGRATE_MOVABLE = 1, MIGRATE_RECLAIMABLE = 2, MIGRATE_TYPES = 3 };

struct page {
	unsigned long flags;
	unsigned long private;
	int refcount;
	int order;
};

struct free_area {
	struct page *free_list;
	unsigned long nr_free;
};

struct per_cpu_pages {
	int count;
	int high;
	int batch;
	struct page *lists[3];
};

struct zone {
	int id;
	int lock;
	unsigned long watermark[3];
	unsigned long nr_reserved;
	struct free_area areas[11];
	struct per_cpu_pages pcp;
	int pcp_cache;
	unsigned long vm_stat[4];
	int oom_failed;
};

struct alloc_context {
	struct zone *preferred_zone;
	unsigned long nodemask;
	int high_zoneidx;
	int migratetype;
};

static unsigned long total_alloc_events = 0;

static int zone_watermark_ok(struct zone *zone, unsigned int order, unsigned long mark)
{
	unsigned long free_pages = 0;
	int o;
	for (o = 0; o < 11; o++)
		free_pages += zone->areas[o].nr_free << o;
	if (free_pages <= mark + zone->nr_reserved)
		return 0;
	for (o = 0; o < (int)order; o++) {
		free_pages -= zone->areas[o].nr_free << o;
		if (free_pages <= mark >> (o + 1))
			return 0;
	}
	return 1;
}

static void zone_statistics(struct zone *zone, int item)
{
	switch (item) {
	case 0:
		zone->vm_stat[0]++;
		break;
	case 1:
		zone->vm_stat[1]++;
		break;
	default:
		zone->vm_stat[3]++;
	}
	total_alloc_events++;
}

static struct page *rmqueue_pcplist(struct zone *zone, int migratetype)
{
	struct page *page = 0;
	if (migratetype < 0 || migratetype >= 3)
		return 0;
	page = zone->pcp.lists[migratetype];
	if (page) {
		zone->pcp.count--;
		zone->pcp_cache = zone->pcp.count;
	}
	return page;
}

static struct page *rmqueue_buddy(struct zone *zone, unsigned int order, int migratetype)
{
	struct page *page = 0;
	int current_order;
	zone->lock = 1;
	for (current_order = (int)order; current_order < 11; current_order++) {
		struct free_area *area = &zone->areas[current_order];
		if (area->nr_free == 0)
			continue;
		page = area->free_list;
		area->nr_free--;
		page->private = migratetype;
		page->order = current_order;
		break;
	}
	zone->lock = 0;
	return page;
}

/* The order-0 fast path: serve from the per-cpu lists without the lock. */
struct page *get_page_from_freelist(unsigned long gfp_mask, unsigned int order,
				    struct alloc_context *ac, struct zone *preferred_zone,
				    unsigned long nodemask, int migratetype)
{
	struct page *page = 0;
	if (order == 0 && (nodemask & (1UL << preferred_zone->id))) {
		page = rmqueue_pcplist(preferred_zone, migratetype);
		if (page) {
			zone_statistics(preferred_zone, 0);
			return page;
		}
	}
	if (!zone_watermark_ok(preferred_zone, order, preferred_zone->watermark[1]))
		return 0;
	page = rmqueue_buddy(preferred_zone, order, migratetype);
	if (page)
		zone_statistics(preferred_zone, 1);
	return page;
}

static int compact_zone_order(struct zone *zone, unsigned int order)
{
	unsigned long scanned = 0;
	int progress = 0;
	while (scanned < (1UL << order)) {
		scanned++;
		if (zone->areas[0].nr_free > scanned)
			progress++;
	}
	return progress > 0;
}

int zone_reclaim(struct zone *zone, unsigned long gfp_mask, unsigned int order);

static struct page *try_compaction(unsigned long gfp_mask, unsigned int order,
				   struct alloc_context *ac, struct zone *preferred_zone,
				   unsigned long nodemask, int migratetype)
{
	int compact_ok;
	int watermark_ok = zone_watermark_ok(preferred_zone, order, preferred_zone->watermark[0]);
	if (watermark_ok)
		return get_page_from_freelist(gfp_mask, order, ac, preferred_zone, nodemask, migratetype);
	compact_ok = compact_zone_order(preferred_zone, order);
	if (compact_ok)
		return get_page_from_freelist(gfp_mask, order, ac, preferred_zone, nodemask, migratetype);
	return 0;
}

/* The slow path: reclaim, compaction, OOM. */
struct page *__alloc_pages_slowpath(unsigned long gfp_mask, unsigned int order,
				    struct alloc_context *ac, struct zone *preferred_zone,
				    unsigned long nodemask, int migratetype)
{
	struct page *page = 0;
	int retries = 0;
	int ret;

retry:
	ret = zone_reclaim(preferred_zone, gfp_mask, order);
	if (ret < 0)
		goto failed;
	page = try_compaction(gfp_mask, order, ac, preferred_zone, nodemask, migratetype);
	if (page)
		return page;
	retries++;
	if (retries < 3)
		goto retry;
	if (preferred_zone->oom_failed)
		goto failed;
	return 0;
failed:
	zone_statistics(preferred_zone, 2);
	return 0;
}

/* The allocator entry point: fast path first, slow path on miss. */
struct page *__alloc_pages_nodemask(unsigned long gfp_mask, unsigned int order,
				    struct alloc_context *ac, struct zone *preferred_zone,
				    unsigned long nodemask, int migratetype)
{
	struct page *page;
	/* BUG (seeded): the immutable gfp_mask is clobbered for the no-IO
	 * window and never restored — the caller's next allocation runs with
	 * the wrong behaviour flags (the Table-5 defect at subsystem scale). */
	gfp_mask = gfp_mask & ~0x40UL;
	page = get_page_from_freelist(gfp_mask, order, ac, preferred_zone, nodemask, migratetype);
	if (page)
		return page;
	return __alloc_pages_slowpath(gfp_mask, order, ac, preferred_zone, nodemask, migratetype);
}

/* Free path: order-0 pages go back to the per-cpu lists.
 * BUG (seeded): the zone's cached pcp count is not refreshed. */
void free_unref_page(struct zone *zone, struct page *page, int migratetype)
{
	if (page->order == 0 && migratetype >= 0 && migratetype < 3) {
		page->private = 0;
		zone->pcp.lists[migratetype] = page;
		zone->pcp.count++;
		return;
	}
	zone->areas[page->order].nr_free++;
}

unsigned long nr_free_pages(struct zone *zone)
{
	unsigned long total = 0;
	int o;
	for (o = 0; o < 11; o++)
		total += zone->areas[o].nr_free << o;
	return total;
}
`
