package corpus

// Feasibility cases: deliberately infeasible-path false positives, kept
// OUTSIDE Generate() so the Table-1 counts the registry pins stay exact.
// Each case guards a rule violation behind branch conditions that can never
// hold together, reproducing the paper's §5.3 "infeasible path" FP source:
// the fast tier walks every structural path and warns; a precision tier that
// accumulates the path's branch conditions proves the contradiction, prunes
// the path before any checker runs, and reports nothing.

// FeasCase is one seeded infeasible-path false positive.
type FeasCase struct {
	// ID is unique among feasibility cases ("feas/interval/0").
	ID string
	// Source is the C translation unit to analyze.
	Source string
	// Spec holds the semantic directives.
	Spec string
	// Finding is the false warning the fast tier reports (report.Find*).
	Finding string
	// MinTier is the weakest precision tier that prunes the infeasible
	// path and silences the false positive ("balanced" or "strict").
	MinTier string
	// FPSource describes the §5.3 false-positive source.
	FPSource string
}

// FeasCases returns the feasibility mini-corpus. Every case is a trap: the
// expected behavior is a warning on the fast tier and silence from MinTier
// upward, with the layer's pruned-path counter going nonzero.
func FeasCases() []FeasCase {
	return []FeasCase{
		{
			// mode > 3 and mode < 2 cannot both hold: the immutable write is
			// dead code, but a structural walk still reaches it. A single
			// variable's interval suffices, so balanced already prunes it.
			ID: "feas/interval/0",
			Source: `struct req { int len; };
int f(struct req *r, int mode) {
	if (mode > 3) {
		if (mode < 2) {
			mode = 0;
		}
	}
	return r->len;
}
`,
			Spec:     "fastpath f\nimmutable mode\n",
			Finding:  "state-overwrite",
			MinTier:  "balanced",
			FPSource: "infeasible path (single-variable interval contradiction)",
		},
		{
			// mode >= 8 bounds the interval away from the inner equality's
			// point value. Environment refinement binds mode := 3 on the
			// inner taken edge but never re-examines the outer bound, so the
			// fast tier walks the arm; balanced intersects [8, +inf) with
			// {3} and prunes it.
			ID: "feas/equality/0",
			Source: `int g(int limit, int mode) {
	if (limit >= 8) {
		if (limit == 3) {
			mode = 1;
		}
	}
	return limit + mode;
}
`,
			Spec:     "fastpath g\nimmutable mode\n",
			Finding:  "state-overwrite",
			MinTier:  "balanced",
			FPSource: "infeasible path (interval excludes the equality's value)",
		},
		{
			// a == b ties two variables whose later bounds are disjoint
			// (a > 5 while b < 3). No single variable's interval is empty —
			// balanced keeps the path — but strict's equality unification
			// propagates the bounds across the class and proves it dead.
			ID: "feas/cross-term/0",
			Source: `int h(int a, int b, int mode) {
	if (a == b) {
		if (a > 5) {
			if (b < 3) {
				mode = 0;
			}
		}
	}
	return a + mode;
}
`,
			Spec:     "fastpath h\nimmutable mode\n",
			Finding:  "state-overwrite",
			MinTier:  "strict",
			FPSource: "infeasible path (cross-condition equality contradiction)",
		},
	}
}
