package corpus

// BigFileDev returns the fourth subsystem-scale unit: a synthetic
// drivers/scsi/mpt3sas_base.c with the fast-path request submission the
// paper's Table 7 lists — request descriptors, a reply queue, task
// management, and the driver state list of Figure 8. Two defects are seeded,
// matching DEV's dominant bug categories (Table 3: 36% fault handling, 21%
// data structures): the fast path never detaches failed commands from the
// state list (rule 4.1), and the hot request descriptor drags two fields no
// fast path touches (rule 5.1, the Table-7 mpt3sas "suboptimal layout" bug).
func BigFileDev() (source, spec string) {
	return bigFileDevSource, bigFileDevSpec
}

const bigFileDevSpec = `
pair mpt3sas_fire_fast mpt3sas_fire_slow
immutable msix_index
fault mpt3sas_fire_fast:cmd_failed handler=mpt3sas_remove_from_state_list
hotstruct request_descriptor
`

const bigFileDevSource = `
enum req_state { REQ_FREE = 0, REQ_ACTIVE = 1, REQ_FAILED = 2 };

struct request_descriptor {
	unsigned long smid;
	int msix_index;
	int flags;
	long legacy_handle;  /* unused by any fast path: cache-line dead weight */
	int diag_buffer_id;  /* unused by any fast path: cache-line dead weight */
};

struct scsi_cmd {
	int cmd_state;
	int cmd_failed;
	int tag;
	struct scsi_cmd *next;
};

struct mpt3sas_ioc {
	int hba_queue_depth;
	int reply_free_head;
	int reply_cache;
	struct scsi_cmd *state_list;
	unsigned long doorbell;
	int fw_events;
};

static unsigned long build_descriptor(struct request_descriptor *desc,
				      struct scsi_cmd *cmd, int msix_index)
{
	desc->smid = (unsigned long)cmd->tag;
	desc->msix_index = msix_index;
	desc->flags = 1;
	return desc->smid;
}

static void write_doorbell(struct mpt3sas_ioc *ioc, unsigned long smid)
{
	ioc->doorbell = smid;
}

void mpt3sas_remove_from_state_list(struct mpt3sas_ioc *ioc, struct scsi_cmd *cmd);

static int reply_queue_full(struct mpt3sas_ioc *ioc)
{
	return ioc->reply_free_head >= ioc->hba_queue_depth;
}

/* Fast path: fire the request straight at the firmware, no task management.
 * BUG (seeded, rule 4.1): a command that already failed is never tested and
 * never detached from the driver state list — the memory-leak pattern of
 * Figure 8, now at driver scale. */
int mpt3sas_fire_fast(struct mpt3sas_ioc *ioc, struct scsi_cmd *cmd, int msix_index)
{
	struct request_descriptor desc;
	unsigned long smid;
	if (reply_queue_full(ioc))
		return -1;
	smid = build_descriptor(&desc, cmd, msix_index);
	write_doorbell(ioc, smid);
	cmd->cmd_state = REQ_ACTIVE;
	return 0;
}

/* Slow path: full task management — failure detection and state cleanup. */
int mpt3sas_fire_slow(struct mpt3sas_ioc *ioc, struct scsi_cmd *cmd, int msix_index)
{
	struct request_descriptor desc;
	unsigned long smid;
	if (reply_queue_full(ioc))
		return -1;
	if (cmd->cmd_failed) {
		mpt3sas_remove_from_state_list(ioc, cmd);
		cmd->cmd_state = REQ_FREE;
		return -1;
	}
	smid = build_descriptor(&desc, cmd, msix_index);
	write_doorbell(ioc, smid);
	cmd->cmd_state = REQ_ACTIVE;
	return 0;
}

int mpt3sas_reply_done(struct mpt3sas_ioc *ioc, struct scsi_cmd *cmd)
{
	cmd->cmd_state = REQ_FREE;
	ioc->reply_free_head--;
	ioc->reply_cache = ioc->reply_free_head;
	return 0;
}

int mpt3sas_drain_events(struct mpt3sas_ioc *ioc)
{
	int drained = 0;
	while (ioc->fw_events > 0) {
		ioc->fw_events--;
		drained++;
	}
	return drained;
}
`
