package corpus

import "pallas/internal/report"

// Showcase holds the hand-written cases reproducing the paper's concrete
// examples: the three motivating workflows of Figure 1, the bug walkthroughs
// of Figures 3-9, and the symbolic-extraction demo of Table 5.
type Showcase struct {
	// ID names the showcase ("fig3", "table5", ...).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Figure is the paper figure number (0 for Table 5).
	Figure int
	// Source is the C translation unit.
	Source string
	// Spec is the semantic annotation set.
	Spec string
	// FastFunc is the fast-path entry (used for workflow rendering).
	FastFunc string
	// SlowFunc is the slow-path entry ("" when not applicable).
	SlowFunc string
	// Finding is the expected warning ("" for the clean Figure-1 workflows).
	Finding string
}

// Showcases returns all showcase cases in paper order.
func Showcases() []*Showcase {
	return []*Showcase{
		fig1aPageAlloc(), fig1bUBIFSWrite(), fig1cTCPReceive(),
		fig3Migratetype(), fig4OCFS2(), fig5RPS(), fig6OOMOrder(),
		fig7TCPOutput(), fig8SCSIFault(), fig9NFSICache(),
		table5Extraction(),
	}
}

// ShowcaseByID returns the named showcase, or nil.
func ShowcaseByID(id string) *Showcase {
	for _, s := range Showcases() {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// fig1aPageAlloc models Figure 1(a): page allocation in the Linux virtual
// memory manager. Order-0 allocations take the per-cpu fast path without a
// lock; high-order allocations take the locked fallback slow path. The code
// here is clean — Figure 1 illustrates workflows, not bugs.
func fig1aPageAlloc() *Showcase {
	return &Showcase{
		ID:       "fig1a",
		Title:    "Page allocation in the virtual memory manager (Figure 1a)",
		Figure:   1,
		FastFunc: "get_page_from_freelist",
		SlowFunc: "alloc_pages_slowpath",
		Source: `
struct page { unsigned long flags; unsigned long private; };
struct per_cpu_lists { struct page *head; int count; };
struct zone {
	int id;
	int lock;
	struct per_cpu_lists pcp;
	struct page *fallback_lists;
	unsigned long nr_free;
};

static struct page *pcp_pop(struct zone *zone)
{
	struct page *page = zone->pcp.head;
	if (page)
		zone->pcp.count = zone->pcp.count - 1;
	return page;
}

/* Fast path: order-0 allocations served from per-cpu lists, no lock. */
struct page *get_page_from_freelist(unsigned long gfp_mask, unsigned int order,
				    struct zone *preferred_zone, unsigned long nodemask)
{
	struct page *page = 0;
	if (order == 0 && (nodemask & (1UL << preferred_zone->id)))
		page = pcp_pop(preferred_zone);
	return page;
}

/* Slow path: acquire the zone lock, split/merge in the fallback lists. */
struct page *alloc_pages_slowpath(unsigned long gfp_mask, unsigned int order,
				  struct zone *preferred_zone, unsigned long nodemask)
{
	struct page *page = 0;
	int i;
	preferred_zone->lock = 1;
	for (i = order; i < 11; i++) {
		if (preferred_zone->nr_free >= (1UL << i)) {
			page = preferred_zone->fallback_lists;
			preferred_zone->nr_free = preferred_zone->nr_free - (1UL << i);
			break;
		}
	}
	preferred_zone->lock = 0;
	return page;
}

struct page *alloc_pages_nodemask(unsigned long gfp_mask, unsigned int order,
				  struct zone *preferred_zone, unsigned long nodemask)
{
	struct page *page = get_page_from_freelist(gfp_mask, order, preferred_zone, nodemask);
	if (page)
		return page;
	return alloc_pages_slowpath(gfp_mask, order, preferred_zone, nodemask);
}
`,
		Spec: `
pair get_page_from_freelist alloc_pages_slowpath
immutable gfp_mask nodemask
correlated preferred_zone nodemask
cond order
`,
	}
}

// fig1bUBIFSWrite models Figure 1(b): UBIFS file write. When flash has
// enough space the budget procedure is skipped (fast path); otherwise space
// is budgeted with possible write-back (slow path).
func fig1bUBIFSWrite() *Showcase {
	return &Showcase{
		ID:       "fig1b",
		Title:    "File write in the UBIFS file system (Figure 1b)",
		Figure:   1,
		FastFunc: "ubifs_write_fast",
		SlowFunc: "ubifs_write_slow",
		Source: `
enum page_state { PG_UPTODATE = 0, PG_DIRTY = 1 };
struct ubifs_info { long free_space; long budget; };
struct ubifs_page { int state; int len; };

static int acquire_space_directly(struct ubifs_info *c, int len)
{
	c->free_space = c->free_space - len;
	return 0;
}

static int budget_space(struct ubifs_info *c, int len)
{
	if (c->free_space < len) {
		/* trigger write-back to reclaim space */
		c->budget = c->budget + len;
		return -1;
	}
	c->free_space = c->free_space - len;
	return 0;
}

/* Fast path: enough space, skip budgeting. */
int ubifs_write_fast(struct ubifs_info *c, struct ubifs_page *page)
{
	int err;
	if (c->free_space < page->len)
		return -1; /* switch to the slow path */
	err = acquire_space_directly(c, page->len);
	if (err)
		return err;
	page->state = PG_DIRTY;
	return 0;
}

/* Slow path: budget first (may write back), then write. */
int ubifs_write_slow(struct ubifs_info *c, struct ubifs_page *page)
{
	int err = budget_space(c, page->len);
	if (err)
		return -1;
	page->state = PG_DIRTY;
	return 0;
}
`,
		Spec: `
pair ubifs_write_fast ubifs_write_slow
cond free_space
fault err
returns ubifs_write_fast {0, -1}
returns ubifs_write_slow {0, -1}
`,
	}
}

// fig1cTCPReceive models Figure 1(c): TCP receive with header prediction.
func fig1cTCPReceive() *Showcase {
	return &Showcase{
		ID:       "fig1c",
		Title:    "Packet receiving in the TCP/IP stack (Figure 1c)",
		Figure:   1,
		FastFunc: "tcp_rcv_fast",
		SlowFunc: "tcp_rcv_slow",
		Source: `
struct sk_buff { int len; unsigned long seq; int flags; };
struct sock { unsigned long rcv_nxt; unsigned long pred_flags; int acked; };

static void send_ack(struct sock *sk)
{
	sk->acked = sk->acked + 1;
}

/* Fast path: header prediction hit, skip per-segment validation. */
int tcp_rcv_fast(struct sock *sk, struct sk_buff *skb)
{
	if ((skb->flags & sk->pred_flags) == 0)
		return -1; /* prediction miss: slow path */
	sk->rcv_nxt = skb->seq + skb->len;
	send_ack(sk);
	return 0;
}

/* Slow path: validate every incoming segment, handle out-of-order data. */
int tcp_rcv_slow(struct sock *sk, struct sk_buff *skb)
{
	if (skb->seq != sk->rcv_nxt)
		return -1; /* out-of-order segment */
	if (skb->len < 0)
		return -1;
	sk->rcv_nxt = skb->seq + skb->len;
	send_ack(sk);
	return 0;
}
`,
		Spec: `
pair tcp_rcv_fast tcp_rcv_slow
cond pred_flags
returns tcp_rcv_fast {0, -1}
returns tcp_rcv_slow {0, -1}
`,
	}
}

// fig3Migratetype reproduces Figure 3: the fast path links the immutable
// migratetype into page->private, and freeing overwrites it.
func fig3Migratetype() *Showcase {
	return &Showcase{
		ID:       "fig3",
		Title:    "Overwriting the immutable migratetype (Figure 3)",
		Figure:   3,
		FastFunc: "free_pages_fast",
		Finding:  report.FindStateOverwrite,
		Source: `
struct page { unsigned long private; int mlocked; };

/* Fast path for freeing order-0 pages back to the per-cpu lists. */
int free_pages_fast(struct page *page, int migratetype)
{
	if (page->mlocked) {
		/* mlocked pages take the normal free path */
		return -1;
	}
	page->private = migratetype;
	/* BUG (Figure 3): freeing to the buddy freelist clobbers the
	 * migratetype the fast path cached in page->private. */
	migratetype = 0;
	page->private = migratetype;
	return 0;
}
`,
		Spec: `
fastpath free_pages_fast
immutable migratetype
`,
	}
}

// fig4OCFS2 reproduces Figure 4: the size-changed trigger condition is
// missing, so the slow path that updates the inode metadata is skipped.
func fig4OCFS2() *Showcase {
	return &Showcase{
		ID:       "fig4",
		Title:    "Missing path-switch condition in OCFS2 (Figure 4)",
		Figure:   4,
		FastFunc: "ocfs2_get_block_fast",
		Finding:  report.FindCondMissing,
		Source: `
struct ocfs2_inode { long i_size; long disk_size; };

/* Fast path: fetch disk blocks assuming the file size is unchanged.
 * BUG (Figure 4): size_changed is never consulted, so the slow path in
 * ocfs2_dio_end_io_write that updates the metadata is skipped and the file
 * sizes on disk and in memory diverge. */
int ocfs2_get_block_fast(struct ocfs2_inode *inode, int size_changed)
{
	inode->disk_size = inode->i_size;
	return 0;
}
`,
		Spec: `
fastpath ocfs2_get_block_fast
cond size_changed
`,
	}
}

// fig5RPS reproduces Figure 5: the rps_flow_table readiness check is missing
// from the RPS map-length fast path.
func fig5RPS() *Showcase {
	return &Showcase{
		ID:       "fig5",
		Title:    "Incomplete trigger condition in RPS (Figure 5)",
		Figure:   5,
		FastFunc: "get_rps_cpu_fast",
		Finding:  report.FindCondIncomplete,
		Source: `
struct rps_map { int len; int cpus[32]; };
struct netdev_rx_queue { struct rps_map *rps_map; void *rps_flow_table; };

int cpu_online(int cpu);

/* Fast path: a single-entry RPS map short-circuits CPU selection.
 * BUG (Figure 5): rps_flow_table must also be absent; checking only
 * map->len disables RPS when a flow table is configured. */
int get_rps_cpu_fast(struct netdev_rx_queue *rxqueue, struct rps_map *map, void *rps_flow_table)
{
	int cpu = -1;
	if (map->len == 1) {
		int tcpu = map->cpus[0];
		if (cpu_online(tcpu))
			cpu = tcpu;
	}
	return cpu;
}
`,
		Spec: `
fastpath get_rps_cpu_fast
cond len rps_flow_table
`,
	}
}

// fig6OOMOrder reproduces Figure 6: OOM is tried before remote-zone
// allocation, a performance bug.
func fig6OOMOrder() *Showcase {
	return &Showcase{
		ID:       "fig6",
		Title:    "Incorrect order of trigger conditions (Figure 6)",
		Figure:   6,
		FastFunc: "alloc_with_fallback",
		Finding:  report.FindCondOrder,
		Source: `
struct zone { int id; unsigned long nr_free; };

/* BUG (Figure 6): the OOM path (kills processes) is consulted before the
 * remote-zone path; the order of the two trigger conditions is reversed. */
int alloc_with_fallback(int oom_allowed, int remote_allowed)
{
	if (oom_allowed)
		return 2; /* reclaim via OOM killer */
	if (remote_allowed)
		return 1; /* allocate from a remote zone */
	return 0;
}
`,
		Spec: `
fastpath alloc_with_fallback
order remote_allowed oom_allowed
`,
	}
}

// fig7TCPOutput reproduces Figure 7: the fast path returns 1 where the slow
// path returns 0, double-freeing the socket object in the caller.
func fig7TCPOutput() *Showcase {
	return &Showcase{
		ID:       "fig7",
		Title:    "Mismatching fast/slow output in tcp_rcv_established (Figure 7)",
		Figure:   7,
		FastFunc: "tcp_rcv_established_fast",
		SlowFunc: "tcp_rcv_established_slow",
		Finding:  report.FindOutMismatch,
		Source: `
struct sk_buff { int len; int flags; };
struct sock { unsigned long pred_flags; };

/* BUG (Figure 7): the caller assumes both paths return 0 on success; the
 * fast path returning 1 makes the caller free skb a second time. */
int tcp_rcv_established_fast(struct sock *sk, struct sk_buff *skb)
{
	if (skb->flags & sk->pred_flags)
		return 1; /* handled without validation */
	return 0;
}

int tcp_rcv_established_slow(struct sock *sk, struct sk_buff *skb)
{
	if (skb->len < 0)
		return -1;
	return 0;
}
`,
		Spec: `
pair tcp_rcv_established_fast tcp_rcv_established_slow
`,
	}
}

// fig8SCSIFault reproduces Figure 8: the SCSI fast path never detaches a
// failed command from the driver state list — the fault handler is missing.
func fig8SCSIFault() *Showcase {
	return &Showcase{
		ID:       "fig8",
		Title:    "Missing fault handler in the SCSI driver (Figure 8)",
		Figure:   8,
		FastFunc: "transport_generic_free_cmd",
		Finding:  report.FindFaultMissing,
		Source: `
struct se_cmd { int state_active; int refcount; };

void transport_wait_for_tasks(struct se_cmd *cmd);

/* BUG (Figure 8): on WRITE failure the cmd stays on the driver state list;
 * the fix tests cmd->state_active and removes it under the lock. */
void transport_generic_free_cmd(struct se_cmd *cmd, int wait_for_tasks)
{
	if (wait_for_tasks)
		transport_wait_for_tasks(cmd);
	cmd->refcount = cmd->refcount - 1;
}
`,
		Spec: `
fastpath transport_generic_free_cmd
fault state_active handler=target_remove_from_state_list
`,
	}
}

// fig9NFSICache reproduces Figure 9: deleting an inode without removing it
// from the inode cache leaves a bogus file handle visible to NFS daemons.
func fig9NFSICache() *Showcase {
	return &Showcase{
		ID:       "fig9",
		Title:    "Obsolete inode left in the inode cache (Figure 9)",
		Figure:   9,
		FastFunc: "nfs_unlink_fast",
		Finding:  report.FindDSStale,
		Source: `
struct inode { int i_state; unsigned long i_ino; };
struct icache { struct inode *entries[64]; int count; };

/* BUG (Figure 9): the fast path drops the inode without evicting the cached
 * entry, so lookups keep resolving the stale file handle. */
int nfs_unlink_fast(struct inode *inode, struct icache *cache)
{
	inode->i_state = 0;
	return 0;
}
`,
		Spec: `
fastpath nfs_unlink_fast
cache cache of inode
`,
	}
}

// table5Extraction reproduces the simplified __alloc_pages_nodemask of
// Table 5, including the immutable gfp_mask being overwritten through
// memalloc_noio_flags.
func table5Extraction() *Showcase {
	return &Showcase{
		ID:       "table5",
		Title:    "Symbolic extraction of __alloc_pages_nodemask (Table 5)",
		Figure:   0,
		FastFunc: "alloc_pages_nodemask",
		Finding:  report.FindStateOverwrite,
		Source: `
enum gfp_flags { GFP_KSWAPD_RECLAIM = 0x400 };

struct page { unsigned long flags; };
struct zone { int id; };
struct alloc_context { struct zone *preferred_zone; int high_zoneidx; };

int zone_local(struct zone *local_zone, struct zone *zone);
struct page *get_page_from_freelist(unsigned int order, struct alloc_context *ac);
unsigned long memalloc_noio_flags(unsigned long gfp_mask);
struct page *alloc_pages_slowpath(unsigned long gfp_mask, unsigned int order);

struct page *alloc_pages_nodemask(unsigned long gfp_mask, unsigned int order,
				  struct zone *local_zone, struct zone *zone)
{
	struct alloc_context ac;
	struct page *page;
	int migratetype = 0;
	int alloc_flags = 0;
	if (zone_local(local_zone, zone))
		alloc_flags = 1;
	page = get_page_from_freelist(order, &ac);
	if (page)
		return page;
	if (gfp_mask & GFP_KSWAPD_RECLAIM) {
		/* BUG (Table 5): the immutable gfp_mask is overwritten before
		 * entering the slow path, corrupting later allocations. */
		gfp_mask = memalloc_noio_flags(gfp_mask);
		page = alloc_pages_slowpath(gfp_mask, order);
	}
	return page;
}
`,
		Spec: `
fastpath alloc_pages_nodemask
immutable gfp_mask
cond zone_local GFP_KSWAPD_RECLAIM
`,
	}
}
