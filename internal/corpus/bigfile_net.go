package corpus

// BigFileNet returns the second subsystem-scale unit: a synthetic
// net/ipv4/tcp_input.c with the TCP receive machinery of Figure 1(c) —
// header prediction, sequence bookkeeping, an out-of-order queue, delayed
// acks and congestion accounting. Two defects are seeded: the fast path's
// trigger condition ignores the out-of-order queue (rule 2.2), and the fast
// path reports success with 1 where the slow path uses 0 (rule 3.2, the
// Figure-7 double free at subsystem scale).
func BigFileNet() (source, spec string) {
	return bigFileNetSource, bigFileNetSpec
}

const bigFileNetSpec = `
pair tcp_rcv_established_fast tcp_rcv_established_slow
cond tcp_rcv_established_fast:pred_flags tcp_rcv_established_fast:ooo_count
immutable rcv_wnd
check_return tcp_validate_incoming
`

const bigFileNetSource = `
enum tcp_state { TCP_ESTABLISHED = 1, TCP_CLOSE_WAIT = 8, TCP_CLOSE = 7 };

struct sk_buff {
	unsigned long seq;
	unsigned long end_seq;
	int len;
	int flags;
	struct sk_buff *next;
};

struct tcp_sock {
	int state;
	unsigned long rcv_nxt;
	unsigned long snd_una;
	unsigned long pred_flags;
	unsigned long rcv_wnd;
	int ooo_count;
	struct sk_buff *ooo_queue;
	int acks_pending;
	int ack_threshold;
	unsigned long bytes_received;
	int cwnd;
};

static int before(unsigned long seq1, unsigned long seq2)
{
	return (long)(seq1 - seq2) < 0;
}

static int tcp_sequence_ok(struct tcp_sock *tp, struct sk_buff *skb)
{
	if (before(skb->end_seq, tp->rcv_nxt))
		return 0; /* entirely old data */
	if (before(tp->rcv_nxt + tp->rcv_wnd, skb->seq))
		return 0; /* beyond the window */
	return 1;
}

int tcp_validate_incoming(struct tcp_sock *tp, struct sk_buff *skb);

static void tcp_send_ack(struct tcp_sock *tp)
{
	tp->acks_pending = 0;
}

static void tcp_event_data_recv(struct tcp_sock *tp, struct sk_buff *skb)
{
	tp->bytes_received += skb->len;
	tp->acks_pending++;
	if (tp->acks_pending >= tp->ack_threshold)
		tcp_send_ack(tp);
}

static void tcp_ooo_enqueue(struct tcp_sock *tp, struct sk_buff *skb)
{
	skb->next = tp->ooo_queue;
	tp->ooo_queue = skb;
	tp->ooo_count++;
}

static int tcp_ooo_flush(struct tcp_sock *tp)
{
	int drained = 0;
	struct sk_buff *skb = tp->ooo_queue;
	while (skb) {
		if (skb->seq == tp->rcv_nxt) {
			tp->rcv_nxt = skb->end_seq;
			drained++;
		}
		skb = skb->next;
	}
	tp->ooo_count -= drained;
	return drained;
}

/* Fast path: header prediction hit — accept without validation.
 * BUG (seeded, rule 2.2): the trigger condition must also require an empty
 * out-of-order queue; accepting in-order data while ooo segments wait
 * reorders delivery to the application.
 * BUG (seeded, rule 3.2): success is reported as 1 where the slow path and
 * every caller use 0 — the caller frees the skb twice. */
int tcp_rcv_established_fast(struct tcp_sock *tp, struct sk_buff *skb)
{
	if ((skb->flags & tp->pred_flags) && skb->seq == tp->rcv_nxt) {
		tp->rcv_nxt = skb->end_seq;
		tcp_event_data_recv(tp, skb);
		return 1;
	}
	return -1; /* fall back to the slow path */
}

/* Slow path: full validation, out-of-order handling, ack generation. */
int tcp_rcv_established_slow(struct tcp_sock *tp, struct sk_buff *skb)
{
	int ret;
	if (!tcp_sequence_ok(tp, skb)) {
		tcp_send_ack(tp);
		return -1;
	}
	ret = tcp_validate_incoming(tp, skb);
	if (ret < 0)
		return -1;
	if (skb->seq != tp->rcv_nxt) {
		tcp_ooo_enqueue(tp, skb);
		tcp_send_ack(tp);
		return 0;
	}
	tp->rcv_nxt = skb->end_seq;
	tcp_event_data_recv(tp, skb);
	if (tp->ooo_count > 0)
		tcp_ooo_flush(tp);
	return 0;
}

/* Connection teardown: exercises switch lowering at scale. */
int tcp_close_state(struct tcp_sock *tp)
{
	switch (tp->state) {
	case TCP_ESTABLISHED:
		tp->state = TCP_CLOSE_WAIT;
		return 1;
	case TCP_CLOSE_WAIT:
		tp->state = TCP_CLOSE;
		return 1;
	default:
		return 0;
	}
}

unsigned long tcp_receive_window(struct tcp_sock *tp)
{
	unsigned long win = tp->rcv_wnd;
	if (tp->ooo_count > 16)
		win = win >> 1;
	return win;
}
`
