package corpus

import "strings"

// AdversarialUnit is one deliberately hostile input for exercising the
// analyzer's fault isolation: each unit breaks a different pipeline stage
// (lexer, preprocessor, parser, path extraction) in a different way.
type AdversarialUnit struct {
	// Name identifies the unit in diagnostics.
	Name string
	// Source is the (malformed) C text.
	Source string
	// Spec is the semantic specification to analyze it under.
	Spec string
	// Includes serves the unit's #include files from memory.
	Includes map[string]string
	// WantDiagnostic is true when analyzing the unit must produce at least
	// one per-unit diagnostic (under KeepGoing); Healthy units instead must
	// analyze cleanly and still fire their expected warning.
	WantDiagnostic bool
	// Healthy marks the control units mixed into the batch to prove hostile
	// neighbours do not suppress real findings.
	Healthy bool
}

// Adversarial returns the hostile mini-corpus: at least ten malformed units —
// truncated functions, unterminated comments and strings, include cycles,
// deeply nested expressions, self-referential macros — plus two healthy
// controls with a known bug each. Every unit must come back from a batch
// analysis with a structured outcome: no panic, no hang, no lost neighbour.
func Adversarial() []AdversarialUnit {
	spec := "fastpath f\nimmutable mode\n"
	units := []AdversarialUnit{
		{
			Name:           "truncated-function.c",
			Source:         "int whole(int mode) { return mode; }\nint f(int mode) { if (mode) {\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "truncated-mid-expression.c",
			Source:         "int f(int mode) { return mode +\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "unterminated-comment.c",
			Source:         "int f(int mode) { return mode; }\n/* this comment never ends\nint g(void) { return 1; }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "unterminated-string.c",
			Source:         "char *f(int mode) { return \"no closing quote\n; }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:   "include-cycle.c",
			Source: "#include \"loop_a.h\"\nint f(int mode) { return mode; }\n",
			Spec:   spec,
			Includes: map[string]string{
				"loop_a.h": "#include \"loop_b.h\"\n",
				"loop_b.h": "#include \"loop_a.h\"\n",
			},
			WantDiagnostic: true,
		},
		{
			Name:           "missing-include.c",
			Source:         "#include \"no_such_file.h\"\nint f(int mode) { return mode; }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "macro-bomb.c",
			Source:         "#define A A A A A A A A A\nint f(int mode) { return A; }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "mutually-recursive-macros.c",
			Source:         "#define F(x) G(x) G(x)\n#define G(x) F(x) F(x)\nint f(int mode) { return F(mode); }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			// Legal C, hostile shape: stresses parser/extractor recursion.
			// The contract is completion without crash, not a diagnostic.
			Name:           "deeply-nested-expression.c",
			Source:         "int f(int mode) { return " + strings.Repeat("(1 + ", 1200) + "mode" + strings.Repeat(")", 1200) + "; }\n",
			Spec:           spec,
			WantDiagnostic: false,
		},
		{
			Name:           "garbage-tokens.c",
			Source:         "@ $ ` @ $ `\nint f(int mode) { return mode; }\n@ @ @\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "mismatched-braces.c",
			Source:         "int f(int mode) { if (mode) { return 1; } return 0; } } } }\n",
			Spec:           spec,
			WantDiagnostic: true,
		},
		{
			Name:           "spec-names-missing-function.c",
			Source:         "int g(int mode) { return mode; }\n",
			Spec:           spec, // f never exists
			WantDiagnostic: true,
		},
	}
	// Healthy controls: well-formed units whose seeded bug must still be
	// reported even when analyzed next to the hostile units above.
	units = append(units,
		AdversarialUnit{
			Name: "healthy-state-overwrite.c",
			Source: `// @pallas: fastpath f
// @pallas: immutable mode
int f(int mode) {
	mode = 0;
	if (mode)
		return 1;
	return 0;
}
`,
			Healthy: true,
		},
		AdversarialUnit{
			Name: "healthy-missing-check.c",
			Source: `// @pallas: fastpath f
// @pallas: cond cache_ready
int f(int cache_ready, int n) {
	return n + 1;
}
`,
			Healthy: true,
		},
	)
	return units
}
