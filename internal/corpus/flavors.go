package corpus

import "fmt"

// Names provides system-flavored identifier names so generated cases read
// like code from the system they model (struct page in MM, struct sk_buff in
// NET, ...). The Seq suffix keeps every generated function unique.
type Names struct {
	System System
	Seq    int

	// Obj is the central object struct tag ("page", "inode", "sk_buff"...).
	Obj string
	// ObjVar is the conventional variable name for it.
	ObjVar string
	// Flag is the mode/flags variable name ("gfp_mask", "mount_flags"...).
	Flag string
	// Mask is a second configuration variable.
	Mask string
	// StateField is the hot state field on Obj.
	StateField string
	// Aux is the assistant structure name ("freelist", "icache"...).
	Aux string
	// FilePrefix prefixes generated file names ("mm", "fs", ...).
	FilePrefix string
	// OpVerb describes the fast-path operation domain.
	OpVerb string
}

// flavors gives each system its vocabulary.
var flavors = map[System]Names{
	MM:  {Obj: "page", ObjVar: "page", Flag: "gfp_mask", Mask: "nodemask", StateField: "private", Aux: "freelist", FilePrefix: "mm", OpVerb: "allocate pages"},
	FS:  {Obj: "inode", ObjVar: "inode", Flag: "mount_flags", Mask: "writeback_mask", StateField: "i_state", Aux: "icache", FilePrefix: "fs", OpVerb: "write file data"},
	NET: {Obj: "sk_buff", ObjVar: "skb", Flag: "pred_flags", Mask: "tcp_flags", StateField: "sk_state", Aux: "flow_table", FilePrefix: "net", OpVerb: "receive packets"},
	DEV: {Obj: "scsi_cmd", ObjVar: "cmd", Flag: "queue_flags", Mask: "irq_mask", StateField: "cmd_state", Aux: "state_list", FilePrefix: "drivers", OpVerb: "submit requests"},
	WB:  {Obj: "render_task", ObjVar: "task", Flag: "task_flags", Mask: "queue_mask", StateField: "task_state", Aux: "task_queue", FilePrefix: "chromium", OpVerb: "post tasks"},
	SDN: {Obj: "flow", ObjVar: "flow", Flag: "dp_flags", Mask: "match_mask", StateField: "flow_state", Aux: "flow_cache", FilePrefix: "ovs", OpVerb: "process flows"},
	MOB: {Obj: "binder_node", ObjVar: "node", Flag: "policy_flags", Mask: "zone_mask", StateField: "node_state", Aux: "node_cache", FilePrefix: "android", OpVerb: "dispatch transactions"},
}

// NamesFor builds the flavored name set for (system, seq). Exported for the
// injection framework, which synthesizes bugs outside the Table-1 registry.
func NamesFor(s System, seq int) Names {
	n := flavors[s]
	n.System = s
	n.Seq = seq
	return n
}

func namesFor(s System, seq int) Names { return NamesFor(s, seq) }

// Fn builds a unique flavored function name ("mm_alloc_fast_3").
func (n Names) Fn(stem string) string {
	return fmt.Sprintf("%s_%s_%d", n.FilePrefix, stem, n.Seq)
}

// FileName builds the pretend path for the generated case.
func (n Names) FileName(stem string) string {
	return fmt.Sprintf("%s/%s_%d.c", n.FilePrefix, stem, n.Seq)
}
