package corpus

import (
	"testing"
)

// TestShowcasesReproduceFigures checks each figure case: the clean Figure-1
// workflows yield no warnings; each bug walkthrough (Figures 3-9, Table 5)
// yields its documented finding.
func TestShowcasesReproduceFigures(t *testing.T) {
	for _, sc := range Showcases() {
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			c := &Case{ID: sc.ID, File: sc.ID + ".c", Spec: sc.Spec}
			r := runCase(t, c, sc.Source)
			if sc.Finding == "" {
				if len(r.Warnings) != 0 {
					t.Fatalf("clean workflow produced warnings: %+v", r.Warnings)
				}
				return
			}
			if len(r.Warnings) == 0 {
				t.Fatalf("expected a %s warning, got none", sc.Finding)
			}
			found := false
			for _, w := range r.Warnings {
				if w.Finding == sc.Finding {
					found = true
				} else if sc.ID != "fig8" {
					// fig8 legitimately yields two fault warnings (state
					// untested + named handler never invoked); all other
					// showcases must be single-finding.
					t.Errorf("unexpected extra warning: %+v", w)
				}
			}
			if !found {
				t.Fatalf("no %s warning among %+v", sc.Finding, r.Warnings)
			}
		})
	}
}

func TestShowcaseByID(t *testing.T) {
	if ShowcaseByID("fig3") == nil {
		t.Fatal("fig3 missing")
	}
	if ShowcaseByID("nope") != nil {
		t.Fatal("unknown id should be nil")
	}
	if len(Showcases()) != 11 {
		t.Fatalf("want 11 showcases, got %d", len(Showcases()))
	}
}
