package corpus

import (
	"testing"

	"pallas/internal/cfg"
	"pallas/internal/cparse"
	"pallas/internal/paths"
	"pallas/internal/report"
)

// TestBigFileAnalysis runs the subsystem-scale unit end to end: the allocator
// spec must catch exactly the seeded gfp_mask clobber, and the free-path spec
// must catch the stale per-cpu cache.
func TestBigFileAnalysis(t *testing.T) {
	src, specText := BigFile()

	c := &Case{ID: "bigfile", File: "mm/page_alloc.c", Spec: specText}
	r := runCase(t, c, src)
	if len(r.Warnings) != 2 {
		t.Fatalf("want exactly the 2 seeded warnings, got %d: %+v", len(r.Warnings), r.Warnings)
	}
	byFinding := map[string]*report.Warning{}
	for i := range r.Warnings {
		byFinding[r.Warnings[i].Finding] = &r.Warnings[i]
	}
	over := byFinding[report.FindStateOverwrite]
	if over == nil || over.Subject != "gfp_mask" || over.Func != "__alloc_pages_nodemask" {
		t.Errorf("overwrite warning = %+v", over)
	}
	stale := byFinding[report.FindDSStale]
	if stale == nil || stale.Func != "free_unref_page" {
		t.Errorf("stale-cache warning = %+v", stale)
	}
}

// TestBigFileFrontEnd checks the stressier structural properties: every
// function parses, builds a CFG, and extracts bounded paths.
func TestBigFileFrontEnd(t *testing.T) {
	src, _ := BigFile()
	tu, err := cparse.Parse("mm/page_alloc.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns := tu.Funcs()
	if len(fns) < 10 {
		t.Fatalf("want a dozen functions, got %d", len(fns))
	}
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	totalPaths := 0
	for _, fn := range fns {
		g, err := cfg.Build(fn)
		if err != nil {
			t.Fatalf("%s: cfg: %v", fn.Name, err)
		}
		if g.CyclomaticComplexity() < 1 {
			t.Errorf("%s: complexity %d", fn.Name, g.CyclomaticComplexity())
		}
		fp, err := ex.Extract(fn.Name)
		if err != nil {
			t.Fatalf("%s: extract: %v", fn.Name, err)
		}
		totalPaths += len(fp.Paths)
	}
	if totalPaths < 30 {
		t.Errorf("want a rich path population, got %d", totalPaths)
	}
	// The slow path has gotos forming a retry loop.
	slow := tu.Func("__alloc_pages_slowpath")
	g, err := cfg.Build(slow)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.BackEdges()) == 0 {
		t.Error("retry loop should produce a back edge")
	}
}

// TestBigFileFastSlowComplexity confirms the structural asymmetry the paper
// describes: the fast path is markedly simpler than its slow path.
func TestBigFileFastSlowComplexity(t *testing.T) {
	src, _ := BigFile()
	tu, err := cparse.Parse("mm/page_alloc.c", src)
	if err != nil {
		t.Fatal(err)
	}
	complexity := func(fn string) int {
		g, err := cfg.Build(tu.Func(fn))
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		return g.CyclomaticComplexity()
	}
	fast := complexity("get_page_from_freelist")
	// The slow side of the workflow spans the slow path and its reclaim/
	// compaction helpers.
	slow := complexity("__alloc_pages_slowpath") +
		complexity("try_compaction") + complexity("compact_zone_order")
	if fast >= slow {
		t.Errorf("fast complexity %d should be below the slow side's %d", fast, slow)
	}
}

// TestBigFileNetAnalysis runs the TCP-scale unit: exactly the two seeded
// defects fire — the incomplete trigger condition (the out-of-order queue is
// ignored) and the fast/slow output mismatch (the Figure-7 double free).
func TestBigFileNetAnalysis(t *testing.T) {
	src, specText := BigFileNet()
	c := &Case{ID: "bigfile-net", File: "net/ipv4/tcp_input.c", Spec: specText}
	r := runCase(t, c, src)
	if len(r.Warnings) != 2 {
		t.Fatalf("want 2 warnings, got %d: %+v", len(r.Warnings), r.Warnings)
	}
	byFinding := map[string]*report.Warning{}
	for i := range r.Warnings {
		byFinding[r.Warnings[i].Finding] = &r.Warnings[i]
	}
	inc := byFinding[report.FindCondIncomplete]
	if inc == nil || inc.Subject != "ooo_count" {
		t.Errorf("incomplete-condition warning = %+v", inc)
	}
	mis := byFinding[report.FindOutMismatch]
	if mis == nil || mis.Func != "tcp_rcv_established_fast" {
		t.Errorf("mismatch warning = %+v", mis)
	}
}

// TestBigFileNetFrontEnd stresses the front end on the TCP unit.
func TestBigFileNetFrontEnd(t *testing.T) {
	src, _ := BigFileNet()
	tu, err := cparse.Parse("tcp_input.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(tu.Funcs()) < 8 {
		t.Fatalf("want the full TCP machinery, got %d functions", len(tu.Funcs()))
	}
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	all, err := ex.ExtractAll()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, fp := range all {
		total += len(fp.Paths)
	}
	if total < 20 {
		t.Errorf("path population too small: %d", total)
	}
	// The ooo flush loop yields a back edge.
	g, err := cfg.Build(tu.Func("tcp_ooo_flush"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.BackEdges()) == 0 {
		t.Error("flush loop should have a back edge")
	}
}

// TestBigFileFSAnalysis runs the UBIFS-scale unit: the three seeded defects
// fire and nothing else does.
func TestBigFileFSAnalysis(t *testing.T) {
	src, specText := BigFileFS()
	c := &Case{ID: "bigfile-fs", File: "fs/ubifs/file.c", Spec: specText}
	r := runCase(t, c, src)
	if len(r.Warnings) != 3 {
		t.Fatalf("want 3 warnings, got %d: %+v", len(r.Warnings), r.Warnings)
	}
	byFinding := map[string]*report.Warning{}
	for i := range r.Warnings {
		byFinding[r.Warnings[i].Finding] = &r.Warnings[i]
	}
	if w := byFinding[report.FindOutUnchecked]; w == nil || w.Subject != "acquire_space_directly" {
		t.Errorf("unchecked warning = %+v", w)
	}
	if w := byFinding[report.FindFaultMissing]; w == nil || w.Subject != "enospc" {
		t.Errorf("fault warning = %+v", w)
	}
	if w := byFinding[report.FindOutMismatch]; w == nil || w.Func != "ubifs_write_begin_fast" {
		t.Errorf("mismatch warning = %+v", w)
	}
}

// TestBigFileFSFrontEnd checks the budgeting machinery parses and extracts.
func TestBigFileFSFrontEnd(t *testing.T) {
	src, _ := BigFileFS()
	tu, err := cparse.Parse("file.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(tu.Funcs()) < 7 {
		t.Fatalf("functions = %d", len(tu.Funcs()))
	}
	if v, ok := tu.EnumValue("ENOSPC"); !ok || v != 28 {
		t.Fatalf("ENOSPC = %d ok=%v", v, ok)
	}
	ex := paths.NewExtractor(tu, paths.DefaultConfig())
	fp, err := ex.Extract("ubifs_budget_space")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Paths) < 3 {
		t.Errorf("budget paths = %d", len(fp.Paths))
	}
}

// TestBigFileDevAnalysis runs the SCSI-driver unit: the missing fault
// handling fires twice (state untested + handler never invoked) and the two
// dead descriptor fields fire rule 5.1.
func TestBigFileDevAnalysis(t *testing.T) {
	src, specText := BigFileDev()
	c := &Case{ID: "bigfile-dev", File: "drivers/scsi/mpt3sas_base.c", Spec: specText}
	r := runCase(t, c, src)
	counts := map[string]int{}
	for _, w := range r.Warnings {
		counts[w.Finding]++
	}
	if counts[report.FindFaultMissing] != 2 {
		t.Errorf("fault warnings = %d, want 2: %+v", counts[report.FindFaultMissing], r.Warnings)
	}
	if counts[report.FindDSLayout] != 2 {
		t.Errorf("layout warnings = %d, want 2: %+v", counts[report.FindDSLayout], r.Warnings)
	}
	if len(r.Warnings) != 4 {
		t.Errorf("want exactly 4 warnings, got %d: %+v", len(r.Warnings), r.Warnings)
	}
	subjects := map[string]bool{}
	for _, w := range r.Warnings {
		subjects[w.Subject] = true
	}
	for _, want := range []string{"cmd_failed", "mpt3sas_remove_from_state_list",
		"request_descriptor.legacy_handle", "request_descriptor.diag_buffer_id"} {
		if !subjects[want] {
			t.Errorf("missing subject %q in %+v", want, subjects)
		}
	}
}

// TestBigFileWBAnalysis runs the Chromium task-queue unit: the wrong-return
// mismatch and the two dead trace fields fire.
func TestBigFileWBAnalysis(t *testing.T) {
	src, specText := BigFileWB()
	c := &Case{ID: "bigfile-wb", File: "chromium/task_queue_impl.cc", Spec: specText}
	r := runCase(t, c, src)
	counts := map[string]int{}
	for _, w := range r.Warnings {
		counts[w.Finding]++
	}
	if counts[report.FindOutMismatch] != 1 || counts[report.FindDSLayout] != 2 || len(r.Warnings) != 3 {
		t.Fatalf("warnings = %+v", r.Warnings)
	}
	subjects := map[string]bool{}
	for _, w := range r.Warnings {
		subjects[w.Subject] = true
	}
	if !subjects["render_task.trace_id"] || !subjects["render_task.parent_trace"] {
		t.Errorf("layout subjects = %v", subjects)
	}
}

// TestBigFileSDNAnalysis runs the OVS datapath unit: the reversed condition
// order and the missing checksum-offload trigger fire.
func TestBigFileSDNAnalysis(t *testing.T) {
	src, specText := BigFileSDN()
	c := &Case{ID: "bigfile-sdn", File: "ovs/dpif-netdev.c", Spec: specText}
	r := runCase(t, c, src)
	counts := map[string]int{}
	for _, w := range r.Warnings {
		counts[w.Finding]++
	}
	if counts[report.FindCondOrder] != 1 || counts[report.FindCondIncomplete] != 1 || len(r.Warnings) != 2 {
		t.Fatalf("warnings = %+v", r.Warnings)
	}
	for _, w := range r.Warnings {
		if w.Func != "dpif_netdev_process_fast" {
			t.Errorf("warning outside the fast path: %+v", w)
		}
	}
}

// TestBigFileMobAnalysis runs the Android binder unit: the clobbered policy
// flags and the ignored node-mask correlation fire.
func TestBigFileMobAnalysis(t *testing.T) {
	src, specText := BigFileMob()
	c := &Case{ID: "bigfile-mob", File: "android/binder.c", Spec: specText}
	r := runCase(t, c, src)
	counts := map[string]int{}
	for _, w := range r.Warnings {
		counts[w.Finding]++
	}
	if counts[report.FindStateOverwrite] != 1 || counts[report.FindStateCorrelated] != 1 || len(r.Warnings) != 2 {
		t.Fatalf("warnings = %+v", r.Warnings)
	}
	for _, w := range r.Warnings {
		if w.Func != "binder_transact_fast" {
			t.Errorf("warning outside the fast path: %+v", w)
		}
	}
}

// TestAllBigFilesParse keeps the seven-unit inventory parseable and
// non-trivial as the corpus evolves.
func TestAllBigFilesParse(t *testing.T) {
	units := map[string]func() (string, string){
		"mm": BigFile, "net": BigFileNet, "fs": BigFileFS,
		"dev": BigFileDev, "wb": BigFileWB, "sdn": BigFileSDN, "mob": BigFileMob,
	}
	for name, get := range units {
		src, spec := get()
		tu, err := cparse.Parse(name+".c", src)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if len(tu.Funcs()) < 4 {
			t.Errorf("%s: only %d functions", name, len(tu.Funcs()))
		}
		if len(spec) < 40 {
			t.Errorf("%s: spec too small", name)
		}
	}
}
