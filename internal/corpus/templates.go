package corpus

import (
	"fmt"

	"pallas/internal/report"
)

// Variant renders one case body for a name set: the C source and its spec.
type Variant func(n Names) (src, spec string)

// Template generates the three variants of one finding type.
type Template struct {
	// Finding is the report.Find* key the buggy and trap variants trigger.
	Finding string
	// Buggy seeds a true bug.
	Buggy Variant
	// Clean is the fixed version (no warnings).
	Clean Variant
	// Trap triggers the same warning on code that is actually correct,
	// modelling one of the §5.3 false-positive sources.
	Trap Variant
	// Consequence is the default failure class for generated bugs.
	Consequence string
	// FPSource describes the trap's false-positive source.
	FPSource string
	// Stem names generated functions and files.
	Stem string
}

// Templates maps finding key → template, covering all 12 Table-1 rows.
var Templates = map[string]*Template{}

func register(t *Template) {
	if _, dup := Templates[t.Finding]; dup {
		panic("corpus: duplicate template " + t.Finding)
	}
	Templates[t.Finding] = t
}

func init() {
	registerStateOverwrite()
	registerStateUninit()
	registerStateCorrelated()
	registerCondMissing()
	registerCondIncomplete()
	registerCondOrder()
	registerOutMismatch()
	registerOutUnexpected()
	registerOutUnchecked()
	registerFaultMissing()
	registerDSLayout()
	registerDSStale()
}

// --- Path state -------------------------------------------------------------

func registerStateOverwrite() {
	register(&Template{
		Finding:     report.FindStateOverwrite,
		Consequence: "Wrong result",
		FPSource:    "immutable saved to a snapshot and restored afterwards",
		Stem:        "fast_write",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("fast_write")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; int refcount; };
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s, int order)
{
	if (order == 0) {
		%[5]s = %[5]s & 7; /* BUG: immutable mode flags clobbered */
		%[4]s->%[2]s = %[5]s;
		return 0;
	}
	return -1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("fast_write")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; int refcount; };
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s, int order)
{
	if (order == 0) {
		%[4]s->%[2]s = %[5]s & 7;
		return 0;
	}
	return -1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("fast_write")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; int refcount; };
static unsigned long %[6]s_snapshot = 0;
void %[6]s_restore(unsigned long *flags);
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s, int order)
{
	if (order == 0) {
		%[6]s_snapshot = %[5]s;
		%[5]s = %[5]s | 4; /* validated: restored from snapshot below */
		%[4]s->%[2]s = %[5]s;
		%[6]s_restore(&%[5]s);
		return 0;
	}
	return -1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag, n.Fn("flags"))
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
	})
}

func registerStateUninit() {
	register(&Template{
		Finding:     report.FindStateUninit,
		Consequence: "Memory leak",
		FPSource:    "initialization performed through an out-parameter helper",
		Stem:        "init_state",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("init_state")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s)
{
	unsigned long %[5]s; /* BUG: used before initialization */
	if (%[5]s & 1) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("init_state")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s)
{
	unsigned long %[5]s = %[4]s->%[2]s;
	if (%[5]s & 1) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("init_state")
			src := fmt.Sprintf(`
struct %[1]s { unsigned long %[2]s; };
void %[6]s(unsigned long *flags);
static int %[3]s(struct %[1]s *%[4]s)
{
	unsigned long %[5]s; /* validated: initialized via out-parameter */
	%[6]s(&%[5]s);
	if (%[5]s & 1) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag, n.Fn("setup_flags"))
			sp := fmt.Sprintf("fastpath %s\nimmutable %s\n", fn, n.Flag)
			return src, sp
		},
	})
}

func registerStateCorrelated() {
	register(&Template{
		Finding:     report.FindStateCorrelated,
		Consequence: "Incorrect results",
		FPSource:    "correlation enforced at the construction site, not on the path",
		Stem:        "pick_target",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("pick_target")
			src := fmt.Sprintf(`
struct %[1]s { int id; unsigned long %[2]s; };
static struct %[1]s *%[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	/* BUG: candidate chosen without consulting its correlated mask */
	return %[4]s;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Mask)
			sp := fmt.Sprintf("fastpath %s\ncorrelated %s %s\n", fn, n.ObjVar, n.Mask)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("pick_target")
			src := fmt.Sprintf(`
struct %[1]s { int id; unsigned long %[2]s; };
static struct %[1]s *%[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	if (%[5]s & (1UL << %[4]s->id))
		return %[4]s;
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Mask)
			sp := fmt.Sprintf("fastpath %s\ncorrelated %s %s\n", fn, n.ObjVar, n.Mask)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("pick_target")
			validate := n.Fn("validate_pick")
			src := fmt.Sprintf(`
struct %[1]s { int id; unsigned long %[2]s; };
/* validated: every caller passes a candidate already checked by %[6]s */
int %[6]s(struct %[1]s *cand, unsigned long mask)
{
	return (mask & (1UL << cand->id)) != 0;
}
static struct %[1]s *%[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	return %[4]s;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Mask, validate)
			sp := fmt.Sprintf("fastpath %s\ncorrelated %s %s\n", fn, n.ObjVar, n.Mask)
			return src, sp
		},
	})
}

// --- Trigger condition --------------------------------------------------------

func registerCondMissing() {
	register(&Template{
		Finding:     report.FindCondMissing,
		Consequence: "Data inconsistency",
		FPSource:    "condition implied by another structure's state bit",
		Stem:        "path_switch",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("path_switch")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	/* BUG: the %[5]s trigger is never consulted; slow path is skipped */
	%[4]s->%[2]s = %[4]s->%[2]s + 1;
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\ncond %s\n", fn, n.Flag)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("path_switch")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	if (%[5]s != 0)
		return -1; /* take the slow path */
	%[4]s->%[2]s = %[4]s->%[2]s + 1;
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\ncond %s\n", fn, n.Flag)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("path_switch")
			src := fmt.Sprintf(`
struct %[1]s { int len; int dirty; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, unsigned long %[5]s)
{
	/* validated: the dirty bit is set whenever %[5]s would be non-zero */
	if (%[4]s->dirty)
		return -1;
	%[4]s->%[2]s = %[4]s->%[2]s + 1;
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Flag)
			sp := fmt.Sprintf("fastpath %s\ncond %s\n", fn, n.Flag)
			return src, sp
		},
	})
}

func registerCondIncomplete() {
	register(&Template{
		Finding:     report.FindCondIncomplete,
		Consequence: "Performance degradation",
		FPSource:    "second variable validated through a helper predicate",
		Stem:        "rx_steer",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("rx_steer")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, int map_len, unsigned long %[5]s)
{
	/* BUG: %[5]s readiness is not part of the trigger condition */
	if (map_len == 1) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux)
			sp := fmt.Sprintf("fastpath %s\ncond map_len %s\n", fn, n.Aux)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("rx_steer")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, int map_len, unsigned long %[5]s)
{
	if (map_len == 1 && !%[5]s) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux)
			sp := fmt.Sprintf("fastpath %s\ncond map_len %s\n", fn, n.Aux)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("rx_steer")
			helper := n.Fn("table_ready")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
int %[6]s(struct %[1]s *obj);
static int %[3]s(struct %[1]s *%[4]s, int map_len, unsigned long %[5]s)
{
	/* validated: %[6]s() folds the %[5]s readiness test */
	if (map_len == 1 && %[6]s(%[4]s)) {
		%[4]s->%[2]s = 1;
		return 1;
	}
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux, helper)
			sp := fmt.Sprintf("fastpath %s\ncond map_len %s\n", fn, n.Aux)
			return src, sp
		},
	})
}

func registerCondOrder() {
	register(&Template{
		Finding:     report.FindCondOrder,
		Consequence: "Performance degradation",
		FPSource:    "cheaper check hoisted deliberately; expensive check re-validated later",
		Stem:        "alloc_order",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("alloc_order")
			src := fmt.Sprintf(`
static int %[1]s(int remote_ok, int oom_ok)
{
	/* BUG: OOM (expensive) is tried before remote allocation */
	if (oom_ok)
		return 2;
	if (remote_ok)
		return 1;
	return 0;
}
`, fn)
			sp := fmt.Sprintf("fastpath %s\norder remote_ok oom_ok\n", fn)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("alloc_order")
			src := fmt.Sprintf(`
static int %[1]s(int remote_ok, int oom_ok)
{
	if (remote_ok)
		return 1;
	if (oom_ok)
		return 2;
	return 0;
}
`, fn)
			sp := fmt.Sprintf("fastpath %s\norder remote_ok oom_ok\n", fn)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("alloc_order")
			src := fmt.Sprintf(`
static int %[1]s(int remote_ok, int oom_ok)
{
	/* validated: oom_ok is a cheap cached hint consulted first on purpose;
	 * remote_ok is still honoured inside the branch. */
	if (oom_ok) {
		if (remote_ok)
			return 1;
		return 2;
	}
	if (remote_ok)
		return 1;
	return 0;
}
`, fn)
			sp := fmt.Sprintf("fastpath %s\norder remote_ok oom_ok\n", fn)
			return src, sp
		},
	})
}

// --- Path output -----------------------------------------------------------------

func registerOutMismatch() {
	register(&Template{
		Finding:     report.FindOutMismatch,
		Consequence: "System crash",
		FPSource:    "extra fast-path return value tolerated by every caller",
		Stem:        "rcv",
		Buggy: func(n Names) (string, string) {
			fast := n.Fn("rcv_fast")
			slow := n.Fn("rcv_slow")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[5]s)
{
	if (%[5]s->len == 0)
		return 1; /* BUG: slow path reports 0 for the same case */
	%[5]s->%[2]s = 1;
	return 0;
}
static int %[4]s(struct %[1]s *%[5]s)
{
	if (%[5]s->len < 0)
		return -1;
	%[5]s->%[2]s = 1;
	return 0;
}
`, n.Obj, n.StateField, fast, slow, n.ObjVar)
			sp := fmt.Sprintf("pair %s %s\n", fast, slow)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fast := n.Fn("rcv_fast")
			slow := n.Fn("rcv_slow")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
static int %[3]s(struct %[1]s *%[5]s)
{
	if (%[5]s->len < 0)
		return -1;
	%[5]s->%[2]s = 1;
	return 0;
}
static int %[4]s(struct %[1]s *%[5]s)
{
	if (%[5]s->len < 0)
		return -1;
	%[5]s->%[2]s = 2;
	return 0;
}
`, n.Obj, n.StateField, fast, slow, n.ObjVar)
			sp := fmt.Sprintf("pair %s %s\n", fast, slow)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fast := n.Fn("rcv_fast")
			slow := n.Fn("rcv_slow")
			src := fmt.Sprintf(`
struct %[1]s { int len; unsigned long %[2]s; };
/* validated: callers treat 1 ("handled, skip validation") like 0 */
static int %[3]s(struct %[1]s *%[5]s)
{
	if (%[5]s->len == 0)
		return 1;
	return 0;
}
static int %[4]s(struct %[1]s *%[5]s)
{
	return 0;
}
`, n.Obj, n.StateField, fast, slow, n.ObjVar)
			sp := fmt.Sprintf("pair %s %s\n", fast, slow)
			return src, sp
		},
	})
}

func registerOutUnexpected() {
	register(&Template{
		Finding:     report.FindOutUnexpected,
		Consequence: "Incorrect results",
		FPSource:    "sentinel value documented outside the defined return set",
		Stem:        "get_state",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("get_state")
			src := fmt.Sprintf(`
enum %[4]s_codes { %[5]s_OK = 0, %[5]s_BUSY = 1 };
static int %[1]s(struct %[2]s *%[3]s)
{
	if (%[3]s->len > 0)
		return %[5]s_BUSY;
	return 7; /* BUG: not one of the defined states */
}
struct %[2]s { int len; };
`, fn, n.Obj, n.ObjVar, n.FilePrefix, upper(n.FilePrefix))
			sp := fmt.Sprintf("fastpath %s\nreturns %s {%s_OK, %s_BUSY}\n",
				fn, fn, upper(n.FilePrefix), upper(n.FilePrefix))
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("get_state")
			src := fmt.Sprintf(`
enum %[4]s_codes { %[5]s_OK = 0, %[5]s_BUSY = 1 };
static int %[1]s(struct %[2]s *%[3]s)
{
	if (%[3]s->len > 0)
		return %[5]s_BUSY;
	return %[5]s_OK;
}
struct %[2]s { int len; };
`, fn, n.Obj, n.ObjVar, n.FilePrefix, upper(n.FilePrefix))
			sp := fmt.Sprintf("fastpath %s\nreturns %s {%s_OK, %s_BUSY}\n",
				fn, fn, upper(n.FilePrefix), upper(n.FilePrefix))
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("get_state")
			src := fmt.Sprintf(`
enum %[4]s_codes { %[5]s_OK = 0, %[5]s_BUSY = 1 };
/* validated: 2 is the documented "retry later" sentinel */
static int %[1]s(struct %[2]s *%[3]s)
{
	if (%[3]s->len > 0)
		return %[5]s_BUSY;
	return 2;
}
struct %[2]s { int len; };
`, fn, n.Obj, n.ObjVar, n.FilePrefix, upper(n.FilePrefix))
			sp := fmt.Sprintf("fastpath %s\nreturns %s {%s_OK, %s_BUSY}\n",
				fn, fn, upper(n.FilePrefix), upper(n.FilePrefix))
			return src, sp
		},
	})
}

func registerOutUnchecked() {
	register(&Template{
		Finding:     report.FindOutUnchecked,
		Consequence: "Data loss",
		FPSource:    "result validated inside the callee itself",
		Stem:        "flush",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("flush_fast")
			wait := n.Fn("wait_ordered")
			src := fmt.Sprintf(`
int %[1]s(int start, int len);
static int %[2]s(int start, int len)
{
	%[1]s(start, len); /* BUG: failure is silently dropped */
	return 0;
}
`, wait, fn)
			sp := fmt.Sprintf("fastpath %s\ncheck_return %s\n", fn, wait)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("flush_fast")
			wait := n.Fn("wait_ordered")
			src := fmt.Sprintf(`
int %[1]s(int start, int len);
static int %[2]s(int start, int len)
{
	int ret = %[1]s(start, len);
	if (ret < 0)
		return ret;
	return 0;
}
`, wait, fn)
			sp := fmt.Sprintf("fastpath %s\ncheck_return %s\n", fn, wait)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("flush_fast")
			wait := n.Fn("wait_ordered")
			src := fmt.Sprintf(`
static int %[1]s_errors = 0;
int %[1]s(int start, int len)
{
	if (start < 0) {
		%[1]s_errors = %[1]s_errors + 1; /* validated: error latched here */
		return -1;
	}
	return 0;
}
static int %[2]s(int start, int len)
{
	%[1]s(start, len);
	return 0;
}
`, wait, fn)
			sp := fmt.Sprintf("fastpath %s\ncheck_return %s\n", fn, wait)
			return src, sp
		},
	})
}

// --- Fault handling ------------------------------------------------------------

func registerFaultMissing() {
	register(&Template{
		Finding:     report.FindFaultMissing,
		Consequence: "System crash",
		FPSource:    "fault handled by a lower-level routine",
		Stem:        "submit",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("submit_fast")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; int active; };
static void %[3]s(struct %[1]s *%[4]s, int wait)
{
	/* BUG: failed %[4]s is never detached from the %[5]s */
	if (wait)
		return;
	%[4]s->active = 1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux)
			sp := fmt.Sprintf("fastpath %s\nfault %s\n", fn, n.StateField)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("submit_fast")
			cleanup := n.Fn("remove_from_list")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; int active; };
void %[6]s(struct %[1]s *obj);
static void %[3]s(struct %[1]s *%[4]s, int wait)
{
	if (wait)
		return;
	if (%[4]s->%[2]s)
		%[6]s(%[4]s);
	%[4]s->active = 1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux, cleanup)
			sp := fmt.Sprintf("fastpath %s\nfault %s\n", fn, n.StateField)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("submit_fast")
			low := n.Fn("low_level_eh")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; int active; };
void %[6]s(struct %[1]s *obj); /* validated: tests %[2]s internally */
static void %[3]s(struct %[1]s *%[4]s, int wait)
{
	if (wait)
		return;
	%[6]s(%[4]s);
	%[4]s->active = 1;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux, low)
			sp := fmt.Sprintf("fastpath %s\nfault %s\n", fn, n.StateField)
			return src, sp
		},
	})
}

// --- Assistant data structures ------------------------------------------------

func registerDSLayout() {
	register(&Template{
		Finding:     report.FindDSLayout,
		Consequence: "Performance degradation",
		FPSource:    "field used only by the slow path",
		Stem:        "hot_lookup",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("hot_lookup")
			src := fmt.Sprintf(`
struct %[1]s {
	unsigned long %[2]s;
	int legacy_index; /* BUG: dead weight on the hot cache line */
};
static unsigned long %[3]s(struct %[1]s *%[4]s)
{
	return %[4]s->%[2]s;
}
`, n.Obj, n.StateField, fn, n.ObjVar)
			sp := fmt.Sprintf("fastpath %s\nhotstruct %s\n", fn, n.Obj)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("hot_lookup")
			src := fmt.Sprintf(`
struct %[1]s {
	unsigned long %[2]s;
	int refcount;
};
static unsigned long %[3]s(struct %[1]s *%[4]s)
{
	return %[4]s->%[2]s + %[4]s->refcount;
}
`, n.Obj, n.StateField, fn, n.ObjVar)
			sp := fmt.Sprintf("fastpath %s\nhotstruct %s\n", fn, n.Obj)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("hot_lookup")
			slow := n.Fn("slow_audit")
			src := fmt.Sprintf(`
struct %[1]s {
	unsigned long %[2]s;
	int audit_tag; /* validated: needed by %[5]s on the slow path */
};
static unsigned long %[3]s(struct %[1]s *%[4]s)
{
	return %[4]s->%[2]s;
}
int %[5]s(struct %[1]s *%[4]s)
{
	return %[4]s->audit_tag;
}
`, n.Obj, n.StateField, fn, n.ObjVar, slow)
			sp := fmt.Sprintf("fastpath %s\nhotstruct %s\n", fn, n.Obj)
			return src, sp
		},
	})
}

func registerDSStale() {
	register(&Template{
		Finding:     report.FindDSStale,
		Consequence: "Data inconsistency",
		FPSource:    "cache refreshed asynchronously by a maintenance worker",
		Stem:        "invalidate",
		Buggy: func(n Names) (string, string) {
			fn := n.Fn("invalidate")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; };
static int %[3]s(struct %[1]s *%[4]s, int %[5]s)
{
	%[4]s->%[2]s = 0; /* BUG: %[5]s still holds the dead entry */
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux)
			sp := fmt.Sprintf("fastpath %s\ncache %s of %s\n", fn, n.Aux, n.ObjVar)
			return src, sp
		},
		Clean: func(n Names) (string, string) {
			fn := n.Fn("invalidate")
			drop := n.Fn("cache_remove")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; };
void %[6]s(int cachev, struct %[1]s *obj);
static int %[3]s(struct %[1]s *%[4]s, int %[5]s)
{
	%[4]s->%[2]s = 0;
	%[6]s(%[5]s, %[4]s);
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux, drop)
			sp := fmt.Sprintf("fastpath %s\ncache %s of %s\n", fn, n.Aux, n.ObjVar)
			return src, sp
		},
		Trap: func(n Names) (string, string) {
			fn := n.Fn("invalidate")
			worker := n.Fn("cache_gc_worker")
			src := fmt.Sprintf(`
struct %[1]s { int %[2]s; };
/* validated: %[6]s sweeps dead entries out of %[5]s periodically */
void %[6]s(int cachev);
static int %[3]s(struct %[1]s *%[4]s, int %[5]s)
{
	%[4]s->%[2]s = 0;
	return 0;
}
`, n.Obj, n.StateField, fn, n.ObjVar, n.Aux, worker)
			sp := fmt.Sprintf("fastpath %s\ncache %s of %s\n", fn, n.Aux, n.ObjVar)
			return src, sp
		},
	})
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}
