package corpus

// BigFileMob returns the Android-scale unit: a synthetic
// drivers/android/binder.c with the one-way transaction dispatch fast path —
// node lookup, a per-process work queue, priority inheritance, and the
// allocation policy plumbing the Table-7 MOB rows cover. Two defects are
// seeded: the fast path clobbers the immutable allocation policy flags
// (rule 1.2, the mempolicy/page_alloc "[S] immutable state" rows), and it
// selects a target thread without consulting its correlated node mask
// (rule 1.3, the "wrong state" pattern).
func BigFileMob() (source, spec string) {
	return bigFileMobSource, bigFileMobSpec
}

const bigFileMobSpec = `
pair binder_transact_fast binder_transact_slow
immutable policy_flags
correlated target_thread node_mask
cond binder_transact_fast:oneway
fault binder_transact_slow:dead_node
`

const bigFileMobSource = `
enum binder_work { BINDER_WORK_TRANSACTION = 1, BINDER_WORK_DEAD = 2 };

struct binder_node {
	int dead_node;
	unsigned long node_mask;
	int min_priority;
	long strong_refs;
};

struct binder_thread {
	int pid;
	int priority;
	int looper_ready;
	struct binder_node *node;
};

struct binder_proc {
	int pid;
	int work_count;
	int work_queue[32];
	unsigned long default_mask;
};

static void binder_enqueue_work(struct binder_proc *proc, int work)
{
	if (proc->work_count < 32) {
		proc->work_queue[proc->work_count] = work;
		proc->work_count++;
	}
}

static int binder_inherit_priority(struct binder_thread *target, int priority)
{
	if (target->priority > priority)
		target->priority = priority;
	return target->priority;
}

/* Fast path: one-way transactions skip reply bookkeeping entirely.
 * BUG (seeded, rule 1.2): the immutable allocation policy flags are
 * clobbered to "no-wait" and never restored — the mempolicy "[S] wrong
 * state" defect.
 * BUG (seeded, rule 1.3): the target thread is used without consulting its
 * correlated node_mask, so dispatch can land on an excluded node. */
int binder_transact_fast(struct binder_proc *proc, struct binder_thread *target_thread,
			 unsigned long policy_flags, unsigned long node_mask, int oneway)
{
	if (!oneway)
		return -1; /* replies take the slow path */
	policy_flags = policy_flags | 0x8;
	binder_inherit_priority(target_thread, 0);
	binder_enqueue_work(proc, BINDER_WORK_TRANSACTION);
	return 0;
}

/* Slow path: full transaction with reply tracking and death checks. */
int binder_transact_slow(struct binder_proc *proc, struct binder_thread *target_thread,
			 unsigned long policy_flags, unsigned long node_mask, int oneway)
{
	struct binder_node *node = target_thread->node;
	if (node->dead_node) {
		binder_enqueue_work(proc, BINDER_WORK_DEAD);
		return -1;
	}
	if ((node_mask & node->node_mask) == 0)
		return -1; /* node excluded by the correlated mask */
	binder_inherit_priority(target_thread, node->min_priority);
	binder_enqueue_work(proc, BINDER_WORK_TRANSACTION);
	return 0;
}

int binder_drain_work(struct binder_proc *proc)
{
	int handled = 0;
	while (proc->work_count > 0) {
		proc->work_count--;
		handled++;
	}
	return handled;
}
`
