package corpus

// BigFileWB returns the Chromium-scale unit: a synthetic
// task_queue_impl.cc (transliterated to the C subset) with the lock-free
// delayed-task posting fast path that Table 7 lists twice. Two defects are
// seeded, matching those rows: the fast path reports success with 1 where
// the locked slow path and every caller use 0 (rule 3.2, "wrong return /
// Wrong result"), and the hot task struct carries trace fields no fast path
// reads (rule 5.1, "[S] suboptimal layout / Regression").
func BigFileWB() (source, spec string) {
	return bigFileWBSource, bigFileWBSpec
}

const bigFileWBSpec = `
pair task_queue_post_fast task_queue_post_slow
cond task_queue_post_fast:delay_ms
hotstruct render_task
check_return time_ticks_now
`

const bigFileWBSource = `
enum post_result { POST_OK = 0, POST_SHUTDOWN = -1 };

struct render_task {
	unsigned long sequence_num;
	long delay_ms;
	int priority;
	long trace_id;       /* unused by any fast path: dead weight */
	long parent_trace;   /* unused by any fast path: dead weight */
};

struct task_queue {
	int lock;
	int shutdown;
	int immediate_count;
	int delayed_count;
	struct render_task *immediate[64];
	struct render_task *delayed[64];
	unsigned long enqueue_order;
};

long time_ticks_now(void);

static void queue_push_immediate(struct task_queue *q, struct render_task *task)
{
	if (q->immediate_count < 64) {
		q->immediate[q->immediate_count] = task;
		q->immediate_count++;
	}
	q->enqueue_order++;
}

static void queue_push_delayed(struct task_queue *q, struct render_task *task)
{
	if (q->delayed_count < 64) {
		q->delayed[q->delayed_count] = task;
		q->delayed_count++;
	}
	q->enqueue_order++;
}

/* Fast path: post to the current thread's queue without taking the lock.
 * BUG (seeded, rule 3.2): success is 1 here but 0 (POST_OK) on the locked
 * path; callers treating non-zero as failure re-post the task. */
int task_queue_post_fast(struct task_queue *q, struct render_task *task)
{
	long now;
	if (q->shutdown)
		return POST_SHUTDOWN;
	if (task->priority < 0 || task->sequence_num == 0)
		return POST_SHUTDOWN;
	if (task->delay_ms == 0) {
		queue_push_immediate(q, task);
		return 1;
	}
	now = time_ticks_now();
	if (now < 0)
		return POST_SHUTDOWN;
	task->delay_ms += now;
	queue_push_delayed(q, task);
	return 1;
}

/* Slow path: cross-thread posting under the queue lock. */
int task_queue_post_slow(struct task_queue *q, struct render_task *task)
{
	long now;
	q->lock = 1;
	if (q->shutdown) {
		q->lock = 0;
		return POST_SHUTDOWN;
	}
	now = time_ticks_now();
	if (now < 0) {
		q->lock = 0;
		return POST_SHUTDOWN;
	}
	if (task->delay_ms == 0)
		queue_push_immediate(q, task);
	else
		queue_push_delayed(q, task);
	q->lock = 0;
	return POST_OK;
}

int task_queue_drain(struct task_queue *q)
{
	int ran = 0;
	while (q->immediate_count > 0) {
		q->immediate_count--;
		ran++;
	}
	return ran;
}
`
