package corpus

// BigFileSDN returns the Open vSwitch-scale unit: a synthetic dpif-netdev.c
// with the userspace datapath fast path of Table 7 — exact-match flow-cache
// lookup, megaflow fallback, upcall to the controller, and batch accounting.
// Two defects are seeded, matching the Table-7 OVS rows: the fast path
// consults the upcall budget before the flow-cache hit test (rule 2.3,
// "incorrect order / Regression"), and its trigger condition omits the
// CHECKSUM_PARTIAL-style offload flag (rule 2.2, "incomplete / Regression").
func BigFileSDN() (source, spec string) {
	return bigFileSDNSource, bigFileSDNSpec
}

const bigFileSDNSpec = `
pair dpif_netdev_process_fast dpif_netdev_process_slow
cond dpif_netdev_process_fast:emc_hit dpif_netdev_process_fast:csum_partial
order emc_hit upcall_budget_ok
check_return dp_execute_actions
`

const bigFileSDNSource = `
enum { EMC_ENTRIES = 8192 };

struct flow_key {
	unsigned long hash;
	int in_port;
	int eth_type;
};

struct packet {
	int len;
	int csum_partial;
	struct flow_key key;
};

struct flow {
	struct flow_key key;
	int actions;
	long hit_count;
};

struct dp_netdev {
	struct flow *emc[64];
	int emc_count;
	int upcall_budget;
	long batch_hits;
	long batch_misses;
};

int dp_execute_actions(struct dp_netdev *dp, struct packet *pkt, int actions);

static struct flow *emc_lookup(struct dp_netdev *dp, struct flow_key *key)
{
	int slot = (int)(key->hash & 63);
	struct flow *f = dp->emc[slot];
	if (f && f->key.hash == key->hash && f->key.in_port == key->in_port)
		return f;
	return 0;
}

static struct flow *megaflow_lookup(struct dp_netdev *dp, struct flow_key *key)
{
	int i;
	for (i = 0; i < 64; i++) {
		struct flow *f = dp->emc[i];
		if (f && f->key.eth_type == key->eth_type)
			return f;
	}
	return 0;
}

static int upcall_to_controller(struct dp_netdev *dp, struct packet *pkt)
{
	if (dp->upcall_budget <= 0)
		return -1;
	dp->upcall_budget--;
	return 0;
}

/* Fast path: exact-match cache hit executes actions immediately.
 * BUG (seeded, rule 2.3): the upcall budget (a miss-path concern) is checked
 * BEFORE the cache-hit test, so a drained budget disables the cache
 * entirely — the dpif-netdev "incorrect order" regression of Table 7.
 * BUG (seeded, rule 2.2): packets with pending checksum offload
 * (csum_partial) must not take the fast path; the flag is never consulted —
 * the ip6_output/vxlan "incomplete condition" regression. */
int dpif_netdev_process_fast(struct dp_netdev *dp, struct packet *pkt, int upcall_budget_ok)
{
	struct flow *f;
	int emc_hit;
	if (!upcall_budget_ok)
		return -1;
	f = emc_lookup(dp, &pkt->key);
	emc_hit = f != 0;
	if (emc_hit) {
		dp->batch_hits++;
		f->hit_count++;
		return dp_execute_actions(dp, pkt, f->actions);
	}
	return -1;
}

/* Slow path: megaflow fallback, then upcall. */
int dpif_netdev_process_slow(struct dp_netdev *dp, struct packet *pkt, int upcall_budget_ok)
{
	struct flow *f = megaflow_lookup(dp, &pkt->key);
	int err;
	if (f) {
		dp->batch_hits++;
		return dp_execute_actions(dp, pkt, f->actions);
	}
	dp->batch_misses++;
	if (!upcall_budget_ok)
		return -1;
	err = upcall_to_controller(dp, pkt);
	if (err)
		return -1;
	return err;
}

int dpif_netdev_insert(struct dp_netdev *dp, struct flow *f)
{
	int slot = (int)(f->key.hash & 63);
	dp->emc[slot] = f;
	dp->emc_count++;
	return slot;
}
`
