// Package corpus provides the synthetic fast-path corpus that stands in for
// the software the paper evaluates (Linux 4.6 MM/FS/NET/DEV, Chromium 54,
// Open vSwitch 2.5, Android 6.0). Real sources are unavailable in this
// environment; each corpus case is a small kernel-style C fast path with one
// seeded defect (or one deliberate false-positive trap) that exercises
// exactly the rule / code path the corresponding real bug exercised.
//
// The registry is generated so that running all five checkers over the full
// corpus reproduces Table 1 of the paper cell by cell: 155 validated bugs and
// 224 warnings across 7 systems and 12 finding types (69% accuracy), with
// the false positives drawn from the five FP sources of §5.3.
package corpus

import (
	"fmt"
	"sort"
)

// System identifies one evaluated software system (Table 1 columns).
type System string

// The seven systems of Table 1.
const (
	MM  System = "MM"  // Linux virtual memory manager
	FS  System = "FS"  // Linux file systems
	NET System = "NET" // Linux network stack
	DEV System = "DEV" // Linux device drivers
	WB  System = "WB"  // Chromium web browser
	SDN System = "SDN" // Open vSwitch
	MOB System = "MOB" // Android kernel
)

// Systems lists all systems in Table-1 column order.
func Systems() []System { return []System{MM, FS, NET, DEV, WB, SDN, MOB} }

// SystemInfo describes one evaluated system (Table 6).
type SystemInfo struct {
	System      System
	Software    string
	Version     string
	Description string
}

// Inventory reproduces Table 6 (plus the per-subsystem split of the kernel).
func Inventory() []SystemInfo {
	return []SystemInfo{
		{MM, "Linux kernel (mm)", "4.6", "General-purpose OS: virtual memory manager"},
		{FS, "Linux kernel (fs)", "4.6", "General-purpose OS: file systems"},
		{NET, "Linux kernel (net)", "4.6", "General-purpose OS: network stack"},
		{DEV, "Linux kernel (drivers)", "4.6", "General-purpose OS: device drivers"},
		{WB, "Chromium", "54.0", "Web browser"},
		{SDN, "Open vSwitch", "2.5.0", "SDN software"},
		{MOB, "Android kernel", "6.0", "OS for mobile devices"},
	}
}

// Kind distinguishes seeded bugs from deliberate false-positive traps.
type Kind int

// Case kinds.
const (
	// Bug is a validated defect: the checker warning is a true positive.
	Bug Kind = iota
	// Trap is a false-positive trap (§5.3): the checker warns, but manual
	// validation shows the code is correct.
	Trap
	// Clean is a defect-free case used by the completeness experiment as
	// injection substrate; no warning is expected.
	Clean
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Bug:
		return "bug"
	case Trap:
		return "trap"
	case Clean:
		return "clean"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Case is one corpus entry.
type Case struct {
	// ID is unique within the corpus ("mm/state-overwrite/0").
	ID string
	// System is the Table-1 column the case belongs to.
	System System
	// File is the pretend source file ("mm/page_alloc.c").
	File string
	// Operation describes the fast path (Table 7 wording where applicable).
	Operation string
	// Source is the C translation unit to analyze.
	Source string
	// CleanSource is the fixed version (empty when Kind==Clean, where Source
	// is already clean).
	CleanSource string
	// Spec holds the semantic directives for the case.
	Spec string
	// Finding is the expected report finding key (report.Find*); empty for
	// Clean cases.
	Finding string
	// Kind classifies the case.
	Kind Kind
	// Consequence is the failure class ("System crash", "Data loss", ...).
	Consequence string
	// LatentYears is the bug's latent period (0 = N/A, as for Chromium).
	LatentYears float64
	// Figure is the paper figure the case reproduces (0 = none).
	Figure int
	// Table7 marks the case as one of the 34 bugs listed in Table 7.
	Table7 bool
	// FPSource describes the §5.3 false-positive source for traps.
	FPSource string
}

// Registry is the generated corpus.
type Registry struct {
	Cases []*Case
	byID  map[string]*Case
}

// Get returns a case by ID, or nil.
func (r *Registry) Get(id string) *Case { return r.byID[id] }

// BySystem returns the cases of one system, in registry order.
func (r *Registry) BySystem(s System) []*Case {
	var out []*Case
	for _, c := range r.Cases {
		if c.System == s {
			out = append(out, c)
		}
	}
	return out
}

// ByFinding returns the cases with the given expected finding.
func (r *Registry) ByFinding(finding string) []*Case {
	var out []*Case
	for _, c := range r.Cases {
		if c.Finding == finding {
			out = append(out, c)
		}
	}
	return out
}

// Bugs returns the seeded-bug cases.
func (r *Registry) Bugs() []*Case {
	var out []*Case
	for _, c := range r.Cases {
		if c.Kind == Bug {
			out = append(out, c)
		}
	}
	return out
}

// Traps returns the false-positive trap cases.
func (r *Registry) Traps() []*Case {
	var out []*Case
	for _, c := range r.Cases {
		if c.Kind == Trap {
			out = append(out, c)
		}
	}
	return out
}

// Table7Cases returns the 34 cases of Table 7 in paper order.
func (r *Registry) Table7Cases() []*Case {
	var out []*Case
	for _, c := range r.Cases {
		if c.Table7 {
			out = append(out, c)
		}
	}
	return out
}

// CellCount tallies cases matching (finding, system, kind).
func (r *Registry) CellCount(finding string, s System, k Kind) int {
	n := 0
	for _, c := range r.Cases {
		if c.Finding == finding && c.System == s && c.Kind == k {
			n++
		}
	}
	return n
}

func newRegistry(cases []*Case) *Registry {
	r := &Registry{Cases: cases, byID: map[string]*Case{}}
	for _, c := range cases {
		if _, dup := r.byID[c.ID]; dup {
			panic("corpus: duplicate case id " + c.ID)
		}
		r.byID[c.ID] = c
	}
	return r
}

// SortIDs returns all case IDs sorted (for deterministic iteration in tests).
func (r *Registry) SortIDs() []string {
	out := make([]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		out = append(out, c.ID)
	}
	sort.Strings(out)
	return out
}
