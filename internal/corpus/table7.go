package corpus

import "pallas/internal/report"

// table7Row is one of the 34 new bugs listed in Table 7 of the paper. The
// generator assigns each row to a seeded-bug case of the matching finding and
// system, attaching the paper's file, operation, error type, consequence and
// latent period as case metadata.
type table7Row struct {
	System      System
	File        string
	Operation   string
	ErrType     string // the paper's bracketed error label
	Finding     string
	Consequence string
	Years       float64 // 0 = N/A (Chromium's tracker has no latent data)
}

// table7 reproduces Table 7 row for row, in paper order.
var table7 = []table7Row{
	{MM, "mm/slab.c", "Allocate w/ local pages", "[F] missing handler", report.FindFaultMissing, "System crash", 6.5},

	{FS, "fs/ocfs2/uptodate.c", "Insert metadata buffer to cache w/o resizing", "[O] missing log output", report.FindOutUnchecked, "Inconsistency", 2.2},
	{FS, "fs/ocfs2/uptodate.c", "Insert new buffer to cache w/o resizing", "[F] missing handler", report.FindFaultMissing, "System crash", 6.1},
	{FS, "fs/xfs/xfs_ialloc.c", "Allocate an inode using the free inode btree", "[O] wrong output", report.FindOutUnexpected, "Inconsistency", 2.2},

	{NET, "net/unix/af_unix.c", "Send page data w/ socket", "[C] incorrect order", report.FindCondOrder, "Regression", 1.1},
	{NET, "net/ipv4/tcp_ipv4.c", "Get first established socket w/o a lock", "[O] wrong lock state", report.FindOutUnexpected, "Deadlock", 8.4},
	{NET, "net/ipv4/udp.c", "Send msgs w/o a lock for non-corking case", "[O] wrong output", report.FindOutMismatch, "Wrong result", 5.4},

	{DEV, "drivers/staging/lustre/cl_page.c", "Find Lustre page in cache", "[O] unexpected output", report.FindOutUnexpected, "System crash", 3.2},
	{DEV, "drivers/tty/hvc/hvc_console.c", "Open w/ an existing port", "[F] skipping handler", report.FindFaultMissing, "System crash", 5.5},
	{DEV, "drivers/staging/lustre/lov_io.c", "I/O initialization when file is striped", "[C] missing condition", report.FindCondMissing, "Regression", 3.2},
	{DEV, "drivers/scsi/mpt3sas/mpt3sas_base.c", "Send fast-path requests to firmware", "[D] suboptimal layout", report.FindDSLayout, "Regression", 3.7},
	{DEV, "drivers/scsi/mpt3sas/mpt3sas_scsih.c", "Turn on fast path for IR physdisk", "[F] skipping handler", report.FindFaultMissing, "System crash", 2.9},

	{WB, "chromium/ppb_nacl_private_impl.cc", "Download a file w/ PNaCl support", "[F] missing handler", report.FindFaultMissing, "System crash", 0},
	{WB, "chromium/ppb_nacl_private_impl.cc", "Download a Nexe file w/ PNaCl support", "[F] unexpected output", report.FindFaultMissing, "System crash", 0},
	{WB, "chromium/task_queue_impl.cc", "Post delayed tasks w/o a lock", "[O] wrong return", report.FindOutMismatch, "Wrong result", 0},
	{WB, "chromium/task_queue_impl.cc", "Post delayed tasks w/o a lock", "[S] suboptimal layout", report.FindDSLayout, "Regression", 0},
	{WB, "chromium/web_url_loader_impl.cc", "Load URL w/ local data", "[F] missing handler", report.FindFaultMissing, "System crash", 0},
	{WB, "chromium/wts_terminal_monitor.cc", "Get session id w/ physical console", "[O] wrong return", report.FindOutMismatch, "Wrong result", 0},
	{WB, "chromium/ScriptValueSerializer.cpp", "Write ASCII strings", "[F] missing handler", report.FindFaultMissing, "Inconsistency", 0},
	{WB, "chromium/GraphicsContext.cpp", "Draw w/ Shader", "[F] missing handler", report.FindFaultMissing, "System crash", 0},
	{WB, "chromium/PartitionAlloc.cpp", "Allocate pages in the active-page list", "[F] wrong handler", report.FindFaultMissing, "Wrong result", 0},

	{MOB, "android/cpufreq-set.c", "Modify only one value of a policy", "[O] wrong output", report.FindOutMismatch, "Wrong result", 4.6},
	{MOB, "android/macvtap.c", "Pin user pages in memory", "[F] missing handler", report.FindFaultMissing, "System crash", 4.7},
	{MOB, "android/mempolicy.c", "Allocate a page w/ a default policy", "[S] wrong state", report.FindStateUninit, "Memory leak", 2.1},
	{MOB, "android/mempolicy.c", "Allocate a page w/ a default policy", "[C] incorrect order", report.FindCondOrder, "Regression", 2.1},
	{MOB, "android/namei.c", "Lookup inode w/o a lock", "[O] unexpected state", report.FindOutUnexpected, "Inconsistency", 0.8},
	{MOB, "android/namespace.c", "Unmount file systems w/o a lock", "[C] skipping slow path", report.FindCondMissing, "System crash", 2.7},
	{MOB, "android/page_alloc.c", "Get a page from freelist", "[S] immutable state", report.FindStateOverwrite, "Wrong result", 0.8},
	{MOB, "android/skbuff.c", "Reallocate when a skb has a single reference", "[C] wrong condition", report.FindCondIncomplete, "Memory leak", 1.9},
	{MOB, "android/xfs_mount.c", "Modify a counter if it is in use", "[F] missing handler", report.FindFaultMissing, "Inconsistency", 2.3},

	{SDN, "ovs/dpif-netdev.c", "Process in defined fast path", "[C] incorrect order", report.FindCondOrder, "Regression", 2.8},
	{SDN, "ovs/ip6_output.c", "Create fragments for not cloned skb", "[C] incomplete", report.FindCondIncomplete, "Regression", 0.5},
	{SDN, "ovs/netdevice.c", "Calculate header offset in fast path", "[F] missing handler", report.FindFaultMissing, "System crash", 0.5},
	{SDN, "ovs/vxlan.c", "Calculate header offset in fast path", "[F] missing handler", report.FindFaultMissing, "System crash", 0.5},
}

// table7For returns the Table-7 rows assigned to (finding, system), in order.
func table7For(finding string, s System) []table7Row {
	var out []table7Row
	for _, r := range table7 {
		if r.Finding == finding && r.System == s {
			out = append(out, r)
		}
	}
	return out
}
