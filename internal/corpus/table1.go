package corpus

import (
	"fmt"
	"strings"
	"sync"

	"pallas/internal/report"
)

// Table1Row captures one row of Table 1: the validated-bug counts per system
// plus the total warning count (the "B/W" column's W).
type Table1Row struct {
	Finding  string
	Bugs     [7]int // MM, FS, NET, DEV, WB, SDN, MOB
	Warnings int
}

// TotalBugs sums the row's bug counts.
func (r Table1Row) TotalBugs() int {
	n := 0
	for _, b := range r.Bugs {
		n += b
	}
	return n
}

// Table1 reproduces the published Table 1 cell counts the corpus seeds.
func Table1() []Table1Row {
	return []Table1Row{
		{report.FindStateOverwrite, [7]int{1, 1, 1, 1, 3, 1, 2}, 16},
		{report.FindStateUninit, [7]int{1, 1, 2, 1, 2, 1, 2}, 16},
		{report.FindStateCorrelated, [7]int{1, 1, 1, 1, 1, 1, 3}, 15},
		{report.FindCondMissing, [7]int{5, 1, 3, 2, 3, 2, 3}, 21},
		{report.FindCondIncomplete, [7]int{1, 1, 1, 3, 2, 1, 5}, 18},
		{report.FindCondOrder, [7]int{1, 1, 1, 1, 1, 2, 1}, 15},
		{report.FindOutMismatch, [7]int{1, 1, 2, 1, 2, 1, 4}, 19},
		{report.FindOutUnexpected, [7]int{1, 1, 2, 1, 3, 2, 2}, 14},
		{report.FindOutUnchecked, [7]int{1, 2, 1, 1, 2, 1, 3}, 18},
		{report.FindFaultMissing, [7]int{2, 4, 2, 4, 7, 3, 5}, 37},
		{report.FindDSLayout, [7]int{2, 2, 1, 2, 4, 2, 2}, 21},
		{report.FindDSStale, [7]int{1, 1, 1, 1, 1, 1, 2}, 14},
	}
}

// latentCycle provides synthesized latent periods for bugs not listed in
// Table 7; the cycle's mean is ≈3.1 years, matching the paper's reported
// average latent period.
var latentCycle = []float64{0.9, 1.6, 2.3, 3.1, 4.0, 5.6, 2.8, 3.5, 4.4, 2.8}

var (
	generateOnce sync.Once
	generated    *Registry
)

// Generate builds (once) the full evaluation corpus: for every Table-1 cell,
// the seeded-bug cases (with Table-7 rows attached to their cells), and for
// every row the false-positive traps (W − B of them, spread over the seven
// systems). The result is deterministic.
func Generate() *Registry {
	generateOnce.Do(func() {
		generated = newRegistry(generateCases())
	})
	return generated
}

func generateCases() []*Case {
	var cases []*Case
	seq := map[System]int{}
	nextNames := func(s System) Names {
		n := namesFor(s, seq[s])
		seq[s]++
		return n
	}
	latentIdx := 0
	for rowIdx, row := range Table1() {
		tmpl := Templates[row.Finding]
		if tmpl == nil {
			panic("corpus: no template for " + row.Finding)
		}
		for sysIdx, sys := range Systems() {
			t7 := table7For(row.Finding, sys)
			for i := 0; i < row.Bugs[sysIdx]; i++ {
				n := nextNames(sys)
				src, sp := tmpl.Buggy(n)
				cleanSrc, _ := tmpl.Clean(n)
				c := &Case{
					ID:          fmt.Sprintf("%s/%s/b%d", strings.ToLower(string(sys)), row.Finding, i),
					System:      sys,
					File:        n.FileName(tmpl.Stem),
					Operation:   fmt.Sprintf("%s (%s)", n.OpVerb, tmpl.Stem),
					Source:      src,
					CleanSource: cleanSrc,
					Spec:        sp,
					Finding:     row.Finding,
					Kind:        Bug,
					Consequence: tmpl.Consequence,
				}
				if i < len(t7) {
					r := t7[i]
					c.File = r.File
					c.Operation = r.Operation
					c.Consequence = r.Consequence
					c.LatentYears = r.Years
					c.Table7 = true
				} else if sys != WB {
					c.LatentYears = latentCycle[latentIdx%len(latentCycle)]
					latentIdx++
				}
				cases = append(cases, c)
			}
		}
		// False-positive traps: W − B of them, spread deterministically over
		// the systems starting at an offset that varies per row.
		nTraps := row.Warnings - row.TotalBugs()
		for i := 0; i < nTraps; i++ {
			sys := Systems()[(rowIdx+i)%len(Systems())]
			n := nextNames(sys)
			src, sp := tmpl.Trap(n)
			cases = append(cases, &Case{
				ID:          fmt.Sprintf("%s/%s/t%d", strings.ToLower(string(sys)), row.Finding, i),
				System:      sys,
				File:        n.FileName(tmpl.Stem),
				Operation:   fmt.Sprintf("%s (%s, benign)", n.OpVerb, tmpl.Stem),
				Source:      src,
				Spec:        sp,
				Finding:     row.Finding,
				Kind:        Trap,
				FPSource:    tmpl.FPSource,
				Consequence: "None (false positive)",
			})
		}
	}
	return cases
}

// CleanCases derives a defect-free registry from the seeded bugs (every bug
// case's fixed version). The completeness experiment (Table 8) injects known
// bugs into these.
func CleanCases() []*Case {
	reg := Generate()
	var out []*Case
	for _, c := range reg.Cases {
		if c.Kind != Bug || c.CleanSource == "" {
			continue
		}
		out = append(out, &Case{
			ID:        c.ID + "/clean",
			System:    c.System,
			File:      c.File,
			Operation: c.Operation,
			Source:    c.CleanSource,
			Spec:      c.Spec,
			Kind:      Clean,
		})
	}
	return out
}
