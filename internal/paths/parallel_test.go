package paths

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"pallas/internal/cparse"
	"pallas/internal/guard"
)

// branchySrc is a unit whose functions share two helpers (exercising the
// summary cache) and branch enough to produce many paths each.
const branchySrc = `
static void mark(struct req *r) { r->flag = 1; }
static int clamp(int v) { if (v > 100) return 100; return v; }
int f0(int a, struct req *r) {
	int rc = 0;
	if (a > 1) rc = rc + 1;
	if (a > 2) rc = rc + 2;
	if (a > 3) rc = rc + 4;
	if (a > 4) { mark(r); rc = clamp(rc); }
	return rc;
}
int f1(int a, struct req *r) {
	int rc = 0;
	if (a > 1) rc = rc + 1;
	if (a > 2) { mark(r); rc = rc + 2; }
	if (a > 3) rc = clamp(rc);
	return rc;
}
int f2(int a, struct req *r) {
	int rc = 0;
	if (a > 1) { mark(r); rc = clamp(a); }
	if (a > 2) rc = rc + 2;
	return rc;
}
`

// TestBudgetTruncationNotCleared is the regression test for the
// truncation-reset bug: once the step budget truncates a walk, re-entering
// walk with room left under MaxPaths must not flip Truncated back to false.
// The budget is sized to die mid-enumeration while MaxPaths stays far above
// the handful of paths extracted by then.
func TestBudgetTruncationNotCleared(t *testing.T) {
	tu, err := cparse.Parse("t.c", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	b := guard.NewBudget(nil, guard.Limits{MaxSteps: 6})
	ex := NewExtractor(tu, Config{MaxPaths: 512, MaxBlockVisits: 2, Budget: b})
	fp, err := ex.Extract("f0")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if !fp.Truncated {
		t.Fatalf("budget-limited extraction not marked truncated (%d paths)", len(fp.Paths))
	}
	if len(fp.Paths) >= 512 {
		t.Fatalf("test broken: %d paths, budget never bound", len(fp.Paths))
	}
}

// TestBudgetAndPathCapTruncation combines a tight budget with a low MaxPaths:
// whichever limit fires first, the function must stay truncated.
func TestBudgetAndPathCapTruncation(t *testing.T) {
	tu, err := cparse.Parse("t.c", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int64{4, 8, 16, 1 << 20} {
		b := guard.NewBudget(nil, guard.Limits{MaxSteps: steps})
		ex := NewExtractor(tu, Config{MaxPaths: 2, MaxBlockVisits: 2, Budget: b})
		fp, err := ex.Extract("f0")
		if err != nil {
			t.Fatalf("steps=%d: extract: %v", steps, err)
		}
		if !fp.Truncated {
			t.Errorf("steps=%d: want Truncated with MaxPaths=2, got %d paths untruncated",
				steps, len(fp.Paths))
		}
		if len(fp.Paths) > 2 {
			t.Errorf("steps=%d: %d paths exceed MaxPaths=2", steps, len(fp.Paths))
		}
	}
}

// TestExtractorConcurrentSameUnit hammers one shared extractor from many
// goroutines (run under -race in CI): the CFG and summary caches must be
// safe, and every concurrent result must be identical to a serial one.
func TestExtractorConcurrentSameUnit(t *testing.T) {
	tu, err := cparse.Parse("t.c", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	fns := []string{"f0", "f1", "f2", "mark", "clamp"}

	// Serial baseline, one extractor per function so no cache warming leaks
	// between baselines.
	want := map[string]string{}
	for _, fn := range fns {
		fp, err := NewExtractor(tu, DefaultConfig()).Extract(fn)
		if err != nil {
			t.Fatalf("serial %s: %v", fn, err)
		}
		b, err := json.Marshal(fp)
		if err != nil {
			t.Fatal(err)
		}
		want[fn] = string(b)
	}

	shared := NewExtractor(tu, DefaultConfig())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				fn := fns[(g+i)%len(fns)]
				fp, err := shared.Extract(fn)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", fn, err)
					return
				}
				b, err := json.Marshal(fp)
				if err != nil {
					errs <- err
					return
				}
				if string(b) != want[fn] {
					errs <- fmt.Errorf("%s: concurrent result differs from serial", fn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
