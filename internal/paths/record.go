// Package paths enumerates execution paths through function CFGs and
// extracts, for each path, the four components the paper's symbolic
// extraction produces (Table 5): the function signature, the ordered branch
// conditions, the state updates (assignments and callee effects), and the
// path output. Loops are bounded and callees are summarized/inlined to a
// configurable depth, "to prevent the path explosion problem".
package paths

import (
	"fmt"
	"strings"
)

// UpdateKind classifies a state update.
type UpdateKind int

// State update kinds.
const (
	// Assign is a plain assignment in the analyzed function.
	Assign UpdateKind = iota
	// Decl is a local declaration with (or without) an initializer.
	Decl
	// CallEffect is an update performed inside an inlined/summarized callee.
	CallEffect
	// IncDec is ++/--.
	IncDec
)

// String names the update kind.
func (k UpdateKind) String() string {
	switch k {
	case Assign:
		return "assign"
	case Decl:
		return "decl"
	case CallEffect:
		return "call-effect"
	case IncDec:
		return "incdec"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// Condition is one branch decision along a path.
type Condition struct {
	// Expr is the branch condition source text.
	Expr string
	// Sym is its symbolic rendering under the path's environment.
	Sym string
	// Outcome is "true", "false", a case label, or "default".
	Outcome string
	// Vars lists identifier names referenced by the condition.
	Vars []string
	// Fields lists canonical member paths referenced ("rxq->rps_map").
	Fields []string
	// Line is the source line of the condition.
	Line int
	// FromCallee names the summarized callee the condition came from (empty
	// when the condition is in the analyzed function itself).
	FromCallee string
}

// StateUpdate is one write to a variable or field along a path.
type StateUpdate struct {
	// Target is the canonical lvalue ("gfp_mask", "page->private").
	Target string
	// Root is the base identifier of Target.
	Root string
	// Value is the symbolic RHS in Table-5 notation.
	Value string
	// Kind classifies the update.
	Kind UpdateKind
	// Line is the source line.
	Line int
	// Callee names the summarized function for CallEffect updates.
	Callee string
}

// CallRecord is one function call along a path.
type CallRecord struct {
	// Name is the callee.
	Name string
	// Args are the rendered argument expressions.
	Args []string
	// Line is the call site line.
	Line int
	// ResultUsed reports whether the call result flows anywhere (assigned,
	// compared, returned or used as an argument) rather than being discarded.
	ResultUsed bool
	// ResultChecked reports whether the call result is tested by a branch
	// condition later on the same path.
	ResultChecked bool
	// Inlined reports whether the callee's summary was applied.
	Inlined bool
	// AssignedTo is the lvalue receiving the result, when directly assigned.
	AssignedTo string
	// FromCallee names the summarized function this nested call was lifted
	// out of; empty for calls made directly by the analyzed function. The
	// callee, not the caller, is responsible for checking lifted calls.
	FromCallee string
}

// Output is the value a path returns.
type Output struct {
	// Expr is the return expression source text ("" for bare return).
	Expr string
	// Sym is the symbolic value returned.
	Sym string
	// Line is the line of the return statement.
	Line int
	// Void marks a bare `return;` or falling off the end.
	Void bool
}

// ExecPath is one extracted execution path.
type ExecPath struct {
	// Fn is the analyzed function name.
	Fn string
	// Signature renders the function header ("f(gfp_mask, order, ...)").
	Signature string
	// Index numbers the path within its function (0-based, deterministic).
	Index int
	// Blocks records the CFG block IDs traversed.
	Blocks []int
	// Conds are the branch decisions, in execution order.
	Conds []Condition
	// States are the state updates, in execution order.
	States []StateUpdate
	// Calls are the calls made, in execution order.
	Calls []CallRecord
	// Out is the path output; nil only when extraction was truncated.
	Out *Output
}

// String renders the path compactly (one Table-5-style section per line).
func (p *ExecPath) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "path %d of %s\n", p.Index, p.Signature)
	for _, c := range p.Conds {
		fmt.Fprintf(&sb, "  cond  L%-4d %s = %s  [%s]\n", c.Line, c.Expr, c.Sym, c.Outcome)
	}
	for _, s := range p.States {
		callee := ""
		if s.Callee != "" {
			callee = " via " + s.Callee
		}
		fmt.Fprintf(&sb, "  state L%-4d %s = %s (%s%s)\n", s.Line, s.Target, s.Value, s.Kind, callee)
	}
	for _, c := range p.Calls {
		fmt.Fprintf(&sb, "  call  L%-4d %s(%s)\n", c.Line, c.Name, strings.Join(c.Args, ", "))
	}
	if p.Out != nil {
		if p.Out.Void {
			fmt.Fprintf(&sb, "  out   void\n")
		} else {
			fmt.Fprintf(&sb, "  out   L%-4d %s = %s\n", p.Out.Line, p.Out.Expr, p.Out.Sym)
		}
	}
	return sb.String()
}

// WritesTo reports whether any update on the path targets the variable (by
// canonical target or by root identifier).
func (p *ExecPath) WritesTo(name string) (StateUpdate, bool) {
	for _, s := range p.States {
		if s.Target == name || s.Root == name {
			return s, true
		}
	}
	return StateUpdate{}, false
}

// TestsVar reports whether any condition on the path references name, either
// as a plain identifier or as a component of a member path ("c->free_space"
// tests "free_space" as well as "c").
func (p *ExecPath) TestsVar(name string) bool {
	for _, c := range p.Conds {
		for _, v := range c.Vars {
			if v == name {
				return true
			}
		}
		for _, f := range c.Fields {
			if f == name || containsIdentWord(f, name) {
				return true
			}
		}
	}
	return false
}

// containsIdentWord reports whether s contains name delimited by non-ident
// characters (so "map->len" contains "len" but "maple" does not).
func containsIdentWord(s, name string) bool {
	idx := 0
	for {
		i := strings.Index(s[idx:], name)
		if i < 0 {
			return false
		}
		i += idx
		beforeOK := i == 0 || !isIdentByte(s[i-1])
		j := i + len(name)
		afterOK := j >= len(s) || !isIdentByte(s[j])
		if beforeOK && afterOK {
			return true
		}
		idx = i + len(name)
		if idx >= len(s) {
			return false
		}
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// CallNamed returns the first call to name on the path.
func (p *ExecPath) CallNamed(name string) (CallRecord, bool) {
	for _, c := range p.Calls {
		if c.Name == name {
			return c, true
		}
	}
	return CallRecord{}, false
}

// FuncPaths is the extraction result for one function.
type FuncPaths struct {
	Fn        string
	Signature string
	Paths     []*ExecPath
	// Truncated reports that MaxPaths was hit and the enumeration stopped.
	Truncated bool
	// Pruned counts path continuations the feasibility layer discarded
	// because their accumulated branch conditions were contradictory
	// (Config.Precision balanced/strict; always 0 under fast). Zero values
	// are omitted so fast-tier serializations are byte-identical to builds
	// that predate the field.
	Pruned int `json:"Pruned,omitempty"`
}
