package paths

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pallas/internal/cast"
	"pallas/internal/cfg"
	"pallas/internal/ctok"
	"pallas/internal/feas"
	"pallas/internal/guard"
	"pallas/internal/metrics"
	"pallas/internal/sym"
)

// Config bounds path extraction.
type Config struct {
	// MaxPaths caps the number of enumerated paths per function.
	MaxPaths int
	// MaxBlockVisits bounds how often one block may appear on a single path;
	// 2 lets every loop contribute its 0- and 1-iteration behaviours.
	MaxBlockVisits int
	// InlineDepth bounds transitive callee summarization.
	InlineDepth int
	// Budget, when non-nil, is charged one step per visited block; once it is
	// exhausted enumeration stops and the affected functions are marked
	// Truncated. A nil Budget imposes no limit.
	Budget *guard.Budget
	// Workers bounds intra-unit parallelism: how many functions of one
	// translation unit are extracted concurrently (each function is still
	// walked by exactly one goroutine). <= 1 extracts serially. Extraction
	// output is independent of the setting: the per-function result depends
	// only on the function and the unit, never on scheduling.
	Workers int
	// Seed provides pre-extracted results replayed from the incremental memo
	// (internal/incr): checkers.NewContext fills a seeded function's slot
	// from here instead of extracting it. Seeded entries must be exactly
	// what Extract would produce for the same unit — the memo's fingerprint
	// keys guarantee that. The Extractor itself ignores Seed.
	Seed map[string]*FuncPaths
	// Precision selects the feasibility tier (internal/feas): Fast (the zero
	// value) walks exactly as before the layer existed; Balanced prunes path
	// continuations whose accumulated branch conditions are interval- or
	// disequality-contradictory; Strict adds cross-condition equality
	// unification under a per-function step budget. Pruning only ever
	// removes paths no real execution can take, and the walk stays
	// single-goroutine per function, so output per tier is deterministic at
	// any Workers setting.
	Precision feas.Tier
}

// DefaultConfig mirrors the paper's bounded exploration.
func DefaultConfig() Config {
	return Config{MaxPaths: 512, MaxBlockVisits: 2, InlineDepth: 2}
}

// Extractor extracts paths for functions of one translation unit. It is safe
// for concurrent use: the CFG and summary caches are guarded, so one
// extractor can fan per-function extraction out across a worker pool (see
// Config.Workers) or be shared by concurrent callers.
type Extractor struct {
	tu  *cast.TranslationUnit
	cfg Config
	// mu guards sums and graphs. Cache values are built outside the lock
	// (duplicate builds are possible and discarded first-wins; builds are
	// pure functions of the immutable TU, so every duplicate is identical),
	// except summaries, which are built under a per-name once so no caller
	// can ever observe a half-built summary (see summary.go).
	mu     sync.Mutex
	sums   map[string]*sumEntry
	graphs map[string]*cfg.Graph
	// Feasibility tallies, accumulated atomically across Extract calls (the
	// per-function walks may run on concurrent workers).
	feasPruned atomic.Int64
	feasContra atomic.Int64
}

// FeasStats reports the extractor's cumulative feasibility activity.
type FeasStats struct {
	// Pruned counts path continuations discarded because their accumulated
	// branch conditions were contradictory — a lower bound on the paths
	// avoided, since one discarded edge can hide a whole subtree.
	Pruned int64
	// Contradictions counts contradictory condition accumulations detected.
	Contradictions int64
}

// FeasStats returns the feasibility tallies of every Extract so far.
func (ex *Extractor) FeasStats() FeasStats {
	return FeasStats{Pruned: ex.feasPruned.Load(), Contradictions: ex.feasContra.Load()}
}

// NewExtractor returns an extractor over tu.
func NewExtractor(tu *cast.TranslationUnit, c Config) *Extractor {
	if c.MaxPaths <= 0 {
		c.MaxPaths = 512
	}
	if c.MaxBlockVisits <= 0 {
		c.MaxBlockVisits = 2
	}
	return &Extractor{tu: tu, cfg: c, sums: map[string]*sumEntry{}, graphs: map[string]*cfg.Graph{}}
}

// TU returns the translation unit being analyzed.
func (ex *Extractor) TU() *cast.TranslationUnit { return ex.tu }

func (ex *Extractor) graph(name string) (*cfg.Graph, error) {
	ex.mu.Lock()
	g, ok := ex.graphs[name]
	ex.mu.Unlock()
	if ok {
		return g, nil
	}
	fn := ex.tu.Func(name)
	if fn == nil {
		return nil, fmt.Errorf("paths: no function %q", name)
	}
	g, err := cfg.Build(fn)
	if err != nil {
		return nil, err
	}
	ex.mu.Lock()
	if prev, ok := ex.graphs[name]; ok {
		g = prev // another worker built it first; keep one canonical graph
	} else {
		ex.graphs[name] = g
	}
	ex.mu.Unlock()
	return g, nil
}

// Signature renders a function header as "name(p1, p2, ...)".
func Signature(fn *cast.FuncDecl) string {
	parts := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		if p.Name != "" {
			parts[i] = p.Name
		} else {
			parts[i] = p.Type.String()
		}
	}
	return fn.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Extract enumerates the execution paths of the named function.
func (ex *Extractor) Extract(name string) (*FuncPaths, error) {
	g, err := ex.graph(name)
	if err != nil {
		return nil, err
	}
	fp := &FuncPaths{Fn: name, Signature: Signature(g.Fn)}
	st := &walkState{ex: ex, g: g, fp: fp}
	env := sym.NewEnv()
	for _, p := range g.Fn.Params {
		if p.Name != "" {
			env.Set(p.Name, sym.NewSym(p.Name))
		}
	}
	for _, v := range ex.tu.Globals() {
		env.Set(v.Name, sym.NewSym(v.Name))
	}
	// Feasibility state rides alongside the environment; nil in the Fast
	// tier, where the walk must stay byte-identical to the pre-layer
	// behavior. Strict's step budget is per function (walk is one
	// goroutine), so its pruning decisions are deterministic too.
	fs := feas.New(ex.cfg.Precision, nil)
	st.walk(g.Entry, env, fs, &pathBuild{visits: map[int]int{}})
	for i, p := range fp.Paths {
		p.Index = i
	}
	if fp.Pruned > 0 || fs.Contradictions() > 0 {
		ex.feasPruned.Add(int64(fp.Pruned))
		ex.feasContra.Add(fs.Contradictions())
		metrics.Default.Counter(metrics.MetricFeasPathsPruned, metrics.HelpFeasPathsPruned).Add(int64(fp.Pruned))
		metrics.Default.Counter(metrics.MetricFeasContradictions, metrics.HelpFeasContradictions).Add(fs.Contradictions())
	}
	return fp, nil
}

// ExtractAll extracts paths for every function with a body, sorted by name.
func (ex *Extractor) ExtractAll() ([]*FuncPaths, error) {
	fns := ex.tu.Funcs()
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })
	out := make([]*FuncPaths, 0, len(fns))
	for _, fn := range fns {
		fp, err := ex.Extract(fn.Name)
		if err != nil {
			return out, err
		}
		out = append(out, fp)
	}
	return out, nil
}

// pathBuild accumulates one path during the DFS.
type pathBuild struct {
	blocks []int
	conds  []Condition
	states []StateUpdate
	calls  []CallRecord
	visits map[int]int
	tempN  int
}

func (pb *pathBuild) clone() *pathBuild {
	c := &pathBuild{
		blocks: append([]int(nil), pb.blocks...),
		conds:  append([]Condition(nil), pb.conds...),
		states: append([]StateUpdate(nil), pb.states...),
		calls:  append([]CallRecord(nil), pb.calls...),
		visits: make(map[int]int, len(pb.visits)),
		tempN:  pb.tempN,
	}
	for k, v := range pb.visits {
		c.visits[k] = v
	}
	return c
}

type walkState struct {
	ex *Extractor
	g  *cfg.Graph
	fp *FuncPaths
}

func (st *walkState) walk(b *cfg.Block, env *sym.Env, fs *feas.State, pb *pathBuild) {
	if st.fp.Truncated {
		// Already degraded (budget exhaustion or the path cap); never clear
		// the flag — a budget-truncated function with room left under
		// MaxPaths must still report as truncated.
		return
	}
	if len(st.fp.Paths) >= st.ex.cfg.MaxPaths {
		st.fp.Truncated = true
		return
	}
	if st.ex.cfg.Budget.Step() != nil {
		// Budget exhausted (deadline, steps, or cancellation): keep whatever
		// paths we already have and mark the function truncated. The caller
		// surfaces the degradation via Budget.Err.
		st.fp.Truncated = true
		return
	}
	if pb.visits[b.ID] >= st.ex.cfg.MaxBlockVisits {
		return // loop bound reached; abandon this continuation
	}
	pb.visits[b.ID]++
	pb.blocks = append(pb.blocks, b.ID)

	ev := &evaluator{st: st, env: env, pb: pb}
	var ret *cast.ReturnStmt
	for _, s := range b.Stmts {
		ev.stmt(s)
		if r, ok := s.(*cast.ReturnStmt); ok {
			ret = r
		}
	}

	if b == st.g.Exit || ret != nil {
		st.emit(env, pb, ret)
		return
	}
	if len(b.Succs) == 0 {
		st.emit(env, pb, nil)
		return
	}

	if b.Cond == nil {
		// Unconditional: single successor expected.
		st.walk(b.Succs[0].To, env, fs, pb)
		return
	}

	condText := cast.ExprString(b.Cond)
	symv := ev.eval(b.Cond)
	vars := cast.Idents(b.Cond)
	fields := fieldPaths(b.Cond)
	line := b.Cond.Pos().Line

	// Disequality refutation: a symbolic equality over an excluded value has
	// a known outcome even though the operand itself is unbound.
	known, knownVal := refuteByExclusion(env, b.Cond)

	for _, e := range b.Succs {
		outcome := e.Kind.String()
		if e.Kind == cfg.Case {
			outcome = "case " + e.Label
		}
		// Concrete condition pruning: when the condition folds to a constant,
		// only the matching boolean edge is feasible.
		if n, ok := symv.ConcreteInt(); ok && (e.Kind == cfg.True || e.Kind == cfg.False) {
			if (n != 0) != (e.Kind == cfg.True) {
				continue
			}
		}
		if known && (e.Kind == cfg.True || e.Kind == cfg.False) {
			if knownVal != (e.Kind == cfg.True) {
				continue
			}
		}
		branchEnv := env.Clone()
		branchFS := fs.Clone()
		// Branch refinement: boolean edges learn the condition's truth
		// value, Case edges bind the switch tag to the matched label, and
		// Default edges learn that the tag matches no label.
		switch e.Kind {
		case cfg.True, cfg.False:
			taken := e.Kind == cfg.True
			refineEnv(branchEnv, b.Cond, taken)
			branchFS.Assert(symv, taken)
		case cfg.Case:
			refineCaseEnv(branchEnv, b.Cond, e.Label)
			if n, ok := caseLabelInt(e.Label); ok {
				branchFS.Assert(sym.NewExpr("==", symv, sym.NewInt(n)), true)
			}
		case cfg.Default:
			refineDefaultEnv(branchEnv, b.Cond, b.Succs)
			for _, sib := range b.Succs {
				if sib.Kind != cfg.Case {
					continue
				}
				if n, ok := caseLabelInt(sib.Label); ok {
					branchFS.Assert(sym.NewExpr("!=", symv, sym.NewInt(n)), true)
				}
			}
		}
		// Feasibility pruning runs after the concrete and exclusion prunes
		// above, so it only ever discards continuations the Fast tier would
		// still have walked; with a nil state (Fast) nothing is ever pruned.
		if branchFS.Contradiction() {
			st.fp.Pruned++
			continue
		}
		branchPB := pb.clone()
		branchPB.conds = append(branchPB.conds, Condition{
			Expr: condText, Sym: symv.String(), Outcome: outcome,
			Vars: vars, Fields: fields, Line: line,
		})
		st.walk(e.To, branchEnv, branchFS, branchPB)
	}
}

// refineEnv narrows the symbolic environment with what a taken branch
// implies, so later conditions over the same variable fold concretely and
// infeasible continuations are pruned. Only equalities, disequalities and
// plain truthiness are learned — sound and cheap:
//
//	if (x == K) taken      →  x = K
//	if (x != K) not taken  →  x = K
//	if (x) not taken       →  x = 0
//	if (x) taken           →  x ≠ 0 (recorded via Exclude)
//	if (!x) taken          →  x = 0
//
// Conjunctions distribute on the true edge (a && b true implies both), and
// disjunctions distribute on the false edge (a || b false refutes both).
func refineEnv(env *sym.Env, cond cast.Expr, taken bool) {
	switch x := cond.(type) {
	case *cast.IdentExpr:
		if taken {
			// The taken edge of a truthiness branch proves x ≠ 0, so a later
			// `if (x == 0)` inside the branch is refuted by exclusion.
			env.Exclude(x.Name, 0)
		} else {
			env.Set(x.Name, sym.NewInt(0))
		}
	case *cast.UnaryExpr:
		if x.Op == ctok.Not {
			refineEnv(env, x.X, !taken)
		}
	case *cast.BinaryExpr:
		switch x.Op {
		case ctok.EqEq, ctok.NotEq:
			id, c := equalityOperands(x)
			if id == "" {
				return
			}
			if taken == (x.Op == ctok.EqEq) {
				env.Set(id, sym.NewInt(c))
			} else {
				env.Exclude(id, c)
			}
		case ctok.AndAnd:
			if taken {
				refineEnv(env, x.L, true)
				refineEnv(env, x.R, true)
			}
		case ctok.OrOr:
			if !taken {
				refineEnv(env, x.L, false)
				refineEnv(env, x.R, false)
			}
		}
	}
}

func (st *walkState) emit(env *sym.Env, pb *pathBuild, ret *cast.ReturnStmt) {
	if len(st.fp.Paths) >= st.ex.cfg.MaxPaths {
		st.fp.Truncated = true
		return
	}
	p := &ExecPath{
		Fn:        st.fp.Fn,
		Signature: st.fp.Signature,
		Blocks:    pb.blocks,
		Conds:     pb.conds,
		States:    pb.states,
		Calls:     pb.calls,
	}
	out := &Output{Void: true}
	if ret != nil {
		out.Line = ret.P.Line
		if ret.X != nil {
			ev := &evaluator{st: st, env: env, pb: pb}
			out.Void = false
			out.Expr = cast.ExprString(ret.X)
			out.Sym = ev.evalNoEffects(ret.X).String()
		}
	}
	p.Out = out
	markChecked(p)
	st.fp.Paths = append(st.fp.Paths, p)
}

// refineCaseEnv binds a switch tag to the matched case label when both are
// simple (an identifier tag and an integer or enum-like label).
func refineCaseEnv(env *sym.Env, tag cast.Expr, label string) {
	id, ok := tag.(*cast.IdentExpr)
	if !ok {
		return
	}
	n, ok := caseLabelInt(label)
	if !ok {
		return // enum-named labels would need the TU; leave symbolic
	}
	env.Set(id.Name, sym.NewInt(n))
}

// refineDefaultEnv records, on a switch default edge, that the tag equals
// none of the sibling case labels, so a later `if (tag == CASE_K)` under
// default is refuted by exclusion.
func refineDefaultEnv(env *sym.Env, tag cast.Expr, succs []cfg.Edge) {
	id, ok := tag.(*cast.IdentExpr)
	if !ok {
		return
	}
	for _, e := range succs {
		if e.Kind != cfg.Case {
			continue
		}
		if n, ok := caseLabelInt(e.Label); ok {
			env.Exclude(id.Name, n)
		}
	}
}

// caseLabelInt parses a case label's rendered text as an integer (decimal,
// hex or octal, as ExprString renders literal labels).
func caseLabelInt(label string) (int64, bool) {
	n, err := strconv.ParseInt(label, 0, 64)
	return n, err == nil
}

// intConst extracts the value of a constant comparison operand: integer
// literals, single-byte character constants, and unary minus over either —
// so `x == -1` and `-1 == x` refine identically.
func intConst(e cast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntExpr:
		return x.Value, true
	case *cast.CharExpr:
		if len(x.Value) == 1 {
			return int64(x.Value[0]), true
		}
	case *cast.UnaryExpr:
		if x.Op == ctok.Minus {
			if n, ok := intConst(x.X); ok {
				return -n, true
			}
		}
	}
	return 0, false
}

// equalityOperands extracts (ident, constant) from `x == K` / `K == x`
// shaped comparisons; returns "" when the shape does not match. The shapes
// are checked in both operand orders, so refinement is order-independent.
func equalityOperands(x *cast.BinaryExpr) (string, int64) {
	if id, ok := x.L.(*cast.IdentExpr); ok {
		if c, ok2 := intConst(x.R); ok2 {
			return id.Name, c
		}
	}
	if id, ok := x.R.(*cast.IdentExpr); ok {
		if c, ok2 := intConst(x.L); ok2 {
			return id.Name, c
		}
	}
	return "", 0
}

// refuteByExclusion decides a symbolic equality condition using recorded
// disequalities: `x == K` with x≠K known is false; `x != K` is true.
func refuteByExclusion(env *sym.Env, cond cast.Expr) (known bool, value bool) {
	x, ok := cond.(*cast.BinaryExpr)
	if !ok {
		return false, false
	}
	if x.Op != ctok.EqEq && x.Op != ctok.NotEq {
		return false, false
	}
	id, c := equalityOperands(x)
	if id == "" || !env.Excluded(id, c) {
		return false, false
	}
	// Exclusions only apply while the variable is still symbolic; a concrete
	// rebinding would have cleared them via Set.
	return true, x.Op == ctok.NotEq
}

// markChecked sets CallRecord.ResultChecked for calls whose receiving lvalue
// or call expression is referenced by a later condition on the path.
func markChecked(p *ExecPath) {
	for i := range p.Calls {
		c := &p.Calls[i]
		for _, cond := range p.Conds {
			if strings.Contains(cond.Expr, c.Name+"(") {
				c.ResultChecked = true
				break
			}
			if c.AssignedTo != "" {
				for _, v := range cond.Vars {
					if v == c.AssignedTo {
						c.ResultChecked = true
					}
				}
				for _, f := range cond.Fields {
					if f == c.AssignedTo {
						c.ResultChecked = true
					}
				}
			}
			if c.ResultChecked {
				break
			}
		}
	}
}

// fieldPaths collects canonical member-access paths in an expression.
func fieldPaths(e cast.Expr) []string {
	var out []string
	seen := map[string]bool{}
	cast.Walk(e, func(n cast.Node) bool {
		if m, ok := n.(*cast.MemberExpr); ok {
			s := cast.ExprString(m)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// Symbolic statement/expression evaluation
// ---------------------------------------------------------------------------

type evaluator struct {
	st  *walkState
	env *sym.Env
	pb  *pathBuild
	// silent suppresses effect recording (used for return-expression
	// re-evaluation where effects were already recorded).
	silent bool
}

func (ev *evaluator) stmt(s cast.Stmt) {
	switch x := s.(type) {
	case *cast.DeclStmt:
		var v *sym.Value
		if x.Init != nil {
			v = ev.eval(x.Init)
			ev.bindCallResult(x.Init, x.Name)
		} else {
			v = sym.NewSym(x.Name)
		}
		ev.env.Set(x.Name, v)
		ev.record(StateUpdate{Target: x.Name, Root: x.Name, Value: v.String(), Kind: Decl, Line: x.P.Line})
	case *cast.ExprStmt:
		before := len(ev.pb.calls)
		ev.eval(x.X)
		// A call used directly as a statement discards its result.
		if c, ok := stripCasts(x.X).(*cast.CallExpr); ok && len(ev.pb.calls) > before {
			last := &ev.pb.calls[len(ev.pb.calls)-1]
			if name, ok2 := c.Fun.(*cast.IdentExpr); ok2 && last.Name == name.Name {
				last.ResultUsed = false
			}
		}
	case *cast.ReturnStmt:
		if x.X != nil {
			ev.eval(x.X)
		}
	case *cast.CompoundStmt:
		for _, sub := range x.Stmts {
			ev.stmt(sub)
		}
	}
}

func (ev *evaluator) record(u StateUpdate) {
	if ev.silent {
		return
	}
	ev.pb.states = append(ev.pb.states, u)
}

func (ev *evaluator) recordCall(c CallRecord) {
	if ev.silent {
		return
	}
	ev.pb.calls = append(ev.pb.calls, c)
}

func (ev *evaluator) fresh() *sym.Value {
	ev.pb.tempN++
	return sym.NewTemp(ev.pb.tempN)
}

// evalNoEffects evaluates without recording state updates or calls.
func (ev *evaluator) evalNoEffects(e cast.Expr) *sym.Value {
	sub := &evaluator{st: ev.st, env: ev.env, pb: ev.pb, silent: true}
	return sub.eval(e)
}

func (ev *evaluator) eval(e cast.Expr) *sym.Value {
	switch x := e.(type) {
	case nil:
		return sym.NewSym("void")
	case *cast.IdentExpr:
		if v := ev.env.Get(x.Name); v != nil {
			return v
		}
		if v, ok := ev.st.ex.tu.EnumValue(x.Name); ok {
			return sym.NewInt(v)
		}
		return sym.NewSym(x.Name)
	case *cast.IntExpr:
		return sym.NewInt(x.Value)
	case *cast.FloatExpr:
		return sym.NewSym("float:" + x.Text)
	case *cast.StrExpr:
		return sym.NewStr(x.Value)
	case *cast.CharExpr:
		if len(x.Value) == 1 {
			return sym.NewInt(int64(x.Value[0]))
		}
		return sym.NewSym("char:" + x.Value)
	case *cast.AssignExpr:
		return ev.assign(x)
	case *cast.BinaryExpr:
		l := ev.eval(x.L)
		r := ev.eval(x.R)
		return sym.NewExpr(x.Op.String(), l, r)
	case *cast.UnaryExpr:
		switch x.Op {
		case ctok.Inc, ctok.Dec:
			return ev.incdec(x.X, x.Op, x.Pos())
		case ctok.KwSizeof:
			return sym.NewExpr("sizeof", ev.evalNoEffects(x.X))
		case ctok.Amp:
			return sym.NewExpr("&", ev.evalNoEffects(x.X))
		case ctok.Star:
			return sym.NewExpr("*", ev.eval(x.X))
		default:
			return sym.NewExpr(x.Op.String(), ev.eval(x.X))
		}
	case *cast.PostfixExpr:
		return ev.incdec(x.X, x.Op, x.Pos())
	case *cast.CondExpr:
		c := ev.eval(x.Cond)
		if n, ok := c.ConcreteInt(); ok {
			if n != 0 {
				return ev.eval(x.Then)
			}
			return ev.eval(x.Else)
		}
		t := ev.eval(x.Then)
		f := ev.eval(x.Else)
		return sym.NewExpr("?:", c, t, f)
	case *cast.CallExpr:
		return ev.call(x)
	case *cast.MemberExpr:
		path := cast.ExprString(x)
		if v := ev.env.Get(path); v != nil {
			return v
		}
		base := ev.evalNoEffects(x.X)
		op := "."
		if x.Arrow {
			op = "->"
		}
		return sym.NewExpr(op, base, sym.NewSym(x.Field))
	case *cast.IndexExpr:
		base := ev.eval(x.X)
		idx := ev.eval(x.Index)
		return sym.NewExpr("[]", base, idx)
	case *cast.CastExpr:
		return ev.eval(x.X)
	case *cast.SizeofTypeExpr:
		return sym.NewInt(int64(x.Type.SizeOf()))
	case *cast.CommaExpr:
		ev.eval(x.L)
		return ev.eval(x.R)
	case *cast.InitListExpr:
		for _, el := range x.Elems {
			ev.eval(el)
		}
		return ev.fresh()
	}
	return ev.fresh()
}

func (ev *evaluator) assign(x *cast.AssignExpr) *sym.Value {
	rhs := ev.eval(x.R)
	if x.Op != ctok.Assign {
		// compound: a += b ⇒ a = a op b
		cur := ev.evalNoEffects(x.L)
		op := strings.TrimSuffix(x.Op.String(), "=")
		rhs = sym.NewExpr(op, cur, rhs)
	}
	target := cast.ExprString(x.L)
	root := cast.RootIdent(x.L)
	ev.bindCallResult(x.R, target)
	ev.env.Set(target, rhs)
	// Writing through the whole variable invalidates field bindings.
	if _, isIdent := x.L.(*cast.IdentExpr); isIdent {
		for _, n := range ev.env.Names() {
			if strings.HasPrefix(n, target+"->") || strings.HasPrefix(n, target+".") {
				ev.env.Delete(n)
			}
		}
	}
	ev.record(StateUpdate{Target: target, Root: root, Value: rhs.String(), Kind: Assign, Line: x.P.Line})
	return rhs
}

// stripCasts unwraps cast expressions.
func stripCasts(e cast.Expr) cast.Expr {
	for {
		if c, ok := e.(*cast.CastExpr); ok {
			e = c.X
			continue
		}
		return e
	}
}

// bindCallResult marks the most recent call record as assigned to target when
// rhs is (after casts) a direct call expression.
func (ev *evaluator) bindCallResult(rhs cast.Expr, target string) {
	if ev.silent || len(ev.pb.calls) == 0 {
		return
	}
	c, ok := stripCasts(rhs).(*cast.CallExpr)
	if !ok {
		return
	}
	name, ok := c.Fun.(*cast.IdentExpr)
	if !ok {
		return
	}
	last := &ev.pb.calls[len(ev.pb.calls)-1]
	if last.Name == name.Name && last.AssignedTo == "" {
		last.AssignedTo = target
		last.ResultUsed = true
	}
}

func (ev *evaluator) incdec(l cast.Expr, op ctok.Kind, pos ctok.Pos) *sym.Value {
	cur := ev.evalNoEffects(l)
	delta := sym.NewInt(1)
	var next *sym.Value
	if op == ctok.Inc {
		next = sym.NewExpr("+", cur, delta)
	} else {
		next = sym.NewExpr("-", cur, delta)
	}
	target := cast.ExprString(l)
	ev.env.Set(target, next)
	ev.record(StateUpdate{Target: target, Root: cast.RootIdent(l), Value: next.String(), Kind: IncDec, Line: pos.Line})
	return cur
}

func (ev *evaluator) call(x *cast.CallExpr) *sym.Value {
	name := ""
	if id, ok := x.Fun.(*cast.IdentExpr); ok {
		name = id.Name
	} else {
		name = cast.ExprString(x.Fun)
	}
	args := make([]string, len(x.Args))
	argVals := make([]*sym.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = cast.ExprString(a)
		argVals[i] = ev.eval(a)
	}
	rec := CallRecord{Name: name, Args: args, Line: x.P.Line, ResultUsed: true}

	// Apply a callee summary when available.
	var result *sym.Value
	if !ev.silent && ev.st.ex.cfg.InlineDepth > 0 {
		if sum := ev.st.ex.summary(name, ev.st.ex.cfg.InlineDepth); sum != nil {
			rec.Inlined = true
			ev.applySummary(sum, x, argVals)
		}
	}
	if result == nil {
		result = sym.NewExpr(name, argVals...)
	}
	ev.recordCall(rec)
	return result
}

// applySummary instantiates a callee summary at a call site: effects on
// global variables and on fields reached through pointer arguments are
// replayed into the caller's path, tagged with the callee name.
func (ev *evaluator) applySummary(sum *Summary, call *cast.CallExpr, argVals []*sym.Value) {
	rename := func(target string) (string, bool) {
		// Effects on globals keep their name; effects rooted at a parameter
		// are rewritten in terms of the actual argument expression.
		root := target
		rest := ""
		for i := 0; i < len(target); i++ {
			if target[i] == '-' || target[i] == '.' {
				root = target[:i]
				rest = target[i:]
				break
			}
		}
		for pi, pn := range sum.ParamNames {
			if pn == root {
				if pi < len(call.Args) {
					base := cast.ExprString(call.Args[pi])
					return base + rest, true
				}
				return "", false
			}
		}
		if sum.Globals[root] {
			return target, true
		}
		return "", false
	}
	for _, eff := range sum.Effects {
		t, ok := rename(eff.Target)
		if !ok {
			continue
		}
		root := t
		for i := 0; i < len(t); i++ {
			if t[i] == '-' || t[i] == '.' || t[i] == '[' {
				root = t[:i]
				break
			}
		}
		v := ev.fresh()
		ev.env.Set(t, v)
		ev.record(StateUpdate{Target: t, Root: root, Value: eff.Value, Kind: CallEffect, Line: call.P.Line, Callee: sum.Name})
	}
	for _, cc := range sum.Conds {
		t, ok := rename(cc.Target)
		if !ok {
			continue
		}
		ev.pb.conds = append(ev.pb.conds, Condition{
			Expr: cc.Expr, Sym: "(S#" + t + ")", Outcome: "callee",
			Vars: []string{t}, Line: call.P.Line, FromCallee: sum.Name,
		})
	}
	for _, callee := range sum.Calls {
		ev.recordCall(CallRecord{Name: callee, Line: call.P.Line, Inlined: true, FromCallee: sum.Name})
	}
}
