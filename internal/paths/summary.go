package paths

import (
	"sort"
	"sync"

	"pallas/internal/cast"
	"pallas/internal/ctok"
)

// Summary captures the externally visible behaviour of a callee so call
// sites can replay it without multiplying path counts — the extractor's
// answer to "inlines a limited number of callee functions to prevent the
// path explosion problem".
type Summary struct {
	Name       string
	ParamNames []string
	// Globals are the global variables the function touches.
	Globals map[string]bool
	// Effects are writes whose target roots are parameters or globals.
	Effects []SummaryEffect
	// Conds are branch conditions over parameters or globals.
	Conds []SummaryCond
	// Calls are the names of functions invoked transitively (one level).
	Calls []string
	// Returns are the rendered return expressions.
	Returns []string
}

// SummaryEffect is one externally visible write.
type SummaryEffect struct {
	Target string // canonical lvalue in callee terms ("cmd->state", "total_pages")
	Value  string // rendered RHS
	Line   int
}

// SummaryCond is one externally visible condition test.
type SummaryCond struct {
	Target string // the parameter/global tested
	Expr   string // condition source text
	Line   int
}

// sumEntry is one slot of the extractor's summary cache. The once makes the
// build synchronous for every concurrent caller of the same name: nobody can
// observe an in-progress build, so whether a summary is applied at a call
// site depends only on the translation unit, never on worker scheduling.
// (buildSummary never calls summary, so running it inside the once cannot
// deadlock on a recursive lookup.)
type sumEntry struct {
	once sync.Once
	s    *Summary
}

// summary returns (and caches) the summary for fn, or nil when the function
// is unknown or depth is exhausted. Safe for concurrent use; distinct names
// build in parallel, one build per name.
func (ex *Extractor) summary(name string, depth int) *Summary {
	if depth <= 0 {
		return nil
	}
	ex.mu.Lock()
	e, ok := ex.sums[name]
	if !ok {
		e = &sumEntry{}
		ex.sums[name] = e
	}
	ex.mu.Unlock()
	e.once.Do(func() {
		if fn := ex.tu.Func(name); fn != nil {
			e.s = ex.buildSummary(fn)
		}
	})
	return e.s
}

// BuildSummary computes a fresh summary for fn (exported for tests and the
// diff tool).
func (ex *Extractor) BuildSummary(fn *cast.FuncDecl) *Summary {
	return ex.buildSummary(fn)
}

func (ex *Extractor) buildSummary(fn *cast.FuncDecl) *Summary {
	s := &Summary{Name: fn.Name, Globals: map[string]bool{}}
	params := map[string]bool{}
	for _, p := range fn.Params {
		s.ParamNames = append(s.ParamNames, p.Name)
		params[p.Name] = true
	}
	globals := map[string]bool{}
	for _, g := range ex.tu.Globals() {
		globals[g.Name] = true
	}
	locals := map[string]bool{}
	cast.Walk(fn.Body, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			locals[d.Name] = true
		}
		return true
	})
	external := func(root string) bool {
		if root == "" || locals[root] {
			return false
		}
		return params[root] || globals[root]
	}

	cast.Walk(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.AssignExpr:
			root := cast.RootIdent(x.L)
			// Direct global write, or a write through a pointer parameter
			// (param->field); plain reassignment of a by-value parameter is
			// not externally visible, so require a member/index/deref form
			// unless the root is a global.
			isMemberish := false
			switch x.L.(type) {
			case *cast.MemberExpr, *cast.IndexExpr:
				isMemberish = true
			case *cast.UnaryExpr:
				isMemberish = true // *p = ...
			}
			if external(root) && (globals[root] || isMemberish) {
				s.Effects = append(s.Effects, SummaryEffect{
					Target: cast.ExprString(x.L),
					Value:  cast.ExprString(x.R),
					Line:   x.P.Line,
				})
			}
		case *cast.IfStmt:
			recordCond(s, x.Cond, external)
		case *cast.WhileStmt:
			recordCond(s, x.Cond, external)
		case *cast.DoWhileStmt:
			recordCond(s, x.Cond, external)
		case *cast.SwitchStmt:
			recordCond(s, x.Tag, external)
		case *cast.CallExpr:
			if id, ok := x.Fun.(*cast.IdentExpr); ok {
				s.Calls = append(s.Calls, id.Name)
			}
		case *cast.ReturnStmt:
			if x.X != nil {
				s.Returns = append(s.Returns, cast.ExprString(x.X))
			} else {
				s.Returns = append(s.Returns, "")
			}
		}
		return true
	})
	sort.Strings(s.Calls)
	s.Calls = dedup(s.Calls)
	for g := range globals {
		if cast.UsesIdent(fn.Body, g) {
			s.Globals[g] = true
		}
	}
	return s
}

func recordCond(s *Summary, cond cast.Expr, external func(string) bool) {
	if cond == nil {
		return
	}
	for _, v := range cast.Idents(cond) {
		if external(v) {
			s.Conds = append(s.Conds, SummaryCond{Target: v, Expr: cast.ExprString(cond), Line: cond.Pos().Line})
		}
	}
}

func dedup(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// ReturnConstants extracts the concrete integer return values of fn (used by
// the path-output checker for cross-checking fast and slow returns).
func ReturnConstants(tu *cast.TranslationUnit, fn *cast.FuncDecl) []int64 {
	var out []int64
	seen := map[int64]bool{}
	cast.Walk(fn.Body, func(n cast.Node) bool {
		r, ok := n.(*cast.ReturnStmt)
		if !ok || r.X == nil {
			return true
		}
		if v, ok := constValue(tu, r.X); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func constValue(tu *cast.TranslationUnit, e cast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntExpr:
		return x.Value, true
	case *cast.IdentExpr:
		return tu.EnumValue(x.Name)
	case *cast.UnaryExpr:
		if v, ok := constValue(tu, x.X); ok {
			switch x.Op {
			case ctok.Minus:
				return -v, true
			case ctok.Tilde:
				return ^v, true
			case ctok.Not:
				if v == 0 {
					return 1, true
				}
				return 0, true
			case ctok.Plus:
				return v, true
			}
		}
	case *cast.CastExpr:
		return constValue(tu, x.X)
	}
	return 0, false
}
