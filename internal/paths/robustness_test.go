package paths

import (
	"testing"

	"pallas/internal/corpus"
	"pallas/internal/cparse"
)

// TestExtractionInvariantsOverCorpus runs path extraction over every corpus
// case and showcase source and asserts structural invariants of every path:
// an output record exists, traversed blocks are recorded, condition outcomes
// are well-formed, and extraction is deterministic.
func TestExtractionInvariantsOverCorpus(t *testing.T) {
	sources := map[string]string{}
	for _, c := range corpus.Generate().Cases {
		sources[c.ID] = c.Source
	}
	for _, sc := range corpus.Showcases() {
		sources["showcase/"+sc.ID] = sc.Source
	}
	for id, src := range sources {
		tu, err := cparse.Parse(id+".c", src)
		if err != nil {
			t.Fatalf("%s: parse: %v", id, err)
		}
		ex := NewExtractor(tu, DefaultConfig())
		all, err := ex.ExtractAll()
		if err != nil {
			t.Fatalf("%s: extract: %v", id, err)
		}
		for _, fp := range all {
			if len(fp.Paths) == 0 && !fp.Truncated {
				t.Errorf("%s/%s: zero paths", id, fp.Fn)
			}
			for _, p := range fp.Paths {
				if p.Out == nil {
					t.Errorf("%s/%s path %d: nil output", id, fp.Fn, p.Index)
				}
				if len(p.Blocks) == 0 {
					t.Errorf("%s/%s path %d: no blocks", id, fp.Fn, p.Index)
				}
				for _, c := range p.Conds {
					switch {
					case c.Outcome == "true", c.Outcome == "false",
						c.Outcome == "default", c.Outcome == "callee":
					default:
						if len(c.Outcome) < 5 || c.Outcome[:4] != "case" {
							t.Errorf("%s/%s path %d: bad outcome %q", id, fp.Fn, p.Index, c.Outcome)
						}
					}
					if c.Expr == "" {
						t.Errorf("%s/%s path %d: empty condition", id, fp.Fn, p.Index)
					}
				}
				for _, s := range p.States {
					if s.Target == "" || s.Value == "" {
						t.Errorf("%s/%s path %d: empty state update %+v", id, fp.Fn, p.Index, s)
					}
				}
			}
		}
		// Determinism: a second extraction yields identical path counts and
		// signatures.
		ex2 := NewExtractor(tu, DefaultConfig())
		all2, err := ex2.ExtractAll()
		if err != nil {
			t.Fatalf("%s: re-extract: %v", id, err)
		}
		if len(all) != len(all2) {
			t.Fatalf("%s: nondeterministic function count", id)
		}
		for i := range all {
			if all[i].Fn != all2[i].Fn || len(all[i].Paths) != len(all2[i].Paths) {
				t.Errorf("%s: nondeterministic extraction for %s", id, all[i].Fn)
			}
		}
	}
}

// TestPathStringRendering smoke-tests the Table-5 renderer on a rich path.
func TestPathStringRendering(t *testing.T) {
	sc := corpus.ShowcaseByID("table5")
	tu, err := cparse.Parse("t5.c", sc.Source)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExtractor(tu, DefaultConfig())
	fp, err := ex.Extract(sc.FastFunc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fp.Paths {
		s := p.String()
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
}
