package paths

import (
	"strings"
	"testing"

	"pallas/internal/cparse"
)

func extract(t *testing.T, src, fn string) *FuncPaths {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ex := NewExtractor(tu, DefaultConfig())
	fp, err := ex.Extract(fn)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return fp
}

func TestTwoPathsFromIf(t *testing.T) {
	fp := extract(t, `
int f(int a) {
	int r = 0;
	if (a > 0)
		r = 1;
	else
		r = 2;
	return r;
}`, "f")
	if len(fp.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(fp.Paths))
	}
	// Each path returns a concrete integer after symbolic propagation.
	got := map[string]bool{}
	for _, p := range fp.Paths {
		if p.Out == nil || p.Out.Void {
			t.Fatalf("path has no output: %s", p)
		}
		got[p.Out.Sym] = true
	}
	if !got["(I#1)"] || !got["(I#2)"] {
		t.Fatalf("outputs = %v, want I#1 and I#2", got)
	}
}

func TestConditionRecorded(t *testing.T) {
	fp := extract(t, `
int g(int order) {
	if (order == 0)
		return 100;
	return 200;
}`, "g")
	if len(fp.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(fp.Paths))
	}
	for _, p := range fp.Paths {
		if len(p.Conds) != 1 {
			t.Fatalf("want 1 condition, got %d", len(p.Conds))
		}
		c := p.Conds[0]
		if c.Expr != "order == 0" {
			t.Errorf("cond expr = %q", c.Expr)
		}
		if len(c.Vars) != 1 || c.Vars[0] != "order" {
			t.Errorf("cond vars = %v", c.Vars)
		}
		if c.Outcome != "true" && c.Outcome != "false" {
			t.Errorf("outcome = %q", c.Outcome)
		}
	}
}

func TestStateUpdatesTracked(t *testing.T) {
	fp := extract(t, `
int h(gfp_t gfp_mask) {
	gfp_mask = gfp_mask & 3;
	return gfp_mask;
}`, "h")
	if len(fp.Paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(fp.Paths))
	}
	u, ok := fp.Paths[0].WritesTo("gfp_mask")
	if !ok {
		t.Fatal("write to gfp_mask not recorded")
	}
	if u.Kind != Assign {
		t.Errorf("kind = %v", u.Kind)
	}
	if !strings.Contains(u.Value, "gfp_mask") {
		t.Errorf("value = %q", u.Value)
	}
}

func TestLoopBounded(t *testing.T) {
	fp := extract(t, `
int loop(int n) {
	int s = 0;
	while (s < n)
		s = s + 1;
	return s;
}`, "loop")
	if fp.Truncated {
		t.Fatal("bounded loop must not truncate")
	}
	// 0-iteration and 1-iteration paths.
	if len(fp.Paths) < 1 || len(fp.Paths) > 3 {
		t.Fatalf("unexpected path count %d", len(fp.Paths))
	}
}

func TestMemberAssignment(t *testing.T) {
	fp := extract(t, `
struct page { unsigned long private; };
int set(struct page *page, int migratetype) {
	page->private = migratetype;
	return 0;
}`, "set")
	u, ok := fp.Paths[0].WritesTo("page->private")
	if !ok {
		t.Fatal("field write not recorded")
	}
	if u.Root != "page" {
		t.Errorf("root = %q", u.Root)
	}
	if !strings.Contains(u.Value, "migratetype") {
		t.Errorf("value = %q", u.Value)
	}
}

func TestCallRecordedAndChecked(t *testing.T) {
	fp := extract(t, `
int helper(int a);
int f(int a) {
	int r = helper(a);
	if (r < 0)
		return -1;
	helper(0);
	return r;
}`, "f")
	var found *ExecPath
	for _, p := range fp.Paths {
		if len(p.Calls) == 2 {
			found = p
		}
	}
	if found == nil {
		t.Fatalf("no path with 2 calls; paths: %d", len(fp.Paths))
	}
	first := found.Calls[0]
	if first.Name != "helper" || !first.ResultChecked || first.AssignedTo != "r" {
		t.Errorf("first call = %+v", first)
	}
	second := found.Calls[1]
	if second.ResultChecked {
		t.Errorf("second call should be unchecked: %+v", second)
	}
}

func TestCalleeSummaryEffects(t *testing.T) {
	fp := extract(t, `
struct cmd { int state; };
void reset_state(struct cmd *c) {
	c->state = 0;
}
int f(struct cmd *cmd) {
	reset_state(cmd);
	return cmd->state;
}`, "f")
	p := fp.Paths[0]
	var eff *StateUpdate
	for i := range p.States {
		if p.States[i].Kind == CallEffect {
			eff = &p.States[i]
		}
	}
	if eff == nil {
		t.Fatalf("no call effect recorded; states=%+v", p.States)
	}
	if eff.Target != "cmd->state" || eff.Callee != "reset_state" {
		t.Errorf("effect = %+v", *eff)
	}
}

func TestConcreteBranchPruning(t *testing.T) {
	fp := extract(t, `
int f(void) {
	int debug = 0;
	if (debug)
		return 1;
	return 0;
}`, "f")
	if len(fp.Paths) != 1 {
		t.Fatalf("constant-false branch must be pruned; got %d paths", len(fp.Paths))
	}
	if fp.Paths[0].Out.Sym != "(I#0)" {
		t.Errorf("out = %s", fp.Paths[0].Out.Sym)
	}
}

func TestSwitchPaths(t *testing.T) {
	fp := extract(t, `
int f(int x) {
	switch (x) {
	case 1: return 10;
	case 2: return 20;
	default: return 0;
	}
}`, "f")
	if len(fp.Paths) != 3 {
		t.Fatalf("want 3 paths, got %d", len(fp.Paths))
	}
}

func TestMaxPathsTruncation(t *testing.T) {
	// 12 sequential ifs => 4096 paths; cap at 64.
	var sb strings.Builder
	sb.WriteString("int f(int a) { int r = 0;\n")
	for i := 0; i < 12; i++ {
		sb.WriteString("if (a > ")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(") r += 1;\n")
	}
	sb.WriteString("return r; }\n")
	tu, err := cparse.Parse("t.c", sb.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ex := NewExtractor(tu, Config{MaxPaths: 64, MaxBlockVisits: 2, InlineDepth: 0})
	fp, err := ex.Extract("f")
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Truncated {
		t.Fatal("expected truncation")
	}
	if len(fp.Paths) > 64 {
		t.Fatalf("cap exceeded: %d", len(fp.Paths))
	}
}

func TestReturnConstants(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
enum err { EIO = 5 };
int f(int a) {
	if (a) return -EIO;
	if (a > 2) return 1;
	return 0;
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := ReturnConstants(tu, tu.Func("f"))
	want := []int64{-5, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSignatureRendering(t *testing.T) {
	fp := extract(t, `int f(int a, char *b) { return a; }`, "f")
	if fp.Signature != "f(a, b)" {
		t.Errorf("signature = %q", fp.Signature)
	}
}

// TestBranchRefinementPrunesInfeasible checks that a re-test of the same
// variable after a taken branch folds concretely, eliminating the infeasible
// combination (4 naive paths → 2 feasible ones).
func TestBranchRefinementPrunesInfeasible(t *testing.T) {
	fp := extract(t, `
int f(int order) {
	int r = 0;
	if (order == 0)
		r = 1;
	if (order == 0)
		r = r + 10;
	return r;
}`, "f")
	if len(fp.Paths) != 2 {
		t.Fatalf("want 2 feasible paths, got %d", len(fp.Paths))
	}
	got := map[string]bool{}
	for _, p := range fp.Paths {
		got[p.Out.Sym] = true
	}
	if !got["(I#11)"] || !got["(I#0)"] {
		t.Fatalf("outputs = %v, want I#11 and I#0", got)
	}
}

func TestRefinementTruthiness(t *testing.T) {
	// On the else edge of `if (flag)`, flag is known 0; the second test of
	// flag must not fork again.
	fp := extract(t, `
int f(int flag) {
	if (flag)
		return 1;
	if (flag)
		return 2; /* infeasible */
	return 0;
}`, "f")
	if len(fp.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(fp.Paths))
	}
	for _, p := range fp.Paths {
		if p.Out.Sym == "(I#2)" {
			t.Fatal("infeasible path survived")
		}
	}
}

func TestRefinementConjunction(t *testing.T) {
	// a && b taken implies both truths are learned; != on the false edge
	// binds the equality.
	fp := extract(t, `
int f(int a, int b) {
	if (a == 1 && b == 2) {
		if (a != 1)
			return 9; /* infeasible */
		return a + b;
	}
	return 0;
}`, "f")
	for _, p := range fp.Paths {
		if p.Out.Sym == "(I#9)" {
			t.Fatal("conjunction refinement missed")
		}
		if p.Out.Expr == "a + b" && p.Out.Sym != "(I#3)" {
			t.Errorf("a+b should fold to 3, got %s", p.Out.Sym)
		}
	}
}

func TestRefinementDoesNotOverbind(t *testing.T) {
	// `a < 5` teaches nothing; both sides of a later `a == 3` must survive.
	fp := extract(t, `
int f(int a) {
	if (a < 5) {
		if (a == 3)
			return 1;
		return 2;
	}
	return 0;
}`, "f")
	if len(fp.Paths) != 3 {
		t.Fatalf("want 3 paths, got %d", len(fp.Paths))
	}
}

// TestSwitchCaseBindsTag is the regression for a bug found by self-review:
// Case/Default edges were treated as boolean-false edges, binding the switch
// tag to 0 on every case arm. A case arm must instead bind the tag to the
// matched label; the default arm excludes every case label, so equality
// tests against a label under default are refuted.
func TestSwitchCaseBindsTag(t *testing.T) {
	fp := extract(t, `
int f(int x) {
	switch (x) {
	case 1:
		if (x == 1)
			return 10; /* must fold true: x bound to 1 */
		return 99;     /* infeasible */
	case 2:
		return 20;
	default:
		if (x == 1)
			return 30; /* infeasible: default implies x != 1 */
		return 0;
	}
}`, "f")
	got := map[string]int{}
	for _, p := range fp.Paths {
		got[p.Out.Sym]++
	}
	if got["(I#99)"] != 0 {
		t.Fatalf("infeasible case-arm path survived: %v", got)
	}
	if got["(I#10)"] != 1 || got["(I#20)"] != 1 {
		t.Fatalf("case arms wrong: %v", got)
	}
	// Default arm excludes the case labels: the ==1 continuation is refuted
	// and only the fallthrough to return 0 survives.
	if got["(I#30)"] != 0 || got["(I#0)"] != 1 {
		t.Fatalf("default arm refinement wrong: %v", got)
	}
}
