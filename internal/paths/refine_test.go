package paths

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"pallas/internal/cparse"
	"pallas/internal/feas"
)

// extractTier extracts fn at the given precision tier.
func extractTier(t *testing.T, src, fn string, tier feas.Tier) *FuncPaths {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Precision = tier
	fp, err := NewExtractor(tu, cfg).Extract(fn)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return fp
}

// outs tallies the symbolic outputs of a function's paths.
func outs(fp *FuncPaths) map[string]int {
	got := map[string]int{}
	for _, p := range fp.Paths {
		if p.Out != nil {
			got[p.Out.Sym]++
		}
	}
	return got
}

// TestTruthinessTakenEdgeExcludesZero pins the satellite bugfix: the taken
// edge of `if (x)` proves x != 0, so a later `if (x == 0)` inside the
// branch is refuted by exclusion.
func TestTruthinessTakenEdgeExcludesZero(t *testing.T) {
	fp := extract(t, `
int f(int x) {
	if (x) {
		if (x == 0)
			return 9; /* infeasible: x proven nonzero */
		return 1;
	}
	return 0;
}`, "f")
	got := outs(fp)
	if got["(I#9)"] != 0 {
		t.Fatalf("x == 0 under if (x) must be refuted: %v", got)
	}
	if got["(I#1)"] != 1 || got["(I#0)"] != 1 {
		t.Fatalf("want the two feasible paths: %v", got)
	}
}

// TestEqualityOperandOrder pins that refinement is independent of which
// side of ==/!= carries the constant, including negative and character
// constants.
func TestEqualityOperandOrder(t *testing.T) {
	cases := []struct {
		name string
		cond string // equality that binds x on the taken edge
		then string // comparison refuted inside the branch
	}{
		{"const-right", "x == 5", "x != 5"},
		{"const-left", "5 == x", "x != 5"},
		{"neg-const-right", "x == -1", "x != -1"},
		{"neg-const-left", "-1 == x", "x != -1"},
		{"neg-const-left-flip", "-1 == x", "-1 != x"},
		{"char-const-right", "x == 'a'", "x != 'a'"},
		{"char-const-left", "'a' == x", "x != 'a'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := fmt.Sprintf(`
int f(int x) {
	if (%s) {
		if (%s)
			return 9; /* infeasible: x is bound by the outer equality */
		return 1;
	}
	return 0;
}`, c.cond, c.then)
			got := outs(extract(t, src, "f"))
			if got["(I#9)"] != 0 {
				t.Fatalf("inner test must fold false: %v", got)
			}
			if got["(I#1)"] != 1 || got["(I#0)"] != 1 {
				t.Fatalf("want the two feasible paths: %v", got)
			}
		})
	}
}

// TestDeMorganRefinement pins that negation distributes through refineEnv:
// the false edge of !(a && b) implies both conjuncts, the true edge of
// !(a || b) refutes both disjuncts, and nested negation unwraps.
func TestDeMorganRefinement(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		banned  []string // symbolic outputs that must not appear
		present []string // symbolic outputs that must appear exactly once
	}{
		{
			name: "not-and-false-edge",
			src: `
int f(int a, int b) {
	if (!(a && b))
		return 0;
	/* here a && b held: both are nonzero */
	if (a == 0)
		return 9;
	if (b == 0)
		return 8;
	return 3;
}`,
			banned:  []string{"(I#9)", "(I#8)"},
			present: []string{"(I#0)", "(I#3)"},
		},
		{
			name: "not-or-true-edge",
			src: `
int f(int a, int b) {
	if (!(a || b)) {
		/* here a || b was refuted: both are zero */
		if (a)
			return 9;
		return a + b;
	}
	return 1;
}`,
			banned:  []string{"(I#9)"},
			present: []string{"(I#0)", "(I#1)"}, // a + b folds to 0
		},
		{
			name: "nested-negation",
			src: `
int f(int x) {
	if (!!(x == 5)) {
		if (x != 5)
			return 9;
		return 1;
	}
	return 0;
}`,
			banned:  []string{"(I#9)"},
			present: []string{"(I#1)", "(I#0)"},
		},
		{
			name: "mixed-and-or",
			src: `
int f(int a, int b, int c) {
	if (!(a && (b || c)))
		return 0;
	/* a nonzero; b || c held but neither disjunct is pinned */
	if (a == 0)
		return 9;
	if (b == 0)
		return 7;
	return 3;
}`,
			banned:  []string{"(I#9)"},
			present: []string{"(I#0)", "(I#7)", "(I#3)"},
		},
		{
			name: "or-false-edge-pins-equalities",
			src: `
int f(int a, int b) {
	if (a == 3 || b == 4) {
		return 1;
	}
	/* both disjuncts refuted */
	if (a == 3)
		return 9;
	if (b == 4)
		return 8;
	return 0;
}`,
			banned:  []string{"(I#9)", "(I#8)"},
			present: []string{"(I#1)", "(I#0)"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := outs(extract(t, c.src, "f"))
			for _, s := range c.banned {
				if got[s] != 0 {
					t.Fatalf("infeasible output %s survived: %v", s, got)
				}
			}
			for _, s := range c.present {
				if got[s] != 1 {
					t.Fatalf("expected output %s once: %v", s, got)
				}
			}
		})
	}
}

// TestDeMorganRefinementParallelWorkers re-runs the De Morgan extraction
// concurrently from one shared extractor at 1, 4 and 16 workers and
// requires byte-identical results — refinement holds no shared mutable
// state, and the race detector patrols the shared CFG/summary caches.
func TestDeMorganRefinementParallelWorkers(t *testing.T) {
	src := `
int f(int a, int b) {
	if (!(a && b))
		return 0;
	if (a == 0)
		return 9;
	return 3;
}
int g(int a, int b) {
	if (!(a || b)) {
		if (a)
			return 9;
		return a + b;
	}
	return 1;
}
int h(int x) {
	if (x) {
		if (x == 0)
			return 9;
		return 1;
	}
	return 0;
}`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns := []string{"f", "g", "h"}
	want := map[string]string{}
	{
		ex := NewExtractor(tu, DefaultConfig())
		for _, fn := range fns {
			fp, err := ex.Extract(fn)
			if err != nil {
				t.Fatalf("serial extract %s: %v", fn, err)
			}
			b, _ := json.Marshal(fp)
			want[fn] = string(b)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			ex := NewExtractor(tu, DefaultConfig())
			var wg sync.WaitGroup
			got := make([]map[string]string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					out := map[string]string{}
					for _, fn := range fns {
						fp, err := ex.Extract(fn)
						if err != nil {
							t.Errorf("worker %d extract %s: %v", w, fn, err)
							return
						}
						b, _ := json.Marshal(fp)
						out[fn] = string(b)
					}
					got[w] = out
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				for _, fn := range fns {
					if got[w] == nil {
						t.Fatalf("worker %d produced nothing", w)
					}
					if got[w][fn] != want[fn] {
						t.Fatalf("worker %d diverged on %s:\n got %s\nwant %s", w, fn, got[w][fn], want[fn])
					}
				}
			}
		})
	}
}

// TestFeasTierPruning pins the tentpole: interval contradictions prune
// under balanced/strict but never under fast, and the pruned tally is
// recorded on the function and the extractor.
func TestFeasTierPruning(t *testing.T) {
	src := `
int f(int x) {
	if (x > 3) {
		if (x < 2)
			return 9; /* infeasible: x > 3 and x < 2 */
		return 1;
	}
	return 0;
}`
	fast := extractTier(t, src, "f", feas.Fast)
	if got := outs(fast); got["(I#9)"] != 1 || fast.Pruned != 0 {
		t.Fatalf("fast tier must not prune: %v pruned=%d", got, fast.Pruned)
	}
	for _, tier := range []feas.Tier{feas.Balanced, feas.Strict} {
		fp := extractTier(t, src, "f", tier)
		got := outs(fp)
		if got["(I#9)"] != 0 {
			t.Fatalf("%v: interval-contradictory path survived: %v", tier, got)
		}
		if got["(I#1)"] != 1 || got["(I#0)"] != 1 {
			t.Fatalf("%v: feasible paths wrong: %v", tier, got)
		}
		if fp.Pruned != 1 {
			t.Fatalf("%v: Pruned = %d, want 1", tier, fp.Pruned)
		}
	}
}

// TestFeasStrictCrossTermPruning pins the strict tier's equality
// unification: a == b propagates interval facts across the pair.
func TestFeasStrictCrossTermPruning(t *testing.T) {
	src := `
int f(int a, int b) {
	if (a == b) {
		if (a > 5) {
			if (b < 3)
				return 9; /* infeasible under strict: b == a > 5 */
			return 1;
		}
		return 2;
	}
	return 0;
}`
	bal := extractTier(t, src, "f", feas.Balanced)
	if got := outs(bal); got["(I#9)"] != 1 || bal.Pruned != 0 {
		t.Fatalf("balanced must not unify cross-term equalities: %v pruned=%d", got, bal.Pruned)
	}
	fp := extractTier(t, src, "f", feas.Strict)
	got := outs(fp)
	if got["(I#9)"] != 0 {
		t.Fatalf("strict: cross-term contradictory path survived: %v", got)
	}
	if fp.Pruned != 1 {
		t.Fatalf("strict: Pruned = %d, want 1", fp.Pruned)
	}
}

// TestFeasSwitchDefaultPruning: the default arm's disequalities reach the
// feasibility layer even when the tag is a compound (non-identifier)
// expression the Env-level refinement cannot track.
func TestFeasSwitchDefaultPruning(t *testing.T) {
	src := `
int f(int x) {
	switch (x + 1) {
	case 1:
		return 10;
	case 2:
		return 20;
	default:
		if (x + 1 == 2)
			return 9; /* infeasible: default excludes both labels */
		return 0;
	}
}`
	fast := extractTier(t, src, "f", feas.Fast)
	if got := outs(fast); got["(I#9)"] != 1 {
		t.Fatalf("fast keeps the compound-tag default arm symbolic: %v", got)
	}
	fp := extractTier(t, src, "f", feas.Balanced)
	got := outs(fp)
	if got["(I#9)"] != 0 {
		t.Fatalf("balanced: default-arm equality must be refuted: %v", got)
	}
	if got["(I#10)"] != 1 || got["(I#20)"] != 1 || got["(I#0)"] != 1 {
		t.Fatalf("balanced: feasible arms wrong: %v", got)
	}
}

// TestFeasFastTierByteIdentical extracts a condition-heavy unit at fast
// tier and requires the serialized result to be byte-identical to an
// extractor built before the feasibility layer existed — i.e. the zero
// Config value keeps historical behavior exactly (Pruned serializes away).
func TestFeasFastTierByteIdentical(t *testing.T) {
	src := `
int f(int x, int y) {
	if (x > 3) {
		if (x < 2)
			return 9;
		if (y)
			return 1;
	}
	switch (y) {
	case 1: return 10;
	default: return 0;
	}
}`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	zero, err := NewExtractor(tu, DefaultConfig()).Extract("f")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Precision = feas.Fast
	explicit, err := NewExtractor(tu, cfg).Extract("f")
	if err != nil {
		t.Fatal(err)
	}
	zb, _ := json.Marshal(zero)
	eb, _ := json.Marshal(explicit)
	if string(zb) != string(eb) {
		t.Fatalf("fast tier diverged from zero config:\n%s\n%s", zb, eb)
	}
	if zero.Pruned != 0 {
		t.Fatalf("fast tier recorded pruning: %d", zero.Pruned)
	}
}
