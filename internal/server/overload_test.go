package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
)

// postWithClient posts an analyze request with an X-Pallas-Client header and
// decodes the error body (if any) alongside the raw bytes.
func postWithClient(t *testing.T, url, client string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if client != "" {
		hreq.Header.Set(ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeErrorBodyGolden pins the exact bytes of the structured error
// body on both a validation failure (no retry hint) and an overload shed
// (with retry_after_ms). Clients parse this shape; changing it is an API
// break and must show up as a diff here.
func TestServeErrorBodyGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postWithClient(t, ts.URL, "", AnalyzeRequest{Name: "v.c"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation status = %d", resp.StatusCode)
	}
	golden := "{\n  \"error\": \"source is required\"\n}\n"
	if string(raw) != golden {
		t.Fatalf("validation body drifted\n--- got ---\n%q\n--- want ---\n%q", raw, golden)
	}

	s.StartDrain()
	resp, raw = postWithClient(t, ts.URL, "", AnalyzeRequest{Name: "d.c", Source: testSource})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d", resp.StatusCode)
	}
	goldenShed := "{\n  \"error\": \"draining\",\n  \"retry_after_ms\": 1000\n}\n"
	if string(raw) != goldenShed {
		t.Fatalf("shed body drifted\n--- got ---\n%q\n--- want ---\n%q", raw, goldenShed)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
}

// TestServeQueueFullShed fills the one worker and the one queue slot, then
// proves the next request is shed immediately with 503, a Retry-After
// header, and a machine-readable retry_after_ms — while the admitted and
// queued requests still complete normally.
func TestServeQueueFullShed(t *testing.T) {
	if err := failpoint.Arm("pre-parse=sleep:300ms"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		out  AnalyzeResponse
	}
	results := make(chan result, 2)
	post := func(name string) {
		resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{
			Name:   name,
			Source: strings.ReplaceAll(testSource, "fast_path", "f_"+strings.TrimSuffix(name, ".c")),
			Spec:   strings.ReplaceAll(testSpec, "fast_path", "f_"+strings.TrimSuffix(name, ".c")),
		})
		results <- result{code: resp.StatusCode, out: out}
	}

	go post("a.c")
	waitFor(t, "first request in flight", func() bool { return s.ctrl.InFlight() == 1 })
	go post("b.c")
	waitFor(t, "second request queued", func() bool { return s.ctrl.QueueDepth() == 1 })

	// Queue full: the third request is shed without waiting.
	shedStart := time.Now()
	resp, raw := postWithClient(t, ts.URL, "", AnalyzeRequest{Name: "c.c", Source: testSource, Spec: testSpec})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status = %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(shedStart); elapsed > 150*time.Millisecond {
		t.Fatalf("queue-full shed took %v — it must not wait in line", elapsed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full shed missing Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("shed body not JSON: %s", raw)
	}
	if !strings.Contains(eb.Error, "queue full") || eb.RetryAfterMS <= 0 {
		t.Fatalf("shed body = %+v", eb)
	}

	// The admitted and queued requests are unharmed by the shed.
	for i := 0; i < 2; i++ {
		got := <-results
		if got.code != http.StatusOK {
			t.Fatalf("surviving request %d: status %d", i, got.code)
		}
	}
	if shed := s.ctrl.Shed(); shed.QueueFull != 1 {
		t.Fatalf("shed stats = %+v, want QueueFull 1", shed)
	}
}

// TestServeDeadlineShed proves max_wait_ms bounds admission wait: with the
// single worker busy for 300ms, a request that will only wait 40ms is shed
// at its deadline, long before the worker frees up.
func TestServeDeadlineShed(t *testing.T) {
	if err := failpoint.Arm("pre-parse=sleep:300ms/slow.c"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "slow.c", Source: testSource, Spec: testSpec})
		done <- resp.StatusCode
	}()
	waitFor(t, "slow request in flight", func() bool { return s.ctrl.InFlight() == 1 })

	start := time.Now()
	resp, raw := postWithClient(t, ts.URL, "", AnalyzeRequest{
		Name: "hurry.c", Source: testSource, Spec: testSpec, MaxWaitMS: 40,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline status = %d, want 503", resp.StatusCode)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("deadline shed took %v, want ~40ms", elapsed)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "deadline") {
		t.Fatalf("deadline body = %+v", eb)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("slow request status = %d", code)
	}
	if shed := s.ctrl.Shed(); shed.Deadline != 1 {
		t.Fatalf("shed stats = %+v, want Deadline 1", shed)
	}
}

// TestServeRateLimit checks the per-client token bucket: one client
// exhausting its burst gets 429 with a Retry-After hint while a different
// client is still served, and the shed metric moves.
func TestServeRateLimit(t *testing.T) {
	s := newTestServer(t, Config{RatePerClient: 0.5, RateBurst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Name: "r.c", Source: testSource, Spec: testSpec}
	if resp, _ := postWithClient(t, ts.URL, "alice", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first alice request: status %d", resp.StatusCode)
	}
	resp, raw := postWithClient(t, ts.URL, "alice", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "rate limit") || eb.RetryAfterMS <= 0 {
		t.Fatalf("429 body = %+v", eb)
	}
	// A different client has its own bucket.
	if resp, _ := postWithClient(t, ts.URL, "bob", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob request: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), MetricShedRateLimited+" 1\n") {
		t.Fatalf("/metrics missing rate-limit shed count\n%s", mb)
	}
}

// TestServeVerboseHealthz checks the operator view: queue/limiter/breaker
// detail appears only with ?verbose=1 and reflects reality.
func TestServeVerboseHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MinWorkers: 2, MaxQueue: 7,
		Analyzer: pallas.Config{AnalysisWorkers: 3}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postAnalyze(t, ts.URL, AnalyzeRequest{Name: "h.c", Source: testSource, Spec: testSpec})

	// Plain healthz stays lean: no overload fields.
	plain, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := io.ReadAll(plain.Body)
	plain.Body.Close()
	if strings.Contains(string(pb), "effective_limit") {
		t.Fatalf("plain healthz leaked verbose fields: %s", pb)
	}

	resp, err := http.Get(ts.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthVerbose
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 4 {
		t.Fatalf("verbose healthz base = %+v", h.healthBody)
	}
	if h.EffectiveLimit != 4 || h.MinWorkers != 2 || h.MaxQueue != 7 {
		t.Fatalf("limiter view = limit %d min %d queue %d", h.EffectiveLimit, h.MinWorkers, h.MaxQueue)
	}
	if h.AnalysisWorkers != 3 {
		t.Fatalf("analysis_workers = %d, want 3", h.AnalysisWorkers)
	}
	if h.QueueDepth != 0 || h.Admitted != 1 || h.Shed.Total() != 0 {
		t.Fatalf("admission view = %+v", h)
	}
	if h.CacheTier != "memory-only" {
		t.Fatalf("cache tier = %q, want memory-only", h.CacheTier)
	}
}

// TestServeDrainRejectsQueued is the drain-composition bugfix test: a
// request waiting in the admission queue is rejected the moment drain
// starts — it does not sit in the queue until its deadline while shutdown
// waits on it — and the in-flight request still completes.
func TestServeDrainRejectsQueued(t *testing.T) {
	if err := failpoint.Arm("pre-parse=sleep:500ms/slow.c"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inFlight := make(chan int, 1)
	go func() {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "slow.c", Source: testSource, Spec: testSpec})
		inFlight <- resp.StatusCode
	}()
	waitFor(t, "slow request in flight", func() bool { return s.ctrl.InFlight() == 1 })

	type queuedResult struct {
		code    int
		elapsed time.Duration
	}
	queued := make(chan queuedResult, 1)
	go func() {
		start := time.Now()
		resp, raw := postWithClient(t, ts.URL, "", AnalyzeRequest{Name: "q.c", Source: testSource})
		_ = raw
		queued <- queuedResult{code: resp.StatusCode, elapsed: time.Since(start)}
	}()
	waitFor(t, "second request queued", func() bool { return s.ctrl.QueueDepth() == 1 })

	drainStart := time.Now()
	s.StartDrain()
	got := <-queued
	if got.code != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d, want 503", got.code)
	}
	if wait := time.Since(drainStart); wait > 200*time.Millisecond {
		t.Fatalf("queued request held %v after drain — must be rejected immediately", wait)
	}
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", code)
	}
	if shed := s.ctrl.Shed(); shed.Draining != 1 {
		t.Fatalf("shed stats = %+v, want Draining 1", shed)
	}
}

// TestServeBreakerSurfacing injects persistent-tier store faults and proves
// the request path never sees them: analyses return 200, the persist-fault
// counter moves, and the verbose health view shows the tier tripped open.
func TestServeBreakerSurfacing(t *testing.T) {
	if err := failpoint.Arm("cache-store=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{CacheDir: t.TempDir(), BreakerThreshold: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "bf.c", Source: testSource, Spec: testSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with failing disk: status %d, want 200 (memory tier carries it)", resp.StatusCode)
	}
	if out.Cache != "miss" || out.Warnings == 0 {
		t.Fatalf("result incomplete despite healthy analysis: %+v", out)
	}

	// Warm repeat: served from memory, still 200.
	warm, wout := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "bf.c", Source: testSource, Spec: testSpec})
	if warm.StatusCode != http.StatusOK || wout.Cache != "hit" {
		t.Fatalf("warm repeat = %d %q", warm.StatusCode, wout.Cache)
	}

	hresp, err := http.Get(ts.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthVerbose
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.CacheTier != "open" {
		t.Fatalf("cache tier = %q, want open after store fault (threshold 1)", h.CacheTier)
	}
	if h.CacheDiskFaults != 1 || h.BreakerTrips != 1 {
		t.Fatalf("breaker view = faults %d trips %d", h.CacheDiskFaults, h.BreakerTrips)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		MetricPersistFaults + " 1\n",
		MetricBreakerState + " 2\n",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q\n%s", want, mb)
		}
	}
}
