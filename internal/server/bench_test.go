package server

// Serving-mode benchmarks and the CI timing artifact. The micro-benchmarks
// time one POST through the full HTTP + cache + engine stack (cold analyzes,
// warm replays); TestServeBenchArtifact drives the whole synthetic corpus
// cold then warm and writes BENCH_serve.json when PALLAS_BENCH_OUT is set.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"pallas/internal/corpus"
	"pallas/internal/metrics"
)

func benchPost(b *testing.B, url string, req AnalyzeRequest) AnalyzeResponse {
	b.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("analyze: status %d, err %v", resp.StatusCode, err)
	}
	return out
}

// BenchmarkServeAnalyzeCold measures a cache-missing POST: HTTP handling
// plus one full analysis (a distinct unit per iteration).
func BenchmarkServeAnalyzeCold(b *testing.B) {
	s, err := New(Config{Metrics: metrics.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchPost(b, ts.URL, AnalyzeRequest{
			Name:   fmt.Sprintf("cold%d.c", i),
			Source: strings.ReplaceAll(testSource, "fast_path", fmt.Sprintf("fast_%d", i)),
			Spec:   strings.ReplaceAll(testSpec, "fast_path", fmt.Sprintf("fast_%d", i)),
		})
		if out.Cache != "miss" {
			b.Fatalf("iteration %d: cache = %q", i, out.Cache)
		}
	}
}

// BenchmarkServeAnalyzeWarm measures a cache-hitting POST: HTTP handling
// plus a memory-tier replay, no analysis.
func BenchmarkServeAnalyzeWarm(b *testing.B) {
	s, err := New(Config{Metrics: metrics.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := AnalyzeRequest{Name: "warm.c", Source: testSource, Spec: testSpec}
	benchPost(b, ts.URL, req) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := benchPost(b, ts.URL, req); out.Cache != "hit" {
			b.Fatalf("iteration %d: cache = %q", i, out.Cache)
		}
	}
}

// serveBench is the BENCH_serve.json schema.
type serveBench struct {
	// Units is the corpus size driven through the server.
	Units int `json:"units"`
	// ColdMS and WarmMS are wall-clock totals for the cold (every unit
	// analyzed) and warm (every unit replayed) passes.
	ColdMS float64 `json:"cold_ms"`
	WarmMS float64 `json:"warm_ms"`
	// Speedup is ColdMS / WarmMS.
	Speedup float64 `json:"speedup"`
	// HitRate is warm-pass hits over warm-pass requests (1.0 when every
	// replay came from cache).
	HitRate float64 `json:"hit_rate"`
}

// TestServeBenchArtifact runs the full synthetic corpus through a server
// twice and writes the cold-vs-warm timing artifact to $PALLAS_BENCH_OUT.
// Without the variable it still runs (a cheap e2e smoke) but writes nothing.
func TestServeBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	s, err := New(Config{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := corpus.Generate().Cases
	pass := func() (time.Duration, int) {
		start := time.Now()
		hits := 0
		for _, c := range cases {
			body, _ := json.Marshal(AnalyzeRequest{Name: c.File, Source: c.Source, Spec: c.Spec})
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var r AnalyzeResponse
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("case %s: status %d, err %v", c.ID, resp.StatusCode, err)
			}
			resp.Body.Close()
			if r.Cache == "hit" {
				hits++
			}
		}
		return time.Since(start), hits
	}

	cold, coldHits := pass()
	warm, warmHits := pass()
	if coldHits != 0 {
		t.Fatalf("cold pass hit the cache %d times", coldHits)
	}
	if warmHits != len(cases) {
		t.Fatalf("warm pass: %d/%d hits", warmHits, len(cases))
	}
	bench := serveBench{
		Units:   len(cases),
		ColdMS:  float64(cold.Microseconds()) / 1000,
		WarmMS:  float64(warm.Microseconds()) / 1000,
		Speedup: float64(cold.Nanoseconds()) / float64(warm.Nanoseconds()),
		HitRate: float64(warmHits) / float64(len(cases)),
	}
	t.Logf("serve bench: %d units, cold %.1fms, warm %.1fms, %.1fx, hit rate %.2f",
		bench.Units, bench.ColdMS, bench.WarmMS, bench.Speedup, bench.HitRate)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
