package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pallas"
	"pallas/internal/cluster"
	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/metrics"
	"pallas/internal/rcache"
)

func postUnit(t *testing.T, url string, a cluster.AssignPayload) *http.Response {
	t.Helper()
	body, err := cluster.EncodeFrame(cluster.FrameAssign, a)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/cluster/unit", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestClusterUnitEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	s.SetAdvertiseAddr("worker-a:1")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	resp := postUnit(t, ts.URL, cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res cluster.ResultPayload
	if err := cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || res.Unit != "a.c" || res.Hash != unit.Hash() {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Report) == 0 || len(res.Paths) == 0 {
		t.Fatalf("result missing report or paths: report=%d paths=%d bytes",
			len(res.Report), len(res.Paths))
	}
	if res.Worker != "worker-a:1" {
		t.Fatalf("worker echo: %q", res.Worker)
	}
	if res.Cache != "miss" {
		t.Fatalf("first dispatch should miss, got %q", res.Cache)
	}

	// Same unit again: served from cache, same bytes.
	resp2 := postUnit(t, ts.URL, cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	})
	defer resp2.Body.Close()
	var res2 cluster.ResultPayload
	if err := cluster.DecodeFrame(resp2.Body, cluster.FrameResult, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Cache != "hit" {
		t.Fatalf("second dispatch should hit, got %q", res2.Cache)
	}
	if !bytes.Equal(res.Report, res2.Report) || !bytes.Equal(res.Paths, res2.Paths) {
		t.Fatal("cached dispatch returned different bytes")
	}
}

// TestClusterUnitUpgradesPathlessCacheEntry covers the shared-cache shape
// mismatch: an entry stored by plain /v1/analyze traffic has no path bytes;
// a cluster dispatch of the same unit must re-analyze and serve paths, not
// return an empty pathdb.
func TestClusterUnitUpgradesPathlessCacheEntry(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the cache through the plain analyze path.
	body, _ := json.Marshal(AnalyzeRequest{Name: "a.c", Source: testSource, Spec: testSpec})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed analyze: status %d", resp.StatusCode)
	}

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	resp2 := postUnit(t, ts.URL, cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	})
	defer resp2.Body.Close()
	var res cluster.ResultPayload
	if err := cluster.DecodeFrame(resp2.Body, cluster.FrameResult, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || len(res.Paths) == 0 {
		t.Fatalf("upgraded dispatch: status=%s paths=%d bytes", res.Status, len(res.Paths))
	}
	if res.Cache != "miss" {
		t.Fatalf("upgrade must count as a miss, got %q", res.Cache)
	}
}

func TestClusterUnitRejectsMalformedFrames(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/cluster/unit", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	good, _ := cluster.EncodeFrame(cluster.FrameAssign, cluster.AssignPayload{
		Unit: "a.c", Hash: "h", Source: testSource})

	if code := post(nil); code != http.StatusBadRequest {
		t.Fatalf("empty body: %d, want 400", code)
	}
	if code := post([]byte("not a frame at all")); code != http.StatusBadRequest {
		t.Fatalf("garbage: %d, want 400", code)
	}
	if code := post(good[:len(good)-4]); code != http.StatusBadRequest {
		t.Fatalf("truncated: %d, want 400", code)
	}
	corrupted := append([]byte(nil), good...)
	corrupted[len(corrupted)-1] ^= 0x01
	if code := post(corrupted); code != http.StatusBadRequest {
		t.Fatalf("checksum mismatch: %d, want 400", code)
	}
	// Oversized: a declared length beyond the frame limit must answer 413.
	oversized := append([]byte(nil), good...)
	oversized[5], oversized[6], oversized[7], oversized[8] = 0xff, 0xff, 0xff, 0xff
	if code := post(oversized); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: %d, want 413", code)
	}
	// The server must still be serving after the abuse.
	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	resp := postUnit(t, ts.URL, cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-abuse dispatch: %d", resp.StatusCode)
	}
}

func TestClusterUnitFailedAnalysisIsTerminalFrame(t *testing.T) {
	// A deterministically malformed unit answers 200 with a failed,
	// non-transient result frame — not an HTTP error (which would look like
	// a sick worker and trigger requeue elsewhere).
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postUnit(t, ts.URL, cluster.AssignPayload{
		Unit: "bad.c", Hash: "h-bad", Source: "int f( {", Attempt: 1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with failed frame", resp.StatusCode)
	}
	var res cluster.ResultPayload
	if err := cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "failed" || res.Err == "" {
		t.Fatalf("result: %+v", res)
	}
	if res.Transient {
		t.Fatal("parse failure misclassified as transient")
	}
}

func TestClusterPing(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cluster/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping: %d", resp.StatusCode)
	}
	var pong cluster.PongPayload
	if err := json.NewDecoder(resp.Body).Decode(&pong); err != nil {
		t.Fatal(err)
	}
	if pong.Status != "ok" {
		t.Fatalf("pong: %+v", pong)
	}

	s.StartDrain()
	resp2, err := http.Get(ts.URL + "/v1/cluster/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ping: %d, want 503", resp2.StatusCode)
	}
}

// TestAnalyzeCanceledRequestReleasesGate is the client-disconnect
// regression test: a request whose context is canceled while waiting for a
// gate slot must abandon the analysis (context error surfaces) instead of
// holding or leaking the slot.
func TestAnalyzeCanceledRequestReleasesGate(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, MinWorkers: 1, Metrics: reg})

	// Occupy the single gate slot so the next analysis queues on Acquire.
	block := make(chan struct{})
	entered := make(chan struct{})
	go s.gate.Do(guard.StageServe, "blocker", func() error {
		close(entered)
		<-block
		return nil
	})
	<-entered
	defer close(block)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	unit := pallas.Unit{Name: "canceled.c", Source: testSource, Spec: testSpec}
	start := time.Now()
	_, err := s.analyzeOne(ctx, unit, s.analyzer.CacheKey(unit))
	if err == nil {
		t.Fatal("canceled request ran the analysis")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("want context cancellation surfaced, got: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation did not release promptly (%s)", time.Since(start))
	}
	if got := s.gate.InFlight(); got != 1 {
		t.Fatalf("gate slots leaked: in-flight %d, want 1 (the blocker)", got)
	}
}

// TestAnalyzeCanceledHTTPRequest drives the same property end to end over
// HTTP: killing the connection mid-queue must not wedge the worker slot.
func TestAnalyzeCanceledHTTPRequest(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MinWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	block := make(chan struct{})
	entered := make(chan struct{})
	go s.gate.Do(guard.StageServe, "blocker", func() error {
		close(entered)
		<-block
		return nil
	})
	<-entered

	body, _ := json.Marshal(AnalyzeRequest{Name: "x.c", Source: testSource, Spec: testSpec})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The server may have answered an error before the cancel landed.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	close(block)
	// The blocker drains; the canceled request must not occupy the slot, so
	// a fresh request succeeds promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server wedged after canceled request")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClusterMetricNamesRegistered(t *testing.T) {
	// The cluster instrument names must render in Prometheus exposition
	// when a coordinator uses a registry (guards against typo drift between
	// the metrics constants and the dashboard names in the issue).
	reg := metrics.NewRegistry()
	reg.Gauge(metrics.MetricClusterWorkersLive, "t").Set(3)
	reg.Counter(metrics.MetricClusterRequeues, "t").Inc()
	reg.Counter(metrics.MetricClusterHeartbeatMisses, "t").Inc()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{
		"pallas_cluster_workers_live",
		"pallas_cluster_requeues_total",
		"pallas_cluster_heartbeat_misses_total",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("metric %s missing from exposition:\n%s", name, out)
		}
	}
}

// TestClusterUnitResultAttested: every result frame carries the lease epoch
// echoed from the assignment (the coordinator's fence token) and a content
// checksum that actually covers the bytes in the frame — on both the
// fresh-compute and the cache-hit path.
func TestClusterUnitResultAttested(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	for i, epoch := range []int64{7, 8} { // miss, then hit
		resp := postUnit(t, ts.URL, cluster.AssignPayload{
			Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec,
			Attempt: 1, Epoch: epoch,
		})
		var res cluster.ResultPayload
		err := cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != epoch {
			t.Fatalf("dispatch %d: epoch echo %d, want %d", i, res.Epoch, epoch)
		}
		if res.Sum == "" {
			t.Fatalf("dispatch %d: result carries no content sum", i)
		}
		if got := rcache.ContentSum(res.Report, res.Paths); got != res.Sum {
			t.Fatalf("dispatch %d: sum %s does not cover the payload bytes (computed %s)",
				i, res.Sum, got)
		}
		wantCache := "miss"
		if i == 1 {
			wantCache = "hit"
		}
		if res.Cache != wantCache {
			t.Fatalf("dispatch %d: cache %q, want %q", i, res.Cache, wantCache)
		}
	}
}

// TestClusterUnitCorruptCacheEntryReanalyzed: a cached entry whose bytes no
// longer match its stored checksum (torn disk write, bad RAM, a buggy
// persistence tier) must not be served. The mismatch is counted and the
// unit re-analyzed, so the coordinator receives honest bytes.
func TestClusterUnitCorruptCacheEntryReanalyzed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	assign := cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	}
	resp := postUnit(t, ts.URL, assign)
	var honest cluster.ResultPayload
	err := cluster.DecodeFrame(resp.Body, cluster.FrameResult, &honest)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Rot the cached bytes in place; the stored Sum now lies about them.
	entry, ok := s.cache.Get(s.analyzer.CacheKey(unit))
	if !ok {
		t.Fatal("seeded entry missing from cache")
	}
	entry.Report = failpoint.CorruptJSON(entry.Report)
	if string(entry.Report) == string(honest.Report) {
		t.Fatal("corruption was a no-op; test fixture needs a digit in the report")
	}

	resp = postUnit(t, ts.URL, assign)
	var res cluster.ResultPayload
	err = cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.mSumMismatch.Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCacheSumMismatch, got)
	}
	if res.Cache != "miss" {
		t.Fatalf("corrupt hit served as %q, want re-analysis (miss)", res.Cache)
	}
	if string(res.Report) != string(honest.Report) {
		t.Fatalf("re-analysis bytes diverged:\n got %s\nwant %s", res.Report, honest.Report)
	}
	if got := rcache.ContentSum(res.Report, res.Paths); got != res.Sum {
		t.Fatalf("re-analyzed sum %s does not cover the bytes (computed %s)", res.Sum, got)
	}
}

// TestClusterUnitResultCorruptFailpoint: the result-corrupt injection mangles
// the payload *after* the checksum is fixed, leaving the frame CRC intact —
// the lie only the end-to-end Sum can expose. This is the worker half of the
// integrity pipeline; the coordinator half (quarantine) is proven in the
// cluster package.
func TestClusterUnitResultCorruptFailpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := failpoint.Arm("result-corrupt=corrupt@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	assign := cluster.AssignPayload{
		Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
	}
	resp := postUnit(t, ts.URL, assign)
	var res cluster.ResultPayload
	err := cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err) // frame must still decode: the corruption is beneath the CRC
	}
	if got := rcache.ContentSum(res.Report, res.Paths); got == res.Sum {
		t.Fatal("corrupted payload still matches its sum — injection missed")
	}

	// The @1 cap is spent; the next dispatch is honest again.
	resp = postUnit(t, ts.URL, assign)
	err = cluster.DecodeFrame(resp.Body, cluster.FrameResult, &res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := rcache.ContentSum(res.Report, res.Paths); got != res.Sum {
		t.Fatalf("post-injection sum %s does not cover the bytes (computed %s)", res.Sum, got)
	}
}

// TestClusterUnitWorkerSendFaults drives the worker-send injection point on
// the real handler: each fault mode produces exactly the failure shape the
// coordinator's transport layer classifies — dead link, bad CRC, trailing
// duplicate, slow trickle.
func TestClusterUnitWorkerSendFaults(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	unit := pallas.Unit{Name: "a.c", Source: testSource, Spec: testSpec}
	dispatch := func() (cluster.ResultPayload, []byte, error) {
		body, err := cluster.EncodeFrame(cluster.FrameAssign, cluster.AssignPayload{
			Unit: unit.Name, Hash: unit.Hash(), Source: unit.Source, Spec: unit.Spec, Attempt: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/cluster/unit", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return cluster.ResultPayload{}, nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return cluster.ResultPayload{}, nil, err
		}
		var res cluster.ResultPayload
		err = cluster.DecodeFrame(bytes.NewReader(raw), cluster.FrameResult, &res)
		return res, raw, err
	}

	t.Run("drop", func(t *testing.T) {
		if err := failpoint.Arm("worker-send=drop@1"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm()
		if _, _, err := dispatch(); err == nil {
			t.Fatal("dropped result produced no transport error")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		if err := failpoint.Arm("worker-send=corrupt@1"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm()
		if _, _, err := dispatch(); err == nil {
			t.Fatal("corrupted frame decoded cleanly — CRC did not catch it")
		}
	})
	t.Run("dup", func(t *testing.T) {
		if err := failpoint.Arm("worker-send=dup@1"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm()
		res, raw, err := dispatch()
		if err != nil {
			t.Fatalf("duplicate delivery broke the first frame: %v", err)
		}
		if res.Status != "ok" {
			t.Fatalf("result: %+v", res)
		}
		if len(raw)%2 != 0 {
			t.Fatalf("body is %d bytes, want an exact doubled frame", len(raw))
		}
		if !bytes.Equal(raw[:len(raw)/2], raw[len(raw)/2:]) {
			t.Fatal("trailing bytes are not a duplicate of the first frame")
		}
	})
	t.Run("drip", func(t *testing.T) {
		if err := failpoint.Arm("worker-send=drip:1ms@1"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disarm()
		res, _, err := dispatch()
		if err != nil {
			t.Fatalf("dripped frame failed to decode: %v", err)
		}
		if res.Status != "ok" {
			t.Fatalf("result: %+v", res)
		}
	})
	// And clean afterwards: no residual fault state.
	res, _, err := dispatch()
	if err != nil || res.Status != "ok" {
		t.Fatalf("post-fault dispatch: %v %+v", err, res)
	}
}

// TestClusterPingDropFailpoint: worker-ping=drop kills the liveness plane
// only — the probe dies at the transport layer while the very next one
// (past the @1 cap) answers normally. This is the knob the gray-failure
// e2e uses to manufacture an asymmetric partition.
func TestClusterPingDropFailpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := failpoint.Arm("worker-ping=drop@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	if resp, err := http.Get(ts.URL + "/v1/cluster/ping"); err == nil {
		resp.Body.Close()
		t.Fatal("dropped ping answered")
	}
	resp, err := http.Get(ts.URL + "/v1/cluster/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ping: %d, want 200", resp.StatusCode)
	}
}
