package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pallas"
	"pallas/internal/failpoint"
	"pallas/internal/metrics"
)

const testSource = `
int fast_path(int mode)
{
	if (mode == 0) {
		mode = 1;
		return 1;
	}
	return 0;
}
`

const testSpec = "fastpath fast_path\nimmutable mode\n"

// newTestServer builds a server with its own metrics registry so counter
// assertions are not polluted across tests.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, AnalyzeResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad analyze response %s: %v", raw, err)
		}
	}
	return resp, out
}

// TestServeColdWarmByteIdentical is the tentpole contract: the second
// identical request is a cache hit whose report bytes match the first
// exactly, and /metrics records exactly one miss and one hit.
func TestServeColdWarmByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Name: "mode.c", Source: testSource, Spec: testSpec}
	resp1, cold := postAnalyze(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d", resp1.StatusCode)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold cache = %q, want miss", cold.Cache)
	}
	if len(cold.Key) != 64 {
		t.Fatalf("key = %q, want 64 hex chars", cold.Key)
	}
	if cold.Warnings == 0 {
		t.Fatal("seeded immutable-overwrite warning missing from cold report")
	}

	resp2, warm := postAnalyze(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d", resp2.StatusCode)
	}
	if warm.Cache != "hit" {
		t.Fatalf("warm cache = %q, want hit", warm.Cache)
	}
	if warm.Key != cold.Key {
		t.Fatalf("key changed across identical requests: %s vs %s", cold.Key, warm.Key)
	}
	if !bytes.Equal(cold.Report, warm.Report) {
		t.Fatalf("cache hit report drifted\n--- cold ---\n%s\n--- warm ---\n%s", cold.Report, warm.Report)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		pallas.MetricCacheMisses + " 1\n",
		pallas.MetricCacheHits + " 1\n",
		pallas.MetricUnitsAnalyzed + " 1\n",
		MetricRequests + " 2\n",
		MetricInFlight + " 0\n",
		MetricRequestSeconds + "_count 2\n",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q\n%s", want, mb)
		}
	}
}

// TestServeSingleflightHammer races many concurrent requests — several
// copies of each distinct unit — and asserts the analysis count equals the
// number of distinct units: duplicates either hit the cache or piggyback on
// the in-flight leader, never analyze again.
func TestServeSingleflightHammer(t *testing.T) {
	// Stretch every analysis so duplicate requests genuinely overlap.
	if err := failpoint.Arm("pre-parse=sleep:50ms"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const distinct, copies = 4, 6
	type got struct {
		unit int
		resp AnalyzeResponse
		code int
	}
	results := make(chan got, distinct*copies)
	var wg sync.WaitGroup
	for u := 0; u < distinct; u++ {
		for c := 0; c < copies; c++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				req := AnalyzeRequest{
					Name:   fmt.Sprintf("u%d.c", u),
					Source: strings.ReplaceAll(testSource, "fast_path", fmt.Sprintf("fast_%d", u)),
					Spec:   strings.ReplaceAll(testSpec, "fast_path", fmt.Sprintf("fast_%d", u)),
				}
				resp, out := postAnalyze(t, ts.URL, req)
				results <- got{unit: u, resp: out, code: resp.StatusCode}
			}(u)
		}
	}
	wg.Wait()
	close(results)

	reports := make(map[int][]byte)
	for g := range results {
		if g.code != http.StatusOK {
			t.Fatalf("unit %d: status %d", g.unit, g.code)
		}
		if prev, ok := reports[g.unit]; ok {
			if !bytes.Equal(prev, g.resp.Report) {
				t.Fatalf("unit %d: divergent report bytes across duplicate requests", g.unit)
			}
		} else {
			reports[g.unit] = g.resp.Report
		}
	}
	if len(reports) != distinct {
		t.Fatalf("got %d distinct reports, want %d", len(reports), distinct)
	}

	st := s.Cache().Stats()
	if st.Computes != distinct {
		t.Fatalf("computes = %d, want %d (singleflight failed)", st.Computes, distinct)
	}
	if st.Misses != distinct {
		t.Fatalf("misses = %d, want %d", st.Misses, distinct)
	}
	if st.Hits != distinct*(copies-1) {
		t.Fatalf("hits = %d, want %d", st.Hits, distinct*(copies-1))
	}
}

// TestServeReportEndpoint covers /v1/report lookups and key validation.
func TestServeReportEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, out := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "r.c", Source: testSource, Spec: testSpec})

	resp, err := http.Get(ts.URL + "/v1/report/" + out.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	var entry struct {
		Unit     string          `json:"unit"`
		Report   json.RawMessage `json:"report"`
		Warnings int             `json:"warnings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Unit != "r.c" || entry.Warnings == 0 {
		t.Fatalf("entry = %+v", entry)
	}

	for path, want := range map[string]int{
		"/v1/report/zz":                         http.StatusBadRequest,
		"/v1/report/" + strings.Repeat("0", 64): http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestServeValidation covers method, body, and size rejections.
func TestServeValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxRequestBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: status = %d", get.StatusCode)
	}

	bad, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d", bad.StatusCode)
	}

	empty, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "e.c"})
	if empty.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: status = %d", empty.StatusCode)
	}

	huge, _ := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name: "h.c", Source: strings.Repeat("x", 4096),
	})
	if huge.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status = %d", huge.StatusCode)
	}
}

// TestServePersistentCacheAcrossRestart proves the disk tier makes warm
// state survive process boundaries: a fresh server over the same cache
// directory answers from cache without analyzing.
func TestServePersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := AnalyzeRequest{Name: "p.c", Source: testSource, Spec: testSpec}

	s1 := newTestServer(t, Config{CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	_, cold := postAnalyze(t, ts1.URL, req)
	ts1.Close()
	if cold.Cache != "miss" {
		t.Fatalf("cold cache = %q", cold.Cache)
	}

	s2 := newTestServer(t, Config{CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, warm := postAnalyze(t, ts2.URL, req)
	if warm.Cache != "hit" {
		t.Fatalf("restart cache = %q, want hit", warm.Cache)
	}
	if !bytes.Equal(cold.Report, warm.Report) {
		t.Fatal("report bytes drifted across server restart")
	}
	if s2.Cache().Stats().Computes != 0 {
		t.Fatalf("restarted server ran %d analyses, want 0", s2.Cache().Stats().Computes)
	}
}

// TestServeGracefulDrain starts a real listener, parks a slow analysis in
// flight, then drains: the in-flight request must complete with a full
// report while new requests are refused with 503.
func TestServeGracefulDrain(t *testing.T) {
	if err := failpoint.Arm("pre-parse=sleep:300ms/slow.c"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s := newTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	type slowResult struct {
		code int
		out  AnalyzeResponse
	}
	slow := make(chan slowResult, 1)
	go func() {
		resp, out := postAnalyze(t, url, AnalyzeRequest{
			Name: "slow.c", Source: testSource, Spec: testSpec,
		})
		slow <- slowResult{code: resp.StatusCode, out: out}
	}()

	// Wait until the slow request holds a gate slot, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the gate")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StartDrain()

	// New work is refused while the old request is still running.
	refused, _ := postAnalyze(t, url, AnalyzeRequest{Name: "new.c", Source: testSource})
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain analyze status = %d, want 503", refused.StatusCode)
	}
	hresp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", hresp.StatusCode)
	}

	// Shutdown must wait for — not kill — the in-flight analysis.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	got := <-slow
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", got.code)
	}
	if got.out.Cache != "miss" || got.out.Warnings == 0 {
		t.Fatalf("in-flight result incomplete: %+v", got.out)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}

// TestServeHealthz checks the healthy-path payload shape.
func TestServeHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.InFlight != 0 {
		t.Fatalf("healthz = %+v", h)
	}
}
