package server

// Overload timing artifact: drives bursts at 1x/4x/16x of the server's
// worker capacity and records, per load level, admitted-request latency
// (p50/p99) and the shed rate. CI publishes the result as
// BENCH_overload.json; locally it doubles as a smoke test that admission
// control keeps admitted latency flat by shedding rather than queueing
// without bound.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/metrics"
)

// overloadLoad is one load level of BENCH_overload.json.
type overloadLoad struct {
	// Multiplier is offered load over capacity (1, 4, 16).
	Multiplier int `json:"multiplier"`
	// Offered is the number of simultaneous requests fired.
	Offered int `json:"offered"`
	// Admitted and Shed partition the outcomes; ShedRate is Shed/Offered.
	Admitted int     `json:"admitted"`
	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// P50MS and P99MS summarize admitted-request latency.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// overloadBench is the BENCH_overload.json schema.
type overloadBench struct {
	// Workers is the server's concurrency ceiling; MaxQueue its admission
	// queue bound; ServiceMS the injected per-analysis cost.
	Workers   int            `json:"workers"`
	MaxQueue  int            `json:"max_queue"`
	ServiceMS float64        `json:"service_ms"`
	Loads     []overloadLoad `json:"loads"`
}

func percentileMS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(sorted[idx].Microseconds()) / 1000
}

// TestServeOverloadBenchArtifact measures shed rate and admitted latency at
// 1x/4x/16x offered load and writes BENCH_overload.json to
// $PALLAS_BENCH_OUT. Without the variable it still runs as a smoke test.
func TestServeOverloadBenchArtifact(t *testing.T) {
	out := os.Getenv("PALLAS_BENCH_OUT")
	if testing.Short() && out == "" {
		t.Skip("short mode")
	}
	const workers, maxQueue = 4, 4
	const serviceMS = 20
	if err := failpoint.Arm(fmt.Sprintf("pre-parse=sleep:%dms", serviceMS)); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	s, err := New(Config{Workers: workers, MaxQueue: maxQueue, Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bench := overloadBench{Workers: workers, MaxQueue: maxQueue, ServiceMS: serviceMS}
	for _, mult := range []int{1, 4, 16} {
		offered := mult * workers
		lats := make([]time.Duration, offered)
		codes := make([]int, offered)
		var wg sync.WaitGroup
		for i := 0; i < offered; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fn := fmt.Sprintf("l%dx_%d", mult, i)
				body, _ := json.Marshal(AnalyzeRequest{
					Name:   fn + ".c",
					Source: strings.ReplaceAll(testSource, "fast_path", fn),
					Spec:   strings.ReplaceAll(testSpec, "fast_path", fn),
				})
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				lats[i] = time.Since(start)
				codes[i] = resp.StatusCode
				if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
					t.Errorf("load %dx request %d: shed without Retry-After", mult, i)
				}
			}(i)
		}
		wg.Wait()

		var admitted []time.Duration
		shed := 0
		for i, code := range codes {
			switch code {
			case http.StatusOK:
				admitted = append(admitted, lats[i])
			case http.StatusServiceUnavailable:
				shed++
			default:
				t.Fatalf("load %dx request %d: status %d", mult, i, code)
			}
		}
		sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
		bench.Loads = append(bench.Loads, overloadLoad{
			Multiplier: mult,
			Offered:    offered,
			Admitted:   len(admitted),
			Shed:       shed,
			ShedRate:   float64(shed) / float64(offered),
			P50MS:      percentileMS(admitted, 50),
			P99MS:      percentileMS(admitted, 99),
		})
	}

	if bench.Loads[0].Shed != 0 {
		t.Fatalf("1x load shed %d requests — capacity config broken", bench.Loads[0].Shed)
	}
	if bench.Loads[2].Shed == 0 {
		t.Fatal("16x load shed nothing — admission control not engaging")
	}
	for _, l := range bench.Loads {
		t.Logf("%2dx: offered %3d admitted %3d shed %3d (%.0f%%)  p50 %.1fms p99 %.1fms",
			l.Multiplier, l.Offered, l.Admitted, l.Shed, 100*l.ShedRate, l.P50MS, l.P99MS)
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
