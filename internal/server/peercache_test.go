package server

// Endpoint-level coverage of the shared cache tier: two real Servers meshed
// over httptest, exercising the framed get/put wire, the coordinator map
// push, zombie fencing, frame-error status mapping, and the peer-serve
// failpoint (corruption the frame CRC cannot see — only the requester's
// content-sum verification catches it).

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pallas/internal/cluster"
	"pallas/internal/failpoint"
	"pallas/internal/rcache"
	"pallas/internal/rcache/peer"
)

type peerNode struct {
	s  *Server
	ts *httptest.Server
}

func (n *peerNode) addr() string { return strings.TrimPrefix(n.ts.URL, "http://") }

// meshServers starts n full servers and joins their tiers with one map push
// through the real /v1/cluster/cachemap endpoint.
func meshServers(t *testing.T, n int) []*peerNode {
	t.Helper()
	nodes := make([]*peerNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		s := newTestServer(t, Config{Workers: 2})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		nodes[i] = &peerNode{s: s, ts: ts}
		addrs[i] = nodes[i].addr()
		s.SetAdvertiseAddr(addrs[i])
	}
	pm, _ := json.Marshal(cluster.PeerMap{Epoch: 1, Peers: addrs, Replicas: 2})
	for _, nd := range nodes {
		resp, err := http.Post(nd.ts.URL+peer.MapPath, "application/json", bytes.NewReader(pm))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("map push: status %d", resp.StatusCode)
		}
	}
	return nodes
}

func peerEntry(key string) *rcache.Entry {
	e := &rcache.Entry{Key: key, Unit: "u.c", Report: []byte(`{"warnings":["w"]}`)}
	e.Sum = rcache.ContentSum(e.Report, e.Paths)
	return e
}

func peerKey(seed string) string { return (seed + strings.Repeat("0", 64))[:64] }

func TestPeerEndpointsServeVerifiedRemoteHit(t *testing.T) {
	nodes := meshServers(t, 2)
	a, b := nodes[0], nodes[1]

	k := peerKey("aa")
	if err := a.s.Cache().Put(peerEntry(k)); err != nil {
		t.Fatal(err)
	}
	got, ok := b.s.PeerTier().Get(peer.SpaceUnit, k)
	if !ok || got.Key != k {
		t.Fatalf("remote hit through the real endpoints: ok=%v", ok)
	}
	if st := b.s.PeerTier().Stats(); st.Hits != 1 || st.RotRefusals != 0 {
		t.Fatalf("requester stats: %+v", st)
	}

	// And the reverse direction: a replicated put lands in the peer's cache.
	k2 := peerKey("bb")
	if err := b.s.PeerTier().Put(peer.SpaceUnit, peerEntry(k2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.s.Cache().Get(k2); !ok {
		t.Fatal("replicated put did not land on the peer")
	}
}

func TestPeerServeCorruptionRefusedByContentSum(t *testing.T) {
	nodes := meshServers(t, 2)
	a, b := nodes[0], nodes[1]

	k := peerKey("cc")
	if err := a.s.Cache().Put(peerEntry(k)); err != nil {
		t.Fatal(err)
	}
	// The answering side corrupts the entry content before framing: the frame
	// CRC is computed over the corrupted bytes, so it passes — only the
	// requester's content-sum verification can refuse it.
	if err := failpoint.Arm("peer-serve=corrupt@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	if _, ok := b.s.PeerTier().Get(peer.SpaceUnit, k); ok {
		t.Fatal("corrupted remote entry was accepted")
	}
	st := b.s.PeerTier().Stats()
	if st.RotRefusals != 1 || st.Hits != 0 {
		t.Fatalf("corruption must count a rot refusal, got %+v", st)
	}
	// With the failpoint spent, the same lookup heals.
	if _, ok := b.s.PeerTier().Get(peer.SpaceUnit, k); !ok {
		t.Fatal("lookup after the one-shot corruption should hit")
	}
}

func TestPeerEndpointsFenceStaleEpochs(t *testing.T) {
	nodes := meshServers(t, 2) // both tiers now at epoch 1
	a := nodes[0]

	// Push a newer map to a only; b (epoch 1) is now the zombie.
	pm, _ := json.Marshal(cluster.PeerMap{Epoch: 7, Peers: []string{a.addr()}, Replicas: 2})
	resp, err := http.Post(a.ts.URL+peer.MapPath, "application/json", bytes.NewReader(pm))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	get, _ := cluster.EncodeFrame(cluster.FramePeerGet, cluster.PeerGetPayload{
		Key: peerKey("dd"), Space: peer.SpaceUnit, Epoch: 1,
	})
	r1, err := http.Post(a.ts.URL+peer.GetPath, "application/octet-stream", bytes.NewReader(get))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusConflict {
		t.Fatalf("stale get: status %d, want 409", r1.StatusCode)
	}

	entry, _ := json.Marshal(peerEntry(peerKey("dd")))
	put, _ := cluster.EncodeFrame(cluster.FramePeerPut, cluster.PeerPutPayload{
		Key: peerKey("dd"), Space: peer.SpaceUnit, Entry: entry, Epoch: 1,
	})
	r2, err := http.Post(a.ts.URL+peer.PutPath, "application/octet-stream", bytes.NewReader(put))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("stale put: status %d, want 409", r2.StatusCode)
	}
	if st := a.s.PeerTier().Stats(); st.StaleRefusals != 2 {
		t.Fatalf("StaleRefusals = %d, want 2", st.StaleRefusals)
	}

	// A replayed (equal-epoch) map push answers 200 applied=false.
	resp2, err := http.Post(a.ts.URL+peer.MapPath, "application/json", bytes.NewReader(pm))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Applied bool  `json:"applied"`
		Epoch   int64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || ack.Applied || ack.Epoch != 7 {
		t.Fatalf("replayed map push: status=%d ack=%+v", resp2.StatusCode, ack)
	}
}

func TestPeerEndpointsMapFrameErrorsToStatus(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	post := func(path string, body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	// Garbage bytes: bad magic → 400.
	if code := post(peer.GetPath, []byte("not a frame at all")); code != http.StatusBadRequest {
		t.Fatalf("bad magic: status %d, want 400", code)
	}
	// Wrong frame type (a put frame on the get endpoint) → 400.
	entry, _ := json.Marshal(peerEntry(peerKey("ee")))
	put, _ := cluster.EncodeFrame(cluster.FramePeerPut, cluster.PeerPutPayload{
		Key: peerKey("ee"), Space: peer.SpaceUnit, Entry: entry,
	})
	if code := post(peer.GetPath, put); code != http.StatusBadRequest {
		t.Fatalf("wrong type: status %d, want 400", code)
	}
	// Oversized declared length → 413 without shipping the bytes.
	big := make([]byte, 13)
	copy(big, "PLSF")
	big[4] = cluster.FramePeerGet
	binary.BigEndian.PutUint32(big[5:9], cluster.MaxFramePayload+1)
	if code := post(peer.GetPath, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: status %d, want 413", code)
	}
	// Corrupted payload (frame CRC mismatch) → 400.
	get, _ := cluster.EncodeFrame(cluster.FramePeerGet, cluster.PeerGetPayload{
		Key: peerKey("ee"), Space: peer.SpaceUnit,
	})
	get[len(get)-1] ^= 0xff
	if code := post(peer.GetPath, get); code != http.StatusBadRequest {
		t.Fatalf("checksum: status %d, want 400", code)
	}
	// Missing key → 400.
	empty, _ := cluster.EncodeFrame(cluster.FramePeerGet, cluster.PeerGetPayload{Space: peer.SpaceUnit})
	if code := post(peer.GetPath, empty); code != http.StatusBadRequest {
		t.Fatalf("empty key: status %d, want 400", code)
	}
	// A rotted replicated write → 400 (refused, not stored).
	rot := peerEntry(peerKey("ff"))
	rot.Sum = "deadbeef"
	rotBytes, _ := json.Marshal(rot)
	rotPut, _ := cluster.EncodeFrame(cluster.FramePeerPut, cluster.PeerPutPayload{
		Key: rot.Key, Space: peer.SpaceUnit, Entry: rotBytes,
	})
	if code := post(peer.PutPath, rotPut); code != http.StatusBadRequest {
		t.Fatalf("rotted put: status %d, want 400", code)
	}
	if _, ok := s.Cache().Get(rot.Key); ok {
		t.Fatal("refused put reached the cache")
	}
}

func TestPeerEndpointsShedWhileDraining(t *testing.T) {
	nodes := meshServers(t, 2)
	a, b := nodes[0], nodes[1]

	k := peerKey("ab")
	if err := a.s.Cache().Put(peerEntry(k)); err != nil {
		t.Fatal(err)
	}
	a.s.StartDrain()
	// The requester sees 503 (fetchRefused) and degrades to a miss — no hang,
	// no error surfaced.
	if _, ok := b.s.PeerTier().Get(peer.SpaceUnit, k); ok {
		t.Fatal("draining peer must shed, not serve")
	}
	if st := b.s.PeerTier().Stats(); st.Misses != 1 || st.Timeouts != 0 {
		t.Fatalf("shed must degrade to a clean miss, got %+v", st)
	}
}

func TestHealthzVerboseReportsPeerTier(t *testing.T) {
	nodes := meshServers(t, 2)
	a, b := nodes[0], nodes[1]

	k := peerKey("ad")
	if err := a.s.Cache().Put(peerEntry(k)); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.s.PeerTier().Get(peer.SpaceUnit, k); !ok {
		t.Fatal("seed hit failed")
	}
	resp, err := http.Get(b.ts.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb struct {
		PeerCache *peer.Stats `json:"peer_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.PeerCache == nil {
		t.Fatal("verbose healthz omitted the peer tier")
	}
	if hb.PeerCache.Hits != 1 || hb.PeerCache.Peers != 2 || hb.PeerCache.Epoch != 1 {
		t.Fatalf("peer tier in healthz: %+v", *hb.PeerCache)
	}
}
