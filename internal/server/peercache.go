package server

// Shared-cache-tier endpoints: each worker's serve engine hosts the cache
// side of the peer protocol (internal/rcache/peer) on its main listener, so
// peer traffic shares the admission path — and the shedding behavior — of
// everything else the worker does. An overloaded worker sheds peer ops with
// 503 and the requester degrades to its local tiers; that is the designed
// outcome, not an error.
//
//	POST /v1/cluster/cache/get  framed PeerGetPayload → framed PeerEntryPayload
//	POST /v1/cluster/cache/put  framed PeerPutPayload → JSON ack
//	POST /v1/cluster/cachemap   JSON PeerMap push from the coordinator
//
// Fencing: get and put carry the sender's ring epoch; a sender older than
// this worker's map is refused with 409 (a zombie must not read or seed
// entries under stale routing). Map pushes are refused unless strictly
// newer, making replayed or reordered pushes harmless.

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"pallas/internal/cluster"
	"pallas/internal/failpoint"
	"pallas/internal/rcache/peer"
)

// peerAdmitWait bounds how long a peer cache op may wait for admission:
// requesters run under a ~250ms per-op deadline, so queueing longer than
// this only serves answers nobody is waiting for.
const peerAdmitWait = 150 * time.Millisecond

// admitPeerOp runs the shared admission path with the peer-op deadline.
// It reports false after answering the request (shed) itself.
func (s *Server) admitPeerOp(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if err := s.ctrl.Acquire(r.Context(), time.Now().Add(peerAdmitWait)); err != nil {
		s.shedForReason(w, err)
		s.syncGauges()
		return nil, false
	}
	admitted := time.Now()
	return func() {
		s.ctrl.Release(time.Since(admitted))
		s.syncGauges()
	}, true
}

// handleCacheGet answers one peer's entry fetch from the local tiers.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.mShedDraining.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "draining")
		return
	}
	var get cluster.PeerGetPayload
	if err := cluster.DecodeFrame(http.MaxBytesReader(w, r.Body, s.maxBody), cluster.FramePeerGet, &get); err != nil {
		s.failPeerFrame(w, err)
		return
	}
	if get.Key == "" {
		s.fail(w, http.StatusBadRequest, "key is required")
		return
	}
	release, ok := s.admitPeerOp(w, r)
	if !ok {
		return
	}
	defer release()
	entry, found, stale := s.peers.ServeGet(get.Space, get.Key, get.Epoch)
	if stale {
		s.fail(w, http.StatusConflict, "stale peer epoch %d (ours is %d)", get.Epoch, s.peers.Epoch())
		return
	}
	// peer-serve models the answering side going bad: corrupt mangles the
	// entry *content* before framing (the frame CRC stays valid — only the
	// requester's content-sum verification can catch it), drop severs the
	// connection, drip trickles the frame into the requester's deadline.
	f := failpoint.Net(failpoint.PeerServe, get.Key)
	if f.Act == failpoint.NetCorrupt && found {
		entry = failpoint.CorruptJSON(entry)
	}
	res := cluster.PeerEntryPayload{Key: get.Key, Found: found, Entry: entry, Epoch: s.peers.Epoch()}
	w.Header().Set("Content-Type", "application/octet-stream")
	switch f.Act {
	case failpoint.NetDrop:
		dropConn(w)
	case failpoint.NetDup:
		if frame, err := cluster.EncodeFrame(cluster.FramePeerEntry, res); err == nil {
			w.Write(frame)
			w.Write(frame) // trailing bytes past the first frame are ignored
		}
	case failpoint.NetDrip:
		frame, err := cluster.EncodeFrame(cluster.FramePeerEntry, res)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "encode entry: %v", err)
			return
		}
		for off := 0; off < len(frame); off += 64 {
			end := off + 64
			if end > len(frame) {
				end = len(frame)
			}
			if _, err := w.Write(frame[off:end]); err != nil {
				return
			}
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			time.Sleep(f.Sleep)
		}
	default:
		cluster.WriteFrame(w, cluster.FramePeerEntry, res)
	}
}

// handleCachePut applies one peer's replicated write (replication, hinted
// handoff drain, or read repair) to the local tiers after verification.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.mShedDraining.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "draining")
		return
	}
	var put cluster.PeerPutPayload
	if err := cluster.DecodeFrame(http.MaxBytesReader(w, r.Body, s.maxBody), cluster.FramePeerPut, &put); err != nil {
		s.failPeerFrame(w, err)
		return
	}
	if put.Key == "" || len(put.Entry) == 0 {
		s.fail(w, http.StatusBadRequest, "key and entry are required")
		return
	}
	release, ok := s.admitPeerOp(w, r)
	if !ok {
		return
	}
	defer release()
	stale, err := s.peers.ServePut(put.Space, put.Key, put.Entry, put.Epoch)
	if stale {
		s.fail(w, http.StatusConflict, "stale peer epoch %d (ours is %d)", put.Epoch, s.peers.Epoch())
		return
	}
	if err != nil {
		// A refused entry (rot, unknown space) is the sender's problem; the
		// refusal itself worked.
		s.fail(w, http.StatusBadRequest, "put refused: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleCacheMap accepts the coordinator's peer-map push. The tier enforces
// epoch monotonicity; a refused (not-newer) push answers applied=false with
// 200 — replay and reorder are expected, not errors.
func (s *Server) handleCacheMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var pm cluster.PeerMap
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&pm); err != nil {
		s.fail(w, http.StatusBadRequest, "bad peer map: %v", err)
		return
	}
	applied := s.peers.Update(pm)
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": applied,
		"epoch":   s.peers.Epoch(),
	})
}

// failPeerFrame maps a frame decode error to its status (mirrors
// handleClusterUnit).
func (s *Server) failPeerFrame(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, cluster.ErrOversized) || errors.As(err, &tooBig):
		s.fail(w, http.StatusRequestEntityTooLarge, "frame too large: %v", err)
	default:
		s.fail(w, http.StatusBadRequest, "bad frame: %v", err)
	}
}

// PeerTierSummary shapes a tier snapshot for the CLI's -cache-stats dump;
// defined here so the formatting lives next to the protocol it describes.
func PeerTierSummary(st peer.Stats) map[string]any {
	return map[string]any{
		"epoch":           st.Epoch,
		"peers":           st.Peers,
		"hits":            st.Hits,
		"misses":          st.Misses,
		"rot_refusals":    st.RotRefusals,
		"read_repairs":    st.Repairs,
		"puts":            st.Puts,
		"put_bytes":       st.PutBytes,
		"timeouts":        st.Timeouts,
		"breaker_trips":   st.BreakerTrips,
		"handoff_queued":  st.HandoffQueued,
		"handoff_drained": st.HandoffDrained,
		"handoff_dropped": st.HandoffDropped,
	}
}
