// Package server is the analysis-as-a-service layer of Pallas: a
// long-running HTTP/JSON front end over the batch engine, so a fleet of
// clients (editors, CI jobs, commit bots) can share one warm process, one
// result cache, and one set of metrics instead of each paying full
// lex/preprocess/parse/path-extraction cost per invocation.
//
// Endpoints:
//
//	POST /v1/analyze       analyze one unit (source + spec); cached
//	GET  /v1/report/{key}  fetch a cached result by content hash
//	GET  /healthz          liveness/readiness (503 while draining);
//	                       ?verbose=1 adds overload/queue/breaker detail
//	GET  /metrics          Prometheus text exposition
//
// Every analysis runs on a bounded guard.Gate under the configured
// per-request budgets with the engine's degradation semantics: a hostile
// unit can exhaust its own budget or crash its own slot (surfacing as a
// degraded result or a 4xx/5xx for that request), but it cannot take down
// or starve the server. Identical concurrent requests are collapsed by the
// cache's singleflight, so a thundering herd of one unit costs one
// analysis.
//
// In front of the gate sits the overload layer (internal/overload): a
// per-client token-bucket rate limiter, then a bounded deadline-aware
// admission queue whose effective width adapts between MinWorkers and
// Workers as observed latency rises and falls. Requests that cannot be
// served in time are shed early with 429/503, a Retry-After header and a
// machine-readable retry_after_ms, so a traffic burst degrades service for
// the excess instead of for everyone. Disk faults in the persistent cache
// tier trip a circuit breaker to memory-only mode rather than failing
// requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"pallas"
	"pallas/internal/cluster"
	"pallas/internal/feas"
	"pallas/internal/guard"
	"pallas/internal/incr"
	"pallas/internal/metrics"
	"pallas/internal/overload"
	"pallas/internal/rcache"
	"pallas/internal/rcache/peer"
)

// Server-specific metric names; the cache/analysis counters are the shared
// pallas.Metric* names, so batch and serve activity land in one registry.
const (
	// MetricRequests counts accepted /v1/analyze requests.
	MetricRequests = "pallas_requests_total"
	// MetricRequestErrors counts /v1/analyze requests answered with an
	// error status (bad input, overload, failed analysis).
	MetricRequestErrors = "pallas_request_errors_total"
	// MetricInFlight gauges requests currently being served.
	MetricInFlight = "pallas_in_flight"
	// MetricRequestSeconds is the /v1/analyze latency histogram.
	MetricRequestSeconds = "pallas_request_seconds"

	// MetricShedQueueFull counts requests shed because the admission queue
	// was at capacity.
	MetricShedQueueFull = "pallas_shed_queue_full_total"
	// MetricShedDeadline counts requests shed because their deadline passed
	// or provably could not be met.
	MetricShedDeadline = "pallas_shed_deadline_total"
	// MetricShedRateLimited counts requests refused by the token-bucket
	// rate limiter.
	MetricShedRateLimited = "pallas_shed_rate_limited_total"
	// MetricShedDraining counts requests rejected because the server was
	// draining.
	MetricShedDraining = "pallas_shed_draining_total"
	// MetricQueueDepth gauges requests waiting in the admission queue.
	MetricQueueDepth = "pallas_queue_depth"
	// MetricEffectiveLimit gauges the adaptive limiter's current effective
	// concurrency (between MinWorkers and Workers).
	MetricEffectiveLimit = "pallas_effective_limit"
	// MetricBreakerState gauges the persistent cache tier's breaker:
	// 0 closed, 1 half-open, 2 open.
	MetricBreakerState = "pallas_cache_breaker_state"
	// MetricPersistFaults counts analyses whose report was served but could
	// not be persisted to the cache's disk tier.
	MetricPersistFaults = "pallas_cache_persist_faults_total"
	// MetricCacheSumMismatch counts cache hits whose stored content checksum
	// no longer matched their bytes (bit rot, torn write, hostile edit); the
	// entry is discarded and the unit re-analyzed rather than served.
	MetricCacheSumMismatch = "pallas_cache_sum_mismatch_total"
)

// DefaultMaxRequestBytes bounds an /v1/analyze body (16 MiB) — large enough
// for any merged kernel translation unit in the corpus, small enough that a
// hostile client cannot balloon the heap with one POST.
const DefaultMaxRequestBytes = 16 << 20

// DefaultMaxQueue bounds the admission queue when Config.MaxQueue is zero.
const DefaultMaxQueue = 256

// ClientHeader identifies the caller for per-client rate limiting; absent,
// the remote address's host is used.
const ClientHeader = "X-Pallas-Client"

// Config configures New.
type Config struct {
	// Analyzer is the engine configuration every request runs under; its
	// Deadline/MaxSteps/MaxMacroExpansions are the per-request budgets.
	// Deadline doubles as the default admission deadline: a request that
	// cannot be admitted before it is shed (max_wait_ms overrides).
	// Analyzer.AnalysisWorkers additionally fans each admitted request out
	// across that many intra-unit goroutines, so the server's total
	// analysis concurrency is bounded by Workers × max(1, AnalysisWorkers);
	// keep the product near GOMAXPROCS. Responses are byte-identical at any
	// worker count, so cache entries stay shared across settings.
	Analyzer pallas.Config
	// Workers bounds concurrent analyses (not connections); <= 0 means
	// GOMAXPROCS. This is the adaptive limiter's ceiling.
	Workers int
	// MinWorkers is the adaptive limiter's floor: under sustained latency
	// inflation the effective concurrency shrinks toward it, and grows back
	// to Workers on recovery. <= 0 means 1; set equal to Workers to disable
	// adaptation.
	MinWorkers int
	// MaxQueue bounds requests waiting for admission; beyond it requests
	// are shed with 503. 0 means DefaultMaxQueue; negative disables
	// queueing entirely (strict-latency mode: shed the moment every
	// effective worker is busy).
	MaxQueue int
	// RatePerClient and RateBurst configure the per-client token bucket
	// (requests/second, keyed by X-Pallas-Client or remote host). 0 rate
	// disables per-client limiting; 0 burst defaults to the rate.
	RatePerClient float64
	RateBurst     float64
	// GlobalRate and GlobalBurst configure the server-wide bucket.
	GlobalRate  float64
	GlobalBurst float64
	// CacheBytes bounds the result cache's memory tier (<= 0: rcache
	// default).
	CacheBytes int64
	// CacheDir, when non-empty, adds the persistent cache tier shared with
	// `pallas check -cache-dir`.
	CacheDir string
	// BreakerThreshold and BreakerCooldown configure the persistent tier's
	// circuit breaker (see rcache.Options); 0 means defaults, negative
	// threshold disables it.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// CachePeers lists the members of a static shared cache tier (worker
	// cache endpoints, host:port). Cluster workers usually leave this empty
	// and receive their peer map from the coordinator instead; a static
	// serve fleet lists every member here (self included or not — it is
	// added). Empty with no pushes means the tier is inert: pure local
	// caching, the tier's own degraded mode.
	CachePeers []string
	// CacheReplicas is the tier's replication factor (how many ring owners
	// each key has); <= 0 means peer.DefaultReplicas.
	CacheReplicas int
	// CacheSelf is this process's own cache address on the tier; workers
	// bind ephemeral ports and fix it later via SetAdvertiseAddr.
	CacheSelf string
	// CachePeerTimeout overrides the tier's per-op deadline (tests; <= 0
	// means peer.DefaultOpTimeout).
	CachePeerTimeout time.Duration
	// Metrics receives the server's instruments; nil means metrics.Default.
	Metrics *metrics.Registry
	// MaxRequestBytes caps an analyze body; <= 0 means
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// Server handles the HTTP API. Create with New, serve via Handler.
type Server struct {
	analyzer *pallas.Analyzer
	cache    *rcache.Cache
	peers    *peer.Tier
	gate     *guard.Gate
	ctrl     *overload.Controller
	limiter  *overload.Limiter
	rate     *overload.RateLimiter
	reg      *metrics.Registry
	mux      *http.ServeMux
	start    time.Time
	maxBody  int64
	maxQ     int
	deadline time.Duration // default admission deadline (Analyzer.Deadline)
	aworkers int           // Analyzer.AnalysisWorkers, surfaced by /healthz
	feasTier feas.Tier     // Analyzer.Precision, surfaced by /healthz and stats
	draining atomic.Bool

	// Cluster-worker state: the address this worker advertises in result
	// frames, and how many cluster units it has completed (for heartbeats).
	advertise   atomic.Value // string
	clusterDone atomic.Int64

	mRequests     *metrics.Counter
	mErrors       *metrics.Counter
	mCacheHits    *metrics.Counter
	mCacheMisses  *metrics.Counter
	mAnalyzed     *metrics.Counter
	mDegraded     *metrics.Counter
	mShedQueue    *metrics.Counter
	mShedDeadline *metrics.Counter
	mShedRate     *metrics.Counter
	mShedDraining *metrics.Counter
	mPersistFault *metrics.Counter
	mSumMismatch  *metrics.Counter
	gInFlight     *metrics.Gauge
	gQueueDepth   *metrics.Gauge
	gEffLimit     *metrics.Gauge
	gBreaker      *metrics.Gauge
	hLatency      *metrics.Histogram
}

// New builds a server (opening the cache directory when configured).
func New(cfg Config) (*Server, error) {
	cache, err := rcache.Open(rcache.Options{
		MaxBytes:         cfg.CacheBytes,
		Dir:              cfg.CacheDir,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
	})
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	maxBody := cfg.MaxRequestBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxRequestBytes
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	} else if maxQueue < 0 {
		maxQueue = 0
	}
	gate := guard.NewGate(cfg.Workers)
	minWorkers := cfg.MinWorkers
	if minWorkers <= 0 {
		minWorkers = 1
	}
	limiter := overload.NewLimiter(minWorkers, gate.Cap())
	// The shared cache tier exists unconditionally — with no peers it is
	// inert (every op short-circuits to the local cache), which is also its
	// degraded mode under a full partition, so the two paths stay one code
	// path. The function memo rides the same tier as its own key space.
	tier := peer.New(cache, peer.Options{
		Self:      cfg.CacheSelf,
		Replicas:  cfg.CacheReplicas,
		OpTimeout: cfg.CachePeerTimeout,
		Registry:  reg,
	})
	acfg := cfg.Analyzer
	if acfg.Incremental != nil {
		inc := *acfg.Incremental
		inc.Shared = tier
		acfg.Incremental = &inc
	}
	analyzer := pallas.New(acfg)
	// An unusable -incr-dir should fail startup, not silently serve cold.
	if err := analyzer.EnsureIncremental(); err != nil {
		tier.Close()
		return nil, err
	}
	// An unknown precision tier would otherwise fail every request.
	feasTier, err := feas.ParseTier(cfg.Analyzer.Precision)
	if err != nil {
		tier.Close()
		return nil, err
	}
	if feasTier != feas.Fast {
		// Pre-register the feasibility counters so /metrics exposes them
		// from the first scrape, not the first pruned path. The fast tier
		// never prunes, so it keeps the historical exposition byte-for-byte.
		reg.Counter(metrics.MetricFeasPathsPruned, metrics.HelpFeasPathsPruned)
		reg.Counter(metrics.MetricFeasContradictions, metrics.HelpFeasContradictions)
	}
	if len(cfg.CachePeers) > 0 {
		members := append([]string(nil), cfg.CachePeers...)
		if cfg.CacheSelf != "" {
			present := false
			for _, m := range members {
				present = present || m == cfg.CacheSelf
			}
			if !present {
				members = append(members, cfg.CacheSelf)
			}
		}
		tier.Update(cluster.PeerMap{Epoch: 1, Peers: members, Replicas: cfg.CacheReplicas})
	}
	s := &Server{
		analyzer: analyzer,
		cache:    cache,
		peers:    tier,
		gate:     gate,
		ctrl:     overload.NewController(limiter, maxQueue),
		limiter:  limiter,
		rate:     overload.NewRateLimiter(cfg.RatePerClient, cfg.RateBurst, cfg.GlobalRate, cfg.GlobalBurst),
		reg:      reg,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		maxBody:  maxBody,
		maxQ:     maxQueue,
		deadline: cfg.Analyzer.Deadline,
		aworkers: cfg.Analyzer.AnalysisWorkers,
		feasTier: feasTier,

		mRequests:     reg.Counter(MetricRequests, "accepted analyze requests"),
		mErrors:       reg.Counter(MetricRequestErrors, "analyze requests answered with an error"),
		mCacheHits:    reg.Counter(pallas.MetricCacheHits, "result-cache hits"),
		mCacheMisses:  reg.Counter(pallas.MetricCacheMisses, "result-cache misses"),
		mAnalyzed:     reg.Counter(pallas.MetricUnitsAnalyzed, "analysis pipeline executions (cache and resume misses)"),
		mDegraded:     reg.Counter(pallas.MetricDegraded, "analyses that completed partially"),
		mShedQueue:    reg.Counter(MetricShedQueueFull, "requests shed: admission queue full"),
		mShedDeadline: reg.Counter(MetricShedDeadline, "requests shed: deadline unmeetable"),
		mShedRate:     reg.Counter(MetricShedRateLimited, "requests shed: rate limited"),
		mShedDraining: reg.Counter(MetricShedDraining, "requests shed: draining"),
		mPersistFault: reg.Counter(MetricPersistFaults, "served results that could not be persisted"),
		mSumMismatch:  reg.Counter(MetricCacheSumMismatch, "cache entries failing their content checksum, recomputed"),
		gInFlight:     reg.Gauge(MetricInFlight, "requests currently being served"),
		gQueueDepth:   reg.Gauge(MetricQueueDepth, "requests waiting in the admission queue"),
		gEffLimit:     reg.Gauge(MetricEffectiveLimit, "adaptive effective concurrency limit"),
		gBreaker:      reg.Gauge(MetricBreakerState, "cache persistent-tier breaker: 0 closed, 1 half-open, 2 open"),
		hLatency:      reg.Histogram(MetricRequestSeconds, "analyze latency in seconds", nil),
	}
	s.gEffLimit.Set(int64(limiter.Limit()))
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/report/", s.handleReport)
	s.mux.HandleFunc("/v1/cluster/unit", s.handleClusterUnit)
	s.mux.HandleFunc("/v1/cluster/ping", s.handleClusterPing)
	s.mux.HandleFunc(peer.GetPath, s.handleCacheGet)
	s.mux.HandleFunc(peer.PutPath, s.handleCachePut)
	s.mux.HandleFunc(peer.MapPath, s.handleCacheMap)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (tests and the CLI stats line).
func (s *Server) Cache() *rcache.Cache { return s.cache }

// PeerTier exposes the shared cache tier (stats lines, map pushes in
// tests, and the CLI's -cache-stats dump).
func (s *Server) PeerTier() *peer.Tier { return s.peers }

// IncrStats surfaces the function-memo counters (false when incremental
// analysis is off).
func (s *Server) IncrStats() (incr.Stats, bool) { return s.analyzer.IncrStats() }

// FeasTier reports the feasibility tier this server's analyses run under.
func (s *Server) FeasTier() feas.Tier { return s.feasTier }

// FeasStats surfaces the feasibility layer's cumulative pruning counters
// (always zero on the fast tier).
func (s *Server) FeasStats() pallas.FeasStats { return s.analyzer.FeasStats() }

// Close releases background resources (the peer tier's handoff drain
// loop). The HTTP handler must not be used afterwards.
func (s *Server) Close() { s.peers.Close() }

// InFlight reports how many analyses currently hold a gate slot.
func (s *Server) InFlight() int64 { return s.gate.InFlight() }

// StartDrain puts the server into draining mode: /healthz flips to 503 so
// load balancers stop routing here, new analyze requests are refused with
// 503, and — crucially for bounded shutdown — every queued-but-unadmitted
// request is rejected immediately instead of holding its slot until its
// deadline. In-flight analyses run to completion (http.Server.Shutdown
// holds the listener open for them).
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.ctrl.Drain()
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AnalyzeRequest is the /v1/analyze body.
type AnalyzeRequest struct {
	// Name identifies the unit in reports and diagnostics (a file name).
	Name string `json:"name"`
	// Source is the C source text.
	Source string `json:"source"`
	// Spec is the semantic specification document (may be empty when the
	// source carries inline `// @pallas:` annotations).
	Spec string `json:"spec,omitempty"`
	// MaxWaitMS caps how long this request may wait for admission, in
	// milliseconds, overriding the server's default (-timeout). A request
	// that cannot be admitted in time is shed with 503 and a Retry-After
	// hint instead of queueing uselessly.
	MaxWaitMS int64 `json:"max_wait_ms,omitempty"`
}

// AnalyzeResponse is the /v1/analyze result.
type AnalyzeResponse struct {
	// Name echoes the request.
	Name string `json:"name"`
	// Key is the content-address of the result (usable with /v1/report).
	Key string `json:"key"`
	// Cache is "hit" when the report was served from the result cache
	// (including singleflight shares), "miss" when this request ran the
	// analysis.
	Cache string `json:"cache"`
	// Degraded mirrors the report's degraded flag.
	Degraded bool `json:"degraded,omitempty"`
	// Warnings counts report warnings.
	Warnings int `json:"warnings"`
	// Report is the full report JSON — byte-identical across hits of one
	// entry.
	Report json.RawMessage `json:"report"`
	// Diagnostics carries the degradation record, if any.
	Diagnostics []pallas.Diagnostic `json:"diagnostics,omitempty"`
	// ElapsedMS is the server-side handling time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorBody is every non-2xx JSON payload: a human-readable reason plus,
// for shed/overload responses, a machine-readable retry hint mirroring the
// Retry-After header at millisecond resolution. The shape is pinned by a
// golden test.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.mErrors.Inc()
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// shed answers an overload rejection: Retry-After header in whole seconds
// (rounded up, minimum 1 — the header has no sub-second resolution) and the
// exact hint in the body's retry_after_ms.
func (s *Server) shed(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...any) {
	s.mErrors.Inc()
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, status, errorBody{
		Error:        fmt.Sprintf(format, args...),
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// jitterRetry spreads a Retry-After hint uniformly over [d, 1.5d]. Every
// shed during one overload spike carries the same base hint; without
// jitter the whole rejected cohort retries on one edge and re-creates the
// spike it was shed to relieve. Jitter is upward only — never earlier than
// the base hint, so rate-limit waits stay honest. Draining sheds are not
// jittered: their hint is a fixed contract (clients re-resolve, they don't
// re-queue).
func jitterRetry(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// clientKey identifies the caller for rate limiting.
func clientKey(r *http.Request) string {
	if c := r.Header.Get(ClientHeader); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// syncGauges refreshes the overload gauges after an admission event or on
// scrape, so /metrics reflects the live queue and limiter state.
func (s *Server) syncGauges() {
	s.gQueueDepth.Set(int64(s.ctrl.QueueDepth()))
	s.gEffLimit.Set(int64(s.ctrl.EffectiveLimit()))
	var state int64
	switch s.cache.TierHealth() {
	case "half-open":
		state = 1
	case "open":
		state = 2
	}
	s.gBreaker.Set(state)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.mShedDraining.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "draining")
		return
	}
	// Rate limiting happens before the body is even read: refusing a
	// too-chatty client must stay O(1).
	if ok, wait := s.rate.Allow(clientKey(r)); !ok {
		s.mShedRate.Inc()
		s.shed(w, http.StatusTooManyRequests, jitterRetry(wait), "rate limit exceeded for client %q", clientKey(r))
		return
	}
	s.mRequests.Inc()
	s.gInFlight.Add(1)
	defer func() {
		s.gInFlight.Add(-1)
		s.hLatency.Observe(time.Since(started).Seconds())
	}()

	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" {
		req.Name = "unit.c"
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, "source is required")
		return
	}

	// Admission: wait for an effective-limit slot, bounded by the request's
	// deadline (max_wait_ms, else the server's -timeout). Shed early when
	// the wait is hopeless.
	var deadline time.Time
	switch {
	case req.MaxWaitMS > 0:
		deadline = started.Add(time.Duration(req.MaxWaitMS) * time.Millisecond)
	case s.deadline > 0:
		deadline = started.Add(s.deadline)
	}
	if err := s.ctrl.Acquire(r.Context(), deadline); err != nil {
		s.shedForReason(w, err)
		s.syncGauges()
		return
	}
	admitted := time.Now()
	defer func() {
		// Service latency only (admission to completion): feeding queue wait
		// into the limiter would make its own backlog look like downstream
		// slowness and collapse the limit under transient bursts.
		s.ctrl.Release(time.Since(admitted))
		s.syncGauges()
	}()
	s.syncGauges()

	unit := pallas.Unit{Name: req.Name, Source: req.Source, Spec: req.Spec}
	key := s.analyzer.CacheKey(unit)
	entry, hit, err := s.cache.GetOrCompute(key, func() (*rcache.Entry, error) {
		return s.analyzeOne(r.Context(), unit, key)
	})
	if err != nil && errors.Is(err, rcache.ErrPersist) && entry != nil {
		// The analysis succeeded and is memory-cached; only the disk tier
		// faulted. Serve the result — the breaker will trip the tier to
		// memory-only mode if the disk keeps failing.
		s.mPersistFault.Inc()
		err = nil
	}
	if err != nil {
		var pe *guard.PanicError
		if errors.As(err, &pe) {
			s.fail(w, http.StatusInternalServerError, "analysis crashed: %v", err)
		} else {
			s.fail(w, http.StatusUnprocessableEntity, "analysis failed: %v", err)
		}
		return
	}
	if hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Name:        entry.Unit,
		Key:         key,
		Cache:       cacheState,
		Degraded:    entry.Degraded,
		Warnings:    entry.Warnings,
		Report:      entry.Report,
		Diagnostics: entry.Diagnostics,
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	})
}

// shedForReason maps an admission failure to its status code, metric, and
// Retry-After hint.
func (s *Server) shedForReason(w http.ResponseWriter, err error) {
	retry := jitterRetry(s.ctrl.RetryAfter())
	switch {
	case errors.Is(err, overload.ErrQueueFull):
		s.mShedQueue.Inc()
		s.shed(w, http.StatusServiceUnavailable, retry, "overloaded: admission queue full")
	case errors.Is(err, overload.ErrDeadline):
		s.mShedDeadline.Inc()
		s.shed(w, http.StatusServiceUnavailable, retry, "overloaded: deadline cannot be met")
	case errors.Is(err, overload.ErrDraining):
		s.mShedDraining.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "draining")
	default:
		// Client context canceled or similar: the caller is gone, but
		// answer coherently for proxies that still relay the response.
		s.fail(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	}
}

// analyzeOne runs one real analysis on the gate — bounded concurrency,
// panic isolation, per-request budgets — and packages it as a cache entry.
// The request context flows into the gate acquisition: a client that
// disconnects while queued for a slot releases its place immediately
// instead of running an analysis nobody will read. withPaths additionally
// marshals the unit's path database into the entry (cluster dispatches need
// it for the merged pathdb; plain serve responses do not carry paths, so
// they skip the cost).
func (s *Server) analyzeOne(ctx context.Context, unit pallas.Unit, key string) (*rcache.Entry, error) {
	return s.computeUnit(ctx, unit, key, false)
}

// computeUnit is the miss path behind the cache's singleflight: before
// paying for a real analysis it asks the shared cache tier whether another
// worker already has the entry (verified remote hit), and replicates what
// it freshly produced to the key's ring owners. Every remote failure mode
// degrades to the local analysis below it.
func (s *Server) computeUnit(ctx context.Context, unit pallas.Unit, key string, withPaths bool) (*rcache.Entry, error) {
	if e, ok := s.peers.FetchRemote(peer.SpaceUnit, key); ok {
		if !withPaths || len(e.Paths) > 0 {
			return e, nil
		}
		// A path-less remote entry cannot serve a cluster dispatch; fall
		// through to the analysis and let the richer entry win.
	}
	e, err := s.analyzeUnit(ctx, unit, key, withPaths)
	if err != nil {
		return nil, err
	}
	s.peers.ReplicateRemote(peer.SpaceUnit, e)
	return e, nil
}

func (s *Server) analyzeUnit(ctx context.Context, unit pallas.Unit, key string, withPaths bool) (*rcache.Entry, error) {
	var res *pallas.Result
	err := s.gate.DoContext(ctx, guard.StageServe, unit.Name, func() error {
		var aerr error
		res, aerr = s.analyzer.AnalyzeSource(unit.Name, unit.Source, unit.Spec)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	s.mAnalyzed.Inc()
	if res.Degraded() {
		s.mDegraded.Inc()
	}
	b, err := json.Marshal(res.Report)
	if err != nil {
		return nil, err
	}
	entry := &rcache.Entry{
		Key:         key,
		Unit:        unit.Name,
		Report:      b,
		Diagnostics: res.Diagnostics,
		Degraded:    res.Report.Degraded,
		Warnings:    len(res.Report.Warnings),
	}
	if withPaths {
		pb, err := json.Marshal(res.Paths)
		if err != nil {
			return nil, err
		}
		entry.Paths = pb
	}
	// The content checksum is fixed here, where the bytes are born: every
	// downstream hop — cache tiers, result frames, the coordinator's merge —
	// verifies against this, not against whatever it happens to receive.
	entry.Sum = rcache.ContentSum(entry.Report, entry.Paths)
	return entry, nil
}

// handleReport serves a cached entry by content hash: 200 with the entry
// JSON, or 404 when neither tier holds it.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/report/")
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		s.fail(w, http.StatusBadRequest, "key must be 64 hex characters")
		return
	}
	entry, ok := s.cache.Get(key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no cached report for %s", key)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// healthBody is the /healthz payload.
type healthBody struct {
	Status        string `json:"status"`
	InFlight      int64  `json:"in_flight"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Workers       int    `json:"workers"`
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
}

// healthVerbose is the /healthz?verbose=1 payload: everything an
// orchestrator needs to tell "draining" (status) from "overloaded" (queue
// depth at max, effective limit at the floor, sheds climbing) from
// "degraded storage" (cache tier open).
type healthVerbose struct {
	healthBody
	QueueDepth      int                `json:"queue_depth"`
	EffectiveLimit  int                `json:"effective_limit"`
	MinWorkers      int                `json:"min_workers"`
	AnalysisWorkers int                `json:"analysis_workers"`
	MaxQueue        int                `json:"max_queue"`
	Admitted        int64              `json:"admitted_total"`
	Shed            overload.ShedStats `json:"shed"`
	RateDenied      int64              `json:"rate_denied_total"`
	CacheTier       string             `json:"cache_tier"`
	CacheDiskFaults int64              `json:"cache_disk_faults"`
	CacheDiskPrunes int64              `json:"cache_disk_full_prunes"`
	BreakerTrips    int64              `json:"cache_breaker_trips"`
	// PeerCache summarizes the shared cache tier (omitted while inert: no
	// peers configured or pushed).
	PeerCache *peer.Stats `json:"peer_cache,omitempty"`
	// Incr summarizes the function memo (omitted when incremental analysis
	// is off).
	Incr *incr.Stats `json:"incr,omitempty"`
	// Precision names the feasibility tier and Feas its pruning counters
	// (both omitted on the default fast tier, which never prunes).
	Precision string            `json:"precision,omitempty"`
	Feas      *pallas.FeasStats `json:"feas,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Readiness flip: a draining instance answers but advertises that
		// traffic should move elsewhere.
		status, code = "draining", http.StatusServiceUnavailable
	}
	base := healthBody{
		Status:        status,
		InFlight:      s.gate.InFlight(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Workers:       s.gate.Cap(),
		CacheEntries:  s.cache.Len(),
		CacheBytes:    s.cache.Bytes(),
	}
	if r.URL.Query().Get("verbose") != "1" {
		writeJSON(w, code, base)
		return
	}
	st := s.cache.Stats()
	body := healthVerbose{
		healthBody:      base,
		QueueDepth:      s.ctrl.QueueDepth(),
		EffectiveLimit:  s.ctrl.EffectiveLimit(),
		MinWorkers:      s.limiter.Min(),
		AnalysisWorkers: s.aworkers,
		MaxQueue:        s.maxQueue(),
		Admitted:        s.ctrl.Admitted(),
		Shed:            s.ctrl.Shed(),
		RateDenied:      s.rate.Denied(),
		CacheTier:       s.cache.TierHealth(),
		CacheDiskFaults: st.DiskFaults,
		CacheDiskPrunes: st.DiskFullPrunes,
		BreakerTrips:    st.BreakerTrips,
	}
	if s.peers.Enabled() || s.peers.Epoch() > 0 {
		ps := s.peers.Stats()
		body.PeerCache = &ps
	}
	if ist, ok := s.analyzer.IncrStats(); ok {
		body.Incr = &ist
	}
	if s.feasTier != feas.Fast {
		body.Precision = s.feasTier.String()
		fst := s.analyzer.FeasStats()
		body.Feas = &fst
	}
	writeJSON(w, code, body)
}

// maxQueue reports the admission queue bound (for health reporting).
func (s *Server) maxQueue() int { return s.maxQ }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
