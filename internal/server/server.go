// Package server is the analysis-as-a-service layer of Pallas: a
// long-running HTTP/JSON front end over the batch engine, so a fleet of
// clients (editors, CI jobs, commit bots) can share one warm process, one
// result cache, and one set of metrics instead of each paying full
// lex/preprocess/parse/path-extraction cost per invocation.
//
// Endpoints:
//
//	POST /v1/analyze       analyze one unit (source + spec); cached
//	GET  /v1/report/{key}  fetch a cached result by content hash
//	GET  /healthz          liveness/readiness (503 while draining)
//	GET  /metrics          Prometheus text exposition
//
// Every analysis runs on a bounded guard.Gate under the configured
// per-request budgets with the engine's degradation semantics: a hostile
// unit can exhaust its own budget or crash its own slot (surfacing as a
// degraded result or a 4xx/5xx for that request), but it cannot take down
// or starve the server. Identical concurrent requests are collapsed by the
// cache's singleflight, so a thundering herd of one unit costs one
// analysis.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"pallas"
	"pallas/internal/guard"
	"pallas/internal/metrics"
	"pallas/internal/rcache"
)

// Server-specific metric names; the cache/analysis counters are the shared
// pallas.Metric* names, so batch and serve activity land in one registry.
const (
	// MetricRequests counts accepted /v1/analyze requests.
	MetricRequests = "pallas_requests_total"
	// MetricRequestErrors counts /v1/analyze requests answered with an
	// error status (bad input, overload, failed analysis).
	MetricRequestErrors = "pallas_request_errors_total"
	// MetricInFlight gauges requests currently being served.
	MetricInFlight = "pallas_in_flight"
	// MetricRequestSeconds is the /v1/analyze latency histogram.
	MetricRequestSeconds = "pallas_request_seconds"
)

// DefaultMaxRequestBytes bounds an /v1/analyze body (16 MiB) — large enough
// for any merged kernel translation unit in the corpus, small enough that a
// hostile client cannot balloon the heap with one POST.
const DefaultMaxRequestBytes = 16 << 20

// Config configures New.
type Config struct {
	// Analyzer is the engine configuration every request runs under; its
	// Deadline/MaxSteps/MaxMacroExpansions are the per-request budgets.
	Analyzer pallas.Config
	// Workers bounds concurrent analyses (not connections); <= 0 means
	// GOMAXPROCS. Requests beyond the bound queue on the gate.
	Workers int
	// CacheBytes bounds the result cache's memory tier (<= 0: rcache
	// default).
	CacheBytes int64
	// CacheDir, when non-empty, adds the persistent cache tier shared with
	// `pallas check -cache-dir`.
	CacheDir string
	// Metrics receives the server's instruments; nil means metrics.Default.
	Metrics *metrics.Registry
	// MaxRequestBytes caps an analyze body; <= 0 means
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// Server handles the HTTP API. Create with New, serve via Handler.
type Server struct {
	analyzer *pallas.Analyzer
	cache    *rcache.Cache
	gate     *guard.Gate
	reg      *metrics.Registry
	mux      *http.ServeMux
	start    time.Time
	maxBody  int64
	draining atomic.Bool

	mRequests    *metrics.Counter
	mErrors      *metrics.Counter
	mCacheHits   *metrics.Counter
	mCacheMisses *metrics.Counter
	mAnalyzed    *metrics.Counter
	mDegraded    *metrics.Counter
	gInFlight    *metrics.Gauge
	hLatency     *metrics.Histogram
}

// New builds a server (opening the cache directory when configured).
func New(cfg Config) (*Server, error) {
	cache, err := rcache.Open(rcache.Options{MaxBytes: cfg.CacheBytes, Dir: cfg.CacheDir})
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	maxBody := cfg.MaxRequestBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxRequestBytes
	}
	s := &Server{
		analyzer: pallas.New(cfg.Analyzer),
		cache:    cache,
		gate:     guard.NewGate(cfg.Workers),
		reg:      reg,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		maxBody:  maxBody,

		mRequests:    reg.Counter(MetricRequests, "accepted analyze requests"),
		mErrors:      reg.Counter(MetricRequestErrors, "analyze requests answered with an error"),
		mCacheHits:   reg.Counter(pallas.MetricCacheHits, "result-cache hits"),
		mCacheMisses: reg.Counter(pallas.MetricCacheMisses, "result-cache misses"),
		mAnalyzed:    reg.Counter(pallas.MetricUnitsAnalyzed, "analysis pipeline executions (cache and resume misses)"),
		mDegraded:    reg.Counter(pallas.MetricDegraded, "analyses that completed partially"),
		gInFlight:    reg.Gauge(MetricInFlight, "requests currently being served"),
		hLatency:     reg.Histogram(MetricRequestSeconds, "analyze latency in seconds", nil),
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/report/", s.handleReport)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (tests and the CLI stats line).
func (s *Server) Cache() *rcache.Cache { return s.cache }

// InFlight reports how many analyses currently hold a gate slot.
func (s *Server) InFlight() int64 { return s.gate.InFlight() }

// StartDrain puts the server into draining mode: /healthz flips to 503 so
// load balancers stop routing here, and new analyze requests are refused
// with 503 while in-flight ones run to completion (http.Server.Shutdown
// holds the listener open for them).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AnalyzeRequest is the /v1/analyze body.
type AnalyzeRequest struct {
	// Name identifies the unit in reports and diagnostics (a file name).
	Name string `json:"name"`
	// Source is the C source text.
	Source string `json:"source"`
	// Spec is the semantic specification document (may be empty when the
	// source carries inline `// @pallas:` annotations).
	Spec string `json:"spec,omitempty"`
}

// AnalyzeResponse is the /v1/analyze result.
type AnalyzeResponse struct {
	// Name echoes the request.
	Name string `json:"name"`
	// Key is the content-address of the result (usable with /v1/report).
	Key string `json:"key"`
	// Cache is "hit" when the report was served from the result cache
	// (including singleflight shares), "miss" when this request ran the
	// analysis.
	Cache string `json:"cache"`
	// Degraded mirrors the report's degraded flag.
	Degraded bool `json:"degraded,omitempty"`
	// Warnings counts report warnings.
	Warnings int `json:"warnings"`
	// Report is the full report JSON — byte-identical across hits of one
	// entry.
	Report json.RawMessage `json:"report"`
	// Diagnostics carries the degradation record, if any.
	Diagnostics []pallas.Diagnostic `json:"diagnostics,omitempty"`
	// ElapsedMS is the server-side handling time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.mErrors.Inc()
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.mRequests.Inc()
	s.gInFlight.Add(1)
	defer func() {
		s.gInFlight.Add(-1)
		s.hLatency.Observe(time.Since(started).Seconds())
	}()

	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" {
		req.Name = "unit.c"
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, "source is required")
		return
	}

	unit := pallas.Unit{Name: req.Name, Source: req.Source, Spec: req.Spec}
	key := s.analyzer.CacheKey(unit)
	entry, hit, err := s.cache.GetOrCompute(key, func() (*rcache.Entry, error) {
		return s.analyzeOne(unit, key)
	})
	if err != nil {
		var pe *guard.PanicError
		if errors.As(err, &pe) {
			s.fail(w, http.StatusInternalServerError, "analysis crashed: %v", err)
		} else {
			s.fail(w, http.StatusUnprocessableEntity, "analysis failed: %v", err)
		}
		return
	}
	if hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Name:        entry.Unit,
		Key:         key,
		Cache:       cacheState,
		Degraded:    entry.Degraded,
		Warnings:    entry.Warnings,
		Report:      entry.Report,
		Diagnostics: entry.Diagnostics,
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	})
}

// analyzeOne runs one real analysis on the gate — bounded concurrency,
// panic isolation, per-request budgets — and packages it as a cache entry.
func (s *Server) analyzeOne(unit pallas.Unit, key string) (*rcache.Entry, error) {
	var res *pallas.Result
	err := s.gate.Do(guard.StageServe, unit.Name, func() error {
		var aerr error
		res, aerr = s.analyzer.AnalyzeSource(unit.Name, unit.Source, unit.Spec)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	s.mAnalyzed.Inc()
	if res.Degraded() {
		s.mDegraded.Inc()
	}
	b, err := json.Marshal(res.Report)
	if err != nil {
		return nil, err
	}
	return &rcache.Entry{
		Key:         key,
		Unit:        unit.Name,
		Report:      b,
		Diagnostics: res.Diagnostics,
		Degraded:    res.Report.Degraded,
		Warnings:    len(res.Report.Warnings),
	}, nil
}

// handleReport serves a cached entry by content hash: 200 with the entry
// JSON, or 404 when neither tier holds it.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/report/")
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		s.fail(w, http.StatusBadRequest, "key must be 64 hex characters")
		return
	}
	entry, ok := s.cache.Get(key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no cached report for %s", key)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// healthBody is the /healthz payload.
type healthBody struct {
	Status        string `json:"status"`
	InFlight      int64  `json:"in_flight"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Workers       int    `json:"workers"`
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Readiness flip: a draining instance answers but advertises that
		// traffic should move elsewhere.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{
		Status:        status,
		InFlight:      s.gate.InFlight(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Workers:       s.gate.Cap(),
		CacheEntries:  s.cache.Len(),
		CacheBytes:    s.cache.Bytes(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
