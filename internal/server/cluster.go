package server

// Cluster-worker endpoints: the same Server that fronts /v1/analyze also
// speaks the coordinator's framed wire protocol, so a worker process is
// just `pallas serve` with an advertised address — one admission-control
// path, one gate, one cache for both kinds of traffic.
//
//	POST /v1/cluster/unit  one framed unit assignment → one framed result
//	GET  /v1/cluster/ping  heartbeat (JSON; 503 while draining)
//
// Unit dispatches pass through the server's admission controller like any
// analyze request: an overloaded worker sheds with 503 + Retry-After, which
// the coordinator turns into backpressure (requeue without burning a retry,
// pause the worker) instead of an eviction.

import (
	"errors"
	"net/http"
	"time"

	"pallas"
	"pallas/internal/cluster"
	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/rcache"
	"pallas/internal/rcache/peer"
)

// dropConn abandons an HTTP exchange mid-flight by hijacking and closing
// the underlying connection — the worker-side network-fault injection for
// "the link died": the coordinator sees a transport error, not a status
// code. Falls back to an empty 500 when the ResponseWriter cannot hijack.
func dropConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	w.WriteHeader(http.StatusInternalServerError)
}

// SetAdvertiseAddr records the address this worker reports in result frames
// (the address the coordinator knows it by). The shared cache tier uses the
// same identity, so coordinator-pushed peer maps that include this worker
// exclude it from its own remote operations.
func (s *Server) SetAdvertiseAddr(addr string) {
	s.advertise.Store(addr)
	s.peers.SetSelf(addr)
}

func (s *Server) advertiseAddr() string {
	if v, ok := s.advertise.Load().(string); ok {
		return v
	}
	return ""
}

// handleClusterPing is the coordinator's liveness probe. Draining answers
// 503 so the coordinator stops assigning and re-homes this worker's queue
// before the process exits.
func (s *Server) handleClusterPing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// worker-ping=drop simulates a partition on the liveness plane only:
	// heartbeats vanish while unit traffic still flows — the asymmetric
	// half-failure that distinguishes eviction bugs from crash bugs.
	if f := failpoint.Net(failpoint.WorkerPing, ""); f.Act == failpoint.NetDrop {
		dropConn(w)
		return
	}
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, cluster.PongPayload{
		Status:        status,
		InFlight:      s.gate.InFlight(),
		QueueDepth:    s.ctrl.QueueDepth(),
		UnitsDone:     s.clusterDone.Load(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

// handleClusterUnit runs one coordinator assignment: framed AssignPayload
// in, framed ResultPayload out. Malformed frames are 400, oversized 413,
// admission sheds 503 — everything else, including failed analyses, is a
// 200 carrying a result frame so the coordinator can tell "this input
// fails" (terminal) from "this worker is sick" (requeue elsewhere).
func (s *Server) handleClusterUnit(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.mShedDraining.Inc()
		s.shed(w, http.StatusServiceUnavailable, time.Second, "draining")
		return
	}
	var assign cluster.AssignPayload
	if err := cluster.DecodeFrame(http.MaxBytesReader(w, r.Body, s.maxBody), cluster.FrameAssign, &assign); err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.Is(err, cluster.ErrOversized) || errors.As(err, &tooBig):
			s.fail(w, http.StatusRequestEntityTooLarge, "frame too large: %v", err)
		default:
			s.fail(w, http.StatusBadRequest, "bad frame: %v", err)
		}
		return
	}
	if assign.Source == "" {
		s.fail(w, http.StatusBadRequest, "source is required")
		return
	}
	s.mRequests.Inc()
	s.gInFlight.Add(1)
	defer func() {
		s.gInFlight.Add(-1)
		s.hLatency.Observe(time.Since(started).Seconds())
	}()

	// Admission control is the worker's own backpressure authority: the
	// coordinator's pipeline depth is a hint, this queue is the law.
	var deadline time.Time
	if s.deadline > 0 {
		deadline = started.Add(s.deadline)
	}
	if err := s.ctrl.Acquire(r.Context(), deadline); err != nil {
		s.shedForReason(w, err)
		s.syncGauges()
		return
	}
	admitted := time.Now()
	defer func() {
		s.ctrl.Release(time.Since(admitted))
		s.syncGauges()
	}()
	s.syncGauges()

	unit := pallas.Unit{Name: assign.Unit, Source: assign.Source, Spec: assign.Spec}
	entry, hit, err := s.clusterEntry(r, unit)
	if err != nil && errors.Is(err, rcache.ErrPersist) && entry != nil {
		s.mPersistFault.Inc()
		err = nil
	}
	if err != nil {
		s.mErrors.Inc()
		s.writeResultFrame(w, assign.Unit, cluster.ResultPayload{
			Unit: assign.Unit, Hash: assign.Hash, Attempt: assign.Attempt,
			Status: "failed", Err: err.Error(), Transient: transientClusterErr(err),
			Worker: s.advertiseAddr(), Epoch: assign.Epoch,
		})
		return
	}
	if hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	s.clusterDone.Add(1)
	status, cacheState := "ok", "miss"
	if entry.Degraded {
		status = "degraded"
	}
	if hit {
		cacheState = "hit"
	}
	report, paths, sum := entry.Report, entry.Paths, entry.Sum
	if sum == "" {
		// Entry predates checksumming (old persistent tier): attest the
		// bytes as read, so at least the hops from here are covered.
		sum = rcache.ContentSum(report, paths)
	}
	// result-corrupt mangles the content bytes *after* the checksum is
	// fixed — a worker whose frames are intact but whose payload is a lie.
	// Only the end-to-end Sum, not the frame CRC, can catch this. The
	// mangling must stay valid JSON (the payload is re-marshaled into the
	// result frame), hence CorruptJSON rather than a raw byte flip.
	if f := failpoint.Net(failpoint.ResultCorrupt, assign.Unit); f.Act == failpoint.NetCorrupt {
		report = failpoint.CorruptJSON(report)
	}
	s.writeResultFrame(w, assign.Unit, cluster.ResultPayload{
		Unit: assign.Unit, Hash: assign.Hash, Attempt: assign.Attempt,
		Status: status, Report: report, Paths: paths,
		Diagnostics: entry.Diagnostics, Degraded: entry.Degraded,
		Warnings: entry.Warnings, Cache: cacheState, Worker: s.advertiseAddr(),
		Epoch: assign.Epoch, Sum: sum,
	})
}

// clusterEntry produces a cache entry with path bytes for one unit. A
// cached entry stored by plain serve traffic has no Paths (reports only);
// such a hit is upgraded in place — recomputed with paths and re-stored —
// so the shared cache converges to the richer shape.
func (s *Server) clusterEntry(r *http.Request, unit pallas.Unit) (*rcache.Entry, bool, error) {
	key := s.analyzer.CacheKey(unit)
	entry, hit, err := s.cache.GetOrCompute(key, func() (*rcache.Entry, error) {
		return s.computeUnit(r.Context(), unit, key, true)
	})
	if err != nil {
		return entry, hit, err
	}
	// A hit that carries a checksum must still match it: the entry may have
	// crossed a disk tier, a process restart, or a torn write since the
	// analysis attested it. On mismatch the entry is not trusted — fall
	// through to a fresh analysis, same as a path-less hit.
	if hit && entry.Sum != "" && entry.Sum != rcache.ContentSum(entry.Report, entry.Paths) {
		s.mSumMismatch.Inc()
	} else if !hit || len(entry.Paths) > 0 {
		return entry, hit, nil
	}
	upgraded, err := s.analyzeUnit(r.Context(), unit, key, true)
	if err != nil {
		return nil, false, err
	}
	if perr := s.cache.Put(upgraded); perr != nil && !errors.Is(perr, rcache.ErrPersist) {
		return nil, false, perr
	}
	s.peers.ReplicateRemote(peer.SpaceUnit, upgraded)
	return upgraded, false, nil
}

// writeResultFrame frames and writes a result, with the worker-send
// network-fault injection point in front: the four ways a result's trip
// home can go wrong (link death, bit corruption, duplicate delivery, a
// trickling connection), each of which the coordinator must absorb without
// changing the merged bytes.
func (s *Server) writeResultFrame(w http.ResponseWriter, unit string, res cluster.ResultPayload) {
	w.Header().Set("Content-Type", "application/octet-stream")
	f := failpoint.Net(failpoint.WorkerSend, unit)
	if f.Act == failpoint.NetNone {
		cluster.WriteFrame(w, cluster.FrameResult, res)
		return
	}
	frame, err := cluster.EncodeFrame(cluster.FrameResult, res)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "encode result: %v", err)
		return
	}
	switch f.Act {
	case failpoint.NetDrop:
		dropConn(w)
	case failpoint.NetCorrupt:
		w.Write(failpoint.Corrupt(frame)) // frame CRC catches this hop
	case failpoint.NetDup:
		w.Write(frame)
		w.Write(frame) // trailing bytes past the first frame are ignored
	case failpoint.NetDrip:
		for off := 0; off < len(frame); off += 64 {
			end := off + 64
			if end > len(frame) {
				end = len(frame)
			}
			if _, err := w.Write(frame[off:end]); err != nil {
				return
			}
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			time.Sleep(f.Sleep)
		}
	}
}

// transientClusterErr mirrors the batch engine's retry classification:
// recovered panics, budget violations and injected faults are worth a
// retry; malformed input is not.
func transientClusterErr(err error) bool {
	var pe *guard.PanicError
	return errors.As(err, &pe) || guard.IsBudget(err) || errors.Is(err, failpoint.ErrInjected)
}
