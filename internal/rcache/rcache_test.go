package rcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func entry(key, unit, report string) *Entry {
	return &Entry{Key: key, Unit: unit, Report: json.RawMessage(report)}
}

// key64 pads a short test key to the 64-char hex shape real keys have.
func key64(seed string) string {
	return (seed + strings.Repeat("0", 64))[:64]
}

func TestMemoryGetPut(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("aa")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(entry(k, "a.c", `{"target":"a.c"}`)); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(k)
	if !ok || string(e.Report) != `{"target":"a.c"}` {
		t.Fatalf("get = %+v, %v", e, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.MemHits != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c, err := Open(Options{MaxBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 300)
	keys := []string{key64("a1"), key64("b2"), key64("c3"), key64("d4")}
	for _, k := range keys {
		if err := c.Put(entry(k, "u", fmt.Sprintf(`{"p":%q}`, big))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Bytes() > 1000 {
		t.Fatalf("bytes = %d, want <= 1000", c.Bytes())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte bound")
	}
	// The oldest entries are gone, the newest survives.
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU tail survived eviction")
	}
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent entry was evicted")
	}
	// Touching an entry protects it: with room for ~3 entries, fill with
	// a,b,c, touch a, then add d — the eviction victim must be b, not a.
	c2, _ := Open(Options{MaxBytes: 1500})
	for _, k := range keys[:3] {
		c2.Put(entry(k, "u", fmt.Sprintf(`{"p":%q}`, big)))
	}
	if c2.Stats().Evictions != 0 {
		t.Fatalf("three entries should fit in 1500 bytes: %+v", c2.Stats())
	}
	c2.Get(keys[0]) // promote a to most-recent
	c2.Put(entry(key64("e5"), "u", fmt.Sprintf(`{"p":%q}`, big)))
	if _, ok := c2.Get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted before older ones")
	}
	if _, ok := c2.Get(keys[1]); ok {
		t.Fatal("LRU entry b survived; wrong eviction victim")
	}
}

func TestOversizeEntryStillCached(t *testing.T) {
	c, err := Open(Options{MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("ff")
	if err := c.Put(entry(k, "u", fmt.Sprintf(`{"p":%q}`, strings.Repeat("y", 500)))); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("oversize entry not resident")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestDiskTierPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	k := key64("ab")
	c1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(entry(k, "a.c", `{"target":"a.c","warnings":[]}`)); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same dir serves the entry from disk.
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get(k)
	if !ok || string(e.Report) != `{"target":"a.c","warnings":[]}` {
		t.Fatalf("disk tier get = %+v, %v", e, ok)
	}
	s := c2.Stats()
	if s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", s)
	}
	// The disk hit was promoted: a second get is a memory hit.
	if _, ok := c2.Get(k); !ok || c2.Stats().MemHits != 1 {
		t.Fatalf("disk hit not promoted to memory: %+v", c2.Stats())
	}
}

func TestDiskCorruptionIgnoredAndRemoved(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("cd")
	if err := c.Put(entry(k, "a.c", `{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k[:2], k+".json")

	for name, corrupt := range map[string][]byte{
		"truncated":    []byte(`{"key":"`),
		"wrong key":    []byte(`{"key":"` + key64("ee") + `","report":{"x":1}}`),
		"empty report": []byte(`{"key":"` + k + `"}`),
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, _ := Open(Options{Dir: dir})
		if _, ok := fresh.Get(k); ok {
			t.Fatalf("%s: corrupt disk entry served as a hit", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt file not removed", name)
		}
		// Restore for the next round.
		if err := c.storeDisk(entry(k, "a.c", `{"x":1}`)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("0f")
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]*Entry, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.GetOrCompute(k, func() (*Entry, error) {
				computes.Add(1)
				<-gate // hold every caller in the singleflight window
				return entry(k, "u", `{"n":1}`), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = e, hit
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", got)
	}
	nhit := 0
	for i := range results {
		if string(results[i].Report) != `{"n":1}` {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if hits[i] {
			nhit++
		}
	}
	if nhit != callers-1 {
		t.Fatalf("hits = %d, want %d (all but the leader)", nhit, callers-1)
	}
	s := c.Stats()
	if s.Computes != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 compute / 1 miss", s)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("e0")
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(k, func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is not cached: the next caller computes again and succeeds.
	e, hit, err := c.GetOrCompute(k, func() (*Entry, error) { return entry(k, "u", `{}`), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("retry after failure = %+v, hit=%v, err=%v", e, hit, err)
	}
}

func TestGetOrComputeRace(t *testing.T) {
	// Distinct keys under heavy concurrency: every key computes exactly once.
	c, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	var wg sync.WaitGroup
	const keys, callersPerKey = 8, 8
	for ki := 0; ki < keys; ki++ {
		k := key64(fmt.Sprintf("%02x", ki))
		for j := 0; j < callersPerKey; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, err := c.GetOrCompute(k, func() (*Entry, error) {
					computes.Add(1)
					return entry(k, "u", `{"k":true}`), nil
				})
				if err != nil {
					t.Error(err)
				}
			}()
		}
	}
	wg.Wait()
	if got := computes.Load(); got != keys {
		t.Fatalf("computes = %d, want %d (one per distinct key)", got, keys)
	}
}
