package rcache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/overload"
)

// TestBreakerTripsToMemoryOnlyAndRecovers drives the persistent tier
// through the full breaker cycle with injected disk faults: consecutive
// store failures trip it open (entries keep being served from memory, disk
// untouched), the cooldown admits a half-open probe, and a successful probe
// restores persistence.
func TestBreakerTripsToMemoryOnlyAndRecovers(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TierHealth(); got != "closed" {
		t.Fatalf("initial tier health = %q, want closed", got)
	}

	// Every store fails at the disk.
	if err := failpoint.Arm("cache-store=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	for i := 0; i < 3; i++ {
		k := key64(fmt.Sprintf("f%d", i))
		err := c.Put(entry(k, "u.c", `{"x":1}`))
		if !errors.Is(err, ErrPersist) {
			t.Fatalf("put %d: err = %v, want ErrPersist", i, err)
		}
		if !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("put %d must preserve the underlying cause, got %v", i, err)
		}
		// The memory tier still serves the entry.
		if _, ok := c.Get(k); !ok {
			t.Fatalf("put %d: entry lost from memory tier", i)
		}
	}
	if got := c.TierHealth(); got != "open" {
		t.Fatalf("tier health after %d faults = %q, want open", 3, got)
	}

	// Open breaker: stores are skipped (nil error, nothing written, no new
	// faults), so a failing disk costs nothing per request.
	k := key64("ee")
	if err := c.Put(entry(k, "u.c", `{"x":2}`)); err != nil {
		t.Fatalf("open-breaker put returned %v, want nil (skipped)", err)
	}
	st := c.Stats()
	if st.DiskFaults != 3 || st.BreakerSkips == 0 || st.BreakerTrips != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BreakerState != "open" {
		t.Fatalf("stats breaker state = %q", st.BreakerState)
	}

	// Disk recovers; after the cooldown the next store is the probe and
	// closes the breaker.
	failpoint.Disarm()
	time.Sleep(60 * time.Millisecond)
	if err := c.Put(entry(key64("ab"), "u.c", `{"x":3}`)); err != nil {
		t.Fatalf("probe put: %v", err)
	}
	if got := c.TierHealth(); got != "closed" {
		t.Fatalf("tier health after probe = %q, want closed", got)
	}

	// Persistence is really back: a second cache over the same dir sees the
	// post-recovery entry but not the ones written while open/failing.
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key64("ab")); !ok {
		t.Fatal("post-recovery entry not persisted")
	}
	if _, ok := c2.Get(key64("ee")); ok {
		t.Fatal("open-breaker store leaked to disk")
	}
}

// TestBreakerLoadFaults proves read-path faults also count toward the trip
// and an open breaker stops touching the disk on reads.
func TestBreakerLoadFaults(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry(key64("aa"), "u.c", `{"x":1}`)); err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Arm("cache-load=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	// Fresh cache over the same dir: memory tier empty, every Get goes to
	// the (failing) disk and misses.
	c2, err := Open(Options{Dir: dir, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := c2.Get(key64("aa")); ok {
			t.Fatal("faulting disk must read as a miss, never a bad entry")
		}
	}
	if got := c2.TierHealth(); got != "open" {
		t.Fatalf("tier health = %q, want open after %d read faults", got, 2)
	}
	st := c2.Stats()
	if st.DiskFaults != 2 || st.BreakerTrips != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Open: reads skip the disk (failpoint would fire if touched) and the
	// skip counter moves.
	c2.Get(key64("aa"))
	if c2.Stats().BreakerSkips == 0 {
		t.Fatal("open breaker did not skip the disk read")
	}
}

// TestBreakerDisabledAndMemoryOnly pins TierHealth for the degenerate
// configurations.
func TestBreakerDisabledAndMemoryOnly(t *testing.T) {
	mem, _ := Open(Options{})
	if got := mem.TierHealth(); got != "memory-only" {
		t.Fatalf("memory-only health = %q", got)
	}
	dis, err := Open(Options{Dir: t.TempDir(), BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dis.breaker != nil {
		t.Fatal("negative threshold must disable the breaker")
	}
	if got := dis.TierHealth(); got != "closed" {
		t.Fatalf("disabled-breaker health = %q, want closed", got)
	}
	if err := failpoint.Arm("cache-store=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	// Without a breaker every store keeps hitting the disk and failing.
	for i := 0; i < overload.DefaultBreakerThreshold+2; i++ {
		if err := dis.Put(entry(key64(fmt.Sprintf("d%d", i)), "u.c", `{"x":1}`)); !errors.Is(err, ErrPersist) {
			t.Fatalf("disabled breaker put %d: %v", i, err)
		}
	}
	if got := dis.TierHealth(); got != "closed" {
		t.Fatalf("disabled breaker must never open, got %q", got)
	}
}

// TestMissesStayCheapWhileOpen documents that an open breaker turns Get
// misses into pure memory lookups — the x-per-request disk tax of a bad
// disk disappears.
func TestMissesStayCheapWhileOpen(t *testing.T) {
	c, err := Open(Options{Dir: t.TempDir(), BreakerThreshold: 1, BreakerCooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("cache-store=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()
	c.Put(entry(key64("aa"), "u.c", `{"x":1}`)) // trips (threshold 1)
	if c.TierHealth() != "open" {
		t.Fatalf("health = %q", c.TierHealth())
	}
	before := c.Stats().BreakerSkips
	for i := 0; i < 5; i++ {
		c.Get(key64("bb")) // miss; must not reach the disk
	}
	if got := c.Stats().BreakerSkips - before; got != 5 {
		t.Fatalf("breaker skips for 5 open-state misses = %d, want 5", got)
	}
}
