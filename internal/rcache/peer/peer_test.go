package peer

// Tier semantics under a live (httptest-backed) wire: routing, end-to-end
// verification, read repair, hinted handoff, epoch fencing, and breaker
// isolation. Each "node" is a real Tier serving the real frame protocol, so
// these tests cover the same code paths the server handlers drive.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pallas/internal/cluster"
	"pallas/internal/metrics"
	"pallas/internal/rcache"
)

// node is one tier plus the HTTP endpoints a real worker would host for it.
type node struct {
	tier  *Tier
	cache *rcache.Cache
	addr  string
	srv   *httptest.Server
}

// serveTier exposes a tier's ServeGet/ServePut over the real frame wire —
// a minimal stand-in for internal/server's peercache handlers.
func serveTier(t *Tier) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(GetPath, func(w http.ResponseWriter, r *http.Request) {
		var get cluster.PeerGetPayload
		if err := cluster.DecodeFrame(r.Body, cluster.FramePeerGet, &get); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		entry, found, stale := t.ServeGet(get.Space, get.Key, get.Epoch)
		if stale {
			http.Error(w, "stale epoch", http.StatusConflict)
			return
		}
		cluster.WriteFrame(w, cluster.FramePeerEntry, cluster.PeerEntryPayload{
			Key: get.Key, Found: found, Entry: entry, Epoch: t.Epoch(),
		})
	})
	mux.HandleFunc(PutPath, func(w http.ResponseWriter, r *http.Request) {
		var put cluster.PeerPutPayload
		if err := cluster.DecodeFrame(r.Body, cluster.FramePeerPut, &put); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		stale, err := t.ServePut(put.Space, put.Key, put.Entry, put.Epoch)
		if stale {
			http.Error(w, "stale epoch", http.StatusConflict)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func newNode(t *testing.T, opts Options) *node {
	t.Helper()
	c, err := rcache.Open(rcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	if opts.DrainInterval == 0 {
		opts.DrainInterval = time.Hour // tests drain explicitly via DrainOnce
	}
	tier := New(c, opts)
	srv := httptest.NewServer(serveTier(tier))
	addr := strings.TrimPrefix(srv.URL, "http://")
	tier.SetSelf(addr)
	t.Cleanup(func() { srv.Close(); tier.Close() })
	return &node{tier: tier, cache: c, addr: addr, srv: srv}
}

// mesh updates every node with one map over all the nodes' addresses.
func mesh(epoch int64, replicas int, nodes ...*node) {
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	for _, n := range nodes {
		n.tier.Update(cluster.PeerMap{Epoch: epoch, Peers: addrs, Replicas: replicas})
	}
}

func mkEntry(key, report string) *rcache.Entry {
	e := &rcache.Entry{Key: key, Unit: key[:8] + ".c", Report: []byte(report), Warnings: 1}
	e.Sum = rcache.ContentSum(e.Report, e.Paths)
	return e
}

func key64(seed string) string { return (seed + strings.Repeat("0", 64))[:64] }

// keyWithOwners searches for a key whose remote owner set, from viewer's
// perspective, is exactly want (in ring order).
func keyWithOwners(t *testing.T, viewer *node, want ...string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := key64(fmt.Sprintf("%x", i))
		owners, _ := viewer.tier.owners(k)
		if len(owners) != len(want) {
			continue
		}
		match := true
		for j := range want {
			if owners[j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return k
		}
	}
	t.Fatalf("no key found with owners %v", want)
	return ""
}

func TestInertTierDegradesToLocal(t *testing.T) {
	n := newNode(t, Options{})
	if n.tier.Enabled() {
		t.Fatal("tier with no peers reports enabled")
	}
	k := key64("aa")
	if _, ok := n.tier.Get(SpaceUnit, k); ok {
		t.Fatal("inert tier invented an entry")
	}
	e := mkEntry(k, `{"w":1}`)
	if err := n.tier.Put(SpaceUnit, e); err != nil {
		t.Fatalf("inert put: %v", err)
	}
	if got, ok := n.tier.Get(SpaceUnit, k); !ok || got.Key != k {
		t.Fatal("local round trip through inert tier failed")
	}
	if st := n.tier.Stats(); st.Puts != 0 || st.Hits != 0 {
		t.Fatalf("inert tier counted remote activity: %+v", st)
	}
}

func TestRemoteHitVerifiedAndPromoted(t *testing.T) {
	a := newNode(t, Options{})
	b := newNode(t, Options{})
	mesh(1, 2, a, b)

	k := key64("ab")
	e := mkEntry(k, `{"warnings":["w"]}`)
	if err := a.cache.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := b.tier.Get(SpaceUnit, k)
	if !ok || string(got.Report) != string(e.Report) || got.Sum != e.Sum {
		t.Fatalf("remote hit: ok=%v entry=%+v", ok, got)
	}
	if st := b.tier.Stats(); st.Hits != 1 || st.RotRefusals != 0 {
		t.Fatalf("stats after verified hit: %+v", st)
	}
	// Promoted: a second Get is served locally, no new remote hit.
	if _, ok := b.tier.Get(SpaceUnit, k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := b.tier.Stats(); st.Hits != 1 {
		t.Fatalf("second get went remote: %+v", st)
	}
}

func TestRottedEntryRefusedAsMiss(t *testing.T) {
	a := newNode(t, Options{})
	b := newNode(t, Options{})
	mesh(1, 2, a, b)

	k := key64("cd")
	rot := mkEntry(k, `{"warnings":["w"]}`)
	rot.Sum = "deadbeef" // sum no longer matches the content
	if err := a.cache.Put(rot); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.tier.Get(SpaceUnit, k); ok {
		t.Fatal("rotted remote entry was accepted")
	}
	st := b.tier.Stats()
	if st.RotRefusals != 1 || st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("rot must count refusal+miss, got %+v", st)
	}
}

func TestReplicationAndReadRepair(t *testing.T) {
	a := newNode(t, Options{})
	b := newNode(t, Options{})
	c := newNode(t, Options{})
	mesh(1, 2, a, b, c)

	// A key whose owners from c's view are [a, b]: a misses, b will hit, and
	// the hit must repair a.
	k := keyWithOwners(t, c, a.addr, b.addr)
	e := mkEntry(k, `{"warnings":[]}`)
	if err := b.cache.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.tier.Get(SpaceUnit, k); !ok {
		t.Fatal("second replica should have answered")
	}
	st := c.tier.Stats()
	if st.Hits != 1 || st.Repairs != 1 {
		t.Fatalf("want 1 hit + 1 repair, got %+v", st)
	}
	if _, ok := a.cache.Get(k); !ok {
		t.Fatal("read repair did not restore the first replica")
	}

	// Put replicates to both remote owners (opposite ring order, so it is a
	// different key than the read-repair one).
	k2 := keyWithOwners(t, c, b.addr, a.addr)
	e2 := mkEntry(k2, `{"warnings":["x"]}`)
	if err := c.tier.Put(SpaceUnit, e2); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.cache.Get(k2); !ok {
		t.Fatal("replicated put missing on first owner")
	}
	if _, ok := b.cache.Get(k2); !ok {
		t.Fatal("replicated put missing on second owner")
	}
}

func TestEpochFencing(t *testing.T) {
	n := newNode(t, Options{})
	if !n.tier.Update(cluster.PeerMap{Epoch: 5, Peers: []string{n.addr, "127.0.0.1:1"}, Replicas: 2}) {
		t.Fatal("fresh epoch refused")
	}
	if n.tier.Update(cluster.PeerMap{Epoch: 5, Peers: []string{n.addr}}) {
		t.Fatal("equal epoch applied")
	}
	if n.tier.Update(cluster.PeerMap{Epoch: 4, Peers: []string{n.addr}}) {
		t.Fatal("older epoch applied")
	}
	if n.tier.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", n.tier.Epoch())
	}

	// Serve side: a sender with an older epoch is refused (zombie fencing);
	// a newer one is served.
	if _, _, stale := n.tier.ServeGet(SpaceUnit, key64("aa"), 4); !stale {
		t.Fatal("older sender epoch not refused")
	}
	if _, _, stale := n.tier.ServeGet(SpaceUnit, key64("aa"), 6); stale {
		t.Fatal("newer sender epoch refused")
	}
	if stale, _ := n.tier.ServePut(SpaceUnit, key64("aa"), []byte(`{}`), 3); !stale {
		t.Fatal("older sender put not refused")
	}
	if st := n.tier.Stats(); st.StaleRefusals != 2 {
		t.Fatalf("StaleRefusals = %d, want 2", st.StaleRefusals)
	}
}

func TestServePutRefusesRotAndSumless(t *testing.T) {
	n := newNode(t, Options{})
	k := key64("ee")

	rot := mkEntry(k, `{"warnings":[]}`)
	rot.Sum = "feedface"
	if _, err := n.tier.ServePut(SpaceUnit, k, mustJSON(t, rot), 0); err == nil {
		t.Fatal("rotted replicated write accepted")
	}
	sumless := &rcache.Entry{Key: k, Report: []byte(`{"warnings":[]}`)}
	if _, err := n.tier.ServePut(SpaceUnit, k, mustJSON(t, sumless), 0); err == nil {
		t.Fatal("sumless replicated write accepted (replication wire always carries sums)")
	}
	if _, ok := n.cache.Get(k); ok {
		t.Fatal("refused write reached the local cache")
	}
	good := mkEntry(k, `{"warnings":[]}`)
	if _, err := n.tier.ServePut(SpaceUnit, k, mustJSON(t, good), 0); err != nil {
		t.Fatalf("valid replicated write refused: %v", err)
	}
	if _, ok := n.cache.Get(k); !ok {
		t.Fatal("valid write missing from local cache")
	}
	if st := n.tier.Stats(); st.RotRefusals != 2 {
		t.Fatalf("RotRefusals = %d, want 2", st.RotRefusals)
	}
}

func TestHintedHandoffDrainsWhenPeerReturns(t *testing.T) {
	// Reserve an address for the peer, then shut it down before any write.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	writer := newNode(t, Options{BreakerThreshold: -1})
	peerCache, err := rcache.Open(rcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	peerTier := New(peerCache, Options{Registry: metrics.NewRegistry(), DrainInterval: time.Hour})
	defer peerTier.Close()
	for _, tr := range []*Tier{writer.tier, peerTier} {
		tr.Update(cluster.PeerMap{Epoch: 1, Peers: []string{writer.addr, deadAddr}, Replicas: 2})
	}

	k := key64("ba")
	e := mkEntry(k, `{"warnings":["h"]}`)
	writer.tier.Put(SpaceUnit, e)
	st := writer.tier.Stats()
	if st.HandoffQueued != 1 || st.HandoffPending != 1 {
		t.Fatalf("write to dead peer must queue a hint, got %+v", st)
	}

	// Coalesce: a newer write of the same key replaces the queued hint.
	writer.tier.Put(SpaceUnit, mkEntry(k, `{"warnings":["h2"]}`))
	if st := writer.tier.Stats(); st.HandoffQueued != 1 || st.HandoffPending != 1 {
		t.Fatalf("same-key hint must coalesce, got %+v", st)
	}

	// Peer returns on the reserved address; a drain pass delivers the hint.
	ln2, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	revived := &http.Server{Handler: serveTier(peerTier)}
	go revived.Serve(ln2)
	defer revived.Close()
	peerTier.SetSelf(deadAddr)

	if n := writer.tier.DrainOnce(); n != 1 {
		t.Fatalf("DrainOnce delivered %d, want 1", n)
	}
	got, ok := peerCache.Get(k)
	if !ok || string(got.Report) != `{"warnings":["h2"]}` {
		t.Fatalf("drained hint must carry the latest write, got ok=%v %+v", ok, got)
	}
	st = writer.tier.Stats()
	if st.HandoffDrained != 1 || st.HandoffPending != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

func TestHandoffByteBoundDropsOldest(t *testing.T) {
	n := newNode(t, Options{BreakerThreshold: -1, HandoffMaxBytes: 600})
	n.tier.Update(cluster.PeerMap{Epoch: 1, Peers: []string{n.addr, "127.0.0.1:1"}, Replicas: 2})
	for i := 0; i < 10; i++ {
		n.tier.ReplicateRemote(SpaceUnit, mkEntry(key64(fmt.Sprintf("%02x", i)), `{"warnings":["padpadpadpad"]}`))
	}
	st := n.tier.Stats()
	if st.HandoffDropped == 0 {
		t.Fatalf("byte bound never dropped: %+v", st)
	}
	if st.HandoffBytes > 600 {
		t.Fatalf("HandoffBytes %d exceeds bound", st.HandoffBytes)
	}
	if st.HandoffPending == 0 {
		t.Fatal("bound must keep the newest hints, not empty the queue")
	}
}

func TestBreakerSkipsDeadPeerAfterTrips(t *testing.T) {
	n := newNode(t, Options{BreakerThreshold: 2, BreakerCooldown: time.Hour, OpTimeout: 50 * time.Millisecond})
	n.tier.Update(cluster.PeerMap{Epoch: 1, Peers: []string{n.addr, "127.0.0.1:1"}, Replicas: 2})

	k := key64("dd")
	for i := 0; i < 4; i++ {
		n.tier.Get(SpaceUnit, k)
	}
	st := n.tier.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("dead peer never tripped its breaker: %+v", st)
	}
	if st.BreakerSkips == 0 {
		t.Fatalf("tripped breaker never skipped an op: %+v", st)
	}
	if st.Misses != 4 {
		t.Fatalf("every lookup must still complete as a miss, got %+v", st)
	}
}

func TestUpdateDropsHintsOfRemovedPeers(t *testing.T) {
	n := newNode(t, Options{BreakerThreshold: -1})
	gone := "127.0.0.1:1"
	n.tier.Update(cluster.PeerMap{Epoch: 1, Peers: []string{n.addr, gone}, Replicas: 2})
	n.tier.ReplicateRemote(SpaceUnit, mkEntry(key64("aa"), `{"w":1}`))
	if st := n.tier.Stats(); st.HandoffPending != 1 {
		t.Fatalf("setup: want 1 pending hint, got %+v", st)
	}
	n.tier.Update(cluster.PeerMap{Epoch: 2, Peers: []string{n.addr}, Replicas: 2})
	st := n.tier.Stats()
	if st.HandoffPending != 0 || st.HandoffDropped != 1 || st.HandoffBytes != 0 {
		t.Fatalf("removed peer's hints must drop, got %+v", st)
	}
}

func TestIncrSpaceSharesTheWire(t *testing.T) {
	a := newNode(t, Options{})
	b := newNode(t, Options{})
	incrA, err := rcache.Open(rcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	incrB, err := rcache.Open(rcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.tier.Register(SpaceIncr, incrA)
	b.tier.Register(SpaceIncr, incrB)
	mesh(1, 2, a, b)

	k := key64("fe")
	e := mkEntry(k, `{"funcs":{}}`)
	if err := a.tier.Put(SpaceIncr, e); err != nil {
		t.Fatal(err)
	}
	// The entry landed in a's incr cache and replicated into b's — not into
	// either unit cache.
	if _, ok := b.tier.Get(SpaceIncr, k); !ok {
		t.Fatal("incr entry not shared across the tier")
	}
	if _, ok := a.cache.Get(k); ok {
		t.Fatal("incr entry leaked into the unit space")
	}
	if _, ok := b.cache.Get(k); ok {
		t.Fatal("incr entry leaked into the remote unit space")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
