// Package peer is the shared cluster cache tier: it federates the
// worker-local rcache tiers (unit result cache and incr function memo) into
// one logical cache over consistent-hash key routing, so a unit analyzed —
// or a function memoized — on any worker warms the whole fleet.
//
// The design center is robustness, not throughput: the tier is an
// accelerator that must never become a dependency. Every remote operation
// carries a strict per-op deadline and degrades to the local tiers on any
// miss, timeout, refusal, or corruption — a peer being slow, dead,
// partitioned, or lying can cost a re-analysis, never a wrong byte or a
// blocked run. Concretely:
//
//   - routing: keys are placed on a consistent-hash ring (cluster.Ring)
//     over the fleet's cache endpoints with a configurable replication
//     factor (default 2), so each key has a stable owner set;
//   - per-peer circuit breakers: a peer that keeps failing is skipped
//     entirely until a cooldown probe succeeds (the rcache persistent-tier
//     state machine, one per peer), so a dead peer costs a handful of
//     timeouts, not one per lookup;
//   - verification: every remote hit is re-verified against its embedded
//     content checksum (rcache.ContentSum) before use; a rotted entry is
//     refused, counted, and treated as a miss — and read-repair pushes the
//     good replica back to the owner that missed or rotted;
//   - hinted handoff: a replicated write owed to an unreachable peer is
//     queued locally (byte-bounded, oldest dropped first) and drained when
//     the peer returns, so a brief outage does not leave a replica
//     permanently cold;
//   - fenced epochs: the routing map carries a monotonic epoch
//     (coordinator-bumped on every membership change); receivers refuse
//     peer ops from senders with an older epoch, so a rejoining zombie
//     cannot serve or seed entries under stale routing.
//
// The tier carries multiple named key spaces over one wire: "unit" (the
// content-addressed result cache) and "incr" (the function-level memo),
// each backed by its own local rcache. Keys are content hashes in both
// spaces, so cross-space collision is impossible by construction.
package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pallas/internal/cluster"
	"pallas/internal/failpoint"
	"pallas/internal/metrics"
	"pallas/internal/overload"
	"pallas/internal/rcache"
)

// Key spaces carried by the tier. A space names which local cache a key
// lives in; the wire payloads carry it so one endpoint pair serves both.
const (
	// SpaceUnit is the content-addressed unit result cache (rcache).
	SpaceUnit = "unit"
	// SpaceIncr is the function-level memo store (internal/incr).
	SpaceIncr = "incr"
)

// Defaults. The op timeout is deliberately tight: a peer fetch competes
// with just re-analyzing the unit locally, and the tier must degrade to
// that long before a human notices a stall.
const (
	DefaultReplicas        = 2
	DefaultOpTimeout       = 250 * time.Millisecond
	DefaultHandoffMaxBytes = 32 << 20
	DefaultDrainInterval   = 500 * time.Millisecond
)

// GetPath and PutPath are the HTTP endpoints peers call on each other,
// hosted by each worker's serve engine on its main listener (so peer ops
// share the gate/admission path with every other request).
const (
	GetPath = "/v1/cluster/cache/get"
	PutPath = "/v1/cluster/cache/put"
	MapPath = cluster.PeerMapPath
)

// Options configures New.
type Options struct {
	// Self is this process's own cache address (host:port of its serve
	// listener). Self is excluded from remote operations — the local tiers
	// are always consulted first — but participates in ring ownership so
	// every peer routes identically.
	Self string
	// Replicas is the replication factor: how many ring owners each key
	// has. <= 0 means DefaultReplicas.
	Replicas int
	// OpTimeout is the per-operation deadline for one remote get or put.
	// <= 0 means DefaultOpTimeout.
	OpTimeout time.Duration
	// HandoffMaxBytes bounds the total bytes of queued hinted-handoff
	// writes across all peers; beyond it the oldest hints are dropped
	// (the entry still lives in the writer's local tiers, so a dropped
	// hint costs a future remote miss, never data). <= 0 means
	// DefaultHandoffMaxBytes.
	HandoffMaxBytes int64
	// DrainInterval is how often the background drain loop retries queued
	// hints against recovered peers. <= 0 means DefaultDrainInterval.
	DrainInterval time.Duration
	// BreakerThreshold and BreakerCooldown configure each peer's circuit
	// breaker (consecutive failures to trip; how long tripped ops are
	// skipped before a probe). Zero means the overload defaults; a
	// negative threshold disables per-peer breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped peer stays skipped before one
	// probe operation is allowed through.
	BreakerCooldown time.Duration
	// Registry receives the pallas_peer_* instruments; nil means
	// metrics.Default.
	Registry *metrics.Registry
	// Client is the HTTP client for peer ops; nil builds one with sane
	// pooled-connection defaults.
	Client *http.Client
}

// Stats is a point-in-time snapshot of tier activity.
type Stats struct {
	// Hits counts lookups answered by a remote peer after verification.
	Hits int64
	// Misses counts lookups that fell through every reachable replica.
	Misses int64
	// RotRefusals counts remote entries refused for a content-sum mismatch.
	RotRefusals int64
	// Repairs counts read-repair writes pushed to a replica that missed or
	// served rot.
	Repairs int64
	// Puts and PutBytes count replicated writes delivered and their payload
	// bytes (replication overhead).
	Puts     int64
	PutBytes int64
	// Timeouts counts remote ops abandoned at the per-op deadline.
	Timeouts int64
	// BreakerSkips counts remote ops skipped because the peer's breaker was
	// open.
	BreakerSkips int64
	// BreakerTrips counts per-peer breaker openings.
	BreakerTrips int64
	// HandoffQueued / HandoffDrained / HandoffDropped count hinted-handoff
	// writes queued for an unreachable peer, delivered after it returned,
	// and dropped to the byte bound (or to peer removal).
	HandoffQueued  int64
	HandoffDrained int64
	HandoffDropped int64
	// HandoffPending / HandoffBytes describe the queue right now.
	HandoffPending int
	HandoffBytes   int64
	// StaleRefusals counts peer ops this process refused because the
	// sender's ring epoch was older than ours (zombie fencing, serve side).
	StaleRefusals int64
	// Epoch is the tier's current ring epoch; Peers the current endpoint
	// count (including self).
	Epoch int64
	Peers int
}

// hint is one queued hinted-handoff write.
type hint struct {
	space string
	key   string
	entry []byte // marshaled rcache.Entry
}

// peerState is the per-peer bookkeeping: breaker plus handoff queue.
type peerState struct {
	breaker *overload.Breaker // nil when disabled
	hints   []*hint
	bytes   int64
}

// Tier is the shared cache tier. All methods are safe for concurrent use.
// A zero-peer tier (no Update yet, or a single-node map) is valid and
// inert: every operation short-circuits to the local caches.
type Tier struct {
	self            string
	opTimeout       time.Duration
	handoffMax      int64
	drainEvery      time.Duration
	breakerThresh   int
	breakerCooldown time.Duration
	client          *http.Client

	mu       sync.Mutex
	spaces   map[string]*rcache.Cache
	ring     *cluster.Ring
	replicas int
	epoch    int64
	peers    map[string]*peerState
	stats    Stats
	closed   bool

	drainStop chan struct{}
	drainDone chan struct{}

	mHits, mMisses, mRot, mRepairs      *metrics.Counter
	mPuts, mPutBytes, mTimeouts, mTrips *metrics.Counter
	mQueued, mDrained, mDropped, mStale *metrics.Counter
	mEpoch                              *metrics.Gauge
}

// New builds a tier over the given local unit cache. More spaces (the incr
// memo) attach through Register; routing arrives through Update. The tier
// starts inert — no peers, epoch 0 — which is exactly the degraded mode it
// falls back to under a full partition.
func New(local *rcache.Cache, opts Options) *Tier {
	if opts.Replicas <= 0 {
		opts.Replicas = DefaultReplicas
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = DefaultOpTimeout
	}
	if opts.HandoffMaxBytes <= 0 {
		opts.HandoffMaxBytes = DefaultHandoffMaxBytes
	}
	if opts.DrainInterval <= 0 {
		opts.DrainInterval = DefaultDrainInterval
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	t := &Tier{
		self:            opts.Self,
		opTimeout:       opts.OpTimeout,
		handoffMax:      opts.HandoffMaxBytes,
		drainEvery:      opts.DrainInterval,
		breakerThresh:   opts.BreakerThreshold,
		breakerCooldown: opts.BreakerCooldown,
		client:          client,
		spaces:          map[string]*rcache.Cache{},
		replicas:        opts.Replicas,
		peers:           map[string]*peerState{},
		drainStop:       make(chan struct{}),
		drainDone:       make(chan struct{}),

		mHits:     reg.Counter(metrics.MetricPeerHits, "cache lookups answered by a remote peer after verification"),
		mMisses:   reg.Counter(metrics.MetricPeerMisses, "cache lookups that fell through every reachable replica"),
		mRot:      reg.Counter(metrics.MetricPeerRotRefusals, "remote entries refused for a content checksum mismatch"),
		mRepairs:  reg.Counter(metrics.MetricPeerRepairs, "read-repair writes to a replica that missed or rotted"),
		mPuts:     reg.Counter(metrics.MetricPeerPuts, "replicated cache writes delivered to owner peers"),
		mPutBytes: reg.Counter(metrics.MetricPeerPutBytes, "payload bytes shipped in replicated writes"),
		mTimeouts: reg.Counter(metrics.MetricPeerTimeouts, "peer ops abandoned at the per-op deadline"),
		mTrips:    reg.Counter(metrics.MetricPeerBreakerTrips, "per-peer circuit breaker trips"),
		mQueued:   reg.Counter(metrics.MetricPeerHandoffQueued, "writes queued as hints for an unreachable peer"),
		mDrained:  reg.Counter(metrics.MetricPeerHandoffDrained, "hints delivered after their peer returned"),
		mDropped:  reg.Counter(metrics.MetricPeerHandoffDropped, "hints dropped to the handoff byte bound"),
		mStale:    reg.Counter(metrics.MetricPeerStaleEpochRefusals, "peer ops refused for a stale sender epoch"),
		mEpoch:    reg.Gauge(metrics.MetricPeerEpoch, "current ring epoch of the shared cache tier"),
	}
	if local != nil {
		t.spaces[SpaceUnit] = local
	}
	go t.drainLoop()
	return t
}

// Register attaches a local cache as the backing store of a key space
// (SpaceIncr for the function memo). Safe to call at any time; a space may
// be registered once.
func (t *Tier) Register(space string, local *rcache.Cache) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.spaces[space]; !dup && local != nil {
		t.spaces[space] = local
	}
}

// SetSelf fixes this process's own cache address once it is known (workers
// bind ephemeral ports, so the address exists only after listen).
func (t *Tier) SetSelf(addr string) {
	t.mu.Lock()
	t.self = addr
	t.mu.Unlock()
}

// Update replaces the tier's routing with a newer peer map, returning
// whether it was applied. A map whose epoch is not strictly newer is
// refused — the fence that keeps a zombie's stale push from regressing the
// ring. Peer state (breaker history, queued hints) survives for endpoints
// present in both maps; hints owed to removed peers are dropped (their
// entries still live in local tiers).
func (t *Tier) Update(pm cluster.PeerMap) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pm.Epoch <= t.epoch || t.closed {
		return false
	}
	t.epoch = pm.Epoch
	t.mEpoch.Set(pm.Epoch)
	if pm.Replicas > 0 {
		t.replicas = pm.Replicas
	}
	t.ring = cluster.NewRing(pm.Peers...)
	next := make(map[string]*peerState, len(pm.Peers))
	for _, addr := range pm.Peers {
		if addr == t.self {
			continue
		}
		if ps, ok := t.peers[addr]; ok {
			next[addr] = ps
			continue
		}
		ps := &peerState{}
		if t.breakerThresh >= 0 {
			ps.breaker = overload.NewBreaker(t.breakerThresh, t.breakerCooldown)
		}
		next[addr] = ps
	}
	for addr, ps := range t.peers {
		if _, kept := next[addr]; !kept {
			t.stats.HandoffDropped += int64(len(ps.hints))
			t.stats.HandoffBytes -= ps.bytes
			for range ps.hints {
				t.mDropped.Inc()
			}
		}
	}
	t.peers = next
	return true
}

// Epoch returns the tier's current ring epoch.
func (t *Tier) Epoch() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Enabled reports whether the tier has at least one remote peer to talk to.
func (t *Tier) Enabled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers) > 0
}

// Close stops the drain loop. Queued hints are dropped (counted); local
// caches are untouched.
func (t *Tier) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	for _, ps := range t.peers {
		t.stats.HandoffDropped += int64(len(ps.hints))
		for range ps.hints {
			t.mDropped.Inc()
		}
		t.stats.HandoffBytes -= ps.bytes
		ps.hints, ps.bytes = nil, 0
	}
	t.mu.Unlock()
	close(t.drainStop)
	<-t.drainDone
}

// Stats returns a snapshot of tier activity.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Epoch = t.epoch
	if t.ring != nil {
		s.Peers = t.ring.Len()
	}
	for _, ps := range t.peers {
		s.HandoffPending += len(ps.hints)
		if ps.breaker != nil {
			s.BreakerTrips += ps.breaker.Trips()
		}
	}
	return s
}

// local returns the cache backing a space (nil for an unregistered one).
func (t *Tier) local(space string) *rcache.Cache {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spaces[space]
}

// owners snapshots the remote owner set for key: the first replicas ring
// owners, self excluded, each paired with its breaker. Also returns the
// current epoch.
func (t *Tier) owners(key string) ([]string, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil || len(t.peers) == 0 {
		return nil, t.epoch
	}
	all := t.ring.Owners(key, t.replicas)
	out := make([]string, 0, len(all))
	for _, addr := range all {
		if addr != t.self {
			out = append(out, addr)
		}
	}
	return out, t.epoch
}

// Get returns the entry for key, consulting the local tiers first and then
// the key's remote replicas in ring order. A verified remote hit is
// promoted into the local cache and read-repaired onto any earlier replica
// that missed or served rot. Every failure mode — unreachable peer, per-op
// timeout, shed, stale-epoch refusal, checksum rot — degrades to the next
// replica and finally to a miss; Get never blocks beyond
// replicas × OpTimeout and never returns an unverified entry from the wire.
func (t *Tier) Get(space, key string) (*rcache.Entry, bool) {
	local := t.local(space)
	if local == nil {
		return nil, false
	}
	if e, ok := local.Get(key); ok {
		return e, true
	}
	e, ok := t.FetchRemote(space, key)
	if !ok {
		return nil, false
	}
	_ = local.Put(e) // promote; a persist fault only costs durability
	return e, true
}

// FetchRemote consults only the key's remote replicas (no local lookup, no
// local promotion), for callers that compose the tier with their own local
// layer — the server's singleflight runs FetchRemote inside GetOrCompute,
// whose own Put promotes the result. Verification and read-repair behave
// as in Get.
func (t *Tier) FetchRemote(space, key string) (*rcache.Entry, bool) {
	owners, epoch := t.owners(key)
	if len(owners) == 0 {
		return nil, false
	}
	var repair []string // replicas owed a read-repair copy
	for _, addr := range owners {
		ps := t.peer(addr)
		if ps == nil {
			continue
		}
		if ps.breaker != nil && !ps.breaker.Allow() {
			t.count(func(s *Stats) { s.BreakerSkips++ })
			continue
		}
		e, outcome := t.fetch(addr, space, key, epoch)
		t.settle(ps, outcome)
		switch outcome {
		case fetchHit:
			t.count(func(s *Stats) { s.Hits++ })
			t.mHits.Inc()
			t.readRepair(space, key, e, repair, epoch)
			return e, true
		case fetchMiss, fetchRot:
			repair = append(repair, addr)
		}
	}
	t.count(func(s *Stats) { s.Misses++ })
	t.mMisses.Inc()
	return nil, false
}

// Put stores an entry locally and replicates it to the key's remote
// owners. The local write is authoritative — its error (persistence fault)
// is the return value; replication failures are absorbed into hinted
// handoff and surface only as counters.
func (t *Tier) Put(space string, e *rcache.Entry) error {
	local := t.local(space)
	if local == nil {
		return fmt.Errorf("peer: unregistered space %q", space)
	}
	perr := local.Put(e)
	t.ReplicateRemote(space, e)
	return perr
}

// ReplicateRemote delivers an entry to its remote ring owners without
// touching the local tiers, for callers whose local layer already holds it.
// Unreachable owners are owed a hinted handoff.
func (t *Tier) ReplicateRemote(space string, e *rcache.Entry) {
	owners, epoch := t.owners(e.Key)
	if len(owners) == 0 {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	for _, addr := range owners {
		t.replicate(addr, space, e.Key, b, epoch)
	}
}

// replicate delivers one entry to one owner, queueing a hint on any
// failure (breaker-open included: a tripped peer is by definition owed its
// writes for later).
func (t *Tier) replicate(addr, space, key string, entry []byte, epoch int64) {
	ps := t.peer(addr)
	if ps == nil {
		return
	}
	if ps.breaker != nil && !ps.breaker.Allow() {
		t.count(func(s *Stats) { s.BreakerSkips++ })
		t.enqueueHint(addr, &hint{space: space, key: key, entry: entry})
		return
	}
	outcome := t.sendPut(addr, space, key, entry, epoch)
	t.settle(ps, outcome)
	if outcome == fetchHit {
		t.count(func(s *Stats) { s.Puts++; s.PutBytes += int64(len(entry)) })
		t.mPuts.Inc()
		t.mPutBytes.Add(int64(len(entry)))
		return
	}
	t.enqueueHint(addr, &hint{space: space, key: key, entry: entry})
}

// readRepair pushes a verified entry to the replicas that should have had
// it but answered miss or rot, restoring the replication factor.
func (t *Tier) readRepair(space, key string, e *rcache.Entry, owed []string, epoch int64) {
	if len(owed) == 0 {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	for _, addr := range owed {
		ps := t.peer(addr)
		if ps == nil {
			continue
		}
		if ps.breaker != nil && !ps.breaker.Allow() {
			continue
		}
		outcome := t.sendPut(addr, space, key, b, epoch)
		t.settle(ps, outcome)
		if outcome == fetchHit {
			t.count(func(s *Stats) { s.Repairs++ })
			t.mRepairs.Inc()
		}
	}
}

func (t *Tier) peer(addr string) *peerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[addr]
}

func (t *Tier) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// settle records an op outcome against the peer's breaker. Hits and misses
// both prove the peer works (Success); timeouts and transport errors are
// failures; stale/shed refusals prove nothing about the peer's data path
// (Inconclusive).
func (t *Tier) settle(ps *peerState, outcome int) {
	if ps.breaker == nil {
		return
	}
	before := ps.breaker.Trips()
	switch outcome {
	case fetchHit, fetchMiss:
		ps.breaker.Success()
	case fetchRefused:
		ps.breaker.Inconclusive()
	default:
		ps.breaker.Failure()
	}
	if d := ps.breaker.Trips() - before; d > 0 {
		t.mTrips.Add(d)
	}
}

// Fetch / put outcomes.
const (
	fetchHit     = iota // verified entry (get) or acknowledged write (put)
	fetchMiss           // peer healthy, no entry
	fetchRot            // entry refused: checksum mismatch or malformed
	fetchRefused        // stale epoch (409) or shed (503/429)
	fetchErr            // transport failure or per-op timeout
)

// fetch performs one remote get with the per-op deadline and full
// verification. It returns an entry only when the peer's bytes re-verify
// against their embedded content checksum.
func (t *Tier) fetch(addr, space, key string, epoch int64) (*rcache.Entry, int) {
	frame, err := cluster.EncodeFrame(cluster.FramePeerGet, cluster.PeerGetPayload{
		Key: key, Space: space, Epoch: epoch, From: t.self,
	})
	if err != nil {
		return nil, fetchErr
	}
	switch f := failpoint.Net(failpoint.PeerGet, addr); f.Act {
	case failpoint.NetDrop:
		return nil, fetchErr
	case failpoint.NetCorrupt:
		frame = failpoint.Corrupt(frame)
	case failpoint.NetDrip:
		time.Sleep(f.Sleep) // one stalled chunk; the deadline does the rest
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.opTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+GetPath, bytes.NewReader(frame))
	if err != nil {
		return nil, fetchErr
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			t.count(func(s *Stats) { s.Timeouts++ })
			t.mTimeouts.Inc()
		}
		return nil, fetchErr
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return nil, fetchRefused
	default:
		return nil, fetchErr
	}
	var pe cluster.PeerEntryPayload
	if err := cluster.DecodeFrame(resp.Body, cluster.FramePeerEntry, &pe); err != nil {
		if ctx.Err() != nil {
			t.count(func(s *Stats) { s.Timeouts++ })
			t.mTimeouts.Inc()
			return nil, fetchErr
		}
		return nil, fetchErr
	}
	if !pe.Found {
		return nil, fetchMiss
	}
	e, ok := verifyEntry(key, pe.Entry)
	if !ok {
		t.count(func(s *Stats) { s.RotRefusals++ })
		t.mRot.Inc()
		return nil, fetchRot
	}
	if e == nil {
		return nil, fetchMiss // unverifiable (no sum): not rot, not a hit
	}
	return e, fetchHit
}

// verifyEntry validates a wire entry: well-formed JSON, key match, and a
// content checksum that re-verifies over the entry's own bytes. Returns
// (nil, true) for a well-formed entry without a checksum — unverifiable is
// a miss, not rot — and (nil, false) for damage.
func verifyEntry(key string, raw []byte) (*rcache.Entry, bool) {
	var e rcache.Entry
	if json.Unmarshal(raw, &e) != nil || e.Key != key || len(e.Report) == 0 {
		return nil, false
	}
	if e.Sum == "" {
		return nil, true
	}
	if rcache.ContentSum(e.Report, e.Paths) != e.Sum {
		return nil, false
	}
	return &e, true
}

// sendPut performs one remote put with the per-op deadline, returning a
// fetch outcome (fetchHit means acknowledged).
func (t *Tier) sendPut(addr, space, key string, entry []byte, epoch int64) int {
	frame, err := cluster.EncodeFrame(cluster.FramePeerPut, cluster.PeerPutPayload{
		Key: key, Space: space, Entry: entry, Epoch: epoch, From: t.self,
	})
	if err != nil {
		return fetchErr
	}
	switch f := failpoint.Net(failpoint.PeerPut, addr); f.Act {
	case failpoint.NetDrop:
		return fetchErr
	case failpoint.NetCorrupt:
		frame = failpoint.Corrupt(frame)
	case failpoint.NetDrip:
		time.Sleep(f.Sleep)
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.opTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+PutPath, bytes.NewReader(frame))
	if err != nil {
		return fetchErr
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			t.count(func(s *Stats) { s.Timeouts++ })
			t.mTimeouts.Inc()
		}
		return fetchErr
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return fetchHit
	case http.StatusConflict, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return fetchRefused
	default:
		return fetchErr
	}
}

// enqueueHint queues a write owed to an unreachable peer, dropping the
// oldest hints across the tier when the byte bound overflows.
func (t *Tier) enqueueHint(addr string, h *hint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.peers[addr]
	if !ok || t.closed {
		return
	}
	// Coalesce: a newer write of the same key supersedes the queued one.
	for i, old := range ps.hints {
		if old.space == h.space && old.key == h.key {
			ps.bytes += int64(len(h.entry)) - int64(len(old.entry))
			t.stats.HandoffBytes += int64(len(h.entry)) - int64(len(old.entry))
			ps.hints[i] = h
			return
		}
	}
	ps.hints = append(ps.hints, h)
	ps.bytes += int64(len(h.entry))
	t.stats.HandoffQueued++
	t.stats.HandoffBytes += int64(len(h.entry))
	t.mQueued.Inc()
	for t.stats.HandoffBytes > t.handoffMax {
		if !t.dropOldestLocked() {
			break
		}
	}
}

// dropOldestLocked drops the single oldest hint across all peers. t.mu held.
func (t *Tier) dropOldestLocked() bool {
	var victim *peerState
	for _, ps := range t.peers {
		if len(ps.hints) > 0 && (victim == nil || len(ps.hints) > len(victim.hints)) {
			victim = ps
		}
	}
	if victim == nil {
		return false
	}
	h := victim.hints[0]
	victim.hints = victim.hints[1:]
	victim.bytes -= int64(len(h.entry))
	t.stats.HandoffBytes -= int64(len(h.entry))
	t.stats.HandoffDropped++
	t.mDropped.Inc()
	return true
}

// drainLoop periodically retries queued hints against their peers. One
// failed delivery stops that peer's drain for the tick (the breaker and
// the next tick handle the rest).
func (t *Tier) drainLoop() {
	defer close(t.drainDone)
	ticker := time.NewTicker(t.drainEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.drainStop:
			return
		case <-ticker.C:
			t.DrainOnce()
		}
	}
}

// DrainOnce attempts one delivery pass over every peer's queued hints,
// returning how many hints it delivered. Exported so tests (and the tier's
// own loop) can drain deterministically.
func (t *Tier) DrainOnce() int {
	t.mu.Lock()
	type work struct {
		addr string
		ps   *peerState
	}
	var peers []work
	for addr, ps := range t.peers {
		if len(ps.hints) > 0 {
			peers = append(peers, work{addr, ps})
		}
	}
	epoch := t.epoch
	t.mu.Unlock()

	delivered := 0
	for _, w := range peers {
		for {
			t.mu.Lock()
			if len(w.ps.hints) == 0 {
				t.mu.Unlock()
				break
			}
			h := w.ps.hints[0]
			t.mu.Unlock()
			if w.ps.breaker != nil && !w.ps.breaker.Allow() {
				break
			}
			outcome := t.sendPut(w.addr, h.space, h.key, h.entry, epoch)
			t.settle(w.ps, outcome)
			if outcome != fetchHit {
				break
			}
			t.mu.Lock()
			// Pop h if still at the head (a concurrent coalesce may have
			// replaced it; then the replacement is owed its own delivery).
			if len(w.ps.hints) > 0 && w.ps.hints[0] == h {
				w.ps.hints = w.ps.hints[1:]
				w.ps.bytes -= int64(len(h.entry))
				t.stats.HandoffBytes -= int64(len(h.entry))
				t.stats.HandoffDrained++
				delivered++
			}
			t.mu.Unlock()
			t.mDrained.Inc()
			t.count(func(s *Stats) { s.PutBytes += int64(len(h.entry)) })
			t.mPutBytes.Add(int64(len(h.entry)))
		}
	}
	return delivered
}

// ServeGet answers a peer's get against the local tiers (no remote
// recursion). stale reports that the sender's epoch is older than ours —
// the caller must refuse with 409 so a zombie stops trusting its routing.
func (t *Tier) ServeGet(space, key string, senderEpoch int64) (entry []byte, found, stale bool) {
	t.mu.Lock()
	myEpoch := t.epoch
	local := t.spaces[spaceOrUnit(space)]
	t.mu.Unlock()
	if senderEpoch < myEpoch {
		t.count(func(s *Stats) { s.StaleRefusals++ })
		t.mStale.Inc()
		return nil, false, true
	}
	if local == nil {
		return nil, false, false
	}
	e, ok := local.Get(key)
	if !ok {
		return nil, false, false
	}
	b, err := json.Marshal(e)
	if err != nil {
		return nil, false, false
	}
	return b, true, false
}

// ServePut applies a peer's replicated write to the local tiers after full
// validation: malformed or checksum-rotted entries are refused (counted as
// rot) so a corrupting peer cannot poison this replica. stale works as in
// ServeGet.
func (t *Tier) ServePut(space, key string, entry []byte, senderEpoch int64) (stale bool, err error) {
	t.mu.Lock()
	myEpoch := t.epoch
	local := t.spaces[spaceOrUnit(space)]
	t.mu.Unlock()
	if senderEpoch < myEpoch {
		t.count(func(s *Stats) { s.StaleRefusals++ })
		t.mStale.Inc()
		return true, nil
	}
	if local == nil {
		return false, fmt.Errorf("peer: unregistered space %q", space)
	}
	e, ok := verifyEntry(key, entry)
	if !ok || e == nil {
		// No checksum is also refused here: replication is our own wire,
		// and every entry we produce carries a sum — an unverifiable
		// replicated write is either damage or a protocol violation.
		t.count(func(s *Stats) { s.RotRefusals++ })
		t.mRot.Inc()
		return false, fmt.Errorf("peer: put refused: entry failed verification")
	}
	_ = local.Put(e) // a persist fault costs durability, not correctness
	return false, nil
}

func spaceOrUnit(space string) string {
	if space == "" {
		return SpaceUnit
	}
	return space
}
