package rcache

// ENOSPC resilience: a full disk prunes the oldest quarter of the
// persistent tier once and retries the write, so capacity exhaustion
// degrades to a smaller cache instead of counting disk faults toward the
// breaker. The diskFull classifier is widened to the injected fault so the
// tests never have to fill a real filesystem.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pallas/internal/failpoint"
)

func touch(path string, mod time.Time) error { return os.Chtimes(path, mod, mod) }
func writeFile(path string, b []byte) error  { return os.WriteFile(path, b, 0o644) }
func exists(path string) bool                { _, err := os.Stat(path); return err == nil }

// widenDiskFull makes injected cache-store faults classify as ENOSPC for
// the duration of the test.
func widenDiskFull(t *testing.T) {
	t.Helper()
	old := diskFull
	diskFull = func(err error) bool { return errors.Is(err, failpoint.ErrInjected) || old(err) }
	t.Cleanup(func() { diskFull = old })
}

func countEntryFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".json") {
			n++
		}
		return nil
	})
	return n
}

func TestDiskFullPrunesOldestAndRetries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the persistent tier, spreading mtimes so "oldest" is well defined.
	for i := 0; i < 8; i++ {
		k := key64(fmt.Sprintf("e%d", i))
		if err := c.Put(entry(k, "u.c", `{"x":1}`)); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
		mod := time.Now().Add(-time.Duration(8-i) * time.Hour)
		if err := touch(c.diskPath(k), mod); err != nil {
			t.Fatal(err)
		}
	}

	widenDiskFull(t)
	// Only the first store of the ff… key hits the full disk; the post-prune
	// retry goes through.
	if err := failpoint.Arm("cache-store=error@1/ff"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	k := key64("ff")
	if err := c.Put(entry(k, "u.c", `{"y":2}`)); err != nil {
		t.Fatalf("put after prune+retry should succeed, got %v", err)
	}
	st := c.Stats()
	if st.DiskFullPrunes != 1 {
		t.Fatalf("DiskFullPrunes = %d, want 1", st.DiskFullPrunes)
	}
	if st.DiskFaults != 0 {
		t.Fatalf("a recovered ENOSPC must not count a disk fault, got %d", st.DiskFaults)
	}
	// 8 seeded − 2 pruned (one quarter) + 1 new = 7.
	if n := countEntryFiles(t, dir); n != 7 {
		t.Fatalf("persistent tier holds %d entries, want 7", n)
	}
	// The retried write is durable: a fresh cache over the same dir serves it.
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); !ok {
		t.Fatal("entry written via ENOSPC retry not served from disk")
	}
}

func TestDiskFullWithNothingToPruneIsAFault(t *testing.T) {
	c, err := Open(Options{Dir: t.TempDir(), BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	widenDiskFull(t)
	if err := failpoint.Arm("cache-store=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disarm()

	err = c.Put(entry(key64("aa"), "u.c", `{"x":1}`))
	if !errors.Is(err, ErrPersist) {
		t.Fatalf("put on empty full disk = %v, want ErrPersist", err)
	}
	st := c.Stats()
	if st.DiskFullPrunes != 0 {
		t.Fatalf("DiskFullPrunes = %d, want 0 (nothing to prune)", st.DiskFullPrunes)
	}
	if st.DiskFaults == 0 {
		t.Fatal("unrecoverable ENOSPC must count as a disk fault")
	}
}

func TestPruneOldestRemovesTempGarbage(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key64("aa")
	if err := c.Put(entry(k, "u.c", `{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	tmp := c.diskPath(k) + ".tmp123"
	if err := writeFile(tmp, []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if n := c.pruneOldest(); n != 2 { // the tmp file plus the single (oldest) entry
		t.Fatalf("pruneOldest removed %d files, want 2", n)
	}
	if _, err := filepath.Glob(tmp); err != nil {
		t.Fatal(err)
	}
	if exists(tmp) {
		t.Fatal("temp garbage survived pruning")
	}
}
