package rcache

// Cache micro-benchmarks: memory-tier hit, disk-tier promotion, and insert
// with LRU pressure. Run via the CI bench job (`-bench 'Serve|Cache'`).

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkCacheMemHit measures the serving fast path: a Get answered by
// the memory tier.
func BenchmarkCacheMemHit(b *testing.B) {
	c, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	key := key64("bench")
	if err := c.Put(entry(key, "b.c", `{"target":"b.c"}`)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkCacheDiskHit measures a cold lookup served by the persistent
// tier (memory tier emptied each time by reopening the cache).
func BenchmarkCacheDiskHit(b *testing.B) {
	dir := b.TempDir()
	seed, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	key := key64("disk")
	if err := seed.Put(entry(key, "d.c", `{"target":"d.c"}`)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Get(key); !ok {
			b.Fatal("disk miss")
		}
	}
}

// BenchmarkCachePutEvict measures inserts under byte-bound LRU pressure:
// every Put evicts an older entry.
func BenchmarkCachePutEvict(b *testing.B) {
	c, err := Open(Options{MaxBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	report := `{"pad":"` + strings.Repeat("x", 4096) + `"}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(entry(key64(fmt.Sprintf("p%d", i)), "p.c", report)); err != nil {
			b.Fatal(err)
		}
	}
}
