// Package rcache is the content-addressed analysis result cache behind
// `pallas serve` and `pallas check -cache-dir`. The paper treats path
// extraction as a one-time cost; rcache generalizes that to the whole
// pipeline: a completed report is stored under the content hash of
// everything that produced it (unit name, source, spec, analyzer
// configuration — see pallas.ContentHash / Analyzer.CacheKey), so an
// identical request is answered byte-identically without re-analysis.
//
// A cache has up to two tiers:
//
//   - a memory tier: an LRU bounded by total entry bytes, always present;
//   - a persistent tier: one JSON file per entry under a directory,
//     written with the same atomic discipline as pathdb.Save
//     (temp file + fsync + rename), shared between the CLI and the server
//     so a warm `pallas check` re-run and a warm server answer from the
//     same store. Corrupt or mismatched files are ignored and removed, never
//     trusted.
//
// GetOrCompute collapses concurrent identical requests (singleflight): when
// ten clients POST the same unit at once, one analysis runs and ten
// responses are served from it.
package rcache

import (
	"container/list"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"pallas/internal/failpoint"
	"pallas/internal/guard"
	"pallas/internal/overload"
)

// ErrPersist wraps every persistent-tier fault. Callers that see it on Put
// or GetOrCompute still hold a fully valid memory-tier entry: the analysis
// succeeded, only its durability did not. Match with errors.Is to report the
// fault without failing the request.
var ErrPersist = errors.New("rcache: persistent tier fault")

// Entry is one cached analysis outcome. Report carries the exact marshaled
// report bytes, so cache hits replay byte-identical output.
type Entry struct {
	// Key is the content-address (hex SHA-256) the entry is stored under.
	Key string `json:"key"`
	// Unit echoes the unit name the entry was produced from (debugging aid;
	// the key is the identity).
	Unit string `json:"unit"`
	// Report is the marshaled report.Report JSON.
	Report json.RawMessage `json:"report"`
	// Paths is the marshaled path database of the producing analysis.
	// Populated by cluster workers (whose completions must replay pathdb
	// bytes as well as report bytes); empty for entries stored by plain
	// serve/batch runs, which only replay reports.
	Paths json.RawMessage `json:"paths,omitempty"`
	// Diagnostics preserves the degradation record of the producing run.
	Diagnostics []guard.Diagnostic `json:"diagnostics,omitempty"`
	// Degraded mirrors Report.Degraded for consumers that do not unmarshal.
	Degraded bool `json:"degraded,omitempty"`
	// Warnings counts the warnings in Report.
	Warnings int `json:"warnings"`
	// Sum is the end-to-end content checksum over Report and Paths bytes
	// (see ContentSum), fixed at analysis time. It travels with the entry
	// through the cache tiers and the cluster wire so a consumer can verify
	// the bytes it received are the bytes the analysis produced — catching
	// corruption that per-hop CRCs cannot (bad RAM on a worker, a corrupt
	// cache file re-served, a frame mangled after its CRC was computed).
	// Empty on entries written before the field existed; consumers treat
	// empty as "unverifiable", not as a failure.
	Sum string `json:"sum,omitempty"`
}

// ContentSum computes the end-to-end checksum carried in Entry.Sum: CRC32C
// over the length-framed concatenation of report and path bytes. Length
// framing keeps (report, paths) pairs unambiguous — bytes cannot migrate
// between the two fields without changing the sum.
func ContentSum(report, paths []byte) string {
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(report)))
	h.Write(n[:])
	h.Write(report)
	binary.BigEndian.PutUint64(n[:], uint64(len(paths)))
	h.Write(n[:])
	h.Write(paths)
	return fmt.Sprintf("%08x", h.Sum32())
}

// size approximates the entry's memory footprint for the LRU byte bound.
func (e *Entry) size() int64 {
	n := int64(len(e.Key) + len(e.Unit) + len(e.Report) + len(e.Paths) + 64)
	for _, d := range e.Diagnostics {
		n += int64(len(d.Unit) + len(d.Err) + len(d.Stage) + 32)
	}
	return n
}

// Options configures Open.
type Options struct {
	// MaxBytes bounds the memory tier by total entry bytes; <= 0 means
	// DefaultMaxBytes. A single entry larger than the bound is still cached
	// (and immediately becomes the only resident entry).
	MaxBytes int64
	// Dir, when non-empty, enables the persistent tier rooted at this
	// directory (created if missing). Entries live at Dir/<k0k1>/<key>.json.
	Dir string
	// BreakerThreshold trips the persistent tier's circuit breaker after
	// this many consecutive disk faults: the cache falls back to
	// memory-only mode instead of touching the failing disk on every
	// request, then probes half-open after BreakerCooldown. 0 means
	// overload.DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped persistent tier stays
	// memory-only before one probe operation is allowed through. <= 0 means
	// overload.DefaultBreakerCooldown.
	BreakerCooldown time.Duration
}

// DefaultMaxBytes is the default memory-tier bound (64 MiB).
const DefaultMaxBytes = 64 << 20

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// Hits counts lookups answered from either tier (or a singleflight
	// leader's fresh result shared with followers).
	Hits int64
	// Misses counts lookups that found nothing and (for GetOrCompute) ran
	// the compute function.
	Misses int64
	// MemHits and DiskHits split Hits by serving tier.
	MemHits  int64
	DiskHits int64
	// Shared counts GetOrCompute callers that piggybacked on a concurrent
	// identical computation (singleflight followers); included in Hits.
	Shared int64
	// Computes counts executions of GetOrCompute's compute function — the
	// number of real analyses the cache could not avoid.
	Computes int64
	// Evictions counts memory-tier LRU evictions.
	Evictions int64
	// Entries and Bytes describe the current memory tier.
	Entries int
	Bytes   int64
	// DiskFaults counts persistent-tier I/O failures (reads and writes;
	// missing files are not faults).
	DiskFaults int64
	// DiskFullPrunes counts ENOSPC recoveries: a write hit a full disk, the
	// oldest persistent entries were pruned, and the write was retried. A
	// full disk degrades to a smaller cache instead of tripping the breaker.
	DiskFullPrunes int64
	// BreakerSkips counts persistent-tier operations skipped because the
	// circuit breaker was open (memory-only mode).
	BreakerSkips int64
	// BreakerTrips counts how many times the persistent tier's breaker has
	// opened; BreakerState is its current position ("closed", "open",
	// "half-open", or "" when there is no persistent tier / no breaker).
	BreakerTrips int64
	BreakerState string
}

// call is one in-flight singleflight computation.
type call struct {
	wg    sync.WaitGroup
	entry *Entry
	err   error
}

// Cache is a two-tier content-addressed result cache. All methods are safe
// for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64
	breaker  *overload.Breaker // nil: no persistent tier or breaker disabled

	mu     sync.Mutex
	lru    *list.List // front = most recent; values are *Entry
	byKey  map[string]*list.Element
	bytes  int64
	flight map[string]*call
	stats  Stats
}

// Open returns a cache with the given options, creating the persistent
// directory when one is configured.
func Open(opts Options) (*Cache, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rcache: open %s: %w", opts.Dir, err)
		}
	}
	var breaker *overload.Breaker
	if opts.Dir != "" && opts.BreakerThreshold >= 0 {
		breaker = overload.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return &Cache{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		breaker:  breaker,
		lru:      list.New(),
		byKey:    map[string]*list.Element{},
		flight:   map[string]*call{},
	}, nil
}

// TierHealth reports the persistent tier's condition for health endpoints:
// "memory-only" when no directory is configured, otherwise the breaker's
// state ("closed" = healthy; "open" = tripped to memory-only mode;
// "half-open" = probing recovery).
func (c *Cache) TierHealth() string {
	if c.dir == "" {
		return "memory-only"
	}
	if c.breaker == nil {
		return overload.BreakerClosed.String()
	}
	return c.breaker.State().String()
}

// diskFault records one persistent-tier failure against the breaker.
func (c *Cache) diskFault(err error) {
	c.mu.Lock()
	c.stats.DiskFaults++
	c.mu.Unlock()
	if c.breaker != nil {
		c.breaker.Failure()
	}
}

// diskOK records one successful persistent-tier operation.
func (c *Cache) diskOK() {
	if c.breaker != nil {
		c.breaker.Success()
	}
}

// diskNeutral records an operation that proved nothing (a clean ENOENT
// miss): a half-open probe slot is released for the next operation, but no
// success or failure is recorded.
func (c *Cache) diskNeutral() {
	if c.breaker != nil {
		c.breaker.Inconclusive()
	}
}

// diskAllowed consults the breaker before touching the persistent tier; a
// false return means the tier is tripped and the operation is skipped.
func (c *Cache) diskAllowed() bool {
	if c.breaker == nil || c.breaker.Allow() {
		return true
	}
	c.mu.Lock()
	c.stats.BreakerSkips++
	c.mu.Unlock()
	return false
}

// Get returns the entry for key, consulting the memory tier then the
// persistent tier (a disk hit is promoted into memory).
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		e := el.Value.(*Entry)
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()

	if e := c.loadDisk(key); e != nil {
		c.mu.Lock()
		c.insertLocked(e)
		c.stats.Hits++
		c.stats.DiskHits++
		c.mu.Unlock()
		return e, true
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores an entry in the memory tier and, when configured, the
// persistent tier. A persistence failure does not evict the memory entry;
// it is returned for the caller to surface as a diagnostic.
func (c *Cache) Put(e *Entry) error {
	if e.Key == "" {
		return fmt.Errorf("rcache: entry without key")
	}
	c.mu.Lock()
	c.insertLocked(e)
	c.mu.Unlock()
	return c.storeDisk(e)
}

// GetOrCompute returns the entry for key, computing and caching it with fn
// on a miss. Concurrent calls for the same key run fn once: the first
// caller computes, the rest block and share the outcome (hit=true for
// them). fn errors are not cached — every new caller after a failure
// retries.
func (c *Cache) GetOrCompute(key string, fn func() (*Entry, error)) (*Entry, bool, error) {
	if e, ok := c.Get(key); ok {
		return e, true, nil
	}
	c.mu.Lock()
	if cl, ok := c.flight[key]; ok {
		// Follower: someone is already computing this key. The Get above
		// counted a miss for what is really a share; undo it so
		// "misses == real analyses" stays true.
		c.stats.Shared++
		c.stats.Hits++
		c.stats.Misses--
		c.mu.Unlock()
		cl.wg.Wait()
		if cl.err != nil {
			c.mu.Lock()
			c.stats.Shared--
			c.stats.Hits--
			c.mu.Unlock()
			return nil, false, cl.err
		}
		return cl.entry, true, nil
	}
	// Leader: compute, publish, wake the followers.
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.stats.Computes++
	c.mu.Unlock()

	var perr error
	cl.entry, cl.err = fn()
	if cl.err == nil && cl.entry != nil {
		if cl.entry.Key == "" {
			cl.entry.Key = key
		}
		// The entry is served from memory regardless; a persistence failure
		// is reported to the leader only (followers still get the entry).
		perr = c.Put(cl.entry)
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	cl.wg.Done()
	if cl.err != nil {
		return cl.entry, false, cl.err
	}
	return cl.entry, false, perr
}

// insertLocked adds or refreshes an entry in the memory tier and evicts
// from the LRU tail until the byte bound holds. c.mu must be held.
func (c *Cache) insertLocked(e *Entry) {
	if el, ok := c.byKey[e.Key]; ok {
		c.bytes += e.size() - el.Value.(*Entry).size()
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		c.byKey[e.Key] = c.lru.PushFront(e)
		c.bytes += e.size()
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		tail := c.lru.Back()
		old := tail.Value.(*Entry)
		c.lru.Remove(tail)
		delete(c.byKey, old.Key)
		c.bytes -= old.size()
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of cache activity.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	c.mu.Unlock()
	if c.breaker != nil {
		s.BreakerTrips = c.breaker.Trips()
		s.BreakerState = c.breaker.State().String()
	}
	return s
}

// Len returns the number of memory-tier entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the memory tier's current byte footprint.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Dir returns the persistent tier's root ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// diskPath shards entries by the first two key characters so one directory
// never accumulates the whole corpus.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// loadDisk reads and validates a persistent entry; any damage (unreadable,
// bad JSON, key mismatch — e.g. a file renamed by hand) returns nil and
// removes the file so it is not re-parsed on every miss. While the tier's
// breaker is open the read is skipped entirely (memory-only mode). A
// validated entry is the only thing ever returned, so a faulting or
// corrupted disk can cause misses but never a corrupt result.
func (c *Cache) loadDisk(key string) *Entry {
	if c.dir == "" || len(key) < 3 || !c.diskAllowed() {
		return nil
	}
	if err := failpoint.Hit(failpoint.CacheLoad, key); err != nil {
		c.diskFault(err)
		return nil
	}
	b, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		// A clean miss (ENOENT) is neutral: it proves the lookup worked but
		// says nothing about reads or writes of real data, so it neither
		// counts as a fault nor resets a failure streak — otherwise a disk
		// whose writes fail while lookups still answer would never trip.
		if os.IsNotExist(err) {
			c.diskNeutral()
		} else {
			c.diskFault(err)
		}
		return nil
	}
	var e Entry
	if json.Unmarshal(b, &e) != nil || e.Key != key || len(e.Report) == 0 {
		// Corrupt or mismatched data: the disk itself worked, the bytes are
		// damaged — delete them so they are not re-parsed on every miss.
		os.Remove(c.diskPath(key))
		c.diskOK()
		return nil
	}
	c.diskOK()
	return &e
}

// storeDisk atomically persists an entry: temp file in the final directory,
// fsync, rename — the same crash discipline as pathdb.Save, so a kill
// mid-store leaves either the old state or the complete new file, never a
// torn entry. While the tier's breaker is open the write is skipped (the
// entry stays memory-resident); every fault is wrapped in ErrPersist and
// recorded against the breaker.
func (c *Cache) storeDisk(e *Entry) error {
	if c.dir == "" || len(e.Key) < 3 || !c.diskAllowed() {
		return nil
	}
	err := c.storeDiskRaw(e)
	if err != nil && diskFull(err) {
		// ENOSPC is capacity, not damage: prune the oldest persistent
		// entries once to make room and retry, so a full disk degrades to a
		// smaller cache instead of tripping the breaker into memory-only
		// mode permanently. Only an ENOSPC on the retry (or a prune that
		// freed nothing) counts as a fault.
		if c.pruneOldest() > 0 {
			c.mu.Lock()
			c.stats.DiskFullPrunes++
			c.mu.Unlock()
			err = c.storeDiskRaw(e)
		}
	}
	if err != nil {
		c.diskFault(err)
		return fmt.Errorf("%w: %w", ErrPersist, err)
	}
	c.diskOK()
	return nil
}

// diskFull reports a write failure caused by a full filesystem. A var so
// tests can widen it to injected faults without filling a real disk.
var diskFull = func(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// pruneFraction is how much of the persistent tier pruneOldest removes:
// enough that one ENOSPC buys headroom for many writes, small enough that
// most of the warm set survives.
const pruneFraction = 4 // one quarter

// pruneOldest removes roughly 1/pruneFraction of the persistent tier's
// entry files, oldest mtime first (plus any leftover temp files, which are
// pure garbage), returning how many files it deleted. Concurrent readers
// are safe: a pruned entry is just a future miss.
func (c *Cache) pruneOldest() int {
	type file struct {
		path string
		mod  time.Time
	}
	var entries []file
	removed := 0
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), ".tmp") {
			if os.Remove(path) == nil {
				removed++
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, file{path: path, mod: info.ModTime()})
		return nil
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod.Before(entries[j].mod) })
	n := len(entries) / pruneFraction
	if n == 0 && len(entries) > 0 {
		n = 1
	}
	for _, f := range entries[:n] {
		if os.Remove(f.path) == nil {
			removed++
		}
	}
	return removed
}

func (c *Cache) storeDiskRaw(e *Entry) error {
	if err := failpoint.Hit(failpoint.CacheStore, e.Key); err != nil {
		return err
	}
	path := c.diskPath(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("rcache: store: %w", err)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("rcache: store %s: %w", e.Key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("rcache: store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("rcache: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("rcache: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("rcache: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rcache: store: %w", err)
	}
	return nil
}
