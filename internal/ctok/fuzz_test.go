package ctok

import (
	"testing"
	"unicode/utf8"
)

// FuzzLexer feeds the lexer arbitrary bytes: it must terminate, never panic,
// and keep every token's text a substring-consistent slice of the input.
// Run with `go test -fuzz=FuzzLexer` for open-ended exploration; the seed
// corpus runs in normal test mode.
func FuzzLexer(f *testing.F) {
	seeds := []string{
		"",
		"int f(void) { return 0; }",
		"/* unterminated comment",
		"// line comment\nint x;",
		"\"unterminated string",
		"'c' '\\'' '\\n' '",
		"0x1f 0777 1e9 1.5e-3 0b101",
		"a->b.c ... >>= <<= && || ## #",
		"\x00\xff\xfe invalid bytes \x80",
		"L\"wide\" u8\"utf\"",
		"#define A(x) x##x\nA(1)",
		"...........",
		"@ $ ` \\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lx := NewLexer("fuzz.c", src)
		n := 0
		for {
			tok := lx.Next()
			if tok.Kind == EOF {
				break
			}
			n++
			// Termination: a lexer over len(src) bytes cannot produce more
			// than len(src) non-EOF tokens without consuming nothing.
			if n > len(src)+1 {
				t.Fatalf("lexer emitted %d tokens for %d input bytes", n, len(src))
			}
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %v has impossible position %d:%d", tok, tok.Pos.Line, tok.Pos.Col)
			}
		}
		// Errors must be well-formed strings even for invalid UTF-8 input.
		for _, err := range lx.Errors() {
			if !utf8.ValidString(err.Error()) {
				t.Fatalf("lexer error is not valid UTF-8: %q", err.Error())
			}
		}
		// Tokenize is the one-shot wrapper; it must agree with Next on count.
		toks, _ := Tokenize("fuzz.c", src)
		if len(toks) != n {
			t.Fatalf("Tokenize returned %d tokens, Next loop saw %d", len(toks), n)
		}
	})
}
