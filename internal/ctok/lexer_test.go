package ctok

import (
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, errs := Tokenize("t.c", src)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "static int x_1 = sizeof(void);")
	want := []Kind{KwStatic, KwInt, Ident, Assign, KwSizeof, LParen, KwVoid, RParen, Semi}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	cases := map[string]Kind{
		"<<=": ShlAssign, ">>=": ShrAssign, "->": Arrow, "++": Inc,
		"--": Dec, "<<": Shl, ">>": Shr, "<=": Le, ">=": Ge, "==": EqEq,
		"!=": NotEq, "&&": AndAnd, "||": OrOr, "+=": AddAssign, "...": Ellipsis,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%q: got %v, want [%v]", src, got, want)
		}
	}
}

func TestNumericLiterals(t *testing.T) {
	toks, errs := Tokenize("t.c", "0x1f 0755 42UL 3.14 1e9 2.5e-3f 0")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantKinds := []Kind{IntLit, IntLit, IntLit, FloatLit, FloatLit, FloatLit, IntLit}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(wantKinds), toks)
	}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d %q: kind %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestStringAndCharLiterals(t *testing.T) {
	toks, errs := Tokenize("t.c", `"hello \"world\"" 'a' '\n'`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != StringLit || toks[0].Text != `hello \"world\"` {
		t.Errorf("string = %+v", toks[0])
	}
	if toks[1].Kind != CharLit || toks[1].Text != "a" {
		t.Errorf("char = %+v", toks[1])
	}
	if toks[2].Kind != CharLit || toks[2].Text != `\n` {
		t.Errorf("escaped char = %+v", toks[2])
	}
}

func TestUnterminatedLiteralsReportErrors(t *testing.T) {
	for _, src := range []string{`"abc`, `'a`, "/* never closed"} {
		_, errs := Tokenize("t.c", src)
		if len(errs) == 0 {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	got := kinds(t, "a /* block */ b // line\nc")
	if len(got) != 3 {
		t.Fatalf("comments leaked: %v", got)
	}
}

func TestCommentsKeptWhenRequested(t *testing.T) {
	lx := NewLexer("t.c", "// @pallas: immutable x\nint y;")
	lx.KeepComments = true
	tok := lx.Next()
	if tok.Kind != LineComment || tok.Text != " @pallas: immutable x" {
		t.Fatalf("comment token = %+v", tok)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := Tokenize("f.c", "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if s := toks[1].Pos.String(); s != "f.c:2:3" {
		t.Errorf("pos string = %q", s)
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if KwIf.String() != "if" || !KwIf.IsKeyword() {
		t.Error("KwIf misbehaves")
	}
	if Ident.IsKeyword() {
		t.Error("Ident is not a keyword")
	}
	for _, k := range []Kind{Assign, AddAssign, ShrAssign} {
		if !k.IsAssign() {
			t.Errorf("%v should be assign", k)
		}
	}
	if EqEq.IsAssign() {
		t.Error("== is not assign")
	}
}

// Property: lexing never panics and every produced token has a valid
// position within any printable-ASCII input.
func TestLexerTotalOnRandomInput(t *testing.T) {
	f := func(b []byte) bool {
		// Map arbitrary bytes into printable ASCII + whitespace.
		src := make([]byte, len(b))
		for i, c := range b {
			src[i] = 32 + c%95
			if c%17 == 0 {
				src[i] = '\n'
			}
		}
		toks, _ := Tokenize("rand.c", string(src))
		for _, tok := range toks {
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: identifiers always round-trip through the lexer.
func TestIdentifierRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		name := "v"
		for i := uint8(0); i < n%20; i++ {
			name += string(rune('a' + i%26))
		}
		toks, errs := Tokenize("t.c", name)
		return len(errs) == 0 && len(toks) == 1 &&
			toks[0].Kind == Ident && toks[0].Text == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
