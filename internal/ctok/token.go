// Package ctok defines lexical tokens for the C subset understood by the
// Pallas front-end and a lexer producing them.
//
// The front-end stands in for the Clang front-end the paper builds on: it is
// deliberately a subset of C99, rich enough for kernel-style fast-path code
// (struct/union/enum declarations, typedefs, full expression grammar,
// pointers, all control statements, GNU-style attributes are skipped).
package ctok

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keyword kinds are contiguous between keywordBeg and keywordEnd.
const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit
	StringLit
	FloatLit

	keywordBeg
	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInline
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile
	keywordEnd

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Assign       // =
	AddAssign    // +=
	SubAssign    // -=
	MulAssign    // *=
	DivAssign    // /=
	ModAssign    // %=
	AndAssign    // &=
	OrAssign     // |=
	XorAssign    // ^=
	ShlAssign    // <<=
	ShrAssign    // >>=
	Inc          // ++
	Dec          // --
	Plus         // +
	Minus        // -
	Star         // *
	Slash        // /
	Percent      // %
	Amp          // &
	Pipe         // |
	Caret        // ^
	Tilde        // ~
	Not          // !
	Shl          // <<
	Shr          // >>
	Lt           // <
	Gt           // >
	Le           // <=
	Ge           // >=
	EqEq         // ==
	NotEq        // !=
	AndAnd       // &&
	OrOr         // ||
	Question     // ?
	Colon        // :
	Hash         // # (only survives outside preprocessing)
	LineComment  // // ... (kept so @pallas annotations survive)
	BlockComment // /* ... */
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	CharLit: "char literal", StringLit: "string literal", FloatLit: "float literal",
	KwAuto: "auto", KwBreak: "break", KwCase: "case", KwChar: "char",
	KwConst: "const", KwContinue: "continue", KwDefault: "default", KwDo: "do",
	KwDouble: "double", KwElse: "else", KwEnum: "enum", KwExtern: "extern",
	KwFloat: "float", KwFor: "for", KwGoto: "goto", KwIf: "if",
	KwInline: "inline", KwInt: "int", KwLong: "long", KwRegister: "register",
	KwReturn: "return", KwShort: "short", KwSigned: "signed", KwSizeof: "sizeof",
	KwStatic: "static", KwStruct: "struct", KwSwitch: "switch",
	KwTypedef: "typedef", KwUnion: "union", KwUnsigned: "unsigned",
	KwVoid: "void", KwVolatile: "volatile", KwWhile: "while",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[",
	RBracket: "]", Semi: ";", Comma: ",", Dot: ".", Arrow: "->",
	Ellipsis: "...", Assign: "=", AddAssign: "+=", SubAssign: "-=",
	MulAssign: "*=", DivAssign: "/=", ModAssign: "%=", AndAssign: "&=",
	OrAssign: "|=", XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Inc: "++", Dec: "--", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||", Question: "?",
	Colon: ":", Hash: "#", LineComment: "line comment", BlockComment: "block comment",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a C keyword.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// IsAssign reports whether k is an assignment operator (= += -= ...).
func (k Kind) IsAssign() bool {
	switch k {
	case Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign,
		AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"auto": KwAuto, "break": KwBreak, "case": KwCase, "char": KwChar,
	"const": KwConst, "continue": KwContinue, "default": KwDefault,
	"do": KwDo, "double": KwDouble, "else": KwElse, "enum": KwEnum,
	"extern": KwExtern, "float": KwFloat, "for": KwFor, "goto": KwGoto,
	"if": KwIf, "inline": KwInline, "int": KwInt, "long": KwLong,
	"register": KwRegister, "return": KwReturn, "short": KwShort,
	"signed": KwSigned, "sizeof": KwSizeof, "static": KwStatic,
	"struct": KwStruct, "switch": KwSwitch, "typedef": KwTypedef,
	"union": KwUnion, "unsigned": KwUnsigned, "void": KwVoid,
	"volatile": KwVolatile, "while": KwWhile,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // raw spelling (identifier name, literal text, comment body)
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, CharLit, StringLit, FloatLit, LineComment, BlockComment:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
