package ctok

import (
	"fmt"
	"strings"
)

// Lexer tokenizes C source text.
//
// Comments are produced as tokens when KeepComments is set (the spec package
// mines `@pallas:` annotations from them); the parser skips them.
// Preprocessor directives (lines whose first non-blank byte is '#') are NOT
// handled here — the cpp package consumes raw lines before lexing. When the
// lexer does meet a '#' it emits a Hash token so stray directives surface as
// parse errors instead of being silently eaten.
type Lexer struct {
	src          string
	file         string
	off          int
	line, col    int
	KeepComments bool
	errs         []error
}

// NewLexer returns a lexer over src. file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []error { return lx.errs }

func (lx *Lexer) errorf(p Pos, format string, args ...any) {
	lx.errs = append(lx.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// Next returns the next token. At end of input it returns EOF forever.
func (lx *Lexer) Next() Token {
	for {
		for lx.off < len(lx.src) && isSpace(lx.peek()) {
			lx.advance()
		}
		if lx.off >= len(lx.src) {
			return Token{Kind: EOF, Pos: lx.pos()}
		}
		start := lx.pos()
		c := lx.peek()

		// Comments.
		if c == '/' && lx.peekAt(1) == '/' {
			begin := lx.off
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			if lx.KeepComments {
				return Token{Kind: LineComment, Text: strings.TrimPrefix(lx.src[begin:lx.off], "//"), Pos: start}
			}
			continue
		}
		if c == '/' && lx.peekAt(1) == '*' {
			begin := lx.off
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
			if lx.KeepComments {
				body := lx.src[begin:lx.off]
				body = strings.TrimPrefix(body, "/*")
				body = strings.TrimSuffix(body, "*/")
				return Token{Kind: BlockComment, Text: body, Pos: start}
			}
			continue
		}

		switch {
		case isIdentStart(c):
			begin := lx.off
			for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
				lx.advance()
			}
			text := lx.src[begin:lx.off]
			if k, ok := Keywords[text]; ok {
				return Token{Kind: k, Text: text, Pos: start}
			}
			return Token{Kind: Ident, Text: text, Pos: start}

		case isDigit(c), c == '.' && isDigit(lx.peekAt(1)):
			return lx.lexNumber(start)

		case c == '"':
			return lx.lexString(start)

		case c == '\'':
			return lx.lexChar(start)
		}

		return lx.lexOperator(start)
	}
}

func (lx *Lexer) lexNumber(start Pos) Token {
	begin := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			if isDigit(lx.peekAt(1)) || ((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if lx.peek() == '+' || lx.peek() == '-' {
					lx.advance()
				}
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Integer/float suffixes: u, l, ul, ull, f ...
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L':
			lx.advance()
			continue
		case 'f', 'F':
			if isFloat {
				lx.advance()
				continue
			}
		}
		break
	}
	kind := IntLit
	if isFloat {
		kind = FloatLit
	}
	return Token{Kind: kind, Text: lx.src[begin:lx.off], Pos: start}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) lexString(start Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '"' {
			lx.advance()
			return Token{Kind: StringLit, Text: sb.String(), Pos: start}
		}
		if c == '\n' {
			break
		}
		if c == '\\' && lx.off+1 < len(lx.src) {
			lx.advance()
			sb.WriteByte('\\')
			sb.WriteByte(lx.advance())
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.errorf(start, "unterminated string literal")
	return Token{Kind: StringLit, Text: sb.String(), Pos: start}
}

func (lx *Lexer) lexChar(start Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '\'' {
			lx.advance()
			return Token{Kind: CharLit, Text: sb.String(), Pos: start}
		}
		if c == '\n' {
			break
		}
		if c == '\\' && lx.off+1 < len(lx.src) {
			lx.advance()
			sb.WriteByte('\\')
			sb.WriteByte(lx.advance())
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.errorf(start, "unterminated character literal")
	return Token{Kind: CharLit, Text: sb.String(), Pos: start}
}

// operator table ordered so longer spellings are matched first.
var operators = []struct {
	text string
	kind Kind
}{
	{"...", Ellipsis}, {"<<=", ShlAssign}, {">>=", ShrAssign},
	{"->", Arrow}, {"++", Inc}, {"--", Dec}, {"<<", Shl}, {">>", Shr},
	{"<=", Le}, {">=", Ge}, {"==", EqEq}, {"!=", NotEq}, {"&&", AndAnd},
	{"||", OrOr}, {"+=", AddAssign}, {"-=", SubAssign}, {"*=", MulAssign},
	{"/=", DivAssign}, {"%=", ModAssign}, {"&=", AndAssign}, {"|=", OrAssign},
	{"^=", XorAssign},
	{"(", LParen}, {")", RParen}, {"{", LBrace}, {"}", RBrace},
	{"[", LBracket}, {"]", RBracket}, {";", Semi}, {",", Comma}, {".", Dot},
	{"=", Assign}, {"+", Plus}, {"-", Minus}, {"*", Star}, {"/", Slash},
	{"%", Percent}, {"&", Amp}, {"|", Pipe}, {"^", Caret}, {"~", Tilde},
	{"!", Not}, {"<", Lt}, {">", Gt}, {"?", Question}, {":", Colon},
	{"#", Hash},
}

func (lx *Lexer) lexOperator(start Pos) Token {
	rest := lx.src[lx.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				lx.advance()
			}
			return Token{Kind: op.kind, Text: op.text, Pos: start}
		}
	}
	c := lx.advance()
	lx.errorf(start, "unexpected character %q", string(c))
	// Skip it and continue; callers see the next valid token.
	return lx.Next()
}

// Tokenize lexes the whole input and returns all tokens (excluding EOF).
func Tokenize(file, src string) ([]Token, []error) {
	lx := NewLexer(file, src)
	var out []Token
	for {
		t := lx.Next()
		if t.Kind == EOF {
			return out, lx.errs
		}
		out = append(out, t)
	}
}
