package study

import (
	"math"
	"testing"

	"pallas/internal/report"
)

func TestDatasetSize(t *testing.T) {
	ds := Dataset()
	if len(ds) != 172 {
		t.Fatalf("want 172 patches, got %d", len(ds))
	}
	if PathsStudied() != 65 {
		t.Fatalf("want 65 fast paths, got %d", PathsStudied())
	}
}

// TestTable2Published verifies the computed Table 2 equals the paper's.
func TestTable2Published(t *testing.T) {
	want := map[Subsystem]Table2Row{
		MM:  {Subsystem: MM, NumPaths: 16, NumPatches: 62, BugsPerAvg: 4, BugsPerMax: 19, FixDaysAvg: 3},
		FS:  {Subsystem: FS, NumPaths: 21, NumPatches: 41, BugsPerAvg: 2, BugsPerMax: 17, FixDaysAvg: 8},
		NET: {Subsystem: NET, NumPaths: 14, NumPatches: 41, BugsPerAvg: 3, BugsPerMax: 11, FixDaysAvg: 5},
		DEV: {Subsystem: DEV, NumPaths: 14, NumPatches: 28, BugsPerAvg: 2, BugsPerMax: 5, FixDaysAvg: 12},
	}
	for _, row := range Table2(Dataset()) {
		w := want[row.Subsystem]
		if row.NumPaths != w.NumPaths || row.NumPatches != w.NumPatches ||
			row.BugsPerAvg != w.BugsPerAvg || row.BugsPerMax != w.BugsPerMax ||
			row.FixDaysAvg != w.FixDaysAvg {
			t.Errorf("%s: got %+v want %+v", row.Subsystem, row, w)
		}
	}
}

// TestTable3Published verifies the per-subsystem category distribution.
func TestTable3Published(t *testing.T) {
	want := map[Subsystem][5]int{
		MM: {21, 10, 12, 9, 10}, FS: {4, 3, 13, 7, 14},
		NET: {5, 14, 6, 5, 11}, DEV: {4, 3, 5, 10, 6},
	}
	t3 := Table3(Dataset())
	for sub, counts := range want {
		for i, a := range report.Aspects() {
			got := t3[sub][a].Count
			if got != counts[i] {
				t.Errorf("Table3[%s][%s] = %d, want %d", sub, a, got, counts[i])
			}
		}
	}
	// Spot-check a published ratio: MM path state = 34%.
	if r := t3[MM][report.PathState].Ratio; math.Abs(r-0.34) > 0.005 {
		t.Errorf("MM path-state ratio = %.3f, want ≈0.34", r)
	}
}

// TestTable4Published verifies the category × consequence matrix.
func TestTable4Published(t *testing.T) {
	want := map[report.Aspect][6]int{
		report.PathState:        {15, 0, 5, 6, 7, 1},
		report.TriggerCondition: {12, 0, 2, 4, 11, 1},
		report.PathOutput:       {12, 8, 3, 8, 2, 3},
		report.FaultHandling:    {14, 4, 1, 3, 5, 4},
		report.DataStructure:    {16, 7, 4, 6, 7, 1},
	}
	t4 := Table4(Dataset())
	for a, counts := range want {
		for i, cons := range Consequences() {
			got := t4[a][cons].Count
			if got != counts[i] {
				t.Errorf("Table4[%s][%s] = %d, want %d", a, cons, got, counts[i])
			}
		}
	}
	// Spot-check a published ratio: path-state incorrect results = 44%.
	if r := t4[report.PathState]["Incorrect results"].Ratio; math.Abs(r-0.44) > 0.01 {
		t.Errorf("path-state incorrect-results ratio = %.3f, want ≈0.44", r)
	}
}

// TestDatasetInternallyConsistent checks the margins agree: Table 3 column
// sums equal Table 4 category totals (both must be the 172 patches).
func TestDatasetInternallyConsistent(t *testing.T) {
	ds := Dataset()
	catTotal := map[report.Aspect]int{}
	for _, p := range ds {
		catTotal[p.Category]++
	}
	want := map[report.Aspect]int{
		report.PathState: 34, report.TriggerCondition: 30, report.PathOutput: 36,
		report.FaultHandling: 31, report.DataStructure: 41,
	}
	for a, w := range want {
		if catTotal[a] != w {
			t.Errorf("category %s total = %d, want %d", a, catTotal[a], w)
		}
	}
}

func TestPatchFieldsPopulated(t *testing.T) {
	ds := Dataset()
	seen := map[string]bool{}
	for _, p := range ds {
		if seen[p.ID] {
			t.Fatalf("duplicate patch id %s", p.ID)
		}
		seen[p.ID] = true
		if p.Year < StudyYearFrom || p.Year > StudyYearTo {
			t.Errorf("%s: year %d outside study window", p.ID, p.Year)
		}
		if p.FixDays <= 0 {
			t.Errorf("%s: non-positive fix days", p.ID)
		}
		if p.Consequence == "" {
			t.Errorf("%s: empty consequence", p.ID)
		}
	}
}

func TestMaxBugsPathIsUnique(t *testing.T) {
	ds := Dataset()
	perPath := map[Subsystem]map[int]int{}
	for _, p := range ds {
		if perPath[p.Subsystem] == nil {
			perPath[p.Subsystem] = map[int]int{}
		}
		perPath[p.Subsystem][p.PathID]++
	}
	if perPath[MM][0] != 19 {
		t.Errorf("MM path 0 should carry 19 bugs, has %d", perPath[MM][0])
	}
	if perPath[DEV][0] != 5 {
		t.Errorf("DEV path 0 should carry 5 bugs, has %d", perPath[DEV][0])
	}
}

func TestSubtypeShares(t *testing.T) {
	for _, s := range SubtypeShares() {
		if s.Share <= 0 || s.Share >= 1 {
			t.Errorf("%s/%s: share %.2f out of range", s.Category, s.Subtype, s.Share)
		}
	}
}

func TestSortPatches(t *testing.T) {
	ds := Dataset()
	SortPatches(ds)
	for i := 1; i < len(ds); i++ {
		if ds[i-1].ID > ds[i].ID {
			t.Fatal("not sorted")
		}
	}
}

func TestLikelyConsequences(t *testing.T) {
	ds := Dataset()
	for _, a := range report.Aspects() {
		ranked := LikelyConsequences(ds, a)
		if len(ranked) == 0 {
			t.Fatalf("aspect %v: no consequences", a)
		}
		sum := 0.0
		for i, c := range ranked {
			if i > 0 && ranked[i-1].Probability < c.Probability {
				t.Errorf("aspect %v not sorted", a)
			}
			sum += c.Probability
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("aspect %v probabilities sum to %f", a, sum)
		}
	}
	// Path-state bugs most often cause incorrect results (44%).
	top := LikelyConsequences(ds, report.PathState)[0]
	if top.Consequence != "Incorrect results" || math.Abs(top.Probability-0.44) > 0.01 {
		t.Errorf("top path-state consequence = %+v", top)
	}
	// Path-state bugs never caused data loss in the study.
	for _, c := range LikelyConsequences(ds, report.PathState) {
		if c.Consequence == "Data loss" {
			t.Error("zero-count consequence should be omitted")
		}
	}
}
